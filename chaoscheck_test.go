package permchain

// chaoscheck is the repo-level robustness matrix: every consensus protocol
// is driven through the chaos harness's canonical fault schedules —
// crash-recovery and partition/heal for all six, leader kill for the
// protocols that expose leadership, equivocation for the BFT ones — and
// every run must pass both checkers (safety across all incarnations,
// bounded post-heal liveness). The per-package tests exercise each
// protocol's recovery mechanism in isolation; this matrix is the single
// place where the §2.2 fault-tolerance claims are checked uniformly.

import (
	"testing"
	"time"

	"permchain/internal/chaos"
	"permchain/internal/types"
)

func runChaos(t *testing.T, p chaos.Protocol, sched []chaos.Event, via int) {
	t.Helper()
	rep := chaos.Run(chaos.Config{
		Protocol:  p,
		Seed:      7,
		Timeout:   150 * time.Millisecond,
		SubmitVia: via,
		Schedule:  sched,
	})
	if !rep.Ok() {
		t.Fatalf("chaos run failed:\n%s", rep)
	}
	t.Log("\n" + rep.String())
}

func TestChaosMatrix(t *testing.T) {
	const warm, dark, post = 3, 4, 2
	for _, p := range chaos.Protocols() {
		p := p
		n := p.MinN
		last := types.NodeID(n - 1)
		minority := []types.NodeID{last}
		var majority []types.NodeID
		for i := 0; i < n-1; i++ {
			majority = append(majority, types.NodeID(i))
		}

		t.Run(p.Name+"/crash-recovery", func(t *testing.T) {
			t.Parallel()
			runChaos(t, p, chaos.CrashRecoverySchedule(last, warm, dark, post), 0)
		})
		t.Run(p.Name+"/partition-heal", func(t *testing.T) {
			t.Parallel()
			runChaos(t, p, chaos.PartitionHealSchedule(minority, majority, warm, dark, post), 0)
		})
		if p.Name == "raft" || p.Name == "paxos" {
			t.Run(p.Name+"/leader-kill", func(t *testing.T) {
				t.Parallel()
				runChaos(t, p, chaos.LeaderKillSchedule(warm, dark, 500*time.Millisecond), 0)
			})
		}
		if p.ByzFault {
			t.Run(p.Name+"/equivocation", func(t *testing.T) {
				t.Parallel()
				// The last replica turns Byzantine (split silence);
				// submissions go via a correct one.
				runChaos(t, p, chaos.EquivocationSchedule(last, warm, dark, post), 0)
			})
		}
	}
}
