// Package permchain is a from-scratch Go implementation of the
// permissioned-blockchain design space surveyed in "Permissioned
// Blockchains: Properties, Techniques and Applications" (Amiri, Agrawal,
// El Abbadi — SIGMOD 2021).
//
// The package is a facade over the internal building blocks:
//
//   - six consensus protocols (PBFT, Raft, Paxos, Tendermint, HotStuff,
//     IBFT) behind one Replica interface;
//   - the three transaction-processing architectures of §2.3.3 —
//     order-execute, order-parallel-execute (ParBlockchain), and
//     execute-order-validate (Fabric) with the FastFabric, Fabric++,
//     FabricSharp and XOX optimizations;
//   - the confidentiality techniques of §2.3.1 (Caper views, Fabric
//     channels, private data collections);
//   - the verifiability techniques of §2.3.2 (zero-knowledge confidential
//     transfers, Separ's anonymous tokens); and
//   - the scalability techniques of §2.3.4 (ResilientDB single-ledger,
//     AHL, SharPer, Saguaro).
//
// The quickest way in:
//
//	chain, err := permchain.NewChain(permchain.Config{
//		Nodes:    4,
//		Protocol: permchain.PBFT,
//		Arch:     permchain.OXII,
//	})
//	chain.Start()
//	defer chain.Stop()
//	r, err := chain.SubmitAsync(permchain.NewTransaction("pay-1",
//		permchain.Transfer("alice", "bob", 10)))
//	<-r.Done() // settles at commit: r.Height(), r.Status()
//
// See examples/ for complete applications and DESIGN.md for the full
// system inventory.
package permchain

import (
	"log/slog"

	"permchain/internal/arch"
	"permchain/internal/core"
	"permchain/internal/mempool"
	"permchain/internal/obs"
	"permchain/internal/ops"
	"permchain/internal/sharding"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/store"
	"permchain/internal/types"
)

// Core chain types, re-exported.
type (
	// Chain is a running permissioned blockchain: n nodes, each with its
	// own ledger copy and world state, a consensus protocol, and a
	// transaction-processing architecture.
	Chain = core.Chain
	// Config shapes a Chain.
	Config = core.Config
	// Node is one replica's ledger, state and statistics.
	Node = core.Node
	// Protocol selects the ordering protocol.
	Protocol = core.Protocol
	// Architecture selects the processing architecture.
	Architecture = core.Architecture
	// StoreConfig shapes the durable storage engine; assign one to
	// Config.Store to persist each node's ledger and state snapshots.
	StoreConfig = store.Config
	// FsyncPolicy selects when appends are forced to stable storage.
	FsyncPolicy = store.FsyncPolicy
	// Receipt tracks a transaction submitted with Chain.SubmitAsync; its
	// Done channel closes exactly once, when the transaction commits, is
	// aborted by concurrency control, or is orphaned by Stop.
	Receipt = core.Receipt
	// TxStatus is a committed transaction's outcome on a Receipt.
	TxStatus = arch.TxStatus
	// AwaitSpec describes a commit watermark for Chain.Await: which
	// nodes, and the transaction/height/durable-height floors to reach.
	AwaitSpec = core.AwaitSpec
	// MempoolConfig shapes the bounded admission layer; assign one to
	// Config.Mempool to put the overload-safe front door between clients
	// and the commit pipeline. Submissions beyond its capacity or a
	// client's fair share fast-fail with a RejectError instead of
	// queueing without bound.
	MempoolConfig = mempool.Config
	// Mempool is the running admission pool, from Chain.Mempool; its
	// Stats expose occupancy, the high-water mark, and shed counts.
	Mempool = mempool.Pool
	// MempoolStats is a point-in-time copy of the pool's accounting.
	MempoolStats = mempool.Stats
	// RejectError is an admission shed: Cause is ErrMempoolFull or
	// ErrClientQuota, RetryAfter estimates when capacity re-opens.
	RejectError = mempool.RejectError
	// Obs bundles the metrics registry and lifecycle tracer; assign one
	// (from NewObs) to Config.Obs and read results via Chain.Metrics.
	Obs = obs.Obs
	// MetricsSnapshot is a point-in-time copy of every counter, gauge and
	// histogram, as returned by Chain.Metrics. Its WriteJSON and
	// WritePrometheus methods render it for export.
	MetricsSnapshot = obs.Snapshot
)

// Sharded deployments (§2.3.4), re-exported. A ShardedChain is built
// from the same Config as a single chain, with the shard topology nested
// under Config.Sharding:
//
//	sc, err := permchain.NewShardedChain(permchain.Config{
//		Nodes: 4,
//		Sharding: &permchain.ShardingConfig{Shards: 4, Protocol: "sharper"},
//	})
//	sc.Start()
//	defer sc.Stop()
//	r, err := sc.SubmitAsync(permchain.NewTransaction("xfer-1",
//		permchain.Add("s0/key1", -10), permchain.Add("s1/key1", 10)))
//	<-r.Done() // settles when every participant shard durably committed
type (
	// ShardedChain is a deployment of N shards, each a full Chain with
	// its own ledger, consensus committee, mempool and durable store. A
	// deterministic placement maps keys to shards; transactions spanning
	// shards run durable two-phase commit whose prepare/commit decisions
	// are ordered through each participant shard's own consensus.
	ShardedChain = shardcore.Chain
	// ShardingConfig nests the shard topology inside Config — assigning
	// one to Config.Sharding selects the sharded deployment shape.
	ShardingConfig = core.ShardingConfig
	// ShardReceipt tracks a transaction submitted to a ShardedChain. It
	// settles committed only when every participant shard has durably
	// committed its slice (with per-shard heights), aborted when any
	// participant aborts.
	ShardReceipt = shardcore.Receipt
	// ShardStatus is a ShardReceipt's settlement state.
	ShardStatus = shardcore.Status
	// CrossShardProtocol is the strategy interface behind
	// ShardingConfig.Protocol; ShardProtocols lists the built-ins.
	CrossShardProtocol = shardcore.CrossShardProtocol
)

// ErrCrossAborted is returned by ShardReceipt.Wait when a cross-shard
// transaction aborted (lock conflict or coordinator decision) — no shard
// applied its effects.
var ErrCrossAborted = shardcore.ErrCrossAborted

// ShardProtocols lists the registered cross-shard strategy names
// accepted by ShardingConfig.Protocol.
func ShardProtocols() []string { return sharding.Protocols() }

// NewShardedChain assembles a sharded deployment from the config, which
// must carry a non-nil Sharding block. Call Start before submitting and
// Stop when done.
func NewShardedChain(cfg Config) (*ShardedChain, error) { return sharding.NewChain(cfg) }

// OpenShardedChain recovers a sharded deployment from the durable stores
// under cfg.Store.Dir (one subdirectory per shard), replaying each
// shard's WAL and resolving in-doubt cross-shard transactions from their
// durable decision records.
func OpenShardedChain(cfg Config) (*ShardedChain, error) { return sharding.OpenChain(cfg) }

// Ops plane, re-exported: the live HTTP view of a running chain and the
// health model behind its /healthz and /readyz endpoints.
type (
	// OpsConfig shapes an ops server; pass it to ServeOps with the running
	// Chain to expose /metrics, /healthz, /readyz, /status, /traces,
	// /logs, and /debug/pprof over HTTP.
	OpsConfig = ops.Config
	// OpsServer is a running ops endpoint. Close it when the chain stops.
	OpsServer = ops.Server
	// Health folds liveness, churn, backlog and storage signals into a
	// three-state verdict with per-check reasons. Chains build one
	// automatically when Config.Obs is set; tune it by assigning
	// NewHealth(HealthConfig{...}) to Obs.Health before NewChain.
	Health = obs.Health
	// HealthConfig tunes the health model's thresholds and cadence.
	HealthConfig = obs.HealthConfig
	// HealthReport is one evaluated verdict with its per-check reasons.
	HealthReport = obs.HealthReport
	// HealthCheck is a single named signal inside a HealthReport.
	HealthCheck = obs.HealthCheck
	// HealthStatus is the three-state verdict.
	HealthStatus = obs.HealthStatus
	// LogRing is a bounded in-memory sink for the structured log stream;
	// attach its Handler via Obs.SetLogHandler and serve it at /logs by
	// setting OpsConfig.LogRing.
	LogRing = obs.LogRing
)

// Health verdicts.
const (
	// Healthy: every check passes; /readyz answers 200.
	Healthy = obs.Healthy
	// Degraded: the node works but is losing ground (stalled commits,
	// view churn, deep backlogs); /readyz answers 503, /healthz 200.
	Degraded = obs.Degraded
	// Unhealthy: restart-worthy (storage errors, hard stalls); both
	// /healthz and /readyz answer 503.
	Unhealthy = obs.Unhealthy
)

// Transaction model, re-exported.
type (
	// Transaction is the unit of work clients submit.
	Transaction = types.Transaction
	// Op is one deterministic operation in a transaction payload.
	Op = types.Op
	// Hash is a SHA-256 digest.
	Hash = types.Hash
	// NodeID identifies a replica.
	NodeID = types.NodeID
	// EnterpriseID identifies an organization in collaborative settings.
	EnterpriseID = types.EnterpriseID
	// ShardID identifies a data shard.
	ShardID = types.ShardID
)

// Ordering protocols.
const (
	PBFT       = core.PBFT
	Raft       = core.Raft
	Paxos      = core.Paxos
	Tendermint = core.Tendermint
	HotStuff   = core.HotStuff
	IBFT       = core.IBFT
)

// Processing architectures (§2.3.3).
const (
	// OX is order-execute: simple, sequential, always serializable.
	OX = core.OX
	// OXII is order-parallel-execute: dependency graphs, parallel
	// execution, no concurrency aborts (ParBlockchain).
	OXII = core.OXII
	// XOV is execute-order-validate: optimistic parallel endorsement with
	// MVCC validation aborts (Hyperledger Fabric).
	XOV = core.XOV
)

// Durability policies for StoreConfig.Fsync.
const (
	// FsyncAlways syncs the log after every block append.
	FsyncAlways = store.FsyncAlways
	// FsyncInterval groups syncs on a timer (StoreConfig.FsyncEvery).
	FsyncInterval = store.FsyncInterval
	// FsyncOff leaves flushing to the OS; a crash may lose the tail.
	FsyncOff = store.FsyncOff
)

// Transaction outcomes reported by Receipt.Status.
const (
	// TxCommitted: the transaction executed and its writes are in state.
	TxCommitted = arch.TxCommitted
	// TxAborted: concurrency control aborted it (XOV MVCC conflicts).
	TxAborted = arch.TxAborted
	// TxFailed: its own payload failed (bad op, insufficient balance).
	TxFailed = arch.TxFailed
)

// Sentinel errors from the client API.
var (
	// ErrStopped is returned for submissions after Stop, and set on
	// receipts whose transactions the chain shut down underneath.
	ErrStopped = core.ErrStopped
	// ErrAwaitTimeout is returned by Receipt.Wait on timeout and by
	// Receipt.WaitContext when the context ends first (the returned
	// error also matches the context's own error via errors.Is).
	ErrAwaitTimeout = core.ErrAwaitTimeout
	// ErrMempoolFull is the admission layer's capacity shed.
	ErrMempoolFull = mempool.ErrMempoolFull
	// ErrClientQuota is the admission layer's fairness shed.
	ErrClientQuota = mempool.ErrClientQuota
)

// IsReject reports whether err is an admission shed (capacity or
// quota) — retryable after the RejectError's hint, unlike ErrStopped.
func IsReject(err error) bool { return mempool.IsReject(err) }

// NewObs returns a fresh observability bundle (metrics registry plus
// lifecycle tracer) to assign to Config.Obs; harvest it with
// Chain.Metrics once the workload has run.
func NewObs() *Obs { return obs.New() }

// NewHealth builds a health tracker with the given thresholds; assign it
// to an Obs's Health field before NewChain to override the defaults.
func NewHealth(cfg HealthConfig) *Health { return obs.NewHealth(cfg) }

// ServeOps starts the HTTP ops plane for a running chain (or, with only
// an Obs, the profile-only mode permbench uses).
func ServeOps(cfg OpsConfig) (*OpsServer, error) { return ops.Serve(cfg) }

// NewLogRing returns a bounded sink retaining the most recent structured
// log events at or above level.
func NewLogRing(capacity int, level slog.Level) *LogRing {
	return obs.NewLogRing(capacity, level)
}

// NewChain assembles a chain from the config. Call Start before
// submitting and Stop when done.
func NewChain(cfg Config) (*Chain, error) { return core.New(cfg) }

// OpenChain assembles a chain that recovers its ledger and world state
// from the durable store under cfg.Store.Dir (which NewChain must have
// been writing in an earlier run). An empty directory yields a fresh
// chain.
func OpenChain(cfg Config) (*Chain, error) { return core.OpenChain(cfg) }

// NewTransaction builds a transaction with the given id and operations.
func NewTransaction(id string, ops ...Op) *Transaction {
	return &Transaction{ID: id, Ops: ops}
}

// Get reads key into the transaction's read set.
func Get(key string) Op { return Op{Code: types.OpGet, Key: key} }

// Put writes value to key.
func Put(key string, value []byte) Op {
	return Op{Code: types.OpPut, Key: key, Value: value}
}

// Add atomically adds delta to the integer at key.
func Add(key string, delta int64) Op {
	return Op{Code: types.OpAdd, Key: key, Delta: delta}
}

// Transfer moves amount from one key to another, failing the transaction
// if the source balance is insufficient.
func Transfer(from, to string, amount int64) Op {
	return Op{Code: types.OpTransfer, Key: from, Key2: to, Delta: amount}
}

// AssertGE fails the transaction unless the integer at key is >= bound.
// Use it to encode preconditions and SLA-style constraints.
func AssertGE(key string, bound int64) Op {
	return Op{Code: types.OpAssertGE, Key: key, Delta: bound}
}
