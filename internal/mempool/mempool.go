// Package mempool is the chain's overload-safe front door: a bounded
// admission layer between clients and the commit pipeline. Every
// production permissioned system the paper surveys (Fabric most
// visibly — arXiv 1801.10228) learned the same lesson: the first thing
// to fall over under bursty or adversarial load is not consensus, it is
// the unbounded client queue in front of it. The pool therefore
// enforces three properties at admission time, before a transaction
// can cost the system anything downstream:
//
//   - bounded memory: a hard Capacity on outstanding transactions
//     (pooled + handed-off-but-uncommitted). When it is reached,
//     admission fast-fails with a typed *RejectError carrying a
//     retry-after hint derived from the observed drain rate, instead of
//     queueing and letting apply-queue depth and latency grow without
//     bound;
//   - fairness: a per-client fair-share quota (Capacity divided across
//     clients active within a sliding window) so one hot client cannot
//     occupy the whole pool and starve the rest;
//   - exactly-once handoff: transactions are deduplicated by digest
//     across their pooled-and-inflight lifetime, so a resubmitted
//     transaction is handed to consensus once and both submissions
//     settle from the same commit.
//
// Batches form by size or time deadline (whichever comes first) and
// feed core.Chain's consensus intake; the commit path releases digests
// once their block commits, which both re-opens capacity and drives the
// drain-rate estimate behind retry-after hints.
package mempool

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/obs"
	"permchain/internal/types"
)

// Typed admission errors. RejectError wraps the two shed causes so
// clients can errors.Is on the cause and still read the retry hint.
var (
	// ErrMempoolFull is the capacity shed: the pool holds Capacity
	// outstanding transactions and cannot accept more.
	ErrMempoolFull = errors.New("mempool: full")
	// ErrClientQuota is the fairness shed: this client already holds its
	// fair share of the pool while other clients are active.
	ErrClientQuota = errors.New("mempool: client quota exceeded")
	// ErrClosed is returned once the pool has shut down.
	ErrClosed = errors.New("mempool: closed")
)

// RejectError is an admission shed: the typed fast-fail the overload
// design calls for. Cause is ErrMempoolFull or ErrClientQuota (exposed
// via Unwrap, so errors.Is works); RetryAfter estimates when capacity
// should be available again, derived from the pool's observed drain
// rate.
type RejectError struct {
	Cause      error
	RetryAfter time.Duration
}

// Error renders the shed with its hint.
func (e *RejectError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Cause, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap exposes the shed cause to errors.Is/errors.As.
func (e *RejectError) Unwrap() error { return e.Cause }

// IsReject reports whether err is an admission shed (capacity or
// quota), as opposed to a hard failure like ErrClosed.
func IsReject(err error) bool {
	return errors.Is(err, ErrMempoolFull) || errors.Is(err, ErrClientQuota)
}

// Config shapes a Pool.
type Config struct {
	// Capacity is the hard cap on outstanding transactions — pooled
	// plus handed-off-but-uncommitted. Default 4096.
	Capacity int
	// ClientQuota fixes each client's cap on outstanding transactions.
	// Zero (the default) selects the dynamic fair share:
	// Capacity / (clients active within ActivityWindow).
	ClientQuota int
	// ActivityWindow is how long a client stays "active" for the
	// dynamic fair-share divisor after its last submission. Default 30s.
	ActivityWindow time.Duration
	// BatchSize is the max transactions per handed-off batch.
	// Default 64 (core aligns it with Config.BlockSize).
	BatchSize int
	// BatchDeadline bounds how long a partial batch waits before being
	// handed off anyway. Default 20ms (core aligns it with FlushEvery).
	BatchDeadline time.Duration
	// Obs receives admission/reject/occupancy/batch metrics. Nil
	// disables instrumentation.
	Obs *obs.Obs
}

func (c Config) defaulted() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.ActivityWindow <= 0 {
		c.ActivityWindow = 30 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchDeadline <= 0 {
		c.BatchDeadline = 20 * time.Millisecond
	}
	return c
}

// entry tracks one outstanding transaction from admission to release.
type entry struct {
	tx       *types.Transaction
	client   types.NodeID
	inflight bool // handed to consensus, awaiting commit
	admitted time.Time
}

// Stats is a point-in-time copy of the pool's occupancy accounting.
type Stats struct {
	// Occupancy is the current outstanding count (pooled + inflight);
	// MaxOccupancy is the high-water mark — the capacity invariant's
	// deterministic witness (MaxOccupancy <= Capacity, always).
	Occupancy    int
	MaxOccupancy int
	// Pooled counts transactions waiting for a batch; Inflight those
	// handed off and awaiting commit.
	Pooled   int
	Inflight int
	// Admitted/Deduped/RejectedFull/RejectedQuota are lifetime totals.
	Admitted      int64
	Deduped       int64
	RejectedFull  int64
	RejectedQuota int64
	// ActiveClients is the current fair-share divisor.
	ActiveClients int
}

// Pool is the bounded admission queue. Safe for concurrent use.
type Pool struct {
	cfg Config

	mu        sync.Mutex
	entries   map[types.Hash]*entry
	queue     []types.Hash // FIFO of pooled (not yet inflight) digests
	perClient map[types.NodeID]int
	lastSeen  map[types.NodeID]time.Time
	closed    bool

	stats Stats

	// ready is signalled (non-blocking) when the queue first reaches
	// BatchSize, waking the drain loop before its deadline tick.
	ready chan struct{}

	// Drain-rate EWMA (txs/sec released by commits), behind RetryAfter.
	drainRate   float64
	lastRelease time.Time
}

// New builds a pool from cfg (zero fields take defaults).
func New(cfg Config) *Pool {
	cfg = cfg.defaulted()
	return &Pool{
		cfg:       cfg,
		entries:   make(map[types.Hash]*entry),
		perClient: make(map[types.NodeID]int),
		lastSeen:  make(map[types.NodeID]time.Time),
		ready:     make(chan struct{}, 1),
	}
}

// Config returns the pool's effective (defaulted) configuration.
func (p *Pool) Config() Config { return p.cfg }

// Ready returns the channel the drain loop selects on: it receives a
// token when a full batch is waiting, so handoff does not have to wait
// for the deadline tick.
func (p *Pool) Ready() <-chan struct{} { return p.ready }

// quotaLocked returns this client's current cap. With ClientQuota set
// it is fixed; otherwise it is the dynamic fair share — Capacity
// divided by the number of clients active within ActivityWindow
// (including the caller), so a lone client may use the whole pool but
// can never starve a recently-seen peer out of its share.
func (p *Pool) quotaLocked(now time.Time) int {
	if p.cfg.ClientQuota > 0 {
		return p.cfg.ClientQuota
	}
	active := 0
	for id, seen := range p.lastSeen {
		if now.Sub(seen) > p.cfg.ActivityWindow {
			delete(p.lastSeen, id) // prune so the map stays bounded
			continue
		}
		active++
	}
	if active < 1 {
		active = 1
	}
	q := p.cfg.Capacity / active
	if q < 1 {
		q = 1
	}
	return q
}

// retryAfterLocked estimates when admission is worth retrying: the time
// for one batch to drain at the observed release rate, clamped to
// [1ms, 5s]. Before any commit has been observed it falls back to one
// batch deadline.
func (p *Pool) retryAfterLocked() time.Duration {
	if p.drainRate <= 0 {
		return p.cfg.BatchDeadline
	}
	d := time.Duration(float64(p.cfg.BatchSize) / p.drainRate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// Admit applies admission control to tx. On success it returns
// dup=false and tx is queued for the next batch; onDecided (if
// non-nil) runs under the pool lock after the admission decision but
// before the transaction can be handed off — core registers the
// receipt there, so the commit path can never settle a transaction
// before its receipt exists. A duplicate of a pooled or inflight
// digest returns dup=true with no new slot consumed: the transaction
// will be handed to consensus exactly once, and onDecided still runs
// so a second receipt can attach to the same pending commit.
//
// Sheds return a *RejectError (cause ErrMempoolFull or ErrClientQuota)
// carrying a retry-after hint; onDecided does not run on a shed.
func (p *Pool) Admit(tx *types.Transaction, onDecided func(dup bool)) (dup bool, err error) {
	digest := tx.Hash()
	now := time.Now()
	o := p.cfg.Obs

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false, ErrClosed
	}
	p.lastSeen[tx.Client] = now
	if _, ok := p.entries[digest]; ok {
		p.stats.Deduped++
		if onDecided != nil {
			onDecided(true)
		}
		p.mu.Unlock()
		o.Inc("mempool/deduped")
		return true, nil
	}
	if p.stats.Occupancy >= p.cfg.Capacity {
		p.stats.RejectedFull++
		retry := p.retryAfterLocked()
		p.mu.Unlock()
		o.Inc("mempool/rejected_full")
		// Debug, not Warn: sheds are by design high-volume under
		// overload, and the counter above is the operational signal.
		o.Logger("mempool").Debug("capacity shed",
			"client", int(tx.Client), "retry_after", retry)
		return false, &RejectError{Cause: ErrMempoolFull, RetryAfter: retry}
	}
	if p.perClient[tx.Client] >= p.quotaLocked(now) {
		p.stats.RejectedQuota++
		retry := p.retryAfterLocked()
		p.mu.Unlock()
		o.Inc("mempool/rejected_quota")
		o.Logger("mempool").Debug("quota shed",
			"client", int(tx.Client), "retry_after", retry)
		return false, &RejectError{Cause: ErrClientQuota, RetryAfter: retry}
	}

	p.entries[digest] = &entry{tx: tx, client: tx.Client, admitted: now}
	p.queue = append(p.queue, digest)
	p.perClient[tx.Client]++
	p.stats.Admitted++
	p.stats.Occupancy++
	p.stats.Pooled++
	if p.stats.Occupancy > p.stats.MaxOccupancy {
		p.stats.MaxOccupancy = p.stats.Occupancy
	}
	full := len(p.queue) >= p.cfg.BatchSize
	occ := p.stats.Occupancy
	if onDecided != nil {
		onDecided(false)
	}
	p.mu.Unlock()

	o.Inc("mempool/admitted")
	o.SetGauge("mempool/occupancy", int64(occ))
	if full {
		select {
		case p.ready <- struct{}{}:
		default:
		}
	}
	return false, nil
}

// NextBatch pops up to max pooled transactions (FIFO) and marks them
// inflight; they stay counted against capacity and their client's
// quota until Release. Returns nil when nothing is pooled.
func (p *Pool) NextBatch(max int) []*types.Transaction {
	if max <= 0 || max > p.cfg.BatchSize {
		max = p.cfg.BatchSize
	}
	now := time.Now()
	p.mu.Lock()
	n := len(p.queue)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	if n > max {
		n = max
	}
	batch := make([]*types.Transaction, 0, n)
	var waited time.Duration
	for _, digest := range p.queue[:n] {
		e := p.entries[digest]
		e.inflight = true
		batch = append(batch, e.tx)
		waited += now.Sub(e.admitted)
	}
	p.queue = p.queue[n:]
	p.stats.Pooled -= n
	p.stats.Inflight += n
	p.mu.Unlock()

	o := p.cfg.Obs
	o.Inc("mempool/batches")
	o.ObserveInt("mempool/batch_size", int64(n))
	// One representative sample per batch keeps the histogram cheap;
	// the mean pooled wait is what the deadline bounds.
	o.Observe("mempool/admit_to_handoff", waited/time.Duration(n))
	return batch
}

// Release removes committed transactions from the pool's accounting:
// capacity re-opens, per-client counts drop, and the drain-rate EWMA
// behind retry-after hints advances. Digests the pool does not know
// (recovery replays, pre-mempool submissions) are ignored. The commit
// path must call Release before settling receipts, so a resubmission
// racing the commit either attaches to the pending entry (and settles
// with it) or is admitted fresh after the entry is gone — never lost
// in between.
func (p *Pool) Release(txs []*types.Transaction) {
	if len(txs) == 0 {
		return
	}
	now := time.Now()
	p.mu.Lock()
	released := 0
	for _, tx := range txs {
		digest := tx.Hash()
		e, ok := p.entries[digest]
		if !ok {
			continue
		}
		delete(p.entries, digest)
		if !e.inflight {
			// Committed without handoff (possible only if an identical
			// digest reached consensus some other way); take it out of
			// the FIFO too so NextBatch never sees a released digest.
			p.dropFromQueueLocked(digest)
			p.stats.Pooled--
		} else {
			p.stats.Inflight--
		}
		p.perClient[e.client]--
		if p.perClient[e.client] <= 0 {
			delete(p.perClient, e.client)
		}
		p.stats.Occupancy--
		released++
	}
	if released > 0 {
		if !p.lastRelease.IsZero() {
			if dt := now.Sub(p.lastRelease).Seconds(); dt > 0 {
				sample := float64(released) / dt
				if p.drainRate == 0 {
					p.drainRate = sample
				} else {
					p.drainRate = 0.8*p.drainRate + 0.2*sample
				}
			}
		}
		p.lastRelease = now
	}
	occ := p.stats.Occupancy
	p.mu.Unlock()
	if released > 0 {
		p.cfg.Obs.Add("mempool/released", int64(released))
		p.cfg.Obs.SetGauge("mempool/occupancy", int64(occ))
	}
}

// dropFromQueueLocked removes one digest from the FIFO. Rare path (see
// Release); O(n) is fine.
func (p *Pool) dropFromQueueLocked(digest types.Hash) {
	for i, d := range p.queue {
		if d == digest {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
}

// DrainRate returns the EWMA of commit-release throughput (txs/sec)
// that retry-after hints are computed from; zero before any commit.
func (p *Pool) DrainRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainRate
}

// Stats returns a copy of the pool's accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.ActiveClients = len(p.lastSeen)
	return s
}

// Close shuts admission down: subsequent Admits return ErrClosed and
// pooled transactions are dropped (their receipts are the caller's to
// orphan — core settles them with ErrStopped). Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.entries = make(map[types.Hash]*entry)
	p.queue = nil
	p.perClient = make(map[types.NodeID]int)
	p.stats.Occupancy = 0
	p.stats.Pooled = 0
	p.stats.Inflight = 0
	p.mu.Unlock()
	p.cfg.Obs.SetGauge("mempool/occupancy", 0)
}
