package mempool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"permchain/internal/types"
)

func tx(client int, id string) *types.Transaction {
	return &types.Transaction{
		ID:     id,
		Client: types.NodeID(client),
		Ops:    []types.Op{{Code: types.OpAdd, Key: id, Delta: 1}},
	}
}

func TestDedupAcrossResubmission(t *testing.T) {
	// A digest is outstanding from admission until Release — resubmitting
	// anywhere in that window consumes no slot and is never handed off a
	// second time; after Release the same digest admits fresh.
	p := New(Config{Capacity: 8})
	first := tx(0, "a")
	if dup, err := p.Admit(first, nil); dup || err != nil {
		t.Fatalf("first admit: dup=%v err=%v", dup, err)
	}
	// Pooled: duplicate (fresh struct, same digest) is absorbed.
	if dup, err := p.Admit(tx(0, "a"), nil); !dup || err != nil {
		t.Fatalf("pooled resubmit: dup=%v err=%v", dup, err)
	}
	batch := p.NextBatch(8)
	if len(batch) != 1 {
		t.Fatalf("handoff carried %d txs, want 1 (dup must not be handed off)", len(batch))
	}
	// Inflight: still outstanding, still deduplicated.
	if dup, err := p.Admit(tx(0, "a"), nil); !dup || err != nil {
		t.Fatalf("inflight resubmit: dup=%v err=%v", dup, err)
	}
	if more := p.NextBatch(8); len(more) != 0 {
		t.Fatalf("inflight dup re-entered the queue: %d txs", len(more))
	}
	p.Release(batch)
	// Released: the window is over; the digest admits as a new tx.
	if dup, err := p.Admit(tx(0, "a"), nil); dup || err != nil {
		t.Fatalf("post-release admit: dup=%v err=%v", dup, err)
	}
	st := p.Stats()
	if st.Admitted != 2 || st.Deduped != 2 || st.Occupancy != 1 {
		t.Fatalf("stats: admitted=%d deduped=%d occupancy=%d, want 2/2/1",
			st.Admitted, st.Deduped, st.Occupancy)
	}
}

func TestFairShareHotClientCannotStarveCold(t *testing.T) {
	// The 90/10 split: a hot client hammering the pool and a cold client
	// trickling. With both active the dynamic fair share is Capacity/2 —
	// the hot client sheds at its share with ErrClientQuota, and the cold
	// client's submissions all land.
	const capacity = 100
	p := New(Config{Capacity: capacity, ActivityWindow: time.Minute})
	// Both clients touch the pool so both count in the divisor.
	if _, err := p.Admit(tx(1, "cold-warmup"), nil); err != nil {
		t.Fatal(err)
	}
	hotAdmitted, hotQuota := 0, 0
	for i := 0; i < 9*capacity/10; i++ { // 90 hot submissions
		_, err := p.Admit(tx(0, fmt.Sprintf("hot-%d", i)), nil)
		switch {
		case err == nil:
			hotAdmitted++
		case errors.Is(err, ErrClientQuota):
			hotQuota++
		default:
			t.Fatalf("hot submit %d: %v", i, err)
		}
	}
	if hotAdmitted != capacity/2 {
		t.Fatalf("hot client admitted %d, want its fair share %d", hotAdmitted, capacity/2)
	}
	if hotQuota == 0 {
		t.Fatal("hot client never hit ErrClientQuota")
	}
	// The cold client's 10 submissions all fit inside its untouched share.
	for i := 0; i < capacity/10; i++ {
		if _, err := p.Admit(tx(1, fmt.Sprintf("cold-%d", i)), nil); err != nil {
			t.Fatalf("cold client shed at submission %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.RejectedQuota != int64(hotQuota) || st.RejectedFull != 0 {
		t.Fatalf("stats: rejectedQuota=%d rejectedFull=%d", st.RejectedQuota, st.RejectedFull)
	}
	if st.ActiveClients != 2 {
		t.Fatalf("active clients = %d, want 2", st.ActiveClients)
	}
}

func TestFixedClientQuotaOverridesFairShare(t *testing.T) {
	p := New(Config{Capacity: 100, ClientQuota: 3})
	for i := 0; i < 3; i++ {
		if _, err := p.Admit(tx(0, fmt.Sprintf("t%d", i)), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := p.Admit(tx(0, "t3"), nil); !errors.Is(err, ErrClientQuota) {
		t.Fatalf("4th submit: %v, want ErrClientQuota", err)
	}
}

func TestCapacityNeverExceededConcurrently(t *testing.T) {
	// The capacity invariant under the race detector: many goroutines
	// submitting (distinct clients so quota is not the binding limit)
	// while a consumer drains and releases. MaxOccupancy is the
	// high-water witness — it must never pass Capacity, and the sheds
	// must be typed.
	const capacity = 64
	p := New(Config{Capacity: capacity, BatchSize: 16, ClientQuota: capacity})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // consumer: drain and commit
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if batch := p.NextBatch(16); len(batch) > 0 {
				p.Release(batch)
			}
		}
	}()
	var submitErrs sync.Map
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, err := p.Admit(tx(g, fmt.Sprintf("g%d-%d", g, i)), nil)
				if err != nil && !IsReject(err) {
					submitErrs.Store(fmt.Sprintf("g%d-%d", g, i), err)
					return
				}
			}
		}()
	}
	// Submitters finish first; then stop the consumer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	submittersDone := make(chan struct{})
	go func() {
		// The consumer only exits via stop; wait for submitters by
		// polling admitted+rejected totals.
		for {
			st := p.Stats()
			if st.Admitted+st.RejectedFull+st.RejectedQuota+st.Deduped >= 8*500 {
				close(submittersDone)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-submittersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("submitters did not finish")
	}
	close(stop)
	<-done
	submitErrs.Range(func(k, v any) bool {
		t.Errorf("submit %v: unexpected error %v", k, v)
		return true
	})
	st := p.Stats()
	if st.MaxOccupancy > capacity {
		t.Fatalf("capacity invariant violated: max occupancy %d > %d", st.MaxOccupancy, capacity)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	// Conservation: every admitted transaction is still drainable —
	// releasing everything left brings occupancy exactly to zero, so
	// nothing leaked a slot and nothing was double-released.
	for {
		batch := p.NextBatch(capacity)
		if len(batch) == 0 {
			break
		}
		p.Release(batch)
	}
	if st = p.Stats(); st.Occupancy != 0 || st.Pooled != 0 || st.Inflight != 0 {
		t.Fatalf("after full drain: occupancy=%d pooled=%d inflight=%d, want 0/0/0",
			st.Occupancy, st.Pooled, st.Inflight)
	}
}

func TestBatchDeadlineFiresPartialBatch(t *testing.T) {
	// Batch-by-time: with fewer than BatchSize pooled, Ready never
	// signals — the deadline tick (the drain loop's ticker calls
	// NextBatch) must still hand off the partial batch.
	p := New(Config{Capacity: 16, BatchSize: 8, BatchDeadline: 5 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if _, err := p.Admit(tx(0, fmt.Sprintf("t%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-p.Ready():
		t.Fatal("Ready signalled below BatchSize")
	default:
	}
	if batch := p.NextBatch(8); len(batch) != 3 {
		t.Fatalf("deadline handoff carried %d txs, want the partial 3", len(batch))
	}
	// Batch-by-size: the 8th pooled tx trips Ready without a deadline.
	for i := 0; i < 8; i++ {
		if _, err := p.Admit(tx(0, fmt.Sprintf("s%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-p.Ready():
	case <-time.After(time.Second):
		t.Fatal("Ready did not signal at BatchSize")
	}
	if batch := p.NextBatch(8); len(batch) != 8 {
		t.Fatalf("full batch carried %d txs, want 8", len(batch))
	}
}

func TestRejectCarriesRetryAfterFromDrainRate(t *testing.T) {
	p := New(Config{Capacity: 2, BatchSize: 2, BatchDeadline: 40 * time.Millisecond})
	for i := 0; i < 2; i++ {
		if _, err := p.Admit(tx(0, fmt.Sprintf("t%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Admit(tx(0, "over"), nil)
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("over-capacity submit: %v, want *RejectError", err)
	}
	// Before any commit the hint falls back to one batch deadline.
	if rej.RetryAfter != 40*time.Millisecond {
		t.Fatalf("pre-commit retry-after = %v, want the batch deadline", rej.RetryAfter)
	}
	// Two releases spaced apart establish a drain rate; the hint becomes
	// rate-derived (one batch at the observed rate) and stays clamped.
	batch := p.NextBatch(2)
	p.Release(batch[:1])
	time.Sleep(10 * time.Millisecond)
	p.Release(batch[1:])
	if p.DrainRate() <= 0 {
		t.Fatal("drain rate not established after releases")
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Admit(tx(0, fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	_, err = p.Admit(tx(0, "over2"), nil)
	if !errors.As(err, &rej) {
		t.Fatalf("second shed: %v", err)
	}
	if rej.RetryAfter < time.Millisecond || rej.RetryAfter > 5*time.Second {
		t.Fatalf("rate-derived retry-after %v outside clamp", rej.RetryAfter)
	}
}

func TestCloseShedsWithErrClosed(t *testing.T) {
	p := New(Config{Capacity: 4})
	if _, err := p.Admit(tx(0, "a"), nil); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Admit(tx(0, "b"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close admit: %v, want ErrClosed", err)
	}
	if IsReject(ErrClosed) {
		t.Fatal("ErrClosed must not count as a shed")
	}
	if st := p.Stats(); st.Occupancy != 0 {
		t.Fatalf("occupancy %d after close, want 0", st.Occupancy)
	}
}

// BenchmarkAdmitBatchRelease measures the pool's full slot lifecycle —
// admit, batch handoff, release — which is the per-transaction overhead
// the admission layer adds in front of the commit pipeline.
func BenchmarkAdmitBatchRelease(b *testing.B) {
	p := New(Config{Capacity: 4096, BatchSize: 64, BatchDeadline: time.Hour})
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Admit(tx(i%16, fmt.Sprintf("b-%d", i)), nil); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			p.Release(p.NextBatch(64))
		}
	}
	b.StopTimer()
	for {
		batch := p.NextBatch(64)
		if len(batch) == 0 {
			break
		}
		p.Release(batch)
	}
}

// BenchmarkAdmitParallel measures admission under submitter concurrency:
// contended pool-lock acquisition with dedup and quota checks on every
// call, while a background consumer drains so capacity sheds stay rare.
func BenchmarkAdmitParallel(b *testing.B) {
	p := New(Config{Capacity: 4096, BatchSize: 64, BatchDeadline: time.Hour})
	defer p.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				if batch := p.NextBatch(256); len(batch) > 0 {
					p.Release(batch)
				}
			}
		}
	}()
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			_, err := p.Admit(tx(int(i%16), fmt.Sprintf("p-%d", i)), nil)
			if err != nil && !IsReject(err) {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
