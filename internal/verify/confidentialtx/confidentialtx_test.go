package confidentialtx

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"testing"
)

func keypair(seed string) (ed25519.PublicKey, ed25519.PrivateKey) {
	h := sha256.Sum256([]byte(seed))
	priv := ed25519.NewKeyFromSeed(h[:])
	return priv.Public().(ed25519.PublicKey), priv
}

func TestMintAndTransfer(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")

	note, err := l.Mint(alicePub, alicePriv, 100)
	if err != nil {
		t.Fatal(err)
	}
	if note.Amount() != 100 {
		t.Fatalf("amount %d", note.Amount())
	}
	// Alice pays Bob 30, keeps 70 change.
	tr, newNotes, err := l.NewTransfer([]*Note{note}, []OutputSpec{
		{Owner: bobPub, Amount: 30},
		{Owner: alicePub, Amount: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if len(newNotes) != 2 || newNotes[0].Amount() != 30 || newNotes[1].Amount() != 70 {
		t.Fatalf("new notes wrong: %v", newNotes)
	}
	if l.LiveNotes() != 2 || l.SpentCount() != 1 {
		t.Fatalf("ledger counts: %d live, %d spent", l.LiveNotes(), l.SpentCount())
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	note, _ := l.Mint(alicePub, alicePriv, 50)

	tr1, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{{Owner: bobPub, Amount: 50}})
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{{Owner: alicePub, Amount: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr1); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr2); !errors.Is(err, ErrDoubleSpend) && !errors.Is(err, ErrUnknownNote) {
		t.Fatalf("double spend allowed: %v", err)
	}
}

func TestTheftRejected(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	_, malloryPriv := keypair("mallory")
	bobPub, _ := keypair("bob")
	note, _ := l.Mint(alicePub, alicePriv, 50)

	// Mallory builds a transfer of Alice's note signed with her own key.
	stolen := &Note{ID: note.ID, Owner: alicePub, Comm: note.Comm,
		opening: note.opening, ownerKey: malloryPriv}
	tr, _, err := l.NewTransfer([]*Note{stolen}, []OutputSpec{{Owner: bobPub, Amount: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("theft allowed: %v", err)
	}
}

func TestConservationEnforced(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	// The constructor refuses unbalanced transfers outright.
	note, _ := l.Mint(alicePub, alicePriv, 50)
	if _, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{{Owner: bobPub, Amount: 60}}); err == nil {
		t.Fatal("unbalanced transfer constructed")
	}
	// A forged transfer with inflated outputs fails the zero proof: build
	// a valid transfer, then swap an output commitment for a bigger one.
	tr, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{{Owner: bobPub, Amount: 50}})
	if err != nil {
		t.Fatal(err)
	}
	g := l.g
	bigComm, bigOpen := g.Commit(big.NewInt(90))
	rp, err := g.ProveRange(bigOpen, AmountBits)
	if err != nil {
		t.Fatal(err)
	}
	tr.Outputs[0].Comm = bigComm
	tr.Outputs[0].Range = rp
	if err := l.Apply(tr); err == nil {
		t.Fatal("inflated transfer accepted")
	}
}

func TestNegativeOutputBlockedByRangeProof(t *testing.T) {
	// Without range proofs an attacker conserves mass with a negative
	// output: 50 → (60, -10). The -10 commitment cannot carry a valid
	// range proof, so the transfer must fail.
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	note, _ := l.Mint(alicePub, alicePriv, 50)

	if _, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{
		{Owner: bobPub, Amount: 60},
		{Owner: alicePub, Amount: -10},
	}); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative output accepted by constructor: %v", err)
	}
}

func TestMultiInputTransfer(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	n1, _ := l.Mint(alicePub, alicePriv, 30)
	n2, _ := l.Mint(alicePub, alicePriv, 25)
	tr, outs, err := l.NewTransfer([]*Note{n1, n2}, []OutputSpec{{Owner: bobPub, Amount: 55}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if outs[0].Amount() != 55 {
		t.Fatalf("output amount %d", outs[0].Amount())
	}
	if l.SpentCount() != 2 {
		t.Fatalf("spent %d", l.SpentCount())
	}
}

func TestChainedTransfers(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, bobPriv := keypair("bob")
	carolPub, _ := keypair("carol")

	note, _ := l.Mint(alicePub, alicePriv, 100)
	tr1, notes1, err := l.NewTransfer([]*Note{note}, []OutputSpec{{Owner: bobPub, Amount: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr1); err != nil {
		t.Fatal(err)
	}
	// Bob spends what he received.
	bobNote := notes1[0]
	bobNote.ownerKey = bobPriv
	tr2, _, err := l.NewTransfer([]*Note{bobNote}, []OutputSpec{
		{Owner: carolPub, Amount: 40},
		{Owner: bobPub, Amount: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(tr2); err != nil {
		t.Fatal(err)
	}
	if l.LiveNotes() != 2 {
		t.Fatalf("live notes %d", l.LiveNotes())
	}
}

func TestMintRejectsBadAmounts(t *testing.T) {
	l := NewLedger()
	pub, priv := keypair("x")
	if _, err := l.Mint(pub, priv, -1); !errors.Is(err, ErrBadAmount) {
		t.Fatal("negative mint accepted")
	}
	if _, err := l.Mint(pub, priv, 1<<AmountBits); !errors.Is(err, ErrBadAmount) {
		t.Fatal("oversized mint accepted")
	}
}

func TestUnknownInputRejected(t *testing.T) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	ghost := &Note{
		ID: [32]byte{1}, Owner: alicePub, ownerKey: alicePriv,
	}
	g := l.g
	ghost.Comm, ghost.opening = g.Commit(big.NewInt(10))
	if _, _, err := l.NewTransfer([]*Note{ghost}, []OutputSpec{{Owner: alicePub, Amount: 10}}); !errors.Is(err, ErrUnknownNote) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkTransferProve(b *testing.B) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	notes := make([]*Note, b.N)
	for i := range notes {
		notes[i], _ = l.Mint(alicePub, alicePriv, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.NewTransfer([]*Note{notes[i]}, []OutputSpec{
			{Owner: bobPub, Amount: 30}, {Owner: alicePub, Amount: 70},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransferVerify(b *testing.B) {
	l := NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, _ := keypair("bob")
	note, _ := l.Mint(alicePub, alicePriv, 100)
	tr, _, err := l.NewTransfer([]*Note{note}, []OutputSpec{
		{Owner: bobPub, Amount: 30}, {Owner: alicePub, Amount: 70},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestManySmallTransfersStayConsistent(t *testing.T) {
	l := NewLedger()
	pub, priv := keypair("owner")
	cur, _ := l.Mint(pub, priv, 1000)
	for i := 0; i < 5; i++ {
		tr, outs, err := l.NewTransfer([]*Note{cur}, []OutputSpec{{Owner: pub, Amount: cur.Amount()}})
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		if err := l.Apply(tr); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		cur = outs[0]
		cur.ownerKey = priv
	}
	if l.LiveNotes() != 1 {
		t.Fatalf("live %d", l.LiveNotes())
	}
	if cur.Amount() != 1000 {
		t.Fatalf("value drifted to %d", cur.Amount())
	}
	_ = fmt.Sprint() // keep fmt import if asserts change
}
