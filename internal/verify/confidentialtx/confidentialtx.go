// Package confidentialtx implements zero-knowledge-proof-based
// verifiability (§2.3.2): confidential asset transfers in the style of
// Quorum's ZSL / Zcash, over the sigma-protocol stack in internal/crypto.
//
// Amounts live in Pedersen commitments ("notes"); a transfer proves,
// without revealing sender, receiver or amounts, that
//
//  1. the spender owns the input notes (Ed25519 signature),
//  2. no note is spent twice (deterministic nullifiers against a ledger
//     nullifier set),
//  3. value is conserved — inputs minus outputs commit to zero
//     (homomorphic Schnorr proof), and
//  4. every output is non-negative (bit-decomposition range proofs),
//     so conservation cannot be gamed with negative outputs.
//
// This is the "truly decentralized but computationally expensive" end of
// the verifiability trade-off; package separ is the other end.
package confidentialtx

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"permchain/internal/crypto"
	"permchain/internal/types"
)

// AmountBits bounds transferable amounts to [0, 2^AmountBits).
const AmountBits = 32

const (
	domainConserve = "confidentialtx conservation"
)

// NoteID identifies a note on the ledger (the hash of its commitment).
type NoteID = types.Hash

// Note is the owner-side secret material of one committed amount.
type Note struct {
	ID       NoteID
	Owner    ed25519.PublicKey
	Comm     crypto.Commitment
	opening  crypto.Opening
	ownerKey ed25519.PrivateKey
}

// Amount reveals the note's amount to its owner.
func (n *Note) Amount() int64 { return n.opening.Value.Int64() }

// WithOwnerKey returns a copy of the note equipped with the owner's
// signing key. Wallets call this on receipt: transfers deliver notes
// without keys, and only the rightful owner can attach one that will
// produce valid ownership signatures.
func (n *Note) WithOwnerKey(priv ed25519.PrivateKey) *Note {
	cp := *n
	cp.ownerKey = priv
	return &cp
}

// nullifier derives the note's unique spend tag. Ledger validators learn
// which note was spent but never the amount; real systems hide the note
// link too (requires SNARK-strength proofs, see DESIGN.md).
func nullifier(id NoteID) types.Hash {
	return types.HashConcat([]byte("confidentialtx nullifier"), id[:])
}

// OutputSpec describes one desired transfer output.
type OutputSpec struct {
	Owner  ed25519.PublicKey
	Amount int64
}

// TransferOutput is the public side of a created note.
type TransferOutput struct {
	ID    NoteID
	Owner ed25519.PublicKey
	Comm  crypto.Commitment
	Range crypto.RangeProof
}

// Transfer is the public transaction: spends inputs, creates outputs.
type Transfer struct {
	Nullifiers []types.Hash
	InputIDs   []NoteID
	Outputs    []TransferOutput
	// Conserve proves Σinputs − Σoutputs commits to zero.
	Conserve crypto.SchnorrProof
	// Sigs authorize each input, signed by the input note's owner over
	// the transfer digest.
	Sigs [][]byte
}

// digest binds all public transfer content for the ownership signatures.
func (t *Transfer) digest() types.Hash {
	parts := [][]byte{[]byte("confidentialtx transfer")}
	for _, nf := range t.Nullifiers {
		nf := nf
		parts = append(parts, nf[:])
	}
	for _, o := range t.Outputs {
		o := o
		parts = append(parts, o.ID[:], o.Owner, o.Comm.C.Bytes())
	}
	return types.HashConcat(parts...)
}

// Ledger is the replicated verifier state: live note commitments and the
// nullifier set.
type Ledger struct {
	g  *crypto.Group
	mu sync.Mutex
	// notes maps live note ids to their commitments and owners.
	notes map[NoteID]TransferOutput
	spent map[types.Hash]bool
}

// NewLedger creates an empty confidential-asset ledger.
func NewLedger() *Ledger {
	return &Ledger{
		g:     crypto.DefaultGroup(),
		notes: map[NoteID]TransferOutput{},
		spent: map[types.Hash]bool{},
	}
}

// Ledger errors.
var (
	ErrDoubleSpend  = errors.New("confidentialtx: note already spent")
	ErrUnknownNote  = errors.New("confidentialtx: unknown input note")
	ErrBadSignature = errors.New("confidentialtx: ownership signature invalid")
	ErrBadRange     = errors.New("confidentialtx: output range proof invalid")
	ErrBadConserve  = errors.New("confidentialtx: mass conservation proof invalid")
	ErrBadAmount    = errors.New("confidentialtx: amount out of range")
)

// Mint issues a new note to the given owner — the trusted issuance used
// to bootstrap tests and experiments (a deployment would gateway deposits).
func (l *Ledger) Mint(ownerPub ed25519.PublicKey, ownerPriv ed25519.PrivateKey, amount int64) (*Note, error) {
	if amount < 0 || amount >= 1<<AmountBits {
		return nil, ErrBadAmount
	}
	comm, opening := l.g.Commit(big.NewInt(amount))
	id := types.HashConcat([]byte("note"), comm.C.Bytes(), ownerPub)
	note := &Note{ID: id, Owner: ownerPub, Comm: comm, opening: opening, ownerKey: ownerPriv}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notes[id] = TransferOutput{ID: id, Owner: ownerPub, Comm: comm}
	return note, nil
}

// NewTransfer builds a transfer spending the inputs into the outputs,
// producing the new owner-side notes. All inputs must share an owner key
// (the spender); input total must equal output total — the caller adds a
// change output if needed.
func (l *Ledger) NewTransfer(inputs []*Note, outputs []OutputSpec) (*Transfer, []*Note, error) {
	if len(inputs) == 0 || len(outputs) == 0 {
		return nil, nil, errors.New("confidentialtx: transfer needs inputs and outputs")
	}
	var inSum, outSum int64
	for _, in := range inputs {
		inSum += in.Amount()
	}
	for _, o := range outputs {
		if o.Amount < 0 || o.Amount >= 1<<AmountBits {
			return nil, nil, ErrBadAmount
		}
		outSum += o.Amount
	}
	if inSum != outSum {
		return nil, nil, fmt.Errorf("confidentialtx: inputs %d != outputs %d", inSum, outSum)
	}

	t := &Transfer{}
	var notes []*Note
	inBlind := new(big.Int)
	for _, in := range inputs {
		t.Nullifiers = append(t.Nullifiers, nullifier(in.ID))
		t.InputIDs = append(t.InputIDs, in.ID)
		inBlind.Add(inBlind, in.opening.Blinding)
	}
	outBlind := new(big.Int)
	for _, o := range outputs {
		comm, opening := l.g.Commit(big.NewInt(o.Amount))
		rp, err := l.g.ProveRange(opening, AmountBits)
		if err != nil {
			return nil, nil, err
		}
		id := types.HashConcat([]byte("note"), comm.C.Bytes(), o.Owner)
		t.Outputs = append(t.Outputs, TransferOutput{ID: id, Owner: o.Owner, Comm: comm, Range: rp})
		notes = append(notes, &Note{ID: id, Owner: o.Owner, Comm: comm, opening: opening})
		outBlind.Add(outBlind, opening.Blinding)
	}

	// Conservation: C_in / C_out commits to 0 with blinding rIn − rOut.
	diff, err := l.conservationCommitment(t)
	if err != nil {
		return nil, nil, err
	}
	r := new(big.Int).Sub(inBlind, outBlind)
	r.Mod(r, l.g.Q)
	t.Conserve = l.g.ProveZero(domainConserve, diff, r)

	// Ownership signatures over the final digest.
	d := t.digest()
	for _, in := range inputs {
		t.Sigs = append(t.Sigs, ed25519.Sign(in.ownerKey, d[:]))
	}
	return t, notes, nil
}

// conservationCommitment computes C = Πinputs / Πoutputs from ledger
// state; it must commit to zero.
func (l *Ledger) conservationCommitment(t *Transfer) (crypto.Commitment, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	acc := crypto.Commitment{C: big.NewInt(1)}
	var err error
	for _, id := range t.InputIDs {
		in, ok := l.notes[id]
		if !ok {
			return crypto.Commitment{}, fmt.Errorf("%w: %v", ErrUnknownNote, id)
		}
		acc, err = l.g.AddCommitments(acc, in.Comm)
		if err != nil {
			return crypto.Commitment{}, err
		}
	}
	for _, o := range t.Outputs {
		acc, err = l.g.SubCommitments(acc, o.Comm)
		if err != nil {
			return crypto.Commitment{}, err
		}
	}
	return acc, nil
}

// Verify checks a transfer without applying it.
func (l *Ledger) Verify(t *Transfer) error {
	if len(t.InputIDs) == 0 || len(t.InputIDs) != len(t.Nullifiers) || len(t.InputIDs) != len(t.Sigs) {
		return errors.New("confidentialtx: malformed transfer")
	}
	d := t.digest()
	l.mu.Lock()
	for i, id := range t.InputIDs {
		in, ok := l.notes[id]
		if !ok {
			l.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrUnknownNote, id)
		}
		if l.spent[t.Nullifiers[i]] {
			l.mu.Unlock()
			return ErrDoubleSpend
		}
		if nullifier(id) != t.Nullifiers[i] {
			l.mu.Unlock()
			return errors.New("confidentialtx: nullifier mismatch")
		}
		if !ed25519.Verify(in.Owner, d[:], t.Sigs[i]) {
			l.mu.Unlock()
			return ErrBadSignature
		}
	}
	l.mu.Unlock()

	for _, o := range t.Outputs {
		if !l.g.VerifyRange(o.Comm, o.Range) {
			return ErrBadRange
		}
	}
	diff, err := l.conservationCommitment(t)
	if err != nil {
		return err
	}
	if !l.g.VerifyZero(domainConserve, diff, t.Conserve) {
		return ErrBadConserve
	}
	return nil
}

// Apply verifies and commits a transfer: inputs become spent, outputs
// become live notes.
func (l *Ledger) Apply(t *Transfer) error {
	if err := l.Verify(t); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range t.InputIDs {
		if l.spent[t.Nullifiers[i]] {
			return ErrDoubleSpend // lost a race; state unchanged so far
		}
	}
	for i, id := range t.InputIDs {
		l.spent[t.Nullifiers[i]] = true
		delete(l.notes, id)
	}
	for _, o := range t.Outputs {
		l.notes[o.ID] = o
	}
	return nil
}

// LiveNotes returns the number of unspent notes.
func (l *Ledger) LiveNotes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.notes)
}

// SpentCount returns the nullifier-set size.
func (l *Ledger) SpentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spent)
}
