package separ

import (
	"errors"
	"math/big"
	"testing"

	"permchain/internal/crypto"
)

const week = Period("2026-W27")

func setup(t *testing.T, budget int) (*Authority, *Ledger) {
	t.Helper()
	a, err := NewAuthority(budget)
	if err != nil {
		t.Fatal(err)
	}
	return a, NewLedger()
}

func TestIssueAndSpend(t *testing.T) {
	a, l := setup(t, 40)
	w := NewWorker("driver-1")
	if err := w.RequestTokens(a, week, 10); err != nil {
		t.Fatal(err)
	}
	if w.TokenCount() != 10 {
		t.Fatalf("tokens %d", w.TokenCount())
	}
	p := NewPlatform("uber", l, a.PublicKey())
	for i := 0; i < 10; i++ {
		tok, err := w.Take()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AcceptWork(tok); err != nil {
			t.Fatal(err)
		}
	}
	if p.Accepted() != 10 || l.SpentCount() != 10 {
		t.Fatalf("accepted %d spent %d", p.Accepted(), l.SpentCount())
	}
}

func TestGlobalBudgetAcrossPlatforms(t *testing.T) {
	// The FLSA scenario from the tutorial: a worker on two platforms
	// cannot exceed 40 total hours because the authority caps issuance.
	a, l := setup(t, 40)
	w := NewWorker("driver-1")
	if err := w.RequestTokens(a, week, 25); err != nil {
		t.Fatal(err)
	}
	if err := w.RequestTokens(a, week, 15); err != nil {
		t.Fatal(err)
	}
	// The 41st token is refused.
	if err := w.RequestTokens(a, week, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	uber := NewPlatform("uber", l, a.PublicKey())
	lyft := NewPlatform("lyft", l, a.PublicKey())
	for i := 0; i < 25; i++ {
		tok, _ := w.Take()
		if err := uber.AcceptWork(tok); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		tok, _ := w.Take()
		if err := lyft.AcceptWork(tok); err != nil {
			t.Fatal(err)
		}
	}
	if uber.Accepted()+lyft.Accepted() != 40 {
		t.Fatalf("total %d", uber.Accepted()+lyft.Accepted())
	}
	if _, err := w.Take(); err == nil {
		t.Fatal("41st hour worked")
	}
}

func TestNewPeriodResetsBudget(t *testing.T) {
	a, _ := setup(t, 5)
	w := NewWorker("w")
	if err := w.RequestTokens(a, "W1", 5); err != nil {
		t.Fatal(err)
	}
	if err := w.RequestTokens(a, "W1", 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("budget not enforced")
	}
	if err := w.RequestTokens(a, "W2", 5); err != nil {
		t.Fatalf("new period refused: %v", err)
	}
	if a.Issued("W1", "w") != 5 || a.Issued("W2", "w") != 5 {
		t.Fatal("issuance accounting wrong")
	}
}

func TestDoubleSpendAcrossPlatforms(t *testing.T) {
	a, l := setup(t, 10)
	w := NewWorker("w")
	if err := w.RequestTokens(a, week, 1); err != nil {
		t.Fatal(err)
	}
	tok, _ := w.Take()
	p1 := NewPlatform("p1", l, a.PublicKey())
	p2 := NewPlatform("p2", l, a.PublicKey())
	if err := p1.AcceptWork(tok); err != nil {
		t.Fatal(err)
	}
	if err := p2.AcceptWork(tok); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("token spent twice: %v", err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	a, l := setup(t, 10)
	p := NewPlatform("p", l, a.PublicKey())
	forged := &Token{Body: []byte("fake token"), Sig: big.NewInt(12345)}
	if err := p.AcceptWork(forged); !errors.Is(err, ErrBadToken) {
		t.Fatalf("forged token accepted: %v", err)
	}
	// A token signed by a different authority is also rejected.
	other, err := NewAuthority(10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker("w")
	if err := w.RequestTokens(other, week, 1); err != nil {
		t.Fatal(err)
	}
	tok, _ := w.Take()
	if err := p.AcceptWork(tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("foreign token accepted: %v", err)
	}
}

func TestUnlinkability(t *testing.T) {
	// The authority's view: blinded values. The platform's view: token
	// bodies. These must share no common strings, or the authority could
	// deanonymize spends. Structural check: the token body never appears
	// in the blinded values the authority signed.
	a, err := NewAuthority(10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker("w")
	pub := a.PublicKey()

	// Run the blinding manually to capture the authority's view.
	body := []byte("the secret token body 01")
	bt, err := crypto.Blind(pub, body)
	if err != nil {
		t.Fatal(err)
	}
	if string(bt.Blinded.Bytes()) == string(body) {
		t.Fatal("blinded value reveals token body")
	}
	_ = w
	if a.Budget() != 10 {
		t.Fatal("budget accessor")
	}
}

func TestTokenIDsDistinct(t *testing.T) {
	a, _ := setup(t, 10)
	w := NewWorker("w")
	if err := w.RequestTokens(a, week, 10); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		tok, _ := w.Take()
		if seen[tok.ID()] {
			t.Fatal("duplicate token id")
		}
		seen[tok.ID()] = true
	}
}

func BenchmarkTokenVerify(b *testing.B) {
	a, err := NewAuthority(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	l := NewLedger()
	w := NewWorker("w")
	if err := w.RequestTokens(a, week, b.N%4096+1); err != nil {
		b.Fatal(err)
	}
	p := NewPlatform("p", l, a.PublicKey())
	tok, _ := w.Take()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Verify-only cost: signature check (the expensive part).
		if !p.VerifyToken(tok) {
			b.Fatal("verify failed")
		}
	}
}
