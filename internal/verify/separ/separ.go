// Package separ implements the token-based verifiability technique of
// Separ (Amiri et al., WWW'21) as presented in §2.3.2: a trusted central
// authority models a global regulation (e.g. FLSA's 40 work-hours per
// week) as a per-worker budget of anonymous tokens, issued via RSA blind
// signatures so that spending is unlinkable to issuance. Platforms verify
// a token with one cheap signature check plus a double-spend lookup in a
// ledger shared across platforms, so a worker cannot exceed the global
// budget even by splitting work across competing platforms.
//
// The trade-off against package confidentialtx is the tutorial's point:
// token verification is orders of magnitude cheaper than zero-knowledge
// proofs, but everyone must trust the authority.
package separ

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"permchain/internal/crypto"
)

// Period identifies a regulation window (e.g. an ISO week).
type Period string

// Token is one spendable unit of the regulated quantity (one work hour).
type Token struct {
	Body []byte   // random token body, unknown to the authority
	Sig  *big.Int // authority's unblinded RSA signature over Body
}

// ID returns the token's ledger key.
func (t *Token) ID() string { return hex.EncodeToString(t.Body) }

// Authority is the trusted token issuer. It knows which worker asked for
// how many tokens (enforcing the budget) but never sees token bodies, so
// it cannot link spends back to workers.
type Authority struct {
	signer *crypto.BlindSigner
	budget int
	mu     sync.Mutex
	issued map[Period]map[string]int // period → workerID → count
}

// Authority and platform errors.
var (
	ErrBudgetExceeded = errors.New("separ: token budget exceeded for period")
	ErrDoubleSpend    = errors.New("separ: token already spent")
	ErrBadToken       = errors.New("separ: token signature invalid")
)

// NewAuthority creates an authority enforcing the given per-period,
// per-worker token budget (e.g. 40 for FLSA weekly hours).
func NewAuthority(budget int) (*Authority, error) {
	signer, err := crypto.NewBlindSigner(1024)
	if err != nil {
		return nil, err
	}
	return &Authority{signer: signer, budget: budget, issued: map[Period]map[string]int{}}, nil
}

// PublicKey returns the token verification key platforms use.
func (a *Authority) PublicKey() *rsa.PublicKey { return a.signer.PublicKey() }

// Budget returns the per-period budget.
func (a *Authority) Budget() int { return a.budget }

// IssueBlind signs the blinded token bodies for a worker, refusing to
// exceed the worker's remaining budget for the period.
func (a *Authority) IssueBlind(period Period, workerID string, blinded []*big.Int) ([]*big.Int, error) {
	a.mu.Lock()
	per, ok := a.issued[period]
	if !ok {
		per = map[string]int{}
		a.issued[period] = per
	}
	if per[workerID]+len(blinded) > a.budget {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s has %d of %d", ErrBudgetExceeded, workerID, per[workerID], a.budget)
	}
	per[workerID] += len(blinded)
	a.mu.Unlock()

	out := make([]*big.Int, len(blinded))
	for i, b := range blinded {
		sig, err := a.signer.SignBlinded(b)
		if err != nil {
			return nil, err
		}
		out[i] = sig
	}
	return out, nil
}

// Issued reports how many tokens a worker obtained in a period.
func (a *Authority) Issued(period Period, workerID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.issued[period][workerID]
}

// Worker holds unspent tokens.
type Worker struct {
	ID     string
	mu     sync.Mutex
	tokens []*Token
}

// NewWorker creates a worker.
func NewWorker(id string) *Worker { return &Worker{ID: id} }

// RequestTokens obtains n fresh anonymous tokens from the authority.
func (w *Worker) RequestTokens(a *Authority, period Period, n int) error {
	pub := a.PublicKey()
	bodies := make([][]byte, n)
	blindeds := make([]*big.Int, n)
	states := make([]*crypto.BlindedToken, n)
	for i := 0; i < n; i++ {
		body := make([]byte, 24)
		if _, err := rand.Read(body); err != nil {
			return err
		}
		bt, err := crypto.Blind(pub, body)
		if err != nil {
			return err
		}
		bodies[i] = body
		blindeds[i] = bt.Blinded
		states[i] = bt
	}
	sigs, err := a.IssueBlind(period, w.ID, blindeds)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, s := range sigs {
		sig, err := states[i].Unblind(pub, s)
		if err != nil {
			return err
		}
		w.tokens = append(w.tokens, &Token{Body: bodies[i], Sig: sig})
	}
	return nil
}

// TokenCount returns the worker's unspent token count.
func (w *Worker) TokenCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.tokens)
}

// Take removes and returns one unspent token.
func (w *Worker) Take() (*Token, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.tokens) == 0 {
		return nil, errors.New("separ: no tokens left")
	}
	t := w.tokens[len(w.tokens)-1]
	w.tokens = w.tokens[:len(w.tokens)-1]
	return t, nil
}

// Ledger is the spent-token set shared across platforms. A deployment
// replicates it across the platforms with a consensus protocol (any
// internal/consensus implementation slots in — double-spend recording is
// just another ordered operation); this type captures the verification
// logic the replicas run.
type Ledger struct {
	mu    sync.Mutex
	spent map[string]string // token id → platform that accepted it
}

// NewLedger creates an empty spent-token ledger.
func NewLedger() *Ledger { return &Ledger{spent: map[string]string{}} }

// SpentCount returns how many tokens have been consumed system-wide.
func (l *Ledger) SpentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spent)
}

// spend records the token atomically, failing on double-spend.
func (l *Ledger) spend(id, platform string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.spent[id]; ok {
		return ErrDoubleSpend
	}
	l.spent[id] = platform
	return nil
}

// Platform is one crowdworking platform: it verifies tokens against the
// authority's public key and the shared ledger.
type Platform struct {
	ID       string
	ledger   *Ledger
	authPub  *rsa.PublicKey
	accepted int
	mu       sync.Mutex
}

// NewPlatform creates a platform over the shared ledger.
func NewPlatform(id string, ledger *Ledger, authPub *rsa.PublicKey) *Platform {
	return &Platform{ID: id, ledger: ledger, authPub: authPub}
}

// AcceptWork verifies one token for one unit of work: signature check
// (the token really came from the authority) and double-spend check (it
// was not used on any platform before).
func (p *Platform) AcceptWork(t *Token) error {
	if !crypto.VerifyTokenSig(p.authPub, t.Body, t.Sig) {
		return ErrBadToken
	}
	if err := p.ledger.spend(t.ID(), p.ID); err != nil {
		return err
	}
	p.mu.Lock()
	p.accepted++
	p.mu.Unlock()
	return nil
}

// VerifyToken checks a token's authority signature without spending it —
// the pure verification cost the E5 experiment measures.
func (p *Platform) VerifyToken(t *Token) bool {
	return crypto.VerifyTokenSig(p.authPub, t.Body, t.Sig)
}

// Accepted returns how many work units this platform has accepted.
func (p *Platform) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}
