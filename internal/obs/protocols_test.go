// Cross-protocol acceptance test for the observability layer: every one
// of the six consensus protocols, run as a small healthy cluster, must
// emit a non-empty commit-latency histogram and a full lifecycle span
// (submit → propose → commit → apply) through a shared Obs.
package obs_test

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/ibft"
	"permchain/internal/consensus/paxos"
	"permchain/internal/consensus/pbft"
	"permchain/internal/consensus/raft"
	"permchain/internal/consensus/tendermint"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/types"
)

func TestAllProtocolsEmitMetricsAndSpans(t *testing.T) {
	const n = 4
	const decisions = 5
	protos := []struct {
		name string
		mk   func(cfg consensus.Config) consensus.Replica
	}{
		{"pbft", func(cfg consensus.Config) consensus.Replica { return pbft.New(cfg) }},
		{"raft", func(cfg consensus.Config) consensus.Replica { return raft.New(cfg) }},
		{"paxos", func(cfg consensus.Config) consensus.Replica { return paxos.New(cfg) }},
		{"tendermint", func(cfg consensus.Config) consensus.Replica {
			return tendermint.New(tendermint.Config{Config: cfg})
		}},
		{"hotstuff", func(cfg consensus.Config) consensus.Replica { return hotstuff.New(cfg) }},
		{"ibft", func(cfg consensus.Config) consensus.Replica { return ibft.New(cfg) }},
	}
	for _, p := range protos {
		p := p
		t.Run(p.name, func(t *testing.T) {
			o := obs.New()
			net := network.New(network.WithRegistry(o.Reg))
			keys := crypto.NewKeyring(n)
			ids := make([]types.NodeID, n)
			for i := range ids {
				ids[i] = types.NodeID(i)
			}
			reps := make([]consensus.Replica, n)
			for i := range reps {
				reps[i] = p.mk(consensus.Config{
					Self: ids[i], Nodes: ids, Net: net, Keys: keys,
					Timeout: 2 * time.Second, DisableSig: true,
					Obs: o,
				})
				reps[i].Start()
			}
			defer func() {
				for _, r := range reps {
					r.Stop()
				}
			}()

			digests := make([]types.Hash, decisions)
			for i := 0; i < decisions; i++ {
				v := fmt.Sprintf("%s-tx-%d", p.name, i)
				digests[i] = types.HashBytes([]byte(v))
				reps[0].Submit(v, digests[i])
			}
			got := consensus.WaitDecisions(reps[0].Decisions(), decisions, 30*time.Second)
			if len(got) < decisions {
				t.Fatalf("%s: only %d/%d decisions", p.name, len(got), decisions)
			}

			snap := o.Reg.Snapshot()
			hs, ok := snap.Histograms[p.name+"/commit_latency"]
			if !ok || hs.Count == 0 {
				t.Fatalf("%s: commit-latency histogram empty or missing (histograms: %v)",
					p.name, snap.Histograms)
			}
			if snap.Counters[p.name+"/decisions"] == 0 {
				t.Fatalf("%s: decisions counter not incremented", p.name)
			}
			// The shared network must have mirrored its traffic counters.
			if snap.Counters["net/sent"] == 0 || snap.Counters["net/delivered"] == 0 {
				t.Fatalf("%s: network counters missing: %v", p.name, snap.Counters)
			}

			// Every submitted value must have a full lifecycle span. Prepare
			// and pre-commit phases are protocol-specific, but submit,
			// propose, commit, and apply are universal.
			for i, d := range digests {
				sp, ok := o.Tracer.Span(d)
				if !ok {
					t.Fatalf("%s: no span for tx %d", p.name, i)
				}
				for _, ph := range []obs.Phase{obs.PhaseSubmit, obs.PhasePropose, obs.PhaseCommit, obs.PhaseApply} {
					if !sp.Has(ph) {
						t.Errorf("%s: tx %d span missing phase %v (has %v)", p.name, i, ph, sp)
					}
				}
				if lat, ok := sp.Between(obs.PhaseSubmit, obs.PhaseApply); !ok || lat < 0 {
					t.Errorf("%s: tx %d submit→apply latency unavailable or negative (%d)", p.name, i, lat)
				}
			}

			// Folding the spans back into the registry must yield the
			// end-to-end histogram.
			obs.SummarizeSpans(o.Tracer.Spans(), o.Reg, p.name+"/span")
			snap = o.Reg.Snapshot()
			if hs := snap.Histograms[p.name+"/span/submit_to_apply"]; hs.Count < decisions {
				t.Fatalf("%s: span summary has %d entries, want >= %d", p.name, hs.Count, decisions)
			}
		})
	}
}
