package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (queue depths, current view, ...).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket 0 holds samples <= 0,
// bucket i (1..64) holds samples in [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a log2-bucketed distribution of int64 samples (typically
// nanoseconds). Percentile extraction returns the upper bound of the bucket
// containing the requested rank, clamped to the observed min/max, so the
// relative error is at most 2x — plenty for latency shapes while keeping
// the struct a fixed 65-slot array.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observed sample (0 if empty).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1): the upper
// bound of the bucket holding the ceil(q*count)-th smallest sample, clamped
// to the observed [min, max]. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			est := BucketUpper(i)
			if est > h.max {
				est = h.max
			}
			if est < h.min {
				est = h.min
			}
			return est
		}
	}
	return h.max
}

// snapshotLocked assumes h.mu is held.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	mean := int64(0)
	if h.count > 0 {
		mean = h.sum / h.count
	}
	return HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Mean:  mean,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
		Max:   h.max,
	}
}

// Registry is a named collection of counters, gauges and histograms.
// Instruments are created on first use and live for the registry's lifetime.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is a point-in-time summary of one histogram. All values
// are in the histogram's native unit (nanoseconds for latency histograms).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// DurString renders a nanosecond-valued summary compactly, e.g.
// "n=120 p50=1.2ms p95=4.1ms p99=8.0ms max=9.7ms".
func (hs HistogramSnapshot) DurString() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
		hs.Count, time.Duration(hs.P50).Round(time.Microsecond),
		time.Duration(hs.P95).Round(time.Microsecond),
		time.Duration(hs.P99).Round(time.Microsecond),
		time.Duration(hs.Max).Round(time.Microsecond))
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument. Safe to call
// concurrently with updates.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName sanitizes a metric name for the Prometheus text exposition
// format: every byte outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit gets a '_' prefix.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			// digits are fine except in the leading position
		default:
			b[i] = '_'
		}
	}
	if len(b) > 0 && b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

// PromName exposes the exposition-format name sanitization for callers
// (the ops server) that render derived families — rates, windowed
// summaries — next to what WritePrometheus emits.
func PromName(name string) string { return promName(name) }

// ContentTypeProm is the Content-Type HTTP servers must send with the
// Prometheus text exposition format (version 0.0.4 is the text format's
// version, not ours).
const ContentTypeProm = "text/plain; version=0.0.4"

// promHelp renders the # HELP line for a metric: the original registry
// name (pre-sanitization) doubles as the help text, escaped per the
// exposition format (backslash and newline).
func promHelp(sanitized, original string) string {
	esc := make([]byte, 0, len(original))
	for i := 0; i < len(original); i++ {
		switch original[i] {
		case '\\':
			esc = append(esc, '\\', '\\')
		case '\n':
			esc = append(esc, '\\', 'n')
		default:
			esc = append(esc, original[i])
		}
	}
	return "# HELP " + sanitized + " permchain metric " + string(esc) + "\n"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (each family gets its # HELP and # TYPE lines; serve it with
// Content-Type ContentTypeProm). Histograms are rendered as summaries
// (quantile-labelled values plus _sum/_count), which matches how we
// extract percentiles.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "%s# TYPE %s counter\n%s %d\n", promHelp(n, k), n, n, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if _, err := fmt.Fprintf(w, "%s# TYPE %s gauge\n%s %d\n", promHelp(n, k), n, n, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		hs := s.Histograms[k]
		if _, err := fmt.Fprintf(w,
			"%s# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			promHelp(n, k), n, n, hs.P50, n, hs.P95, n, hs.P99, n, hs.Sum, n, hs.Count); err != nil {
			return err
		}
	}
	return nil
}
