// Package obs is the repo-wide observability substrate: a dependency-free
// metrics registry (counters, gauges, log-bucketed latency histograms with
// percentile extraction) plus a transaction-lifecycle tracer that records
// per-digest phase spans (submit -> propose -> prepare/pre-commit -> commit
// -> apply).
//
// Everything is nil-safe at the call site: instrumented code holds an *Obs
// (possibly nil) and calls methods on it unconditionally; a nil *Obs (or a
// nil Registry/Tracer inside it) turns every call into a no-op. That keeps
// the hot paths free of "if metrics enabled" branching and lets tests and
// production wiring opt in selectively.
//
// Timestamps come from a Clock. The default is the wall clock; deterministic
// tests (and the chaos harness when it wants reproducible spans) can use a
// ManualClock or adapt any monotonic counter — e.g. the simulated network's
// logical event clock — via ClockFunc.
package obs

import (
	"log/slog"
	"time"

	"permchain/internal/types"
)

// Obs bundles a metrics Registry with a lifecycle Tracer, and optionally
// a Health tracker and a structured-log base Logger. Components that want
// instrumentation carry an *Obs; every field may independently be nil —
// all forwarding methods below are no-ops on what is missing.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
	// Health, when set, receives liveness signals (commits, view
	// changes, store errors) from the layers sharing this Obs; the ops
	// server's /healthz and /readyz evaluate it. core attaches a default
	// tracker when building a chain with an Obs that has none.
	Health *Health
	// Log is the base structured logger; use Logger(component) to derive
	// per-component loggers (never Log directly — it may be nil).
	// Install with SetLogHandler.
	Log *slog.Logger
}

// New returns an Obs with a fresh Registry and a wall-clock Tracer.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(WallClock{})}
}

// NewWithClock returns an Obs whose Tracer stamps spans from clk.
func NewWithClock(clk Clock) *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(clk)}
}

// Inc adds 1 to the named counter. No-op on a nil receiver or registry.
func (o *Obs) Inc(name string) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(1)
}

// Add adds delta to the named counter.
func (o *Obs) Add(name string, delta int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(delta)
}

// SetGauge sets the named gauge.
func (o *Obs) SetGauge(name string, v int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Gauge(name).Set(v)
}

// AddGauge adds delta (which may be negative) to the named gauge — the
// increment/decrement form queue-depth gauges need.
func (o *Obs) AddGauge(name string, delta int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Gauge(name).Add(delta)
}

// Observe records a duration (in nanoseconds) into the named histogram.
func (o *Obs) Observe(name string, d time.Duration) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Histogram(name).Observe(int64(d))
}

// ObserveInt records a raw int64 sample (queue depths, batch sizes, ...)
// into the named histogram.
func (o *Obs) ObserveInt(name string, v int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Histogram(name).Observe(v)
}

// Mark stamps a lifecycle phase on the span for digest. seq may be 0 when
// not yet known; the first non-zero seq wins.
func (o *Obs) Mark(digest types.Hash, seq uint64, ph Phase) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Mark(digest, seq, ph)
}

// MarkLatency stamps phase `to` on the span for digest and, if phase `from`
// has already been stamped, observes the elapsed time into the named
// histogram. This is the one-liner protocols use at their commit points:
//
//	cfg.Obs.MarkLatency("pbft/commit_latency", d, seq, obs.PhasePropose, obs.PhaseCommit)
func (o *Obs) MarkLatency(name string, digest types.Hash, seq uint64, from, to Phase) {
	if o == nil || o.Tracer == nil {
		return
	}
	now := o.Tracer.Mark(digest, seq, to)
	if start, ok := o.Tracer.PhaseAt(digest, from); ok && o.Reg != nil && now >= start {
		o.Reg.Histogram(name).Observe(now - start)
	}
}

// NoteSubmit forwards a submission signal to the health tracker.
func (o *Obs) NoteSubmit() {
	if o == nil {
		return
	}
	o.Health.NoteSubmit()
}

// NoteCommit forwards a commit-progress signal to the health tracker.
func (o *Obs) NoteCommit(height uint64, txs int) {
	if o == nil {
		return
	}
	o.Health.NoteCommit(height, txs)
}

// NoteViewChange forwards a view-change/election/round-change churn
// signal to the health tracker.
func (o *Obs) NoteViewChange() {
	if o == nil {
		return
	}
	o.Health.NoteViewChange()
}

// NoteStoreError forwards a storage failure to the health tracker.
func (o *Obs) NoteStoreError(err error) {
	if o == nil {
		return
	}
	o.Health.NoteStoreError(err)
}
