package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// The health model folds the signals the rest of the system already
// produces — commit progress, view-change churn, pipeline backlog,
// mempool occupancy, store errors — into a three-state verdict with
// per-check reasons. It is deliberately cluster-scoped: in this
// in-process design every replica shares one *Obs, so one Health tracks
// the whole cluster, which is also the unit the ops server reports on.
//
// The readiness split follows the usual Kubernetes convention: /healthz
// (liveness) fails only on Unhealthy, /readyz (readiness) requires full
// Healthy, so a degraded node is taken out of rotation before it falls
// over but is not restarted for shedding load.

// HealthStatus is the three-state verdict of one check or of the whole
// report: the maximum severity across checks.
type HealthStatus int

// The verdict ladder. Ordering matters: a report's overall status is the
// numeric max of its checks.
const (
	Healthy HealthStatus = iota
	Degraded
	Unhealthy
)

// String names the status.
func (s HealthStatus) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the status as its lowercase name.
func (s HealthStatus) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// HealthCheck is one named verdict with its reason.
type HealthCheck struct {
	Name   string       `json:"name"`
	Status HealthStatus `json:"status"`
	Reason string       `json:"reason"`
}

// HealthReport is the full evaluation: overall status (max severity) plus
// every check, in a stable order (built-ins first, then registered checks
// in registration order).
type HealthReport struct {
	Status HealthStatus  `json:"status"`
	Checks []HealthCheck `json:"checks"`
}

// Check returns the named check from the report, if present.
func (r HealthReport) Check(name string) (HealthCheck, bool) {
	for _, c := range r.Checks {
		if c.Name == name {
			return c, true
		}
	}
	return HealthCheck{}, false
}

// HealthConfig tunes the built-in checks. Zero fields take defaults.
type HealthConfig struct {
	// Cadence is the expected commit interval while work is pending. A
	// chain with pending submissions that has not committed for
	// Cadence*StallDegraded (default 3) is degraded, for
	// Cadence*StallUnhealthy (default 10) unhealthy. Default 1s.
	Cadence time.Duration
	// StallDegraded / StallUnhealthy are the stall multipliers.
	StallDegraded, StallUnhealthy int
	// ChurnWindow is the sliding window for view-change churn (default
	// 10s); ChurnDegraded / ChurnUnhealthy are the view changes within it
	// that trip each level (defaults 3 and 10).
	ChurnWindow                   time.Duration
	ChurnDegraded, ChurnUnhealthy int
	// Clock supplies the current time (wall clock when nil); tests
	// inject a manual source to drive the stall checks deterministically.
	Clock func() time.Time
}

func (c HealthConfig) defaulted() HealthConfig {
	if c.Cadence <= 0 {
		c.Cadence = time.Second
	}
	if c.StallDegraded <= 0 {
		c.StallDegraded = 3
	}
	if c.StallUnhealthy <= 0 {
		c.StallUnhealthy = 10
	}
	if c.ChurnWindow <= 0 {
		c.ChurnWindow = 10 * time.Second
	}
	if c.ChurnDegraded <= 0 {
		c.ChurnDegraded = 3
	}
	if c.ChurnUnhealthy <= 0 {
		c.ChurnUnhealthy = 10
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Health tracks liveness signals and evaluates them on demand. All
// methods are safe for concurrent use and nil-safe, so instrumented code
// can call them unconditionally (mirroring the *Obs convention).
type Health struct {
	cfg HealthConfig

	mu         sync.Mutex
	pending    int64     // submitted but not yet committed (estimate)
	stallSince time.Time // zero when no pending work; else when the current stall window began
	lastCommit time.Time
	lastHeight uint64
	vcTimes    []time.Time // view-change timestamps within ChurnWindow
	storeErrs  int64
	storeErr   string // first error, sticky

	checks []HealthCheck // registration order
	fns    map[string]func() HealthCheck
}

// NewHealth builds a tracker from cfg (zero value is fine).
func NewHealth(cfg HealthConfig) *Health {
	return &Health{cfg: cfg.defaulted(), fns: make(map[string]func() HealthCheck)}
}

// NoteSubmit records one submitted transaction: pending work exists, so
// the consensus-liveness stall clock is running.
func (h *Health) NoteSubmit() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.pending++
	if h.stallSince.IsZero() {
		h.stallSince = h.cfg.Clock()
	}
	h.mu.Unlock()
}

// NoteCommit records a committed block: txs transactions settled at
// height. Progress resets the stall clock.
func (h *Health) NoteCommit(height uint64, txs int) {
	if h == nil {
		return
	}
	now := h.cfg.Clock()
	h.mu.Lock()
	h.lastCommit = now
	if height > h.lastHeight {
		h.lastHeight = height
	}
	h.pending -= int64(txs)
	if h.pending <= 0 {
		h.pending = 0
		h.stallSince = time.Time{}
	} else {
		h.stallSince = now
	}
	h.mu.Unlock()
}

// NoteViewChange records one view change / leader election / round
// change — the churn signal.
func (h *Health) NoteViewChange() {
	if h == nil {
		return
	}
	now := h.cfg.Clock()
	h.mu.Lock()
	h.vcTimes = append(h.vcTimes, now)
	h.trimChurnLocked(now)
	h.mu.Unlock()
}

// trimChurnLocked drops view changes older than the churn window.
func (h *Health) trimChurnLocked(now time.Time) {
	cut := now.Add(-h.cfg.ChurnWindow)
	i := 0
	for i < len(h.vcTimes) && h.vcTimes[i].Before(cut) {
		i++
	}
	if i > 0 {
		h.vcTimes = append(h.vcTimes[:0], h.vcTimes[i:]...)
	}
}

// NoteStoreError records a storage-layer failure (fsync error, snapshot
// write error, detected corruption). Sticky: durability is compromised
// until an operator intervenes, so the check never self-clears.
func (h *Health) NoteStoreError(err error) {
	if h == nil || err == nil {
		return
	}
	h.mu.Lock()
	h.storeErrs++
	if h.storeErr == "" {
		h.storeErr = err.Error()
	}
	h.mu.Unlock()
}

// RegisterCheck attaches a named custom check evaluated on every Report.
// Re-registering a name replaces the function. The wiring layer uses
// this for signals only it can see: apply-queue backlog, mempool
// occupancy.
func (h *Health) RegisterCheck(name string, fn func() HealthCheck) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if _, seen := h.fns[name]; !seen {
		h.checks = append(h.checks, HealthCheck{Name: name})
	}
	h.fns[name] = fn
	h.mu.Unlock()
}

// LastCommit returns the last commit's time and height (zero before the
// first commit).
func (h *Health) LastCommit() (time.Time, uint64) {
	if h == nil {
		return time.Time{}, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastCommit, h.lastHeight
}

// Report evaluates every check now.
func (h *Health) Report() HealthReport {
	if h == nil {
		return HealthReport{Status: Healthy}
	}
	now := h.cfg.Clock()
	h.mu.Lock()
	checks := []HealthCheck{h.livenessLocked(now), h.churnLocked(now), h.storeLocked()}
	order := make([]string, 0, len(h.checks))
	for _, c := range h.checks {
		order = append(order, c.Name)
	}
	fns := make([]func() HealthCheck, 0, len(order))
	for _, name := range order {
		fns = append(fns, h.fns[name])
	}
	h.mu.Unlock()
	// Registered checks run outside the lock: they read other components
	// (pool stats, channel depths) and must not hold h.mu while doing so.
	for i, fn := range fns {
		if fn == nil {
			continue
		}
		c := fn()
		c.Name = order[i]
		checks = append(checks, c)
	}
	rep := HealthReport{Checks: checks}
	for _, c := range checks {
		if c.Status > rep.Status {
			rep.Status = c.Status
		}
	}
	return rep
}

// livenessLocked is the consensus-liveness check: pending work with no
// commit progress for too long means ordering has stalled.
func (h *Health) livenessLocked(now time.Time) HealthCheck {
	c := HealthCheck{Name: "consensus_liveness", Status: Healthy}
	if h.stallSince.IsZero() {
		if h.lastCommit.IsZero() {
			c.Reason = "idle, no commits yet"
		} else {
			c.Reason = "idle at height " + utoa(h.lastHeight)
		}
		return c
	}
	stall := now.Sub(h.stallSince)
	switch {
	case stall >= time.Duration(h.cfg.StallUnhealthy)*h.cfg.Cadence:
		c.Status = Unhealthy
	case stall >= time.Duration(h.cfg.StallDegraded)*h.cfg.Cadence:
		c.Status = Degraded
	}
	if c.Status == Healthy {
		c.Reason = "committing, height " + utoa(h.lastHeight)
	} else {
		c.Reason = utoa(uint64(h.pending)) + " pending, no commit for " + stall.Round(time.Millisecond).String()
	}
	return c
}

// churnLocked is the view-change storm check.
func (h *Health) churnLocked(now time.Time) HealthCheck {
	h.trimChurnLocked(now)
	n := len(h.vcTimes)
	c := HealthCheck{Name: "view_churn", Status: Healthy,
		Reason: utoa(uint64(n)) + " view changes in " + h.cfg.ChurnWindow.String()}
	switch {
	case n >= h.cfg.ChurnUnhealthy:
		c.Status = Unhealthy
	case n >= h.cfg.ChurnDegraded:
		c.Status = Degraded
	}
	return c
}

// storeLocked is the durability check.
func (h *Health) storeLocked() HealthCheck {
	c := HealthCheck{Name: "store", Status: Healthy, Reason: "no storage errors"}
	if h.storeErrs > 0 {
		c.Status = Unhealthy
		c.Reason = utoa(uint64(h.storeErrs)) + " storage errors, first: " + h.storeErr
	}
	return c
}

// utoa is strconv.FormatUint without the import weight in call sites.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
