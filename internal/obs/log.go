package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Structured logging. Every component (consensus, network, store,
// mempool, chaos, core) gets a per-component *slog.Logger from its *Obs,
// carrying a "component" attribute plus whatever identity the component
// adds (node, height, view, tx digest). The same nil-safety convention
// as metrics applies: an Obs without a handler hands out a discard
// logger, so instrumented code logs unconditionally with no branching
// and tests stay quiet by default.
//
// LogRing is a bounded in-memory slog.Handler that keeps the most recent
// events; the ops server exposes it at /logs, which is what turns chaos
// runs into a queryable event stream instead of scrollback.

// discardHandler drops everything (slog.DiscardHandler arrived only in
// go 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// discardLogger is the shared no-op logger handed out by nil receivers.
var discardLogger = slog.New(discardHandler{})

// DiscardLogger returns the shared no-op logger — the safe default for
// components that keep their own *slog.Logger field.
func DiscardLogger() *slog.Logger { return discardLogger }

// SetLogHandler installs the base structured-log handler; component
// loggers derive from it. Call before Start/wiring (it is not
// synchronized against concurrent Logger calls).
func (o *Obs) SetLogHandler(h slog.Handler) {
	if o == nil || h == nil {
		return
	}
	o.Log = slog.New(h)
}

// Logger returns the named component's logger: the base logger with a
// "component" attribute, or a discard logger when no handler is
// installed. Always non-nil.
func (o *Obs) Logger(component string) *slog.Logger {
	if o == nil || o.Log == nil {
		return discardLogger
	}
	return o.Log.With("component", component)
}

// TeeHandler fans a record out to every handler (for example a human
// text handler on stderr plus a LogRing for /logs).
func TeeHandler(hs ...slog.Handler) slog.Handler { return teeHandler(hs) }

type teeHandler []slog.Handler

func (t teeHandler) Enabled(ctx context.Context, l slog.Level) bool {
	for _, h := range t {
		if h.Enabled(ctx, l) {
			return true
		}
	}
	return false
}

func (t teeHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range t {
		if h.Enabled(ctx, r.Level) {
			if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (t teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(teeHandler, len(t))
	for i, h := range t {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (t teeHandler) WithGroup(name string) slog.Handler {
	out := make(teeHandler, len(t))
	for i, h := range t {
		out[i] = h.WithGroup(name)
	}
	return out
}

// LogEvent is one captured record, flattened for JSON.
type LogEvent struct {
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// LogRing keeps the most recent log events in a fixed-size ring.
type LogRing struct {
	mu    sync.Mutex
	buf   []LogEvent
	next  int
	count int
	level slog.Level
}

// NewLogRing builds a ring holding up to capacity events (default 512)
// at or above level.
func NewLogRing(capacity int, level slog.Level) *LogRing {
	if capacity <= 0 {
		capacity = 512
	}
	return &LogRing{buf: make([]LogEvent, capacity), level: level}
}

// Recent returns up to limit events, newest first (all when limit <= 0).
func (r *LogRing) Recent(limit int) []LogEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if n > len(r.buf) {
		n = len(r.buf)
	}
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]LogEvent, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Len returns how many events the ring currently holds.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count > len(r.buf) {
		return len(r.buf)
	}
	return r.count
}

// Handler returns the ring's slog.Handler.
func (r *LogRing) Handler() slog.Handler { return &ringHandler{ring: r} }

// ringHandler adapts a LogRing to slog.Handler, accumulating WithAttrs
// prefixes the way structured handlers must.
type ringHandler struct {
	ring  *LogRing
	attrs []slog.Attr
	group string
}

func (h *ringHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.ring.level }

func (h *ringHandler) Handle(_ context.Context, rec slog.Record) error {
	ev := LogEvent{Time: rec.Time, Level: rec.Level.String(), Msg: rec.Message,
		Attrs: make(map[string]string, rec.NumAttrs()+len(h.attrs))}
	key := func(k string) string {
		if h.group != "" {
			return h.group + "." + k
		}
		return k
	}
	for _, a := range h.attrs {
		ev.Attrs[key(a.Key)] = a.Value.String()
	}
	rec.Attrs(func(a slog.Attr) bool {
		ev.Attrs[key(a.Key)] = a.Value.String()
		return true
	})
	r := h.ring
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.count++
	r.mu.Unlock()
	return nil
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := *h
	out.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &out
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	out := *h
	if out.group != "" {
		out.group += "." + name
	} else {
		out.group = name
	}
	return &out
}
