package obs

import (
	"sync"
	"time"
)

// Rate windows. Lifetime aggregates hide exactly what an operator (or a
// soak experiment) needs to see: whether the system is keeping up *right
// now*. The seven-system comparison methodology (arXiv 2311.15433) makes
// the same point for benchmarks — report continuously sampled,
// time-windowed measurements, not end-of-run averages. The pieces here:
//
//   - Registry.Sample captures full instrument state (including raw
//     histogram buckets, which HistogramSnapshot deliberately does not
//     expose);
//   - Registry.Delta subtracts a previous Sample, yielding a Snapshot
//     whose counters and histograms cover only the window between the
//     two samples — windowed p99 comes from the bucket-count diff;
//   - WindowSampler runs Delta on a timer and keeps a bounded ring of
//     recent windows, which is what /metrics and /metrics.json serve.

// HistState is the full internal state of one histogram: the raw bucket
// counts a windowed quantile needs.
type HistState struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

// state copies the histogram's full internal state.
func (h *Histogram) state() HistState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistState{Buckets: h.buckets, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// Sample is a full-state capture of a registry at one instant — the
// "prev" operand of Delta. Unlike Snapshot it keeps raw buckets, so two
// Samples can be subtracted without losing quantile information.
type Sample struct {
	At       time.Time
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistState
}

// Sample captures the current full state of every instrument.
func (r *Registry) Sample() Sample {
	s := Sample{At: time.Now()}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	s.Counters = make(map[string]int64, len(counters))
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	s.Gauges = make(map[string]int64, len(gauges))
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	s.Hists = make(map[string]HistState, len(hists))
	for k, v := range hists {
		s.Hists[k] = v.state()
	}
	return s
}

// Delta takes a fresh Sample and returns the windowed Snapshot covering
// (prev, now]: counters are increments, histograms are re-derived from
// bucket-count diffs (quantiles over only the window's observations),
// gauges are current values (a gauge has no meaningful delta). The
// returned Sample is the new "prev" for the next window. A zero prev
// (no capture yet) yields the lifetime snapshot, making the first
// window self-initializing.
func (r *Registry) Delta(prev Sample) (Snapshot, Sample) {
	cur := r.Sample()
	win := Snapshot{
		Counters:   make(map[string]int64, len(cur.Counters)),
		Gauges:     make(map[string]int64, len(cur.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(cur.Hists)),
	}
	for k, v := range cur.Counters {
		d := v - prev.Counters[k]
		if d < 0 {
			d = 0 // a restarted registry; treat as fresh
		}
		win.Counters[k] = d
	}
	for k, v := range cur.Gauges {
		win.Gauges[k] = v
	}
	for k, hs := range cur.Hists {
		win.Histograms[k] = diffHist(hs, prev.Hists[k])
	}
	return win, cur
}

// diffHist derives the windowed summary from two bucket states. Min and
// max are approximated from the window's occupied bucket bounds clamped
// to the lifetime min/max — within the histogram's 2x bucket resolution,
// which is the same guarantee lifetime quantiles give.
func diffHist(cur, prev HistState) HistogramSnapshot {
	var d HistState
	d.Count = cur.Count - prev.Count
	d.Sum = cur.Sum - prev.Sum
	if d.Count <= 0 {
		return HistogramSnapshot{}
	}
	lo, hi := -1, -1
	for i := 0; i < histBuckets; i++ {
		d.Buckets[i] = cur.Buckets[i] - prev.Buckets[i]
		if d.Buckets[i] > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	// Bucket lower/upper bounds for the occupied window range.
	min := int64(0)
	if lo > 0 {
		min = BucketUpper(lo-1) + 1
	}
	if min < cur.Min {
		min = cur.Min
	}
	max := BucketUpper(hi)
	if max > cur.Max {
		max = cur.Max
	}
	h := Histogram{buckets: d.Buckets, count: d.Count, sum: d.Sum, min: min, max: max}
	return HistogramSnapshot{
		Count: d.Count,
		Sum:   d.Sum,
		Min:   min,
		Mean:  d.Sum / d.Count,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
		Max:   max,
	}
}

// Window is one sampled interval: the windowed snapshot plus its bounds.
type Window struct {
	Start   time.Time     `json:"start"`
	End     time.Time     `json:"end"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Snap    Snapshot      `json:"snapshot"`
}

// Rate returns the named counter's per-second rate over this window.
func (w Window) Rate(counter string) float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Snap.Counters[counter]) / w.Elapsed.Seconds()
}

// Rates returns every non-zero counter's per-second rate over this
// window.
func (w Window) Rates() map[string]float64 {
	out := make(map[string]float64)
	if w.Elapsed <= 0 {
		return out
	}
	for k, v := range w.Snap.Counters {
		if v != 0 {
			out[k] = float64(v) / w.Elapsed.Seconds()
		}
	}
	return out
}

// WindowSampler periodically takes registry deltas on a background
// goroutine, keeping a bounded ring of recent windows. One sampler per
// ops server; Stop before discarding.
type WindowSampler struct {
	reg      *Registry
	interval time.Duration
	keep     int

	mu      sync.Mutex
	prev    Sample
	ring    []Window
	started bool
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// NewWindowSampler builds a sampler over reg. interval defaults to 1s,
// keep (ring size) to 60 windows.
func NewWindowSampler(reg *Registry, interval time.Duration, keep int) *WindowSampler {
	if interval <= 0 {
		interval = time.Second
	}
	if keep <= 0 {
		keep = 60
	}
	return &WindowSampler{
		reg: reg, interval: interval, keep: keep,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Interval returns the sampling interval.
func (s *WindowSampler) Interval() time.Duration { return s.interval }

// Start launches the sampling loop. Idempotent; a stopped sampler stays
// stopped.
func (s *WindowSampler) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.prev = s.reg.Sample()
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Tick takes one delta right now — the loop's body, exported so tests
// (and callers that prefer their own scheduling) can drive windows
// deterministically.
func (s *WindowSampler) Tick() {
	s.mu.Lock()
	prev := s.prev
	s.mu.Unlock()
	snap, cur := s.reg.Delta(prev)
	w := Window{Start: prev.At, End: cur.At, Elapsed: cur.At.Sub(prev.At), Snap: snap}
	s.mu.Lock()
	s.prev = cur
	s.ring = append(s.ring, w)
	if len(s.ring) > s.keep {
		s.ring = s.ring[len(s.ring)-s.keep:]
	}
	s.mu.Unlock()
}

// Stop terminates the loop. Idempotent; safe even if Start never ran.
func (s *WindowSampler) Stop() {
	s.mu.Lock()
	started := s.started
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.started = false
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// Last returns the most recent window, if any exists yet.
func (s *WindowSampler) Last() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return Window{}, false
	}
	return s.ring[len(s.ring)-1], true
}

// Windows returns up to limit recent windows, oldest first (all of them
// when limit <= 0).
func (s *WindowSampler) Windows(limit int) []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Window, n)
	copy(out, s.ring[len(s.ring)-n:])
	return out
}
