package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// manualNow builds a settable clock for driving the stall checks.
type manualNow struct {
	mu sync.Mutex
	t  time.Time
}

func (m *manualNow) now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

func (m *manualNow) advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}

func newTestHealth() (*Health, *manualNow) {
	clk := &manualNow{t: time.Unix(1000, 0)}
	h := NewHealth(HealthConfig{
		Cadence:       100 * time.Millisecond,
		StallDegraded: 3, StallUnhealthy: 10,
		ChurnWindow:   time.Second,
		ChurnDegraded: 3, ChurnUnhealthy: 10,
		Clock: clk.now,
	})
	return h, clk
}

// TestHealthTriggers drives every degraded/unhealthy trigger of the
// built-in and registered checks through the table the ops endpoints
// rely on.
func TestHealthTriggers(t *testing.T) {
	cases := []struct {
		name  string
		drive func(h *Health, clk *manualNow)
		check string
		want  HealthStatus
	}{
		{
			name:  "fresh tracker is healthy",
			drive: func(h *Health, clk *manualNow) {},
			check: "consensus_liveness",
			want:  Healthy,
		},
		{
			name: "idle chain stays healthy however long",
			drive: func(h *Health, clk *manualNow) {
				h.NoteSubmit()
				h.NoteCommit(1, 1)
				clk.advance(time.Hour)
			},
			check: "consensus_liveness",
			want:  Healthy,
		},
		{
			name: "stalled commits degrade",
			drive: func(h *Health, clk *manualNow) {
				h.NoteSubmit()
				clk.advance(350 * time.Millisecond) // > 3x cadence
			},
			check: "consensus_liveness",
			want:  Degraded,
		},
		{
			name: "long stall is unhealthy",
			drive: func(h *Health, clk *manualNow) {
				h.NoteSubmit()
				clk.advance(1100 * time.Millisecond) // > 10x cadence
			},
			check: "consensus_liveness",
			want:  Unhealthy,
		},
		{
			name: "commit progress recovers a stall",
			drive: func(h *Health, clk *manualNow) {
				h.NoteSubmit()
				clk.advance(1100 * time.Millisecond)
				h.NoteCommit(1, 1)
			},
			check: "consensus_liveness",
			want:  Healthy,
		},
		{
			name: "partial progress restarts the stall clock",
			drive: func(h *Health, clk *manualNow) {
				h.NoteSubmit()
				h.NoteSubmit()
				clk.advance(1100 * time.Millisecond)
				h.NoteCommit(1, 1) // one of two pending commits
			},
			check: "consensus_liveness",
			want:  Healthy, // stall clock restarted at the commit
		},
		{
			name: "view-change storm degrades",
			drive: func(h *Health, clk *manualNow) {
				for i := 0; i < 3; i++ {
					h.NoteViewChange()
				}
			},
			check: "view_churn",
			want:  Degraded,
		},
		{
			name: "heavy churn is unhealthy",
			drive: func(h *Health, clk *manualNow) {
				for i := 0; i < 10; i++ {
					h.NoteViewChange()
				}
			},
			check: "view_churn",
			want:  Unhealthy,
		},
		{
			name: "churn outside the window is forgotten",
			drive: func(h *Health, clk *manualNow) {
				for i := 0; i < 10; i++ {
					h.NoteViewChange()
				}
				clk.advance(2 * time.Second)
			},
			check: "view_churn",
			want:  Healthy,
		},
		{
			name: "store errors are unhealthy and sticky",
			drive: func(h *Health, clk *manualNow) {
				h.NoteStoreError(errors.New("fsync: input/output error"))
				clk.advance(time.Hour)
			},
			check: "store",
			want:  Unhealthy,
		},
		{
			name: "full apply queue via registered check",
			drive: func(h *Health, clk *manualNow) {
				h.RegisterCheck("pipeline", func() HealthCheck {
					return HealthCheck{Status: Degraded, Reason: "apply queue 64/64"}
				})
			},
			check: "pipeline",
			want:  Degraded,
		},
		{
			name: "mempool at capacity via registered check",
			drive: func(h *Health, clk *manualNow) {
				h.RegisterCheck("mempool", func() HealthCheck {
					return HealthCheck{Status: Unhealthy, Reason: "occupancy 4096/4096"}
				})
			},
			check: "mempool",
			want:  Unhealthy,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, clk := newTestHealth()
			tc.drive(h, clk)
			rep := h.Report()
			c, ok := rep.Check(tc.check)
			if !ok {
				t.Fatalf("report has no %q check: %+v", tc.check, rep)
			}
			if c.Status != tc.want {
				t.Fatalf("%s = %v (%s), want %v", tc.check, c.Status, c.Reason, tc.want)
			}
			if c.Reason == "" {
				t.Fatalf("%s has no reason", tc.check)
			}
			// The overall verdict is the max severity across checks.
			for _, other := range rep.Checks {
				if other.Status > rep.Status {
					t.Fatalf("overall %v below check %s=%v", rep.Status, other.Name, other.Status)
				}
			}
			if rep.Status < tc.want {
				t.Fatalf("overall %v did not absorb %s=%v", rep.Status, tc.check, tc.want)
			}
		})
	}
}

// TestHealthNilSafety: a nil tracker absorbs every signal and reports
// healthy, matching the *Obs convention.
func TestHealthNilSafety(t *testing.T) {
	var h *Health
	h.NoteSubmit()
	h.NoteCommit(1, 1)
	h.NoteViewChange()
	h.NoteStoreError(errors.New("x"))
	h.RegisterCheck("c", nil)
	if rep := h.Report(); rep.Status != Healthy {
		t.Fatalf("nil health reports %v", rep.Status)
	}
	var o *Obs
	o.NoteSubmit()
	o.NoteCommit(1, 1)
	o.NoteViewChange()
	o.NoteStoreError(errors.New("x"))
	if o.Logger("x") == nil {
		t.Fatal("nil obs must still hand out a logger")
	}
}

// TestHealthStatusJSON pins the wire rendering /healthz serves.
func TestHealthStatusJSON(t *testing.T) {
	for s, want := range map[HealthStatus]string{
		Healthy: `"healthy"`, Degraded: `"degraded"`, Unhealthy: `"unhealthy"`,
	} {
		b, err := s.MarshalJSON()
		if err != nil || string(b) != want {
			t.Fatalf("MarshalJSON(%v) = %s, %v; want %s", s, b, err, want)
		}
	}
}
