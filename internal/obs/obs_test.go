package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"permchain/internal/types"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 40, 41}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 || BucketUpper(9) != 511 {
		t.Errorf("BucketUpper boundaries wrong: %d %d %d %d",
			BucketUpper(0), BucketUpper(1), BucketUpper(3), BucketUpper(9))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 samples: 1..100. Buckets: [1], [2,3], [4..7], ... quantile returns
	// the bucket upper bound clamped to observed max.
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d, want 100", h.Max())
	}
	// p50: rank 50 falls in bucket [32..63] (cumulative through 63 is 63) -> upper bound 63.
	if got := h.Quantile(0.50); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// p95: rank 95 falls in bucket [64..127], upper 127 clamped to max 100.
	if got := h.Quantile(0.95); got != 100 {
		t.Errorf("p95 = %d, want 100 (clamped)", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	// Single-sample histogram: every quantile is the sample.
	h2 := &Histogram{}
	h2.Observe(42)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h2.Quantile(q); got != 42 {
			t.Errorf("single-sample q=%v = %d, want 42", q, got)
		}
	}
}

func TestHistogramSnapshotClamping(t *testing.T) {
	h := &Histogram{}
	h.Observe(1000) // bucket upper 1023; min=max=1000 so estimates clamp to 1000
	s := h.snapshot()
	if s.P50 != 1000 || s.P99 != 1000 || s.Max != 1000 || s.Min != 1000 || s.Mean != 1000 {
		t.Errorf("snapshot not clamped to observed value: %+v", s)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestTracerOutOfOrderAssembly(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk)
	d := types.HashBytes([]byte("tx1"))

	// Phases arrive out of order: commit first, then propose, then submit.
	clk.Set(300)
	tr.Mark(d, 7, PhaseCommit)
	clk.Set(100)
	tr.Mark(d, 0, PhasePropose)
	clk.Set(50)
	tr.Mark(d, 0, PhaseSubmit)
	// A second node marks commit later; the earlier stamp must win.
	clk.Set(400)
	tr.Mark(d, 7, PhaseCommit)

	s, ok := tr.Span(d)
	if !ok {
		t.Fatal("span missing")
	}
	if s.Seq != 7 {
		t.Errorf("seq = %d, want 7", s.Seq)
	}
	if got, ok := s.Between(PhaseSubmit, PhaseCommit); !ok || got != 250 {
		t.Errorf("submit->commit = %d,%v, want 250,true", got, ok)
	}
	if got, ok := s.Between(PhasePropose, PhaseCommit); !ok || got != 200 {
		t.Errorf("propose->commit = %d,%v, want 200,true", got, ok)
	}
}

func TestTracerDroppedPhases(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk)
	d := types.HashBytes([]byte("tx2"))
	// Raft-shaped span: no prepare/precommit phases.
	clk.Set(10)
	tr.Mark(d, 3, PhaseSubmit)
	clk.Set(20)
	tr.Mark(d, 3, PhasePropose)
	clk.Set(90)
	tr.Mark(d, 3, PhaseCommit)
	clk.Set(95)
	tr.Mark(d, 3, PhaseApply)

	s, _ := tr.Span(d)
	if s.Has(PhasePrepare) || s.Has(PhasePreCommit) {
		t.Fatal("unmarked phases must not appear")
	}
	if _, ok := s.Between(PhasePrepare, PhaseCommit); ok {
		t.Fatal("Between must report missing phases")
	}

	reg := NewRegistry()
	SummarizeSpans(tr.Spans(), reg, "trace")
	// Consecutive-present pairs skip the dropped phases.
	for _, name := range []string{"trace/submit_to_propose", "trace/propose_to_commit", "trace/commit_to_apply", "trace/submit_to_apply"} {
		if reg.Histogram(name).Count() != 1 {
			t.Errorf("%s count = %d, want 1", name, reg.Histogram(name).Count())
		}
	}
	if got := reg.Histogram("trace/propose_to_commit").Max(); got != 70 {
		t.Errorf("propose_to_commit = %d, want 70", got)
	}
	if reg.Histogram("trace/propose_to_prepare").Count() != 0 {
		t.Error("dropped phase must not produce a pair histogram")
	}
}

func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	o.Inc("x")
	o.Add("x", 2)
	o.SetGauge("g", 1)
	o.Observe("h", time.Millisecond)
	o.Mark(types.Hash{}, 1, PhaseCommit)
	o.MarkLatency("h", types.Hash{}, 1, PhasePropose, PhaseCommit)
	partial := &Obs{} // nil Reg and Tracer inside
	partial.Inc("x")
	partial.Mark(types.Hash{}, 1, PhaseCommit)
}

func TestMarkLatency(t *testing.T) {
	clk := &ManualClock{}
	o := NewWithClock(clk)
	d := types.HashBytes([]byte("tx3"))
	clk.Set(1000)
	o.Mark(d, 5, PhasePropose)
	clk.Set(4000)
	o.MarkLatency("proto/commit_latency", d, 5, PhasePropose, PhaseCommit)
	h := o.Reg.Histogram("proto/commit_latency")
	if h.Count() != 1 || h.Max() != 3000 {
		t.Fatalf("commit latency: count=%d max=%d, want 1, 3000", h.Count(), h.Max())
	}
	// Missing `from` phase: mark still lands, no observation.
	d2 := types.HashBytes([]byte("tx4"))
	o.MarkLatency("proto/commit_latency", d2, 6, PhasePropose, PhaseCommit)
	if h.Count() != 1 {
		t.Fatal("latency observed despite missing start phase")
	}
	if s, ok := o.Tracer.Span(d2); !ok || !s.Has(PhaseCommit) {
		t.Fatal("commit phase not marked on span")
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("net/drop/rate").Add(3)
	r.Gauge("view").Set(2)
	r.Histogram("pbft/commit_latency").Observe(int64(2 * time.Millisecond))
	s := r.Snapshot()

	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["net/drop/rate"] != 3 || round.Histograms["pbft/commit_latency"].Count != 1 {
		t.Fatalf("JSON round-trip mismatch: %+v", round)
	}

	var promBuf bytes.Buffer
	if err := s.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	out := promBuf.String()
	for _, want := range []string{
		"# TYPE net_drop_rate counter", "net_drop_rate 3",
		"# TYPE view gauge",
		"# TYPE pbft_commit_latency summary",
		"pbft_commit_latency_count 1",
		`pbft_commit_latency{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"pbft/commit_latency": "pbft_commit_latency",
		"net.drop-rate":       "net_drop_rate",
		"9lives":              "_9lives",
		"ok_name:sub":         "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
