package obs

import (
	"fmt"
	"log/slog"
	"testing"

	"permchain/internal/types"
)

func digestOf(i int) types.Hash { return types.HashConcat([]byte(fmt.Sprintf("tx-%d", i))) }

// TestTracerRecent: completed spans land in the bounded ring, newest
// first, and only completion (first apply mark) enrolls them.
func TestTracerRecent(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk)
	tr.SetRecentCapacity(4)

	// An incomplete span (no apply) never shows up.
	tr.MarkAt(digestOf(999), 1, PhaseSubmit, 10)
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("incomplete span enrolled: %+v", got)
	}

	for i := 0; i < 6; i++ {
		d := digestOf(i)
		tr.MarkAt(d, uint64(i+1), PhaseSubmit, int64(i*100))
		tr.MarkAt(d, uint64(i+1), PhaseCommit, int64(i*100+50))
		tr.MarkAt(d, uint64(i+1), PhaseApply, int64(i*100+60))
		// A second apply mark must not enroll the span twice.
		tr.MarkAt(d, uint64(i+1), PhaseApply, int64(i*100+70))
	}

	all := tr.Recent(0)
	if len(all) != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", len(all))
	}
	if all[0].Digest != digestOf(5) || all[3].Digest != digestOf(2) {
		t.Fatalf("ring order wrong: newest %x oldest %x", all[0].Digest[:4], all[3].Digest[:4])
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Digest != digestOf(5) {
		t.Fatalf("Recent(2) = %d spans, newest %x", len(got), got[0].Digest[:4])
	}
	for _, s := range all {
		if !s.Has(PhaseSubmit) || !s.Has(PhaseApply) {
			t.Fatalf("ring span missing phases: %+v", s)
		}
	}

	tr.Reset()
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("Reset kept %d ring spans", len(got))
	}
}

// TestLogRing: the slog handler keeps the newest events with flattened
// attributes, respecting WithAttrs prefixes.
func TestLogRing(t *testing.T) {
	ring := NewLogRing(3, slog.LevelInfo)
	o := &Obs{}
	o.SetLogHandler(ring.Handler())
	log := o.Logger("consensus")

	log.Debug("dropped: below level")
	for i := 0; i < 5; i++ {
		log.Info("view change", "view", i, "node", 2)
	}
	if ring.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", ring.Len())
	}
	evs := ring.Recent(0)
	if evs[0].Msg != "view change" || evs[0].Attrs["view"] != "4" {
		t.Fatalf("newest event = %+v", evs[0])
	}
	if evs[0].Attrs["component"] != "consensus" {
		t.Fatalf("component attr lost: %+v", evs[0].Attrs)
	}
	if evs[2].Attrs["view"] != "2" {
		t.Fatalf("oldest retained = %+v", evs[2])
	}
	if got := ring.Recent(1); len(got) != 1 || got[0].Attrs["view"] != "4" {
		t.Fatalf("Recent(1) = %+v", got)
	}
}

// TestTeeHandler: records fan out to every enabled handler.
func TestTeeHandler(t *testing.T) {
	a := NewLogRing(8, slog.LevelInfo)
	b := NewLogRing(8, slog.LevelWarn)
	log := slog.New(TeeHandler(a.Handler(), b.Handler()))
	log.Info("info only")
	log.Warn("both")
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatalf("tee delivered a=%d b=%d, want 2 and 1", a.Len(), b.Len())
	}
}
