package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/types"
)

// Clock supplies span timestamps in nanoseconds. Any monotonic source works;
// the unit only has to be consistent within one Tracer.
type Clock interface {
	Now() int64
}

// WallClock stamps spans from the real time clock.
type WallClock struct{}

// Now returns the wall time in nanoseconds.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// ManualClock is an explicitly advanced clock for deterministic tests.
type ManualClock struct{ ns atomic.Int64 }

// Now returns the current manual time.
func (c *ManualClock) Now() int64 { return c.ns.Load() }

// Set jumps the clock to ns.
func (c *ManualClock) Set(ns int64) { c.ns.Store(ns) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// ClockFunc adapts any func() int64 into a Clock — e.g. the simulated
// network's logical event counter: obs.ClockFunc(net.LogicalNow).
type ClockFunc func() int64

// Now invokes the adapted function.
func (f ClockFunc) Now() int64 { return f() }

// Phase is one step of the transaction lifecycle. The canonical order is
// Submit -> Propose -> Prepare -> PreCommit -> Commit -> Apply; protocols
// stamp the subset that exists in their state machine (Raft has no prepare
// round, HotStuff's lock maps to PreCommit, ...).
type Phase uint8

const (
	PhaseSubmit Phase = iota
	PhasePropose
	PhasePrepare
	PhasePreCommit
	PhaseCommit
	PhaseApply
	numPhases
)

// String returns the phase's lowercase name.
func (p Phase) String() string {
	switch p {
	case PhaseSubmit:
		return "submit"
	case PhasePropose:
		return "propose"
	case PhasePrepare:
		return "prepare"
	case PhasePreCommit:
		return "precommit"
	case PhaseCommit:
		return "commit"
	case PhaseApply:
		return "apply"
	default:
		return "unknown"
	}
}

// Phases lists every lifecycle phase in canonical order.
func Phases() []Phase {
	return []Phase{PhaseSubmit, PhasePropose, PhasePrepare, PhasePreCommit, PhaseCommit, PhaseApply}
}

// Span is the assembled lifecycle of one digest: the earliest timestamp at
// which each phase was observed, across every node that marked it. A zero
// At entry with Seen=false means the phase was never reached (dropped
// phases are expected — protocols stamp different subsets).
type Span struct {
	Digest types.Hash
	Seq    uint64
	At     [numPhases]int64
	Seen   [numPhases]bool
}

// Has reports whether the phase was marked.
func (s *Span) Has(p Phase) bool { return p < numPhases && s.Seen[p] }

// Between returns the elapsed time from phase a to phase b, and whether
// both phases were marked.
func (s *Span) Between(a, b Phase) (int64, bool) {
	if !s.Has(a) || !s.Has(b) {
		return 0, false
	}
	return s.At[b] - s.At[a], true
}

// Tracer assembles lifecycle spans keyed by digest. Marks may arrive out of
// order and from many goroutines (every replica in a cluster can share one
// tracer); the earliest timestamp per phase wins, so the assembled span is
// the cluster-wide frontier of each phase.
type Tracer struct {
	clock Clock
	mu    sync.Mutex
	spans map[types.Hash]*Span

	// recent is a bounded ring of completed spans — spans that reached
	// PhaseApply — in completion order, so a live system can serve "the
	// last N transaction lifecycles" without walking the whole span map.
	recent     []Span
	recentNext int
	recentN    int
}

// defaultRecentSpans bounds the completed-span ring.
const defaultRecentSpans = 256

// NewTracer returns a tracer stamping from clk (WallClock{} if nil).
func NewTracer(clk Clock) *Tracer {
	if clk == nil {
		clk = WallClock{}
	}
	return &Tracer{clock: clk, spans: make(map[types.Hash]*Span),
		recent: make([]Span, defaultRecentSpans)}
}

// SetRecentCapacity resizes the completed-span ring (dropping its
// current contents). Capacity <= 0 restores the default.
func (t *Tracer) SetRecentCapacity(n int) {
	if n <= 0 {
		n = defaultRecentSpans
	}
	t.mu.Lock()
	t.recent = make([]Span, n)
	t.recentNext, t.recentN = 0, 0
	t.mu.Unlock()
}

// Recent returns up to limit completed spans, most recently completed
// first (all retained ones when limit <= 0). A span completes when its
// apply phase is first marked; later marks on other phases refine the
// map copy but not the ring entry.
func (t *Tracer) Recent(limit int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.recentN
	if n > len(t.recent) {
		n = len(t.recent)
	}
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.recentNext - 1 - i + 2*len(t.recent)) % len(t.recent)
		out = append(out, t.recent[idx])
	}
	return out
}

// Now returns the tracer's current clock reading.
func (t *Tracer) Now() int64 { return t.clock.Now() }

// Mark stamps phase ph on the span for digest at the current clock reading
// and returns that reading. seq may be 0 when unknown; the first non-zero
// seq recorded for a digest is kept.
func (t *Tracer) Mark(digest types.Hash, seq uint64, ph Phase) int64 {
	now := t.clock.Now()
	t.MarkAt(digest, seq, ph, now)
	return now
}

// MarkAt stamps phase ph at an explicit timestamp (for replaying recorded
// events or testing out-of-order assembly).
func (t *Tracer) MarkAt(digest types.Hash, seq uint64, ph Phase, ts int64) {
	if ph >= numPhases {
		return
	}
	t.mu.Lock()
	s := t.spans[digest]
	if s == nil {
		s = &Span{Digest: digest}
		t.spans[digest] = s
	}
	if s.Seq == 0 && seq != 0 {
		s.Seq = seq
	}
	completed := ph == PhaseApply && !s.Seen[PhaseApply]
	if !s.Seen[ph] || ts < s.At[ph] {
		s.At[ph] = ts
		s.Seen[ph] = true
	}
	if completed && len(t.recent) > 0 {
		t.recent[t.recentNext] = *s
		t.recentNext = (t.recentNext + 1) % len(t.recent)
		t.recentN++
	}
	t.mu.Unlock()
}

// PhaseAt returns the timestamp at which ph was first marked for digest.
func (t *Tracer) PhaseAt(digest types.Hash, ph Phase) (int64, bool) {
	if ph >= numPhases {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.spans[digest]
	if s == nil || !s.Seen[ph] {
		return 0, false
	}
	return s.At[ph], true
}

// Span returns a copy of the assembled span for digest.
func (t *Tracer) Span(digest types.Hash) (Span, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.spans[digest]
	if s == nil {
		return Span{}, false
	}
	return *s, true
}

// Spans returns copies of every assembled span, in unspecified order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, *s)
	}
	return out
}

// Len returns the number of spans assembled so far.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset drops all assembled spans and the completed-span ring (the
// clock is untouched).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = make(map[types.Hash]*Span)
	for i := range t.recent {
		t.recent[i] = Span{}
	}
	t.recentNext, t.recentN = 0, 0
	t.mu.Unlock()
}

// SummarizeSpans folds a set of spans into reg as phase-to-phase latency
// histograms named "<prefix>/<from>_to_<to>" for each consecutive pair of
// phases present in a span, plus "<prefix>/submit_to_apply" end-to-end when
// both endpoints exist. Dropped phases are skipped over, so a Raft span
// (submit, propose, commit, apply) still yields propose_to_commit.
func SummarizeSpans(spans []Span, reg *Registry, prefix string) {
	if reg == nil {
		return
	}
	order := Phases()
	for i := range spans {
		s := &spans[i]
		prev := -1
		for _, ph := range order {
			if !s.Has(ph) {
				continue
			}
			if prev >= 0 {
				from := Phase(prev)
				if d, ok := s.Between(from, ph); ok && d >= 0 {
					reg.Histogram(prefix + "/" + from.String() + "_to_" + ph.String()).Observe(d)
				}
			}
			prev = int(ph)
		}
		if d, ok := s.Between(PhaseSubmit, PhaseApply); ok && d >= 0 {
			reg.Histogram(prefix + "/submit_to_apply").Observe(d)
		}
	}
}
