package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryDelta: counters and histogram quantiles cover only the
// window between two samples, not the lifetime.
func TestRegistryDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("txs").Add(100)
	for i := 0; i < 100; i++ {
		r.Histogram("lat").Observe(1000) // lifetime so far: all fast
	}
	r.Gauge("depth").Set(7)

	_, prev := r.Delta(Sample{}) // self-initializing first window
	r.Counter("txs").Add(10)
	for i := 0; i < 10; i++ {
		r.Histogram("lat").Observe(1 << 20) // this window: all slow (~1ms)
	}
	r.Gauge("depth").Set(3)
	win, next := r.Delta(prev)

	if got := win.Counters["txs"]; got != 10 {
		t.Fatalf("windowed counter = %d, want 10 (lifetime is 110)", got)
	}
	if got := win.Gauges["depth"]; got != 3 {
		t.Fatalf("windowed gauge = %d, want current value 3", got)
	}
	hs := win.Histograms["lat"]
	if hs.Count != 10 {
		t.Fatalf("windowed hist count = %d, want 10 (lifetime is 110)", hs.Count)
	}
	// Every sample in this window was ~2^20ns; the lifetime p50 would be
	// 1023ns (100 of 110 samples are 1000ns). Windowed p50 must see only
	// the slow window.
	if hs.P50 < 1<<19 {
		t.Fatalf("windowed p50 = %d, still dominated by lifetime samples", hs.P50)
	}
	if hs.Min < 1000 || hs.Max > 1<<21 {
		t.Fatalf("windowed min/max [%d, %d] out of bucket bounds", hs.Min, hs.Max)
	}

	// An empty window yields zeroes, not stale lifetime values.
	win2, _ := r.Delta(next)
	if win2.Counters["txs"] != 0 || win2.Histograms["lat"].Count != 0 {
		t.Fatalf("idle window not empty: %+v", win2)
	}
}

// TestWindowRate pins the rate computation /status reports.
func TestWindowRate(t *testing.T) {
	w := Window{Elapsed: 2 * time.Second, Snap: Snapshot{Counters: map[string]int64{"txs": 100}}}
	if got := w.Rate("txs"); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if got := w.Rates()["txs"]; got != 50 {
		t.Fatalf("Rates = %v, want 50", got)
	}
	if got := (Window{}).Rate("txs"); got != 0 {
		t.Fatalf("zero-window Rate = %v", got)
	}
}

// TestWindowSampler drives the sampler with explicit ticks (the loop's
// own body) so the windows are deterministic.
func TestWindowSampler(t *testing.T) {
	r := NewRegistry()
	s := NewWindowSampler(r, time.Hour /* ticker never fires */, 3)
	s.Start()
	defer s.Stop()

	if _, ok := s.Last(); ok {
		t.Fatal("sampler has a window before any tick")
	}
	for i := 1; i <= 5; i++ {
		r.Counter("txs").Add(int64(i))
		s.Tick()
	}
	if got := len(s.Windows(0)); got != 3 {
		t.Fatalf("ring holds %d windows, want 3 (bounded)", got)
	}
	last, ok := s.Last()
	if !ok || last.Snap.Counters["txs"] != 5 {
		t.Fatalf("last window = %+v, want the 5-increment window", last.Snap.Counters)
	}
	ws := s.Windows(2)
	if len(ws) != 2 || ws[1].Snap.Counters["txs"] != 5 || ws[0].Snap.Counters["txs"] != 4 {
		t.Fatalf("Windows(2) = %+v, want the 4- then 5-increment windows", ws)
	}
	s.Stop() // idempotent
	s.Stop()
}

// TestWritePrometheusGolden pins the full exposition output: HELP/TYPE
// lines, '/'-name sanitization, summary rendering — the format the
// /metrics endpoint serves and CI curls.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pbft/view_changes").Add(3)
	r.Gauge("core/apply_queue_depth").Set(5)
	h := r.Histogram("core/execute")
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP pbft_view_changes permchain metric pbft/view_changes
# TYPE pbft_view_changes counter
pbft_view_changes 3
# HELP core_apply_queue_depth permchain metric core/apply_queue_depth
# TYPE core_apply_queue_depth gauge
core_apply_queue_depth 5
# HELP core_execute permchain metric core/execute
# TYPE core_execute summary
core_execute{quantile="0.5"} 1000
core_execute{quantile="0.95"} 1000
core_execute{quantile="0.99"} 1000
core_execute_sum 10000
core_execute_count 10
`
	if b.String() != golden {
		t.Fatalf("exposition drifted from the golden format:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
	if ContentTypeProm != "text/plain; version=0.0.4" {
		t.Fatalf("ContentTypeProm = %q", ContentTypeProm)
	}
}

// TestPromNameSanitization covers the byte classes the exposition format
// forbids in metric names.
func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"store/fsync_latency": "store_fsync_latency",
		"a-b.c d":             "a_b_c_d",
		"9lives":              "_9lives",
		"ok_name:sub":         "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
