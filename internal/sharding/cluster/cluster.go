// Package cluster provides the fault-tolerant cluster abstraction every
// scalability technique of §2.3.4 builds on (the "byzantizing" layer of
// Blockplane): a PBFT replica group that behaves like one logical,
// crash-proof node. Sharding protocols order values through a cluster —
// synchronously via OrderSync — and keep per-shard state and a lock table
// for two-phase-locking cross-shard commits.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/pbft"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/quorumcert"
	"permchain/internal/sharding/locktable"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Cluster is one fault-tolerant replica group acting as a logical node.
type Cluster struct {
	ID    types.ShardID
	Nodes []types.NodeID

	replicas []*pbft.Replica
	store    *statedb.Store

	mu      sync.Mutex
	waiters map[types.Hash][]chan consensus.Decision
	ordered []consensus.Decision
	locks   *locktable.Table
	subCh   chan consensus.Decision

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Options configures a cluster. Consensus-level knobs are not
// duplicated here: they nest under Consensus, the same consensus.Config
// shape core chains use, so a committee and a chain are tuned with one
// vocabulary (Timeout, DisableSig, AggregateVotes, BatchVotes, Obs).
// Self, Nodes, Net, Keys and ByzQuorumOverride are owned by the cluster
// and overwritten per replica.
type Options struct {
	// Size is the replica count (default 4 = 3f+1 with f=1).
	Size int
	// Attested runs the committee on trusted hardware: nodes are marked
	// non-equivocating on the transport and the quorum drops to
	// ⌈(Size+1)/2⌉ (f+1 of 2f+1), AHL's committee-size reduction.
	Attested bool
	// LockTTL bounds how long a 2PL lock outlives its holder — the
	// coordinator that crashed between prepare and decide no longer
	// leaks its locks forever; the lease lapses once nothing refreshes
	// it (in-doubt recovery refreshes the transactions it will
	// resolve). Default 1 minute; negative disables expiry.
	LockTTL time.Duration
	// Consensus is the per-replica protocol template.
	Consensus consensus.Config
}

// New creates and starts a cluster. Node ids are allocated from baseNode
// upward on the shared network; the keyring must cover them.
func New(id types.ShardID, baseNode types.NodeID, net *network.Network, keys *crypto.Keyring, opts Options) *Cluster {
	if opts.Size <= 0 {
		opts.Size = 4
	}
	if opts.Consensus.Timeout == 0 {
		opts.Consensus.Timeout = 500 * time.Millisecond
	}
	ttl := opts.LockTTL
	switch {
	case ttl == 0:
		ttl = time.Minute
	case ttl < 0:
		ttl = 0 // locktable: no expiry
	}
	nodes := make([]types.NodeID, opts.Size)
	for i := range nodes {
		nodes[i] = baseNode + types.NodeID(i)
		keys.Add(nodes[i])
		if opts.Attested {
			net.Join(nodes[i])
			net.Attest(nodes[i])
		}
	}
	c := &Cluster{
		ID:      id,
		Nodes:   nodes,
		store:   statedb.New(),
		waiters: map[types.Hash][]chan consensus.Decision{},
		locks:   locktable.New(ttl),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	cc := opts.Consensus
	cc.Nodes, cc.Net, cc.Keys = nodes, net, keys
	if opts.Attested {
		cc.ByzQuorumOverride = opts.Size/2 + 1
	} else {
		cc.ByzQuorumOverride = 0
	}
	// Mirror core.build: one Schnorr key set shared by every replica in
	// aggregate mode, instead of n re-derivations.
	if cc.AggregateVotes && !cc.DisableSig && cc.VoteKeys == nil {
		cc.VoteKeys = quorumcert.NewKeys()
	}
	for i := range nodes {
		rc := cc
		rc.Self = nodes[i]
		r := pbft.New(rc)
		r.Start()
		c.replicas = append(c.replicas, r)
	}
	go c.drain()
	return c
}

// Stop shuts the cluster down. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		for _, r := range c.replicas {
			r.Stop()
		}
	})
	<-c.done
}

// Store returns the shard state this cluster maintains.
func (c *Cluster) Store() *statedb.Store { return c.store }

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.replicas) }

func (c *Cluster) drain() {
	defer close(c.done)
	decs := c.replicas[0].Decisions()
	for {
		select {
		case <-c.stopCh:
			return
		case d := <-decs:
			c.mu.Lock()
			c.ordered = append(c.ordered, d)
			ws := c.waiters[d.Digest]
			delete(c.waiters, d.Digest)
			sub := c.subCh
			c.mu.Unlock()
			for _, w := range ws {
				w <- d
			}
			if sub != nil {
				select {
				case sub <- d:
				case <-c.stopCh:
					return
				}
			}
		}
	}
}

// SubmitAsync submits a value for ordering without waiting. Consumers
// observe the decision via Subscribe or OrderedCount.
func (c *Cluster) SubmitAsync(value any, digest types.Hash) {
	c.replicas[0].Submit(value, digest)
}

// Subscribe returns the cluster's decision stream. Call it before traffic
// starts and keep draining it: once subscribed, an undrained stream
// backpressures the cluster.
func (c *Cluster) Subscribe() <-chan consensus.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subCh == nil {
		c.subCh = make(chan consensus.Decision, 65536)
	}
	return c.subCh
}

// ErrOrderTimeout reports that a value was not decided in time.
var ErrOrderTimeout = errors.New("cluster: ordering timed out")

// OrderSync submits a value to the cluster's consensus and blocks until
// it is decided (or the timeout elapses). This is the building block the
// cross-shard protocols use: each 2PC/flattened phase is one decided
// value in each involved cluster.
func (c *Cluster) OrderSync(value any, digest types.Hash, timeout time.Duration) (consensus.Decision, error) {
	ch := make(chan consensus.Decision, 1)
	c.mu.Lock()
	c.waiters[digest] = append(c.waiters[digest], ch)
	c.mu.Unlock()
	c.replicas[0].Submit(value, digest)
	select {
	case d := <-ch:
		return d, nil
	case <-time.After(timeout):
		return consensus.Decision{}, fmt.Errorf("%w: %v", ErrOrderTimeout, digest)
	case <-c.stopCh:
		return consensus.Decision{}, errors.New("cluster: stopped")
	}
}

// OrderedCount returns how many values this cluster has decided.
func (c *Cluster) OrderedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ordered)
}

// Ordered returns a copy of the decision log.
func (c *Cluster) Ordered() []consensus.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]consensus.Decision, len(c.ordered))
	copy(out, c.ordered)
	return out
}

// ErrLocked reports a 2PL conflict (alias of the lock table's error so
// existing errors.Is checks keep working).
var ErrLocked = locktable.ErrLocked

// TryLock acquires 2PL locks on every key for txID. All-or-nothing: on
// conflict nothing is held. Re-acquiring own locks refreshes their
// lease.
func (c *Cluster) TryLock(txID string, keys []string) error {
	return c.locks.TryLock(txID, keys)
}

// RefreshLocks extends txID's lock lease — what in-doubt recovery calls
// for every transaction it is about to resolve, so the TTL only ever
// reaps locks no one will come back for.
func (c *Cluster) RefreshLocks(txID string) { c.locks.Refresh(txID) }

// Unlock releases every lock txID holds.
func (c *Cluster) Unlock(txID string) { c.locks.Unlock(txID) }

// LockCount returns the number of live (unexpired) locks.
func (c *Cluster) LockCount() int { return c.locks.Count() }

// LockTable exposes the underlying lease table (tests use its clock
// injection to pin TTL behaviour).
func (c *Cluster) LockTable() *locktable.Table { return c.locks }

// Allocator hands out disjoint node-id ranges to clusters sharing one
// network and keyring.
type Allocator struct {
	mu   sync.Mutex
	next types.NodeID
	net  *network.Network
	keys *crypto.Keyring
	// byNode maps node ids back to their cluster for latency functions.
	byNode map[types.NodeID]types.ShardID
}

// NewAllocator creates an allocator over a shared network.
func NewAllocator(net *network.Network) *Allocator {
	return &Allocator{net: net, keys: crypto.NewKeyring(0), byNode: map[types.NodeID]types.ShardID{}}
}

// Network returns the shared transport.
func (a *Allocator) Network() *network.Network { return a.net }

// NewCluster allocates ids and creates a cluster.
func (a *Allocator) NewCluster(id types.ShardID, opts Options) *Cluster {
	if opts.Size <= 0 {
		opts.Size = 4
	}
	a.mu.Lock()
	base := a.next
	a.next += types.NodeID(opts.Size)
	for i := 0; i < opts.Size; i++ {
		a.byNode[base+types.NodeID(i)] = id
	}
	a.mu.Unlock()
	return New(id, base, a.net, a.keys, opts)
}

// ClusterOf maps a node id to its cluster.
func (a *Allocator) ClusterOf(n types.NodeID) types.ShardID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byNode[n]
}

// LatencyByCluster builds a per-link latency function from a cluster
// distance function: intra-cluster links use intra, inter-cluster links
// use d(cluster(from), cluster(to)). Install with network.WithLatency or
// via reconfiguring the network before clusters start.
func (a *Allocator) LatencyByCluster(intra time.Duration, d func(x, y types.ShardID) time.Duration) func(from, to types.NodeID) time.Duration {
	return func(from, to types.NodeID) time.Duration {
		cf, ct := a.ClusterOf(from), a.ClusterOf(to)
		if cf == ct {
			return intra
		}
		return d(cf, ct)
	}
}
