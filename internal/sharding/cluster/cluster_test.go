package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/types"
)

func TestOrderSyncDecides(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c.Stop()
	for i := 0; i < 5; i++ {
		v := fmt.Sprintf("v%d", i)
		d, err := c.OrderSync(v, types.HashBytes([]byte(v)), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if d.Value.(string) != v {
			t.Fatalf("decided %v", d.Value)
		}
	}
	if c.OrderedCount() != 5 {
		t.Fatalf("ordered %d", c.OrderedCount())
	}
	if len(c.Ordered()) != 5 {
		t.Fatal("Ordered copy wrong")
	}
	if c.Size() != 4 {
		t.Fatalf("size %d", c.Size())
	}
}

func TestSubscribeStreamsDecisions(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c.Stop()
	sub := c.Subscribe()
	c.SubmitAsync("a", types.HashBytes([]byte("a")))
	select {
	case d := <-sub:
		if d.Value.(string) != "a" {
			t.Fatalf("got %v", d.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision streamed")
	}
}

func TestMultipleClustersIndependent(t *testing.T) {
	alloc := NewAllocator(network.New())
	c0 := alloc.NewCluster(0, Options{Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	c1 := alloc.NewCluster(1, Options{Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c0.Stop()
	defer c1.Stop()
	// Same value to both: each decides independently.
	if _, err := c0.OrderSync("x", types.HashBytes([]byte("x")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.OrderSync("x", types.HashBytes([]byte("x")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if c0.OrderedCount() != 1 || c1.OrderedCount() != 1 {
		t.Fatalf("counts %d %d", c0.OrderedCount(), c1.OrderedCount())
	}
	// Node ids must not overlap.
	seen := map[types.NodeID]bool{}
	for _, n := range append(append([]types.NodeID{}, c0.Nodes...), c1.Nodes...) {
		if seen[n] {
			t.Fatalf("node id %v reused", n)
		}
		seen[n] = true
	}
	if alloc.ClusterOf(c1.Nodes[0]) != 1 {
		t.Fatal("ClusterOf wrong")
	}
}

func TestAttestedClusterSmallCommittee(t *testing.T) {
	// 3 nodes (2f+1, f=1) with attestation: still decides, and the
	// network refuses Byzantine filters on its nodes.
	net := network.New()
	alloc := NewAllocator(net)
	c := alloc.NewCluster(0, Options{Size: 3, Attested: true, Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c.Stop()
	if _, err := c.OrderSync("v", types.HashBytes([]byte("v")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("filter on attested node did not panic")
		}
	}()
	net.SetFilter(c.Nodes[0], func(m network.Message) []network.Message { return []network.Message{m} })
}

func TestAttestedToleratesOneCrash(t *testing.T) {
	// 2f+1 = 3 nodes, f = 1: quorum f+1 = 2 must survive one crash.
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Size: 3, Attested: true, Consensus: consensus.Config{Timeout: 200 * time.Millisecond}})
	defer c.Stop()
	// Crash one replica by partitioning it away.
	alloc.Network().Partition([]types.NodeID{c.Nodes[2]})
	if _, err := c.OrderSync("v", types.HashBytes([]byte("v")), 10*time.Second); err != nil {
		t.Fatalf("attested cluster with one crash did not decide: %v", err)
	}
}

func TestLocks(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c.Stop()
	if err := c.TryLock("t1", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// Re-acquire own locks: fine.
	if err := c.TryLock("t1", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	// Conflict: all-or-nothing.
	if err := c.TryLock("t2", []string{"c", "a"}); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v", err)
	}
	if c.LockCount() != 2 {
		t.Fatalf("locks = %d (t2 must hold nothing)", c.LockCount())
	}
	if err := c.TryLock("t2", []string{"c"}); err != nil {
		t.Fatal(err)
	}
	c.Unlock("t1")
	if c.LockCount() != 1 {
		t.Fatalf("locks = %d after unlock", c.LockCount())
	}
	if err := c.TryLock("t2", []string{"a"}); err != nil {
		t.Fatal("released lock not acquirable")
	}
}

func TestOrderSyncTimeout(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Consensus: consensus.Config{Timeout: 10 * time.Second}})
	defer c.Stop()
	// Partition the whole cluster into singletons: no quorum, no decision.
	var groups [][]types.NodeID
	for _, n := range c.Nodes {
		groups = append(groups, []types.NodeID{n})
	}
	alloc.Network().Partition(groups...)
	_, err := c.OrderSync("v", types.HashBytes([]byte("v")), 300*time.Millisecond)
	if !errors.Is(err, ErrOrderTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyByCluster(t *testing.T) {
	alloc := NewAllocator(network.New())
	c0 := alloc.NewCluster(0, Options{})
	c1 := alloc.NewCluster(1, Options{})
	defer c0.Stop()
	defer c1.Stop()
	f := alloc.LatencyByCluster(time.Millisecond, func(x, y types.ShardID) time.Duration {
		return 10 * time.Millisecond
	})
	if f(c0.Nodes[0], c0.Nodes[1]) != time.Millisecond {
		t.Fatal("intra latency wrong")
	}
	if f(c0.Nodes[0], c1.Nodes[0]) != 10*time.Millisecond {
		t.Fatal("inter latency wrong")
	}
}

// TestCoordinatorCrashLockLeaseExpires is the regression test for the
// lock-table leak: a coordinator that locked keys during PREPARE and
// then crashed before DECIDE used to pin those keys forever. With the
// lease table, the TTL reaps them once nothing refreshes the holder —
// while a holder that IS being resolved (recovery refreshes it) keeps
// its locks.
func TestCoordinatorCrashLockLeaseExpires(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{LockTTL: time.Minute,
		Consensus: consensus.Config{Timeout: 300 * time.Millisecond}})
	defer c.Stop()

	now := time.Unix(1000, 0)
	c.LockTable().SetClock(func() time.Time { return now })

	// The "coordinator" prepares: locks taken, then it crashes — no
	// Unlock, no Refresh, ever.
	if err := c.TryLock("crashed-coord", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	// A resolved-in-doubt holder keeps refreshing.
	if err := c.TryLock("recovering", []string{"z"}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(40 * time.Second)
	c.RefreshLocks("recovering")
	now = now.Add(40 * time.Second) // crashed-coord's lease lapsed; recovering's did not
	if got := c.LockCount(); got != 1 {
		t.Fatalf("live locks = %d, want 1 (orphaned lease must lapse)", got)
	}
	if err := c.TryLock("t2", []string{"x", "y"}); err != nil {
		t.Fatalf("keys of crashed coordinator still unavailable: %v", err)
	}
	if err := c.TryLock("t3", []string{"z"}); err == nil {
		t.Fatal("refreshed holder lost its lock")
	}
}

// TestAggregateVotePassthrough pins the satellite wiring: a cluster
// built with AggregateVotes+BatchVotes in its consensus template still
// decides (the PBFT vote phases run on Schnorr quorum certificates).
func TestAggregateVotePassthrough(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Consensus: consensus.Config{
		Timeout: 300 * time.Millisecond, AggregateVotes: true, BatchVotes: true,
	}})
	defer c.Stop()
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("qc%d", i)
		if _, err := c.OrderSync(v, types.HashBytes([]byte(v)), 10*time.Second); err != nil {
			t.Fatalf("aggregate-vote cluster did not decide: %v", err)
		}
	}
}
