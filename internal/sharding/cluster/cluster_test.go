package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/types"
)

func TestOrderSyncDecides(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Timeout: 300 * time.Millisecond})
	defer c.Stop()
	for i := 0; i < 5; i++ {
		v := fmt.Sprintf("v%d", i)
		d, err := c.OrderSync(v, types.HashBytes([]byte(v)), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if d.Value.(string) != v {
			t.Fatalf("decided %v", d.Value)
		}
	}
	if c.OrderedCount() != 5 {
		t.Fatalf("ordered %d", c.OrderedCount())
	}
	if len(c.Ordered()) != 5 {
		t.Fatal("Ordered copy wrong")
	}
	if c.Size() != 4 {
		t.Fatalf("size %d", c.Size())
	}
}

func TestSubscribeStreamsDecisions(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Timeout: 300 * time.Millisecond})
	defer c.Stop()
	sub := c.Subscribe()
	c.SubmitAsync("a", types.HashBytes([]byte("a")))
	select {
	case d := <-sub:
		if d.Value.(string) != "a" {
			t.Fatalf("got %v", d.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision streamed")
	}
}

func TestMultipleClustersIndependent(t *testing.T) {
	alloc := NewAllocator(network.New())
	c0 := alloc.NewCluster(0, Options{Timeout: 300 * time.Millisecond})
	c1 := alloc.NewCluster(1, Options{Timeout: 300 * time.Millisecond})
	defer c0.Stop()
	defer c1.Stop()
	// Same value to both: each decides independently.
	if _, err := c0.OrderSync("x", types.HashBytes([]byte("x")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.OrderSync("x", types.HashBytes([]byte("x")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if c0.OrderedCount() != 1 || c1.OrderedCount() != 1 {
		t.Fatalf("counts %d %d", c0.OrderedCount(), c1.OrderedCount())
	}
	// Node ids must not overlap.
	seen := map[types.NodeID]bool{}
	for _, n := range append(append([]types.NodeID{}, c0.Nodes...), c1.Nodes...) {
		if seen[n] {
			t.Fatalf("node id %v reused", n)
		}
		seen[n] = true
	}
	if alloc.ClusterOf(c1.Nodes[0]) != 1 {
		t.Fatal("ClusterOf wrong")
	}
}

func TestAttestedClusterSmallCommittee(t *testing.T) {
	// 3 nodes (2f+1, f=1) with attestation: still decides, and the
	// network refuses Byzantine filters on its nodes.
	net := network.New()
	alloc := NewAllocator(net)
	c := alloc.NewCluster(0, Options{Size: 3, Attested: true, Timeout: 300 * time.Millisecond})
	defer c.Stop()
	if _, err := c.OrderSync("v", types.HashBytes([]byte("v")), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("filter on attested node did not panic")
		}
	}()
	net.SetFilter(c.Nodes[0], func(m network.Message) []network.Message { return []network.Message{m} })
}

func TestAttestedToleratesOneCrash(t *testing.T) {
	// 2f+1 = 3 nodes, f = 1: quorum f+1 = 2 must survive one crash.
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Size: 3, Attested: true, Timeout: 200 * time.Millisecond})
	defer c.Stop()
	// Crash one replica by partitioning it away.
	alloc.Network().Partition([]types.NodeID{c.Nodes[2]})
	if _, err := c.OrderSync("v", types.HashBytes([]byte("v")), 10*time.Second); err != nil {
		t.Fatalf("attested cluster with one crash did not decide: %v", err)
	}
}

func TestLocks(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Timeout: 300 * time.Millisecond})
	defer c.Stop()
	if err := c.TryLock("t1", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// Re-acquire own locks: fine.
	if err := c.TryLock("t1", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	// Conflict: all-or-nothing.
	if err := c.TryLock("t2", []string{"c", "a"}); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v", err)
	}
	if c.LockCount() != 2 {
		t.Fatalf("locks = %d (t2 must hold nothing)", c.LockCount())
	}
	if err := c.TryLock("t2", []string{"c"}); err != nil {
		t.Fatal(err)
	}
	c.Unlock("t1")
	if c.LockCount() != 1 {
		t.Fatalf("locks = %d after unlock", c.LockCount())
	}
	if err := c.TryLock("t2", []string{"a"}); err != nil {
		t.Fatal("released lock not acquirable")
	}
}

func TestOrderSyncTimeout(t *testing.T) {
	alloc := NewAllocator(network.New())
	c := alloc.NewCluster(0, Options{Timeout: 10 * time.Second})
	defer c.Stop()
	// Partition the whole cluster into singletons: no quorum, no decision.
	var groups [][]types.NodeID
	for _, n := range c.Nodes {
		groups = append(groups, []types.NodeID{n})
	}
	alloc.Network().Partition(groups...)
	_, err := c.OrderSync("v", types.HashBytes([]byte("v")), 300*time.Millisecond)
	if !errors.Is(err, ErrOrderTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyByCluster(t *testing.T) {
	alloc := NewAllocator(network.New())
	c0 := alloc.NewCluster(0, Options{})
	c1 := alloc.NewCluster(1, Options{})
	defer c0.Stop()
	defer c1.Stop()
	f := alloc.LatencyByCluster(time.Millisecond, func(x, y types.ShardID) time.Duration {
		return 10 * time.Millisecond
	})
	if f(c0.Nodes[0], c0.Nodes[1]) != time.Millisecond {
		t.Fatal("intra latency wrong")
	}
	if f(c0.Nodes[0], c1.Nodes[0]) != 10*time.Millisecond {
		t.Fatal("inter latency wrong")
	}
}
