// Package locktable provides the two-phase-locking table the cross-shard
// protocols of §2.3.4 hold between prepare and commit. One table guards
// one shard's keyspace; a transaction acquires all the keys it touches on
// that shard atomically (all-or-nothing, so a waiter never holds a
// partial set), and cross-shard engines acquire tables in ascending shard
// order — the total order that makes blocking acquisition deadlock-free.
//
// Every grant carries a lease: a holder that dies between prepare and
// decide (the coordinator-crash case) stops refreshing, its lease lapses,
// and the keys become grantable again instead of leaking forever. The
// in-doubt recovery path re-asserts leases for transactions it replays
// from the WAL, so expiry only ever releases locks nobody will resolve.
package locktable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Lock errors.
var (
	// ErrLocked reports a non-blocking acquisition conflict.
	ErrLocked = errors.New("locktable: key locked by another transaction")
	// ErrTimeout reports that a blocking acquisition ran out of time.
	ErrTimeout = errors.New("locktable: lock acquisition timed out")
)

type holder struct {
	tx string
	// expires is the lease deadline; zero means the lease never lapses
	// (tables built with ttl <= 0).
	expires time.Time
}

// Table is one shard's lock table.
type Table struct {
	mu   sync.Mutex
	cond *sync.Cond
	held map[string]holder
	ttl  time.Duration
	// now is the clock, swappable by tests to force lease expiry without
	// sleeping.
	now func() time.Time
}

// New builds a table whose grants expire ttl after acquisition (or after
// the last Refresh). ttl <= 0 disables expiry.
func New(ttl time.Duration) *Table {
	t := &Table{held: map[string]holder{}, ttl: ttl, now: time.Now}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// SetClock replaces the lease clock (tests).
func (t *Table) SetClock(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Table) lease() time.Time {
	if t.ttl <= 0 {
		return time.Time{}
	}
	return t.now().Add(t.ttl)
}

// sweepLocked evicts lapsed leases; callers hold t.mu. It reports whether
// anything was evicted so acquisition loops can re-broadcast.
func (t *Table) sweepLocked() bool {
	if t.ttl <= 0 {
		return false
	}
	now := t.now()
	evicted := false
	for k, h := range t.held {
		if !h.expires.IsZero() && now.After(h.expires) {
			delete(t.held, k)
			evicted = true
		}
	}
	return evicted
}

// grantableLocked reports whether every key is free or already held by tx.
func (t *Table) grantableLocked(tx string, keys []string) (string, bool) {
	for _, k := range keys {
		if h, ok := t.held[k]; ok && h.tx != tx {
			return k, false
		}
	}
	return "", true
}

func (t *Table) takeLocked(tx string, keys []string) {
	exp := t.lease()
	for _, k := range keys {
		t.held[k] = holder{tx: tx, expires: exp}
	}
}

// TryLock acquires every key for tx, all-or-nothing and without blocking:
// on conflict nothing is taken and ErrLocked names the contended key.
// Re-acquiring keys tx already holds refreshes their lease.
func (t *Table) TryLock(tx string, keys []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sweepLocked() {
		t.cond.Broadcast()
	}
	if k, ok := t.grantableLocked(tx, keys); !ok {
		return fmt.Errorf("%w: %s held by %s", ErrLocked, k, t.held[k].tx)
	}
	t.takeLocked(tx, keys)
	return nil
}

// Lock blocks until every key can be granted to tx at once, or the
// timeout elapses. Keys are granted atomically — a waiter holds nothing
// while it waits — so acquiring tables in a fixed (shard-ascending)
// order can never deadlock: a transaction blocked on table i holds only
// tables before i, and whoever holds its keys is blocked only on tables
// after i.
func (t *Table) Lock(tx string, keys []string, timeout time.Duration) error {
	// Sorting is not needed for correctness (grants are atomic) but keeps
	// conflict reporting deterministic under contention.
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	if _, ok := t.grantableLocked(tx, sorted); ok {
		t.takeLocked(tx, sorted)
		return nil
	}
	if timeout <= 0 {
		k, _ := t.grantableLocked(tx, sorted)
		return fmt.Errorf("%w: %s held by %s", ErrLocked, k, t.held[k].tx)
	}
	expired := false
	timer := time.AfterFunc(timeout, func() {
		t.mu.Lock()
		expired = true
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timer.Stop()
	// A lapsing lease produces no Unlock broadcast of its own, so poll the
	// sweep on a short tick while this waiter exists.
	if t.ttl > 0 {
		stop := make(chan struct{})
		defer close(stop)
		tick := time.NewTicker(t.ttl / 4)
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					t.mu.Lock()
					if t.sweepLocked() {
						t.cond.Broadcast()
					}
					t.mu.Unlock()
				}
			}
		}()
	}
	for {
		t.cond.Wait()
		t.sweepLocked()
		if _, ok := t.grantableLocked(tx, sorted); ok {
			t.takeLocked(tx, sorted)
			return nil
		}
		if expired {
			k, _ := t.grantableLocked(tx, sorted)
			return fmt.Errorf("%w: %s still held by %s", ErrTimeout, k, t.held[k].tx)
		}
	}
}

// Refresh extends the lease on every key tx holds — the in-doubt recovery
// path re-asserts replayed transactions this way so expiry cannot race
// their resolution.
func (t *Table) Refresh(tx string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	exp := t.lease()
	for k, h := range t.held {
		if h.tx == tx {
			t.held[k] = holder{tx: tx, expires: exp}
		}
	}
}

// Unlock releases every key tx holds and wakes waiters.
func (t *Table) Unlock(tx string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	for k, h := range t.held {
		if h.tx == tx {
			delete(t.held, k)
			changed = true
		}
	}
	if changed {
		t.cond.Broadcast()
	}
}

// Count returns the number of live (unexpired) locks.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sweepLocked() {
		t.cond.Broadcast()
	}
	return len(t.held)
}

// Holder returns who holds key, if anyone (tests/metrics).
func (t *Table) Holder(key string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked()
	h, ok := t.held[key]
	return h.tx, ok
}
