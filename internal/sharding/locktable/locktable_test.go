package locktable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/types"
)

func TestTryLockAllOrNothing(t *testing.T) {
	lt := New(0)
	if err := lt.TryLock("t1", []string{"a", "b"}); err != nil {
		t.Fatalf("t1 lock: %v", err)
	}
	// t2 conflicts on b: nothing at all may be taken.
	if err := lt.TryLock("t2", []string{"c", "b"}); !errors.Is(err, ErrLocked) {
		t.Fatalf("want ErrLocked, got %v", err)
	}
	if _, held := lt.Holder("c"); held {
		t.Fatal("failed TryLock left a partial grant on c")
	}
	// Re-acquiring own keys is a no-op.
	if err := lt.TryLock("t1", []string{"a"}); err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	lt.Unlock("t1")
	if lt.Count() != 0 {
		t.Fatalf("count after unlock = %d", lt.Count())
	}
}

func TestLockBlocksUntilReleased(t *testing.T) {
	lt := New(0)
	if err := lt.TryLock("t1", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lt.Lock("t2", []string{"k"}, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	lt.Unlock("t1")
	if err := <-got; err != nil {
		t.Fatalf("blocked lock after release: %v", err)
	}
	if h, _ := lt.Holder("k"); h != "t2" {
		t.Fatalf("holder = %q, want t2", h)
	}
}

func TestLockTimeout(t *testing.T) {
	lt := New(0)
	if err := lt.TryLock("t1", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	err := lt.Lock("t2", []string{"k"}, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

// TestCoordinatorCrashLeaseExpiry is the regression test for the lock
// leak: a coordinator that acquires prepare-phase locks and then dies
// before deciding used to leave its entries in the table forever. With a
// lease TTL the entries lapse and the keys become grantable again.
func TestCoordinatorCrashLeaseExpiry(t *testing.T) {
	lt := New(time.Hour)
	now := time.Now()
	lt.SetClock(func() time.Time { return now })
	if err := lt.TryLock("crashed-coord", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := lt.TryLock("t2", []string{"a"}); !errors.Is(err, ErrLocked) {
		t.Fatalf("lease should still be live: %v", err)
	}
	// The coordinator crashes between prepare and decide: no Unlock, no
	// Refresh. Advance past the lease.
	now = now.Add(2 * time.Hour)
	if got := lt.Count(); got != 0 {
		t.Fatalf("lapsed leases still counted: %d", got)
	}
	if err := lt.TryLock("t2", []string{"a", "b"}); err != nil {
		t.Fatalf("lock after lease lapse: %v", err)
	}
}

func TestRefreshExtendsLease(t *testing.T) {
	lt := New(time.Hour)
	now := time.Now()
	lt.SetClock(func() time.Time { return now })
	if err := lt.TryLock("t1", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(50 * time.Minute)
	lt.Refresh("t1") // in-doubt recovery re-asserts the holder
	now = now.Add(50 * time.Minute)
	if err := lt.TryLock("t2", []string{"a"}); !errors.Is(err, ErrLocked) {
		t.Fatalf("refreshed lease should still hold: %v", err)
	}
}

// TestOrderedAcquisitionNoDeadlock hammers two tables with transactions
// that need keys on both, always acquiring table 0 before table 1 —
// the discipline the cross-shard engine follows. Every acquisition must
// eventually succeed; a deadlock shows up as a timeout.
func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	tables := []*Table{New(0), New(0)}
	keysFor := func(sh, i int) []string {
		return []string{fmt.Sprintf("s%d/key%d", types.ShardID(sh), i%3)}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tx := fmt.Sprintf("t%d-%d", w, i)
				for sh := range tables { // ascending shard order
					if err := tables[sh].Lock(tx, keysFor(sh, w+i), 10*time.Second); err != nil {
						errs <- err
						return
					}
				}
				for sh := range tables {
					tables[sh].Unlock(tx)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("ordered acquisition failed: %v", err)
	}
	for sh, tbl := range tables {
		if tbl.Count() != 0 {
			t.Fatalf("table %d leaked %d locks", sh, tbl.Count())
		}
	}
}
