package shardcore

import (
	"errors"
	"fmt"
	"sort"

	"permchain/internal/core"
	"permchain/internal/store"
	"permchain/internal/types"
)

// shardRecords indexes one shard chain's decision records by txID.
type shardRecords struct {
	prepare map[string]*store.DecisionRecord
	outcome map[string]*store.DecisionRecord // PhaseCommit or PhaseAbort
	decide  map[string]*store.DecisionRecord // coordinator verdicts
}

// scanRecords replays node 0's ledger for decision records. It works on
// live and crashed chains alike — the in-memory ledger is what the WAL
// recovered (or what consensus built), which is exactly the durable
// truth recovery may rely on.
func scanRecords(ch *core.Chain) (*shardRecords, error) {
	r := &shardRecords{
		prepare: map[string]*store.DecisionRecord{},
		outcome: map[string]*store.DecisionRecord{},
		decide:  map[string]*store.DecisionRecord{},
	}
	for _, blk := range ch.Node(0).Chain().Blocks() {
		for _, tx := range blk.Txs {
			rec, err := store.DecisionFromTx(tx)
			if err != nil {
				return nil, fmt.Errorf("block %d tx %s: %w", blk.Header.Height, tx.ID, err)
			}
			if rec == nil {
				continue
			}
			switch rec.Phase {
			case store.PhasePrepare:
				r.prepare[rec.TxID] = rec
			case store.PhaseCommit, store.PhaseAbort:
				r.outcome[rec.TxID] = rec
			case store.PhaseDecide:
				r.decide[rec.TxID] = rec
			}
		}
	}
	return r, nil
}

// CrashShard kills shard i abruptly — its pipeline stops mid-flight and
// only what already reached the WAL survives. Pending outcome
// deliveries to it fail and stay in-doubt until RecoverShard.
func (s *Chain) CrashShard(i types.ShardID) { s.Shard(i).Crash() }

// RecoverShard replaces shard i with a chain recovered from its WAL and
// resolves every in-doubt cross-shard transaction found there: locks
// are re-asserted before resolution (none are lost), outcomes are
// decided by the resolution rules, and missing outcome transactions —
// effects included — are ordered through the recovered shard's own
// consensus. Requires a durable deployment (Config.Store).
func (s *Chain) RecoverShard(i types.ShardID) error {
	if s.base.Store == nil {
		return errors.New("shardcore: RecoverShard requires Config.Store")
	}
	if int(i) >= s.scfg.Shards {
		return errors.New("shardcore: cannot recover the reference committee")
	}
	s.Shard(i).Crash() // idempotent; guarantees the WAL is closed
	ch, err := core.OpenChain(s.shardConfig(i))
	if err != nil {
		return fmt.Errorf("recover shard %d: %w", i, err)
	}
	ch.Start()
	if s.proto.Replicated() {
		s.seqMu.Lock()
		defer s.seqMu.Unlock()
		s.mu.Lock()
		s.shards[i] = ch
		s.mu.Unlock()
		if err := s.levelShard(i); err != nil {
			return err
		}
		s.dead[i] = false
		return nil
	}
	s.mu.Lock()
	s.shards[i] = ch
	s.mu.Unlock()
	return s.resolveInDoubt(i)
}

// resolveInDoubt finds shard i's prepared-but-undecided transactions
// and finishes them.
func (s *Chain) resolveInDoubt(i types.ShardID) error {
	recs, err := scanRecords(s.Shard(i))
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(recs.prepare))
	for txID := range recs.prepare {
		if recs.outcome[txID] == nil {
			ids = append(ids, txID)
		}
	}
	sort.Strings(ids)
	for _, txID := range ids {
		if err := s.resolveTx(i, txID, recs.prepare[txID]); err != nil {
			return err
		}
	}
	return nil
}

// resolveTx finishes one in-doubt transaction on shard i.
func (s *Chain) resolveTx(i types.ShardID, txID string, prep *store.DecisionRecord) error {
	// Re-assert the 2PL lease first — an in-doubt transaction never
	// loses its locks to TTL expiry while someone is there to resolve
	// it. Lock is re-entrant for the same holder; a conflict means the
	// lease already lapsed, and we wait our turn like any other txn.
	keys := map[string]struct{}{}
	for _, op := range prep.Ops {
		for _, k := range op.Keys() {
			keys[k] = struct{}{}
		}
	}
	ks := make([]string, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	_ = s.locks[i].Lock(txID, ks, s.scfg.CrossTimeout)

	s.imu.Lock()
	st := s.inflight[txID]
	s.imu.Unlock()
	if st != nil {
		// The coordinator goroutine is live in this process: wait for
		// its verdict and deliver through the shared claim protocol so
		// exactly one of us orders the outcome.
		<-st.decideCh
		s.deliverOutcome(st, i)
		s.retire(st)
		return nil
	}

	commit, err := s.resolveOutcome(prep)
	if err != nil {
		return err
	}
	phase, extra := store.PhaseAbort, []types.Op(nil)
	if commit {
		phase, extra = store.PhaseCommit, prep.Ops
	}
	rec := &store.DecisionRecord{
		TxID: txID, Phase: phase, Shard: i,
		Participants: prep.Participants, Commit: commit,
	}
	if err := s.orderMarker(i, outcomeTxID(txID, i), rec, extra); err != nil {
		return fmt.Errorf("resolve %s on shard %d: %w", txID, i, err)
	}
	s.locks[i].Unlock(txID)
	return nil
}

// resolveOutcome applies the resolution rules for a transaction with no
// live coordinator, in order:
//
//  1. any participant's durable outcome record wins (they never
//     disagree — all derive from one durable or implied verdict);
//  2. otherwise the coordinator's durable DECIDE record wins, and with
//     a coordinator but no DECIDE the transaction is presumed aborted —
//     no participant can have acted without a durable verdict;
//  3. flattened protocols have no coordinator: commit if and only if
//     every participant durably prepared, which is the flattened
//     commit condition itself.
func (s *Chain) resolveOutcome(prep *store.DecisionRecord) (bool, error) {
	coord := s.proto.Coordinator(prep.Participants, s.scfg.Shards)
	others := make(map[types.ShardID]*shardRecords, len(prep.Participants))
	for _, sh := range prep.Participants {
		if sh == prep.Shard {
			continue
		}
		recs, err := scanRecords(s.Shard(sh))
		if err != nil {
			return false, err
		}
		others[sh] = recs
		if out := recs.outcome[prep.TxID]; out != nil {
			return out.Commit, nil
		}
	}
	if !coord.Flattened {
		recs, err := scanRecords(s.Shard(s.coordChain(coord)))
		if err != nil {
			return false, err
		}
		if d := recs.decide[prep.TxID]; d != nil {
			return d.Commit, nil
		}
		return false, nil // presumed abort
	}
	for _, sh := range prep.Participants {
		if sh == prep.Shard {
			continue
		}
		if others[sh].prepare[prep.TxID] == nil {
			return false, nil
		}
	}
	return true, nil
}

// levelReplicated re-levels every shard after a full-deployment Open.
func (s *Chain) levelReplicated() error {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	for i := 0; i < s.scfg.Shards; i++ {
		if err := s.levelShard(types.ShardID(i)); err != nil {
			return err
		}
	}
	return nil
}

// levelShard replays onto shard i the transaction suffix it missed,
// taken from the tallest shard. The single-sequencer discipline makes
// every shard's transaction sequence a prefix of the tallest one; the
// prefix is verified, not assumed. Callers hold seqMu.
func (s *Chain) levelShard(i types.ShardID) error {
	var tallest []*types.Transaction
	for j := 0; j < s.scfg.Shards; j++ {
		if types.ShardID(j) == i || s.dead[j] {
			continue
		}
		if seq := clientTxs(s.Shard(types.ShardID(j))); len(seq) > len(tallest) {
			tallest = seq
		}
	}
	mine := clientTxs(s.Shard(i))
	if len(mine) > len(tallest) {
		return nil // already the tallest
	}
	for k, tx := range mine {
		if tallest[k].ID != tx.ID {
			return fmt.Errorf("shardcore: shard %d diverged from the replicated sequence at tx %d (%s != %s)",
				i, k, tx.ID, tallest[k].ID)
		}
	}
	ch := s.Shard(i)
	for _, tx := range tallest[len(mine):] {
		r, err := ch.SubmitAsync(tx)
		if err != nil {
			return fmt.Errorf("shardcore: releveling shard %d: %w", i, err)
		}
		if err := r.Wait(s.scfg.CrossTimeout); err != nil {
			return fmt.Errorf("shardcore: releveling shard %d: %w", i, err)
		}
	}
	return nil
}

// clientTxs flattens a chain's committed transactions in ledger order.
func clientTxs(ch *core.Chain) []*types.Transaction {
	var out []*types.Transaction
	for _, blk := range ch.Node(0).Chain().Blocks() {
		out = append(out, blk.Txs...)
	}
	return out
}

// VerifyCrossShardAtomicity is the deployment's deterministic safety
// audit. For partitioned protocols it replays every shard's ledger and
// checks, for each cross-shard transaction: no participant committed
// while another aborted; a committed transaction committed on every
// participant, not a strict subset; and no transaction is still
// prepared with no outcome (run it after recovery has quiesced).
// Replicated deployments are audited by state agreement instead.
func (s *Chain) VerifyCrossShardAtomicity() error {
	if s.proto.Replicated() {
		return s.verifyReplicatedStates()
	}
	type fate struct {
		participants []types.ShardID
		prepared     map[types.ShardID]bool
		committed    map[types.ShardID]bool
		aborted      map[types.ShardID]bool
	}
	fates := map[string]*fate{}
	get := func(rec *store.DecisionRecord) *fate {
		f := fates[rec.TxID]
		if f == nil {
			f = &fate{
				prepared:  map[types.ShardID]bool{},
				committed: map[types.ShardID]bool{},
				aborted:   map[types.ShardID]bool{},
			}
			fates[rec.TxID] = f
		}
		if len(rec.Participants) > len(f.participants) {
			f.participants = rec.Participants
		}
		return f
	}
	for i := 0; i < s.scfg.Shards; i++ {
		recs, err := scanRecords(s.Shard(types.ShardID(i)))
		if err != nil {
			return err
		}
		for _, rec := range recs.prepare {
			get(rec).prepared[types.ShardID(i)] = true
		}
		for _, rec := range recs.outcome {
			if rec.Commit {
				get(rec).committed[types.ShardID(i)] = true
			} else {
				get(rec).aborted[types.ShardID(i)] = true
			}
		}
	}
	ids := make([]string, 0, len(fates))
	for id := range fates {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f := fates[id]
		if len(f.committed) > 0 && len(f.aborted) > 0 {
			return fmt.Errorf("shardcore: %s committed on %v but aborted on %v", id, keysOf(f.committed), keysOf(f.aborted))
		}
		if len(f.committed) > 0 {
			for _, sh := range f.participants {
				if !f.committed[sh] {
					return fmt.Errorf("shardcore: %s committed on a strict subset %v of participants %v",
						id, keysOf(f.committed), f.participants)
				}
			}
		}
		for sh := range f.prepared {
			if !f.committed[sh] && !f.aborted[sh] {
				return fmt.Errorf("shardcore: %s still in-doubt on shard %d (prepared, no outcome)", id, sh)
			}
		}
	}
	return nil
}

func keysOf(m map[types.ShardID]bool) []types.ShardID {
	out := make([]types.ShardID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// verifyReplicatedStates checks that every shard's node-0 world state
// hash agrees — full replication's equivalent of atomicity.
func (s *Chain) verifyReplicatedStates() error {
	var want string
	for i := 0; i < s.scfg.Shards; i++ {
		h := fmt.Sprintf("%x", s.Shard(types.ShardID(i)).Node(0).Store().StateHash())
		if i == 0 {
			want = h
			continue
		}
		if h != want {
			return fmt.Errorf("shardcore: replicated state divergence: shard %d hash %s != shard 0 hash %s", i, h, want)
		}
	}
	return nil
}
