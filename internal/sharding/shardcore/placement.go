package shardcore

import (
	"hash/fnv"
	"sort"
	"strings"

	"permchain/internal/types"
)

// Placement is the deterministic key→shard function every layer of the
// sharded deployment shares: submission routing, lock management, and
// in-doubt recovery all derive a transaction's participant set from its
// keys through one Placement, replacing the per-protocol prefix-filter
// helpers (the old ahl.OpsForShard/KeysForShard).
//
// Keys following the "s<id>/" convention (workload.ShardKey) place
// explicitly on shard id mod Shards; every other key places by FNV-1a
// hash. Explicit placement keeps benchmark workloads and their storage
// accounting exact; hashing makes arbitrary client keys (chainctl,
// examples) spread evenly without naming shards.
type Placement struct {
	shards int
}

// NewPlacement builds a placement over n shards (minimum 1).
func NewPlacement(n int) Placement {
	if n < 1 {
		n = 1
	}
	return Placement{shards: n}
}

// Shards returns the shard count.
func (p Placement) Shards() int { return p.shards }

// ShardOf places one key.
func (p Placement) ShardOf(key string) types.ShardID {
	if id, ok := prefixShard(key); ok {
		return types.ShardID(id % p.shards)
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return types.ShardID(h.Sum64() % uint64(p.shards))
}

// prefixShard parses the "s<digits>/" convention without allocating.
func prefixShard(key string) (int, bool) {
	if len(key) < 3 || key[0] != 's' {
		return 0, false
	}
	slash := strings.IndexByte(key, '/')
	if slash < 2 {
		return 0, false
	}
	id := 0
	for _, c := range key[1:slash] {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, true
}

// Participants returns the sorted set of shards a transaction touches,
// derived from its keys — the authoritative participant set, regardless
// of what tx.Shards claims.
func (p Placement) Participants(tx *types.Transaction) []types.ShardID {
	seen := map[types.ShardID]struct{}{}
	for _, op := range tx.Ops {
		for _, k := range op.Keys() {
			seen[p.ShardOf(k)] = struct{}{}
		}
	}
	out := make([]types.ShardID, 0, len(seen))
	for sh := range seen {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpsFor returns the transaction's operations whose keys all place on
// shard id, in payload order. An operation spanning two shards (a
// cross-shard OpTransfer) belongs to neither slice; Split rejects it.
func (p Placement) OpsFor(tx *types.Transaction, id types.ShardID) []types.Op {
	var out []types.Op
	for _, op := range tx.Ops {
		if p.opShard(op) == id {
			out = append(out, op)
		}
	}
	return out
}

// opShard places a whole operation, or -1 when its keys span shards.
func (p Placement) opShard(op types.Op) types.ShardID {
	keys := op.Keys()
	if len(keys) == 0 {
		return -1
	}
	sh := p.ShardOf(keys[0])
	for _, k := range keys[1:] {
		if p.ShardOf(k) != sh {
			return -1
		}
	}
	return sh
}

// KeysFor returns the transaction's touched keys that place on shard id,
// sorted.
func (p Placement) KeysFor(tx *types.Transaction, id types.ShardID) []string {
	var out []string
	for _, k := range tx.TouchedKeys() {
		if p.ShardOf(k) == id {
			out = append(out, k)
		}
	}
	return out
}

// Split partitions the transaction's operations per participant shard.
// It fails on an operation whose own keys span shards (e.g. an
// OpTransfer between keys placed on different shards): such an operation
// cannot execute on any single shard — clients express cross-shard moves
// as paired per-shard OpAdds, the form the 2PC applies atomically.
func (p Placement) Split(tx *types.Transaction) (map[types.ShardID][]types.Op, error) {
	out := map[types.ShardID][]types.Op{}
	for _, op := range tx.Ops {
		sh := p.opShard(op)
		if sh < 0 {
			return nil, &SplitError{TxID: tx.ID, Op: op}
		}
		out[sh] = append(out[sh], op)
	}
	return out, nil
}

// SplitError reports an operation whose keys place on different shards.
type SplitError struct {
	TxID string
	Op   types.Op
}

func (e *SplitError) Error() string {
	return "shardcore: operation in " + e.TxID + " spans shards (key " + e.Op.Key + " / " + e.Op.Key2 +
		"); express cross-shard moves as per-shard operations"
}
