package shardcore

import (
	"errors"
	"sync"
	"time"

	"permchain/internal/core"
	"permchain/internal/types"
)

// ErrCrossAborted is the spanning receipt's error when the 2PC aborted —
// a lock conflict, a participant that could not durably prepare, or a
// timeout — and no shard applied any of the transaction's effects.
var ErrCrossAborted = errors.New("shardcore: cross-shard transaction aborted")

// Status is a spanning receipt's settled outcome.
type Status int

const (
	// Pending means the receipt has not settled.
	Pending Status = iota
	// Committed means every participant shard durably committed.
	Committed
	// Aborted means the 2PC aborted and no shard applied effects.
	Aborted
	// Failed means the submission died without an outcome (shutdown).
	Failed
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// Receipt tracks one transaction across every shard it touches. It
// settles Committed only when each participant shard has durably
// committed the transaction's effects through its own consensus —
// Heights then reports the per-shard commit heights — or Aborted/Failed
// with no effects anywhere. A receipt left pending by a participant
// crash settles when RecoverShard resolves the in-doubt transaction.
type Receipt struct {
	txID string
	done chan struct{}
	once sync.Once

	mu        sync.Mutex
	status    Status
	err       error
	heights   map[types.ShardID]uint64
	remaining int
}

func newSpanningReceipt(txID string, parts []types.ShardID) *Receipt {
	return &Receipt{
		txID:      txID,
		done:      make(chan struct{}),
		heights:   make(map[types.ShardID]uint64, len(parts)),
		remaining: len(parts),
	}
}

// TxID returns the transaction's ID.
func (r *Receipt) TxID() string { return r.txID }

// Done returns the settlement channel, closed exactly once.
func (r *Receipt) Done() <-chan struct{} { return r.done }

// Status returns the outcome; Pending until Done closes.
func (r *Receipt) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Committed reports whether every participant durably committed.
func (r *Receipt) Committed() bool { return r.Status() == Committed }

// Err returns nil after commit, ErrCrossAborted after abort, or the
// failure cause.
func (r *Receipt) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Heights returns a copy of the per-shard durable commit heights;
// complete once the receipt settles Committed.
func (r *Receipt) Heights() map[types.ShardID]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[types.ShardID]uint64, len(r.heights))
	for k, v := range r.heights {
		out[k] = v
	}
	return out
}

// Wait blocks until the receipt settles or the timeout elapses (a
// timeout <= 0 waits forever), returning Err — or ErrAwaitTimeout.
func (r *Receipt) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		<-r.done
		return r.Err()
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.done:
		return r.Err()
	case <-t.C:
		return core.ErrAwaitTimeout
	}
}

// shardCommitted records shard sh's durable commit at height h; the
// receipt settles Committed when the last participant reports.
func (r *Receipt) shardCommitted(sh types.ShardID, h uint64) {
	settle := false
	r.mu.Lock()
	if _, dup := r.heights[sh]; !dup && r.status == Pending {
		r.heights[sh] = h
		r.remaining--
		settle = r.remaining == 0
	}
	r.mu.Unlock()
	if settle {
		r.settle(Committed, nil)
	}
}

func (r *Receipt) abort()         { r.settle(Aborted, ErrCrossAborted) }
func (r *Receipt) fail(err error) { r.settle(Failed, err) }

func (r *Receipt) settle(status Status, err error) {
	r.once.Do(func() {
		r.mu.Lock()
		r.status = status
		r.err = err
		r.mu.Unlock()
		close(r.done)
	})
}
