// Package shardcore is the sharded deployment engine: N full durable
// pipelined core.Chains (one per shard, plus an optional reference
// committee), a deterministic key→shard Placement, per-shard 2PL lock
// tables, and one durable two-phase commit whose prepare/commit
// decisions are ordered through each participant shard's own consensus
// and persisted as decision records in the shard's block WAL
// (internal/store.DecisionRecord). The former per-protocol packages
// (ahl, sharper, saguaro, resilientdb) survive as CrossShardProtocol
// strategies that parameterize this one engine.
//
// Decision records ride inside marker transactions — an OpGet whose
// Value carries the encoded record — so they are consensus-ordered and
// crash-durable in the existing block WAL without touching world state:
// StateHash, storage accounting and replica agreement see only client
// effects. A participant that crashes between PREPARE and its outcome
// recovers by replaying the WAL: the in-doubt transaction's lock is
// re-asserted, the outcome is resolved (live coordinator state, any
// participant's outcome record, the coordinator's DECIDE record, or the
// flattened all-prepared rule, with presumed abort as the final word)
// and the missing outcome — including the transaction's effects, which
// the PREPARE record carries — is ordered through the recovered shard's
// consensus. No cross-shard transaction can commit on a strict subset
// of its participants, and no lock is lost.
package shardcore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/arch"
	"permchain/internal/core"
	"permchain/internal/network"
	"permchain/internal/sharding/locktable"
	"permchain/internal/types"
)

// ErrStopped is returned for submissions after Stop.
var ErrStopped = errors.New("shardcore: sharded chain stopped")

// Chain is a sharded deployment: the unified object behind
// permchain.ShardedChain.
type Chain struct {
	base  core.Config         // per-shard template (Sharding stripped)
	scfg  core.ShardingConfig // defaulted shard topology
	proto CrossShardProtocol
	place Placement

	mu     sync.RWMutex // guards shards/ref swaps (RecoverShard)
	shards []*core.Chain
	ref    *core.Chain // reference committee; nil unless NeedsReference

	locks []*locktable.Table

	imu      sync.Mutex
	inflight map[string]*crossState

	// Replicated-mode global sequencer.
	seqCh chan seqItem
	seqMu sync.Mutex // excludes the sequencer during RecoverShard leveling
	dead  []bool     // shards the sequencer currently skips (crashed)

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped atomic.Bool

	crossCommitted atomic.Int64
	crossAborted   atomic.Int64

	// AfterPrepare, when set, runs on the coordinator goroutine after
	// every participant durably prepared and before the decision is
	// ordered — the seam fault experiments use to crash a participant
	// exactly mid-2PC.
	AfterPrepare func(txID string)
}

// New builds a fresh sharded deployment from cfg (whose Sharding field
// must be set) and the cross-shard strategy. Every shard is a full
// core.Chain shaped by cfg — same architecture, protocol, block size,
// pipeline, and (when cfg.Store is set) its own WAL and snapshots under
// Store.Dir/shard-<i>.
func New(cfg core.Config, proto CrossShardProtocol) (*Chain, error) {
	return build(cfg, proto, core.New)
}

// Open recovers a sharded deployment from disk: every shard chain
// replays its WAL, then in-doubt cross-shard transactions are resolved
// from their decision records (replicated deployments instead re-level
// lagging shards by replaying the missing transaction suffix). The
// deployment is started and ready for submissions when Open returns.
func Open(cfg core.Config, proto CrossShardProtocol) (*Chain, error) {
	s, err := build(cfg, proto, core.OpenChain)
	if err != nil {
		return nil, err
	}
	s.Start()
	if s.proto.Replicated() {
		if err := s.levelReplicated(); err != nil {
			s.Stop()
			return nil, err
		}
	} else {
		for i := range s.shards {
			if err := s.resolveInDoubt(types.ShardID(i)); err != nil {
				s.Stop()
				return nil, err
			}
		}
	}
	return s, nil
}

func build(cfg core.Config, proto CrossShardProtocol, mk func(core.Config) (*core.Chain, error)) (*Chain, error) {
	if cfg.Sharding == nil {
		return nil, errors.New("shardcore: Config.Sharding must be set")
	}
	if proto == nil {
		return nil, errors.New("shardcore: nil protocol strategy")
	}
	if cfg.Net != nil {
		return nil, errors.New("shardcore: per-shard networks are owned by the sharded chain; leave Config.Net nil")
	}
	scfg := *cfg.Sharding
	if scfg.Shards <= 0 {
		scfg.Shards = 2
	}
	if scfg.CrossTimeout <= 0 {
		scfg.CrossTimeout = 10 * time.Second
	}
	if scfg.LockTTL <= 0 {
		scfg.LockTTL = 2 * scfg.CrossTimeout
	}
	s := &Chain{
		base:     cfg,
		scfg:     scfg,
		proto:    proto,
		place:    NewPlacement(scfg.Shards),
		shards:   make([]*core.Chain, scfg.Shards),
		locks:    make([]*locktable.Table, scfg.Shards),
		inflight: make(map[string]*crossState),
		dead:     make([]bool, scfg.Shards),
		stopCh:   make(chan struct{}),
	}
	s.base.Sharding = nil
	for i := range s.shards {
		ch, err := mk(s.shardConfig(types.ShardID(i)))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = ch
		s.locks[i] = locktable.New(scfg.LockTTL)
	}
	if proto.NeedsReference() {
		ch, err := mk(s.shardConfig(types.ShardID(scfg.Shards)))
		if err != nil {
			return nil, fmt.Errorf("reference chain: %w", err)
		}
		s.ref = ch
	}
	if proto.Replicated() {
		s.seqCh = make(chan seqItem, 1024)
	}
	return s, nil
}

// shardConfig derives shard id's core.Config from the template: its own
// in-process network (with the configured committee link latency), its
// own store directory, the shared Obs.
func (s *Chain) shardConfig(id types.ShardID) core.Config {
	cfg := s.base
	if s.scfg.IntraShardLatency > 0 {
		cfg.Net = network.New(network.WithUniformLatency(s.scfg.IntraShardLatency))
	}
	if cfg.Store != nil {
		st := *cfg.Store
		st.Dir = filepath.Join(st.Dir, dirFor(id, s.scfg.Shards))
		cfg.Store = &st
	}
	return cfg
}

func dirFor(id types.ShardID, shards int) string {
	if int(id) == shards {
		return "shard-ref"
	}
	return fmt.Sprintf("shard-%d", id)
}

// Start starts every shard chain (and the reference committee and, in
// replicated mode, the global sequencer). Idempotent.
func (s *Chain) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for _, ch := range s.shards {
		ch.Start()
	}
	if s.ref != nil {
		s.ref.Start()
	}
	if s.proto.Replicated() {
		s.wg.Add(1)
		go s.sequencer()
	}
}

// Stop stops the deployment: the sequencer drains, every shard chain
// stops (flushing partial batches), and unsettled spanning receipts
// fail with ErrStopped. Idempotent.
func (s *Chain) Stop() { s.shutdown(false) }

// Crash stops every shard abruptly — no flush, snapshots or WAL
// truncation beyond what already hit disk — for recovery tests.
func (s *Chain) Crash() { s.shutdown(true) }

func (s *Chain) shutdown(crash bool) {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	close(s.stopCh)
	s.mu.RLock()
	shards, ref := append([]*core.Chain(nil), s.shards...), s.ref
	s.mu.RUnlock()
	// Chains die first so in-flight 2PC goroutines fail fast instead of
	// blocking shutdown on their phase timeouts; then the waitgroup
	// drains.
	for _, ch := range shards {
		if crash {
			ch.Crash()
		} else {
			ch.Stop()
		}
	}
	if ref != nil {
		if crash {
			ref.Crash()
		} else {
			ref.Stop()
		}
	}
	s.wg.Wait()
	s.imu.Lock()
	states := make([]*crossState, 0, len(s.inflight))
	for _, st := range s.inflight {
		states = append(states, st)
	}
	s.imu.Unlock()
	for _, st := range states {
		st.rcpt.fail(ErrStopped)
	}
}

// NumShards returns the data-shard count.
func (s *Chain) NumShards() int { return s.scfg.Shards }

// Protocol returns the cross-shard strategy in use.
func (s *Chain) Protocol() CrossShardProtocol { return s.proto }

// Placement returns the deployment's key→shard function.
func (s *Chain) Placement() Placement { return s.place }

// Shard returns shard i's chain (i == NumShards addresses the
// reference committee, when one exists).
func (s *Chain) Shard(i types.ShardID) *core.Chain {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(i) == s.scfg.Shards {
		return s.ref
	}
	return s.shards[i]
}

// Aborted returns how many cross-shard transactions aborted.
func (s *Chain) Aborted() int64 { return s.crossAborted.Load() }

// CrossCommitted returns how many cross-shard transactions committed on
// every participant.
func (s *Chain) CrossCommitted() int64 { return s.crossCommitted.Load() }

// LockTable returns shard i's 2PL lock table (tests and experiments
// use it to fabricate contention and audit leases).
func (s *Chain) LockTable(i types.ShardID) *locktable.Table { return s.locks[i] }

// LockCount returns the live 2PL locks across every shard's table.
func (s *Chain) LockCount() int {
	n := 0
	for _, lt := range s.locks {
		n += lt.Count()
	}
	return n
}

// TotalStorage sums every shard's node-0 world-state size — the
// deployment's storage footprint in keys (replicated deployments pay
// shards × keys; partitioned ones pay each key once).
func (s *Chain) TotalStorage() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ch := range s.shards {
		n += ch.Node(0).Store().Len()
	}
	if s.ref != nil {
		n += s.ref.Node(0).Store().Len()
	}
	return n
}

// Flush asks every shard chain to cut partial batches.
func (s *Chain) Flush() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ch := range s.shards {
		ch.Flush()
	}
	if s.ref != nil {
		s.ref.Flush()
	}
}

// Await blocks until every shard chain satisfies spec (same semantics
// as core.Chain.Await, applied per shard).
func (s *Chain) Await(spec core.AwaitSpec) bool {
	s.mu.RLock()
	shards := append([]*core.Chain(nil), s.shards...)
	s.mu.RUnlock()
	for _, ch := range shards {
		if !ch.Await(spec) {
			return false
		}
	}
	return true
}

// Submit routes the transaction and blocks until its spanning receipt
// settles, returning nil only when every participant shard durably
// committed.
func (s *Chain) Submit(tx *types.Transaction) error {
	r, err := s.SubmitAsync(tx)
	if err != nil {
		return err
	}
	return r.Wait(0)
}

// SubmitAsync routes the transaction by placement: single-shard
// transactions go straight into their shard's pipeline (no locks, no
// records — the shard's own consensus is the whole story); cross-shard
// transactions run the durable 2PC; replicated deployments sequence
// every transaction onto every shard. The receipt settles when every
// participant durably committed, or on abort/failure.
func (s *Chain) SubmitAsync(tx *types.Transaction) (*Receipt, error) {
	if s.stopped.Load() {
		return nil, ErrStopped
	}
	if s.proto.Replicated() {
		return s.submitReplicated(tx)
	}
	parts := s.place.Participants(tx)
	if len(parts) == 0 {
		return nil, errors.New("shardcore: transaction touches no keys")
	}
	if len(parts) == 1 {
		return s.submitIntra(tx, parts[0])
	}
	ops, err := s.place.Split(tx)
	if err != nil {
		return nil, err
	}
	rcpt := newSpanningReceipt(tx.ID, parts)
	st := newCrossState(tx, parts, ops, rcpt)
	s.imu.Lock()
	s.inflight[tx.ID] = st
	s.imu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runCross(st)
	}()
	return rcpt, nil
}

// submitIntra forwards a single-shard transaction into its shard's
// pipeline and folds the shard receipt into a spanning one.
func (s *Chain) submitIntra(tx *types.Transaction, sh types.ShardID) (*Receipt, error) {
	rcpt := newSpanningReceipt(tx.ID, []types.ShardID{sh})
	r, err := s.Shard(sh).SubmitAsync(tx)
	if err != nil {
		return nil, err
	}
	r.OnSettle(func(cr *core.Receipt) {
		switch {
		case cr.Err() != nil:
			rcpt.fail(cr.Err())
		case cr.Status() == arch.TxAborted:
			rcpt.abort()
		default:
			rcpt.shardCommitted(sh, cr.Height())
		}
	})
	return rcpt, nil
}

// seqItem is one replicated-mode submission.
type seqItem struct {
	tx   *types.Transaction
	rcpt *Receipt
}

func (s *Chain) submitReplicated(tx *types.Transaction) (*Receipt, error) {
	rcpt := &Receipt{txID: tx.ID, done: make(chan struct{}), heights: map[types.ShardID]uint64{}}
	select {
	case s.seqCh <- seqItem{tx: tx, rcpt: rcpt}:
		return rcpt, nil
	case <-s.stopCh:
		return nil, ErrStopped
	}
}

// sequencer is replicated mode's single global orderer: one goroutine
// submits every transaction to every live shard chain in the same
// order, so all shards hold the same ledger prefix (the property
// replicated recovery's suffix replay relies on). There are no locks
// and no decision records — full replication is the degenerate case of
// cross-shard coordination, exactly as in ResilientDB's comparison.
func (s *Chain) sequencer() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			for {
				select {
				case item := <-s.seqCh:
					item.rcpt.fail(ErrStopped)
				default:
					return
				}
			}
		case item := <-s.seqCh:
			s.seqMu.Lock()
			s.sequence(item)
			s.seqMu.Unlock()
		}
	}
}

func (s *Chain) sequence(item seqItem) {
	live := make([]types.ShardID, 0, s.scfg.Shards)
	for i := range s.shards {
		if !s.dead[i] {
			live = append(live, types.ShardID(i))
		}
	}
	if len(live) == 0 {
		item.rcpt.fail(errors.New("shardcore: no live shards"))
		return
	}
	item.rcpt.mu.Lock()
	item.rcpt.remaining = len(live)
	item.rcpt.mu.Unlock()
	for _, sh := range live {
		sh := sh
		r, err := s.Shard(sh).SubmitAsync(item.tx)
		if err != nil {
			// The shard died mid-sequence: skip it from now on;
			// recovery re-levels it from a live shard's ledger.
			s.dead[sh] = true
			item.rcpt.shardCommitted(sh, 0)
			continue
		}
		r.OnSettle(func(cr *core.Receipt) {
			if cr.Err() != nil || cr.Status() == arch.TxAborted {
				item.rcpt.shardCommitted(sh, 0)
				return
			}
			item.rcpt.shardCommitted(sh, cr.Height())
		})
	}
}
