package shardcore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/sharper"
	"permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func testConfig(shards int) core.Config {
	return core.Config{
		Nodes:      4,
		BlockSize:  16,
		FlushEvery: 2 * time.Millisecond,
		DisableSig: true,
		Sharding: &core.ShardingConfig{
			Shards:       shards,
			CrossTimeout: 5 * time.Second,
		},
	}
}

func TestPlacementDeterminism(t *testing.T) {
	p := shardcore.NewPlacement(4)
	if sh := p.ShardOf(workload.ShardKey(2, 9)); sh != 2 {
		t.Fatalf("prefixed key placed on %d, want 2", sh)
	}
	if sh := p.ShardOf(workload.ShardKey(7, 0)); sh != 3 {
		t.Fatalf("s7 with 4 shards placed on %d, want 7 mod 4 = 3", sh)
	}
	if a, b := p.ShardOf("account/alice"), p.ShardOf("account/alice"); a != b {
		t.Fatal("hash placement is not deterministic")
	}
	// Hashed keys spread: 64 keys over 4 shards must hit every shard.
	seen := map[types.ShardID]bool{}
	for i := 0; i < 64; i++ {
		seen[p.ShardOf(fmt.Sprintf("user/%d", i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("hash placement hit only %d of 4 shards", len(seen))
	}
}

func TestPlacementParticipantsAndSplit(t *testing.T) {
	p := shardcore.NewPlacement(4)
	tx := &types.Transaction{ID: "x", Ops: []types.Op{
		{Code: types.OpAdd, Key: workload.ShardKey(3, 1), Delta: 1},
		{Code: types.OpAdd, Key: workload.ShardKey(1, 1), Delta: -1},
		{Code: types.OpPut, Key: workload.ShardKey(1, 2), Value: []byte("v")},
	}}
	parts := p.Participants(tx)
	if len(parts) != 2 || parts[0] != 1 || parts[1] != 3 {
		t.Fatalf("participants = %v, want [1 3]", parts)
	}
	ops, err := p.Split(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops[1]) != 2 || len(ops[3]) != 1 {
		t.Fatalf("split = %d/%d ops, want 2 on shard 1, 1 on shard 3", len(ops[1]), len(ops[3]))
	}
	// A transfer whose two keys place on different shards cannot split.
	bad := &types.Transaction{ID: "bad", Ops: []types.Op{
		{Code: types.OpTransfer, Key: workload.ShardKey(0, 1), Key2: workload.ShardKey(2, 1), Delta: 5},
	}}
	if _, err := p.Split(bad); err == nil {
		t.Fatal("cross-shard transfer split without error")
	}
}

func TestRejectsSingleChainConstructors(t *testing.T) {
	cfg := testConfig(2)
	if _, err := core.New(cfg); err == nil {
		t.Fatal("core.New accepted a sharded config")
	}
	cfg.Sharding = nil
	if _, err := shardcore.New(cfg, sharper.New()); err == nil {
		t.Fatal("shardcore.New accepted a config without Sharding")
	}
}

// TestConcurrentCrossShardOverlap is the race-mode stress: concurrent
// cross-shard transactions with overlapping key sets in both shard
// orientations, interleaved with intra-shard traffic. Ordered lock
// acquisition must settle every receipt — no deadlock, no leaked lock,
// no atomicity violation — and the cross-shard deltas must cancel.
func TestConcurrentCrossShardOverlap(t *testing.T) {
	s, err := shardcore.New(testConfig(2), sharper.New())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				a, b := types.ShardID(0), types.ShardID(1)
				if (w+i)%2 == 1 {
					a, b = b, a
				}
				var tx *types.Transaction
				if i%4 == 3 {
					tx = &types.Transaction{ID: fmt.Sprintf("intra-%d-%d", w, i), Ops: []types.Op{
						{Code: types.OpAdd, Key: workload.ShardKey(a, w%3), Delta: 1},
					}}
				} else {
					tx = &types.Transaction{ID: fmt.Sprintf("xs-%d-%d", w, i), Ops: []types.Op{
						{Code: types.OpAdd, Key: workload.ShardKey(a, w%3), Delta: -1},
						{Code: types.OpAdd, Key: workload.ShardKey(b, w%3), Delta: 1},
					}}
				}
				r, err := s.SubmitAsync(tx)
				if err == nil {
					err = r.Wait(60 * time.Second)
				}
				if err != nil {
					errs[w] = fmt.Errorf("tx %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if n := s.LockCount(); n != 0 {
		t.Fatalf("locks leaked: %d", n)
	}
	if err := s.VerifyCrossShardAtomicity(); err != nil {
		t.Fatal(err)
	}
}

// TestKill9MidTwoPhaseCommit kills every node of every shard (the whole
// process, as far as the WAL is concerned) at the worst moment — all
// participants durably PREPAREd, no outcome anywhere — and reopens the
// deployment from disk. The flattened protocol must resolve the
// in-doubt transaction to COMMIT (all-prepared rule) and apply the
// effects carried by the PREPARE records; the coordinator-based
// protocol, whose DECIDE never became durable, must presume ABORT and
// apply nothing. Either way: no subset commit, no lost lock.
func TestKill9MidTwoPhaseCommit(t *testing.T) {
	cases := []struct {
		name       string
		proto      shardcore.CrossShardProtocol
		wantCommit bool
	}{
		{"sharper-commits-when-all-prepared", sharper.New(), true},
		{"ahl-presumes-abort-without-decide", ahl.New(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(2)
			cfg.Store = &store.Config{Dir: t.TempDir(), SnapshotEvery: 8}
			s, err := shardcore.New(cfg, tc.proto)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			var once sync.Once
			s.AfterPrepare = func(string) {
				once.Do(func() {
					// kill -9: every committee dies before any
					// DECIDE or outcome can be ordered.
					s.CrashShard(0)
					s.CrashShard(1)
					if tc.proto.NeedsReference() {
						s.CrashShard(2) // the reference committee
					}
				})
			}
			r, err := s.SubmitAsync(&types.Transaction{ID: "xs-kill9", Ops: []types.Op{
				{Code: types.OpAdd, Key: workload.ShardKey(0, 5), Delta: -8},
				{Code: types.OpAdd, Key: workload.ShardKey(1, 5), Delta: 8},
			}})
			if err != nil {
				t.Fatal(err)
			}
			r.Wait(3 * time.Second) // settles or stays pending; Stop cleans up
			s.Stop()

			re, err := shardcore.Open(cfg, tc.proto)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Stop()
			want := int64(0)
			if tc.wantCommit {
				want = 8
			}
			if got := re.Shard(1).Node(0).Store().GetInt(workload.ShardKey(1, 5)); got != want {
				t.Fatalf("shard 1 effect after recovery = %d, want %d", got, want)
			}
			if got := re.Shard(0).Node(0).Store().GetInt(workload.ShardKey(0, 5)); got != -want {
				t.Fatalf("shard 0 effect after recovery = %d, want %d", got, -want)
			}
			if n := re.LockCount(); n != 0 {
				t.Fatalf("locks lost/leaked after recovery: %d", n)
			}
			if err := re.VerifyCrossShardAtomicity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
