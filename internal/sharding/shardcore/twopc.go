package shardcore

import (
	"strconv"
	"sync"
	"time"

	"permchain/internal/store"
	"permchain/internal/types"
)

// Marker transaction IDs, one namespace per 2PC phase. The decision
// record inside the marker op is authoritative; the IDs just keep the
// ledgers readable.
func beginTxID(txID string) string  { return "2pc/begin/" + txID }
func decideTxID(txID string) string { return "2pc/decide/" + txID }
func prepareTxID(txID string, sh types.ShardID) string {
	return "2pc/prep/" + txID + "/" + strconv.Itoa(int(sh))
}
func outcomeTxID(txID string, sh types.ShardID) string {
	return "2pc/out/" + txID + "/" + strconv.Itoa(int(sh))
}

// Per-shard outcome delivery states: the crossState is the arbitration
// point between the live coordinator goroutine and in-doubt recovery,
// so exactly one of them orders the outcome transaction on any shard.
const (
	outUnclaimed = iota
	outClaimed
	outDurable
	outFailed
)

// crossState is one in-flight (or in-doubt) cross-shard transaction.
type crossState struct {
	tx    *types.Transaction
	parts []types.ShardID
	ops   map[types.ShardID][]types.Op
	rcpt  *Receipt

	mu       sync.Mutex
	cond     *sync.Cond
	decided  bool
	commit   bool
	decideCh chan struct{} // closed once decided/commit are final
	outcome  map[types.ShardID]int
}

func newCrossState(tx *types.Transaction, parts []types.ShardID, ops map[types.ShardID][]types.Op, rcpt *Receipt) *crossState {
	st := &crossState{
		tx: tx, parts: parts, ops: ops, rcpt: rcpt,
		decideCh: make(chan struct{}),
		outcome:  make(map[types.ShardID]int, len(parts)),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// decide publishes the transaction's fate; idempotent via decideCh.
func (st *crossState) decide(commit bool) {
	st.mu.Lock()
	if !st.decided {
		st.decided, st.commit = true, commit
		close(st.decideCh)
	}
	st.mu.Unlock()
}

// claimOutcome returns true when the caller becomes the writer of shard
// sh's outcome transaction; it blocks while another writer is mid-order
// and returns false if that writer already made the outcome durable.
func (st *crossState) claimOutcome(sh types.ShardID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.outcome[sh] == outClaimed {
		st.cond.Wait()
	}
	if st.outcome[sh] == outDurable {
		return false
	}
	st.outcome[sh] = outClaimed
	return true
}

func (st *crossState) finishOutcome(sh types.ShardID, durable bool) {
	st.mu.Lock()
	if durable {
		st.outcome[sh] = outDurable
	} else {
		st.outcome[sh] = outFailed
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// retired reports whether every participant's outcome is durable, so
// the inflight entry can be dropped.
func (st *crossState) retired() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sh := range st.parts {
		if st.outcome[sh] != outDurable {
			return false
		}
	}
	return true
}

// hop charges the simulated one-way inter-committee delay for a
// protocol message from committee a to committee b.
func (s *Chain) hop(a, b types.ShardID) {
	if a == b {
		return
	}
	var d time.Duration
	if s.scfg.InterShardDelay != nil {
		d = s.scfg.InterShardDelay(a, b)
	} else {
		d = s.proto.Delay(a, b)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// orderMarker orders one decision record through chain id's consensus
// and waits for it to become durable (or applied, on a memory-only
// chain). This is the primitive every 2PC phase is built from: a
// decision exists exactly when its record is committed in some shard's
// ledger.
func (s *Chain) orderMarker(id types.ShardID, txID string, rec *store.DecisionRecord, extra []types.Op) error {
	ops := make([]types.Op, 0, len(extra)+1)
	ops = append(ops, extra...)
	ops = append(ops, store.DecisionMarkerOp(rec))
	r, err := s.Shard(id).SubmitAsync(&types.Transaction{ID: txID, Ops: ops})
	if err != nil {
		return err
	}
	return r.Wait(s.scfg.CrossTimeout)
}

// coordChain returns the committee id where coordinator rounds order:
// the reference committee for AHL, the strategy's pick otherwise.
func (s *Chain) coordChain(coord Coord) types.ShardID {
	if coord.Reference {
		return types.ShardID(s.scfg.Shards)
	}
	return coord.Shard
}

// runCross drives one cross-shard transaction through the durable 2PC:
//
//	BEGIN   (coordinator's consensus; skipped when flattened)
//	LOCK    (2PL, ascending shard order — deadlock-free by construction)
//	PREPARE (each participant's consensus; the record carries the
//	         shard's slice of the transaction so recovery can finish it)
//	DECIDE  (coordinator's consensus; flattened mode's decision is
//	         implied by every PREPARE being durable)
//	OUTCOME (each participant's consensus: effects + COMMIT record in
//	         one atomic ledger entry, or an ABORT record)
//
// Locks release per shard as its outcome becomes durable. A participant
// that cannot take its outcome (crashed) keeps the transaction inflight
// and its lock leased; RecoverShard finishes the job.
func (s *Chain) runCross(st *crossState) {
	tx, parts := st.tx, st.parts
	coord := s.proto.Coordinator(parts, s.scfg.Shards)
	coordID := s.coordChain(coord)
	if coord.Flattened {
		coordID = parts[0]
	}

	// BEGIN: durably announce the participant set on the coordinator.
	if !coord.Flattened {
		rec := &store.DecisionRecord{TxID: tx.ID, Phase: store.PhaseBegin, Shard: -1, Participants: parts}
		if err := s.orderMarker(coordID, beginTxID(tx.ID), rec, nil); err != nil {
			st.decide(false)
			s.dropInflight(st)
			st.rcpt.fail(err)
			return
		}
	}

	// LOCK: ascending shard order, atomic all-or-nothing per table.
	var locked []types.ShardID
	for _, sh := range parts {
		if err := s.locks[sh].Lock(tx.ID, s.place.KeysFor(tx, sh), s.scfg.CrossTimeout); err != nil {
			for _, l := range locked {
				s.locks[l].Unlock(tx.ID)
			}
			st.decide(false)
			s.crossAborted.Add(1)
			s.dropInflight(st)
			st.rcpt.abort()
			return
		}
		locked = append(locked, sh)
	}

	// PREPARE: every participant durably orders its slice of the
	// transaction inside its prepare record, in parallel.
	var wg sync.WaitGroup
	var pmu sync.Mutex
	var prepErr error
	for _, sh := range parts {
		wg.Add(1)
		go func(sh types.ShardID) {
			defer wg.Done()
			s.hop(coordID, sh)
			rec := &store.DecisionRecord{
				TxID: tx.ID, Phase: store.PhasePrepare, Shard: sh,
				Participants: parts, Ops: st.ops[sh],
			}
			err := s.orderMarker(sh, prepareTxID(tx.ID, sh), rec, nil)
			s.hop(sh, coordID)
			if err != nil {
				pmu.Lock()
				prepErr = err
				pmu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	commit := prepErr == nil

	if commit && s.AfterPrepare != nil {
		s.AfterPrepare(tx.ID)
	}

	// DECIDE: the verdict is ordered through the coordinator's own
	// consensus before any participant acts on it; if the verdict
	// cannot be made durable there is no commit (presumed abort).
	if !coord.Flattened {
		rec := &store.DecisionRecord{
			TxID: tx.ID, Phase: store.PhaseDecide, Shard: -1,
			Participants: parts, Commit: commit,
		}
		if err := s.orderMarker(coordID, decideTxID(tx.ID), rec, nil); err != nil {
			commit = false
		}
	}
	st.decide(commit)
	if commit {
		s.crossCommitted.Add(1)
	} else {
		s.crossAborted.Add(1)
	}

	// OUTCOME: apply effects + record on each participant, in parallel.
	for _, sh := range parts {
		wg.Add(1)
		go func(sh types.ShardID) {
			defer wg.Done()
			s.hop(coordID, sh)
			s.deliverOutcome(st, sh)
		}(sh)
	}
	wg.Wait()

	if !commit {
		st.rcpt.abort()
	}
	s.retire(st)
}

// deliverOutcome orders shard sh's outcome transaction — COMMIT with
// the effects, or ABORT — through sh's consensus, then releases sh's
// locks and advances the spanning receipt. The claim protocol ensures
// recovery and the live coordinator never both write it.
func (s *Chain) deliverOutcome(st *crossState, sh types.ShardID) {
	if !st.claimOutcome(sh) {
		return // already durable (recovery beat us to it)
	}
	commit := st.commit
	phase, extra := store.PhaseAbort, []types.Op(nil)
	if commit {
		phase, extra = store.PhaseCommit, st.ops[sh]
	}
	rec := &store.DecisionRecord{
		TxID: st.tx.ID, Phase: phase, Shard: sh,
		Participants: st.parts, Commit: commit,
	}
	r, err := s.Shard(sh).SubmitAsync(&types.Transaction{
		ID:  outcomeTxID(st.tx.ID, sh),
		Ops: append(append([]types.Op(nil), extra...), store.DecisionMarkerOp(rec)),
	})
	if err == nil {
		err = r.Wait(s.scfg.CrossTimeout)
	}
	if err != nil {
		// The shard is down (or too slow): keep the lock leased and
		// the transaction inflight — in-doubt recovery finishes it.
		st.finishOutcome(sh, false)
		return
	}
	st.finishOutcome(sh, true)
	s.locks[sh].Unlock(st.tx.ID)
	if commit {
		st.rcpt.shardCommitted(sh, r.Height())
	}
}

// retire drops the inflight entry once every participant's outcome is
// durable. An entry with any undelivered outcome must stay — even for
// an abort: recovery's flattened all-prepared rule would otherwise
// commit a transaction whose coordinator decided abort after a slow
// prepare, and the inflight entry is what lets recovery see that
// verdict (resolution rule 0).
func (s *Chain) retire(st *crossState) {
	if !st.retired() {
		return
	}
	s.dropInflight(st)
}

// dropInflight removes the entry unconditionally — only safe before
// PREPARE, when no shard holds any record of the transaction, or once
// every outcome is durable.
func (s *Chain) dropInflight(st *crossState) {
	s.imu.Lock()
	delete(s.inflight, st.tx.ID)
	s.imu.Unlock()
}
