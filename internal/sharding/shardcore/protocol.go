package shardcore

import (
	"time"

	"permchain/internal/types"
)

// Coord names where a cross-shard transaction's 2PC decision is
// ordered. Exactly one of the three shapes applies:
//
//   - Reference: the decision is ordered on a dedicated reference
//     committee (its own core.Chain, shard id == NumShards) that is not
//     a data shard — the AHL shape.
//   - Flattened: there is no coordinator round at all; the decision is
//     implied by every participant durably ordering its PREPARE record
//     (commit ⇔ all prepared), and in-doubt recovery applies exactly
//     that rule — the SharPer shape.
//   - Otherwise the decision is ordered through participant shard
//     Shard's own consensus — the Saguaro shape, where the strategy
//     picks a representative under the tree LCA.
type Coord struct {
	Shard     types.ShardID
	Reference bool
	Flattened bool
}

// CrossShardProtocol is the strategy interface the former ahl, sharper,
// saguaro and resilientdb packages now implement. A strategy does not
// move bytes: it decides the participant set, where the decision is
// ordered, and the inter-shard topology cost; the shardcore engine runs
// the one durable 2PC (or the replicated sequencer) those choices
// parameterize.
type CrossShardProtocol interface {
	// Name identifies the strategy ("ahl", "sharper", "saguaro",
	// "resilientdb") in metrics, docs, and the registry.
	Name() string

	// Replicated reports full-replication mode (ResilientDB §6.3):
	// every shard orders every transaction in one global sequence and
	// no locks or 2PC records exist. When true the remaining methods
	// are unused.
	Replicated() bool

	// NeedsReference reports whether the deployment must provision a
	// reference committee chain (shard id == shards) for coordination.
	NeedsReference() bool

	// Coordinator picks where the decision for this (sorted, len>1)
	// participant set is ordered, given the deployment's shard count.
	Coordinator(parts []types.ShardID, shards int) Coord

	// Delay returns the simulated one-way network delay between two
	// committees (shard id == shards addresses the reference
	// committee), or 0 for co-located ones. The engine charges it on
	// every cross-committee protocol hop, so topology-aware strategies
	// (Saguaro's edge/fog/cloud tree) shape latency without owning the
	// message flow. A nil-safe default of 0 models a flat datacenter.
	Delay(a, b types.ShardID) time.Duration
}
