// Package shardtest is the shared conformance suite every
// CrossShardProtocol strategy must pass: intra-shard commits, atomic
// cross-shard commits, deadlock-free conflict handling, lock release on
// abort, and durable in-doubt recovery across a participant crash. The
// per-protocol packages invoke it from their tests, so "implements the
// interface" always means "passes the same behavioural bar".
package shardtest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// baseConfig is the small, fast deployment shape the suite runs on.
func baseConfig(shards int, protocol string) core.Config {
	return core.Config{
		Nodes:      4,
		BlockSize:  16,
		FlushEvery: 2 * time.Millisecond,
		DisableSig: true,
		Sharding: &core.ShardingConfig{
			Shards:       shards,
			Protocol:     protocol,
			CrossTimeout: 5 * time.Second,
		},
	}
}

func newChain(t *testing.T, cfg core.Config, proto shardcore.CrossShardProtocol) *shardcore.Chain {
	t.Helper()
	s, err := shardcore.New(cfg, proto)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

func intraTx(id string, shard, key int, delta int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{
		{Code: types.OpAdd, Key: workload.ShardKey(types.ShardID(shard), key), Delta: delta},
	}}
}

func crossTx(id string, a, b int, key int, delta int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{
		{Code: types.OpAdd, Key: workload.ShardKey(types.ShardID(a), key), Delta: -delta},
		{Code: types.OpAdd, Key: workload.ShardKey(types.ShardID(b), key), Delta: delta},
	}}
}

// RunConformance runs the behavioural suite for one strategy.
func RunConformance(t *testing.T, protocol string, mk func(cfg core.ShardingConfig) shardcore.CrossShardProtocol) {
	cfgOf := func(shards int) (core.Config, shardcore.CrossShardProtocol) {
		cfg := baseConfig(shards, protocol)
		return cfg, mk(*cfg.Sharding)
	}

	t.Run("IntraCommit", func(t *testing.T) {
		cfg, proto := cfgOf(2)
		s := newChain(t, cfg, proto)
		for i := 0; i < 2; i++ {
			r, err := s.SubmitAsync(intraTx(fmt.Sprintf("intra-%d", i), i, 1, 5))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Wait(10 * time.Second); err != nil {
				t.Fatalf("intra tx on shard %d: %v", i, err)
			}
			if !r.Committed() {
				t.Fatalf("intra tx on shard %d: status %v", i, r.Status())
			}
			// Partitioned protocols settle on the one home shard;
			// replicated deployments order everything everywhere.
			want := 1
			if proto.Replicated() {
				want = s.NumShards()
			}
			if len(r.Heights()) != want {
				t.Fatalf("intra receipt heights = %v, want %d shard(s)", r.Heights(), want)
			}
		}
		if err := s.VerifyCrossShardAtomicity(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("CrossAtomicCommit", func(t *testing.T) {
		cfg, proto := cfgOf(3)
		s := newChain(t, cfg, proto)
		r, err := s.SubmitAsync(crossTx("xs-1", 0, 2, 7, 10))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(15 * time.Second); err != nil {
			t.Fatalf("cross tx: %v", err)
		}
		if !r.Committed() {
			t.Fatalf("cross tx status %v", r.Status())
		}
		if proto.Replicated() {
			if err := s.VerifyCrossShardAtomicity(); err != nil {
				t.Fatal(err)
			}
			return
		}
		h := r.Heights()
		if len(h) != 2 || h[0] == 0 || h[2] == 0 {
			t.Fatalf("spanning receipt heights = %v, want both participants", h)
		}
		got := s.Shard(0).Node(0).Store().GetInt(workload.ShardKey(0, 7))
		if got != -10 {
			t.Fatalf("shard 0 effect = %d, want -10", got)
		}
		if got := s.Shard(2).Node(0).Store().GetInt(workload.ShardKey(2, 7)); got != 10 {
			t.Fatalf("shard 2 effect = %d, want 10", got)
		}
		if n := s.LockCount(); n != 0 {
			t.Fatalf("locks leaked after commit: %d", n)
		}
		if err := s.VerifyCrossShardAtomicity(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("CrossConflictNoDeadlock", func(t *testing.T) {
		cfg, proto := cfgOf(2)
		s := newChain(t, cfg, proto)
		// Every transaction touches the same two keys on both shards,
		// in both orientations — maximal lock overlap. Ordered
		// acquisition must serialize them without deadlock or abort
		// storms settling nothing.
		const n = 16
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a, b := 0, 1
				if i%2 == 1 {
					a, b = 1, 0
				}
				r, err := s.SubmitAsync(crossTx(fmt.Sprintf("conflict-%d", i), a, b, 0, 1))
				if err == nil {
					err = r.Wait(30 * time.Second)
				}
				errs[i] = err
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("tx %d never settled cleanly: %v", i, err)
			}
		}
		if n := s.LockCount(); n != 0 {
			t.Fatalf("locks leaked after conflicting load: %d", n)
		}
		if err := s.VerifyCrossShardAtomicity(); err != nil {
			t.Fatal(err)
		}
	})

	if mk(core.ShardingConfig{}).Replicated() {
		t.Run("DurableRecovery", func(t *testing.T) { runReplicatedRecovery(t, protocol, mk) })
		return
	}

	t.Run("AbortReleasesLocks", func(t *testing.T) {
		cfg, proto := cfgOf(2)
		cfg.Sharding.CrossTimeout = 300 * time.Millisecond
		s := newChain(t, cfg, proto)
		// A foreign holder pins one participant key, so the 2PC's lock
		// phase times out and aborts; nothing must leak and no shard
		// may apply effects.
		s.LockTable(1).TryLock("intruder", []string{workload.ShardKey(1, 3)})
		r, err := s.SubmitAsync(crossTx("xs-abort", 0, 1, 3, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(10 * time.Second); err != shardcore.ErrCrossAborted {
			t.Fatalf("want ErrCrossAborted, got %v (status %v)", err, r.Status())
		}
		if s.Aborted() == 0 {
			t.Fatal("abort not counted")
		}
		s.LockTable(1).Unlock("intruder")
		if n := s.LockCount(); n != 0 {
			t.Fatalf("locks leaked after abort: %d", n)
		}
		if got := s.Shard(0).Node(0).Store().GetInt(workload.ShardKey(0, 3)); got != 0 {
			t.Fatalf("aborted tx applied effects on shard 0: %d", got)
		}
		if err := s.VerifyCrossShardAtomicity(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("DurableRecovery", func(t *testing.T) {
		cfg, proto := cfgOf(2)
		cfg.Store = durableStore(t)
		s := newChain(t, cfg, proto)
		// Crash participant 1 exactly after every PREPARE is durable:
		// the outcome cannot land there, the transaction stays
		// in-doubt, and RecoverShard must finish it from the WAL.
		var once sync.Once
		s.AfterPrepare = func(txID string) {
			once.Do(func() { s.CrashShard(1) })
		}
		r, err := s.SubmitAsync(crossTx("xs-indoubt", 0, 1, 9, 6))
		if err != nil {
			t.Fatal(err)
		}
		// The receipt must NOT settle: shard 1's outcome is pending.
		if err := r.Wait(2 * time.Second); err != core.ErrAwaitTimeout {
			t.Fatalf("receipt settled before recovery: %v (status %v)", err, r.Status())
		}
		if n := s.LockCount(); n == 0 {
			t.Fatal("in-doubt transaction lost its lock before recovery")
		}
		if err := s.RecoverShard(1); err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(15 * time.Second); err != nil {
			t.Fatalf("receipt after recovery: %v", err)
		}
		if !r.Committed() {
			t.Fatalf("in-doubt tx resolved to %v, want commit", r.Status())
		}
		if got := s.Shard(1).Node(0).Store().GetInt(workload.ShardKey(1, 9)); got != 6 {
			t.Fatalf("recovered shard effect = %d, want 6", got)
		}
		if n := s.LockCount(); n != 0 {
			t.Fatalf("locks leaked after recovery: %d", n)
		}
		if err := s.VerifyCrossShardAtomicity(); err != nil {
			t.Fatal(err)
		}
	})
}

func runReplicatedRecovery(t *testing.T, protocol string, mk func(cfg core.ShardingConfig) shardcore.CrossShardProtocol) {
	cfg := baseConfig(2, protocol)
	cfg.Store = durableStore(t)
	s := newChain(t, cfg, mk(*cfg.Sharding))
	for i := 0; i < 8; i++ {
		if err := s.Submit(intraTx(fmt.Sprintf("rep-%d", i), i%2, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.CrashShard(1)
	for i := 8; i < 16; i++ {
		if err := s.Submit(intraTx(fmt.Sprintf("rep-%d", i), i%2, i, 1)); err != nil {
			t.Fatalf("submit with crashed replica: %v", err)
		}
	}
	if err := s.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyCrossShardAtomicity(); err != nil {
		t.Fatal(err)
	}
}

// durableStore shapes a per-test WAL directory.
func durableStore(t *testing.T) *store.Config {
	t.Helper()
	return &store.Config{Dir: t.TempDir(), SnapshotEvery: 8}
}
