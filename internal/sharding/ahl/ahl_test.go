package ahl_test

import (
	"testing"

	"permchain/internal/core"
	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/shardtest"
	"permchain/internal/types"
)

func TestConformance(t *testing.T) {
	shardtest.RunConformance(t, "ahl", func(core.ShardingConfig) shardcore.CrossShardProtocol {
		return ahl.New()
	})
}

func TestCoordinatorIsReferenceCommittee(t *testing.T) {
	c := ahl.New().Coordinator([]types.ShardID{0, 2}, 4)
	if !c.Reference || c.Flattened {
		t.Fatalf("ahl coordinator = %+v, want reference committee", c)
	}
	if c.Shard != 4 {
		t.Fatalf("reference chain id = %d, want NumShards (4)", c.Shard)
	}
}
