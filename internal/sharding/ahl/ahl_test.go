package ahl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func newSystem(t *testing.T, shards int, attested bool) *System {
	t.Helper()
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, Options{Shards: shards, Attested: attested, Timeout: 15 * time.Second})
	t.Cleanup(s.Stop)
	return s
}

func intraTx(id string, shard types.ShardID, key int, d int64) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxInternal, Shards: []types.ShardID{shard},
		Ops: []types.Op{{Code: types.OpAdd, Key: workload.ShardKey(shard, key), Delta: d}},
	}
}

func crossTx(id string, a, b types.ShardID, key int) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxCross, Shards: []types.ShardID{a, b},
		Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(a, key), Delta: -1},
			{Code: types.OpAdd, Key: workload.ShardKey(b, key), Delta: 1},
		},
	}
}

func TestIntraShard(t *testing.T) {
	s := newSystem(t, 2, true)
	if err := s.SubmitIntra(intraTx("t1", 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if got := s.Shards()[0].Store().GetInt(workload.ShardKey(0, 1)); got != 5 {
		t.Fatalf("value %d", got)
	}
	// Shard 1 stores nothing: the ledger is partitioned.
	if s.Shards()[1].Store().Len() != 0 {
		t.Fatal("intra-shard write leaked to another shard")
	}
}

func TestCrossShard2PC(t *testing.T) {
	s := newSystem(t, 3, true)
	if err := s.SubmitCross(crossTx("x1", 0, 2, 7)); err != nil {
		t.Fatal(err)
	}
	if got := s.Shards()[0].Store().GetInt(workload.ShardKey(0, 7)); got != -1 {
		t.Fatalf("shard 0 value %d", got)
	}
	if got := s.Shards()[2].Store().GetInt(workload.ShardKey(2, 7)); got != 1 {
		t.Fatalf("shard 2 value %d", got)
	}
	// Uninvolved shard untouched.
	if s.Shards()[1].Store().Len() != 0 {
		t.Fatal("cross-shard tx touched an uninvolved shard")
	}
	// All locks released.
	for i, c := range s.Shards() {
		if c.LockCount() != 0 {
			t.Fatalf("shard %d still holds %d locks", i, c.LockCount())
		}
	}
}

func TestConcurrentNonOverlappingCross(t *testing.T) {
	s := newSystem(t, 4, true)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := types.ShardID(i % 4)
			b := types.ShardID((i + 1) % 4)
			errs[i] = s.SubmitCross(crossTx(fmt.Sprintf("x%d", i), a, b, 100+i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	for i, c := range s.Shards() {
		if c.LockCount() != 0 {
			t.Fatalf("shard %d leaked locks", i)
		}
	}
}

func TestLockConflictAborts(t *testing.T) {
	s := newSystem(t, 2, true)
	// Pre-acquire a lock directly to force the conflict deterministically.
	if err := s.Shards()[0].TryLock("intruder", []string{workload.ShardKey(0, 5)}); err != nil {
		t.Fatal(err)
	}
	err := s.SubmitCross(crossTx("x", 0, 1, 5))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if s.Aborted() != 1 {
		t.Fatalf("aborted count %d", s.Aborted())
	}
	// The victim's locks are all released (no partial locks on shard 1).
	if s.Shards()[1].LockCount() != 0 {
		t.Fatal("aborted tx leaked locks on shard 1")
	}
	// Neither shard applied anything.
	if s.Shards()[0].Store().Len() != 0 || s.Shards()[1].Store().Len() != 0 {
		t.Fatal("aborted tx applied writes")
	}
	// After the intruder releases, a retry commits.
	s.Shards()[0].Unlock("intruder")
	if err := s.SubmitCross(crossTx("x-retry", 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestBadShardRejected(t *testing.T) {
	s := newSystem(t, 2, true)
	if err := s.SubmitIntra(intraTx("t", 7, 0, 1)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
	if err := s.SubmitCross(crossTx("x", 0, 9, 1)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
	multi := intraTx("m", 0, 0, 1)
	multi.Shards = []types.ShardID{0, 1}
	if err := s.SubmitIntra(multi); err == nil {
		t.Fatal("multi-shard intra accepted")
	}
}

func TestAttestedCommitteesAreSmaller(t *testing.T) {
	allocA := cluster.NewAllocator(network.New())
	attested := New(allocA, Options{Shards: 2, Attested: true})
	defer attested.Stop()
	allocB := cluster.NewAllocator(network.New())
	plain := New(allocB, Options{Shards: 2, Attested: false})
	defer plain.Stop()
	if attested.Shards()[0].Size() >= plain.Shards()[0].Size() {
		t.Fatalf("attested committee %d not smaller than plain %d",
			attested.Shards()[0].Size(), plain.Shards()[0].Size())
	}
}

func TestOpsAndKeysForShard(t *testing.T) {
	tx := crossTx("x", 1, 3, 9)
	ops1 := OpsForShard(tx, 1)
	if len(ops1) != 1 || ops1[0].Key != workload.ShardKey(1, 9) {
		t.Fatalf("ops for shard 1: %v", ops1)
	}
	if len(OpsForShard(tx, 2)) != 0 {
		t.Fatal("uninvolved shard got ops")
	}
	keys3 := KeysForShard(tx, 3)
	if len(keys3) != 1 || keys3[0] != workload.ShardKey(3, 9) {
		t.Fatalf("keys for shard 3: %v", keys3)
	}
}
