// Package ahl implements AHL-style sharding (Dang et al., SIGMOD 2019)
// as a shardcore strategy, following §2.3.4: every cross-shard
// transaction is coordinated by a dedicated *reference committee* — a
// BFT committee of its own that holds no data shard — which runs
// two-phase commit on top of the shards' own consensus. In shardcore
// terms the BEGIN and DECIDE records are ordered through the reference
// committee's chain (shard id == NumShards), so the commit verdict is
// itself Byzantine fault tolerant, while each participant's PREPARE
// and COMMIT records go through that shard's consensus. The price is
// two extra wide-area round trips to the reference committee on every
// cross-shard transaction; the win is that data shards never talk to
// each other.
package ahl

import (
	"time"

	"permchain/internal/sharding/shardcore"
	"permchain/internal/types"
)

// Strategy is the reference-committee protocol. The zero value is
// ready to use.
type Strategy struct {
	// DelayFn models WAN latency between committees; the reference
	// committee is addressed as shard id == NumShards. Nil means
	// co-located.
	DelayFn func(a, b types.ShardID) time.Duration
}

// New returns the reference-committee strategy.
func New() Strategy { return Strategy{} }

// Name identifies the strategy.
func (Strategy) Name() string { return "ahl" }

// Replicated reports partitioned operation.
func (Strategy) Replicated() bool { return false }

// NeedsReference reports that the deployment provisions a reference
// committee chain.
func (Strategy) NeedsReference() bool { return true }

// Coordinator routes every decision through the reference committee.
func (Strategy) Coordinator(parts []types.ShardID, shards int) shardcore.Coord {
	return shardcore.Coord{Shard: types.ShardID(shards), Reference: true}
}

// Delay returns the configured inter-committee latency.
func (s Strategy) Delay(a, b types.ShardID) time.Duration {
	if s.DelayFn == nil {
		return 0
	}
	return s.DelayFn(a, b)
}
