// Package ahl implements the coordinator-based sharding of AHL ("Towards
// Scaling Blockchain Systems via Sharding", Dang et al., SIGMOD'19) as
// presented in §2.3.4: the ledger is partitioned across committees whose
// nodes run on trusted hardware — attestation prevents equivocation, so a
// committee needs only 2f+1 nodes instead of 3f+1 — and cross-shard
// transactions are coordinated *centrally* by a dedicated reference
// committee running classic two-phase commit with two-phase locking.
//
// Phase count per cross-shard transaction (the cost the tutorial's
// Discussion highlights): one consensus round at the reference committee
// to admit the transaction, one per involved shard to prepare (+lock),
// one at the reference committee to decide, and one per involved shard to
// commit — 2k+2 cluster-consensus rounds for k involved shards, vs
// SharPer's k parallel rounds.
package ahl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
)

// phase markers ordered inside clusters.
type beginMsg struct{ TxID string }
type prepareMsg struct{ TxID string }
type decideMsg struct {
	TxID   string
	Commit bool
}
type commitMsg struct {
	TxID   string
	Commit bool
}

// System is an AHL deployment: shard committees plus the reference
// committee.
type System struct {
	shards []*cluster.Cluster
	ref    *cluster.Cluster

	mu      sync.Mutex
	heights map[types.ShardID]uint64

	timeout time.Duration
	delay   func(a, b types.ShardID) time.Duration

	// Aborted counts cross-shard transactions aborted by lock conflicts.
	aborted int
}

// Options configures the deployment.
type Options struct {
	// Shards is the number of data shards.
	Shards int
	// CommitteeSize is each committee's node count; with Attested true the
	// default is 3 (2f+1, f=1), otherwise 4 (3f+1).
	CommitteeSize int
	// Attested enables the trusted-hardware committee-size reduction.
	Attested bool
	// Timeout bounds each consensus round.
	Timeout    time.Duration
	DisableSig bool
	// InterClusterDelay models the WAN latency of one message between two
	// clusters; the reference committee is cluster id = Shards. Nil means
	// co-located clusters. Cross-shard 2PC pays it on every
	// coordinator↔shard crossing, which is exactly the phase-count cost
	// §2.3.4 attributes to centralized coordination.
	InterClusterDelay func(a, b types.ShardID) time.Duration
}

// New creates an AHL system over the allocator's network. The reference
// committee gets shard id = Shards (one past the data shards).
func New(alloc *cluster.Allocator, opts Options) *System {
	if opts.CommitteeSize <= 0 {
		if opts.Attested {
			opts.CommitteeSize = 3
		} else {
			opts.CommitteeSize = 4
		}
	}
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	copts := cluster.Options{Size: opts.CommitteeSize, Attested: opts.Attested, DisableSig: opts.DisableSig}
	s := &System{heights: map[types.ShardID]uint64{}, timeout: opts.Timeout, delay: opts.InterClusterDelay}
	for i := 0; i < opts.Shards; i++ {
		s.shards = append(s.shards, alloc.NewCluster(types.ShardID(i), copts))
	}
	s.ref = alloc.NewCluster(types.ShardID(opts.Shards), copts)
	return s
}

// Stop shuts the system down.
func (s *System) Stop() {
	for _, c := range s.shards {
		c.Stop()
	}
	s.ref.Stop()
}

// Shards returns the data-shard clusters.
func (s *System) Shards() []*cluster.Cluster { return s.shards }

// Aborted returns the number of lock-conflict aborts so far.
func (s *System) Aborted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

func digestFor(kind, txID string) types.Hash {
	return types.HashConcat([]byte(kind), []byte(txID))
}

// hop sleeps for one inter-cluster message crossing.
func (s *System) hop(a, b types.ShardID) {
	if s.delay == nil || a == b {
		return
	}
	if d := s.delay(a, b); d > 0 {
		time.Sleep(d)
	}
}

// refID is the reference committee's cluster id.
func (s *System) refID() types.ShardID { return types.ShardID(len(s.shards)) }

// OpsForShard filters a transaction's operations to those touching the
// given shard's keyspace (keys prefixed "s<id>/", per workload.ShardKey).
func OpsForShard(tx *types.Transaction, id types.ShardID) []types.Op {
	prefix := fmt.Sprintf("s%d/", id)
	var out []types.Op
	for _, op := range tx.Ops {
		if strings.HasPrefix(op.Key, prefix) {
			out = append(out, op)
		}
	}
	return out
}

// KeysForShard filters a transaction's touched keys to one shard.
func KeysForShard(tx *types.Transaction, id types.ShardID) []string {
	prefix := fmt.Sprintf("s%d/", id)
	var out []string
	for _, k := range tx.TouchedKeys() {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// System errors.
var (
	ErrAborted  = errors.New("ahl: cross-shard transaction aborted (lock conflict)")
	ErrBadShard = errors.New("ahl: transaction names an unknown shard")
)

func (s *System) nextVersion(id types.ShardID) types.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heights[id]++
	return types.Version{Block: s.heights[id]}
}

// SubmitIntra orders and executes an intra-shard transaction on its home
// committee — one consensus round, no coordination.
func (s *System) SubmitIntra(tx *types.Transaction) error {
	if len(tx.Shards) != 1 {
		return fmt.Errorf("ahl: intra-shard transaction must name one shard, got %v", tx.Shards)
	}
	home := tx.Shards[0]
	if int(home) >= len(s.shards) {
		return ErrBadShard
	}
	c := s.shards[home]
	if _, err := c.OrderSync(tx, tx.Hash(), s.timeout); err != nil {
		return err
	}
	res := c.Store().Execute(s.nextVersion(home), tx.Ops)
	return res.Err
}

// SubmitCross runs the reference-committee 2PC for a cross-shard
// transaction. On lock conflict it aborts cleanly (caller may retry).
func (s *System) SubmitCross(tx *types.Transaction) error {
	for _, sh := range tx.Shards {
		if int(sh) >= len(s.shards) {
			return ErrBadShard
		}
	}
	// Round 1: the reference committee admits and orders the transaction,
	// fixing the global cross-shard order.
	if _, err := s.ref.OrderSync(beginMsg{TxID: tx.ID}, digestFor("begin", tx.ID), s.timeout); err != nil {
		return err
	}

	// Round 2 (parallel): each involved shard orders a prepare and
	// acquires 2PL locks.
	type voteRes struct {
		shard types.ShardID
		ok    bool
		err   error
	}
	votes := make(chan voteRes, len(tx.Shards))
	for _, sh := range tx.Shards {
		go func(sh types.ShardID) {
			s.hop(s.refID(), sh) // RC → shard: prepare message
			c := s.shards[sh]
			if _, err := c.OrderSync(prepareMsg{TxID: tx.ID}, digestFor("prep/"+sh.String(), tx.ID), s.timeout); err != nil {
				votes <- voteRes{shard: sh, err: err}
				return
			}
			err := c.TryLock(tx.ID, KeysForShard(tx, sh))
			s.hop(sh, s.refID()) // shard → RC: vote
			votes <- voteRes{shard: sh, ok: err == nil}
		}(sh)
	}
	commit := true
	var firstErr error
	for range tx.Shards {
		v := <-votes
		if v.err != nil && firstErr == nil {
			firstErr = v.err
		}
		if !v.ok {
			commit = false
		}
	}
	if firstErr != nil {
		s.releaseAll(tx)
		return firstErr
	}

	// Round 3: the reference committee orders the global decision.
	if _, err := s.ref.OrderSync(decideMsg{TxID: tx.ID, Commit: commit}, digestFor("decide", tx.ID), s.timeout); err != nil {
		s.releaseAll(tx)
		return err
	}

	// Round 4 (parallel): involved shards order the outcome, apply on
	// commit, and release locks.
	var wg sync.WaitGroup
	errs := make([]error, len(tx.Shards))
	for i, sh := range tx.Shards {
		wg.Add(1)
		go func(i int, sh types.ShardID) {
			defer wg.Done()
			s.hop(s.refID(), sh) // RC → shard: commit/abort message
			c := s.shards[sh]
			_, err := c.OrderSync(commitMsg{TxID: tx.ID, Commit: commit}, digestFor("commit/"+sh.String(), tx.ID), s.timeout)
			if err == nil && commit {
				res := c.Store().Execute(s.nextVersion(sh), OpsForShard(tx, sh))
				err = res.Err
			}
			c.Unlock(tx.ID)
			errs[i] = err
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if !commit {
		s.mu.Lock()
		s.aborted++
		s.mu.Unlock()
		return ErrAborted
	}
	return nil
}

func (s *System) releaseAll(tx *types.Transaction) {
	for _, sh := range tx.Shards {
		s.shards[sh].Unlock(tx.ID)
	}
}

// TotalStorage sums live keys across shards — with a partitioned ledger
// this stays ≈ the key count, not shards × keys.
func (s *System) TotalStorage() int {
	total := 0
	for _, c := range s.shards {
		total += c.Store().Len()
	}
	return total
}
