// Package sharper implements the flattened cross-shard consensus of
// SharPer (Amiri et al., SIGMOD 2021) as a shardcore strategy (§2.3.4):
// there is no dedicated coordinator and no coordinator rounds at all —
// a cross-shard transaction is decided by the involved shards
// themselves. In shardcore terms the decision is implied: a
// transaction commits if and only if every participant durably orders
// its PREPARE record through its own consensus, and in-doubt recovery
// applies exactly that rule. Uninvolved shards never see the
// transaction, which is SharPer's scalability argument over
// reference-committee designs.
package sharper

import (
	"time"

	"permchain/internal/sharding/shardcore"
	"permchain/internal/types"
)

// Strategy is the flattened protocol. The zero value is ready to use.
type Strategy struct {
	// DelayFn models WAN latency between two shards; nil means
	// co-located.
	DelayFn func(a, b types.ShardID) time.Duration
}

// New returns the flattened strategy.
func New() Strategy { return Strategy{} }

// Name identifies the strategy.
func (Strategy) Name() string { return "sharper" }

// Replicated reports partitioned operation.
func (Strategy) Replicated() bool { return false }

// NeedsReference reports that no reference committee exists.
func (Strategy) NeedsReference() bool { return false }

// Coordinator returns the flattened shape: the lowest involved shard
// initiates, but no coordinator rounds are ordered anywhere.
func (Strategy) Coordinator(parts []types.ShardID, shards int) shardcore.Coord {
	return shardcore.Coord{Shard: parts[0], Flattened: true}
}

// Delay returns the configured inter-shard latency.
func (s Strategy) Delay(a, b types.ShardID) time.Duration {
	if s.DelayFn == nil {
		return 0
	}
	return s.DelayFn(a, b)
}
