// Package sharper implements SharPer's decentralized sharding (Amiri et
// al., SIGMOD'21) as presented in §2.3.4: each fault-tolerant cluster
// maintains one shard of the ledger, and cross-shard transactions are
// ordered by a *flattened* consensus among only the involved clusters —
// no reference committee, fewer phases than coordinator-based 2PC, and
// cross-shard transactions over non-overlapping cluster sets proceed in
// parallel.
//
// The flattened instance is modeled at cluster granularity: the involved
// clusters each run one consensus round on the transaction concurrently
// (the joint PBFT instance of the paper), acquire 2PL locks, and commit
// if every cluster locked successfully — k parallel rounds versus AHL's
// 2k+2 serial-parallel mix.
package sharper

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
)

// System is a SharPer deployment.
type System struct {
	shards  []*cluster.Cluster
	timeout time.Duration

	mu      sync.Mutex
	heights map[types.ShardID]uint64
	aborted int
	delay   func(a, b types.ShardID) time.Duration
}

// Options configures the deployment.
type Options struct {
	Shards      int
	ClusterSize int // default 4 (3f+1, f=1): deterministic safety, no trusted hardware
	Timeout     time.Duration
	DisableSig  bool
	// InterClusterDelay models WAN latency between clusters. The flattened
	// instance pays one round trip between the initiating cluster and each
	// other involved cluster — fewer crossings than 2PC, but sensitive to
	// the distance between the involved clusters (§2.3.4).
	InterClusterDelay func(a, b types.ShardID) time.Duration
}

// New creates a SharPer system over the allocator's network.
func New(alloc *cluster.Allocator, opts Options) *System {
	if opts.ClusterSize <= 0 {
		opts.ClusterSize = 4
	}
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	s := &System{heights: map[types.ShardID]uint64{}, timeout: opts.Timeout, delay: opts.InterClusterDelay}
	for i := 0; i < opts.Shards; i++ {
		s.shards = append(s.shards, alloc.NewCluster(types.ShardID(i),
			cluster.Options{Size: opts.ClusterSize, DisableSig: opts.DisableSig}))
	}
	return s
}

// Stop shuts the system down.
func (s *System) Stop() {
	for _, c := range s.shards {
		c.Stop()
	}
}

// Shards returns the shard clusters.
func (s *System) Shards() []*cluster.Cluster { return s.shards }

// Aborted returns the number of lock-conflict aborts.
func (s *System) Aborted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

// hop sleeps for one inter-cluster message crossing.
func (s *System) hop(a, b types.ShardID) {
	if s.delay == nil || a == b {
		return
	}
	if d := s.delay(a, b); d > 0 {
		time.Sleep(d)
	}
}

// System errors.
var (
	ErrAborted  = errors.New("sharper: cross-shard transaction aborted (lock conflict)")
	ErrBadShard = errors.New("sharper: transaction names an unknown shard")
)

func (s *System) nextVersion(id types.ShardID) types.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heights[id]++
	return types.Version{Block: s.heights[id]}
}

// SubmitIntra orders and executes an intra-shard transaction on its home
// cluster.
func (s *System) SubmitIntra(tx *types.Transaction) error {
	if len(tx.Shards) != 1 {
		return fmt.Errorf("sharper: intra-shard transaction must name one shard, got %v", tx.Shards)
	}
	home := tx.Shards[0]
	if int(home) >= len(s.shards) {
		return ErrBadShard
	}
	c := s.shards[home]
	if _, err := c.OrderSync(tx, tx.Hash(), s.timeout); err != nil {
		return err
	}
	res := c.Store().Execute(s.nextVersion(home), tx.Ops)
	return res.Err
}

// SubmitCross runs the flattened cross-shard consensus: every involved
// cluster orders the transaction concurrently (one joint instance),
// locks, and applies if all locked. No extra coordinator is involved.
func (s *System) SubmitCross(tx *types.Transaction) error {
	for _, sh := range tx.Shards {
		if int(sh) >= len(s.shards) {
			return ErrBadShard
		}
	}
	type res struct {
		shard  types.ShardID
		locked bool
		err    error
	}
	// The lowest involved shard initiates the joint instance.
	coord := tx.Shards[0]
	for _, sh := range tx.Shards {
		if sh < coord {
			coord = sh
		}
	}
	results := make(chan res, len(tx.Shards))
	for _, sh := range tx.Shards {
		go func(sh types.ShardID) {
			s.hop(coord, sh) // initiator → involved cluster
			c := s.shards[sh]
			if _, err := c.OrderSync(tx, types.HashConcat([]byte("flat/"+sh.String()), []byte(tx.ID)), s.timeout); err != nil {
				results <- res{shard: sh, err: err}
				return
			}
			err := c.TryLock(tx.ID, ahl.KeysForShard(tx, sh))
			s.hop(sh, coord) // involved cluster → initiator
			results <- res{shard: sh, locked: err == nil}
		}(sh)
	}
	allLocked := true
	var firstErr error
	for range tx.Shards {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if !r.locked {
			allLocked = false
		}
	}
	defer func() {
		for _, sh := range tx.Shards {
			s.shards[sh].Unlock(tx.ID)
		}
	}()
	if firstErr != nil {
		return firstErr
	}
	if !allLocked {
		s.mu.Lock()
		s.aborted++
		s.mu.Unlock()
		return ErrAborted
	}
	// Decision reached by the joint instance: apply each shard's slice.
	for _, sh := range tx.Shards {
		c := s.shards[sh]
		if res := c.Store().Execute(s.nextVersion(sh), ahl.OpsForShard(tx, sh)); res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// TotalStorage sums live keys across shards.
func (s *System) TotalStorage() int {
	total := 0
	for _, c := range s.shards {
		total += c.Store().Len()
	}
	return total
}
