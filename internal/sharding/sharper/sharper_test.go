package sharper_test

import (
	"testing"

	"permchain/internal/core"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/shardtest"
	"permchain/internal/sharding/sharper"
	"permchain/internal/types"
)

func TestConformance(t *testing.T) {
	shardtest.RunConformance(t, "sharper", func(core.ShardingConfig) shardcore.CrossShardProtocol {
		return sharper.New()
	})
}

func TestCoordinatorIsFlattened(t *testing.T) {
	c := sharper.New().Coordinator([]types.ShardID{1, 3}, 4)
	if !c.Flattened || c.Reference {
		t.Fatalf("sharper coordinator = %+v, want flattened", c)
	}
	if c.Shard != 1 {
		t.Fatalf("initiator = %d, want lowest participant 1", c.Shard)
	}
}
