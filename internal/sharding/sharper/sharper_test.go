package sharper

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func newSystem(t *testing.T, shards int) *System {
	t.Helper()
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, Options{Shards: shards, Timeout: 15 * time.Second})
	t.Cleanup(s.Stop)
	return s
}

func intraTx(id string, shard types.ShardID, key int, d int64) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxInternal, Shards: []types.ShardID{shard},
		Ops: []types.Op{{Code: types.OpAdd, Key: workload.ShardKey(shard, key), Delta: d}},
	}
}

func crossTx(id string, a, b types.ShardID, key int) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxCross, Shards: []types.ShardID{a, b},
		Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(a, key), Delta: -1},
			{Code: types.OpAdd, Key: workload.ShardKey(b, key), Delta: 1},
		},
	}
}

func TestIntraAndCross(t *testing.T) {
	s := newSystem(t, 3)
	if err := s.SubmitIntra(intraTx("t1", 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitCross(crossTx("x1", 0, 2, 5)); err != nil {
		t.Fatal(err)
	}
	if got := s.Shards()[1].Store().GetInt(workload.ShardKey(1, 0)); got != 3 {
		t.Fatalf("intra value %d", got)
	}
	if got := s.Shards()[0].Store().GetInt(workload.ShardKey(0, 5)); got != -1 {
		t.Fatalf("cross value a %d", got)
	}
	if got := s.Shards()[2].Store().GetInt(workload.ShardKey(2, 5)); got != 1 {
		t.Fatalf("cross value b %d", got)
	}
	for i, c := range s.Shards() {
		if c.LockCount() != 0 {
			t.Fatalf("shard %d leaked locks", i)
		}
	}
}

func TestNoReferenceCommittee(t *testing.T) {
	// SharPer's defining structural property: exactly Shards clusters, no
	// extra coordinator cluster.
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, Options{Shards: 3})
	defer s.Stop()
	if len(s.Shards()) != 3 {
		t.Fatalf("clusters = %d, want 3 (no reference committee)", len(s.Shards()))
	}
}

func TestParallelNonOverlappingCross(t *testing.T) {
	s := newSystem(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	// Pairs (0,1), (2,3) never overlap; pairs cycle.
	pairs := [][2]types.ShardID{{0, 1}, {2, 3}, {0, 1}, {2, 3}, {0, 1}, {2, 3}}
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, a, b types.ShardID) {
			defer wg.Done()
			errs[i] = s.SubmitCross(crossTx(fmt.Sprintf("x%d", i), a, b, 10+i))
		}(i, p[0], p[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
}

func TestLockConflictAborts(t *testing.T) {
	s := newSystem(t, 2)
	if err := s.Shards()[1].TryLock("intruder", []string{workload.ShardKey(1, 5)}); err != nil {
		t.Fatal(err)
	}
	err := s.SubmitCross(crossTx("x", 0, 1, 5))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if s.Aborted() != 1 {
		t.Fatalf("aborted %d", s.Aborted())
	}
	// Shard 0's lock from the aborted attempt must be released.
	if s.Shards()[0].LockCount() != 0 {
		t.Fatal("aborted tx leaked locks")
	}
	s.Shards()[1].Unlock("intruder")
	if err := s.SubmitCross(crossTx("x2", 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestBadShard(t *testing.T) {
	s := newSystem(t, 2)
	if err := s.SubmitCross(crossTx("x", 0, 5, 1)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
	if err := s.SubmitIntra(intraTx("t", 5, 0, 1)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
}

func TestStorageIsPartitioned(t *testing.T) {
	s := newSystem(t, 2)
	for i := 0; i < 6; i++ {
		if err := s.SubmitIntra(intraTx(fmt.Sprintf("t%d", i), types.ShardID(i%2), i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// 6 keys total across 2 shards: partitioned, not replicated.
	if s.TotalStorage() != 6 {
		t.Fatalf("total storage %d, want 6", s.TotalStorage())
	}
}
