// Package saguaro implements the hierarchical sharding of Saguaro (Amiri
// et al., 2021) as presented in §2.3.4: clusters are organized along the
// wide-area network hierarchy — edge clusters hold ledger shards, with
// fog and cloud clusters above them — and each cross-shard transaction is
// coordinated by the *lowest common ancestor* of the involved edge
// clusters, the internal cluster with minimum total distance, instead of
// a fixed root coordinator. Nearby shards therefore pay near-edge
// latency; only transactions spanning distant subtrees climb toward the
// root.
package saguaro

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
)

// System is a Saguaro deployment over a complete tree of clusters.
type System struct {
	// leaves[i] is edge cluster i, holding shard i.
	leaves []*cluster.Cluster
	// internal clusters by tree node index (heap layout: node k's
	// children are 2k+1, 2k+2; leaves occupy the last level).
	all     []*cluster.Cluster
	fanout  int
	levels  int
	timeout time.Duration

	mu      sync.Mutex
	heights map[types.ShardID]uint64
	aborted int
	delay   func(a, b int) time.Duration
}

// Options configures the deployment.
type Options struct {
	// Levels is the tree depth (2 = root + edges; 3 adds a fog layer).
	Levels int
	// Fanout is each internal cluster's child count (default 2).
	Fanout int
	// ClusterSize is each cluster's replica count (default 4).
	ClusterSize int
	Timeout     time.Duration
	DisableSig  bool
	// InterClusterDelay models WAN latency between tree nodes (heap
	// indices). Cross-shard 2PC pays it on every LCA↔edge crossing; since
	// the LCA is topologically close to the involved edges, nearby-shard
	// transactions stay cheap (§2.3.4).
	InterClusterDelay func(a, b int) time.Duration
}

// New builds the complete tree. Shard/cluster ids follow heap order, so
// the root is cluster 0 and the edge clusters are the last level.
func New(alloc *cluster.Allocator, opts Options) *System {
	if opts.Levels < 2 {
		opts.Levels = 2
	}
	if opts.Fanout < 2 {
		opts.Fanout = 2
	}
	if opts.ClusterSize <= 0 {
		opts.ClusterSize = 4
	}
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	s := &System{fanout: opts.Fanout, levels: opts.Levels, timeout: opts.Timeout, heights: map[types.ShardID]uint64{}, delay: opts.InterClusterDelay}
	total := 0
	levelSize := 1
	for l := 0; l < opts.Levels; l++ {
		total += levelSize
		levelSize *= opts.Fanout
	}
	for i := 0; i < total; i++ {
		s.all = append(s.all, alloc.NewCluster(types.ShardID(i),
			cluster.Options{Size: opts.ClusterSize, DisableSig: opts.DisableSig}))
	}
	// Leaf count is fanout^(levels-1); leaves are the last level.
	nLeaves := levelSize / opts.Fanout
	s.leaves = s.all[total-nLeaves:]
	return s
}

// Stop shuts every cluster down.
func (s *System) Stop() {
	for _, c := range s.all {
		c.Stop()
	}
}

// Leaves returns the edge clusters (one per shard).
func (s *System) Leaves() []*cluster.Cluster { return s.leaves }

// NumShards returns the shard count.
func (s *System) NumShards() int { return len(s.leaves) }

// Aborted returns the number of lock-conflict aborts.
func (s *System) Aborted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

// treeIndex converts shard id (0..len(leaves)-1) to heap index.
func (s *System) treeIndex(shard types.ShardID) int {
	return len(s.all) - len(s.leaves) + int(shard)
}

func parent(i, fanout int) int { return (i - 1) / fanout }

// depth returns a heap node's depth.
func depth(i, fanout int) int {
	d := 0
	for i > 0 {
		i = parent(i, fanout)
		d++
	}
	return d
}

// LCA returns the heap index of the lowest common ancestor of the given
// shards' edge clusters — Saguaro's coordinator choice.
func (s *System) LCA(shards []types.ShardID) int {
	if len(shards) == 0 {
		return 0
	}
	cur := s.treeIndex(shards[0])
	for _, sh := range shards[1:] {
		other := s.treeIndex(sh)
		a, b := cur, other
		for depth(a, s.fanout) > depth(b, s.fanout) {
			a = parent(a, s.fanout)
		}
		for depth(b, s.fanout) > depth(a, s.fanout) {
			b = parent(b, s.fanout)
		}
		for a != b {
			a = parent(a, s.fanout)
			b = parent(b, s.fanout)
		}
		cur = a
	}
	return cur
}

// TreeDistance returns the hop count between two heap nodes — used for
// latency modelling (each hop is one WAN link).
func (s *System) TreeDistance(a, b int) int {
	da, db := depth(a, s.fanout), depth(b, s.fanout)
	dist := 0
	for da > db {
		a = parent(a, s.fanout)
		da--
		dist++
	}
	for db > da {
		b = parent(b, s.fanout)
		db--
		dist++
	}
	for a != b {
		a = parent(a, s.fanout)
		b = parent(b, s.fanout)
		dist += 2
	}
	return dist
}

// hop sleeps for one inter-cluster message crossing between tree nodes.
func (s *System) hop(a, b int) {
	if s.delay == nil || a == b {
		return
	}
	if d := s.delay(a, b); d > 0 {
		time.Sleep(d)
	}
}

// System errors.
var (
	ErrAborted  = errors.New("saguaro: cross-shard transaction aborted (lock conflict)")
	ErrBadShard = errors.New("saguaro: transaction names an unknown shard")
)

func (s *System) nextVersion(id types.ShardID) types.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heights[id]++
	return types.Version{Block: s.heights[id]}
}

// SubmitIntra orders and executes on the home edge cluster.
func (s *System) SubmitIntra(tx *types.Transaction) error {
	if len(tx.Shards) != 1 {
		return fmt.Errorf("saguaro: intra-shard transaction must name one shard, got %v", tx.Shards)
	}
	home := tx.Shards[0]
	if int(home) >= len(s.leaves) {
		return ErrBadShard
	}
	c := s.leaves[home]
	if _, err := c.OrderSync(tx, tx.Hash(), s.timeout); err != nil {
		return err
	}
	res := c.Store().Execute(s.nextVersion(home), tx.Ops)
	return res.Err
}

type coordMsg struct {
	TxID string
	Kind string // "admit" | "decide"
}

type shardMsg struct {
	TxID string
	Kind string // "prepare" | "commit"
}

// SubmitCross coordinates a cross-shard transaction through the LCA
// cluster: admit at LCA, prepare (+lock) at involved edges, decide at
// LCA, commit at edges. Same phase structure as coordinator-based 2PC but
// with a topologically close coordinator — the latency win of §2.3.4.
func (s *System) SubmitCross(tx *types.Transaction) error {
	for _, sh := range tx.Shards {
		if int(sh) >= len(s.leaves) {
			return ErrBadShard
		}
	}
	coordIdx := s.LCA(tx.Shards)
	coord := s.all[coordIdx]

	if _, err := coord.OrderSync(coordMsg{TxID: tx.ID, Kind: "admit"},
		types.HashConcat([]byte("sag/admit"), []byte(tx.ID)), s.timeout); err != nil {
		return err
	}

	type voteRes struct {
		ok  bool
		err error
	}
	votes := make(chan voteRes, len(tx.Shards))
	for _, sh := range tx.Shards {
		go func(sh types.ShardID) {
			s.hop(coordIdx, s.treeIndex(sh)) // LCA → edge: prepare
			c := s.leaves[sh]
			if _, err := c.OrderSync(shardMsg{TxID: tx.ID, Kind: "prepare"},
				types.HashConcat([]byte("sag/prep/"+sh.String()), []byte(tx.ID)), s.timeout); err != nil {
				votes <- voteRes{err: err}
				return
			}
			err := c.TryLock(tx.ID, ahl.KeysForShard(tx, sh))
			s.hop(s.treeIndex(sh), coordIdx) // edge → LCA: vote
			votes <- voteRes{ok: err == nil}
		}(sh)
	}
	commit := true
	var firstErr error
	for range tx.Shards {
		v := <-votes
		if v.err != nil && firstErr == nil {
			firstErr = v.err
		}
		if !v.ok {
			commit = false
		}
	}
	release := func() {
		for _, sh := range tx.Shards {
			s.leaves[sh].Unlock(tx.ID)
		}
	}
	if firstErr != nil {
		release()
		return firstErr
	}

	if _, err := coord.OrderSync(coordMsg{TxID: tx.ID, Kind: "decide"},
		types.HashConcat([]byte("sag/decide"), []byte(tx.ID)), s.timeout); err != nil {
		release()
		return err
	}

	var wg sync.WaitGroup
	errs := make([]error, len(tx.Shards))
	for i, sh := range tx.Shards {
		wg.Add(1)
		go func(i int, sh types.ShardID) {
			defer wg.Done()
			s.hop(coordIdx, s.treeIndex(sh)) // LCA → edge: commit/abort
			c := s.leaves[sh]
			_, err := c.OrderSync(shardMsg{TxID: tx.ID, Kind: "commit"},
				types.HashConcat([]byte("sag/commit/"+sh.String()), []byte(tx.ID)), s.timeout)
			if err == nil && commit {
				res := c.Store().Execute(s.nextVersion(sh), ahl.OpsForShard(tx, sh))
				err = res.Err
			}
			c.Unlock(tx.ID)
			errs[i] = err
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if !commit {
		s.mu.Lock()
		s.aborted++
		s.mu.Unlock()
		return ErrAborted
	}
	return nil
}
