// Package saguaro implements the hierarchical sharding of Saguaro
// (Amiri et al., 2021) as a shardcore strategy, following §2.3.4:
// shards sit at the edge of a wide-area hierarchy — edge clusters hold
// the ledger shards, with fog and cloud layers above them — and each
// cross-shard transaction is coordinated at the *lowest common
// ancestor* of the involved edges, not a fixed root. Nearby shards
// therefore pay near-edge latency; only transactions spanning distant
// subtrees climb toward the root.
//
// The tree is a complete fanout-ary heap over enough levels to hold
// the deployment's shards as leaves. Internal tree nodes hold no chain
// of their own; the LCA's coordination rounds are ordered through its
// representative edge — the lowest-indexed shard in its subtree — while
// the Delay model charges each edge's tree-hop path to the LCA (where
// the coordination actually happens), so the topology's latency shape
// survives the mapping onto shardcore's per-shard chains.
package saguaro

import (
	"time"

	"permchain/internal/sharding/shardcore"
	"permchain/internal/types"
)

// Strategy is the tree-LCA protocol.
type Strategy struct {
	// Fanout is each internal node's child count (default 2).
	Fanout int
	// HopDelay is the WAN latency of one tree link; Delay charges it
	// per hop on the LCA path between committees. Zero means
	// co-located.
	HopDelay time.Duration
	// Shards fixes the deployment size Delay models; required only
	// when HopDelay is set (Coordinator always gets the size per
	// call).
	Shards int
}

// New returns the tree strategy with the given fanout.
func New(fanout int) Strategy { return Strategy{Fanout: fanout} }

// Name identifies the strategy.
func (Strategy) Name() string { return "saguaro" }

// Replicated reports partitioned operation.
func (Strategy) Replicated() bool { return false }

// NeedsReference reports that no reference committee exists — the
// coordinator is always one of the edges.
func (Strategy) NeedsReference() bool { return false }

func (s Strategy) fanout() int {
	if s.Fanout < 2 {
		return 2
	}
	return s.Fanout
}

// tree describes the complete heap that hosts `shards` leaves.
type tree struct {
	fanout  int
	total   int // all heap nodes
	nLeaves int // capacity of the leaf level (fanout^(levels-1))
}

func (s Strategy) treeFor(shards int) tree {
	f := s.fanout()
	total, levelSize := 0, 1
	for levelSize < shards {
		total += levelSize
		levelSize *= f
	}
	return tree{fanout: f, total: total + levelSize, nLeaves: levelSize}
}

// index converts a shard id to its heap index on the leaf level.
func (t tree) index(sh types.ShardID) int { return t.total - t.nLeaves + int(sh) }

func parent(i, fanout int) int { return (i - 1) / fanout }

// depth returns a heap node's depth.
func depth(i, fanout int) int {
	d := 0
	for i > 0 {
		i = parent(i, fanout)
		d++
	}
	return d
}

// lca returns the heap index of the lowest common ancestor of two heap
// nodes.
func (t tree) lca(a, b int) int {
	for depth(a, t.fanout) > depth(b, t.fanout) {
		a = parent(a, t.fanout)
	}
	for depth(b, t.fanout) > depth(a, t.fanout) {
		b = parent(b, t.fanout)
	}
	for a != b {
		a = parent(a, t.fanout)
		b = parent(b, t.fanout)
	}
	return a
}

// distance returns the hop count between two heap nodes — one WAN link
// per hop.
func (t tree) distance(a, b int) int {
	da, db := depth(a, t.fanout), depth(b, t.fanout)
	dist := 0
	for da > db {
		a = parent(a, t.fanout)
		da--
		dist++
	}
	for db > da {
		b = parent(b, t.fanout)
		db--
		dist++
	}
	for a != b {
		a = parent(a, t.fanout)
		b = parent(b, t.fanout)
		dist += 2
	}
	return dist
}

// repLeaf descends first children from a heap node to its lowest leaf.
func (t tree) repLeaf(i int) types.ShardID {
	for i < t.total-t.nLeaves {
		i = i*t.fanout + 1
	}
	return types.ShardID(i - (t.total - t.nLeaves))
}

// LCA returns the heap index of the participants' lowest common
// ancestor in a deployment of `shards` shards (exported for the
// topology experiments).
func (s Strategy) LCA(parts []types.ShardID, shards int) int {
	t := s.treeFor(shards)
	if len(parts) == 0 {
		return 0
	}
	cur := t.index(parts[0])
	for _, sh := range parts[1:] {
		cur = t.lca(cur, t.index(sh))
	}
	return cur
}

// TreeDistance returns the WAN hop count between two shards' edges.
func (s Strategy) TreeDistance(a, b types.ShardID, shards int) int {
	t := s.treeFor(shards)
	return t.distance(t.index(a), t.index(b))
}

// Coordinator picks the representative edge of the participants' LCA:
// the lowest-indexed shard in the LCA's subtree. For participants under
// one fog node that is one of the nearby shards themselves; only
// distant spans coordinate through (a representative of) the root.
func (s Strategy) Coordinator(parts []types.ShardID, shards int) shardcore.Coord {
	t := s.treeFor(shards)
	lca := t.index(parts[0])
	for _, sh := range parts[1:] {
		lca = t.lca(lca, t.index(sh))
	}
	rep := t.repLeaf(lca)
	if int(rep) >= shards {
		rep = parts[0] // padded leaf slot: fall back to a participant
	}
	return shardcore.Coord{Shard: rep}
}

// Delay charges HopDelay per tree link from the two edges' LCA down to
// the destination edge. Coordination rounds run *at* the LCA cluster —
// in Saguaro the higher-level clusters are composed of nodes drawn from
// their subtrees, so each involved edge pays only its own path to the
// LCA, never the full edge-to-edge distance. A same-fog crossing is 1
// hop; a root-coordinated crossing is 2 — the same as a fixed root
// committee, which is why Saguaro matches AHL for distant spans and
// beats it for nearby ones.
func (s Strategy) Delay(a, b types.ShardID) time.Duration {
	if s.HopDelay <= 0 || s.Shards <= 0 || a == b {
		return 0
	}
	t := s.treeFor(s.Shards)
	max := types.ShardID(s.Shards - 1)
	if a > max {
		a = max
	}
	if b > max {
		b = max
	}
	ia, ib := t.index(a), t.index(b)
	return time.Duration(t.distance(t.lca(ia, ib), ib)) * s.HopDelay
}
