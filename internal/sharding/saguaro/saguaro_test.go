package saguaro_test

import (
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/sharding/saguaro"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/shardtest"
	"permchain/internal/types"
)

func TestConformance(t *testing.T) {
	shardtest.RunConformance(t, "saguaro", func(cfg core.ShardingConfig) shardcore.CrossShardProtocol {
		return saguaro.New(cfg.Fanout)
	})
}

// TestLCACoordinator pins the tree math: with fanout 2 and 4 shards the
// heap is root(0), fog(1,2), edges(3..6); shards 0,1 meet under fog 1
// (represented by shard 0), while shards 0,3 span the root.
func TestLCACoordinator(t *testing.T) {
	s := saguaro.New(2)
	if lca := s.LCA([]types.ShardID{0, 1}, 4); lca != 1 {
		t.Fatalf("LCA(0,1) = %d, want fog node 1", lca)
	}
	if lca := s.LCA([]types.ShardID{0, 3}, 4); lca != 0 {
		t.Fatalf("LCA(0,3) = %d, want root 0", lca)
	}
	if c := s.Coordinator([]types.ShardID{2, 3}, 4); c.Shard != 2 {
		t.Fatalf("coordinator(2,3) = %+v, want representative shard 2", c)
	}
	if c := s.Coordinator([]types.ShardID{1, 2}, 4); c.Shard != 0 {
		t.Fatalf("coordinator(1,2) = %+v, want root's representative shard 0", c)
	}
}

// TestTreeDistanceShapesDelay pins the latency model: edge-to-edge
// distance is the full tree path (siblings two hops, distant subtrees
// four), but Delay charges only the destination's path from the pair's
// LCA — coordination runs at the LCA cluster, so a same-fog crossing is
// one hop and a root-coordinated crossing two, never the full four.
func TestTreeDistanceShapesDelay(t *testing.T) {
	s := saguaro.Strategy{Fanout: 2, HopDelay: time.Millisecond, Shards: 4}
	if d := s.TreeDistance(0, 1, 4); d != 2 {
		t.Fatalf("distance(0,1) = %d, want 2", d)
	}
	if d := s.TreeDistance(0, 3, 4); d != 4 {
		t.Fatalf("distance(0,3) = %d, want 4", d)
	}
	if d := s.Delay(0, 1); d != time.Millisecond {
		t.Fatalf("delay(0,1) = %v, want 1ms (LCA = shared fog)", d)
	}
	if d := s.Delay(0, 3); d != 2*time.Millisecond {
		t.Fatalf("delay(0,3) = %v, want 2ms (LCA = root)", d)
	}
	if d := s.Delay(2, 2); d != 0 {
		t.Fatalf("delay(2,2) = %v, want 0", d)
	}
}
