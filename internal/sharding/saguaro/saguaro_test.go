package saguaro

import (
	"errors"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func newSystem(t *testing.T, levels, fanout int) *System {
	t.Helper()
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, Options{Levels: levels, Fanout: fanout, Timeout: 15 * time.Second})
	t.Cleanup(s.Stop)
	return s
}

func crossTx(id string, a, b types.ShardID, key int) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxCross, Shards: []types.ShardID{a, b},
		Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(a, key), Delta: -1},
			{Code: types.OpAdd, Key: workload.ShardKey(b, key), Delta: 1},
		},
	}
}

func TestTreeShape(t *testing.T) {
	// 3 levels, fanout 2: 1 root + 2 fog + 4 edge = 7 clusters, 4 shards.
	s := newSystem(t, 3, 2)
	if s.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", s.NumShards())
	}
	if len(s.all) != 7 {
		t.Fatalf("clusters = %d, want 7", len(s.all))
	}
}

func TestLCASelection(t *testing.T) {
	s := newSystem(t, 3, 2)
	// Heap layout: root 0; fog 1,2; edges 3,4,5,6 = shards 0,1,2,3.
	// Shards 0,1 (edges 3,4) share fog 1.
	if got := s.LCA([]types.ShardID{0, 1}); got != 1 {
		t.Fatalf("LCA(0,1) = %d, want 1", got)
	}
	// Shards 2,3 (edges 5,6) share fog 2.
	if got := s.LCA([]types.ShardID{2, 3}); got != 2 {
		t.Fatalf("LCA(2,3) = %d, want 2", got)
	}
	// Shards 0,3 span both subtrees: the root coordinates.
	if got := s.LCA([]types.ShardID{0, 3}); got != 0 {
		t.Fatalf("LCA(0,3) = %d, want 0", got)
	}
	// Single shard: its own edge cluster.
	if got := s.LCA([]types.ShardID{2}); got != 5 {
		t.Fatalf("LCA(2) = %d, want 5", got)
	}
}

func TestTreeDistance(t *testing.T) {
	s := newSystem(t, 3, 2)
	if d := s.TreeDistance(3, 4); d != 2 {
		t.Fatalf("dist(3,4) = %d, want 2 (via fog)", d)
	}
	if d := s.TreeDistance(3, 6); d != 4 {
		t.Fatalf("dist(3,6) = %d, want 4 (via root)", d)
	}
	if d := s.TreeDistance(1, 3); d != 1 {
		t.Fatalf("dist(1,3) = %d, want 1", d)
	}
	if d := s.TreeDistance(5, 5); d != 0 {
		t.Fatalf("dist(5,5) = %d", d)
	}
}

func TestIntraAndCrossCommit(t *testing.T) {
	s := newSystem(t, 2, 2) // root + 2 edges
	intra := &types.Transaction{
		ID: "t1", Kind: types.TxInternal, Shards: []types.ShardID{0},
		Ops: []types.Op{{Code: types.OpAdd, Key: workload.ShardKey(0, 1), Delta: 4}},
	}
	if err := s.SubmitIntra(intra); err != nil {
		t.Fatal(err)
	}
	if got := s.Leaves()[0].Store().GetInt(workload.ShardKey(0, 1)); got != 4 {
		t.Fatalf("intra value %d", got)
	}
	if err := s.SubmitCross(crossTx("x1", 0, 1, 9)); err != nil {
		t.Fatal(err)
	}
	if got := s.Leaves()[1].Store().GetInt(workload.ShardKey(1, 9)); got != 1 {
		t.Fatalf("cross value %d", got)
	}
	for i, c := range s.Leaves() {
		if c.LockCount() != 0 {
			t.Fatalf("leaf %d leaked locks", i)
		}
	}
}

func TestNearbyCrossUsesFogNotRoot(t *testing.T) {
	s := newSystem(t, 3, 2)
	// Shards 0,1 coordinate at fog cluster 1; the root must see no
	// coordination traffic for this transaction.
	rootBefore := s.all[0].OrderedCount()
	if err := s.SubmitCross(crossTx("x", 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if s.all[0].OrderedCount() != rootBefore {
		t.Fatal("root cluster coordinated a nearby cross-shard tx")
	}
	if s.all[1].OrderedCount() < 2 { // admit + decide
		t.Fatalf("fog cluster ordered %d values, want >= 2", s.all[1].OrderedCount())
	}
}

func TestLockConflictAborts(t *testing.T) {
	s := newSystem(t, 2, 2)
	if err := s.Leaves()[0].TryLock("intruder", []string{workload.ShardKey(0, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitCross(crossTx("x", 0, 1, 5)); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if s.Aborted() != 1 {
		t.Fatalf("aborted %d", s.Aborted())
	}
}

func TestBadShard(t *testing.T) {
	s := newSystem(t, 2, 2)
	if err := s.SubmitCross(crossTx("x", 0, 9, 1)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
	bad := &types.Transaction{ID: "t", Shards: []types.ShardID{9},
		Ops: []types.Op{{Code: types.OpAdd, Key: workload.ShardKey(9, 0), Delta: 1}}}
	if err := s.SubmitIntra(bad); !errors.Is(err, ErrBadShard) {
		t.Fatalf("err = %v", err)
	}
}
