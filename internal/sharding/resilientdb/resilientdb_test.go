package resilientdb_test

import (
	"testing"

	"permchain/internal/core"
	"permchain/internal/sharding/resilientdb"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/shardtest"
)

func TestConformance(t *testing.T) {
	shardtest.RunConformance(t, "resilientdb", func(core.ShardingConfig) shardcore.CrossShardProtocol {
		return resilientdb.New()
	})
}
