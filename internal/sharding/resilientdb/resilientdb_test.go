package resilientdb

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
)

func addTx(id, key string, d int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: key, Delta: d}}}
}

func newSystem(t *testing.T, n int) *System {
	t.Helper()
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, n, cluster.Options{Timeout: 500 * time.Millisecond})
	t.Cleanup(s.Stop)
	return s
}

func TestAllClustersExecuteEverything(t *testing.T) {
	s := newSystem(t, 3)
	const k = 12
	for i := 0; i < k; i++ {
		s.Submit(i%3, addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i), 1))
	}
	if !s.AwaitExecuted(k, 20*time.Second) {
		t.Fatalf("executed %d/%d", s.ExecutedCount(), k)
	}
	if !s.StatesAgree() {
		t.Fatal("cluster states diverged")
	}
	// Full replication: every cluster holds every key.
	for ci, c := range s.Clusters() {
		if c.Store().Len() != k {
			t.Fatalf("cluster %d stores %d/%d keys", ci, c.Store().Len(), k)
		}
	}
	if s.TotalStorage() != 3*k {
		t.Fatalf("total storage %d, want %d (replication factor = clusters)", s.TotalStorage(), 3*k)
	}
}

func TestDeterministicMergeOrder(t *testing.T) {
	// Conflicting increments from different clusters: every cluster must
	// apply them in the same order; totals agree everywhere.
	s := newSystem(t, 2)
	const k = 20
	for i := 0; i < k; i++ {
		s.Submit(i%2, addTx(fmt.Sprintf("t%d", i), "ctr", 1))
	}
	if !s.AwaitExecuted(k, 20*time.Second) {
		t.Fatalf("executed %d/%d", s.ExecutedCount(), k)
	}
	if !s.StatesAgree() {
		t.Fatal("states diverged under contention")
	}
	if got := s.Clusters()[0].Store().GetInt("ctr"); got != k {
		t.Fatalf("ctr = %d, want %d", got, k)
	}
}

func TestSingleCluster(t *testing.T) {
	s := newSystem(t, 1)
	s.Submit(0, addTx("t", "k", 5))
	if !s.AwaitExecuted(1, 10*time.Second) {
		t.Fatal("never executed")
	}
	if s.Clusters()[0].Store().GetInt("k") != 5 {
		t.Fatal("value missing")
	}
}

func TestStopIdempotent(t *testing.T) {
	alloc := cluster.NewAllocator(network.New())
	s := New(alloc, 2, cluster.Options{Timeout: 500 * time.Millisecond})
	s.Stop()
	s.Stop()
}
