// Package resilientdb implements the full-replication baseline of the
// ResilientDB comparison (Gupta et al., 2020) as a shardcore strategy
// (§2.3.4): there are no shards in the data sense — every "shard" chain
// holds the complete ledger and world state, and a single global
// sequencer orders every transaction onto every chain in the same
// order. Cross-shard transactions therefore need no locks, no 2PC and
// no decision records; the cost is storage and execution multiplied by
// the shard count, which is exactly the trade E6/E16 measure against
// the partitioned strategies.
package resilientdb

import (
	"time"

	"permchain/internal/sharding/shardcore"
	"permchain/internal/types"
)

// Strategy is the full-replication protocol. The zero value is ready
// to use.
type Strategy struct{}

// New returns the full-replication strategy.
func New() Strategy { return Strategy{} }

// Name identifies the strategy.
func (Strategy) Name() string { return "resilientdb" }

// Replicated reports full-replication mode: the shardcore sequencer
// replaces all cross-shard machinery.
func (Strategy) Replicated() bool { return true }

// NeedsReference reports that no reference committee exists.
func (Strategy) NeedsReference() bool { return false }

// Coordinator is unused in replicated mode.
func (Strategy) Coordinator(parts []types.ShardID, shards int) shardcore.Coord {
	return shardcore.Coord{}
}

// Delay is unused in replicated mode.
func (Strategy) Delay(a, b types.ShardID) time.Duration { return 0 }
