// Package resilientdb implements the single-ledger scalability technique
// of ResilientDB/RCC (Gupta et al., VLDB'20) as presented in §2.3.4:
// nodes are partitioned into topology-aware fault-tolerant clusters to
// localize consensus traffic, but the entire ledger is replicated on
// every cluster. Each cluster orders its own incoming transactions
// concurrently; decided transactions are multicast to all other clusters
// and every cluster executes every transaction in a deterministic
// round-robin merge order.
//
// There are no intra-/cross-shard transactions here — the trade-off the
// tutorial draws is exactly that: no cross-shard coordination latency, in
// exchange for every cluster executing and storing everything.
package resilientdb

import (
	"sync"
	"time"

	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
)

// System is a ResilientDB-style deployment.
type System struct {
	clusters []*cluster.Cluster

	mu       sync.Mutex
	queues   [][]*types.Transaction
	executed int
	height   uint64

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New creates a system of n clusters over the allocator's network.
func New(alloc *cluster.Allocator, n int, opts cluster.Options) *System {
	s := &System{
		queues: make([][]*types.Transaction, n),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		s.clusters = append(s.clusters, alloc.NewCluster(types.ShardID(i), opts))
	}
	for i := range s.clusters {
		go s.drain(i)
	}
	go s.merge()
	return s
}

// Stop shuts everything down. Idempotent.
func (s *System) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		for _, c := range s.clusters {
			c.Stop()
		}
	})
	<-s.done
}

// Clusters returns the cluster handles.
func (s *System) Clusters() []*cluster.Cluster { return s.clusters }

// Submit hands tx to cluster i's local consensus.
func (s *System) Submit(i int, tx *types.Transaction) {
	s.clusters[i].SubmitAsync(tx, tx.Hash())
}

// drain moves cluster i's decided transactions into its merge queue —
// the "multicast to other clusters" step of RCC.
func (s *System) drain(i int) {
	decs := s.clusters[i].Subscribe()
	for {
		select {
		case <-s.stopCh:
			return
		case d := <-decs:
			tx, ok := d.Value.(*types.Transaction)
			if !ok {
				continue
			}
			s.mu.Lock()
			s.queues[i] = append(s.queues[i], tx)
			s.mu.Unlock()
		}
	}
}

// merge executes transactions in the deterministic round order: one
// transaction per cluster per round, cluster index ascending. Every
// cluster executes every transaction (single-ledger replication).
func (s *System) merge() {
	defer close(s.done)
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		var round []*types.Transaction
		s.mu.Lock()
		for i := range s.queues {
			if len(s.queues[i]) > 0 {
				round = append(round, s.queues[i][0])
				s.queues[i] = s.queues[i][1:]
			}
		}
		s.mu.Unlock()
		if len(round) == 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		s.mu.Lock()
		s.height++
		for ti, tx := range round {
			for _, c := range s.clusters {
				c.Store().Execute(types.Version{Block: s.height, Tx: ti}, tx.Ops)
			}
			s.executed++
		}
		s.mu.Unlock()
	}
}

// ExecutedCount returns how many transactions have been executed
// (on every cluster).
func (s *System) ExecutedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed
}

// AwaitExecuted blocks until n transactions have executed.
func (s *System) AwaitExecuted(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.ExecutedCount() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// StatesAgree reports whether all clusters hold identical state — the
// single-ledger invariant.
func (s *System) StatesAgree() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ref types.Hash
	for i, c := range s.clusters {
		h := c.Store().StateHash()
		if i == 0 {
			ref = h
			continue
		}
		if h != ref {
			return false
		}
	}
	return true
}

// TotalStorage sums the key counts across clusters; with full
// replication it is clusters × keys, the E4/E6 storage cost.
func (s *System) TotalStorage() int {
	total := 0
	for _, c := range s.clusters {
		total += c.Store().Len()
	}
	return total
}
