// Package sharding maps cross-shard protocol names to their
// shardcore strategies — the one place the facade, the benchmarks and
// the CLI resolve a core.ShardingConfig.Protocol string.
package sharding

import (
	"fmt"

	"permchain/internal/core"
	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/resilientdb"
	"permchain/internal/sharding/saguaro"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/sharper"
)

// Protocols lists the registered strategy names.
func Protocols() []string { return []string{"sharper", "ahl", "saguaro", "resilientdb"} }

// Resolve returns the strategy named by cfg.Protocol ("" defaults to
// sharper, the flattened protocol).
func Resolve(cfg core.ShardingConfig) (shardcore.CrossShardProtocol, error) {
	switch cfg.Protocol {
	case "", "sharper":
		return sharper.New(), nil
	case "ahl":
		return ahl.New(), nil
	case "saguaro":
		return saguaro.New(cfg.Fanout), nil
	case "resilientdb":
		return resilientdb.New(), nil
	default:
		return nil, fmt.Errorf("sharding: unknown cross-shard protocol %q (have %v)", cfg.Protocol, Protocols())
	}
}

// NewChain resolves cfg.Sharding.Protocol and builds a fresh sharded
// deployment.
func NewChain(cfg core.Config) (*shardcore.Chain, error) {
	if cfg.Sharding == nil {
		return nil, fmt.Errorf("sharding: Config.Sharding must be set")
	}
	proto, err := Resolve(*cfg.Sharding)
	if err != nil {
		return nil, err
	}
	return shardcore.New(cfg, proto)
}

// OpenChain resolves cfg.Sharding.Protocol and recovers a sharded
// deployment from disk, finishing in-doubt cross-shard transactions.
func OpenChain(cfg core.Config) (*shardcore.Chain, error) {
	if cfg.Sharding == nil {
		return nil, fmt.Errorf("sharding: Config.Sharding must be set")
	}
	proto, err := Resolve(*cfg.Sharding)
	if err != nil {
		return nil, err
	}
	return shardcore.Open(cfg, proto)
}
