package workload

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/types"
)

// fakeServer is a bounded-capacity service: at most cap transactions
// outstanding (submission errors with errShed beyond that), each
// settling after service time — a deterministic stand-in for the
// admission-controlled chain with known capacity ≈ cap/service tx/sec.
type fakeServer struct {
	mu          sync.Mutex
	outstanding int
	cap         int
	service     time.Duration
}

var errShed = errors.New("fake: full")

func (s *fakeServer) submit(*types.Transaction) (<-chan struct{}, error) {
	s.mu.Lock()
	if s.outstanding >= s.cap {
		s.mu.Unlock()
		return nil, errShed
	}
	s.outstanding++
	s.mu.Unlock()
	done := make(chan struct{})
	time.AfterFunc(s.service, func() {
		s.mu.Lock()
		s.outstanding--
		s.mu.Unlock()
		close(done)
	})
	return done, nil
}

func stream(prefix string, n int) []*types.Transaction {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = &types.Transaction{
			ID:  fmt.Sprintf("%s-%d", prefix, i),
			Ops: []types.Op{{Code: types.OpAdd, Key: "k", Delta: 1}},
		}
	}
	return txs
}

func TestOpenLoopBelowCapacityRunsClean(t *testing.T) {
	// Capacity ≈ 32/5ms = 6400 tx/s; offering 200 tx/s must shed
	// nothing and settle everything.
	srv := &fakeServer{cap: 32, service: 5 * time.Millisecond}
	res := RunOpenLoop(OpenLoopConfig{
		Rate:          200,
		Txs:           stream("clean", 60),
		Submit:        srv.submit,
		SettleTimeout: 10 * time.Second,
	})
	if res.Offered != 60 || res.Shed != 0 || res.HardErrors != 0 {
		t.Fatalf("offered=%d shed=%d hard=%d, want 60/0/0", res.Offered, res.Shed, res.HardErrors)
	}
	if res.Settled != 60 || res.Unsettled != 0 {
		t.Fatalf("settled=%d unsettled=%d, want 60/0", res.Settled, res.Unsettled)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentile ordering broken: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.ShedFraction() != 0 {
		t.Fatalf("shed fraction %v, want 0", res.ShedFraction())
	}
}

func TestOpenLoopOverCapacitySheds(t *testing.T) {
	// Capacity 2 outstanding × 50ms service = 40 tx/s; offering 2000 tx/s
	// must shed most of the stream — and every admitted tx still settles
	// (no loss through the shed path).
	srv := &fakeServer{cap: 2, service: 50 * time.Millisecond}
	res := RunOpenLoop(OpenLoopConfig{
		Rate:          2000,
		Txs:           stream("over", 100),
		Submit:        srv.submit,
		IsShed:        func(err error) bool { return errors.Is(err, errShed) },
		SettleTimeout: 10 * time.Second,
	})
	if res.Shed == 0 {
		t.Fatal("over-capacity run shed nothing")
	}
	if res.HardErrors != 0 {
		t.Fatalf("sheds misclassified as hard errors: %d", res.HardErrors)
	}
	if res.Settled != res.Admitted {
		t.Fatalf("settled %d != admitted %d: admitted txs lost", res.Settled, res.Admitted)
	}
	if res.Offered != res.Admitted+res.Shed {
		t.Fatalf("partition broken: offered %d != admitted %d + shed %d",
			res.Offered, res.Admitted, res.Shed)
	}
}

func TestOpenLoopLatencyIsCoordinationOmissionSafe(t *testing.T) {
	// A submit path that stalls the driver 5ms per call while the
	// schedule wants a tx every 1ms. Measured from actual submit time
	// the per-tx latency would be ~0 (each settles instantly at
	// submission); measured from intended arrival — the CO-safe way —
	// the backlog charges later transactions with the full queueing
	// delay, so max latency must reach tens of milliseconds.
	const n = 20
	submit := func(*types.Transaction) (<-chan struct{}, error) {
		time.Sleep(5 * time.Millisecond) // driver-side stall
		done := make(chan struct{})
		close(done) // settles immediately at submit
		return done, nil
	}
	res := RunOpenLoop(OpenLoopConfig{
		Rate:          1000,
		Txs:           stream("co", n),
		Submit:        submit,
		SettleTimeout: 5 * time.Second,
	})
	if res.Settled != n {
		t.Fatalf("settled %d/%d", res.Settled, n)
	}
	// Tx i is intended at i·1ms but submitted at ~i·5ms: the tail must
	// carry ≥ (n-1)·4ms ≈ 76ms of charged delay. Assert well under that
	// to absorb scheduler noise, but far over the ~5ms a
	// measured-from-submit driver would report.
	if res.Max < 40*time.Millisecond {
		t.Fatalf("max latency %v: stall was coordinated-omitted (want ≥ 40ms charged to the schedule)", res.Max)
	}
}

func TestFindSaturationBracketsCapacity(t *testing.T) {
	// Server capacity 4×10ms ⇒ ~400 tx/s. The geometric ramp from 50
	// must pass the low steps clean and saturate at or before a few
	// multiples of capacity, bracketing the knee.
	srv := &fakeServer{cap: 4, service: 10 * time.Millisecond}
	res := FindSaturation(SaturationConfig{
		StartRate:     50,
		Growth:        2,
		StepTxs:       40,
		MaxSteps:      8,
		ShedThreshold: 0.05,
		Gen:           func(step, n int) []*types.Transaction { return stream(fmt.Sprintf("s%d", step), n) },
		Submit:        srv.submit,
		IsShed:        func(err error) bool { return errors.Is(err, errShed) },
		SettleTimeout: 10 * time.Second,
	})
	if !res.Saturated() {
		t.Fatal("ramp never found the knee")
	}
	if res.MaxSustainable < 50 {
		t.Fatalf("max sustainable %v: even the first step shed", res.MaxSustainable)
	}
	if res.SaturationRate <= res.MaxSustainable {
		t.Fatalf("bracket inverted: saturation %v <= sustainable %v",
			res.SaturationRate, res.MaxSustainable)
	}
	if res.SaturationRate > 6400 {
		t.Fatalf("saturation rate %v implausibly above the server's ~400 tx/s", res.SaturationRate)
	}
	last := res.Steps[len(res.Steps)-1]
	if last.ShedFraction() <= 0.05 && last.P99 == 0 {
		t.Fatalf("final step not saturated: %+v", last)
	}
}
