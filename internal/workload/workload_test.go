package workload

import (
	"testing"

	"permchain/internal/types"
)

func TestKVDeterministic(t *testing.T) {
	cfg := KVConfig{Txs: 50, Keys: 100, OpsPerTx: 2, Skew: 1.2}
	a := New(7).KV(cfg)
	b := New(7).KV(cfg)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Ops[0].Key != b[i].Ops[0].Key {
			t.Fatalf("tx %d differs across same-seed runs", i)
		}
	}
	c := New(8).KV(cfg)
	same := true
	for i := range a {
		if a[i].Ops[0].Key != c[i].Ops[0].Key {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workload")
	}
}

func TestKVSkewRaisesContention(t *testing.T) {
	uniform := New(1).KV(KVConfig{Txs: 2000, Keys: 10000, OpsPerTx: 1, Skew: 0})
	skewed := New(1).KV(KVConfig{Txs: 2000, Keys: 10000, OpsPerTx: 1, Skew: 1.5})
	cu := ConflictRate(uniform, 100)
	cs := ConflictRate(skewed, 100)
	if cs <= cu {
		t.Fatalf("skewed conflict rate %.4f not above uniform %.4f", cs, cu)
	}
}

func TestKVMildSkewStillWorks(t *testing.T) {
	txs := New(2).KV(KVConfig{Txs: 100, Keys: 50, OpsPerTx: 1, Skew: 0.5})
	if len(txs) != 100 {
		t.Fatalf("len %d", len(txs))
	}
}

func TestTransfersWellFormed(t *testing.T) {
	txs := New(3).Transfers(TransferConfig{Txs: 200, Accounts: 10, MaxAmount: 50})
	for _, tx := range txs {
		op := tx.Ops[0]
		if op.Code != types.OpTransfer {
			t.Fatalf("op %v", op.Code)
		}
		if op.Key == op.Key2 {
			t.Fatal("self transfer generated")
		}
		if op.Delta < 1 || op.Delta > 50 {
			t.Fatalf("amount %d out of range", op.Delta)
		}
	}
}

func TestShardedMix(t *testing.T) {
	txs := New(4).Sharded(ShardedConfig{Txs: 1000, Shards: 4, KeysPerShard: 100, CrossFraction: 0.3})
	cross := 0
	for _, tx := range txs {
		switch tx.Kind {
		case types.TxCross:
			cross++
			if len(tx.Shards) != 2 || tx.Shards[0] == tx.Shards[1] {
				t.Fatalf("bad cross tx shards %v", tx.Shards)
			}
		case types.TxInternal:
			if len(tx.Shards) != 1 {
				t.Fatalf("bad internal tx shards %v", tx.Shards)
			}
		}
	}
	if cross < 200 || cross > 400 {
		t.Fatalf("cross count %d, want ≈300", cross)
	}
}

func TestShardedZeroCross(t *testing.T) {
	txs := New(5).Sharded(ShardedConfig{Txs: 300, Shards: 4, CrossFraction: 0})
	for _, tx := range txs {
		if tx.Kind == types.TxCross {
			t.Fatal("cross tx with CrossFraction 0")
		}
	}
}

func TestShardedSingleShard(t *testing.T) {
	// CrossFraction is irrelevant with one shard; must not panic.
	txs := New(6).Sharded(ShardedConfig{Txs: 50, Shards: 1, CrossFraction: 0.9})
	for _, tx := range txs {
		if tx.Kind == types.TxCross {
			t.Fatal("cross tx with one shard")
		}
	}
}

func TestEnterpriseMix(t *testing.T) {
	txs := New(7).Enterprise(EnterpriseConfig{Txs: 1000, Enterprises: 3, CrossFraction: 0.2})
	cross, internal := 0, 0
	for _, tx := range txs {
		if tx.Enterprise < 1 || tx.Enterprise > 3 {
			t.Fatalf("enterprise %v out of range", tx.Enterprise)
		}
		switch tx.Kind {
		case types.TxCross:
			cross++
			if tx.Ops[0].Key[:6] != "shared" {
				t.Fatalf("cross tx touches %q", tx.Ops[0].Key)
			}
		case types.TxInternal:
			internal++
			want := tx.Enterprise.String() + "/"
			if tx.Ops[0].Key[:len(want)] != want {
				t.Fatalf("internal tx of %v touches %q", tx.Enterprise, tx.Ops[0].Key)
			}
		}
	}
	if cross < 120 || cross > 280 {
		t.Fatalf("cross = %d, want ≈200", cross)
	}
	if internal+cross != 1000 {
		t.Fatal("counts do not add up")
	}
}

func TestConflictRateEdges(t *testing.T) {
	if ConflictRate(nil, 10) != 0 {
		t.Fatal("empty workload conflict rate not 0")
	}
	if ConflictRate(New(1).KV(KVConfig{Txs: 10, Keys: 10}), 1) != 0 {
		t.Fatal("blockSize 1 conflict rate not 0")
	}
	// All txs on one key: conflict rate 1.
	txs := New(1).KV(KVConfig{Txs: 20, Keys: 1})
	if got := ConflictRate(txs, 10); got != 1 {
		t.Fatalf("single-key conflict rate %.2f, want 1", got)
	}
}
