package workload

import (
	"sort"
	"sync"
	"time"

	"permchain/internal/types"
)

// Open-loop load generation for the overload experiments (E14).
//
// A closed-loop driver (submit, wait, submit ...) cannot see overload:
// when the system slows down the driver slows down with it, offered
// load collapses to match capacity, and the latency histogram silently
// drops every request that *would* have arrived during a stall — the
// coordinated-omission trap. The open-loop driver here fixes both
// halves: transactions are fired on a fixed schedule regardless of how
// the system is doing, and each transaction's latency is measured from
// its *intended* arrival time (schedule position), not from whenever
// the driver actually got around to submitting it. A stall therefore
// shows up as growing latency for every transaction scheduled behind
// it, exactly as real clients would experience.

// AsyncSubmit is the submission interface the open-loop driver drives:
// it must not block on commit — it returns a channel that closes when
// the transaction settles, or an error when submission itself failed
// (an admission shed, a stopped chain). core.Chain.SubmitAsync adapts
// directly: return r.Done(), err.
type AsyncSubmit func(*types.Transaction) (<-chan struct{}, error)

// OpenLoopConfig shapes one constant-rate run.
type OpenLoopConfig struct {
	// Rate is the offered load in transactions per second. Required.
	Rate float64
	// Txs is the pre-generated transaction stream; the run offers all of
	// them (the run's duration is therefore len(Txs)/Rate at the
	// schedule's pace, longer only by trailing settle waits).
	Txs []*types.Transaction
	// Submit is the non-blocking submission function.
	Submit AsyncSubmit
	// IsShed classifies submission errors: sheds (counted, expected
	// under overload) versus hard errors (the run records them
	// separately). Nil treats every error as a shed.
	IsShed func(error) bool
	// SettleTimeout bounds how long the driver waits for any admitted
	// transaction to settle after the offer schedule ends. Default 30s.
	SettleTimeout time.Duration
}

// OpenLoopResult is one run's outcome.
type OpenLoopResult struct {
	// Rate echoes the offered rate; Offered/Admitted/Shed/HardErrors
	// partition the stream (Offered = Admitted + Shed + HardErrors).
	Rate       float64
	Offered    int
	Admitted   int
	Shed       int
	HardErrors int
	// Settled counts admitted transactions whose receipt settled within
	// SettleTimeout; Unsettled is the remainder (a correctness red flag
	// — admission without settlement is exactly the loss E14 forbids).
	Settled   int
	Unsettled int
	// Latency percentiles over settled transactions, measured from each
	// transaction's intended arrival time (coordinated-omission safe).
	P50, P95, P99, Max time.Duration
	// Elapsed is wall time for the whole run including settle waits;
	// Throughput is Settled/Elapsed.
	Elapsed    time.Duration
	Throughput float64
}

// ShedFraction is the fraction of offered transactions shed at
// admission.
func (r OpenLoopResult) ShedFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// RunOpenLoop offers cfg.Txs at cfg.Rate and reports the outcome. The
// driver never waits for the system inside the offer loop: if a submit
// call itself lags the schedule, subsequent transactions are submitted
// immediately (no catch-up sleep) and the lag is charged to their
// latency via the intended-arrival timestamps.
func RunOpenLoop(cfg OpenLoopConfig) OpenLoopResult {
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 30 * time.Second
	}
	isShed := cfg.IsShed
	if isShed == nil {
		isShed = func(error) bool { return true }
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	res := OpenLoopResult{Rate: cfg.Rate}
	start := time.Now()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		unsettled int
	)
	for i, tx := range cfg.Txs {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		res.Offered++
		done, err := cfg.Submit(tx)
		if err != nil {
			if isShed(err) {
				res.Shed++
			} else {
				res.HardErrors++
			}
			continue
		}
		res.Admitted++
		wg.Add(1)
		go func(intended time.Time, done <-chan struct{}) {
			defer wg.Done()
			t := time.NewTimer(cfg.SettleTimeout)
			defer t.Stop()
			select {
			case <-done:
				lat := time.Since(intended)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			case <-t.C:
				mu.Lock()
				unsettled++
				mu.Unlock()
			}
		}(intended, done)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Settled = len(latencies)
	res.Unsettled = unsettled
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Settled) / res.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantile(latencies, 0.50)
	res.P95 = quantile(latencies, 0.95)
	res.P99 = quantile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.Max = latencies[n-1]
	}
	return res
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(q * float64(n-1))
	return sorted[i]
}

// SaturationConfig shapes a ramp-to-saturation search: geometric rate
// steps until the system sheds (or blows its latency bound), bracketing
// the capacity knee.
type SaturationConfig struct {
	// StartRate is the first probe rate (txs/sec). Required.
	StartRate float64
	// Growth multiplies the rate between steps. Default 2.
	Growth float64
	// StepTxs is how many transactions each probe step offers. Default 200.
	StepTxs int
	// MaxSteps bounds the ramp. Default 12.
	MaxSteps int
	// ShedThreshold is the shed fraction at which a step counts as
	// saturated. Default 0.01 (any systematic shedding).
	ShedThreshold float64
	// P99Bound, when non-zero, also marks a step saturated if its
	// CO-safe p99 exceeds the bound — latency saturation can precede
	// admission sheds when queues are deep.
	P99Bound time.Duration
	// Gen produces each step's transaction stream; step streams must use
	// distinct digests or dedup will flatter the later steps.
	Gen func(step, n int) []*types.Transaction
	// Submit and IsShed as in OpenLoopConfig.
	Submit AsyncSubmit
	IsShed func(error) bool
	// SettleTimeout per step; default 30s.
	SettleTimeout time.Duration
}

// SaturationResult reports the bracket the ramp found.
type SaturationResult struct {
	// SaturationRate is the first offered rate that saturated (shed
	// fraction or p99 over threshold); zero if the ramp never saturated
	// within MaxSteps.
	SaturationRate float64
	// MaxSustainable is the highest offered rate that ran clean — the
	// capacity estimate overload experiments multiply to construct
	// guaranteed-overload offered loads.
	MaxSustainable float64
	// Steps holds every probe's full result, in ramp order.
	Steps []OpenLoopResult
}

// Saturated reports whether the ramp found the knee.
func (r SaturationResult) Saturated() bool { return r.SaturationRate > 0 }

// FindSaturation ramps offered load geometrically until the system
// saturates, returning the bracket (last clean rate, first saturated
// rate). Methodology per EXPERIMENTS.md E14: every step is open-loop
// and CO-safe, so the knee is located by offered — not achieved — load.
func FindSaturation(cfg SaturationConfig) SaturationResult {
	if cfg.Growth <= 1 {
		cfg.Growth = 2
	}
	if cfg.StepTxs <= 0 {
		cfg.StepTxs = 200
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 12
	}
	if cfg.ShedThreshold <= 0 {
		cfg.ShedThreshold = 0.01
	}
	var res SaturationResult
	rate := cfg.StartRate
	for step := 0; step < cfg.MaxSteps; step++ {
		r := RunOpenLoop(OpenLoopConfig{
			Rate:          rate,
			Txs:           cfg.Gen(step, cfg.StepTxs),
			Submit:        cfg.Submit,
			IsShed:        cfg.IsShed,
			SettleTimeout: cfg.SettleTimeout,
		})
		res.Steps = append(res.Steps, r)
		saturated := r.ShedFraction() > cfg.ShedThreshold ||
			(cfg.P99Bound > 0 && r.P99 > cfg.P99Bound)
		if saturated {
			res.SaturationRate = rate
			return res
		}
		res.MaxSustainable = rate
		rate *= cfg.Growth
	}
	return res
}
