// Package workload generates the synthetic transaction streams the
// experiments run on: contended key-value workloads with a Zipfian skew
// dial (the contention knob of experiment E2), bank-style transfers,
// cross-shard mixes with a tunable cross-shard fraction (E6/E7), and
// cross-enterprise mixes for the confidentiality experiments (E4).
//
// All generators are deterministic given a seed, so experiments are
// reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"

	"permchain/internal/obs"
	"permchain/internal/types"
)

// Gen is a seeded workload generator.
type Gen struct {
	rng *rand.Rand
	seq int
}

// New creates a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) nextID(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s-%d", prefix, g.seq)
}

// KVConfig shapes a read-modify-write key-value workload.
type KVConfig struct {
	// Txs is the number of transactions to generate.
	Txs int
	// Keys is the keyspace size.
	Keys int
	// OpsPerTx is the number of read-modify-write operations per
	// transaction (each touches one key).
	OpsPerTx int
	// ReadOps adds this many pure-read operations per transaction.
	// Read-vs-write conflicts are the ones Fabric++/FabricSharp can save
	// by reordering, unlike write-write cycles.
	ReadOps int
	// Skew is the Zipf s parameter; values > 1 concentrate traffic on few
	// keys (contention), 0 selects uniform access.
	Skew float64
}

// KV generates read-modify-write transactions (OpAdd) over a keyspace
// with the configured skew. Higher skew ⇒ more read-write conflicts,
// the contention dial of §2.3.3's architecture comparison.
func (g *Gen) KV(cfg KVConfig) []*types.Transaction {
	if cfg.OpsPerTx <= 0 {
		cfg.OpsPerTx = 1
	}
	pick := g.keyPicker(cfg.Keys, cfg.Skew)
	txs := make([]*types.Transaction, cfg.Txs)
	for i := range txs {
		ops := make([]types.Op, 0, cfg.OpsPerTx+cfg.ReadOps)
		for j := 0; j < cfg.OpsPerTx; j++ {
			ops = append(ops, types.Op{Code: types.OpAdd, Key: fmt.Sprintf("key%d", pick()), Delta: 1})
		}
		for j := 0; j < cfg.ReadOps; j++ {
			ops = append(ops, types.Op{Code: types.OpGet, Key: fmt.Sprintf("key%d", pick())})
		}
		txs[i] = &types.Transaction{ID: g.nextID("kv"), Ops: ops}
	}
	return txs
}

// keyPicker returns a sampler over [0, keys) with the given Zipf skew.
func (g *Gen) keyPicker(keys int, skew float64) func() int {
	if keys <= 0 {
		keys = 1
	}
	if skew <= 0 {
		return func() int { return g.rng.Intn(keys) }
	}
	s := skew
	if s <= 1 {
		// rand.Zipf requires s > 1; approximate mild skew by mixing
		// uniform with a hot set.
		hot := keys / 10
		if hot < 1 {
			hot = 1
		}
		return func() int {
			if g.rng.Float64() < s {
				return g.rng.Intn(hot)
			}
			return g.rng.Intn(keys)
		}
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(keys-1))
	return func() int { return int(z.Uint64()) }
}

// TransferConfig shapes a bank-transfer workload.
type TransferConfig struct {
	Txs      int
	Accounts int
	// MaxAmount bounds each transfer; amounts are in [1, MaxAmount].
	MaxAmount int64
	// Skew concentrates transfers on few hot accounts.
	Skew float64
}

// AccountKey names account i's balance key.
func AccountKey(i int) string { return fmt.Sprintf("acct%d", i) }

// Transfers generates two-account transfer transactions.
func (g *Gen) Transfers(cfg TransferConfig) []*types.Transaction {
	if cfg.MaxAmount <= 0 {
		cfg.MaxAmount = 10
	}
	pick := g.keyPicker(cfg.Accounts, cfg.Skew)
	txs := make([]*types.Transaction, cfg.Txs)
	for i := range txs {
		from := pick()
		to := pick()
		for to == from {
			to = (to + 1) % cfg.Accounts
		}
		txs[i] = &types.Transaction{
			ID: g.nextID("xfer"),
			Ops: []types.Op{{
				Code: types.OpTransfer,
				Key:  AccountKey(from), Key2: AccountKey(to),
				Delta: 1 + g.rng.Int63n(cfg.MaxAmount),
			}},
		}
	}
	return txs
}

// ShardedConfig shapes a sharded workload (experiments E6/E7).
type ShardedConfig struct {
	Txs    int
	Shards int
	// KeysPerShard is each shard's keyspace size.
	KeysPerShard int
	// CrossFraction is the probability a transaction spans two shards.
	CrossFraction float64
}

// ShardKey names key k of shard s; sharded stores partition by this
// prefix.
func ShardKey(s types.ShardID, k int) string { return fmt.Sprintf("s%d/key%d", s, k) }

// Sharded generates a mix of intra-shard and two-shard transactions.
// Cross-shard transactions move value between a key in each shard, the
// access pattern AHL/SharPer-style systems must coordinate.
func (g *Gen) Sharded(cfg ShardedConfig) []*types.Transaction {
	if cfg.KeysPerShard <= 0 {
		cfg.KeysPerShard = 1024
	}
	txs := make([]*types.Transaction, cfg.Txs)
	for i := range txs {
		home := types.ShardID(g.rng.Intn(cfg.Shards))
		k1 := g.rng.Intn(cfg.KeysPerShard)
		if cfg.Shards > 1 && g.rng.Float64() < cfg.CrossFraction {
			other := types.ShardID(g.rng.Intn(cfg.Shards - 1))
			if other >= home {
				other++
			}
			k2 := g.rng.Intn(cfg.KeysPerShard)
			txs[i] = &types.Transaction{
				ID:     g.nextID("xs"),
				Kind:   types.TxCross,
				Shards: []types.ShardID{home, other},
				Ops: []types.Op{
					{Code: types.OpAdd, Key: ShardKey(home, k1), Delta: -1},
					{Code: types.OpAdd, Key: ShardKey(other, k2), Delta: 1},
				},
			}
			continue
		}
		txs[i] = &types.Transaction{
			ID:     g.nextID("is"),
			Kind:   types.TxInternal,
			Shards: []types.ShardID{home},
			Ops:    []types.Op{{Code: types.OpAdd, Key: ShardKey(home, k1), Delta: 1}},
		}
	}
	return txs
}

// EnterpriseConfig shapes a cross-enterprise collaboration workload
// (confidentiality experiments, §2.3.1).
type EnterpriseConfig struct {
	Txs         int
	Enterprises int
	// CrossFraction is the probability a transaction is cross-enterprise.
	CrossFraction float64
	// KeysPerEnterprise is each enterprise's private keyspace.
	KeysPerEnterprise int
}

// EnterpriseKey names enterprise e's private key k.
func EnterpriseKey(e types.EnterpriseID, k int) string {
	return fmt.Sprintf("e%d/key%d", e, k)
}

// SharedKey names a key visible to all enterprises.
func SharedKey(k int) string { return fmt.Sprintf("shared/key%d", k) }

// Enterprise generates internal transactions (touching one enterprise's
// private keys) mixed with cross-enterprise transactions (touching the
// shared keyspace).
func (g *Gen) Enterprise(cfg EnterpriseConfig) []*types.Transaction {
	if cfg.KeysPerEnterprise <= 0 {
		cfg.KeysPerEnterprise = 256
	}
	txs := make([]*types.Transaction, cfg.Txs)
	for i := range txs {
		ent := types.EnterpriseID(1 + g.rng.Intn(cfg.Enterprises))
		if g.rng.Float64() < cfg.CrossFraction {
			txs[i] = &types.Transaction{
				ID:         g.nextID("xe"),
				Enterprise: ent,
				Kind:       types.TxCross,
				Ops: []types.Op{{
					Code:  types.OpAdd,
					Key:   SharedKey(g.rng.Intn(cfg.KeysPerEnterprise)),
					Delta: 1,
				}},
			}
			continue
		}
		txs[i] = &types.Transaction{
			ID:         g.nextID("ie"),
			Enterprise: ent,
			Kind:       types.TxInternal,
			Ops: []types.Op{{
				Code:  types.OpAdd,
				Key:   EnterpriseKey(ent, g.rng.Intn(cfg.KeysPerEnterprise)),
				Delta: 1,
			}},
		}
	}
	return txs
}

// Submitter stamps each transaction's PhaseSubmit timestamp on the
// shared lifecycle tracer before handing it to the chain, so end-to-end
// (submit → apply) latency is measured from the workload driver's side
// rather than from inside the consensus layer. A nil Obs passes
// transactions through untouched.
type Submitter struct {
	o      *obs.Obs
	submit func(*types.Transaction) error
}

// NewSubmitter wraps a submit function (typically core.Chain.Submit)
// with lifecycle stamping.
func NewSubmitter(o *obs.Obs, submit func(*types.Transaction) error) *Submitter {
	return &Submitter{o: o, submit: submit}
}

// Submit records the transaction's submit timestamp and forwards it.
func (s *Submitter) Submit(tx *types.Transaction) error {
	s.o.Mark(tx.Hash(), 0, obs.PhaseSubmit)
	return s.submit(tx)
}

// SubmitAll submits a batch in order, stopping at the first error.
func (s *Submitter) SubmitAll(txs []*types.Transaction) error {
	for _, tx := range txs {
		if err := s.Submit(tx); err != nil {
			return err
		}
	}
	return nil
}

// ConflictRate measures the fraction of transaction pairs within
// consecutive windows of size blockSize that conflict on declared key
// sets — a cheap contention metric used to sanity-check skew settings.
func ConflictRate(txs []*types.Transaction, blockSize int) float64 {
	if blockSize < 2 {
		return 0
	}
	pairs, conflicts := 0, 0
	for start := 0; start+blockSize <= len(txs); start += blockSize {
		blk := txs[start : start+blockSize]
		for i := 0; i < len(blk); i++ {
			ki := keySet(blk[i])
			for j := i + 1; j < len(blk); j++ {
				pairs++
				for _, k := range blk[j].TouchedKeys() {
					if ki[k] {
						conflicts++
						break
					}
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(conflicts) / float64(pairs)
}

func keySet(tx *types.Transaction) map[string]bool {
	m := map[string]bool{}
	for _, k := range tx.TouchedKeys() {
		m[k] = true
	}
	return m
}
