// Package wire is permchain's shared zero-copy binary codec: one
// deterministic, length-prefixed frame format used by both the durable
// store (block and snapshot records, internal/store) and the network
// transport's serialized mode (network.WithWireCodec). Growing both out
// of one codec means a block on disk and a consensus message in flight
// spell their fields the same way, and the cost of marshalling — which
// the struct-pointer transport hides entirely — is paid and measured in
// one place.
//
// # Frame layout
//
//	[u8 version][u16 type tag][payload bytes...]
//
// The payload encoding is per-type (registered via Register) but built
// exclusively from this package's primitives: big-endian fixed-width
// integers, and length-prefixed (u32) byte strings. Nested dynamic
// values (`any` fields such as consensus proposals' Value) recurse as
// [u16 tag][payload]; tag 0 is nil. Maps are serialized in sorted key
// order, so identical logical content always produces identical bytes.
//
// # Type-tag registry
//
// Every payload type that crosses the wire registers a codec under a
// stable uint16 tag. Tags are assigned in blocks, one per owning
// package, and must never be reused or renumbered once released:
//
//	  1– 15  wire builtins (string, []byte, bool, int, int64, uint64, Hash)
//	 16– 31  internal/types (Transaction)
//	 32– 47  internal/quorumcert (Partial, QuorumCert)
//	 48– 63  internal/network (VoteBatch)
//	 64– 79  internal/consensus/pbft
//	 80– 95  internal/consensus/hotstuff
//	 96–111  internal/consensus/ibft
//	112–127  internal/consensus/tendermint
//	128–143  internal/consensus/paxos
//	144–159  internal/consensus/raft
//	160–175  internal/core (batch proposals)
//	176–191  internal/store (2PC decision records)
//
// Registration happens in the owning package's init (the types are
// usually unexported there); duplicate tags panic at init time.
//
// # Pooling and zero-copy rules
//
// Encoders are pooled (GetEncoder/PutEncoder) so steady-state encoding
// is allocation-free: the frame buffer is reused across messages and
// only grows. A pooled frame's bytes are owned by the encoder — they
// are valid until PutEncoder, after which the buffer may be reused, so
// anything that outlives the frame must be copied out.
//
// Decoding offers both copying and zero-copy reads. Bytes/Str copy and
// are always safe. View returns a sub-slice of the frame itself and
// AppendBytes reuses the caller's buffer: use these only when the
// decoded value either (a) does not outlive the frame, (b) is copied by
// the consumer (big.Int.SetBytes, map-key lookup), or (c) decodes into
// a frame that is never recycled. StrShared consults the intern table
// (Intern) so well-known protocol constants decode without allocating.
// The network's decode path uses only the safe forms — decoded payloads
// never reference the pooled frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"permchain/internal/types"
)

// FrameVersion is the first byte of every frame.
const FrameVersion = 1

// ErrCorrupt is the root of every decode failure: truncated frames,
// damaged counts, unknown tags, trailing bytes. Callers test with
// errors.Is; the decoder never panics on hostile input.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrUnregistered reports an encode of a Go type no codec was
// registered for — a configuration bug, not a data error.
var ErrUnregistered = errors.New("wire: unregistered payload type")

var errShort = fmt.Errorf("%w: record truncated", ErrCorrupt)

// Encoder appends a frame into a reusable buffer. The zero value is
// ready to use; pooled instances come from GetEncoder.
type Encoder struct {
	buf []byte
	err error
}

// Reset truncates the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0]; e.err = nil }

// Frame returns the encoded bytes so far. The slice aliases the
// encoder's buffer: it is valid until the next Reset/PutEncoder.
func (e *Encoder) Frame() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Err returns the first encode error (an unregistered Any payload).
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// U8 appends one byte.
func (e *Encoder) U8(v byte) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement uint64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Hash appends a fixed-width 32-byte digest.
func (e *Encoder) Hash(h types.Hash) { e.buf = append(e.buf, h[:]...) }

// Bytes appends a u32 length prefix followed by b.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a string like Bytes.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// BigInt appends a nil-able non-negative big integer: a presence byte,
// then the absolute-value bytes. Quorum-certificate scalars are group
// elements and never negative.
func (e *Encoder) BigInt(v *big.Int) {
	if v == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	n := (v.BitLen() + 7) / 8
	e.U32(uint32(n))
	start := len(e.buf)
	if cap(e.buf)-start >= n {
		// Reslice instead of append(make(...)): a warmed buffer must
		// stay allocation-free even in -race builds, where the
		// append+make in-place-growth optimization is disabled.
		e.buf = e.buf[:start+n] // FillBytes overwrites every byte below
	} else {
		e.buf = append(e.buf, make([]byte, n)...)
	}
	v.FillBytes(e.buf[start:])
}

// Decoder reads a frame. The error is sticky: after the first failure
// every read returns a zero value, so codecs can decode straight-line
// and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset re-arms the decoder over a new buffer.
func (d *Decoder) Reset(buf []byte) { d.buf = buf; d.off = 0; d.err = nil }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done verifies the frame was consumed exactly.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail() { d.err = errShort }

// U8 reads one byte.
func (d *Decoder) U8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() == 1 }

// Hash reads a fixed-width 32-byte digest.
func (d *Decoder) Hash() types.Hash {
	var h types.Hash
	if d.err != nil || d.off+len(h) > len(d.buf) {
		d.fail()
		return h
	}
	copy(h[:], d.buf[d.off:])
	d.off += len(h)
	return h
}

// View returns the next length-prefixed byte string as a sub-slice of
// the frame — zero-copy; see the package doc for when that is safe.
// A nil return with a nil Err means an empty string.
func (d *Decoder) View() []byte {
	n := d.U32()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// Bytes reads a length-prefixed byte string into a fresh copy. An
// encoded empty string decodes as nil, matching the store codec.
func (d *Decoder) Bytes() []byte {
	v := d.View()
	if len(v) == 0 {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// AppendBytes reads a length-prefixed byte string into dst (usually
// field[:0] of a reused struct), growing it only when capacity is
// insufficient — the allocation-free decode path.
func (d *Decoder) AppendBytes(dst []byte) []byte {
	v := d.View()
	if len(v) == 0 {
		return dst[:0]
	}
	return append(dst[:0], v...)
}

// Str reads a length-prefixed string (copying).
func (d *Decoder) Str() string { return string(d.View()) }

// StrShared reads a length-prefixed string, returning the interned
// instance when the value was registered with Intern — protocol
// constants (message types, statement domains) then decode without
// allocating.
func (d *Decoder) StrShared() string {
	v := d.View()
	if len(v) == 0 {
		return ""
	}
	if s, ok := internTable()[string(v)]; ok {
		return s
	}
	return string(v)
}

// BigInt reads a nil-able big integer, reusing dst when non-nil (the
// scratch-reuse decode path: big.Int.SetBytes recycles its word
// storage when capacity allows).
func (d *Decoder) BigInt(dst *big.Int) *big.Int {
	if d.U8() == 0 {
		return nil
	}
	v := d.View()
	if d.err != nil {
		return nil
	}
	if dst == nil {
		dst = new(big.Int)
	}
	return dst.SetBytes(v)
}

// Count reads a u32 element count and sanity-bounds it against the
// bytes remaining (each element needs at least minElemBytes), so a
// damaged count cannot drive a giant allocation.
func (d *Decoder) Count(minElemBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || n > (len(d.buf)-d.off)/minElemBytes+1 {
		d.fail()
		return 0
	}
	return n
}

// maxPooledBuf bounds the capacity PutEncoder retains: a one-off giant
// frame (a snapshot, a huge batch) must not pin its buffer forever.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{New: func() any { return &Encoder{buf: make([]byte, 0, 512)} }}

// GetEncoder returns a pooled, reset encoder.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an encoder (and its frame buffer) to the pool.
// The frame bytes handed out by Frame become invalid.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledBuf {
		return
	}
	encPool.Put(e)
}
