package wire

import (
	"testing"

	"permchain/internal/types"
)

// BenchmarkEncodeTx measures the pooled-encoder transaction encode
// path; report with -benchmem — steady state is 0 allocs/op.
func BenchmarkEncodeTx(b *testing.B) {
	tx := sampleTx()
	e := GetEncoder()
	defer PutEncoder(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		if err := EncodeFrame(e, tx); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(e.Len()))
}

// BenchmarkDecodeTx measures the generic (copying) decode path the
// network uses — allocation here is the real per-message decode cost.
func BenchmarkDecodeTx(b *testing.B) {
	tx := sampleTx()
	e := &Encoder{}
	if err := EncodeFrame(e, tx); err != nil {
		b.Fatal(err)
	}
	frame := e.Frame()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeTxReuse measures the typed scratch-reuse decode path:
// decoding into a recycled transaction. Slice storage is reused; the
// remaining allocations are the ID/key string copies.
func BenchmarkDecodeTxReuse(b *testing.B) {
	tx := &types.Transaction{
		ID:     "tx-hot",
		Client: 3,
		Kind:   types.TxInternal,
		Ops:    []types.Op{{Code: types.OpTransfer, Key: "a", Key2: "b", Delta: 10}},
	}
	e := &Encoder{}
	TxCodec.EncodeFrame(e, &tx)
	frame := e.Frame()
	scratch := AcquireTx()
	defer ReleaseTx(scratch)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := TxCodec.DecodeFrameInto(frame, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}
