package wire

import (
	"errors"
	"math/big"
	"reflect"
	"testing"

	"permchain/internal/types"
)

// sampleTx exercises every transaction field, including read/write sets.
func sampleTx() *types.Transaction {
	return &types.Transaction{
		ID:         "tx-42",
		Client:     7,
		Enterprise: 3,
		Kind:       types.TxCross,
		Shards:     []types.ShardID{0, 2},
		Ops: []types.Op{
			{Code: types.OpPut, Key: "alice", Value: []byte("100")},
			{Code: types.OpTransfer, Key: "alice", Key2: "bob", Delta: 25},
		},
		Reads:   types.ReadSet{"alice": {Block: 4, Tx: 1}, "bob": {}},
		Writes:  types.WriteSet{"alice": []byte("75"), "bob": []byte("25")},
		Private: true,
	}
}

func TestBuiltinRoundTrip(t *testing.T) {
	vals := []any{
		"hello", []byte{1, 2, 3}, true, false, int(-9), int64(1 << 40),
		uint64(77), types.HashBytes([]byte("x")), nil,
	}
	for _, v := range vals {
		e := GetEncoder()
		if err := EncodeFrame(e, v); err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip %T: got %#v want %#v", v, got, v)
		}
		PutEncoder(e)
	}
}

func TestTxRoundTrip(t *testing.T) {
	tx := sampleTx()
	e := GetEncoder()
	defer PutEncoder(e)
	if err := EncodeFrame(e, tx); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(e.Frame())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tx) {
		t.Fatalf("tx round trip:\ngot  %#v\nwant %#v", got, tx)
	}
}

// TestTruncatedFramesError feeds every strict prefix of valid frames to
// the decoder: each must fail with ErrCorrupt and never panic — the
// store.ErrCorrupt discipline.
func TestTruncatedFramesError(t *testing.T) {
	frames := [][]byte{}
	for _, v := range []any{"abc", []byte{9, 9}, sampleTx(), uint64(1)} {
		e := &Encoder{}
		if err := EncodeFrame(e, v); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), e.Frame()...))
	}
	for _, f := range frames {
		for cut := 0; cut < len(f); cut++ {
			if _, err := DecodeFrame(f[:cut]); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded cleanly", cut, len(f))
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated frame error %v is not ErrCorrupt", err)
			}
		}
	}
}

func TestTrailingBytesError(t *testing.T) {
	e := &Encoder{}
	if err := EncodeFrame(e, "x"); err != nil {
		t.Fatal(err)
	}
	bad := append(append([]byte(nil), e.Frame()...), 0xFF)
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

func TestUnknownTagError(t *testing.T) {
	frame := []byte{FrameVersion, 0xFF, 0xFE}
	if _, err := DecodeFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown tag: got %v, want ErrCorrupt", err)
	}
}

func TestUnregisteredTypeError(t *testing.T) {
	type never struct{ X int }
	e := &Encoder{}
	err := EncodeFrame(e, never{1})
	if !errors.Is(err, ErrUnregistered) {
		t.Fatalf("unregistered encode: got %v, want ErrUnregistered", err)
	}
}

// TestDamagedCountBounded corrupts an element count to a huge value:
// the decoder must reject it (bounded by remaining bytes) rather than
// allocate gigabytes.
func TestDamagedCountBounded(t *testing.T) {
	tx := sampleTx()
	e := &Encoder{}
	if err := EncodeFrame(e, tx); err != nil {
		t.Fatal(err)
	}
	f := append([]byte(nil), e.Frame()...)
	// The Shards count sits right after ID (u32 len + bytes) and three
	// I64/U8 scalars; rather than compute the offset, smash every u32
	// aligned window and require no panic and no success with trailing
	// garbage semantics.
	for off := 3; off+4 <= len(f); off++ {
		g := append([]byte(nil), f...)
		g[off], g[off+1], g[off+2], g[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
		v, err := DecodeFrame(g) // must not panic
		_ = v
		_ = err
	}
}

func TestInternedStrings(t *testing.T) {
	const s = "wire-test/interned-constant"
	Intern(s)
	e := &Encoder{}
	e.Str(s)
	var d Decoder
	d.Reset(e.Frame())
	got := d.StrShared()
	if got != s {
		t.Fatalf("got %q", got)
	}
	// Interned decode must return the canonical instance, not a copy —
	// observable as zero allocations per decode.
	frame := e.Frame()
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset(frame)
		if d.StrShared() != s {
			t.Fatal("bad interned decode")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned StrShared allocates %.1f/op, want 0", allocs)
	}
}

func TestBigIntRoundTripAndReuse(t *testing.T) {
	e := &Encoder{}
	want := new(big.Int).Lsh(big.NewInt(123456789), 100)
	e.BigInt(want)
	e.BigInt(nil)
	var d Decoder
	d.Reset(e.Frame())
	scratch := new(big.Int).SetInt64(1)
	got := d.BigInt(scratch)
	if got.Cmp(want) != 0 {
		t.Fatalf("got %v want %v", got, want)
	}
	if got != scratch {
		t.Fatalf("BigInt did not reuse the scratch value")
	}
	if d.BigInt(nil) != nil {
		t.Fatalf("nil BigInt did not decode as nil")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestPooledTxReuse(t *testing.T) {
	tx := AcquireTx()
	tx.ID = "a"
	tx.Ops = append(tx.Ops, types.Op{Key: "k"})
	ReleaseTx(tx)
	tx2 := AcquireTx()
	if tx2.ID != "" || len(tx2.Ops) != 0 {
		t.Fatalf("pooled tx not reset: %#v", tx2)
	}
	ReleaseTx(tx2)
}

// TestEncodeAllocsFree is the hard allocs/op gate on the encode path:
// steady-state encoding of a payload-set-free transaction into a
// pooled encoder must not allocate.
func TestEncodeAllocsFree(t *testing.T) {
	tx := &types.Transaction{ID: "tx-1", Ops: []types.Op{{Code: types.OpAdd, Key: "k1", Delta: 1}}}
	e := GetEncoder()
	defer PutEncoder(e)
	// Warm the buffer once so growth is out of the loop.
	if err := EncodeFrame(e, tx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		if err := EncodeFrame(e, tx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state tx encode allocates %.1f/op, want 0", allocs)
	}
}

// TestDecodeIntoAllocsFree gates the typed scratch-reuse decode path:
// DecodeFrameInto over a recycled value must not allocate.
func TestDecodeIntoAllocsFree(t *testing.T) {
	v := []byte("some-vote-signature-bytes")
	e := &Encoder{}
	BytesCodec.EncodeFrame(e, &v)
	frame := e.Frame()
	var scratch []byte
	if err := BytesCodec.DecodeFrameInto(frame, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := BytesCodec.DecodeFrameInto(frame, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode-into allocates %.1f/op, want 0", allocs)
	}
}
