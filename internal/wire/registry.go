package wire

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"permchain/internal/types"
)

// A Codec is the typed handle Register returns: the owning package
// keeps it to encode/decode its type without going through the `any`
// dispatch (the allocation-free microbenchmark path).
type Codec[T any] struct {
	tag uint16
	enc func(*Encoder, *T)
	dec func(*Decoder, *T)
}

// Tag returns the codec's registered type tag.
func (c Codec[T]) Tag() uint16 { return c.tag }

// EncodeFrame appends a complete frame (version, tag, payload) for v.
func (c Codec[T]) EncodeFrame(e *Encoder, v *T) {
	e.U8(FrameVersion)
	e.U16(c.tag)
	c.enc(e, v)
}

// DecodeFrameInto parses a frame produced by EncodeFrame into v,
// reusing v's existing storage (slices, big.Ints) where the codec
// supports it — steady-state decoding into a recycled value does not
// allocate. The frame must consume exactly.
func (c Codec[T]) DecodeFrameInto(frame []byte, v *T) error {
	d := getDecoder(frame)
	defer putDecoder(d)
	if ver := d.U8(); d.err == nil && ver != FrameVersion {
		return fmt.Errorf("%w: frame version %d, want %d", ErrCorrupt, ver, FrameVersion)
	}
	if tag := d.U16(); d.err == nil && tag != c.tag {
		return fmt.Errorf("%w: frame tag %d, want %d", ErrCorrupt, tag, c.tag)
	}
	c.dec(d, v)
	return d.Done()
}

// decPool recycles Decoders: the dynamic codec call forces the decoder
// to escape, so a stack decoder would cost one allocation per decode.
var decPool = sync.Pool{New: func() any { return &Decoder{} }}

func getDecoder(frame []byte) *Decoder {
	d := decPool.Get().(*Decoder)
	d.Reset(frame)
	return d
}

func putDecoder(d *Decoder) {
	d.Reset(nil) // drop the frame reference before pooling
	decPool.Put(d)
}

// entry is one registered type in the dispatch tables.
type entry struct {
	tag  uint16
	typ  reflect.Type
	enc  func(*Encoder, any)
	dec  func(*Decoder) (any, error)
	name string
}

// regState is the immutable snapshot the hot path reads lock-free;
// Register copies-on-write under regMu. All registration happens in
// package inits, so in practice the state is frozen before traffic.
type regState struct {
	byType map[reflect.Type]*entry
	byTag  map[uint16]*entry
	intern map[string]string
}

var (
	regMu  sync.Mutex
	regPtr atomic.Pointer[regState]

	// emptyState backs reads that race package initialization: the
	// builtin-codec var block below registers before any init() runs.
	emptyState = &regState{
		byType: map[reflect.Type]*entry{},
		byTag:  map[uint16]*entry{},
		intern: map[string]string{},
	}
)

func state() *regState {
	if s := regPtr.Load(); s != nil {
		return s
	}
	return emptyState
}

func internTable() map[string]string { return state().intern }

// mutate applies f to a copy of the registry state and publishes it.
func mutate(f func(*regState)) {
	regMu.Lock()
	defer regMu.Unlock()
	old := regPtr.Load()
	if old == nil {
		old = emptyState
	}
	next := &regState{
		byType: make(map[reflect.Type]*entry, len(old.byType)+1),
		byTag:  make(map[uint16]*entry, len(old.byTag)+1),
		intern: make(map[string]string, len(old.intern)+8),
	}
	for k, v := range old.byType {
		next.byType[k] = v
	}
	for k, v := range old.byTag {
		next.byTag[k] = v
	}
	for k, v := range old.intern {
		next.intern[k] = v
	}
	f(next)
	regPtr.Store(next)
}

// Register binds tag to T's codec and returns the typed handle. The
// `any` dispatch encodes values of type T (as senders pass them) and
// decodes back to a T value, so m.Payload.(T) type assertions hold
// across the wire. Duplicate tags or types panic: tags are release
// artifacts and must stay stable.
func Register[T any](tag uint16, enc func(*Encoder, *T), dec func(*Decoder, *T)) Codec[T] {
	typ := reflect.TypeOf((*T)(nil)).Elem()
	// The dynamic enc/dec calls force their *T temp to escape; a pool
	// per registered type keeps the any-dispatch path allocation-free
	// (the boxed value an any decode returns is the one unavoidable
	// allocation for value-typed payloads).
	tmpPool := sync.Pool{New: func() any { return new(T) }}
	var zero T
	ent := &entry{
		tag:  tag,
		typ:  typ,
		name: typ.String(),
		enc: func(e *Encoder, v any) {
			tp := tmpPool.Get().(*T)
			*tp = v.(T)
			enc(e, tp)
			*tp = zero
			tmpPool.Put(tp)
		},
		dec: func(d *Decoder) (any, error) {
			tp := tmpPool.Get().(*T)
			*tp = zero
			dec(d, tp)
			v, err := *tp, d.Err()
			*tp = zero // never retain payload references in the pool
			tmpPool.Put(tp)
			if err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	mutate(func(s *regState) {
		if prev, ok := s.byTag[tag]; ok {
			panic(fmt.Sprintf("wire: tag %d already registered for %s", tag, prev.name))
		}
		if prev, ok := s.byType[typ]; ok {
			panic(fmt.Sprintf("wire: type %s already registered under tag %d", typ, prev.tag))
		}
		s.byTag[tag] = ent
		s.byType[typ] = ent
	})
	return Codec[T]{tag: tag, enc: enc, dec: dec}
}

// Intern adds protocol string constants to the shared intern table:
// StrShared returns these exact instances instead of allocating a copy
// per decode. Call from init alongside Register.
func Intern(ss ...string) {
	mutate(func(s *regState) {
		for _, v := range ss {
			s.intern[v] = v
		}
	})
}

// RegisteredTags returns the currently registered tags (for tests that
// sweep every codec).
func RegisteredTags() []uint16 {
	s := state()
	out := make([]uint16, 0, len(s.byTag))
	for t := range s.byTag {
		out = append(out, t)
	}
	return out
}

// TypeName returns the Go type name registered under tag, or "".
func TypeName(tag uint16) string {
	if e, ok := state().byTag[tag]; ok {
		return e.name
	}
	return ""
}

// Any appends a nested dynamic value: [u16 tag][payload], tag 0 for
// nil. Unregistered types poison the encoder with ErrUnregistered.
func (e *Encoder) Any(v any) {
	if v == nil {
		e.U16(0)
		return
	}
	ent, ok := state().byType[reflect.TypeOf(v)]
	if !ok {
		e.fail(fmt.Errorf("%w: %T", ErrUnregistered, v))
		return
	}
	e.U16(ent.tag)
	ent.enc(e, v)
}

// Any reads a nested dynamic value written by Encoder.Any.
func (d *Decoder) Any() any {
	tag := d.U16()
	if d.err != nil || tag == 0 {
		return nil
	}
	ent, ok := state().byTag[tag]
	if !ok {
		d.err = fmt.Errorf("%w: unknown type tag %d", ErrCorrupt, tag)
		return nil
	}
	v, err := ent.dec(d)
	if err != nil {
		return nil
	}
	return v
}

// EncodeFrame appends a complete frame for v — the network transport's
// encode entry point. Returns ErrUnregistered for unknown types.
func EncodeFrame(e *Encoder, v any) error {
	e.U8(FrameVersion)
	e.Any(v)
	return e.err
}

// DecodeFrame parses a frame back into its payload value. Decoded
// values never reference frame memory (codecs use the copying reads on
// this path), so the frame buffer may be recycled immediately.
func DecodeFrame(frame []byte) (any, error) {
	var d Decoder
	d.Reset(frame)
	if ver := d.U8(); d.err == nil && ver != FrameVersion {
		return nil, fmt.Errorf("%w: frame version %d, want %d", ErrCorrupt, ver, FrameVersion)
	}
	v := d.Any()
	if err := d.Done(); err != nil {
		return nil, err
	}
	return v, nil
}

// Builtin codecs: the primitive payloads protocol tests and generic
// values use. Tags 1–15 are reserved for these.
var (
	// StringCodec (tag 1) carries plain string values.
	StringCodec = Register[string](1,
		func(e *Encoder, v *string) { e.Str(*v) },
		func(d *Decoder, v *string) { *v = d.StrShared() })
	// BytesCodec (tag 2) carries raw byte slices.
	BytesCodec = Register[[]byte](2,
		func(e *Encoder, v *[]byte) { e.Bytes(*v) },
		func(d *Decoder, v *[]byte) { *v = d.AppendBytes((*v)[:0]) })
	// BoolCodec (tag 3).
	BoolCodec = Register[bool](3,
		func(e *Encoder, v *bool) { e.Bool(*v) },
		func(d *Decoder, v *bool) { *v = d.Bool() })
	// IntCodec (tag 4) carries platform ints as int64.
	IntCodec = Register[int](4,
		func(e *Encoder, v *int) { e.I64(int64(*v)) },
		func(d *Decoder, v *int) { *v = int(d.I64()) })
	// Int64Codec (tag 5).
	Int64Codec = Register[int64](5,
		func(e *Encoder, v *int64) { e.I64(*v) },
		func(d *Decoder, v *int64) { *v = d.I64() })
	// Uint64Codec (tag 6).
	Uint64Codec = Register[uint64](6,
		func(e *Encoder, v *uint64) { e.U64(*v) },
		func(d *Decoder, v *uint64) { *v = d.U64() })
	// HashCodec (tag 7) carries bare digests.
	HashCodec = Register[types.Hash](7,
		func(e *Encoder, v *types.Hash) { e.Hash(*v) },
		func(d *Decoder, v *types.Hash) { *v = d.Hash() })
)
