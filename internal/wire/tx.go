package wire

import (
	"sync"

	"permchain/internal/types"
)

// The transaction codec is shared by the durable block record
// (internal/store) and the network transport's batch proposals
// (internal/core), so a transaction spells its fields identically on
// disk and in flight. Read/write sets are serialized in sorted key
// order — they are part of the durable record (XOV re-validates them
// on replay) and determinism keeps CRCs content-addressed.

// TxCodec (tag 16) carries a single transaction pointer.
var TxCodec = Register[*types.Transaction](16, PutTx, GetTx)

var txPool = sync.Pool{New: func() any { return &types.Transaction{} }}

// AcquireTx returns a pooled transaction for bounded-lifetime decode
// work (validation, digesting, benchmarks). Transactions that flow
// into blocks or ledgers live forever — never pool those.
func AcquireTx() *types.Transaction {
	return txPool.Get().(*types.Transaction)
}

// ReleaseTx recycles tx: scalar fields are zeroed, the Ops and Shards
// slices keep their capacity for the next decode.
func ReleaseTx(tx *types.Transaction) {
	if tx == nil {
		return
	}
	ops, shards := tx.Ops[:0], tx.Shards[:0]
	*tx = types.Transaction{Ops: ops, Shards: shards}
	txPool.Put(tx)
}

// PutOp appends one operation.
func PutOp(e *Encoder, op *types.Op) {
	e.U8(byte(op.Code))
	e.Str(op.Key)
	e.Str(op.Key2)
	e.Bytes(op.Value)
	e.I64(op.Delta)
}

// GetOp reads one operation.
func GetOp(d *Decoder, op *types.Op) {
	op.Code = types.OpCode(d.U8())
	op.Key = d.Str()
	op.Key2 = d.Str()
	op.Value = d.Bytes()
	op.Delta = d.I64()
}

// PutTx appends a full transaction, including its declared read/write
// sets.
func PutTx(e *Encoder, txp **types.Transaction) {
	tx := *txp
	e.Str(tx.ID)
	e.I64(int64(tx.Client))
	e.I64(int64(tx.Enterprise))
	e.U8(byte(tx.Kind))
	e.U32(uint32(len(tx.Shards)))
	for _, s := range tx.Shards {
		e.I64(int64(s))
	}
	e.U32(uint32(len(tx.Ops)))
	for i := range tx.Ops {
		PutOp(e, &tx.Ops[i])
	}
	e.U32(uint32(len(tx.Reads)))
	for _, k := range tx.Reads.Keys() {
		v := tx.Reads[k]
		e.Str(k)
		e.U64(v.Block)
		e.I64(int64(v.Tx))
	}
	e.U32(uint32(len(tx.Writes)))
	for _, k := range tx.Writes.Keys() {
		e.Str(k)
		e.Bytes(tx.Writes[k])
	}
	e.Bool(tx.Private)
}

// GetTx reads a transaction into *txp, allocating one when nil. A
// recycled transaction's Shards/Ops slices are reused.
func GetTx(d *Decoder, txp **types.Transaction) {
	tx := *txp
	if tx == nil {
		tx = &types.Transaction{}
		*txp = tx
	}
	tx.ID = d.Str()
	tx.Client = types.NodeID(d.I64())
	tx.Enterprise = types.EnterpriseID(d.I64())
	tx.Kind = types.TxKind(d.U8())
	n := d.Count(8)
	tx.Shards = tx.Shards[:0]
	for i := 0; i < n && d.err == nil; i++ {
		tx.Shards = append(tx.Shards, types.ShardID(d.I64()))
	}
	if len(tx.Shards) == 0 {
		tx.Shards = nil
	}
	n = d.Count(8)
	tx.Ops = tx.Ops[:0]
	for i := 0; i < n && d.err == nil; i++ {
		var op types.Op
		GetOp(d, &op)
		tx.Ops = append(tx.Ops, op)
	}
	if len(tx.Ops) == 0 {
		tx.Ops = nil
	}
	n = d.Count(8)
	tx.Reads = nil
	if n > 0 && d.err == nil {
		tx.Reads = make(types.ReadSet, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.Str()
		tx.Reads[k] = types.Version{Block: d.U64(), Tx: int(d.I64())}
	}
	n = d.Count(8)
	tx.Writes = nil
	if n > 0 && d.err == nil {
		tx.Writes = make(types.WriteSet, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.Str()
		tx.Writes[k] = d.Bytes()
	}
	tx.Private = d.Bool()
}
