package wire

import (
	"errors"
	"reflect"
	"testing"

	"permchain/internal/types"
)

// FuzzDecodeFrame drives arbitrary bytes through the generic frame
// decoder: it must never panic, and every failure must be ErrCorrupt —
// the same discipline store decoding follows. Seed corpus covers valid
// frames for each builtin plus the transaction codec so the fuzzer
// starts from structurally interesting inputs.
func FuzzDecodeFrame(f *testing.F) {
	seed := []any{
		"pbft/prepare", []byte{0xde, 0xad}, true, int(-1), int64(1 << 33),
		uint64(42), types.HashBytes([]byte("seed")), nil, sampleTx(),
	}
	for _, v := range seed {
		e := &Encoder{}
		if err := EncodeFrame(e, v); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), e.Frame()...))
	}
	f.Add([]byte{})
	f.Add([]byte{FrameVersion})
	f.Add([]byte{FrameVersion, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, frame []byte) {
		v, err := DecodeFrame(frame) // must not panic on any input
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v is not ErrCorrupt", err)
			}
			return
		}
		// A clean decode must re-encode; byte-identity is not required
		// (a fuzzer can find a second spelling), but value round-trip is.
		e := GetEncoder()
		defer PutEncoder(e)
		if err := EncodeFrame(e, v); err != nil {
			t.Fatalf("re-encode of decoded value failed: %v", err)
		}
		v2, err := DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip diverged:\nfirst  %#v\nsecond %#v", v, v2)
		}
	})
}

// FuzzTxRoundTrip fuzzes transaction field content through the typed
// codec: encode→decode→encode must be byte-identical (the durable-store
// determinism property).
func FuzzTxRoundTrip(f *testing.F) {
	f.Add("tx-1", int64(1), int64(2), uint8(0), "k1", "k2", []byte("v"), int64(5), true)
	f.Add("", int64(-1), int64(0), uint8(3), "", "", []byte{}, int64(-9), false)
	f.Fuzz(func(t *testing.T, id string, client, ent int64, kind uint8,
		key, key2 string, value []byte, delta int64, private bool) {
		tx := &types.Transaction{
			ID:         id,
			Client:     types.NodeID(client),
			Enterprise: types.EnterpriseID(ent),
			Kind:       types.TxKind(kind % 3),
			Ops:        []types.Op{{Code: types.OpCode(kind % 5), Key: key, Key2: key2, Value: value, Delta: delta}},
			Private:    private,
		}
		if len(value) == 0 {
			tx.Ops[0].Value = nil // empty decodes as nil; normalize for DeepEqual
		}
		e1 := &Encoder{}
		TxCodec.EncodeFrame(e1, &tx)
		var got *types.Transaction
		if err := TxCodec.DecodeFrameInto(e1.Frame(), &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tx) {
			t.Fatalf("tx round trip:\ngot  %#v\nwant %#v", got, tx)
		}
		e2 := &Encoder{}
		TxCodec.EncodeFrame(e2, &got)
		if string(e1.Frame()) != string(e2.Frame()) {
			t.Fatalf("re-encode not byte-identical")
		}
	})
}
