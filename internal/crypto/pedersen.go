package crypto

import (
	"errors"
	"math/big"
)

// Commitment is a Pedersen commitment C = G^v · H^r (mod P) to value v
// with blinding factor r. Commitments are perfectly hiding and
// computationally binding, and homomorphic: C1·C2 commits to v1+v2 with
// blinding r1+r2 — the property the confidential-transfer mass-conservation
// check (§2.3.2) exploits.
type Commitment struct {
	C *big.Int
}

// Opening is the secret side of a commitment.
type Opening struct {
	Value    *big.Int
	Blinding *big.Int
}

// Commit commits to value with a fresh random blinding factor.
func (g *Group) Commit(value *big.Int) (Commitment, Opening) {
	r := g.RandScalar()
	return g.CommitWith(value, r)
}

// CommitWith commits to value with the given blinding factor.
func (g *Group) CommitWith(value, blinding *big.Int) (Commitment, Opening) {
	v := new(big.Int).Mod(value, g.Q)
	c := g.Mul(g.Exp(g.G, v), g.Exp(g.H, blinding))
	return Commitment{C: c}, Opening{Value: new(big.Int).Set(value), Blinding: new(big.Int).Set(blinding)}
}

// VerifyOpening checks that the opening matches the commitment.
func (g *Group) VerifyOpening(c Commitment, o Opening) bool {
	if c.C == nil || o.Value == nil || o.Blinding == nil {
		return false
	}
	v := new(big.Int).Mod(o.Value, g.Q)
	want := g.Mul(g.Exp(g.G, v), g.Exp(g.H, o.Blinding))
	return want.Cmp(c.C) == 0
}

// AddCommitments multiplies commitments, committing to the sum of values.
func (g *Group) AddCommitments(cs ...Commitment) (Commitment, error) {
	if len(cs) == 0 {
		return Commitment{}, errors.New("crypto: no commitments to add")
	}
	acc := big.NewInt(1)
	for _, c := range cs {
		if c.C == nil {
			return Commitment{}, errors.New("crypto: nil commitment")
		}
		acc = g.Mul(acc, c.C)
	}
	return Commitment{C: acc}, nil
}

// SubCommitments divides a by b, committing to value(a)-value(b).
func (g *Group) SubCommitments(a, b Commitment) (Commitment, error) {
	if a.C == nil || b.C == nil {
		return Commitment{}, errors.New("crypto: nil commitment")
	}
	return Commitment{C: g.Mul(a.C, g.Inv(b.C))}, nil
}

// ScaleCommitment raises c to the k-th power, committing to k·value.
func (g *Group) ScaleCommitment(c Commitment, k *big.Int) Commitment {
	return Commitment{C: g.Exp(c.C, new(big.Int).Mod(k, g.Q))}
}

// AddOpenings sums the secret sides, mod Q.
func (g *Group) AddOpenings(os ...Opening) Opening {
	v := new(big.Int)
	r := new(big.Int)
	for _, o := range os {
		v.Add(v, o.Value)
		r.Add(r, o.Blinding)
	}
	v.Mod(v, g.Q)
	r.Mod(r, g.Q)
	return Opening{Value: v, Blinding: r}
}
