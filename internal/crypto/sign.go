package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sync"

	"permchain/internal/types"
)

// Keyring maps node identities to Ed25519 key pairs. In a permissioned
// network identities are known a priori (§2.2), so the keyring plays the
// role of the membership service: every node can look up every other
// node's public key.
//
// Key generation is deterministic from the node id so tests and
// benchmarks are reproducible; a deployment would provision real keys.
type Keyring struct {
	mu   sync.RWMutex
	priv map[types.NodeID]ed25519.PrivateKey
	pub  map[types.NodeID]ed25519.PublicKey
}

// NewKeyring creates a keyring with keys for nodes 0..n-1.
func NewKeyring(n int) *Keyring {
	k := &Keyring{
		priv: make(map[types.NodeID]ed25519.PrivateKey, n),
		pub:  make(map[types.NodeID]ed25519.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		k.Add(types.NodeID(i))
	}
	return k
}

// Add provisions a key pair for id if absent.
func (k *Keyring) Add(id types.NodeID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.priv[id]; ok {
		return
	}
	seed := sha256.Sum256([]byte(fmt.Sprintf("permchain-node-key-%d", id)))
	priv := ed25519.NewKeyFromSeed(seed[:])
	k.priv[id] = priv
	k.pub[id] = priv.Public().(ed25519.PublicKey)
}

// Sign signs msg as node id. It panics if the node has no key, which is a
// configuration bug.
func (k *Keyring) Sign(id types.NodeID, msg []byte) []byte {
	k.mu.RLock()
	priv, ok := k.priv[id]
	k.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("crypto: no key for %v", id))
	}
	return ed25519.Sign(priv, msg)
}

// Verify checks sig over msg against node id's public key.
func (k *Keyring) Verify(id types.NodeID, msg, sig []byte) bool {
	k.mu.RLock()
	pub, ok := k.pub[id]
	k.mu.RUnlock()
	if !ok {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Public returns node id's public key, or nil if unknown.
func (k *Keyring) Public(id types.NodeID) ed25519.PublicKey {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.pub[id]
}
