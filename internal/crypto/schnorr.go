package crypto

import "math/big"

// SchnorrProof is a non-interactive (Fiat-Shamir) proof of knowledge of x
// such that Y = base^x (mod P). It reveals nothing about x beyond its
// existence — the primitive behind "prove you know a value without
// conveying it" in §2.3.2.
type SchnorrProof struct {
	T *big.Int // commitment base^k
	S *big.Int // response k + c·x mod Q
}

// ProveDLog proves knowledge of x with Y = base^x. The domain string
// separates transcripts of different protocols.
func (g *Group) ProveDLog(domain string, base, y, x *big.Int) SchnorrProof {
	k := g.RandScalar()
	t := g.Exp(base, k)
	c := g.Challenge(domain, base, y, t)
	s := new(big.Int).Mul(c, new(big.Int).Mod(x, g.Q))
	s.Add(s, k)
	s.Mod(s, g.Q)
	return SchnorrProof{T: t, S: s}
}

// VerifyDLog checks a ProveDLog proof: base^s == T · Y^c.
func (g *Group) VerifyDLog(domain string, base, y *big.Int, pr SchnorrProof) bool {
	if pr.T == nil || pr.S == nil || y == nil {
		return false
	}
	c := g.Challenge(domain, base, y, pr.T)
	lhs := g.Exp(base, pr.S)
	rhs := g.Mul(pr.T, g.Exp(y, c))
	return lhs.Cmp(rhs) == 0
}

// ProveZero proves that commitment c opens to value 0, i.e. c.C = H^r,
// by proving knowledge of the discrete log of c.C base H. Summed over a
// transaction, this is the mass-conservation proof: inputs − outputs
// commit to zero.
func (g *Group) ProveZero(domain string, c Commitment, blinding *big.Int) SchnorrProof {
	return g.ProveDLog(domain, g.H, c.C, blinding)
}

// VerifyZero checks a ProveZero proof.
func (g *Group) VerifyZero(domain string, c Commitment, pr SchnorrProof) bool {
	if c.C == nil {
		return false
	}
	return g.VerifyDLog(domain, g.H, c.C, pr)
}

// ProveEqual proves two commitments open to the same value, by proving
// their quotient commits to zero. blindA/blindB are the blinding factors.
func (g *Group) ProveEqual(domain string, a, b Commitment, blindA, blindB *big.Int) (SchnorrProof, error) {
	diff, err := g.SubCommitments(a, b)
	if err != nil {
		return SchnorrProof{}, err
	}
	r := new(big.Int).Sub(blindA, blindB)
	r.Mod(r, g.Q)
	return g.ProveZero(domain, diff, r), nil
}

// VerifyEqual checks a ProveEqual proof.
func (g *Group) VerifyEqual(domain string, a, b Commitment, pr SchnorrProof) bool {
	diff, err := g.SubCommitments(a, b)
	if err != nil {
		return false
	}
	return g.VerifyZero(domain, diff, pr)
}
