package crypto

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"math/big"
)

// RSA blind signatures implement Separ's anonymous tokens (§2.3.2): the
// trusted authority signs a blinded token so it cannot link the signature
// it produced to the token a worker later spends, yet any platform can
// verify the signature. Unlinkability + public verifiability is exactly
// what the token-based verifiability technique needs.

// BlindSigner is the authority side: an RSA key whose signatures certify
// tokens.
type BlindSigner struct {
	key *rsa.PrivateKey
}

// NewBlindSigner generates a signer with an RSA key of the given bits
// (>= 1024 for tests; deployments would use 2048+).
func NewBlindSigner(bits int) (*BlindSigner, error) {
	if bits < 1024 {
		return nil, errors.New("crypto: blind signer key must be >= 1024 bits")
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return &BlindSigner{key: key}, nil
}

// PublicKey returns the verification key.
func (s *BlindSigner) PublicKey() *rsa.PublicKey { return &s.key.PublicKey }

// SignBlinded signs a blinded message. The authority never sees the
// underlying token.
func (s *BlindSigner) SignBlinded(blinded *big.Int) (*big.Int, error) {
	if blinded == nil || blinded.Sign() <= 0 || blinded.Cmp(s.key.N) >= 0 {
		return nil, errors.New("crypto: blinded message out of range")
	}
	return new(big.Int).Exp(blinded, s.key.D, s.key.N), nil
}

// BlindedToken is the client-side state between Blind and Unblind.
type BlindedToken struct {
	Blinded *big.Int // what the client sends to the authority
	rInv    *big.Int // unblinding factor
	msgHash *big.Int // H(token) as an integer
}

// hashToInt maps a message into Z_N.
func hashToInt(msg []byte, n *big.Int) *big.Int {
	h := sha256.Sum256(msg)
	return new(big.Int).Mod(new(big.Int).SetBytes(h[:]), n)
}

// Blind prepares token for blind signing under pub: it picks a random r
// and computes H(token)·r^e mod N.
func Blind(pub *rsa.PublicKey, token []byte) (*BlindedToken, error) {
	m := hashToInt(token, pub.N)
	for {
		r, err := rand.Int(rand.Reader, pub.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		rInv := new(big.Int).ModInverse(r, pub.N)
		if rInv == nil {
			continue // r not coprime to N (astronomically unlikely)
		}
		re := new(big.Int).Exp(r, big.NewInt(int64(pub.E)), pub.N)
		blinded := new(big.Int).Mod(new(big.Int).Mul(m, re), pub.N)
		return &BlindedToken{Blinded: blinded, rInv: rInv, msgHash: m}, nil
	}
}

// Unblind recovers the signature on the original token from the
// authority's signature on the blinded message. It fails if the authority
// returned garbage.
func (b *BlindedToken) Unblind(pub *rsa.PublicKey, blindSig *big.Int) (*big.Int, error) {
	if blindSig == nil {
		return nil, errors.New("crypto: nil blind signature")
	}
	sig := new(big.Int).Mod(new(big.Int).Mul(blindSig, b.rInv), pub.N)
	if !verifyHashSig(pub, b.msgHash, sig) {
		return nil, errors.New("crypto: unblinded signature does not verify")
	}
	return sig, nil
}

// VerifyTokenSig checks sig^e == H(token) mod N.
func VerifyTokenSig(pub *rsa.PublicKey, token []byte, sig *big.Int) bool {
	return verifyHashSig(pub, hashToInt(token, pub.N), sig)
}

func verifyHashSig(pub *rsa.PublicKey, m, sig *big.Int) bool {
	if sig == nil || sig.Sign() <= 0 || sig.Cmp(pub.N) >= 0 {
		return false
	}
	got := new(big.Int).Exp(sig, big.NewInt(int64(pub.E)), pub.N)
	return got.Cmp(m) == 0
}
