// Package crypto provides the cryptographic substrate of permchain:
// Merkle trees, Ed25519 signing, and the zero-knowledge-proof stack the
// verifiability techniques of §2.3.2 are built on — Pedersen commitments,
// Schnorr proofs, Chaum-Pedersen OR proofs, bit-decomposition range
// proofs, and RSA blind signatures.
//
// The ZKP stack replaces the zk-SNARKs of Zcash/Quorum with classic sigma
// protocols (see DESIGN.md, Substitutions): they are real zero-knowledge
// proofs with the same cost asymmetry the tutorial's Discussion relies on.
package crypto

import (
	"errors"
	"runtime"
	"sync"

	"permchain/internal/types"
)

// MerkleTree is a binary hash tree over a fixed list of leaves. Odd nodes
// at each level are duplicated, matching types.TxMerkleRoot.
type MerkleTree struct {
	levels [][]types.Hash // levels[0] = leaf hashes, last level = root
}

// parallelMerkleThreshold is the level width below which splitting the
// hashing across goroutines costs more than it saves. Large blocks (and
// the E13-scale state commitments) sit well above it.
const parallelMerkleThreshold = 2048

// NewMerkleTree hashes each leaf and builds the tree. It returns an error
// for an empty leaf list (an empty block's root is types.ZeroHash by
// convention, with no proofs to produce).
func NewMerkleTree(leaves [][]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: no leaves")
	}
	level := make([]types.Hash, len(leaves))
	hashRange(len(leaves), runtime.GOMAXPROCS(0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			level[i] = types.HashBytes(leaves[i])
		}
	})
	return &MerkleTree{levels: buildLevels(level, runtime.GOMAXPROCS(0))}, nil
}

// NewMerkleTreeFromHashes builds a tree whose leaves are already hashes
// (e.g. transaction hashes), without re-hashing them — the construction
// types.TxMerkleRoot uses, so roots are interchangeable with block
// headers.
func NewMerkleTreeFromHashes(hashes []types.Hash) (*MerkleTree, error) {
	if len(hashes) == 0 {
		return nil, errors.New("merkle: no leaves")
	}
	level := make([]types.Hash, len(hashes))
	copy(level, hashes)
	return &MerkleTree{levels: buildLevels(level, runtime.GOMAXPROCS(0))}, nil
}

// buildLevels grows the tree bottom-up from the leaf level. Wide levels
// are hashed in parallel (split across workers); the result is
// byte-identical to the serial construction because every node's position
// is fixed — only who computes it changes.
func buildLevels(level []types.Hash, workers int) [][]types.Hash {
	levels := [][]types.Hash{level}
	for len(level) > 1 {
		next := make([]types.Hash, (len(level)+1)/2)
		parent := level
		hashRange(len(next), workers, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				i := 2 * p
				j := i
				if i+1 < len(parent) {
					j = i + 1
				}
				next[p] = types.HashConcat(parent[i][:], parent[j][:])
			}
		})
		levels = append(levels, next)
		level = next
	}
	return levels
}

// hashRange runs fn over [0,n) split into contiguous chunks, one per
// worker, when n is large enough to amortize the goroutines; otherwise it
// runs fn(0, n) inline.
func hashRange(n, workers int, fn func(lo, hi int)) {
	if n < parallelMerkleThreshold || workers < 2 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Root returns the tree's root hash.
func (t *MerkleTree) Root() types.Hash {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	Sibling types.Hash
	// Left is true when the sibling is on the left of the running hash.
	Left bool
}

// Proof returns the inclusion proof for leaf index i.
func (t *MerkleTree) Proof(i int) ([]ProofStep, error) {
	if i < 0 || i >= t.Len() {
		return nil, errors.New("merkle: leaf index out of range")
	}
	var steps []ProofStep
	for _, level := range t.levels[:len(t.levels)-1] {
		var sib int
		if i%2 == 0 {
			sib = i + 1
			if sib >= len(level) {
				sib = i // odd node duplicated
			}
			steps = append(steps, ProofStep{Sibling: level[sib], Left: false})
		} else {
			sib = i - 1
			steps = append(steps, ProofStep{Sibling: level[sib], Left: true})
		}
		i /= 2
	}
	return steps, nil
}

// VerifyMerkleProof checks that leaf is included under root via the proof.
func VerifyMerkleProof(root types.Hash, leaf []byte, proof []ProofStep) bool {
	return VerifyMerkleProofHash(root, types.HashBytes(leaf), proof)
}

// VerifyMerkleProofHash checks a proof whose leaf is already a hash
// (trees built with NewMerkleTreeFromHashes).
func VerifyMerkleProofHash(root, leaf types.Hash, proof []ProofStep) bool {
	h := leaf
	for _, s := range proof {
		if s.Left {
			h = types.HashConcat(s.Sibling[:], h[:])
		} else {
			h = types.HashConcat(h[:], s.Sibling[:])
		}
	}
	return h == root
}
