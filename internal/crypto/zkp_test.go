package crypto

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestGroupParameters(t *testing.T) {
	g := DefaultGroup()
	// G and H must be in the order-Q subgroup and distinct.
	if !g.InSubgroup(g.G) {
		t.Fatal("G not in subgroup")
	}
	if !g.InSubgroup(g.H) {
		t.Fatal("H not in subgroup")
	}
	if g.G.Cmp(g.H) == 0 {
		t.Fatal("G == H")
	}
	// P = 2·cofactor·Q + 1 sanity: Q divides P-1.
	rem := new(big.Int).Mod(new(big.Int).Sub(g.P, big.NewInt(1)), g.Q)
	if rem.Sign() != 0 {
		t.Fatal("Q does not divide P-1")
	}
}

func TestInSubgroupRejectsJunk(t *testing.T) {
	g := DefaultGroup()
	for _, bad := range []*big.Int{nil, big.NewInt(0), big.NewInt(-3), new(big.Int).Set(g.P)} {
		if g.InSubgroup(bad) {
			t.Fatalf("InSubgroup accepted %v", bad)
		}
	}
}

func TestCommitOpenRoundTrip(t *testing.T) {
	g := DefaultGroup()
	c, o := g.Commit(big.NewInt(42))
	if !g.VerifyOpening(c, o) {
		t.Fatal("honest opening rejected")
	}
	bad := Opening{Value: big.NewInt(43), Blinding: o.Blinding}
	if g.VerifyOpening(c, bad) {
		t.Fatal("wrong value accepted")
	}
	bad2 := Opening{Value: o.Value, Blinding: new(big.Int).Add(o.Blinding, big.NewInt(1))}
	if g.VerifyOpening(c, bad2) {
		t.Fatal("wrong blinding accepted")
	}
}

func TestCommitmentHiding(t *testing.T) {
	g := DefaultGroup()
	a, _ := g.Commit(big.NewInt(7))
	b, _ := g.Commit(big.NewInt(7))
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two commitments to the same value are identical; blinding broken")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	g := DefaultGroup()
	c1, o1 := g.Commit(big.NewInt(30))
	c2, o2 := g.Commit(big.NewInt(12))
	sum, err := g.AddCommitments(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	oSum := g.AddOpenings(o1, o2)
	if oSum.Value.Int64() != 42 {
		t.Fatalf("summed opening value = %v", oSum.Value)
	}
	if !g.VerifyOpening(sum, oSum) {
		t.Fatal("homomorphic sum does not open to sum of values")
	}
}

func TestHomomorphicSubAndScale(t *testing.T) {
	g := DefaultGroup()
	c1, o1 := g.Commit(big.NewInt(50))
	c2, o2 := g.Commit(big.NewInt(8))
	diff, err := g.SubCommitments(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	oDiff := Opening{
		Value:    new(big.Int).Sub(o1.Value, o2.Value),
		Blinding: new(big.Int).Mod(new(big.Int).Sub(o1.Blinding, o2.Blinding), g.Q),
	}
	if !g.VerifyOpening(diff, oDiff) {
		t.Fatal("difference does not open correctly")
	}
	tripled := g.ScaleCommitment(c1, big.NewInt(3))
	oTripled := Opening{
		Value:    big.NewInt(150),
		Blinding: new(big.Int).Mod(new(big.Int).Mul(o1.Blinding, big.NewInt(3)), g.Q),
	}
	if !g.VerifyOpening(tripled, oTripled) {
		t.Fatal("scaled commitment does not open correctly")
	}
}

func TestHomomorphicProperty(t *testing.T) {
	g := DefaultGroup()
	f := func(a, b int32) bool {
		ca, oa := g.Commit(big.NewInt(int64(a)))
		cb, ob := g.Commit(big.NewInt(int64(b)))
		sum, err := g.AddCommitments(ca, cb)
		if err != nil {
			return false
		}
		return g.VerifyOpening(sum, g.AddOpenings(oa, ob))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommitmentsErrors(t *testing.T) {
	g := DefaultGroup()
	if _, err := g.AddCommitments(); err == nil {
		t.Fatal("empty add accepted")
	}
	if _, err := g.AddCommitments(Commitment{}); err == nil {
		t.Fatal("nil commitment accepted")
	}
	if _, err := g.SubCommitments(Commitment{}, Commitment{}); err == nil {
		t.Fatal("nil sub accepted")
	}
}

func TestSchnorrDLog(t *testing.T) {
	g := DefaultGroup()
	x := g.RandScalar()
	y := g.Exp(g.G, x)
	pr := g.ProveDLog("test", g.G, y, x)
	if !g.VerifyDLog("test", g.G, y, pr) {
		t.Fatal("honest proof rejected")
	}
	if g.VerifyDLog("other-domain", g.G, y, pr) {
		t.Fatal("proof accepted under wrong domain")
	}
	y2 := g.Exp(g.G, g.RandScalar())
	if g.VerifyDLog("test", g.G, y2, pr) {
		t.Fatal("proof accepted for wrong statement")
	}
	pr.S = new(big.Int).Add(pr.S, big.NewInt(1))
	if g.VerifyDLog("test", g.G, y, pr) {
		t.Fatal("tampered proof accepted")
	}
	if g.VerifyDLog("test", g.G, nil, SchnorrProof{}) {
		t.Fatal("nil proof accepted")
	}
}

func TestZeroProof(t *testing.T) {
	g := DefaultGroup()
	c, o := g.Commit(big.NewInt(0))
	pr := g.ProveZero("mass", c, o.Blinding)
	if !g.VerifyZero("mass", c, pr) {
		t.Fatal("zero proof rejected")
	}
	// A commitment to a nonzero value has no valid zero proof; an honest
	// prover's proof for it must fail verification.
	c2, o2 := g.Commit(big.NewInt(5))
	pr2 := g.ProveZero("mass", c2, o2.Blinding)
	if g.VerifyZero("mass", c2, pr2) {
		t.Fatal("zero proof verified for nonzero commitment")
	}
	if g.VerifyZero("mass", Commitment{}, pr) {
		t.Fatal("nil commitment accepted")
	}
}

func TestEqualityProof(t *testing.T) {
	g := DefaultGroup()
	a, oa := g.Commit(big.NewInt(77))
	b, ob := g.Commit(big.NewInt(77))
	pr, err := g.ProveEqual("eq", a, b, oa.Blinding, ob.Blinding)
	if err != nil {
		t.Fatal(err)
	}
	if !g.VerifyEqual("eq", a, b, pr) {
		t.Fatal("equality proof rejected")
	}
	c, oc := g.Commit(big.NewInt(78))
	pr2, _ := g.ProveEqual("eq", a, c, oa.Blinding, oc.Blinding)
	if g.VerifyEqual("eq", a, c, pr2) {
		t.Fatal("equality verified for unequal values")
	}
}

func TestBitProof(t *testing.T) {
	g := DefaultGroup()
	for bit := 0; bit <= 1; bit++ {
		c, o := g.Commit(big.NewInt(int64(bit)))
		pr, err := g.ProveBit(c, bit, o.Blinding)
		if err != nil {
			t.Fatal(err)
		}
		if !g.VerifyBit(c, pr) {
			t.Fatalf("honest bit=%d proof rejected", bit)
		}
	}
	// bit=2 is rejected at prove time.
	c, o := g.Commit(big.NewInt(2))
	if _, err := g.ProveBit(c, 2, o.Blinding); err == nil {
		t.Fatal("bit=2 accepted by prover")
	}
	// Lying about the bit produces an invalid proof.
	c2, o2 := g.Commit(big.NewInt(2))
	pr, err := g.ProveBit(c2, 1, o2.Blinding)
	if err != nil {
		t.Fatal(err)
	}
	if g.VerifyBit(c2, pr) {
		t.Fatal("bit proof verified for commitment to 2")
	}
	if g.VerifyBit(c2, BitProof{}) {
		t.Fatal("empty bit proof accepted")
	}
}

func TestRangeProofHonest(t *testing.T) {
	g := DefaultGroup()
	for _, v := range []int64{0, 1, 17, 255, 256, 40, 1 << 20} {
		c, o := g.Commit(big.NewInt(v))
		pr, err := g.ProveRange(o, 24)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if !g.VerifyRange(c, pr) {
			t.Fatalf("v=%d: honest range proof rejected", v)
		}
	}
}

func TestRangeProofRejectsOutOfRange(t *testing.T) {
	g := DefaultGroup()
	_, o := g.Commit(big.NewInt(300))
	if _, err := g.ProveRange(o, 8); err == nil {
		t.Fatal("prover produced range proof for 300 in 8 bits")
	}
	_, oNeg := g.Commit(big.NewInt(-5))
	if _, err := g.ProveRange(oNeg, 8); err == nil {
		t.Fatal("prover produced range proof for negative value")
	}
	if _, err := g.ProveRange(o, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := g.ProveRange(o, 63); err == nil {
		t.Fatal("bits=63 accepted")
	}
}

func TestRangeProofBindsToCommitment(t *testing.T) {
	g := DefaultGroup()
	c1, o1 := g.Commit(big.NewInt(10))
	pr, err := g.ProveRange(o1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !g.VerifyRange(c1, pr) {
		t.Fatal("honest proof rejected")
	}
	// The proof must not transplant onto another commitment.
	c2, _ := g.Commit(big.NewInt(10))
	if g.VerifyRange(c2, pr) {
		t.Fatal("range proof transplanted to different commitment")
	}
	// Truncated proof rejected.
	short := pr
	short.BitComms = short.BitComms[:len(short.BitComms)-1]
	if g.VerifyRange(c1, short) {
		t.Fatal("truncated proof accepted")
	}
}

func TestRangeProofTamperedBitRejected(t *testing.T) {
	g := DefaultGroup()
	c, o := g.Commit(big.NewInt(9))
	pr, err := g.ProveRange(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	pr.BitProofs[2].S0 = new(big.Int).Add(pr.BitProofs[2].S0, big.NewInt(1))
	if g.VerifyRange(c, pr) {
		t.Fatal("tampered bit proof accepted")
	}
}

func TestBlindSignatureFlow(t *testing.T) {
	signer, err := NewBlindSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	pub := signer.PublicKey()
	token := []byte("worker-7 week-23 token-4")

	bt, err := Blind(pub, token)
	if err != nil {
		t.Fatal(err)
	}
	// The authority sees only the blinded value, which must differ from
	// the raw hash.
	if bt.Blinded.Cmp(hashToInt(token, pub.N)) == 0 {
		t.Fatal("blinding is identity")
	}
	bs, err := signer.SignBlinded(bt.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := bt.Unblind(pub, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTokenSig(pub, token, sig) {
		t.Fatal("unblinded signature rejected")
	}
	if VerifyTokenSig(pub, []byte("different token"), sig) {
		t.Fatal("signature verified for wrong token")
	}
	if VerifyTokenSig(pub, token, new(big.Int).Add(sig, big.NewInt(1))) {
		t.Fatal("tampered signature accepted")
	}
	if VerifyTokenSig(pub, token, nil) {
		t.Fatal("nil signature accepted")
	}
}

func TestBlindSignerRejectsBadInput(t *testing.T) {
	signer, err := NewBlindSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := signer.SignBlinded(nil); err == nil {
		t.Fatal("nil blinded accepted")
	}
	if _, err := signer.SignBlinded(big.NewInt(0)); err == nil {
		t.Fatal("zero blinded accepted")
	}
	if _, err := signer.SignBlinded(signer.PublicKey().N); err == nil {
		t.Fatal("out-of-range blinded accepted")
	}
	if _, err := NewBlindSigner(512); err == nil {
		t.Fatal("weak key size accepted")
	}
}

func TestUnblindRejectsGarbage(t *testing.T) {
	signer, _ := NewBlindSigner(1024)
	pub := signer.PublicKey()
	bt, _ := Blind(pub, []byte("tok"))
	if _, err := bt.Unblind(pub, big.NewInt(12345)); err == nil {
		t.Fatal("garbage authority response accepted")
	}
	if _, err := bt.Unblind(pub, nil); err == nil {
		t.Fatal("nil authority response accepted")
	}
}

func TestBlindUnlinkability(t *testing.T) {
	// Two blindings of the same token must look different to the signer.
	signer, _ := NewBlindSigner(1024)
	pub := signer.PublicKey()
	b1, _ := Blind(pub, []byte("tok"))
	b2, _ := Blind(pub, []byte("tok"))
	if b1.Blinded.Cmp(b2.Blinded) == 0 {
		t.Fatal("two blindings identical")
	}
}

func BenchmarkRangeProve32(b *testing.B) {
	g := DefaultGroup()
	_, o := g.Commit(big.NewInt(123456))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ProveRange(o, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeVerify32(b *testing.B) {
	g := DefaultGroup()
	c, o := g.Commit(big.NewInt(123456))
	pr, err := g.ProveRange(o, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.VerifyRange(c, pr) {
			b.Fatal("verify failed")
		}
	}
}
