package crypto

import (
	"fmt"
	"testing"
	"testing/quick"

	"permchain/internal/types"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestMerkleEmpty(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("expected error for empty leaves")
	}
}

func TestMerkleProofAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tree, err := NewMerkleTree(ls)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyMerkleProof(tree.Root(), ls[i], proof) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			// Wrong leaf must fail.
			if VerifyMerkleProof(tree.Root(), []byte("bogus"), proof) {
				t.Fatalf("n=%d i=%d: bogus leaf accepted", n, i)
			}
		}
	}
}

func TestMerkleProofWrongIndexRejected(t *testing.T) {
	ls := leaves(8)
	tree, _ := NewMerkleTree(ls)
	proof, _ := tree.Proof(3)
	// Proof for index 3 must not verify leaf 4.
	if VerifyMerkleProof(tree.Root(), ls[4], proof) {
		t.Fatal("proof transplant accepted")
	}
}

func TestMerkleProofOutOfRange(t *testing.T) {
	tree, _ := NewMerkleTree(leaves(4))
	if _, err := tree.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tree.Proof(4); err == nil {
		t.Fatal("index past end accepted")
	}
}

func TestMerkleTamperedProofRejected(t *testing.T) {
	ls := leaves(8)
	tree, _ := NewMerkleTree(ls)
	proof, _ := tree.Proof(2)
	proof[1].Sibling[0] ^= 0xff
	if VerifyMerkleProof(tree.Root(), ls[2], proof) {
		t.Fatal("tampered proof accepted")
	}
}

func TestMerkleRootMatchesTypesForSingle(t *testing.T) {
	// Single leaf: root is just the leaf hash.
	tree, _ := NewMerkleTree([][]byte{[]byte("x")})
	if tree.Root() != types.HashBytes([]byte("x")) {
		t.Fatal("single-leaf root is not the leaf hash")
	}
}

func TestMerkleProofProperty(t *testing.T) {
	f := func(data [][]byte, pick uint8) bool {
		if len(data) == 0 {
			return true
		}
		tree, err := NewMerkleTree(data)
		if err != nil {
			return false
		}
		i := int(pick) % len(data)
		proof, err := tree.Proof(i)
		if err != nil {
			return false
		}
		return VerifyMerkleProof(tree.Root(), data[i], proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyringSignVerify(t *testing.T) {
	kr := NewKeyring(4)
	msg := []byte("block payload")
	sig := kr.Sign(1, msg)
	if !kr.Verify(1, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if kr.Verify(2, msg, sig) {
		t.Fatal("signature accepted under wrong identity")
	}
	if kr.Verify(1, []byte("other"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	if kr.Verify(99, msg, sig) {
		t.Fatal("unknown node verified")
	}
}

func TestKeyringDeterministic(t *testing.T) {
	a := NewKeyring(2)
	b := NewKeyring(2)
	if string(a.Public(0)) != string(b.Public(0)) {
		t.Fatal("keyring not reproducible")
	}
	if string(a.Public(0)) == string(a.Public(1)) {
		t.Fatal("distinct nodes share a key")
	}
}

func TestKeyringAddIdempotent(t *testing.T) {
	kr := NewKeyring(1)
	p := kr.Public(0)
	kr.Add(0)
	if string(kr.Public(0)) != string(p) {
		t.Fatal("Add replaced an existing key")
	}
}

func TestKeyringSignUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKeyring(1).Sign(5, []byte("x"))
}
