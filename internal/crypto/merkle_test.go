package crypto

import (
	"fmt"
	"testing"
	"testing/quick"

	"permchain/internal/types"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestMerkleEmpty(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("expected error for empty leaves")
	}
}

func TestMerkleProofAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tree, err := NewMerkleTree(ls)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyMerkleProof(tree.Root(), ls[i], proof) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			// Wrong leaf must fail.
			if VerifyMerkleProof(tree.Root(), []byte("bogus"), proof) {
				t.Fatalf("n=%d i=%d: bogus leaf accepted", n, i)
			}
		}
	}
}

func TestMerkleProofWrongIndexRejected(t *testing.T) {
	ls := leaves(8)
	tree, _ := NewMerkleTree(ls)
	proof, _ := tree.Proof(3)
	// Proof for index 3 must not verify leaf 4.
	if VerifyMerkleProof(tree.Root(), ls[4], proof) {
		t.Fatal("proof transplant accepted")
	}
}

func TestMerkleProofOutOfRange(t *testing.T) {
	tree, _ := NewMerkleTree(leaves(4))
	if _, err := tree.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tree.Proof(4); err == nil {
		t.Fatal("index past end accepted")
	}
}

func TestMerkleTamperedProofRejected(t *testing.T) {
	ls := leaves(8)
	tree, _ := NewMerkleTree(ls)
	proof, _ := tree.Proof(2)
	proof[1].Sibling[0] ^= 0xff
	if VerifyMerkleProof(tree.Root(), ls[2], proof) {
		t.Fatal("tampered proof accepted")
	}
}

func TestMerkleRootMatchesTypesForSingle(t *testing.T) {
	// Single leaf: root is just the leaf hash.
	tree, _ := NewMerkleTree([][]byte{[]byte("x")})
	if tree.Root() != types.HashBytes([]byte("x")) {
		t.Fatal("single-leaf root is not the leaf hash")
	}
}

func TestMerkleProofProperty(t *testing.T) {
	f := func(data [][]byte, pick uint8) bool {
		if len(data) == 0 {
			return true
		}
		tree, err := NewMerkleTree(data)
		if err != nil {
			return false
		}
		i := int(pick) % len(data)
		proof, err := tree.Proof(i)
		if err != nil {
			return false
		}
		return VerifyMerkleProof(tree.Root(), data[i], proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyringSignVerify(t *testing.T) {
	kr := NewKeyring(4)
	msg := []byte("block payload")
	sig := kr.Sign(1, msg)
	if !kr.Verify(1, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if kr.Verify(2, msg, sig) {
		t.Fatal("signature accepted under wrong identity")
	}
	if kr.Verify(1, []byte("other"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	if kr.Verify(99, msg, sig) {
		t.Fatal("unknown node verified")
	}
}

func TestKeyringDeterministic(t *testing.T) {
	a := NewKeyring(2)
	b := NewKeyring(2)
	if string(a.Public(0)) != string(b.Public(0)) {
		t.Fatal("keyring not reproducible")
	}
	if string(a.Public(0)) == string(a.Public(1)) {
		t.Fatal("distinct nodes share a key")
	}
}

func TestKeyringAddIdempotent(t *testing.T) {
	kr := NewKeyring(1)
	p := kr.Public(0)
	kr.Add(0)
	if string(kr.Public(0)) != string(p) {
		t.Fatal("Add replaced an existing key")
	}
}

func TestKeyringSignUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKeyring(1).Sign(5, []byte("x"))
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	// The parallel level construction must be byte-identical to the serial
	// path: same levels, same root, same proofs. 5000 leaves exceeds
	// parallelMerkleThreshold, so workers=4 genuinely fans out.
	for _, n := range []int{parallelMerkleThreshold, 5000, 8192} {
		lvs := leaves(n)
		hashes := make([]types.Hash, n)
		for i, l := range lvs {
			hashes[i] = types.HashBytes(l)
		}
		serial := buildLevels(append([]types.Hash(nil), hashes...), 1)
		parallel := buildLevels(append([]types.Hash(nil), hashes...), 4)
		if len(serial) != len(parallel) {
			t.Fatalf("n=%d: %d levels vs %d", n, len(serial), len(parallel))
		}
		for li := range serial {
			if len(serial[li]) != len(parallel[li]) {
				t.Fatalf("n=%d level %d: width %d vs %d", n, li, len(serial[li]), len(parallel[li]))
			}
			for i := range serial[li] {
				if serial[li][i] != parallel[li][i] {
					t.Fatalf("n=%d level %d node %d differs", n, li, i)
				}
			}
		}
	}
}

func TestParallelTreeProofsVerify(t *testing.T) {
	n := parallelMerkleThreshold + 37 // odd width on several levels
	lvs := leaves(n)
	tree, err := NewMerkleTree(lvs)
	if err != nil {
		t.Fatal(err)
	}
	// Roots agree with types.TxMerkleRoot conventions: rebuild via the
	// forced-parallel path and compare.
	hashes := make([]types.Hash, n)
	for i, l := range lvs {
		hashes[i] = types.HashBytes(l)
	}
	par := &MerkleTree{levels: buildLevels(hashes, 4)}
	if par.Root() != tree.Root() {
		t.Fatal("forced-parallel root differs from NewMerkleTree root")
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		proof, err := par.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyMerkleProof(par.Root(), lvs[i], proof) {
			t.Fatalf("proof %d from parallel-built tree rejected", i)
		}
	}
}

func BenchmarkMerkleBuild(b *testing.B) {
	hashes := make([]types.Hash, 16384)
	for i := range hashes {
		hashes[i] = types.HashBytes([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("leaves=16384/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildLevels(append([]types.Hash(nil), hashes...), workers)
			}
		})
	}
}
