package crypto

import (
	"errors"
	"fmt"
	"math/big"
)

// BitProof is a Chaum-Pedersen OR proof that a commitment opens to 0 or 1,
// without revealing which. The prover runs the real Schnorr branch for the
// actual bit and simulates the other branch.
type BitProof struct {
	T0, T1 *big.Int
	C0, C1 *big.Int
	S0, S1 *big.Int
}

const bitDomain = "permchain bit-orproof"

// ProveBit proves that c commits to bit (0 or 1) with the given blinding.
func (g *Group) ProveBit(c Commitment, bit int, blinding *big.Int) (BitProof, error) {
	if bit != 0 && bit != 1 {
		return BitProof{}, fmt.Errorf("crypto: bit must be 0 or 1, got %d", bit)
	}
	// Branch statements: Y0 = C must be H^r if bit==0; Y1 = C/G must be
	// H^r if bit==1.
	y0 := c.C
	y1 := g.Mul(c.C, g.Inv(g.G))

	var pr BitProof
	k := g.RandScalar()
	if bit == 0 {
		// Simulate branch 1.
		pr.C1 = g.RandScalar()
		pr.S1 = g.RandScalar()
		// T1 = H^s1 · Y1^{-c1}
		pr.T1 = g.Mul(g.Exp(g.H, pr.S1), g.Inv(g.Exp(y1, pr.C1)))
		pr.T0 = g.Exp(g.H, k)
		c := g.Challenge(bitDomain, y0, y1, pr.T0, pr.T1)
		pr.C0 = new(big.Int).Sub(c, pr.C1)
		pr.C0.Mod(pr.C0, g.Q)
		pr.S0 = new(big.Int).Mul(pr.C0, blinding)
		pr.S0.Add(pr.S0, k)
		pr.S0.Mod(pr.S0, g.Q)
	} else {
		// Simulate branch 0.
		pr.C0 = g.RandScalar()
		pr.S0 = g.RandScalar()
		pr.T0 = g.Mul(g.Exp(g.H, pr.S0), g.Inv(g.Exp(y0, pr.C0)))
		pr.T1 = g.Exp(g.H, k)
		c := g.Challenge(bitDomain, y0, y1, pr.T0, pr.T1)
		pr.C1 = new(big.Int).Sub(c, pr.C0)
		pr.C1.Mod(pr.C1, g.Q)
		pr.S1 = new(big.Int).Mul(pr.C1, blinding)
		pr.S1.Add(pr.S1, k)
		pr.S1.Mod(pr.S1, g.Q)
	}
	return pr, nil
}

// VerifyBit checks a ProveBit proof against the commitment.
func (g *Group) VerifyBit(c Commitment, pr BitProof) bool {
	for _, x := range []*big.Int{pr.T0, pr.T1, pr.C0, pr.C1, pr.S0, pr.S1} {
		if x == nil {
			return false
		}
	}
	if c.C == nil {
		return false
	}
	y0 := c.C
	y1 := g.Mul(c.C, g.Inv(g.G))
	// Challenge split must be honest.
	want := g.Challenge(bitDomain, y0, y1, pr.T0, pr.T1)
	sum := new(big.Int).Add(pr.C0, pr.C1)
	sum.Mod(sum, g.Q)
	if sum.Cmp(want) != 0 {
		return false
	}
	// H^s0 == T0 · Y0^c0 and H^s1 == T1 · Y1^c1.
	if g.Exp(g.H, pr.S0).Cmp(g.Mul(pr.T0, g.Exp(y0, pr.C0))) != 0 {
		return false
	}
	if g.Exp(g.H, pr.S1).Cmp(g.Mul(pr.T1, g.Exp(y1, pr.C1))) != 0 {
		return false
	}
	return true
}

// RangeProof shows a committed value lies in [0, 2^Bits) by committing to
// each bit, proving every bit commitment opens to 0 or 1, and letting the
// verifier recombine the bit commitments homomorphically:
// ∏ Ci^(2^i) must equal the value commitment.
type RangeProof struct {
	Bits      int
	BitComms  []Commitment
	BitProofs []BitProof
}

// ProveRange proves that the opening's value is in [0, 2^bits). It fails
// if the value is actually out of range — a prover cannot make a valid
// proof for such a value anyway.
func (g *Group) ProveRange(o Opening, bits int) (RangeProof, error) {
	if bits <= 0 || bits > 62 {
		return RangeProof{}, fmt.Errorf("crypto: range bits must be in [1,62], got %d", bits)
	}
	if o.Value.Sign() < 0 || o.Value.BitLen() > bits {
		return RangeProof{}, fmt.Errorf("%w: value %v not in [0,2^%d)", ErrOutOfRange, o.Value, bits)
	}
	pr := RangeProof{Bits: bits}
	// Choose bit blindings r_i such that Σ 2^i·r_i = r (mod Q), so the
	// recombined commitment equals the original exactly.
	blinds := make([]*big.Int, bits)
	acc := new(big.Int)
	for i := 1; i < bits; i++ {
		blinds[i] = g.RandScalar()
		term := new(big.Int).Lsh(blinds[i], uint(i))
		acc.Add(acc, term)
	}
	blinds[0] = new(big.Int).Sub(o.Blinding, acc)
	blinds[0].Mod(blinds[0], g.Q)

	for i := 0; i < bits; i++ {
		bit := int(o.Value.Bit(i))
		c, _ := g.CommitWith(big.NewInt(int64(bit)), blinds[i])
		bp, err := g.ProveBit(c, bit, blinds[i])
		if err != nil {
			return RangeProof{}, err
		}
		pr.BitComms = append(pr.BitComms, c)
		pr.BitProofs = append(pr.BitProofs, bp)
	}
	return pr, nil
}

// VerifyRange checks a range proof against the value commitment c.
func (g *Group) VerifyRange(c Commitment, pr RangeProof) bool {
	if c.C == nil || pr.Bits <= 0 ||
		len(pr.BitComms) != pr.Bits || len(pr.BitProofs) != pr.Bits {
		return false
	}
	// Recombine: ∏ Ci^(2^i) must equal C.
	acc := big.NewInt(1)
	for i, bc := range pr.BitComms {
		if bc.C == nil {
			return false
		}
		w := new(big.Int).Lsh(big.NewInt(1), uint(i))
		acc = g.Mul(acc, g.Exp(bc.C, w))
	}
	if acc.Cmp(c.C) != 0 {
		return false
	}
	for i := range pr.BitComms {
		if !g.VerifyBit(pr.BitComms[i], pr.BitProofs[i]) {
			return false
		}
	}
	return true
}

// ErrOutOfRange reports a value that cannot satisfy a requested range.
var ErrOutOfRange = errors.New("crypto: value out of range")
