package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"permchain/internal/obs"
	storepkg "permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func newChain(t *testing.T, cfg Config) *Chain {
	t.Helper()
	if cfg.Timeout == 0 {
		cfg.Timeout = 400 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func addTx(id, key string, d int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: key, Delta: d}}}
}

func TestFigure1FiveNodeReplication(t *testing.T) {
	// The paper's Figure 1: five nodes, each maintaining its own copy of
	// the blockchain ledger; after processing, all copies are identical.
	c := newChain(t, Config{Nodes: 5, Protocol: PBFT, Arch: OX, BlockSize: 8})
	const k = 40
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i%10), 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("nodes processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if c.Node(0).Chain().Height() == 0 {
		t.Fatal("no blocks produced")
	}
	if c.Node(0).Store().GetInt("k0") != 4 {
		t.Fatalf("k0 = %d", c.Node(0).Store().GetInt("k0"))
	}
}

func TestAllProtocolsProduceIdenticalLedgers(t *testing.T) {
	for _, p := range []Protocol{PBFT, Raft, Paxos, Tendermint, HotStuff, IBFT} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c := newChain(t, Config{Nodes: 4, Protocol: p, Arch: OX, BlockSize: 4})
			const k = 12
			for i := 0; i < k; i++ {
				if err := c.Submit(addTx(fmt.Sprintf("%s-%d", p, i), "ctr", 1)); err != nil {
					t.Fatal(err)
				}
			}
			c.Flush()
			if !c.Await(AwaitSpec{Txs: k, Timeout: 30 * time.Second}) {
				t.Fatalf("%v: processed %d/%d", p, c.Node(0).ProcessedTxs(), k)
			}
			if err := c.VerifyReplication(); err != nil {
				t.Fatal(err)
			}
			if got := c.Node(0).Store().GetInt("ctr"); got != k {
				t.Fatalf("ctr = %d", got)
			}
		})
	}
}

func TestAllArchitecturesAgreeOnUncontended(t *testing.T) {
	// With no conflicts, OX, OXII and XOV must produce identical results.
	run := func(a Architecture) (int64, archStats) {
		c := newChain(t, Config{Nodes: 4, Arch: a, BlockSize: 16})
		const k = 32
		for i := 0; i < k; i++ {
			if err := c.Submit(addTx(fmt.Sprintf("%v-%d", a, i), fmt.Sprintf("k%d", i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		c.Flush()
		if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
			t.Fatalf("%v: processed %d/%d", a, c.Node(0).ProcessedTxs(), k)
		}
		if err := c.VerifyReplication(); err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := 0; i < k; i++ {
			total += c.Node(0).Store().GetInt(fmt.Sprintf("k%d", i))
		}
		st := c.Node(0).Stats()
		return total, archStats{committed: st.Committed, aborted: st.Aborted}
	}
	for _, a := range []Architecture{OX, OXII, XOV} {
		total, st := run(a)
		if total != 32 {
			t.Fatalf("%v: total %d", a, total)
		}
		if st.committed != 32 || st.aborted != 0 {
			t.Fatalf("%v: stats %+v", a, st)
		}
	}
}

type archStats struct{ committed, aborted int }

func TestXOVAbortsUnderContentionOXIIDoesNot(t *testing.T) {
	// The §2.3.3 Discussion claim in miniature: all transactions hit one
	// key. OXII serializes them via the dependency graph (no aborts);
	// XOV endorses them against the same snapshot and aborts the losers.
	const k = 16
	mkTxs := func(prefix string) []*types.Transaction {
		var out []*types.Transaction
		for i := 0; i < k; i++ {
			out = append(out, addTx(fmt.Sprintf("%s-%d", prefix, i), "hot", 1))
		}
		return out
	}

	oxii := newChain(t, Config{Nodes: 4, Arch: OXII, BlockSize: k})
	for _, tx := range mkTxs("oxii") {
		if err := oxii.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	oxii.Flush()
	if !oxii.Await(AwaitSpec{Nodes: []int{0}, Txs: k, Timeout: 20 * time.Second}) {
		t.Fatal("oxii stalled")
	}
	if st := oxii.Node(0).Stats(); st.Aborted != 0 || st.Committed != k {
		t.Fatalf("OXII stats %+v", st)
	}
	if got := oxii.Node(0).Store().GetInt("hot"); got != k {
		t.Fatalf("OXII hot = %d", got)
	}

	xovC := newChain(t, Config{Nodes: 4, Arch: XOV, BlockSize: k})
	for _, tx := range mkTxs("xov") {
		if err := xovC.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	xovC.Flush()
	if !xovC.Await(AwaitSpec{Nodes: []int{0}, Txs: k, Timeout: 20 * time.Second}) {
		t.Fatal("xov stalled")
	}
	st := xovC.Node(0).Stats()
	if st.Aborted == 0 {
		t.Fatalf("XOV stats %+v: expected aborts under contention", st)
	}
	if st.Committed+st.Aborted != k {
		t.Fatalf("XOV stats %+v do not add up", st)
	}
	// No lost updates: hot == committed count.
	if got := xovC.Node(0).Store().GetInt("hot"); got != int64(st.Committed) {
		t.Fatalf("hot = %d, committed = %d", got, st.Committed)
	}
}

func TestWorkloadIntegration(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Arch: OXII, BlockSize: 32})
	txs := workload.New(3).KV(workload.KVConfig{Txs: 64, Keys: 100, OpsPerTx: 2, Skew: 1.1})
	for _, tx := range txs {
		if err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: 64, Timeout: 20 * time.Second}) {
		t.Fatal("stalled")
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	c, err := New(Config{Nodes: 4, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	if err := c.Submit(addTx("t", "k", 1)); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if PBFT.String() != "pbft" || HotStuff.String() != "hotstuff" {
		t.Fatal("protocol stringer")
	}
	if OX.String() != "OX" || OXII.String() != "OXII" || XOV.String() != "XOV" {
		t.Fatal("arch stringer")
	}
}

func TestProvenanceHistory(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Arch: OX, BlockSize: 1, HistoryLimit: 10})
	for i := 1; i <= 3; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("t%d", i), "asset", int64(i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
		if !c.Await(AwaitSpec{Nodes: []int{0}, Txs: i, Timeout: 10 * time.Second}) {
			t.Fatalf("tx %d stalled", i)
		}
	}
	// The asset's full history is queryable: 1, 1+2, 1+2+3.
	h := c.Node(0).Store().History("asset")
	if len(h) != 3 {
		t.Fatalf("history entries = %d, want 3", len(h))
	}
	want := []string{"1", "3", "6"}
	for i, e := range h {
		if string(e.Value) != want[i] {
			t.Fatalf("history[%d] = %s, want %s", i, e.Value, want[i])
		}
	}
	// Versions are increasing and carry block heights.
	for i := 1; i < len(h); i++ {
		if !h[i-1].Version.Less(h[i].Version) {
			t.Fatal("history versions not increasing")
		}
	}
}

func TestDurableRestartRecoversLedgerAndState(t *testing.T) {
	dir := t.TempDir()
	scfg := &storepkg.Config{Dir: dir, Fsync: storepkg.FsyncAlways, SnapshotEvery: 3}
	o := obs.New()
	cfg := Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4,
		Timeout: 400 * time.Millisecond, Store: scfg, Obs: o}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	const k = 40
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i%10), 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	wantHeight := c.Node(0).Chain().Height()
	wantState := c.Node(0).Store().StateHash()
	wantHead := c.Node(0).Chain().Head().Hash()
	c.Stop()

	// Reopen the whole cluster from disk.
	re, err := OpenChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range re.Nodes() {
		if got := n.Chain().Height(); got != wantHeight {
			t.Fatalf("node %v recovered height %d, want %d", n.ID, got, wantHeight)
		}
		if n.Chain().Head().Hash() != wantHead {
			t.Fatalf("node %v head hash differs after recovery", n.ID)
		}
		if n.Store().StateHash() != wantState {
			t.Fatalf("node %v state hash differs after recovery", n.ID)
		}
		if err := n.Chain().Verify(); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Reg.Snapshot()
	if snap.Counters["store/loaded_blocks"] == 0 {
		t.Fatal("no loaded_blocks recorded")
	}
	// SnapshotEvery=3 guarantees snapshots exist, so replay must cover
	// strictly fewer blocks than were loaded.
	if snap.Counters["store/replayed_blocks"] >= snap.Counters["store/loaded_blocks"] {
		t.Fatalf("replayed %d >= loaded %d despite snapshots",
			snap.Counters["store/replayed_blocks"], snap.Counters["store/loaded_blocks"])
	}

	// The recovered cluster keeps working and stays replicated.
	re.Start()
	defer re.Stop()
	const k2 = 8
	for i := 0; i < k2; i++ {
		if err := re.Submit(addTx(fmt.Sprintf("post-%d", i), "post", 1)); err != nil {
			t.Fatal(err)
		}
	}
	re.Flush()
	if !re.Await(AwaitSpec{Txs: k2, Timeout: 20 * time.Second}) {
		t.Fatalf("post-restart processed %d/%d", re.Node(0).ProcessedTxs(), k2)
	}
	if err := re.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if got := re.Node(0).Chain().Height(); got <= wantHeight {
		t.Fatalf("height %d did not advance past %d", got, wantHeight)
	}
	if re.Node(0).Store().GetInt("post") != k2 {
		t.Fatalf("post = %d", re.Node(0).Store().GetInt("post"))
	}
	if re.Node(0).Store().GetInt("k0") != 4 {
		t.Fatalf("recovered k0 = %d", re.Node(0).Store().GetInt("k0"))
	}
}

func TestNewRefusesExistingDurableState(t *testing.T) {
	dir := t.TempDir()
	scfg := &storepkg.Config{Dir: dir, Fsync: storepkg.FsyncOff}
	cfg := Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 2,
		Timeout: 400 * time.Millisecond, Store: scfg}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 4; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("t%d", i), "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: 4, Timeout: 20 * time.Second}) {
		t.Fatal("no progress")
	}
	c.Stop()

	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a directory with existing blocks")
	} else if !strings.Contains(err.Error(), "OpenChain") {
		t.Fatalf("error does not point at OpenChain: %v", err)
	}
}

func TestOpenChainOnEmptyDirIsFresh(t *testing.T) {
	dir := t.TempDir()
	scfg := &storepkg.Config{Dir: dir, Fsync: storepkg.FsyncOff}
	c, err := OpenChain(Config{Nodes: 4, Protocol: PBFT, Arch: OX,
		Timeout: 400 * time.Millisecond, Store: scfg})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if c.Node(0).Chain().Height() != 0 {
		t.Fatal("fresh chain has blocks")
	}
	if c.Node(0).Disk() == nil {
		t.Fatal("durable chain has no disk store")
	}
}

func TestOpenChainCatchesUpLaggingNode(t *testing.T) {
	dir := t.TempDir()
	scfg := &storepkg.Config{Dir: dir, Fsync: storepkg.FsyncAlways}
	cfg := Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4,
		Timeout: 400 * time.Millisecond, Store: scfg}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	const k = 20
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i%5), 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatal("no progress")
	}
	wantState := c.Node(0).Store().StateHash()
	c.Stop()

	// Rebuild node 3's store one block short: the node went down lagging.
	nodeDir := filepath.Join(dir, "node-3")
	short, err := storepkg.Open(storepkg.Config{Dir: nodeDir})
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*types.Block
	if err := short.ReplayBlocks(1, func(b *types.Block) error {
		blocks = append(blocks, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	short.Close()
	if err := os.RemoveAll(nodeDir); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := storepkg.Open(storepkg.Config{Dir: nodeDir, Fsync: storepkg.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[:len(blocks)-1] {
		if err := rebuilt.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt.Close()

	o := obs.New()
	cfg.Obs = o
	re, err := OpenChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	defer re.Stop()
	wantHeight := re.Node(0).Chain().Height()
	if got := re.Node(3).Chain().Height(); got != wantHeight {
		t.Fatalf("node 3 height %d, want %d after catch-up", got, wantHeight)
	}
	if re.Node(3).Store().StateHash() != wantState {
		t.Fatal("node 3 state differs after catch-up")
	}
	if err := re.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if o.Reg.Snapshot().Counters["store/catchup_blocks"] != 1 {
		t.Fatalf("catchup_blocks = %d, want 1", o.Reg.Snapshot().Counters["store/catchup_blocks"])
	}
	// Node 3's disk now holds the caught-up suffix too.
	if got := re.Node(3).Disk().Height(); got != wantHeight {
		t.Fatalf("node 3 durable height %d, want %d", got, wantHeight)
	}
}
