package core

import (
	"sync"
	"time"
)

// AwaitSpec describes a commit watermark to wait for. Zero-valued floors
// are not checked, so the common cases read naturally:
//
//	c.Await(core.AwaitSpec{Txs: 100, Timeout: 5 * time.Second})            // all nodes, 100 txs
//	c.Await(core.AwaitSpec{Nodes: []int{0, 2}, Height: 8, Timeout: ...})   // survivors reach height 8
type AwaitSpec struct {
	// Nodes lists the node indices that must reach every floor; nil
	// means every node — fault tests pass the survivor set.
	Nodes []int
	// Txs is the processed-transaction floor.
	Txs int
	// Height is the applied ledger-height floor.
	Height uint64
	// DurableHeight is the persisted ledger-height floor; it only
	// advances on chains built with Config.Store.
	DurableHeight uint64
	// Timeout bounds the wait; a timeout <= 0 checks once and returns
	// without blocking.
	Timeout time.Duration
}

// commitWaiter is the pipeline's commit-notification hub: the executor
// and persister advance per-node watermarks under one lock and
// broadcast; Await sleeps on the condition variable until its spec is
// satisfied, replacing the old 1ms sleep-polling loops.
type commitWaiter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	txs     []int    // transactions applied, per node
	applied []uint64 // ledger height applied, per node
	durable []uint64 // ledger height persisted, per node
}

func newCommitWaiter(nodes int) *commitWaiter {
	w := &commitWaiter{
		txs:     make([]int, nodes),
		applied: make([]uint64, nodes),
		durable: make([]uint64, nodes),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// seed initializes node i's height watermarks after recovery; the tx
// watermark stays zero because replayed transactions are not re-counted.
func (w *commitWaiter) seed(i int, applied, durable uint64) {
	w.mu.Lock()
	w.applied[i] = applied
	w.durable[i] = durable
	w.mu.Unlock()
}

func (w *commitWaiter) advanceApplied(i, dtxs int, height uint64) {
	w.mu.Lock()
	w.txs[i] += dtxs
	if height > w.applied[i] {
		w.applied[i] = height
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *commitWaiter) advanceDurable(i int, height uint64) {
	w.mu.Lock()
	if height > w.durable[i] {
		w.durable[i] = height
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *commitWaiter) durableHeight(i int) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable[i]
}

// Await blocks until every node listed in spec satisfies every non-zero
// floor, or the timeout elapses; it reports whether the spec was
// satisfied. The wait is event-driven — each commit broadcasts — so
// satisfied waits return at commit time, not at the next poll tick.
func (c *Chain) Await(spec AwaitSpec) bool {
	nodes := spec.Nodes
	if nodes == nil {
		nodes = make([]int, len(c.nodes))
		for i := range nodes {
			nodes[i] = i
		}
	}
	w := c.cw
	satisfied := func() bool {
		for _, i := range nodes {
			if w.txs[i] < spec.Txs || w.applied[i] < spec.Height || w.durable[i] < spec.DurableHeight {
				return false
			}
		}
		return true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if satisfied() {
		return true
	}
	if spec.Timeout <= 0 {
		return false
	}
	// The timer takes the waiter lock before flagging expiry, so the
	// broadcast can never slip between a waiter's check and its Wait —
	// the classic missed-wakeup race.
	expired := false
	t := time.AfterFunc(spec.Timeout, func() {
		w.mu.Lock()
		expired = true
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	defer t.Stop()
	for {
		w.cond.Wait()
		if satisfied() {
			return true
		}
		if expired {
			return false
		}
	}
}

// AwaitErr is Await with a typed result: nil when every floor was
// satisfied, ErrAwaitTimeout when the timeout elapsed first. Clients
// that thread errors (rather than booleans) through their control flow
// — the overload harness, anything wrapping the chain in a service —
// use this form so a shed or stalled chain surfaces as a typed,
// matchable error instead of a bare false.
func (c *Chain) AwaitErr(spec AwaitSpec) error {
	if c.Await(spec) {
		return nil
	}
	return ErrAwaitTimeout
}
