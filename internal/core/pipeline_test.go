package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	storepkg "permchain/internal/store"
)

func TestReceiptSettlesCommitted(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4, Obs: obs.New()})
	const k = 8
	receipts := make([]*Receipt, 0, k)
	for i := 0; i < k; i++ {
		r, err := c.SubmitAsync(addTx(fmt.Sprintf("r%d", i), "k", 1))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	c.Flush()
	for i, r := range receipts {
		if err := r.Wait(20 * time.Second); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		if r.Status() != arch.TxCommitted {
			t.Fatalf("receipt %d status %v", i, r.Status())
		}
		if r.Height() == 0 {
			t.Fatalf("receipt %d has no height", i)
		}
	}
	m := c.Metrics()
	if m.Counters["core/receipts_issued"] != k || m.Counters["core/receipts_resolved"] != k {
		t.Fatalf("issued %d resolved %d, want %d each",
			m.Counters["core/receipts_issued"], m.Counters["core/receipts_resolved"], k)
	}
}

func TestReceiptDurableSettlesAfterPersist(t *testing.T) {
	// On a durable chain a receipt only fires after the block's durable
	// append, so its height is at or below node 0's durable watermark.
	scfg := &storepkg.Config{Dir: t.TempDir(), Fsync: storepkg.FsyncAlways}
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 2, Store: scfg})
	r, err := c.SubmitAsync(addTx("d0", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAsync(addTx("d1", "k", 1)); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if err := r.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).DurableHeight(); got < r.Height() {
		t.Fatalf("durable watermark %d below receipt height %d", got, r.Height())
	}
	if !c.Await(AwaitSpec{Nodes: []int{0}, DurableHeight: r.Height(), Timeout: time.Second}) {
		t.Fatal("Await on the durable floor did not see the persisted block")
	}
}

func TestXOVAbortedReceiptsSettleNotHang(t *testing.T) {
	// Every transaction endorses against the same snapshot of one hot
	// key; MVCC validation commits the first and aborts the rest. The
	// losers' receipts must settle with TxAborted — not hang, not error.
	c := newChain(t, Config{Nodes: 4, Arch: XOV, BlockSize: 16, Obs: obs.New()})
	const k = 8
	receipts := make([]*Receipt, 0, k)
	for i := 0; i < k; i++ {
		r, err := c.SubmitAsync(addTx(fmt.Sprintf("hot%d", i), "hot", 1))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	c.Flush()
	committed, aborted := 0, 0
	for i, r := range receipts {
		if err := r.Wait(20 * time.Second); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		switch r.Status() {
		case arch.TxCommitted:
			committed++
		case arch.TxAborted:
			aborted++
		default:
			t.Fatalf("receipt %d unexpected status %v", i, r.Status())
		}
	}
	if committed != 1 || aborted != k-1 {
		t.Fatalf("committed %d aborted %d, want 1 and %d", committed, aborted, k-1)
	}
	if got := c.Metrics().Counters["core/receipts_aborted"]; got != int64(k-1) {
		t.Fatalf("receipts_aborted = %d, want %d", got, k-1)
	}
}

func TestStopFailsPendingReceipts(t *testing.T) {
	// A receipt whose transaction never reached consensus settles with
	// ErrStopped at shutdown instead of hanging its waiter.
	cfg := Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 1024,
		FlushEvery: time.Hour, Timeout: 400 * time.Millisecond}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	r, err := c.SubmitAsync(addTx("orphan", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	select {
	case <-r.Done():
	default:
		t.Fatal("receipt still pending after Stop")
	}
	if !errors.Is(r.Err(), ErrStopped) {
		t.Fatalf("receipt error %v, want ErrStopped", r.Err())
	}
}

func TestSubmitDuringStopIsSafe(t *testing.T) {
	// Submissions racing Stop either land or return ErrStopped; nothing
	// panics and no proposal reaches a stopped replica. Run with -race.
	c, err := New(Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 2,
		Timeout: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var wg sync.WaitGroup
	stopErr := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				err := c.Submit(addTx(fmt.Sprintf("g%d-%d", g, i), "k", 1))
				if err != nil {
					stopErr <- err
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	wg.Wait()
	close(stopErr)
	for err := range stopErr {
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("racing submit returned %v, want ErrStopped", err)
		}
	}
	// Flush after Stop must be a no-op, not a proposal to dead replicas.
	c.Flush()
}

func TestApplyQueueBoundsMemoryUnderStall(t *testing.T) {
	// Stall every executor and keep proposing: intake may buffer at most
	// ApplyQueue decided batches per node before it blocks, so the
	// aggregate queue-depth gauge is bounded by Nodes*ApplyQueue no
	// matter how many blocks consensus decides.
	const nodes, queue, blocks = 4, 4, 48
	o := obs.New()
	cfg := Config{Nodes: nodes, Protocol: PBFT, Arch: OX, BlockSize: 1,
		ApplyQueue: queue, Timeout: 400 * time.Millisecond, Obs: o}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	c.testExecGate = gate
	c.Start()
	defer c.Stop()
	for i := 0; i < blocks; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("s%d", i), "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Give intake time to fill the queues, then check the bound held.
	deadline := time.Now().Add(2 * time.Second)
	var peak int64
	for time.Now().Before(deadline) {
		depth := o.Reg.Snapshot().Gauges["core/apply_queue_depth"]
		if depth > peak {
			peak = depth
		}
		if depth > int64(nodes*queue) {
			t.Fatalf("apply queue depth %d exceeds bound %d", depth, nodes*queue)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peak == 0 {
		t.Fatal("queues never filled; the stall gate is not wired")
	}
	close(gate)
	if !c.Await(AwaitSpec{Txs: blocks, Timeout: 30 * time.Second}) {
		t.Fatalf("processed %d/%d after releasing the stall", c.Node(0).ProcessedTxs(), blocks)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
}

func TestAwaitSpecFloors(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4})
	const k = 8
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("a%d", i), "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Height: 2, Timeout: 20 * time.Second}) {
		t.Fatalf("all-nodes await failed at %d txs", c.Node(0).ProcessedTxs())
	}
	if !c.Await(AwaitSpec{Nodes: []int{1, 3}, Txs: k, Timeout: time.Second}) {
		t.Fatal("subset await failed after the all-nodes one passed")
	}
	// A satisfied spec with no timeout returns immediately; an
	// unsatisfiable one reports false instead of blocking.
	if !c.Await(AwaitSpec{Txs: k}) {
		t.Fatal("zero-timeout check of a satisfied spec returned false")
	}
	if c.Await(AwaitSpec{Txs: k + 1000, Timeout: 50 * time.Millisecond}) {
		t.Fatal("await of unreachable floor returned true")
	}
}

func TestInlineCommitModeStillReplicates(t *testing.T) {
	// The baseline arm of E12: same API, single-stage commit loop. The
	// applied-during-snapshot witness must stay zero — inline commits
	// cannot overlap a checkpoint write by construction.
	o := obs.New()
	scfg := &storepkg.Config{Dir: t.TempDir(), Fsync: storepkg.FsyncAlways, SnapshotEvery: 2}
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 2,
		InlineCommit: true, Store: scfg, Obs: o})
	const k = 16
	r, err := c.SubmitAsync(addTx("inline0", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("inline%d", i), "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	if err := r.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Counters["core/applied_during_snapshot"] != 0 {
		t.Fatalf("inline mode applied %d blocks during snapshots", m.Counters["core/applied_during_snapshot"])
	}
	if m.Counters["store/snapshots_async"] != 0 {
		t.Fatal("inline mode used the async snapshot writer")
	}
}
