package core

import (
	"fmt"
	"strings"
	"time"

	"permchain/internal/mempool"
	"permchain/internal/network"
	"permchain/internal/obs"
)

// NodeStatus is one replica's position in Status.
type NodeStatus struct {
	ID            int    `json:"id"`
	Height        uint64 `json:"height"`
	DurableHeight uint64 `json:"durable_height,omitempty"`
	StateHash     string `json:"state_hash"`
	ProcessedTxs  int    `json:"processed_txs"`
}

// NetworkStatus summarizes the transport's traffic counters, with losses
// broken down by cause so a partition reads differently from overload.
type NetworkStatus struct {
	Sent         int64            `json:"sent"`
	Delivered    int64            `json:"delivered"`
	Dropped      int64            `json:"dropped"`
	DropsByCause map[string]int64 `json:"drops_by_cause,omitempty"`
}

// Status is the chain's operational snapshot — what the ops server's
// /status endpoint (and `chainctl status`) renders. Everything in it is
// cheap to gather: watermarks, gauges, and counter reads, no scans.
type Status struct {
	Protocol string `json:"protocol"`
	Arch     string `json:"arch"`
	// Cluster is the replica count — the n that sizes quorums.
	Cluster    int       `json:"cluster"`
	Height     uint64    `json:"height"`
	StateHash  string    `json:"state_hash"`
	LastCommit time.Time `json:"last_commit,omitempty"`
	// Views holds the protocol's progress gauges (pbft/view, raft/term,
	// tendermint/round, ...) filtered to the running protocol.
	Views map[string]int64 `json:"views,omitempty"`
	// VoteAgg holds the vote-aggregation counters (quorumcert/* and
	// votebatch/*) when the chain runs with AggregateVotes or BatchVotes.
	VoteAgg map[string]int64 `json:"vote_agg,omitempty"`
	Nodes   []NodeStatus     `json:"nodes"`
	Mempool *mempool.Stats   `json:"mempool,omitempty"`
	Network NetworkStatus    `json:"network"`
}

// Obs returns the chain's observability layer (nil when built without
// one). The ops server uses it to reach the registry, tracer, and health
// tracker behind a running chain.
func (c *Chain) Obs() *obs.Obs { return c.cfg.Obs }

// Health returns the chain's health tracker, or nil when the chain was
// built without an Obs. A nil *obs.Health is safe to call.
func (c *Chain) Health() *obs.Health {
	if c.cfg.Obs == nil {
		return nil
	}
	return c.cfg.Obs.Health
}

// Status gathers the chain's operational snapshot.
func (c *Chain) Status() Status {
	ref := c.nodes[0]
	s := Status{
		Protocol:  c.cfg.Protocol.String(),
		Arch:      c.cfg.Arch.String(),
		Cluster:   c.cfg.Nodes,
		Height:    ref.chain.Height(),
		StateHash: ref.Store().StateHash().Hex(),
	}
	if h := c.Health(); h != nil {
		s.LastCommit, _ = h.LastCommit()
	}
	if c.cfg.Obs != nil && c.cfg.Obs.Reg != nil {
		snap := c.cfg.Obs.Reg.Snapshot()
		prefix := s.Protocol + "/"
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, prefix) {
				if s.Views == nil {
					s.Views = make(map[string]int64)
				}
				s.Views[name] = v
			}
		}
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, "quorumcert/") || strings.HasPrefix(name, "votebatch/") {
				if s.VoteAgg == nil {
					s.VoteAgg = make(map[string]int64)
				}
				s.VoteAgg[name] = v
			}
		}
	}
	for _, n := range c.nodes {
		s.Nodes = append(s.Nodes, NodeStatus{
			ID:            int(n.ID),
			Height:        n.chain.Height(),
			DurableHeight: n.DurableHeight(),
			StateHash:     n.Store().StateHash().Hex(),
			ProcessedTxs:  n.ProcessedTxs(),
		})
	}
	if c.pool != nil {
		st := c.pool.Stats()
		s.Mempool = &st
	}
	ns := c.net.StatsSnapshot()
	s.Network = NetworkStatus{Sent: ns.Sent, Delivered: ns.Delivered, Dropped: ns.Dropped}
	for i, v := range ns.ByCause {
		if v == 0 {
			continue
		}
		if s.Network.DropsByCause == nil {
			s.Network.DropsByCause = make(map[string]int64)
		}
		s.Network.DropsByCause[network.DropCause(i).String()] = v
	}
	return s
}

// registerHealthChecks attaches the checks only the chain can evaluate —
// pipeline backlog against the apply-queue bound and mempool occupancy
// against capacity. Called from Start, after the stage channels exist, so
// the closures see fully-built nodes; Health's own locking orders the
// registration against concurrent Report calls.
func (c *Chain) registerHealthChecks() {
	h := c.Health()
	if h == nil {
		return
	}
	if !c.cfg.InlineCommit {
		queueCap := c.cfg.ApplyQueue
		h.RegisterCheck("pipeline", func() obs.HealthCheck {
			worst := 0
			for _, n := range c.nodes {
				if n.applyCh == nil {
					continue
				}
				if l := len(n.applyCh); l > worst {
					worst = l
				}
			}
			ck := obs.HealthCheck{Status: obs.Healthy,
				Reason: fmt.Sprintf("apply backlog %d/%d", worst, queueCap)}
			switch {
			case worst >= queueCap:
				ck.Status = obs.Unhealthy
			case worst*4 >= queueCap*3: // >= 75% full
				ck.Status = obs.Degraded
			}
			return ck
		})
	}
	if c.pool != nil {
		capacity := c.pool.Config().Capacity
		h.RegisterCheck("mempool", func() obs.HealthCheck {
			st := c.pool.Stats()
			ck := obs.HealthCheck{Status: obs.Healthy,
				Reason: fmt.Sprintf("occupancy %d/%d", st.Occupancy, capacity)}
			switch {
			case st.Occupancy >= capacity:
				ck.Status = obs.Unhealthy
			case st.Occupancy*10 >= capacity*9: // >= 90% full
				ck.Status = obs.Degraded
			}
			return ck
		})
	}
}
