package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"permchain/internal/network"
)

// TestWireCodecChainReplicates runs a full PBFT/OX cluster over the
// serialized transport: every consensus payload round-trips through the
// wire codec, and the ledgers must still replicate identically. The
// traffic counters prove bytes actually moved through frames.
func TestWireCodecChainReplicates(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 8, WireCodec: true})
	const k = 24
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("w%d", i), fmt.Sprintf("k%d", i%5), 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("nodes processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	stats := c.Network().StatsSnapshot()
	if stats.WireBytesOut == 0 || stats.WireBytesIn == 0 {
		t.Fatalf("wire mode moved no serialized bytes: out=%d in=%d", stats.WireBytesOut, stats.WireBytesIn)
	}
	if stats.ByCause[network.DropCodec] != 0 {
		t.Fatalf("%d payloads failed to encode/decode", stats.ByCause[network.DropCodec])
	}
}

// TestWireCodecAllProtocols runs every ordering protocol over the
// serialized transport: all six message vocabularies must survive
// encode/decode with identical resulting ledgers.
func TestWireCodecAllProtocols(t *testing.T) {
	for _, p := range []Protocol{PBFT, Raft, Paxos, Tendermint, HotStuff, IBFT} {
		p := p
		// Not parallel: six 4-node clusters at once starve each other's
		// consensus timers under the race detector on small machines.
		t.Run(p.String(), func(t *testing.T) {
			c := newChain(t, Config{Nodes: 4, Protocol: p, Arch: OX, BlockSize: 4, WireCodec: true})
			const k = 8
			for i := 0; i < k; i++ {
				if err := c.Submit(addTx(fmt.Sprintf("%s%d", p, i), "k", 1)); err != nil {
					t.Fatal(err)
				}
			}
			c.Flush()
			if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
				t.Fatalf("nodes processed %d/%d", c.Node(0).ProcessedTxs(), k)
			}
			if err := c.VerifyReplication(); err != nil {
				t.Fatal(err)
			}
			if n := c.Network().StatsSnapshot().ByCause[network.DropCodec]; n != 0 {
				t.Fatalf("%d codec drops", n)
			}
		})
	}
}

// TestWireCodecBatchedVotesReplicate exercises the pooled vote-batch
// slices: batching plus aggregate certificates over the serialized
// transport.
func TestWireCodecBatchedVotesReplicate(t *testing.T) {
	c := newChain(t, Config{Nodes: 4, Protocol: HotStuff, Arch: OX, BlockSize: 8,
		WireCodec: true, BatchVotes: true, AggregateVotes: true})
	const k = 16
	for i := 0; i < k; i++ {
		if err := c.Submit(addTx(fmt.Sprintf("wb%d", i), "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("nodes processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
}

// TestWireModeMismatchFailsFast is the mixed-mode acceptance test: a
// node configured for wire-codec transport attached to a struct-pointer
// network (and vice versa) must be rejected at construction with the
// typed error — never silently misdecode.
func TestWireModeMismatchFailsFast(t *testing.T) {
	_, err := New(Config{Nodes: 4, WireCodec: true, Net: network.New()})
	if !errors.Is(err, ErrWireModeMismatch) {
		t.Fatalf("wire node on struct-pointer net: got %v, want ErrWireModeMismatch", err)
	}
	_, err = New(Config{Nodes: 4, Net: network.New(network.WithWireCodec())})
	if !errors.Is(err, ErrWireModeMismatch) {
		t.Fatalf("struct-pointer node on wire net: got %v, want ErrWireModeMismatch", err)
	}
	// Matching modes on a supplied net are fine.
	c, err := New(Config{Nodes: 4, WireCodec: true, Net: network.New(network.WithWireCodec()), Timeout: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
}
