// Package core assembles the pieces of permchain into a runnable
// permissioned blockchain (Figure 1 of the tutorial): n identified nodes,
// each holding its own copy of the hash-chained ledger and world state,
// agree on the order of transaction batches through a pluggable consensus
// protocol (§2.2) and process them through a pluggable transaction
// architecture (§2.3.3).
//
// Consensus orders *batches*; every node then forms the block locally —
// height, parent hash, Merkle root — so each node's ledger is built from
// its own view and the Figure 1 property (all copies identical) is an
// emergent, testable invariant rather than an assumption.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"permchain/internal/arch"
	"permchain/internal/arch/ox"
	"permchain/internal/arch/oxii"
	"permchain/internal/arch/xov"
	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/ibft"
	"permchain/internal/consensus/paxos"
	"permchain/internal/consensus/pbft"
	"permchain/internal/consensus/raft"
	"permchain/internal/consensus/tendermint"
	"permchain/internal/crypto"
	"permchain/internal/ledger"
	"permchain/internal/mempool"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/statedb"
	"permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// Protocol selects the ordering protocol.
type Protocol int

// The supported ordering protocols.
const (
	PBFT Protocol = iota
	Raft
	Paxos
	Tendermint
	HotStuff
	IBFT
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case PBFT:
		return "pbft"
	case Raft:
		return "raft"
	case Paxos:
		return "paxos"
	case Tendermint:
		return "tendermint"
	case HotStuff:
		return "hotstuff"
	case IBFT:
		return "ibft"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Architecture selects the transaction-processing architecture (§2.3.3).
type Architecture int

// The supported architectures.
const (
	// OX is order-execute: sequential execution after consensus.
	OX Architecture = iota
	// OXII is order-parallel-execute: ParBlockchain dependency graphs.
	OXII
	// XOV is execute-order-validate: Fabric-style optimistic processing.
	XOV
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case OX:
		return "OX"
	case OXII:
		return "OXII"
	case XOV:
		return "XOV"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Config shapes a chain.
type Config struct {
	// Nodes is the replica count (default 4).
	Nodes int
	// Protocol is the ordering protocol (default PBFT).
	Protocol Protocol
	// Arch is the processing architecture (default OX).
	Arch Architecture
	// XOVOptions tunes the Fabric-family optimizations when Arch == XOV.
	XOVOptions xov.Options
	// BlockSize is the max transactions per block (default 64).
	BlockSize int
	// FlushEvery bounds how long a partial batch waits (default 20ms).
	FlushEvery time.Duration
	// Timeout is the consensus failure-detection timeout.
	Timeout time.Duration
	// WorkFactor models smart-contract execution cost per operation.
	WorkFactor int
	// Workers bounds parallel execution (OXII/XOV); 0 = GOMAXPROCS.
	Workers int
	// DisableSig turns off consensus message signatures.
	DisableSig bool
	// AggregateVotes switches the BFT vote phases to Schnorr quorum
	// certificates (internal/quorumcert): replicas send signature shares to
	// the leader/primary, which broadcasts one constant-size certificate per
	// phase instead of all-to-all counted votes. One Schnorr key set is
	// shared by every replica of the chain. Honored by PBFT and HotStuff;
	// other protocols ignore it.
	AggregateVotes bool
	// BatchVotes coalesces outbound vote traffic per destination through a
	// network.VoteBatcher (one envelope per peer per flush).
	BatchVotes bool
	// Net optionally supplies a transport (latency/loss injection).
	Net *network.Network
	// WireCodec runs the transport in serialized mode: every consensus
	// payload is encoded through the shared wire codec on send and
	// decoded on delivery (network.WithWireCodec), so benchmarks charge
	// real marshalling cost and per-message bytes are measurable. When
	// Net is supplied, its mode must agree — a wire-codec node cannot
	// interoperate with struct-pointer peers, and build fails fast with
	// ErrWireModeMismatch instead of letting frames silently misdecode.
	WireCodec bool
	// Stakes configures Tendermint voting power (optional).
	Stakes []int64
	// HistoryLimit retains up to this many historical versions per key on
	// every node's state, enabling provenance queries (0 disables).
	HistoryLimit int
	// Obs optionally attaches the observability layer: one registry and
	// tracer shared by every replica, engine, and the transport. Nil
	// disables instrumentation.
	Obs *obs.Obs
	// ApplyQueue bounds each node's apply queue — the buffer between
	// consensus intake and the executor stage of the commit pipeline.
	// When an executor stalls, intake blocks once the queue is full, so
	// decided-but-unapplied batches occupy bounded memory. Default 64.
	ApplyQueue int
	// InlineCommit reverts to the pre-pipeline commit path: every
	// decision is executed, appended, fsynced and snapshotted inline in
	// the consensus-decision loop, serializing the whole commit path per
	// node. Kept as the baseline arm of the E12 pipeline experiment.
	InlineCommit bool
	// Store attaches the durable storage engine: when non-nil, every node
	// persists its blocks to a segmented write-ahead log under
	// Store.Dir/node-<i> and (when Store.SnapshotEvery > 0) writes periodic
	// state snapshots. New requires the directory to hold no blocks; use
	// OpenChain to recover a crashed chain from disk.
	Store *store.Config
	// Sharding partitions the deployment horizontally: when non-nil, the
	// configuration describes a fleet of shard chains (each one a full
	// durable pipelined chain shaped by the rest of this Config) joined by
	// cross-shard two-phase commit. A sharded config must be built with
	// the sharded constructors (permchain.NewShardedChain /
	// shardcore.New); New and OpenChain reject it so a single chain can
	// never silently ignore the shard topology.
	Sharding *ShardingConfig
	// Mempool attaches the bounded admission layer in front of the
	// commit pipeline: submissions are deduplicated by digest, capped by
	// a hard capacity and per-client fair-share quotas (typed rejections
	// with retry-after hints instead of unbounded queueing), and handed
	// to consensus in batches formed by size or deadline. Unset fields
	// inherit the chain's shape: BatchSize from BlockSize, BatchDeadline
	// from FlushEvery, Obs from Config.Obs. Nil keeps the direct
	// unbounded submit path.
	Mempool *mempool.Config
}

// ShardingConfig nests the shard topology inside Config — one Config
// shape for single and sharded chains, instead of a parallel Options
// struct. The strategy names map to the §2.3.4 protocol implementations
// under internal/sharding.
type ShardingConfig struct {
	// Shards is the data-shard count (default 2).
	Shards int
	// Protocol names the cross-shard coordination strategy: "sharper"
	// (default; flattened consensus among the involved shards), "ahl"
	// (2PC through a dedicated reference chain), "saguaro" (2PC through a
	// tree-LCA coordinator shard), or "resilientdb" (single-ledger full
	// replication, no cross-shard concept).
	Protocol string
	// Fanout shapes the saguaro coordination tree (default 2).
	Fanout int
	// CrossTimeout bounds each cross-shard phase: lock acquisition and
	// every per-shard durable ordering round (default 10s).
	CrossTimeout time.Duration
	// LockTTL bounds how long an orphaned 2PL lock outlives its holder
	// before the lease lapses (default 2×CrossTimeout). In-doubt recovery
	// re-asserts leases for transactions it replays from the WAL, so
	// expiry only releases locks no one will resolve.
	LockTTL time.Duration
	// IntraShardLatency models each shard committee's internal link
	// latency (LAN-class); zero means instant in-process links.
	IntraShardLatency time.Duration
	// InterShardDelay models WAN latency for one message between two
	// shards; the reference chain (AHL) is addressed as shard id =
	// Shards. Nil means co-located shards.
	InterShardDelay func(a, b types.ShardID) time.Duration
}

// engine abstracts the per-node processing pipeline. process returns the
// per-transaction outcomes alongside the aggregate stats; statuses index
// by the transaction's position in txs even when the architecture
// reorders internally (XOV), so receipts can be settled per tx.
type engine interface {
	process(height uint64, txs []*types.Transaction) (arch.Stats, []arch.TxStatus)
	store() *statedb.Store
}

type oxEngine struct{ e *ox.Engine }

func (o oxEngine) process(h uint64, txs []*types.Transaction) (arch.Stats, []arch.TxStatus) {
	return o.e.ExecuteBlockStatus(types.NewBlock(h, types.ZeroHash, 0, txs))
}
func (o oxEngine) store() *statedb.Store { return o.e.Store() }

type oxiiEngine struct{ e *oxii.Engine }

func (o oxiiEngine) process(h uint64, txs []*types.Transaction) (arch.Stats, []arch.TxStatus) {
	return o.e.ExecuteBlockStatus(types.NewBlock(h, types.ZeroHash, 0, txs))
}
func (o oxiiEngine) store() *statedb.Store { return o.e.Store() }

type xovEngine struct{ e *xov.Engine }

func (o xovEngine) process(h uint64, txs []*types.Transaction) (arch.Stats, []arch.TxStatus) {
	return o.e.CommitBlockStatus(types.NewBlock(h, types.ZeroHash, 0, txs))
}
func (o xovEngine) store() *statedb.Store { return o.e.Store() }

// Node is one replica's full state: its consensus replica, ledger copy,
// world state, and processing engine.
type Node struct {
	ID      types.NodeID
	replica consensus.Replica
	chain   *ledger.Chain
	eng     engine
	disk    *store.Store // nil when the chain is not durable

	// The commit-pipeline stage channels, created by Start. Both are nil
	// under Config.InlineCommit; persistCh is also nil when disk is.
	applyCh   chan applyItem
	persistCh chan persistItem
	cw        *commitWaiter // the chain's shared watermark hub

	mu    sync.Mutex
	stats arch.Stats
	txs   int
}

// Chain returns this node's copy of the ledger.
func (n *Node) Chain() *ledger.Chain { return n.chain }

// Disk returns this node's durable block store, or nil when the chain was
// built without Config.Store.
func (n *Node) Disk() *store.Store { return n.disk }

// Store returns this node's world state.
func (n *Node) Store() *statedb.Store { return n.eng.store() }

// Stats returns this node's processing totals.
func (n *Node) Stats() arch.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ProcessedTxs returns how many transactions this node has processed.
func (n *Node) ProcessedTxs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.txs
}

// DurableHeight returns the highest block height the commit pipeline has
// persisted to this node's durable store — the watermark crash recovery
// is guaranteed to reach. Zero when the chain was built without
// Config.Store.
func (n *Node) DurableHeight() uint64 { return n.cw.durableHeight(int(n.ID)) }

// Chain is a running permissioned blockchain.
type Chain struct {
	cfg   Config
	net   *network.Network
	nodes []*Node

	cw       *commitWaiter
	receipts *receiptTable
	// pool is the admission layer (nil without Config.Mempool). When
	// set, submissions route through it and batches are formed by the
	// mempool drain loop instead of the direct batch+flush path.
	pool *mempool.Pool

	mu      sync.Mutex
	batch   []*types.Transaction
	started bool

	// stopMu orders submissions against shutdown: Submit and Flush hold
	// the read side, Stop flips stopping under the write side before the
	// pipeline is torn down, so no proposal can reach a replica that is
	// about to stop.
	stopMu   sync.RWMutex
	stopping bool

	stopCh   chan struct{}
	killCh   chan struct{} // closed by Crash: abandon queued work un-synced
	stopOnce sync.Once
	killOnce sync.Once
	wg       sync.WaitGroup

	// testExecGate, when non-nil, makes every executor take one token per
	// block before applying it — the hook the backpressure test uses to
	// stall the pipeline and watch the apply queue fill up.
	testExecGate chan struct{}
}

// ErrWireModeMismatch reports a node configured for serialized
// (wire-codec) transport attached to a network in struct-pointer mode,
// or vice versa. The two modes cannot interoperate — a struct-pointer
// payload would reach a wire-mode peer undecodable — so construction
// fails fast instead of risking silent misdecode. Test with errors.Is.
var ErrWireModeMismatch = errors.New("core: wire-codec mode mismatch between Config.WireCodec and Config.Net")

// batchMsg is what consensus orders.
type batchMsg struct {
	Txs []*types.Transaction
}

// batchCodec (wire tag 160) carries ordered batch proposals across a
// wire-mode transport.
var batchCodec = wire.Register[batchMsg](160, putBatchMsg, getBatchMsg)

func putBatchMsg(e *wire.Encoder, m *batchMsg) {
	e.U32(uint32(len(m.Txs)))
	for _, tx := range m.Txs {
		tx := tx
		wire.PutTx(e, &tx)
	}
}

func getBatchMsg(d *wire.Decoder, m *batchMsg) {
	n := d.Count(32)
	m.Txs = m.Txs[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var tx *types.Transaction
		wire.GetTx(d, &tx)
		m.Txs = append(m.Txs, tx)
	}
	if len(m.Txs) == 0 {
		m.Txs = nil
	}
}

func batchDigest(txs []*types.Transaction) types.Hash {
	parts := make([][]byte, 0, len(txs))
	for _, tx := range txs {
		h := tx.Hash()
		parts = append(parts, h[:])
	}
	return types.HashConcat(parts...)
}

// New assembles a chain. Call Start before submitting. When cfg.Store is
// set, the directory must hold no blocks yet — recovering existing durable
// state is OpenChain's job, and New refuses it rather than diverging the
// fresh in-memory ledger from what disk says is committed.
func New(cfg Config) (*Chain, error) { return build(cfg, false) }

// OpenChain assembles a chain that recovers from the durable state under
// cfg.Store.Dir: each node restores its newest usable state snapshot,
// loads every logged block into its ledger, and re-executes only the
// blocks after the snapshot. An empty directory yields a fresh chain, so
// OpenChain is also the idiomatic "open or create" entry point for
// durable deployments. Consensus replicas restart from a clean slate (a
// new view/term); the ledger keeps extending from the recovered height.
func OpenChain(cfg Config) (*Chain, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: OpenChain requires Config.Store")
	}
	return build(cfg, true)
}

func build(cfg Config, resume bool) (*Chain, error) {
	if cfg.Sharding != nil {
		return nil, errors.New("core: Config.Sharding is set; build the deployment with the sharded constructors (permchain.NewShardedChain)")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 20 * time.Millisecond
	}
	if cfg.ApplyQueue <= 0 {
		cfg.ApplyQueue = 64
	}
	if cfg.Net == nil {
		if cfg.WireCodec {
			cfg.Net = network.New(network.WithWireCodec())
		} else {
			cfg.Net = network.New()
		}
	} else if cfg.Net.WireEnabled() != cfg.WireCodec {
		return nil, fmt.Errorf("%w: Config.WireCodec=%v but the supplied network's wire mode is %v",
			ErrWireModeMismatch, cfg.WireCodec, cfg.Net.WireEnabled())
	}
	keys := crypto.NewKeyring(cfg.Nodes)
	ids := make([]types.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	if cfg.Obs != nil && cfg.Obs.Reg != nil {
		cfg.Net.SetRegistry(cfg.Obs.Reg)
	}
	if cfg.Obs != nil {
		// An Obs without a health tracker gets the default one, so any
		// instrumented chain can answer /healthz; callers that want custom
		// thresholds attach their own obs.NewHealth first.
		if cfg.Obs.Health == nil {
			cfg.Obs.Health = obs.NewHealth(obs.HealthConfig{})
		}
		cfg.Net.SetLogger(cfg.Obs.Logger("network"))
	}
	c := &Chain{
		cfg: cfg, net: cfg.Net,
		cw:       newCommitWaiter(cfg.Nodes),
		receipts: newReceiptTable(),
		stopCh:   make(chan struct{}),
		killCh:   make(chan struct{}),
	}
	if cfg.Mempool != nil {
		mcfg := *cfg.Mempool
		if mcfg.BatchSize <= 0 {
			mcfg.BatchSize = cfg.BlockSize
		}
		if mcfg.BatchDeadline <= 0 {
			mcfg.BatchDeadline = cfg.FlushEvery
		}
		if mcfg.Obs == nil {
			mcfg.Obs = cfg.Obs
		}
		c.pool = mempool.New(mcfg)
	}
	// Aggregate mode shares one Schnorr key set across the cluster rather
	// than letting each replica re-derive the deterministic set itself.
	var voteKeys *quorumcert.Keys
	if cfg.AggregateVotes && !cfg.DisableSig {
		voteKeys = quorumcert.NewKeys()
	}
	for i := range ids {
		ccfg := consensus.Config{
			Self: ids[i], Nodes: ids, Net: cfg.Net, Keys: keys,
			Timeout: cfg.Timeout, DisableSig: cfg.DisableSig,
			Obs:            cfg.Obs,
			AggregateVotes: cfg.AggregateVotes, VoteKeys: voteKeys,
			BatchVotes: cfg.BatchVotes,
		}
		var rep consensus.Replica
		switch cfg.Protocol {
		case PBFT:
			rep = pbft.New(ccfg)
		case Raft:
			rep = raft.New(ccfg)
		case Paxos:
			rep = paxos.New(ccfg)
		case Tendermint:
			rep = tendermint.New(tendermint.Config{Config: ccfg, Stakes: cfg.Stakes})
		case HotStuff:
			rep = hotstuff.New(ccfg)
		case IBFT:
			rep = ibft.New(ccfg)
		default:
			return nil, fmt.Errorf("core: unknown protocol %v", cfg.Protocol)
		}
		var st *statedb.Store
		if cfg.HistoryLimit > 0 {
			st = statedb.New(statedb.WithHistory(cfg.HistoryLimit))
		} else {
			st = statedb.New()
		}

		var disk *store.Store
		if cfg.Store != nil {
			scfg := *cfg.Store
			scfg.Dir = filepath.Join(cfg.Store.Dir, fmt.Sprintf("node-%d", i))
			if scfg.Obs == nil {
				scfg.Obs = cfg.Obs
			}
			ds, err := store.Open(scfg)
			if err != nil {
				c.closeDisks()
				return nil, fmt.Errorf("core: node %d store: %w", i, err)
			}
			if !resume && ds.Height() > 0 {
				ds.Close()
				c.closeDisks()
				return nil, fmt.Errorf("core: node %d store already holds %d blocks; use OpenChain to recover it", i, ds.Height())
			}
			disk = ds
		}

		var eng engine
		switch cfg.Arch {
		case OX:
			e := ox.New(st, cfg.WorkFactor)
			e.SetObs(cfg.Obs)
			eng = oxEngine{e}
		case OXII:
			e := oxii.New(st, cfg.WorkFactor, cfg.Workers)
			e.SetObs(cfg.Obs)
			eng = oxiiEngine{e}
		case XOV:
			e := xov.New(st, cfg.XOVOptions, cfg.WorkFactor, cfg.Workers)
			e.SetObs(cfg.Obs)
			eng = xovEngine{e}
		default:
			c.closeDisks()
			return nil, fmt.Errorf("core: unknown architecture %v", cfg.Arch)
		}

		n := &Node{ID: ids[i], replica: rep, chain: ledger.NewChain(), eng: eng, disk: disk, cw: c.cw}
		if resume && disk != nil && disk.Height() > 0 {
			if err := n.recoverFromDisk(st, cfg.Obs); err != nil {
				disk.Close()
				c.closeDisks()
				return nil, fmt.Errorf("core: node %d recovery: %w", i, err)
			}
		}
		c.nodes = append(c.nodes, n)
	}
	if resume {
		if err := c.catchUpNodes(); err != nil {
			c.closeDisks()
			return nil, err
		}
	}
	// Seed the watermarks with what recovery rebuilt, so Await(Height)
	// floors at or below the recovered height are already satisfied.
	// Replayed transactions stay out of the tx watermark, matching
	// ProcessedTxs.
	for i, n := range c.nodes {
		var dh uint64
		if n.disk != nil {
			dh = n.disk.Height()
		}
		c.cw.seed(i, n.chain.Height(), dh)
	}
	return c, nil
}

// catchUpNodes levels recovered nodes to the tallest verified ledger: a
// node that went down behind its peers recovers to a lower height, and
// without help its next block would fork the cluster. Because every
// node's store lives in this process, the missing suffix is replayed
// straight from the reference copy — the in-process analogue of the
// state transfer a distributed deployment would run.
func (c *Chain) catchUpNodes() error {
	var ref *Node
	for _, n := range c.nodes {
		if ref == nil || n.chain.Height() > ref.chain.Height() {
			ref = n
		}
	}
	if ref == nil || ref.chain.Height() == 0 {
		return nil
	}
	refBlocks := ref.chain.Blocks() // [0] is genesis; [h] is the block at height h
	for _, n := range c.nodes {
		h := n.chain.Height()
		if h == ref.chain.Height() {
			continue
		}
		// The shorter ledger must be a prefix of the reference one;
		// anything else is divergence, not lag.
		if n.chain.Head().Hash() != refBlocks[h].Hash() {
			return fmt.Errorf("%w: node %v ledger diverges from node %v at height %d",
				store.ErrCorrupt, n.ID, ref.ID, h)
		}
		for _, b := range refBlocks[h+1:] {
			n.eng.process(b.Header.Height, b.Txs)
			if err := n.chain.Append(b); err != nil {
				return fmt.Errorf("core: node %v catch-up: %w", n.ID, err)
			}
			if err := n.disk.AppendBlock(b); err != nil {
				return fmt.Errorf("core: node %v catch-up append: %w", n.ID, err)
			}
			c.cfg.Obs.Inc("store/catchup_blocks")
		}
	}
	return nil
}

// closeDisks releases any stores already opened by a failed build.
func (c *Chain) closeDisks() {
	for _, n := range c.nodes {
		if n.disk != nil {
			n.disk.Close()
		}
	}
}

// recoverFromDisk rebuilds this node's ledger and world state from its
// durable store: restore the newest usable snapshot into st, load every
// block into the in-memory chain (the hash-chain needs them all), and
// re-execute through the engine only the blocks the snapshot does not
// already cover. Replayed transactions do not count toward ProcessedTxs —
// they were counted in the incarnation that first processed them.
func (n *Node) recoverFromDisk(st *statedb.Store, o *obs.Obs) error {
	start := time.Now()
	var snapHeight uint64
	if ref, snap, ok, err := n.disk.LatestSnapshot(); err != nil {
		return err
	} else if ok {
		st.Restore(snap)
		if st.StateHash().Hex() != ref.StateHash {
			return fmt.Errorf("%w: snapshot at height %d restores to state %s, manifest says %s",
				store.ErrCorrupt, ref.Height, st.StateHash().Hex(), ref.StateHash)
		}
		snapHeight = ref.Height
	}
	blocks := make([]*types.Block, 0, n.disk.Height())
	if err := n.disk.ReplayBlocks(1, func(b *types.Block) error {
		blocks = append(blocks, b)
		return nil
	}); err != nil {
		return err
	}
	chain, err := ledger.NewChainFromBlocks(blocks)
	if err != nil {
		return err
	}
	if err := chain.Verify(); err != nil {
		return err
	}
	replayed := 0
	for _, b := range blocks {
		if b.Header.Height <= snapHeight {
			continue
		}
		n.eng.process(b.Header.Height, b.Txs)
		replayed++
	}
	n.chain = chain
	o.Add("store/loaded_blocks", int64(len(blocks)))
	o.Add("store/replayed_blocks", int64(replayed))
	o.Observe("store/recovery_duration", time.Since(start))
	return nil
}

// Start launches the replicas, the batching loop, and each node's commit
// pipeline (intake -> executor -> persister), or the single-stage inline
// loop under Config.InlineCommit.
func (c *Chain) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for _, n := range c.nodes {
		n.replica.Start()
	}
	for _, n := range c.nodes {
		if !c.cfg.InlineCommit {
			// Both channels must exist before either stage goroutine
			// starts: the executor reads n.persistCh on its first block.
			n.applyCh = make(chan applyItem, c.cfg.ApplyQueue)
			if n.disk != nil {
				n.persistCh = make(chan persistItem, c.cfg.ApplyQueue)
			}
			c.wg.Add(1)
			go c.executor(n)
			if n.persistCh != nil {
				c.wg.Add(1)
				go c.persister(n)
			}
		}
		c.wg.Add(1)
		go c.intake(n)
	}
	c.wg.Add(1)
	if c.pool != nil {
		go c.mempoolLoop()
	} else {
		go c.flushLoop()
	}
	c.registerHealthChecks()
}

// Stop shuts the chain down cleanly: the pipeline drains every decided
// batch it has already accepted, durable stores sync and close, and any
// receipt still unresolved fails with ErrStopped. Idempotent.
func (c *Chain) Stop() { c.shutdown(false) }

// Crash is the in-process stand-in for kill -9: queued-but-unapplied
// batches are abandoned, disks are dropped without a final sync (whatever
// the fsync policy already made durable is all recovery gets), and
// unresolved receipts fail with ErrStopped. The chain is unusable
// afterwards; reopen from the same directory with OpenChain.
func (c *Chain) Crash() { c.shutdown(true) }

func (c *Chain) shutdown(crash bool) {
	c.stopMu.Lock()
	c.stopping = true
	c.stopMu.Unlock()
	if crash {
		c.killOnce.Do(func() { close(c.killCh) })
	}
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
	for _, n := range c.nodes {
		n.replica.Stop()
	}
	if c.pool != nil {
		// Admission closes before the receipt sweep: anything still
		// pooled or inflight is orphaned below, exactly once.
		c.pool.Close()
	}
	c.receipts.failAll(ErrStopped, c.cfg.Obs)
	if crash {
		for _, n := range c.nodes {
			if n.disk != nil {
				n.disk.Kill()
			}
		}
		return
	}
	c.closeDisks()
}

// Metrics returns a point-in-time snapshot of the chain's metrics
// registry — counters, gauges, and histograms from every layer that
// shares Config.Obs. The zero Snapshot is returned when the chain was
// built without one.
func (c *Chain) Metrics() obs.Snapshot {
	if c.cfg.Obs == nil {
		return obs.Snapshot{}
	}
	return c.cfg.Obs.Reg.Snapshot()
}

// Nodes returns the chain's node handles.
func (c *Chain) Nodes() []*Node { return c.nodes }

// Node returns node i.
func (c *Chain) Node(i int) *Node { return c.nodes[i] }

// Network returns the chain's transport (for fault injection and stats).
func (c *Chain) Network() *network.Network { return c.net }

// ErrStopped is returned for submissions after Stop.
var ErrStopped = errors.New("core: chain stopped")

// Submit queues a transaction. Under XOV it is endorsed first (simulated
// against current state to produce its read/write sets); endorsement
// failures surface here, matching Fabric's client-visible behavior.
func (c *Chain) Submit(tx *types.Transaction) error {
	_, err := c.submit(tx, false)
	return err
}

// SubmitAsync queues a transaction and returns a Receipt that settles
// when its fate is known: Done closes once the transaction commits
// (durably, on a durable chain), is aborted by concurrency control, or is
// orphaned by Stop. Submission errors (endorsement failure, stopped
// chain) surface here, before a receipt exists.
func (c *Chain) SubmitAsync(tx *types.Transaction) (*Receipt, error) {
	return c.submit(tx, true)
}

func (c *Chain) submit(tx *types.Transaction, withReceipt bool) (*Receipt, error) {
	c.stopMu.RLock()
	if c.stopping {
		c.stopMu.RUnlock()
		return nil, ErrStopped
	}
	c.cfg.Obs.Mark(tx.Hash(), 0, obs.PhaseSubmit)
	if c.cfg.Arch == XOV {
		if e, ok := c.nodes[0].eng.(xovEngine); ok {
			if err := e.e.Endorse(tx); err != nil {
				c.stopMu.RUnlock()
				return nil, err
			}
		}
	}
	if c.pool != nil {
		// Admission-controlled path. The receipt registers inside the
		// admission decision, under the pool lock, so the commit path
		// can never settle the transaction before its receipt exists —
		// and a rejected transaction never issues one. A duplicate of a
		// pooled/inflight digest consumes no slot; its receipt attaches
		// to the pending commit (exactly-once handoff).
		var r *Receipt
		dup, err := c.pool.Admit(tx, func(bool) {
			if withReceipt {
				r = c.receipts.register(tx)
				c.cfg.Obs.Inc("core/receipts_issued")
			}
		})
		c.stopMu.RUnlock()
		if err != nil {
			if mempool.IsReject(err) {
				// Sheds land in the transport's per-cause loss
				// accounting so overload is distinguishable from
				// chaos-induced drops in the same snapshot.
				c.net.DropExternal(network.DropAdmission)
			}
			return nil, err
		}
		if !dup {
			// Duplicates attach to the pending commit and settle with it;
			// counting them would leave the health tracker's pending
			// estimate permanently above zero.
			c.cfg.Obs.NoteSubmit()
		}
		return r, nil
	}
	var r *Receipt
	if withReceipt {
		// Register before the batch can flush, so the commit path can
		// never settle the transaction between enqueue and registration.
		r = c.receipts.register(tx)
		c.cfg.Obs.Inc("core/receipts_issued")
	}
	c.cfg.Obs.NoteSubmit()
	c.mu.Lock()
	c.batch = append(c.batch, tx)
	full := len(c.batch) >= c.cfg.BlockSize
	c.mu.Unlock()
	c.stopMu.RUnlock()
	if full {
		c.Flush()
	}
	return r, nil
}

// Flush proposes any queued transactions immediately — on an
// admission-controlled chain it drains every pooled batch, partial
// last one included. Once the chain is stopping it is a no-op: the
// replicas may already be down, and proposing to a stopped replica was
// a shutdown race — queued transactions settle through the receipt
// table as stopped instead.
func (c *Chain) Flush() {
	if c.pool != nil {
		c.proposePooled(true)
		return
	}
	c.stopMu.RLock()
	defer c.stopMu.RUnlock()
	if c.stopping {
		return
	}
	c.mu.Lock()
	if len(c.batch) == 0 {
		c.mu.Unlock()
		return
	}
	txs := c.batch
	c.batch = nil
	c.mu.Unlock()
	c.nodes[0].replica.Submit(batchMsg{Txs: txs}, batchDigest(txs))
}

func (c *Chain) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.Flush()
		}
	}
}

// VerifyReplication checks the Figure 1 invariant: every node's ledger is
// internally consistent and identical to every other node's, and all
// world states agree.
func (c *Chain) VerifyReplication() error {
	ref := c.nodes[0]
	if err := ref.chain.Verify(); err != nil {
		return fmt.Errorf("node %v: %w", ref.ID, err)
	}
	refState := ref.Store().StateHash()
	for _, n := range c.nodes[1:] {
		if err := n.chain.Verify(); err != nil {
			return fmt.Errorf("node %v: %w", n.ID, err)
		}
		if !ref.chain.EqualTo(n.chain) {
			return fmt.Errorf("core: node %v ledger differs from node %v", n.ID, ref.ID)
		}
		if n.Store().StateHash() != refState {
			return fmt.Errorf("core: node %v state differs from node %v", n.ID, ref.ID)
		}
	}
	return nil
}
