package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	"permchain/internal/types"
)

// ErrAwaitTimeout is returned by Receipt.Wait when the timeout elapses
// before the transaction's fate is known.
var ErrAwaitTimeout = errors.New("core: await timed out")

// Receipt tracks one asynchronously submitted transaction through the
// commit pipeline. Done closes exactly once, when the fate is settled:
// committed at some height, aborted by concurrency control (XOV MVCC
// conflicts — no retry, no hang), failed by its own execution error, or
// orphaned because the chain stopped first. On a durable chain the
// receipt settles only after the block's durable append, so Done implies
// the commit survives a crash under the configured fsync policy.
type Receipt struct {
	txID string
	hash types.Hash
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	height  uint64
	status  arch.TxStatus
	err     error
	settled bool
	hooks   []func(*Receipt)
}

func newReceipt(tx *types.Transaction) *Receipt {
	return &Receipt{txID: tx.ID, hash: tx.Hash(), done: make(chan struct{})}
}

// TxID returns the submitted transaction's ID.
func (r *Receipt) TxID() string { return r.txID }

// TxHash returns the submitted transaction's hash.
func (r *Receipt) TxHash() types.Hash { return r.hash }

// Done returns the settlement channel; it is closed exactly once, when
// Height, Status and Err become valid.
func (r *Receipt) Done() <-chan struct{} { return r.done }

// Height returns the block height the transaction landed at; zero until
// Done closes, and zero if the chain stopped before it landed.
func (r *Receipt) Height() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.height
}

// Status returns the transaction's outcome; meaningful once Done closes.
func (r *Receipt) Status() arch.TxStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Aborted reports whether concurrency control aborted the transaction.
func (r *Receipt) Aborted() bool { return r.Status() == arch.TxAborted }

// Err returns why the receipt settled without an outcome — ErrStopped
// when the chain shut down first — or nil when the transaction ran.
func (r *Receipt) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Wait blocks until the receipt settles or the timeout elapses (a
// timeout <= 0 waits forever). It returns the receipt's error, or
// ErrAwaitTimeout if time ran out first.
func (r *Receipt) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		<-r.done
		return r.Err()
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.done:
		return r.Err()
	case <-t.C:
		return ErrAwaitTimeout
	}
}

// WaitContext blocks until the receipt settles or ctx is done. Like
// Wait, it returns the receipt's own error once settled; if the
// context ends first it returns ErrAwaitTimeout (wrapping ctx.Err(),
// so both errors.Is(err, ErrAwaitTimeout) and errors.Is(err,
// context.Canceled/DeadlineExceeded) match). A client blocked on a
// shed or orphaned transaction therefore always gets a typed error —
// it can never hang forever.
func (r *Receipt) WaitContext(ctx context.Context) error {
	select {
	case <-r.done:
		return r.Err()
	case <-ctx.Done():
		return &awaitTimeoutError{cause: ctx.Err()}
	}
}

// awaitTimeoutError ties a context's end to the typed ErrAwaitTimeout.
type awaitTimeoutError struct{ cause error }

func (e *awaitTimeoutError) Error() string { return ErrAwaitTimeout.Error() + ": " + e.cause.Error() }
func (e *awaitTimeoutError) Is(target error) bool {
	return target == ErrAwaitTimeout || errors.Is(e.cause, target)
}
func (e *awaitTimeoutError) Unwrap() error { return e.cause }

// OnSettle registers fn to run once the receipt settles; if it already
// has, fn runs inline. Hooks run on the settling goroutine (the commit
// pipeline's persister, for durable chains) and must not block — the
// sharded facade uses them to fold per-shard receipts into one spanning
// receipt without a waiting goroutine per shard.
func (r *Receipt) OnSettle(fn func(*Receipt)) {
	r.mu.Lock()
	if r.settled {
		r.mu.Unlock()
		fn(r)
		return
	}
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func (r *Receipt) resolve(height uint64, status arch.TxStatus) {
	r.once.Do(func() {
		r.mu.Lock()
		r.height = height
		r.status = status
		r.settled = true
		hooks := r.hooks
		r.hooks = nil
		r.mu.Unlock()
		close(r.done)
		for _, fn := range hooks {
			fn(r)
		}
	})
}

func (r *Receipt) fail(err error) {
	r.once.Do(func() {
		r.mu.Lock()
		r.status = arch.TxFailed
		r.err = err
		r.settled = true
		hooks := r.hooks
		r.hooks = nil
		r.mu.Unlock()
		close(r.done)
		for _, fn := range hooks {
			fn(r)
		}
	})
}

// receiptTable maps pending transaction hashes to their receipts. The
// commit path settles entries as node 0 commits blocks; Stop fails
// whatever is left so no receipt ever hangs.
type receiptTable struct {
	mu sync.Mutex
	m  map[types.Hash][]*Receipt
}

func newReceiptTable() *receiptTable {
	return &receiptTable{m: make(map[types.Hash][]*Receipt)}
}

func (t *receiptTable) register(tx *types.Transaction) *Receipt {
	r := newReceipt(tx)
	t.mu.Lock()
	t.m[r.hash] = append(t.m[r.hash], r)
	t.mu.Unlock()
	return r
}

// resolveBlock settles every pending receipt whose transaction landed in
// blk, using the per-tx outcomes the engine reported (indexed by block
// position).
func (t *receiptTable) resolveBlock(blk *types.Block, statuses []arch.TxStatus, o *obs.Obs) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, tx := range blk.Txs {
		h := tx.Hash()
		rs := t.m[h]
		if len(rs) == 0 {
			continue
		}
		status := arch.TxCommitted
		if i < len(statuses) {
			status = statuses[i]
		}
		for _, r := range rs {
			r.resolve(blk.Header.Height, status)
			o.Inc("core/receipts_resolved")
			if status == arch.TxAborted {
				o.Inc("core/receipts_aborted")
			}
		}
		delete(t.m, h)
	}
}

// failAll settles every still-pending receipt with err.
func (t *receiptTable) failAll(err error, o *obs.Obs) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for h, rs := range t.m {
		for _, r := range rs {
			r.fail(err)
			o.Inc("core/receipts_orphaned")
		}
		delete(t.m, h)
	}
}
