package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"permchain/internal/mempool"
	"permchain/internal/network"
	"permchain/internal/obs"
)

func TestMempoolChainCommitsAndReplicates(t *testing.T) {
	// The admission-controlled path end to end: submissions route
	// through the pool, the drain loop forms batches, commits release
	// capacity, and the Figure 1 invariant holds as it does on the
	// direct path.
	o := obs.New()
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4, Obs: o,
		Mempool: &mempool.Config{Capacity: 256}})
	const k = 40
	receipts := make([]*Receipt, 0, k)
	for i := 0; i < k; i++ {
		r, err := c.SubmitAsync(addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i%10), 1))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	c.Flush()
	if !c.Await(AwaitSpec{Txs: k, Timeout: 20 * time.Second}) {
		t.Fatalf("processed %d/%d", c.Node(0).ProcessedTxs(), k)
	}
	for i, r := range receipts {
		if err := r.Wait(10 * time.Second); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	st := c.Mempool().Stats()
	if st.Admitted != k || st.Occupancy != 0 {
		t.Fatalf("pool admitted %d (want %d), occupancy %d (want 0)", st.Admitted, k, st.Occupancy)
	}
	m := o.Reg.Snapshot()
	if m.Counters["mempool/admitted"] != k || m.Counters["mempool/batches"] == 0 {
		t.Fatalf("metrics: admitted=%d batches=%d", m.Counters["mempool/admitted"], m.Counters["mempool/batches"])
	}
}

func TestMempoolDedupSettlesBothReceiptsOnce(t *testing.T) {
	// Exactly-once handoff: an identical transaction submitted twice
	// while pending reaches consensus once — both receipts settle from
	// the same commit, and the state change applies a single time.
	c := newChain(t, Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 8,
		FlushEvery: time.Hour,
		Mempool:    &mempool.Config{Capacity: 64, BatchDeadline: time.Hour}})
	tx := addTx("dup", "ctr", 1)
	r1, err := c.SubmitAsync(tx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.SubmitAsync(addTx("dup", "ctr", 1)) // same digest, fresh struct
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()
	for i, r := range []*Receipt{r1, r2} {
		if err := r.Wait(10 * time.Second); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
	}
	if r1.Height() != r2.Height() {
		t.Fatalf("receipts settled at different heights: %d vs %d", r1.Height(), r2.Height())
	}
	if !c.Await(AwaitSpec{Txs: 1, Timeout: 10 * time.Second}) {
		t.Fatal("tx not applied everywhere")
	}
	if got := c.Node(0).Store().GetInt("ctr"); got != 1 {
		t.Fatalf("ctr = %d, want 1 (duplicate was applied)", got)
	}
	if st := c.Mempool().Stats(); st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
}

func TestMempoolShedsTypedWithRetryAfterAndAccounting(t *testing.T) {
	// Fill a pool that can never drain (huge batch deadline, batch size
	// above capacity): admissions past capacity fast-fail with the
	// typed *RejectError carrying a retry-after hint, the shed lands in
	// the transport's per-cause loss accounting, no receipt is issued
	// for a shed, and Stop orphans the pooled remainder exactly once.
	const capacity = 8
	o := obs.New()
	net := network.New()
	cfg := Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 4, Obs: o, Net: net,
		FlushEvery: time.Hour, Timeout: 400 * time.Millisecond,
		Mempool: &mempool.Config{
			Capacity: capacity, BatchSize: capacity + 1, BatchDeadline: time.Hour}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	receipts := make([]*Receipt, 0, capacity)
	for i := 0; i < capacity; i++ {
		r, err := c.SubmitAsync(addTx(fmt.Sprintf("t%d", i), "k", 1))
		if err != nil {
			t.Fatalf("tx %d within capacity rejected: %v", i, err)
		}
		receipts = append(receipts, r)
	}
	for i := 0; i < 3; i++ {
		_, err := c.SubmitAsync(addTx(fmt.Sprintf("over%d", i), "k", 1))
		if !errors.Is(err, mempool.ErrMempoolFull) {
			t.Fatalf("over-capacity submit %d: err %v, want ErrMempoolFull", i, err)
		}
		var rej *mempool.RejectError
		if !errors.As(err, &rej) || rej.RetryAfter <= 0 {
			t.Fatalf("shed %d lacks retry-after hint: %#v", i, err)
		}
	}
	if got := net.StatsSnapshot().ByCause[network.DropAdmission]; got != 3 {
		t.Fatalf("admission drops in network accounting = %d, want 3", got)
	}
	if st := c.Mempool().Stats(); st.MaxOccupancy != capacity || st.RejectedFull != 3 {
		t.Fatalf("pool stats: max occupancy %d (want %d), rejected full %d (want 3)",
			st.MaxOccupancy, capacity, st.RejectedFull)
	}
	c.Stop()
	for i, r := range receipts {
		if !errors.Is(r.Wait(0), ErrStopped) {
			t.Fatalf("pooled receipt %d: err %v, want ErrStopped", i, r.Err())
		}
	}
	m := o.Reg.Snapshot()
	issued := m.Counters["core/receipts_issued"]
	settled := m.Counters["core/receipts_resolved"] + m.Counters["core/receipts_orphaned"]
	if issued != capacity || settled != issued {
		t.Fatalf("issued %d settled %d, want %d each (sheds must not issue receipts)",
			issued, settled, capacity)
	}
}

func TestSubmitDuringStopTimeoutInteraction(t *testing.T) {
	// The Submit-during-Stop × timeout interaction on the admission
	// path: submitters race Stop with bounded Waits. Every receipt a
	// successful submission returned must settle within its deadline —
	// committed, or typed ErrStopped — and never with ErrAwaitTimeout,
	// because Stop's orphan sweep settles everything the pool held.
	c, err := New(Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 2,
		Timeout: 400 * time.Millisecond,
		Mempool: &mempool.Config{Capacity: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				r, err := c.SubmitAsync(addTx(fmt.Sprintf("g%d-%d", g, i), "k", 1))
				if err != nil {
					if !errors.Is(err, ErrStopped) && !mempool.IsReject(err) {
						errs <- fmt.Errorf("submit: %w", err)
					}
					if errors.Is(err, ErrStopped) {
						return
					}
					continue
				}
				// The bounded wait is the satellite's contract: a
				// settled-or-typed-error answer within the deadline.
				if werr := r.Wait(20 * time.Second); werr != nil &&
					!errors.Is(werr, ErrStopped) {
					errs <- fmt.Errorf("wait: %w", werr)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	c.Stop()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// And the timeout side of the interaction: a wait that cannot be
	// satisfied returns typed ErrAwaitTimeout promptly, on both the
	// duration and the context form.
	if err := c.AwaitErr(AwaitSpec{Txs: 1 << 30, Timeout: 20 * time.Millisecond}); !errors.Is(err, ErrAwaitTimeout) {
		t.Fatalf("AwaitErr on unreachable floor: %v, want ErrAwaitTimeout", err)
	}
}

func TestReceiptWaitContextTyped(t *testing.T) {
	// WaitContext on an unsettled receipt: context expiry surfaces as
	// the typed ErrAwaitTimeout and also matches the context cause.
	c, err := New(Config{Nodes: 4, Protocol: PBFT, Arch: OX, BlockSize: 1024,
		FlushEvery: time.Hour, Timeout: 400 * time.Millisecond,
		Mempool: &mempool.Config{Capacity: 16, BatchSize: 17, BatchDeadline: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	r, err := c.SubmitAsync(addTx("stuck", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	werr := r.WaitContext(ctx)
	if !errors.Is(werr, ErrAwaitTimeout) {
		t.Fatalf("WaitContext: %v, want ErrAwaitTimeout", werr)
	}
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("WaitContext: %v should also match context.DeadlineExceeded", werr)
	}
	c.Stop()
	// After Stop the same receipt settles; WaitContext now reports the
	// settle error, not the context.
	if err := r.WaitContext(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-stop WaitContext: %v, want ErrStopped", err)
	}
}
