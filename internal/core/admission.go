package core

import (
	"time"

	"permchain/internal/mempool"
)

// The admission-controlled submit path (Config.Mempool):
//
//	clients -> pool.Admit -> [bounded pool] -> mempoolLoop -> consensus
//
// Admission sheds overload at the front door with typed errors and
// retry-after hints; the drain loop below forms batches by size (the
// pool's Ready signal) or time (the deadline ticker) and hands them to
// node 0's replica, feeding the same intake stage the direct path
// uses. Commits call pool.Release via settleBlock, which re-opens
// capacity — so the pool's occupancy is the end-to-end backpressure
// signal: a slow commit pipeline keeps occupancy high and admission
// sheds harder, instead of letting queues and latency grow without
// bound.

// Mempool returns the chain's admission pool, or nil when the chain
// was built without Config.Mempool.
func (c *Chain) Mempool() *mempool.Pool { return c.pool }

// mempoolLoop is the batch-formation driver: it wakes when a full
// batch is pooled (Ready) or a deadline passes (partial batches must
// not wait forever), and proposes what is there.
func (c *Chain) mempoolLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.pool.Config().BatchDeadline)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.pool.Ready():
			c.proposePooled(false)
		case <-t.C:
			c.proposePooled(false)
		}
	}
}

// proposePooled forms batches from the pool and hands them to
// consensus. With drain=false it keeps proposing while full batches
// remain but leaves a trailing partial batch to its deadline; Flush
// passes drain=true to empty the pool. Proposing stops once the chain
// is stopping — whatever was popped but not proposed settles through
// the receipt table as stopped, like every other in-flight orphan.
func (c *Chain) proposePooled(drain bool) {
	for {
		c.stopMu.RLock()
		if c.stopping {
			c.stopMu.RUnlock()
			return
		}
		batch := c.pool.NextBatch(c.cfg.BlockSize)
		if len(batch) == 0 {
			c.stopMu.RUnlock()
			return
		}
		c.nodes[0].replica.Submit(batchMsg{Txs: batch}, batchDigest(batch))
		c.stopMu.RUnlock()
		if !drain && len(batch) < c.cfg.BlockSize {
			return
		}
	}
}
