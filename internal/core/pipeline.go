package core

import (
	"fmt"
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// The commit pipeline splits the old single-loop drainNode into three
// stages per node, connected by bounded channels:
//
//	consensus decisions -> intake -> applyCh -> executor -> persistCh -> persister
//
// intake only classifies and enqueues, so the consensus decision stream
// for height h+1 is never serialized behind execution of height h. The
// executor runs the CPU-bound part (execute against world state, append
// to the in-memory ledger) and captures point-in-time state checkpoints;
// the persister runs the IO-bound part (durable append under the fsync
// policy, handing checkpoints to the store's async snapshot writer). A
// block's execution therefore overlaps the previous block's fsync, and
// checkpoint serialization leaves the commit path entirely.
//
// Shutdown semantics: Stop closes stopCh; intake exits and closes
// applyCh, the executor drains what was already accepted and closes
// persistCh, the persister drains, so nothing decided-and-queued is lost
// on a clean stop. Crash closes killCh as well: every stage abandons its
// queue immediately, modeling a process kill.

// applyItem is one decided batch waiting for the executor.
type applyItem struct {
	seq uint64
	txs []*types.Transaction
}

// persistItem is one applied block waiting for the persister, together
// with the per-tx outcomes (to settle receipts once durable) and, when a
// checkpoint came due at this height, the copy-on-write state capture to
// materialize and write.
type persistItem struct {
	blk      *types.Block
	statuses []arch.TxStatus
	snapCap  *statedb.Capture
	hash     types.Hash
}

// intake is the decision-intake stage: it turns each consensus decision
// into an apply-queue item and returns to the decision channel as fast
// as possible. The queue is bounded (Config.ApplyQueue); when the
// executor falls behind, intake blocks here and backpressure reaches the
// decision channel instead of unbounded memory. Under Config.InlineCommit
// it degenerates to the old single-stage loop: apply and persist right
// here, synchronously.
func (c *Chain) intake(n *Node) {
	defer c.wg.Done()
	if n.applyCh != nil {
		defer close(n.applyCh)
	}
	decs := n.replica.Decisions()
	for {
		select {
		case <-c.stopCh:
			return
		case d := <-decs:
			b, ok := d.Value.(batchMsg)
			if !ok {
				continue
			}
			if c.cfg.InlineCommit {
				it := c.applyDecision(n, d.Seq, b.Txs)
				if n.disk != nil {
					c.persistBlock(n, it)
				}
				continue
			}
			select {
			case n.applyCh <- applyItem{seq: d.Seq, txs: b.Txs}:
				c.cfg.Obs.AddGauge("core/apply_queue_depth", 1)
				// The histogram's Max is the queue's high-water mark —
				// the bounded-depth witness E14 asserts on.
				c.cfg.Obs.ObserveInt("core/apply_queue_len", int64(len(n.applyCh)))
			case <-c.stopCh:
				return
			}
		}
	}
}

// executor drains this node's apply queue: execute the batch, append the
// block to the in-memory ledger, capture a state checkpoint when one is
// due, and hand the block to the persister. Execution of height h+1
// starts as soon as h is applied — it overlaps h's durable append.
func (c *Chain) executor(n *Node) {
	defer c.wg.Done()
	if n.persistCh != nil {
		defer close(n.persistCh)
	}
	for {
		select {
		case <-c.killCh:
			return
		case item, ok := <-n.applyCh:
			if !ok {
				return
			}
			c.cfg.Obs.AddGauge("core/apply_queue_depth", -1)
			if gate := c.testExecGate; gate != nil {
				select {
				case <-gate:
				case <-c.killCh:
					return
				}
			}
			it := c.applyDecision(n, item.seq, item.txs)
			if n.persistCh == nil {
				continue
			}
			select {
			case n.persistCh <- it:
			case <-c.killCh:
				return
			}
		}
	}
}

// persister drains the executor's output: durable-append each block under
// the store's fsync policy and kick off any due checkpoint. This is the
// only stage that touches disk on the commit path.
func (c *Chain) persister(n *Node) {
	defer c.wg.Done()
	for {
		select {
		case <-c.killCh:
			return
		case it, ok := <-n.persistCh:
			if !ok {
				return
			}
			c.persistBlock(n, it)
		}
	}
}

// applyDecision forms and applies the block for one decided batch: the
// execute + in-memory-append half of the commit path, shared by the
// pipelined executor and the inline loop. It advances the node's applied
// watermark and, on non-durable chains, settles receipts (there is no
// later stage to wait for).
func (c *Chain) applyDecision(n *Node, seq uint64, txs []*types.Transaction) persistItem {
	head := n.chain.Head()
	height := head.Header.Height + 1
	t0 := time.Now()
	st, statuses := n.eng.process(height, txs)
	c.cfg.Obs.Observe("core/execute", time.Since(t0))
	// The proposer field must be identical on every node for the
	// ledgers to match; derive it from the decided slot.
	proposer := types.NodeID(int(seq % uint64(len(c.nodes))))
	blk := types.NewBlock(height, head.Hash(), proposer, txs)
	t1 := time.Now()
	if err := n.chain.Append(blk); err != nil {
		// A node that cannot extend its own chain is a bug.
		panic(fmt.Sprintf("core: node %v append: %v", n.ID, err))
	}
	c.cfg.Obs.Observe("core/append", time.Since(t1))
	if n.disk != nil && n.disk.SnapshotInFlight() {
		// Deterministic witness that checkpointing left the critical
		// path: the inline loop can never apply a block while a snapshot
		// is being written, so this stays zero there by construction.
		c.cfg.Obs.Inc("core/applied_during_snapshot")
	}
	it := persistItem{blk: blk, statuses: statuses}
	if n.disk != nil {
		if se := c.cfg.Store.SnapshotEvery; se > 0 && height%se == 0 {
			// The capture must happen here, between executing h and h+1: a
			// copy-on-write freeze the persister can materialize while the
			// executor keeps mutating live state. Only the freeze (brief
			// per-shard lock) and the incremental state hash (dirty buckets
			// only) stay on the executor's path; the O(n) snapshot copy
			// moves to the persister.
			stdb := n.Store()
			it.snapCap = stdb.Capture()
			it.hash = stdb.StateHash()
		}
	}
	// Node 0 stamps the end of each transaction's lifecycle; one node
	// suffices since the span tracer is cluster-wide and
	// earliest-mark-wins would otherwise record the fastest replica.
	if n.ID == 0 {
		c.cfg.Obs.NoteCommit(height, len(txs))
		c.cfg.Obs.Add("core/committed_txs", int64(len(txs)))
		for _, tx := range txs {
			c.cfg.Obs.MarkLatency("core/submit_to_apply", tx.Hash(), seq, obs.PhaseSubmit, obs.PhaseApply)
		}
	}
	n.mu.Lock()
	n.stats.Add(st)
	n.txs += len(txs)
	n.mu.Unlock()
	c.cw.advanceApplied(int(n.ID), len(txs), height)
	if n.disk == nil && n.ID == 0 {
		c.settleBlock(blk, statuses)
	}
	return it
}

// settleBlock is the node-0 commit notification: release the block's
// digests from the admission pool (re-opening capacity and advancing
// the drain-rate estimate), then resolve its receipts. Release runs
// first so a resubmission racing the commit either attaches to the
// still-pending entry — and is resolved right here — or finds the
// entry gone and is admitted as a fresh transaction; it can never
// register a receipt that no commit will settle.
func (c *Chain) settleBlock(blk *types.Block, statuses []arch.TxStatus) {
	if c.pool != nil {
		c.pool.Release(blk.Txs)
	}
	c.receipts.resolveBlock(blk, statuses, c.cfg.Obs)
}

// persistBlock is the durable half of the commit path, shared by the
// pipelined persister and the inline loop: append the block to the
// node's store, write any due checkpoint (async when pipelined,
// synchronous inline), advance the durable watermark, and settle
// receipts — a receipt on a durable chain only fires once its block
// would survive a crash.
func (c *Chain) persistBlock(n *Node, it persistItem) {
	t0 := time.Now()
	if err := n.disk.AppendBlock(it.blk); err != nil {
		panic(fmt.Sprintf("core: node %v durable append: %v", n.ID, err))
	}
	c.cfg.Obs.Observe("core/fsync", time.Since(t0))
	if it.snapCap != nil {
		snap := it.snapCap.Materialize()
		if c.cfg.InlineCommit {
			if err := n.disk.WriteSnapshot(it.blk.Header.Height, snap, it.hash); err != nil {
				panic(fmt.Sprintf("core: node %v snapshot: %v", n.ID, err))
			}
		} else {
			n.disk.WriteSnapshotAsync(it.blk.Header.Height, snap, it.hash)
		}
	}
	c.cw.advanceDurable(int(n.ID), it.blk.Header.Height)
	if n.ID == 0 {
		c.settleBlock(it.blk, it.statuses)
	}
}
