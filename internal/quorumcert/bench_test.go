package quorumcert

import (
	"testing"

	"permchain/internal/types"
)

// benchSetup pre-signs threshold partials for an n-member cluster.
func benchSetup(n int) (*Keys, []types.NodeID, int, []Partial, Statement) {
	k := NewKeys()
	ids := members(n)
	threshold := 2*((n-1)/3) + 1
	st := Statement{Domain: "bench/vote", View: 1, Seq: 1, Digest: types.HashBytes([]byte("bench"))}
	parts := make([]Partial, threshold)
	for i := range parts {
		parts[i] = k.Sign(ids[i], st)
	}
	return k, ids, threshold, parts, st
}

// BenchmarkAggregate measures folding a full quorum of partials (each
// individually verified) into a certificate, at n=64 (threshold 43).
func BenchmarkAggregate(b *testing.B) {
	k, ids, threshold, parts, st := benchSetup(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := NewAggregator(k, ids, threshold, st)
		for _, p := range parts {
			if _, err := agg.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Cert(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyCert measures the single-equation certificate check at
// n=64: two exponentiations plus ~threshold modular multiplications,
// independent of the signer count in signature terms.
func BenchmarkVerifyCert(b *testing.B) {
	k, ids, threshold, parts, st := benchSetup(64)
	agg := NewAggregator(k, ids, threshold, st)
	for _, p := range parts {
		if _, err := agg.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	cert, err := agg.Cert()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cert.Verify(k, ids, threshold); err != nil {
			b.Fatal(err)
		}
	}
}
