// Package quorumcert turns per-replica votes into constant-size quorum
// certificates. Each replica signs a (domain, view, seq, digest) statement
// with a Schnorr signature over the shared crypto.Group; an Aggregator folds
// k partial signatures plus a signer bitmap into a QuorumCert whose
// signature component is one (R, S) pair regardless of k, verifiable with a
// single group equation against the aggregate public key of the bitmap's
// members. This is the CoSi-style collective-signing shape (dedis/cothority
// bftcosi): O(1) certificate bytes and O(1) exponentiations per verification
// instead of O(n) individual signature checks.
//
// Scheme. All signers share a statement-derived challenge
//
//	c = H(domain, SHA-256(statement)) mod Q
//
// and each signer i produces a partial (R_i = G^k_i, s_i = k_i + c·x_i mod Q)
// with a deterministic per-statement nonce k_i = H(x_i, statement) mod Q.
// Every partial is individually verifiable (G^s_i == R_i · P_i^c), so the
// aggregator rejects garbage, wrong-statement, and wrong-signer partials
// before folding. The certificate is (R = Π R_i, S = Σ s_i, bitmap) and
// verifies as
//
//	G^S == R · (Π_{i∈bitmap} P_i)^c.
//
// Documented simplification (see DESIGN.md "Vote aggregation"): because the
// challenge is derived from the statement alone, it does not bind the
// aggregate nonce R — binding it requires the interactive
// commitment/challenge rounds of CoSi (bftcosi runs two such rounds per
// decision). The in-process simulation elides that round trip the same way
// it elides real key distribution: the network layer cannot forge message
// provenance and the modeled faults do not do group algebra, so the scheme
// is sound within the fault model while preserving the properties the
// experiments measure — constant certificate size and single-equation
// verification.
//
// Key material is derived deterministically per node ID, mirroring
// crypto.Keyring: a deployment would provision real keys; the simulation
// derives them so every replica independently agrees on the key set.
package quorumcert

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"permchain/internal/crypto"
	"permchain/internal/types"
)

// challengeDomain separates quorum-certificate challenges from every other
// use of crypto.Group.Challenge in the repo.
const challengeDomain = "permchain/quorumcert/v1"

// Statement is the value a vote signs: a protocol phase plus the consensus
// coordinates it refers to. Protocols that have no sequence dimension
// (HotStuff votes identify a block by hash alone) leave Seq zero.
type Statement struct {
	Domain string // protocol phase, e.g. "pbft/prepare" or "hs/vote"
	View   uint64
	Seq    uint64
	Digest types.Hash
}

// Bytes returns an unambiguous encoding: length-prefixed domain, then
// fixed-width view, seq, and digest. No two distinct statements share an
// encoding.
func (s Statement) Bytes() []byte {
	b := make([]byte, 0, 2+len(s.Domain)+8+8+len(s.Digest))
	b = append(b, byte(len(s.Domain)>>8), byte(len(s.Domain)))
	b = append(b, s.Domain...)
	b = appendU64(b, s.View)
	b = appendU64(b, s.Seq)
	b = append(b, s.Digest[:]...)
	return b
}

func appendU64(b []byte, v uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// Partial is one replica's signature share on a statement. R and S are nil
// when the key set runs in unsigned mode (the consensus DisableSig analogue),
// in which case the certificate degenerates to a counted signer bitmap.
type Partial struct {
	Signer types.NodeID
	R      *big.Int
	S      *big.Int
}

// Keys holds the Schnorr keypairs for a cluster over the shared group.
// Provisioning is lazy and deterministic: the first use of a node ID derives
// its scalar from a fixed seed, so independently constructed Keys agree. A
// nil *Keys is the unsigned mode: Sign returns an empty partial and every
// verification degrades to bitmap/threshold checks only.
type Keys struct {
	g    *crypto.Group
	mu   sync.RWMutex
	priv map[types.NodeID]*big.Int
	pub  map[types.NodeID]*big.Int
}

// NewKeys returns an empty key set over the default group.
func NewKeys() *Keys {
	return &Keys{
		g:    crypto.DefaultGroup(),
		priv: make(map[types.NodeID]*big.Int),
		pub:  make(map[types.NodeID]*big.Int),
	}
}

// key derives (and caches) the keypair for id.
func (k *Keys) key(id types.NodeID) (x, pub *big.Int) {
	k.mu.RLock()
	x, pub = k.priv[id], k.pub[id]
	k.mu.RUnlock()
	if x != nil {
		return x, pub
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if x = k.priv[id]; x != nil {
		return x, k.pub[id]
	}
	seed := sha256.Sum256([]byte(fmt.Sprintf("permchain-vote-key-%d", id)))
	x = new(big.Int).Mod(new(big.Int).SetBytes(seed[:]), k.g.Q)
	pub = k.g.Exp(k.g.G, x)
	k.priv[id] = x
	k.pub[id] = pub
	return x, pub
}

// Public returns the public key for id.
func (k *Keys) Public(id types.NodeID) *big.Int {
	_, pub := k.key(id)
	return pub
}

// challenge computes the statement-bound common challenge.
func (k *Keys) challenge(st Statement) *big.Int {
	h := sha256.Sum256(st.Bytes())
	return k.g.Challenge(challengeDomain, new(big.Int).SetBytes(h[:]))
}

// Sign produces id's partial signature on st. On a nil receiver it returns
// an unsigned partial carrying only the signer identity.
func (k *Keys) Sign(id types.NodeID, st Statement) Partial {
	if k == nil {
		return Partial{Signer: id}
	}
	x, _ := k.key(id)
	msg := st.Bytes()
	nb := sha256.Sum256(append(append([]byte("permchain-vote-nonce"), x.Bytes()...), msg...))
	nonce := new(big.Int).Mod(new(big.Int).SetBytes(nb[:]), k.g.Q)
	r := k.g.Exp(k.g.G, nonce)
	c := k.challenge(st)
	s := new(big.Int).Mod(new(big.Int).Add(nonce, new(big.Int).Mul(c, x)), k.g.Q)
	return Partial{Signer: id, R: r, S: s}
}

// VerifyPartial reports whether p is a valid signature share on st by
// p.Signer: G^s == R · P^c. Nil receivers accept everything (unsigned mode).
func (k *Keys) VerifyPartial(p Partial, st Statement) bool {
	if k == nil {
		return true
	}
	if p.R == nil || p.S == nil || p.S.Sign() < 0 || p.S.Cmp(k.g.Q) >= 0 || !k.g.InSubgroup(p.R) {
		return false
	}
	_, pub := k.key(p.Signer)
	c := k.challenge(st)
	lhs := k.g.Exp(k.g.G, p.S)
	rhs := k.g.Mul(p.R, k.g.Exp(pub, c))
	return lhs.Cmp(rhs) == 0
}

// Aggregation errors. Aggregator.Add and QuorumCert.Verify return these so
// callers (and tests) can distinguish rejection causes.
var (
	ErrNotMember  = errors.New("quorumcert: signer is not a member")
	ErrDuplicate  = errors.New("quorumcert: duplicate partial from signer")
	ErrBadPartial = errors.New("quorumcert: partial failed verification")
	ErrNoQuorum   = errors.New("quorumcert: signer count below threshold")
	ErrBadCert    = errors.New("quorumcert: certificate failed verification")
)

// Aggregator folds partial signatures on one statement into a QuorumCert.
// It is not safe for concurrent use; each consensus event loop owns its
// aggregators.
type Aggregator struct {
	keys      *Keys
	st        Statement
	members   []types.NodeID
	index     map[types.NodeID]int
	threshold int
	bitmap    []uint64
	count     int
	r, s      *big.Int
}

// NewAggregator prepares aggregation over members (the cluster membership,
// in canonical order — all replicas must use the same order) with the given
// signer threshold. keys may be nil for unsigned mode.
func NewAggregator(keys *Keys, members []types.NodeID, threshold int, st Statement) *Aggregator {
	idx := make(map[types.NodeID]int, len(members))
	for i, id := range members {
		idx[id] = i
	}
	return &Aggregator{
		keys:      keys,
		st:        st,
		members:   members,
		index:     idx,
		threshold: threshold,
		bitmap:    make([]uint64, bitmapWords(len(members))),
	}
}

// Statement returns the statement being aggregated.
func (a *Aggregator) Statement() Statement { return a.st }

// Count returns the number of accepted partials.
func (a *Aggregator) Count() int { return a.count }

// Complete reports whether the threshold has been reached.
func (a *Aggregator) Complete() bool { return a.count >= a.threshold }

// Add verifies and folds one partial. It returns the accepted-partial count
// after the add, or an error describing why the partial was rejected
// (non-member, duplicate, malformed/invalid signature).
func (a *Aggregator) Add(p Partial) (int, error) {
	i, ok := a.index[p.Signer]
	if !ok {
		return a.count, ErrNotMember
	}
	if getBit(a.bitmap, i) {
		return a.count, ErrDuplicate
	}
	if a.keys != nil {
		if !a.keys.VerifyPartial(p, a.st) {
			return a.count, ErrBadPartial
		}
		if a.r == nil {
			a.r, a.s = new(big.Int).Set(p.R), new(big.Int).Set(p.S)
		} else {
			a.r = a.keys.g.Mul(a.r, p.R)
			a.s = new(big.Int).Mod(new(big.Int).Add(a.s, p.S), a.keys.g.Q)
		}
	}
	setBit(a.bitmap, i)
	a.count++
	return a.count, nil
}

// Cert emits the quorum certificate once the threshold is met.
func (a *Aggregator) Cert() (*QuorumCert, error) {
	if a.count < a.threshold {
		return nil, ErrNoQuorum
	}
	qc := &QuorumCert{Statement: a.st, Bitmap: append([]uint64(nil), a.bitmap...)}
	if a.r != nil {
		qc.R = new(big.Int).Set(a.r)
		qc.S = new(big.Int).Set(a.s)
	}
	return qc, nil
}

// QuorumCert is a constant-size proof that a threshold of members signed
// Statement: one aggregate (R, S) pair plus a signer bitmap indexed by
// position in the membership list. R and S are nil in unsigned mode.
type QuorumCert struct {
	Statement Statement
	Bitmap    []uint64
	R         *big.Int
	S         *big.Int
}

// SignerCount returns the number of signers recorded in the bitmap.
func (q *QuorumCert) SignerCount() int {
	n := 0
	for _, w := range q.Bitmap {
		n += bits.OnesCount64(w)
	}
	return n
}

// Signers resolves the bitmap against the membership list.
func (q *QuorumCert) Signers(members []types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, q.SignerCount())
	for i, id := range members {
		if i/64 < len(q.Bitmap) && getBit(q.Bitmap, i) {
			out = append(out, id)
		}
	}
	return out
}

// Verify checks the certificate against the membership list and threshold:
// bitmap shape (exactly the membership's width, no stray bits), signer count
// >= threshold, and — when keys is non-nil — the single aggregate equation
// G^S == R · (Π_{i∈bitmap} P_i)^c.
func (q *QuorumCert) Verify(keys *Keys, members []types.NodeID, threshold int) error {
	if len(q.Bitmap) != bitmapWords(len(members)) {
		return ErrBadCert
	}
	// Reject bits beyond the membership: a padded bitmap must be zero there.
	if rem := len(members) % 64; rem != 0 {
		if q.Bitmap[len(q.Bitmap)-1]&^(uint64(1)<<rem-1) != 0 {
			return ErrBadCert
		}
	}
	if q.SignerCount() < threshold {
		return ErrNoQuorum
	}
	if keys == nil {
		return nil
	}
	if q.R == nil || q.S == nil || q.S.Sign() < 0 || q.S.Cmp(keys.g.Q) >= 0 || !keys.g.InSubgroup(q.R) {
		return ErrBadCert
	}
	agg := big.NewInt(1)
	for i, id := range members {
		if getBit(q.Bitmap, i) {
			agg = keys.g.Mul(agg, keys.Public(id))
		}
	}
	c := keys.challenge(q.Statement)
	lhs := keys.g.Exp(keys.g.G, q.S)
	rhs := keys.g.Mul(q.R, keys.g.Exp(agg, c))
	if lhs.Cmp(rhs) != 0 {
		return ErrBadCert
	}
	return nil
}

func bitmapWords(n int) int { return (n + 63) / 64 }

func setBit(bm []uint64, i int) { bm[i/64] |= uint64(1) << (i % 64) }

func getBit(bm []uint64, i int) bool { return bm[i/64]&(uint64(1)<<(i%64)) != 0 }
