package quorumcert

import (
	"permchain/internal/types"
	"permchain/internal/wire"
)

// Frame codecs for certificate types (wire tags 32–47). Partials and
// certs also nest inside consensus messages (pbft partial/cert
// broadcasts, hotstuff aggregate QCs), which call the exported
// Put/Get helpers directly.
var (
	// PartialCodec (tag 32) carries one signer's Schnorr share.
	PartialCodec = wire.Register[Partial](32, PutPartial, GetPartial)
	// CertCodec (tag 33) carries an aggregated quorum certificate.
	CertCodec = wire.Register[QuorumCert](33, PutCert, GetCert)
)

// PutPartial appends a signature share.
func PutPartial(e *wire.Encoder, p *Partial) {
	e.I64(int64(p.Signer))
	e.BigInt(p.R)
	e.BigInt(p.S)
}

// GetPartial reads a signature share, reusing p's big.Int storage when
// present (the allocation-free decode path).
func GetPartial(d *wire.Decoder, p *Partial) {
	p.Signer = types.NodeID(d.I64())
	p.R = d.BigInt(p.R)
	p.S = d.BigInt(p.S)
}

// PutCert appends a full quorum certificate: statement (interned
// domain, fixed-width scalars), signer bitmap, aggregate scalars.
func PutCert(e *wire.Encoder, q *QuorumCert) {
	e.Str(q.Statement.Domain)
	e.U64(q.Statement.View)
	e.U64(q.Statement.Seq)
	e.Hash(q.Statement.Digest)
	e.U32(uint32(len(q.Bitmap)))
	for _, w := range q.Bitmap {
		e.U64(w)
	}
	e.BigInt(q.R)
	e.BigInt(q.S)
}

// GetCert reads a quorum certificate, reusing q's bitmap capacity and
// big.Int storage. Domains decode through the intern table, so a cert
// whose domain is a registered protocol constant decodes without
// allocating.
func GetCert(d *wire.Decoder, q *QuorumCert) {
	q.Statement.Domain = d.StrShared()
	q.Statement.View = d.U64()
	q.Statement.Seq = d.U64()
	q.Statement.Digest = d.Hash()
	n := d.Count(8)
	q.Bitmap = q.Bitmap[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		q.Bitmap = append(q.Bitmap, d.U64())
	}
	if len(q.Bitmap) == 0 {
		q.Bitmap = nil
	}
	q.R = d.BigInt(q.R)
	q.S = d.BigInt(q.S)
}
