package quorumcert

import (
	"errors"
	"math/big"
	"testing"

	"permchain/internal/types"
)

func members(n int) []types.NodeID {
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	return ids
}

func stmt() Statement {
	return Statement{Domain: "test/vote", View: 3, Seq: 7, Digest: types.HashBytes([]byte("block"))}
}

func TestPartialSignVerify(t *testing.T) {
	k := NewKeys()
	st := stmt()
	p := k.Sign(2, st)
	if !k.VerifyPartial(p, st) {
		t.Fatal("valid partial rejected")
	}
	// Wrong statement.
	other := st
	other.View++
	if k.VerifyPartial(p, other) {
		t.Fatal("partial accepted for a different statement")
	}
	// Claiming a different signer must fail: the partial binds identity.
	forged := p
	forged.Signer = 3
	if k.VerifyPartial(forged, st) {
		t.Fatal("partial accepted under a different signer identity")
	}
	// Tampered scalar.
	bad := p
	bad.S = new(big.Int).Add(p.S, big.NewInt(1))
	if k.VerifyPartial(bad, st) {
		t.Fatal("tampered partial accepted")
	}
	// Malformed: nil components, out-of-range scalar.
	if k.VerifyPartial(Partial{Signer: 2}, st) {
		t.Fatal("nil-component partial accepted")
	}
}

func TestKeysDeterministic(t *testing.T) {
	a, b := NewKeys(), NewKeys()
	for _, id := range members(5) {
		if a.Public(id).Cmp(b.Public(id)) != 0 {
			t.Fatalf("independently derived keys disagree for node %d", id)
		}
	}
	// Cross-instance: a partial signed by one key set verifies under another.
	st := stmt()
	if !b.VerifyPartial(a.Sign(1, st), st) {
		t.Fatal("partial from an independently derived key set rejected")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	k := NewKeys()
	ids := members(7)
	st := stmt()
	agg := NewAggregator(k, ids, 5, st)
	for i := 0; i < 5; i++ {
		n, err := agg.Add(k.Sign(ids[i], st))
		if err != nil {
			t.Fatalf("add partial %d: %v", i, err)
		}
		if n != i+1 {
			t.Fatalf("count after %d adds = %d", i+1, n)
		}
	}
	if !agg.Complete() {
		t.Fatal("aggregator not complete at threshold")
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	if cert.SignerCount() != 5 {
		t.Fatalf("cert signer count = %d, want 5", cert.SignerCount())
	}
	if got := cert.Signers(ids); len(got) != 5 || got[0] != ids[0] || got[4] != ids[4] {
		t.Fatalf("cert signers = %v", got)
	}
	if err := cert.Verify(k, ids, 5); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	// An independently derived key set verifies the same cert.
	if err := cert.Verify(NewKeys(), ids, 5); err != nil {
		t.Fatalf("cert rejected by fresh key set: %v", err)
	}
}

func TestAggregatorRejections(t *testing.T) {
	k := NewKeys()
	ids := members(4)
	st := stmt()
	agg := NewAggregator(k, ids, 3, st)

	if _, err := agg.Add(k.Sign(99, st)); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member partial: err = %v, want ErrNotMember", err)
	}
	if _, err := agg.Add(k.Sign(ids[0], st)); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if _, err := agg.Add(k.Sign(ids[0], st)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate partial: err = %v, want ErrDuplicate", err)
	}
	// Wrong statement: valid signature on a different statement.
	other := st
	other.Digest = types.HashBytes([]byte("other"))
	if _, err := agg.Add(k.Sign(ids[1], other)); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("wrong-statement partial: err = %v, want ErrBadPartial", err)
	}
	// Malformed: nil signature components.
	if _, err := agg.Add(Partial{Signer: ids[1]}); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("malformed partial: err = %v, want ErrBadPartial", err)
	}
	// Garbage scalar.
	p := k.Sign(ids[1], st)
	p.S = big.NewInt(12345)
	if _, err := agg.Add(p); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("garbage partial: err = %v, want ErrBadPartial", err)
	}
	// Rejections must not have advanced the count.
	if agg.Count() != 1 {
		t.Fatalf("count after rejections = %d, want 1", agg.Count())
	}
	// Below threshold: no cert.
	if _, err := agg.Cert(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("sub-quorum cert: err = %v, want ErrNoQuorum", err)
	}
}

func TestCertRejections(t *testing.T) {
	k := NewKeys()
	ids := members(7)
	st := stmt()
	agg := NewAggregator(k, ids, 5, st)
	for i := 0; i < 5; i++ {
		if _, err := agg.Add(k.Sign(ids[i], st)); err != nil {
			t.Fatal(err)
		}
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatal(err)
	}

	// Higher threshold (the ByzQuorumOverride flow): same cert, stricter bar.
	if err := cert.Verify(k, ids, 6); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("cert at higher threshold: err = %v, want ErrNoQuorum", err)
	}
	// Inflated bitmap: claiming a signer who never signed breaks the equation.
	tampered := *cert
	tampered.Bitmap = append([]uint64(nil), cert.Bitmap...)
	tampered.Bitmap[0] |= 1 << 5
	if err := tampered.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("inflated bitmap: err = %v, want ErrBadCert", err)
	}
	// Stray bit beyond the membership.
	stray := *cert
	stray.Bitmap = append([]uint64(nil), cert.Bitmap...)
	stray.Bitmap[0] |= 1 << 63
	if err := stray.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("stray bitmap bit: err = %v, want ErrBadCert", err)
	}
	// Wrong bitmap width for the membership.
	wide := *cert
	wide.Bitmap = append(append([]uint64(nil), cert.Bitmap...), 0)
	if err := wide.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("wrong bitmap width: err = %v, want ErrBadCert", err)
	}
	// Tampered aggregate scalar.
	badS := *cert
	badS.S = new(big.Int).Add(cert.S, big.NewInt(1))
	if err := badS.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("tampered S: err = %v, want ErrBadCert", err)
	}
	// Nil aggregate in signed mode.
	nilAgg := *cert
	nilAgg.R, nilAgg.S = nil, nil
	if err := nilAgg.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("nil aggregate: err = %v, want ErrBadCert", err)
	}
	// Statement substitution: cert for one statement must not verify as
	// another (Verify recomputes the challenge from cert.Statement, so a
	// relabelled copy fails the equation).
	relabel := *cert
	relabel.Statement.View++
	if err := relabel.Verify(k, ids, 5); !errors.Is(err, ErrBadCert) {
		t.Fatalf("relabelled statement: err = %v, want ErrBadCert", err)
	}
}

func TestUnsignedMode(t *testing.T) {
	ids := members(4)
	st := stmt()
	var k *Keys // nil: DisableSig analogue
	agg := NewAggregator(k, ids, 3, st)
	for i := 0; i < 3; i++ {
		if _, err := agg.Add(k.Sign(ids[i], st)); err != nil {
			t.Fatalf("unsigned add: %v", err)
		}
	}
	// Membership and duplicate checks still apply without signatures.
	if _, err := agg.Add(Partial{Signer: ids[0]}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("unsigned duplicate: err = %v, want ErrDuplicate", err)
	}
	if _, err := agg.Add(Partial{Signer: 42}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("unsigned non-member: err = %v, want ErrNotMember", err)
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatal(err)
	}
	if cert.R != nil || cert.S != nil {
		t.Fatal("unsigned cert carries aggregate signature components")
	}
	if err := cert.Verify(nil, ids, 3); err != nil {
		t.Fatalf("unsigned cert rejected: %v", err)
	}
	if err := cert.Verify(nil, ids, 4); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("unsigned cert at higher threshold: err = %v, want ErrNoQuorum", err)
	}
}

func TestStatementEncodingUnambiguous(t *testing.T) {
	base := stmt()
	variants := []Statement{
		{Domain: base.Domain + "x", View: base.View, Seq: base.Seq, Digest: base.Digest},
		{Domain: base.Domain, View: base.View + 1, Seq: base.Seq, Digest: base.Digest},
		{Domain: base.Domain, View: base.View, Seq: base.Seq + 1, Digest: base.Digest},
		{Domain: base.Domain, View: base.View, Seq: base.Seq, Digest: types.HashBytes([]byte("other"))},
	}
	seen := map[string]bool{string(base.Bytes()): true}
	for i, v := range variants {
		enc := string(v.Bytes())
		if seen[enc] {
			t.Fatalf("variant %d collides with a prior encoding", i)
		}
		seen[enc] = true
	}
	// The domain length prefix prevents boundary ambiguity between the
	// domain and the fixed-width fields.
	a := Statement{Domain: "ab", View: 0x63 /* 'c' */}
	b := Statement{Domain: "abc", View: 0}
	if string(a.Bytes()) == string(b.Bytes()) {
		t.Fatal("domain/view boundary ambiguity")
	}
}

func TestLargeClusterBitmap(t *testing.T) {
	// 128 members spans two bitmap words; exercise the word boundary.
	k := NewKeys()
	ids := members(128)
	st := stmt()
	threshold := 86 // 2f+1 at n=128
	agg := NewAggregator(k, ids, threshold, st)
	// Sign with a spread that covers both words, including bit 63 and 64.
	for i := 0; i < threshold; i++ {
		id := ids[(i*3)%128]
		if _, err := agg.Add(k.Sign(id, st)); errors.Is(err, ErrDuplicate) {
			// The stride revisits slots; top up from the tail instead.
			continue
		} else if err != nil {
			t.Fatal(err)
		}
	}
	for i := 127; agg.Count() < threshold; i-- {
		if _, err := agg.Add(k.Sign(ids[i], st)); err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatal(err)
		}
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(k, ids, threshold); err != nil {
		t.Fatalf("128-member cert rejected: %v", err)
	}
	if len(cert.Bitmap) != 2 {
		t.Fatalf("bitmap words = %d, want 2", len(cert.Bitmap))
	}
}
