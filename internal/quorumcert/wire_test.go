package quorumcert

import (
	"math/big"
	"reflect"
	"testing"

	"permchain/internal/types"
	"permchain/internal/wire"
)

func sampleCert() QuorumCert {
	return QuorumCert{
		Statement: Statement{Domain: "pbft/prepare", View: 3, Seq: 17, Digest: types.HashBytes([]byte("v"))},
		Bitmap:    []uint64{0b1011},
		R:         big.NewInt(12345),
		S:         new(big.Int).Lsh(big.NewInt(99), 64),
	}
}

func TestCertRoundTrip(t *testing.T) {
	q := sampleCert()
	e := &wire.Encoder{}
	CertCodec.EncodeFrame(e, &q)
	var got QuorumCert
	if err := CertCodec.DecodeFrameInto(e.Frame(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("cert round trip:\ngot  %#v\nwant %#v", got, q)
	}
}

func TestPartialRoundTrip(t *testing.T) {
	p := Partial{Signer: 2, R: big.NewInt(7), S: big.NewInt(8)}
	e := &wire.Encoder{}
	PartialCodec.EncodeFrame(e, &p)
	var got Partial
	if err := PartialCodec.DecodeFrameInto(e.Frame(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Signer != p.Signer || got.R.Cmp(p.R) != 0 || got.S.Cmp(p.S) != 0 {
		t.Fatalf("partial round trip: got %#v", got)
	}
	// Unsigned-mode partials have nil scalars.
	p = Partial{Signer: 5}
	e.Reset()
	PartialCodec.EncodeFrame(e, &p)
	got = Partial{}
	if err := PartialCodec.DecodeFrameInto(e.Frame(), &got); err != nil {
		t.Fatal(err)
	}
	if got.R != nil || got.S != nil {
		t.Fatalf("nil scalars did not survive: %#v", got)
	}
}

// TestCertWireAllocsFree is an acceptance gate: steady-state encode and
// decode (into a recycled cert) of a quorum-certificate frame must not
// allocate. The statement domain must be interned (the consensus
// packages intern their phase constants at init).
func TestCertWireAllocsFree(t *testing.T) {
	q := sampleCert()
	wire.Intern(q.Statement.Domain)
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	CertCodec.EncodeFrame(e, &q) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		CertCodec.EncodeFrame(e, &q)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cert encode allocates %.1f/op, want 0", allocs)
	}
	frame := append([]byte(nil), e.Frame()...)
	var scratch QuorumCert
	if err := CertCodec.DecodeFrameInto(frame, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := CertCodec.DecodeFrameInto(frame, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cert decode allocates %.1f/op, want 0", allocs)
	}
}
