package network

import (
	"sync"
	"testing"
	"time"

	"permchain/internal/obs"
	"permchain/internal/types"
)

func drain(t *testing.T, ep *Endpoint, d time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(d)
	for {
		select {
		case m := <-ep.Inbox():
			out = append(out, m)
		case <-deadline:
			return out
		}
	}
}

func TestVoteBatcherSizeFlush(t *testing.T) {
	net := New()
	a, c := net.Join(1), net.Join(2)
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 3, MaxDelay: time.Hour})
	defer b.Stop()
	for i := 0; i < 3; i++ {
		b.Enqueue(2, "test/vote", i)
	}
	select {
	case m := <-c.Inbox():
		inner := Unbatch(m)
		if len(inner) != 3 {
			t.Fatalf("batch carried %d items, want 3", len(inner))
		}
		for i, im := range inner {
			if im.From != 1 || im.To != 2 || im.Type != "test/vote" || im.Payload.(int) != i {
				t.Fatalf("item %d = %+v", i, im)
			}
		}
	case <-time.After(time.Second):
		t.Fatal("size-triggered flush never arrived")
	}
	// Exactly one envelope on the wire.
	if got := net.StatsSnapshot().Sent; got != 1 {
		t.Fatalf("sent %d messages, want 1 envelope", got)
	}
}

func TestVoteBatcherDeadlineFlush(t *testing.T) {
	net := New()
	a, c := net.Join(1), net.Join(2)
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 100, MaxDelay: 10 * time.Millisecond})
	defer b.Stop()
	b.Enqueue(2, "test/vote", "x")
	b.Enqueue(2, "test/vote", "y")
	select {
	case m := <-c.Inbox():
		if inner := Unbatch(m); len(inner) != 2 {
			t.Fatalf("deadline batch carried %d items, want 2", len(inner))
		}
	case <-time.After(time.Second):
		t.Fatal("deadline flush never arrived")
	}
}

func TestVoteBatcherPerDestination(t *testing.T) {
	net := New()
	a := net.Join(1)
	peers := []*Endpoint{net.Join(2), net.Join(3), net.Join(4)}
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 100, MaxDelay: 5 * time.Millisecond})
	defer b.Stop()
	b.Multicast([]types.NodeID{1, 2, 3, 4}, "test/vote", "v")
	for _, p := range peers {
		msgs := drain(t, p, 100*time.Millisecond)
		if len(msgs) != 1 {
			t.Fatalf("peer %d got %d envelopes, want 1", p.ID(), len(msgs))
		}
		inner := Unbatch(msgs[0])
		if len(inner) != 1 || inner[0].Payload.(string) != "v" {
			t.Fatalf("peer %d inner = %+v", p.ID(), inner)
		}
	}
	// Multicast skipped self: 3 envelopes total.
	if got := net.StatsSnapshot().Sent; got != 3 {
		t.Fatalf("sent %d envelopes, want 3", got)
	}
}

func TestVoteBatcherStopFlushesAndPassesThrough(t *testing.T) {
	net := New()
	a, c := net.Join(1), net.Join(2)
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 100, MaxDelay: time.Hour})
	b.Enqueue(2, "test/vote", "pending")
	b.Stop()
	msgs := drain(t, c, 50*time.Millisecond)
	if len(msgs) != 1 || len(Unbatch(msgs[0])) != 1 {
		t.Fatalf("Stop did not flush the pending vote: %+v", msgs)
	}
	// Post-stop enqueues degrade to direct sends.
	b.Enqueue(2, "test/vote", "late")
	msgs = drain(t, c, 50*time.Millisecond)
	if len(msgs) != 1 || msgs[0].Type != "test/vote" || msgs[0].Payload.(string) != "late" {
		t.Fatalf("post-Stop enqueue not passed through: %+v", msgs)
	}
}

func TestVoteBatcherMetrics(t *testing.T) {
	net := New()
	a := net.Join(1)
	net.Join(2)
	o := obs.New()
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 2, MaxDelay: 5 * time.Millisecond, Obs: o})
	defer b.Stop()
	b.Enqueue(2, "test/vote", 1)
	b.Enqueue(2, "test/vote", 2) // full flush
	b.Enqueue(2, "test/vote", 3) // deadline flush
	time.Sleep(50 * time.Millisecond)
	snap := o.Reg.Snapshot()
	if snap.Counters["votebatch/batches"] != 2 {
		t.Fatalf("batches = %d, want 2", snap.Counters["votebatch/batches"])
	}
	if snap.Counters["votebatch/items"] != 3 {
		t.Fatalf("items = %d, want 3", snap.Counters["votebatch/items"])
	}
	if snap.Counters["votebatch/flush_full"] != 1 || snap.Counters["votebatch/flush_deadline"] != 1 {
		t.Fatalf("flush counters = full:%d deadline:%d, want 1/1",
			snap.Counters["votebatch/flush_full"], snap.Counters["votebatch/flush_deadline"])
	}
}

// TestVoteBatcherConcurrent hammers Enqueue from several goroutines while
// deadline flushes race; run under -race this pins the locking discipline.
func TestVoteBatcherConcurrent(t *testing.T) {
	net := New()
	a, c := net.Join(1), net.Join(2)
	b := NewVoteBatcher(a, VoteBatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	var wg sync.WaitGroup
	const senders, per = 4, 200
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Enqueue(2, "test/vote", i)
			}
		}()
	}
	wg.Wait()
	b.Stop()
	total := 0
	for _, m := range drain(t, c, 100*time.Millisecond) {
		total += len(Unbatch(m))
	}
	if total != senders*per {
		t.Fatalf("delivered %d votes, want %d", total, senders*per)
	}
}

func TestUnbatchNonBatch(t *testing.T) {
	if got := Unbatch(Message{Type: "other", Payload: 1}); got != nil {
		t.Fatalf("Unbatch on non-batch = %+v, want nil", got)
	}
	if got := Unbatch(Message{Type: MsgVoteBatch, Payload: "garbage"}); got != nil {
		t.Fatalf("Unbatch on malformed payload = %+v, want nil", got)
	}
}

func TestWithInboxDepth(t *testing.T) {
	net := New(WithInboxDepth(8))
	e := net.Join(1)
	if cap(e.inbox) != 8 {
		t.Fatalf("inbox depth = %d, want 8", cap(e.inbox))
	}
	// Rejoin honours the override too.
	if e2 := net.Rejoin(1); cap(e2.inbox) != 8 {
		t.Fatalf("rejoin inbox depth = %d, want 8", cap(e2.inbox))
	}
	if d := New(); cap(d.Join(1).inbox) != defaultInboxDepth {
		t.Fatal("default inbox depth changed")
	}
}
