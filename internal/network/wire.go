package network

import (
	"permchain/internal/wire"
)

// voteBatchCodec (wire tag 48) carries coalesced vote envelopes. Item
// types are protocol constants (interned by their owning packages), so
// batch decode shares those strings instead of copying them.
var voteBatchCodec = wire.Register[VoteBatch](48, putVoteBatch, getVoteBatch)

func init() {
	wire.Intern(MsgVoteBatch)
}

func putVoteBatch(e *wire.Encoder, vb *VoteBatch) {
	e.U32(uint32(len(vb.Items)))
	for i := range vb.Items {
		e.Str(vb.Items[i].Type)
		e.Any(vb.Items[i].Payload)
	}
}

func getVoteBatch(d *wire.Decoder, vb *VoteBatch) {
	n := d.Count(4)
	vb.Items = vb.Items[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		vb.Items = append(vb.Items, BatchItem{Type: d.StrShared(), Payload: d.Any()})
	}
	if len(vb.Items) == 0 {
		vb.Items = nil
	}
}
