package network

import (
	"testing"
	"time"

	"permchain/internal/types"
)

func recvOne(t *testing.T, e *Endpoint) Message {
	t.Helper()
	select {
	case m := <-e.Inbox():
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func expectSilence(t *testing.T, e *Endpoint, d time.Duration) {
	t.Helper()
	select {
	case m := <-e.Inbox():
		t.Fatalf("unexpected message %+v", m)
	case <-time.After(d):
	}
}

func TestSendDeliver(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	a.Send(1, "ping", 42)
	m := recvOne(t, b)
	if m.From != 0 || m.To != 1 || m.Type != "ping" || m.Payload.(int) != 42 {
		t.Fatalf("got %+v", m)
	}
	st := n.StatsSnapshot()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.ByType["ping"] != 1 {
		t.Fatalf("ByType = %v", st.ByType)
	}
}

func TestJoinIdempotent(t *testing.T) {
	n := New()
	if n.Join(3) != n.Join(3) {
		t.Fatal("Join returned different endpoints")
	}
	if len(n.Nodes()) != 1 {
		t.Fatal("node counted twice")
	}
}

func TestBroadcastExcludesSelf(t *testing.T) {
	n := New()
	eps := make([]*Endpoint, 4)
	for i := range eps {
		eps[i] = n.Join(types.NodeID(i))
	}
	eps[0].Broadcast("hi", nil)
	for i := 1; i < 4; i++ {
		recvOne(t, eps[i])
	}
	expectSilence(t, eps[0], 50*time.Millisecond)
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New()
	a := n.Join(0)
	a.Send(9, "x", nil)
	st := n.StatsSnapshot()
	if st.Dropped != 1 || st.ByCause[DropUnknown] != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropRate(t *testing.T) {
	n := New(WithDropRate(1.0), WithSeed(7))
	a := n.Join(0)
	b := n.Join(1)
	for i := 0; i < 10; i++ {
		a.Send(1, "x", i)
	}
	expectSilence(t, b, 50*time.Millisecond)
	st := n.StatsSnapshot()
	if st.Dropped != 10 || st.ByCause[DropRate] != 10 {
		t.Fatalf("stats %+v", st)
	}
	// The dial is adjustable at runtime.
	n.SetDropRate(0)
	a.Send(1, "x", nil)
	recvOne(t, b)
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const d = 60 * time.Millisecond
	n := New(WithUniformLatency(d))
	a := n.Join(0)
	b := n.Join(1)
	start := time.Now()
	a.Send(1, "x", nil)
	recvOne(t, b)
	if el := time.Since(start); el < d {
		t.Fatalf("delivered after %v, want >= %v", el, d)
	}
}

func TestPerLinkLatency(t *testing.T) {
	n := New(WithLatency(func(from, to types.NodeID) time.Duration {
		if from == 0 && to == 2 {
			return 80 * time.Millisecond
		}
		return 0
	}))
	a := n.Join(0)
	fast := n.Join(1)
	slow := n.Join(2)
	start := time.Now()
	a.Send(1, "x", nil)
	a.Send(2, "x", nil)
	recvOne(t, fast)
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("fast link was slow")
	}
	recvOne(t, slow)
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("slow link was fast")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	n.Partition([]types.NodeID{0}, []types.NodeID{1})
	a.Send(1, "x", nil)
	expectSilence(t, b, 50*time.Millisecond)
	if st := n.StatsSnapshot(); st.ByCause[DropPartition] != 1 {
		t.Fatalf("stats %+v", st)
	}
	n.Heal()
	a.Send(1, "x", nil)
	recvOne(t, b)
}

func TestCrashMutesBothDirections(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	n.Crash(1)
	if !n.IsCrashed(1) {
		t.Fatal("crash not recorded")
	}
	a.Send(1, "x", nil) // inbound to crashed node
	b.Send(0, "x", nil) // outbound from crashed node
	expectSilence(t, b, 30*time.Millisecond)
	expectSilence(t, a, 30*time.Millisecond)
	st := n.StatsSnapshot()
	if st.Dropped != 2 || st.ByCause[DropCrash] != 2 {
		t.Fatalf("stats %+v", st)
	}
	n.Restore(1)
	if n.IsCrashed(1) {
		t.Fatal("restore not recorded")
	}
	a.Send(1, "x", nil)
	recvOne(t, b)
}

func TestCrashDropsDelayedDelivery(t *testing.T) {
	// A message already in flight when the destination crashes must not be
	// delivered: crash semantics are checked at delivery time too.
	n := New(WithUniformLatency(40 * time.Millisecond))
	a := n.Join(0)
	b := n.Join(1)
	a.Send(1, "x", nil)
	n.Crash(1)
	expectSilence(t, b, 80*time.Millisecond)
	if st := n.StatsSnapshot(); st.ByCause[DropCrash] != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRejoinFreshInbox(t *testing.T) {
	n := New()
	a := n.Join(0)
	old := n.Join(1)
	a.Send(1, "stale", nil) // sits in the old incarnation's inbox
	n.Crash(1)
	fresh := n.Rejoin(1)
	n.Restore(1)
	if n.Join(1) != fresh {
		t.Fatal("Join after Rejoin returned a stale endpoint")
	}
	a.Send(1, "new", nil)
	if m := recvOne(t, fresh); m.Type != "new" {
		t.Fatalf("fresh inbox got %+v", m)
	}
	// The pre-crash message stayed with the dead incarnation.
	if m := <-old.Inbox(); m.Type != "stale" {
		t.Fatalf("old inbox got %+v", m)
	}
	expectSilence(t, fresh, 30*time.Millisecond)
}

func TestPartitionWithinGroupDelivers(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	c := n.Join(2)
	n.Partition([]types.NodeID{0, 1}, []types.NodeID{2})
	a.Send(1, "x", nil)
	recvOne(t, b)
	a.Send(2, "x", nil)
	expectSilence(t, c, 50*time.Millisecond)
}

func TestByzantineEquivocation(t *testing.T) {
	n := New()
	byz := n.Join(0)
	b := n.Join(1)
	c := n.Join(2)
	// Node 0 tells 1 "yes" and 2 "no" regardless of what it tried to send.
	n.SetFilter(0, func(m Message) []Message {
		return []Message{
			{From: 0, To: 1, Type: m.Type, Payload: "yes"},
			{From: 0, To: 2, Type: m.Type, Payload: "no"},
		}
	})
	byz.Send(1, "vote", "yes")
	if m := recvOne(t, b); m.Payload.(string) != "yes" {
		t.Fatalf("b got %v", m.Payload)
	}
	if m := recvOne(t, c); m.Payload.(string) != "no" {
		t.Fatalf("c got %v", m.Payload)
	}
}

func TestFilterCannotForgeSender(t *testing.T) {
	n := New()
	byz := n.Join(0)
	b := n.Join(1)
	n.SetFilter(0, func(m Message) []Message {
		m.From = 7 // attempt to impersonate node 7
		return []Message{m}
	})
	byz.Send(1, "x", nil)
	if m := recvOne(t, b); m.From != 0 {
		t.Fatalf("forged sender %v accepted", m.From)
	}
}

func TestFilterSilence(t *testing.T) {
	n := New()
	byz := n.Join(0)
	b := n.Join(1)
	n.SetFilter(0, func(Message) []Message { return nil })
	byz.Send(1, "x", nil)
	expectSilence(t, b, 50*time.Millisecond)
	// Removing the filter restores traffic.
	n.SetFilter(0, nil)
	byz.Send(1, "x", nil)
	recvOne(t, b)
}

func TestAttestationForbidsFilters(t *testing.T) {
	n := New()
	n.Join(0)
	n.Attest(0)
	if !n.IsAttested(0) {
		t.Fatal("attestation not recorded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetFilter on attested node did not panic")
			}
		}()
		n.SetFilter(0, func(m Message) []Message { return []Message{m} })
	}()
	// And the reverse: filtered nodes cannot be attested.
	n.Join(1)
	n.SetFilter(1, func(m Message) []Message { return []Message{m} })
	defer func() {
		if recover() == nil {
			t.Error("Attest on filtered node did not panic")
		}
	}()
	n.Attest(1)
}

func TestCloseDropsTraffic(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	n.Close()
	a.Send(1, "x", nil)
	expectSilence(t, b, 50*time.Millisecond)
}

func TestResetStats(t *testing.T) {
	n := New()
	a := n.Join(0)
	n.Join(1)
	a.Send(1, "x", nil)
	n.ResetStats()
	if st := n.StatsSnapshot(); st.Sent != 0 || len(st.ByType) != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSetLatencyAtRuntime(t *testing.T) {
	n := New()
	a := n.Join(0)
	b := n.Join(1)
	a.Send(1, "x", nil)
	recvOne(t, b) // instant by default
	n.SetLatency(func(_, _ types.NodeID) time.Duration { return 60 * time.Millisecond })
	start := time.Now()
	a.Send(1, "x", nil)
	recvOne(t, b)
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("runtime latency not applied")
	}
}

func TestMulticast(t *testing.T) {
	n := New()
	eps := make([]*Endpoint, 4)
	for i := range eps {
		eps[i] = n.Join(types.NodeID(i))
	}
	// Multicast to {0,1,2} from 0: only 1 and 2 receive.
	eps[0].Multicast([]types.NodeID{0, 1, 2}, "m", 7)
	recvOne(t, eps[1])
	recvOne(t, eps[2])
	expectSilence(t, eps[3], 50*time.Millisecond)
	expectSilence(t, eps[0], 50*time.Millisecond)
}
