// Package network is the simulated message-passing substrate every
// protocol in permchain runs on. It replaces the real LAN/WAN deployments
// of the surveyed systems (see DESIGN.md, Substitutions) while preserving
// what the tutorial's comparisons depend on: message counts, communication
// phases, per-link latency, loss, partitions, and Byzantine senders.
//
// The transport is asynchronous: Send never blocks the sender, messages
// may be arbitrarily delayed (per-link latency function), dropped (loss
// rate or partitions), and Byzantine nodes may equivocate via outbound
// filters. There is no global clock, matching the asynchronous system
// model of §2.2.
package network

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/obs"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// Message is one network datagram. Payload is a protocol-defined value;
// protocols within one network namespace their Type strings.
type Message struct {
	From    types.NodeID
	To      types.NodeID
	Type    string
	Payload any

	// In wire-codec mode the payload travels serialized: frame holds
	// the encoded bytes (owned by enc, a pooled encoder released when
	// the message is delivered or dropped) and Payload is nil in
	// flight.
	frame []byte
	enc   *wire.Encoder
}

// releaseFrame returns the pooled encode buffer, if any. Every path
// that terminates a wire-mode message (drop, close, delivery) must
// call it exactly once.
func (m *Message) releaseFrame() {
	if m.enc != nil {
		wire.PutEncoder(m.enc)
		m.enc = nil
		m.frame = nil
	}
}

// Endpoint is a node's attachment to the network.
type Endpoint struct {
	id    types.NodeID
	inbox chan Message
	net   *Network
	// depthMetric caches the per-endpoint inbox-depth histogram name so
	// the delivery hot path does not format it per message.
	depthMetric string
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() types.NodeID { return e.id }

// Inbox returns the channel messages are delivered on.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Send sends a message from this endpoint.
func (e *Endpoint) Send(to types.NodeID, typ string, payload any) {
	e.net.Send(Message{From: e.id, To: to, Type: typ, Payload: payload})
}

// Broadcast sends to every other endpoint on the network.
func (e *Endpoint) Broadcast(typ string, payload any) {
	e.net.broadcastFrom(e.id, typ, payload)
}

// Multicast sends to each listed node except the sender itself. Consensus
// groups co-located on a shared network use it so traffic stays within
// the group.
func (e *Endpoint) Multicast(ids []types.NodeID, typ string, payload any) {
	for _, id := range ids {
		if id == e.id {
			continue
		}
		e.net.Send(Message{From: e.id, To: id, Type: typ, Payload: payload})
	}
}

// Filter rewrites a Byzantine node's outbound traffic: it receives each
// message the node sends and returns the messages actually transmitted.
// Returning nil silences the node; returning different payloads to
// different receivers is equivocation.
type Filter func(Message) []Message

// DropCause classifies why a message was lost; the chaos harness reports
// losses by cause, so "the partition ate it" is distinguishable from "the
// random loss dial ate it" — and an overload shed at the admission layer
// from either.
type DropCause int

const (
	DropRate      DropCause = iota // random per-message loss
	DropPartition                  // sender and receiver in different groups
	DropCrash                      // sender or receiver is crashed
	DropOverflow                   // receiver inbox full
	DropUnknown                    // destination never joined
	DropAdmission                  // shed by mempool admission control (via DropExternal)
	DropCodec                      // wire-mode encode/decode failure
	dropCauses                     // count; keep last
)

// String names the cause for reports.
func (c DropCause) String() string {
	switch c {
	case DropRate:
		return "rate"
	case DropPartition:
		return "partition"
	case DropCrash:
		return "crash"
	case DropOverflow:
		return "overflow"
	case DropUnknown:
		return "unknown-dest"
	case DropAdmission:
		return "admission"
	case DropCodec:
		return "codec"
	}
	return "?"
}

// Stats counts traffic. All counters are protected by the network lock.
type Stats struct {
	Sent      int64             // messages submitted
	Delivered int64             // messages delivered to an inbox
	Dropped   int64             // total losses, all causes
	ByCause   [dropCauses]int64 // losses broken down by DropCause
	ByType    map[string]int64
	// WireBytesOut/In count serialized payload bytes in wire-codec mode
	// (encoded on transmit / decoded on delivery); zero otherwise.
	WireBytesOut int64
	WireBytesIn  int64
}

// Network is the shared medium. Safe for concurrent use.
type Network struct {
	mu        sync.RWMutex
	endpoints map[types.NodeID]*Endpoint
	latency   func(from, to types.NodeID) time.Duration
	dropRate  float64
	rng       *rand.Rand
	filters   map[types.NodeID]Filter
	attested  map[types.NodeID]bool
	groups    map[types.NodeID]int // partition group; absent = group 0
	crashed   map[types.NodeID]bool
	stats     Stats
	closed    bool
	// inboxDepth is the buffer depth for newly joined endpoints
	// (defaultInboxDepth unless WithInboxDepth overrides it).
	inboxDepth int
	// reg mirrors the traffic counters into an obs registry when set
	// (drop causes as counters, plus delivery-latency and per-link
	// queue-depth histograms). Guarded by mu like everything else.
	reg *obs.Registry
	// log receives structured fault-injection events (crash, partition,
	// heal); defaults to a discard logger. Guarded by mu.
	log *slog.Logger
	// logical counts network events (sends + deliveries) monotonically;
	// obs.ClockFunc(net.LogicalNow) turns it into a deterministic span
	// clock for chaos and determinism tests.
	logical atomic.Int64
	// wireMode serializes every payload through the shared wire codec
	// (WithWireCodec). Set only at construction, read without the lock.
	wireMode bool
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the per-link one-way delay function.
func WithLatency(f func(from, to types.NodeID) time.Duration) Option {
	return func(n *Network) { n.latency = f }
}

// WithUniformLatency sets a constant one-way delay on every link.
func WithUniformLatency(d time.Duration) Option {
	return WithLatency(func(_, _ types.NodeID) time.Duration { return d })
}

// WithDropRate makes every message independently lost with probability p.
func WithDropRate(p float64) Option {
	return func(n *Network) { n.dropRate = p }
}

// WithSeed seeds the loss randomness for reproducibility.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithRegistry mirrors traffic counters into reg: per-cause drop counters
// ("net/drop/<cause>"), sent/delivered totals, a delivery-latency histogram
// and per-link inbox-depth histograms.
func WithRegistry(reg *obs.Registry) Option {
	return func(n *Network) { n.reg = reg }
}

// WithWireCodec switches the network to serialized transport: Send
// encodes each payload into a pooled frame through the shared wire
// codec (internal/wire) and delivery decodes it back, so traffic pays —
// and measures — real marshalling cost and per-message bytes
// (Stats.WireBytesOut/In, net/wire_bytes_{in,out} counters,
// net/{encode,decode} histograms). Every payload type crossing a
// wire-mode network must be registered with the codec; unregistered
// payloads and corrupt frames are dropped with cause DropCodec. The
// mode is fixed at construction: all nodes of a cluster share one
// Network, so there is no half-serialized cluster (core.Config.WireCodec
// fails fast on a mismatch).
func WithWireCodec() Option {
	return func(n *Network) { n.wireMode = true }
}

// defaultInboxDepth is sized so slow consumers in tests don't spuriously
// drop; overflow still counts as network loss rather than blocking the
// sender.
const defaultInboxDepth = 65536

// WithInboxDepth overrides the per-endpoint inbox buffer depth. Large
// clusters (n=64–128) use a smaller depth: the default costs O(n · depth)
// memory across endpoints, which dominates the simulation's footprint at
// scale. Values < 1 keep the default.
func WithInboxDepth(depth int) Option {
	return func(n *Network) {
		if depth >= 1 {
			n.inboxDepth = depth
		}
	}
}

// New creates a network with no endpoints.
func New(opts ...Option) *Network {
	n := &Network{
		endpoints:  map[types.NodeID]*Endpoint{},
		filters:    map[types.NodeID]Filter{},
		attested:   map[types.NodeID]bool{},
		inboxDepth: defaultInboxDepth,
		groups:     map[types.NodeID]int{},
		crashed:    map[types.NodeID]bool{},
		rng:        rand.New(rand.NewSource(1)),
		log:        obs.DiscardLogger(),
	}
	n.stats.ByType = map[string]int64{}
	for _, o := range opts {
		o(n)
	}
	return n
}

// WireEnabled reports whether the network runs in serialized
// wire-codec mode (WithWireCodec).
func (n *Network) WireEnabled() bool { return n.wireMode }

// Join attaches a node and returns its endpoint. Joining twice returns
// the existing endpoint.
func (n *Network) Join(id types.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.endpoints[id]; ok {
		return e
	}
	e := n.newEndpoint(id)
	n.endpoints[id] = e
	return e
}

// newEndpoint builds an endpoint, pre-formatting its metric names so
// the delivery path never calls fmt. Caller holds the lock.
func (n *Network) newEndpoint(id types.NodeID) *Endpoint {
	return &Endpoint{
		id:          id,
		inbox:       make(chan Message, n.inboxDepth),
		net:         n,
		depthMetric: fmt.Sprintf("net/inbox_depth/n%d", id),
	}
}

// Nodes returns the ids of all attached endpoints.
func (n *Network) Nodes() []types.NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]types.NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

// SetFilter installs a Byzantine outbound filter for id. Attested nodes
// (AHL's trusted hardware, §2.3.4) cannot equivocate: installing a filter
// on one panics, catching misconfigured experiments early.
func (n *Network) SetFilter(id types.NodeID, f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attested[id] {
		panic(fmt.Sprintf("network: node %v is attested; cannot install Byzantine filter", id))
	}
	if f == nil {
		delete(n.filters, id)
		return
	}
	n.filters[id] = f
}

// Attest marks id as running trusted hardware: its messages cannot be
// forged or equivocated, the property AHL uses to shrink committees from
// 3f+1 to 2f+1.
func (n *Network) Attest(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.filters[id]; ok {
		panic(fmt.Sprintf("network: node %v already has a Byzantine filter; cannot attest", id))
	}
	n.attested[id] = true
}

// IsAttested reports whether id runs trusted hardware.
func (n *Network) IsAttested(id types.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.attested[id]
}

// SetLatency replaces the per-link delay function at runtime. Messages
// already in flight keep their original delay.
func (n *Network) SetLatency(f func(from, to types.NodeID) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = f
}

// Partition splits the nodes into isolated groups; messages between
// different groups are dropped. Nodes not listed stay in group 0.
func (n *Network) Partition(groups ...[]types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = map[types.NodeID]int{}
	for gi, g := range groups {
		for _, id := range g {
			n.groups[id] = gi + 1
		}
	}
	n.log.Warn("partition applied", "groups", len(groups))
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = map[types.NodeID]int{}
	n.log.Info("partition healed")
}

// SetDropRate replaces the random-loss probability at runtime; the chaos
// harness uses it for scripted loss bursts.
func (n *Network) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = p
}

// Crash mutes a node in both directions: messages it sends and messages
// addressed to it are dropped (cause DropCrash) until Restore. The
// endpoint itself stays attached, so a node "frozen" by Crash/Restore
// without a process restart keeps its inbox.
func (n *Network) Crash(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
	n.log.Warn("node crashed", "node", int(id))
}

// Restore unmutes a crashed node. In-flight messages sent while the node
// was crashed are already lost; traffic after Restore flows normally.
func (n *Network) Restore(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
	n.log.Info("node restored", "node", int(id))
}

// IsCrashed reports whether id is currently muted by Crash.
func (n *Network) IsCrashed(id types.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[id]
}

// Rejoin replaces a node's endpoint with a fresh one (empty inbox) and
// returns it, invalidating the previous Endpoint. A replica restarted
// after a crash calls Join through its constructor and receives this
// fresh attachment instead of the dead incarnation's inbox. Rejoining a
// node that never joined is equivalent to Join.
func (n *Network) Rejoin(id types.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.newEndpoint(id)
	n.endpoints[id] = e
	return e
}

// Close drops all future traffic.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// SetRegistry attaches (or detaches, with nil) an obs registry at runtime;
// see WithRegistry.
func (n *Network) SetRegistry(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
}

// SetLogger attaches a structured logger for fault-injection events
// (crash, restore, partition, heal). The field is only read under the
// network lock; a nil-logger network logs nowhere.
func (n *Network) SetLogger(l *slog.Logger) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l != nil {
		n.log = l
	}
}

// LogicalNow returns the network's logical clock: the count of send and
// delivery events so far. It only moves when traffic moves, so span
// timestamps taken from it are reproducible under a fixed seed regardless
// of scheduler timing. Adapt it with obs.ClockFunc(net.LogicalNow).
func (n *Network) LogicalNow() int64 { return n.logical.Load() }

// StatsSnapshot returns a copy of the traffic counters. This is the only
// way to read Stats: the struct is written under the network mutex on
// every transmit/deliver, so callers must never retain a reference into
// the live struct (per-cause counters would tear under -race).
func (n *Network) StatsSnapshot() Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := n.stats
	out.ByType = make(map[string]int64, len(n.stats.ByType))
	for k, v := range n.stats.ByType {
		out.ByType[k] = v
	}
	return out
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{ByType: map[string]int64{}}
}

// Send transmits m, applying the sender's Byzantine filter, partitions,
// loss, and latency. It never blocks.
func (n *Network) Send(m Message) {
	n.mu.RLock()
	f := n.filters[m.From]
	n.mu.RUnlock()
	if f != nil {
		for _, rewritten := range f(m) {
			rewritten.From = m.From // a filter cannot forge the sender
			n.transmit(rewritten)
		}
		return
	}
	n.transmit(m)
}

func (n *Network) broadcastFrom(from types.NodeID, typ string, payload any) {
	n.mu.RLock()
	ids := make([]types.NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		if id != from {
			ids = append(ids, id)
		}
	}
	n.mu.RUnlock()
	for _, id := range ids {
		n.Send(Message{From: from, To: id, Type: typ, Payload: payload})
	}
}

// DropExternal records a loss decided outside the transport — the
// admission layer sheds a transaction before any message exists, but
// the loss still belongs in the same per-cause accounting so overload
// sheds are distinguishable from chaos-induced drops in Stats
// snapshots and the E10/E14 reports. Nothing was Sent, so only the
// loss counters advance.
func (n *Network) DropExternal(cause DropCause) {
	n.mu.Lock()
	n.drop(cause)
	n.mu.Unlock()
}

// drop records a loss with its cause. Caller holds the lock.
func (n *Network) drop(cause DropCause) {
	n.stats.Dropped++
	n.stats.ByCause[cause]++
	if n.reg != nil {
		n.reg.Counter("net/drop/" + cause.String()).Inc()
	}
}

func (n *Network) transmit(m Message) {
	sentAt := time.Now()
	n.logical.Add(1)

	// Wire mode: serialize the payload outside the lock. From here on
	// the message carries a pooled frame that every terminating path
	// must release.
	var encDur time.Duration
	if n.wireMode {
		e := wire.GetEncoder()
		encStart := time.Now()
		if err := wire.EncodeFrame(e, m.Payload); err != nil {
			wire.PutEncoder(e)
			n.mu.Lock()
			n.stats.Sent++
			n.stats.ByType[m.Type]++
			n.drop(DropCodec)
			n.mu.Unlock()
			return
		}
		encDur = time.Since(encStart)
		m.enc, m.frame = e, e.Frame()
		m.Payload = nil
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		m.releaseFrame()
		return
	}
	n.stats.Sent++
	n.stats.ByType[m.Type]++
	if m.enc != nil {
		n.stats.WireBytesOut += int64(len(m.frame))
		if n.reg != nil {
			n.reg.Counter("net/wire_bytes_out").Add(int64(len(m.frame)))
			n.reg.Histogram("net/encode").Observe(int64(encDur))
		}
	}
	if n.reg != nil {
		n.reg.Counter("net/sent").Inc()
	}
	if _, ok := n.endpoints[m.To]; !ok {
		n.drop(DropUnknown)
		n.mu.Unlock()
		m.releaseFrame()
		return
	}
	if n.crashed[m.From] || n.crashed[m.To] {
		n.drop(DropCrash)
		n.mu.Unlock()
		m.releaseFrame()
		return
	}
	if n.groups[m.From] != n.groups[m.To] {
		n.drop(DropPartition)
		n.mu.Unlock()
		m.releaseFrame()
		return
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.drop(DropRate)
		n.mu.Unlock()
		m.releaseFrame()
		return
	}
	var delay time.Duration
	if n.latency != nil {
		delay = n.latency(m.From, m.To)
	}
	n.mu.Unlock()

	if delay <= 0 {
		n.deliver(m, sentAt)
		return
	}
	time.AfterFunc(delay, func() { n.deliver(m, sentAt) })
}

// deliver re-resolves the destination at delivery time: a delayed message
// addressed to a node that crashed (or was replaced via Rejoin) while the
// message was in flight lands in the node's *current* state, not a stale
// endpoint pointer.
func (n *Network) deliver(m Message, sentAt time.Time) {
	n.logical.Add(1)

	// Wire mode: decode outside the lock and recycle the frame before
	// the payload reaches the endpoint — decoded values never alias the
	// pooled buffer, so this is safe. A frame that fails to decode is a
	// transport loss (DropCodec), never a silent misdelivery.
	var decDur time.Duration
	var wireBytes int64
	if m.enc != nil {
		decStart := time.Now()
		v, err := wire.DecodeFrame(m.frame)
		decDur = time.Since(decStart)
		wireBytes = int64(len(m.frame))
		m.releaseFrame()
		if err != nil {
			n.mu.Lock()
			n.drop(DropCodec)
			n.mu.Unlock()
			return
		}
		m.Payload = v
	}

	n.mu.Lock()
	dst, ok := n.endpoints[m.To]
	if !ok {
		n.drop(DropUnknown)
		n.mu.Unlock()
		return
	}
	if n.crashed[m.To] {
		n.drop(DropCrash)
		n.mu.Unlock()
		return
	}
	select {
	case dst.inbox <- m:
		n.stats.Delivered++
		if wireBytes > 0 {
			n.stats.WireBytesIn += wireBytes
		}
		if n.reg != nil {
			n.reg.Counter("net/delivered").Inc()
			n.reg.Histogram("net/delivery_latency").Observe(int64(time.Since(sentAt)))
			n.reg.Histogram(dst.depthMetric).Observe(int64(len(dst.inbox)))
			if wireBytes > 0 {
				n.reg.Counter("net/wire_bytes_in").Add(wireBytes)
				n.reg.Histogram("net/decode").Observe(int64(decDur))
			}
		}
	default:
		n.drop(DropOverflow)
	}
	n.mu.Unlock()
}
