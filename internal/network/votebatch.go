package network

import (
	"sync"
	"time"

	"permchain/internal/obs"
	"permchain/internal/types"
)

// MsgVoteBatch is the wire type of a coalesced batch envelope. Protocols
// that enable vote batching add one Unbatch case to their message loop and
// re-dispatch the contained messages.
const MsgVoteBatch = "net/votebatch"

// BatchItem is one vote inside a batch envelope.
type BatchItem struct {
	Type    string
	Payload any
}

// VoteBatch is the payload of a MsgVoteBatch message.
type VoteBatch struct {
	Items []BatchItem
}

// VoteBatcherConfig tunes a VoteBatcher.
type VoteBatcherConfig struct {
	// MaxBatch flushes a destination's queue as soon as it holds this many
	// votes. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first queued vote waits before a flush,
	// so batching trades bounded latency for fewer messages. Default 2ms.
	MaxDelay time.Duration
	// Obs receives per-batch metrics (nil-safe): votebatch/batches,
	// votebatch/items, votebatch/batch_size histogram, and
	// votebatch/flush_{full,deadline} counters.
	Obs *obs.Obs
}

// VoteBatcher coalesces outbound votes per destination: instead of one
// network message per vote, each peer receives one MsgVoteBatch per flush.
// All-to-all vote phases then cost O(n) envelopes per flush interval rather
// than O(n²) singletons. Enqueue is called from the owning protocol's event
// loop; the deadline flush runs on a timer goroutine, so internal state is
// mutex-guarded.
type VoteBatcher struct {
	ep  *Endpoint
	cfg VoteBatcherConfig

	mu      sync.Mutex
	queues  map[types.NodeID][]BatchItem
	timer   *time.Timer
	stopped bool
}

// NewVoteBatcher creates a batcher sending through ep.
func NewVoteBatcher(ep *Endpoint, cfg VoteBatcherConfig) *VoteBatcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &VoteBatcher{ep: ep, cfg: cfg, queues: make(map[types.NodeID][]BatchItem)}
}

// batchSlicePool recycles batch item slices between flushes. Only a
// wire-mode batcher may use it: serialized transport copies the items
// into a frame synchronously inside Send, while struct-pointer
// transport hands the live slice to the receiver, which retains it.
var batchSlicePool = sync.Pool{New: func() any {
	s := make([]BatchItem, 0, 32)
	return &s
}}

// Enqueue queues one vote for to. The queue flushes immediately at MaxBatch
// votes, or when the MaxDelay deadline (armed by the first queued vote)
// fires. After Stop, votes pass through unbatched so nothing is lost.
func (b *VoteBatcher) Enqueue(to types.NodeID, typ string, payload any) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.ep.Send(to, typ, payload)
		return
	}
	q := b.queues[to]
	if q == nil && b.ep.net.wireMode {
		q = *batchSlicePool.Get().(*[]BatchItem)
	}
	q = append(q, BatchItem{Type: typ, Payload: payload})
	if len(q) >= b.cfg.MaxBatch {
		delete(b.queues, to)
		b.mu.Unlock()
		b.emit(to, q, "full")
		return
	}
	b.queues[to] = q
	if b.timer == nil {
		b.timer = time.AfterFunc(b.cfg.MaxDelay, b.deadlineFlush)
	}
	b.mu.Unlock()
}

// Multicast enqueues one vote per listed destination, skipping self —
// the batched analogue of Endpoint.Multicast.
func (b *VoteBatcher) Multicast(ids []types.NodeID, typ string, payload any) {
	for _, id := range ids {
		if id != b.ep.ID() {
			b.Enqueue(id, typ, payload)
		}
	}
}

// Flush sends every queued vote now.
func (b *VoteBatcher) Flush() { b.flushAll("deadline") }

// Stop flushes pending votes and stops the deadline timer. Subsequent
// Enqueues degrade to direct sends.
func (b *VoteBatcher) Stop() {
	b.mu.Lock()
	b.stopped = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	pending := b.queues
	b.queues = make(map[types.NodeID][]BatchItem)
	b.mu.Unlock()
	for to, items := range pending {
		b.emit(to, items, "deadline")
	}
}

func (b *VoteBatcher) deadlineFlush() { b.flushAll("deadline") }

func (b *VoteBatcher) flushAll(cause string) {
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	pending := b.queues
	b.queues = make(map[types.NodeID][]BatchItem)
	b.mu.Unlock()
	for to, items := range pending {
		b.emit(to, items, cause)
	}
}

// emit sends one batch envelope and records its metrics.
func (b *VoteBatcher) emit(to types.NodeID, items []BatchItem, cause string) {
	b.ep.Send(to, MsgVoteBatch, VoteBatch{Items: items})
	if b.ep.net.wireMode {
		// Send serialized the batch synchronously; nothing downstream
		// holds the slice, so it can back the next flush.
		clear(items)
		s := items[:0]
		batchSlicePool.Put(&s)
	}
	o := b.cfg.Obs
	o.Inc("votebatch/batches")
	o.Add("votebatch/items", int64(len(items)))
	o.ObserveInt("votebatch/batch_size", int64(len(items)))
	o.Inc("votebatch/flush_" + cause)
}

// Unbatch expands a batch envelope into its contained messages, each
// stamped with the envelope's provenance (the network layer guarantees the
// envelope's From; items inherit it, so batching cannot forge senders).
// Messages of any other type yield nil.
func Unbatch(m Message) []Message {
	vb, ok := m.Payload.(VoteBatch)
	if m.Type != MsgVoteBatch || !ok {
		return nil
	}
	out := make([]Message, len(vb.Items))
	for i, it := range vb.Items {
		out[i] = Message{From: m.From, To: m.To, Type: it.Type, Payload: it.Payload}
	}
	return out
}
