// Package store is permchain's durable storage engine: a dependency-free,
// crash-safe persistence layer for the ledger and world state, built from
// three pieces (DESIGN.md, "Durability"):
//
//   - Log: a segmented append-only record log. Records are framed as
//     [len u32][crc32c u32][payload]; segments rotate at a configurable
//     size. On open every segment is scanned: a torn final record (the
//     tail of a crashed write) is truncated away, while a corrupted
//     record in the middle of the data is rejected with a positional
//     error — corruption must never surface as silent data loss.
//
//   - Store: the block store. It binds a Log whose record i is the block
//     at height i to a MANIFEST.json (updated by atomic rename) tracking
//     segment lineage, the last durable height, and state snapshots.
//
//   - State snapshots: periodic full statedb checkpoints written
//     alongside the log, so reopening a store replays only the block
//     suffix after the newest snapshot instead of re-executing the whole
//     chain.
//
// Durability policy is configurable per Geyer et al.'s observation that
// fsync strategy is a first-order throughput factor: FsyncAlways syncs
// after every append, FsyncInterval groups syncs on a timer, FsyncOff
// leaves flushing to the OS (syncing only on rotation and close).
//
// Everything is instrumented through internal/obs when a registry is
// attached: append/fsync latency histograms, bytes written, segments
// rotated, torn-tail truncations, snapshot and recovery counters.
package store

import (
	"errors"
	"fmt"
	"time"

	"permchain/internal/obs"
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the active segment after every append — maximum
	// durability, one fsync per record.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval groups syncs: an append syncs only when FsyncEvery has
	// elapsed since the last sync (plus rotation and close).
	FsyncInterval
	// FsyncOff never syncs on append; the OS flushes at its leisure and
	// the log syncs only on rotation and close. A crash may lose the
	// recent tail, which recovery truncates away.
	FsyncOff
)

// String names the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the String form.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|off)", s)
}

// Config shapes a Log or Store.
type Config struct {
	// Dir is the store's root directory (required for Open; OpenLog takes
	// its directory explicitly).
	Dir string
	// SegmentBytes caps a segment file; the log rotates past it
	// (default 4 MiB).
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the group-sync period under FsyncInterval
	// (default 50ms).
	FsyncEvery time.Duration
	// SnapshotEvery makes core write a full state snapshot every k blocks
	// (0 disables snapshots; recovery then replays from genesis).
	SnapshotEvery uint64
	// Obs receives storage metrics; nil disables instrumentation.
	Obs *obs.Obs
}

func (c Config) defaulted() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 50 * time.Millisecond
	}
	return c
}

// ErrCorrupt marks unrecoverable on-disk damage: a record that fails its
// CRC with valid data after it, a missing segment, or a log shorter than
// the manifest's durable height. Open refuses to proceed rather than
// silently dropping committed data; errors wrapping it carry the file and
// offset of the damage.
var ErrCorrupt = errors.New("store: corrupt")

// errTornTail is the internal verdict for an invalid final record that is
// consistent with a crashed append: it occupies the very tail of the last
// segment, so recovery may truncate it. Never returned to callers.
var errTornTail = errors.New("store: torn tail")
