package store

import (
	"testing"

	"permchain/internal/obs"
	"permchain/internal/statedb"
)

func TestWriteSnapshotAsyncDrainsOnClose(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(12)
	o := obs.New()
	cfg := Config{Dir: dir, Fsync: FsyncOff, Obs: o}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
		if b.Header.Height%4 == 0 {
			s.WriteSnapshotAsync(b.Header.Height, st.Snapshot(), st.StateHash())
		}
	}
	// Close drains the worker, so a queued checkpoint is never lost.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := o.Reg.Snapshot()
	written := m.Counters["store/snapshots_async"] + m.Counters["store/snapshots_superseded"]
	if written != 3 {
		t.Fatalf("async=%d superseded=%d, want 3 requests accounted for",
			m.Counters["store/snapshots_async"], m.Counters["store/snapshots_superseded"])
	}
	if m.Counters["store/snapshot_errors"] != 0 {
		t.Fatalf("snapshot errors: %d", m.Counters["store/snapshot_errors"])
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ref, snap, ok, err := re.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	// Supersede semantics keep only the newest pending request, but the
	// last one queued (height 12) must always survive a clean close.
	if ref.Height != 12 {
		t.Fatalf("latest snapshot at height %d, want 12", ref.Height)
	}
	restored := statedb.New()
	restored.Restore(snap)
	if restored.StateHash().Hex() != ref.StateHash {
		t.Fatal("restored async snapshot does not match manifest hash")
	}
}

func TestWriteSnapshotAsyncSupersedesStaleRequests(t *testing.T) {
	// With the worker wedged behind a slow first write we can't force
	// timing, but semantics are checkable without it: queue many requests
	// faster than they can be written and the counters must show every
	// request either written or superseded, never dropped silently.
	dir := t.TempDir()
	blocks := buildBlocks(10)
	o := obs.New()
	s, err := Open(Config{Dir: dir, Fsync: FsyncOff, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
		s.WriteSnapshotAsync(b.Header.Height, st.Snapshot(), st.StateHash())
	}
	if err := s.DrainSnapshots(); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotInFlight() {
		t.Fatal("drained store still reports a snapshot in flight")
	}
	m := o.Reg.Snapshot()
	total := m.Counters["store/snapshots_async"] + m.Counters["store/snapshots_superseded"]
	if total != 10 {
		t.Fatalf("async=%d + superseded=%d != 10 requests",
			m.Counters["store/snapshots_async"], m.Counters["store/snapshots_superseded"])
	}
	if s.Height() != 10 {
		t.Fatalf("height = %d", s.Height())
	}
	s.Close()
}

func TestKillAbandonsWithoutSync(t *testing.T) {
	// Kill is the in-process kill -9: it must not sync, must stop the
	// async worker, and must leave the store recoverable from whatever
	// the fsync policy already made durable.
	dir := t.TempDir()
	blocks := buildBlocks(6)
	s, err := Open(Config{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
	}
	s.WriteSnapshotAsync(6, st.Snapshot(), st.StateHash())
	s.Kill()
	// Dead store: appends fail, a second Kill and a Close are harmless.
	if err := s.AppendBlock(blocks[0]); err == nil {
		t.Fatal("append succeeded on a killed store")
	}
	s.Kill()
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Kill: %v", err)
	}

	// Recovery sees a consistent prefix (FsyncOff means the OS may or
	// may not have flushed the tail; in-process the page cache has it, so
	// all 6 blocks are readable — the point is open succeeds cleanly).
	re, err := Open(Config{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Height() != 6 {
		t.Fatalf("recovered height %d", re.Height())
	}
}
