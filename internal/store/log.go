package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// castagnoli is the CRC32C polynomial table every record is checksummed
// with (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the per-record overhead: length + CRC32C, both uint32 BE.
const frameHeader = 8

// maxRecord bounds a single record; a length field beyond it is treated
// as damage, not as an instruction to allocate gigabytes.
const maxRecord = 1 << 28

// segment is one on-disk log file. first is the 1-based index of its
// first record; the file name encodes it (wal-%016x.seg) so segments
// order lexicographically and ReplayFrom can skip whole files.
type segment struct {
	path  string
	first uint64
}

func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Log is the segmented append-only record log. It is safe for concurrent
// use; appends are serialized under one mutex (the single-writer model —
// see DESIGN.md, Documented simplifications).
type Log struct {
	mu       sync.Mutex
	dir      string
	cfg      Config
	segs     []segment
	f        *os.File // active (last) segment, opened for append
	size     int64    // active segment's byte size
	count    uint64   // records across all segments
	dirty    bool     // unsynced appends on the active segment
	lastSync time.Time
	closed   bool
}

// OpenLog opens (creating if needed) the segmented log in dir. Every
// existing segment is scanned and CRC-verified: a torn final record is
// truncated away (counted as store/torn_truncations), any other damage
// fails the open with an error wrapping ErrCorrupt.
func OpenLog(dir string, cfg Config) (*Log, error) {
	cfg = cfg.defaulted()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	start := time.Now()
	l := &Log{dir: dir, cfg: cfg, lastSync: time.Now()}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if first, ok := parseSegmentName(e.Name()); ok {
			l.segs = append(l.segs, segment{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	next := uint64(1)
	for i, seg := range l.segs {
		if seg.first != next {
			return nil, fmt.Errorf("%w: segment %s starts at record %d, want %d (missing segment?)",
				ErrCorrupt, filepath.Base(seg.path), seg.first, next)
		}
		last := i == len(l.segs)-1
		n, good, err := scanSegment(seg.path, nil)
		if err == errTornTail && last {
			// The tail of a crashed write: cut it off and carry on.
			if terr := os.Truncate(seg.path, good); terr != nil {
				return nil, terr
			}
			cfg.Obs.Inc("store/torn_truncations")
			cfg.Obs.Logger("store").Warn("torn tail truncated",
				"segment", filepath.Base(seg.path), "offset", good)
		} else if err != nil {
			if err == errTornTail {
				// A non-final segment was sealed by a rotation; an invalid
				// tail there is damage, not a crashed append.
				err = fmt.Errorf("%w: segment %s: invalid record at offset %d in sealed segment",
					ErrCorrupt, filepath.Base(seg.path), good)
			}
			cfg.Obs.NoteStoreError(err)
			cfg.Obs.Logger("store").Error("segment scan failed",
				"segment", filepath.Base(seg.path), "err", err)
			return nil, err
		}
		next += uint64(n)
		l.count += uint64(n)
		if last {
			l.size = good
		}
	}

	if len(l.segs) == 0 {
		l.segs = append(l.segs, segment{path: filepath.Join(dir, segmentName(1)), first: 1})
	}
	active := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	cfg.Obs.Observe("store/open_scan_latency", time.Since(start))
	return l, nil
}

// scanSegment walks one segment file, validating every frame and calling
// fn (when non-nil) with each payload. It returns the record count, the
// byte length of the valid prefix, and errTornTail when the remainder
// after the valid prefix is consistent with a crashed append (invalid
// data extending to end-of-file), or a *Corrupt error when a bad record
// has valid data after it.
func scanSegment(path string, fn func(payload []byte) error) (n int, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return n, int64(off), errTornTail
		}
		length := binary.BigEndian.Uint32(data[off:])
		crc := binary.BigEndian.Uint32(data[off+4:])
		if length > maxRecord {
			// The length field itself is garbage; the frame's extent is
			// unknowable, so everything from here is the bad region. That
			// is truncatable only if this is the growing tail.
			return n, int64(off), errTornTail
		}
		end := off + frameHeader + int(length)
		if end > len(data) {
			return n, int64(off), errTornTail
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != crc {
			if end == len(data) {
				// Final frame, full length present but checksum bad: a
				// crash between the length write and the payload landing.
				return n, int64(off), errTornTail
			}
			return n, int64(off), fmt.Errorf("%w: %s: record %d at offset %d fails CRC with %d bytes of valid data after it",
				ErrCorrupt, filepath.Base(path), n+1, off, len(data)-end)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return n, int64(off), err
			}
		}
		n++
		off = end
	}
	return n, int64(off), nil
}

// Count returns the number of records in the log.
func (l *Log) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Append frames rec, writes it to the active segment (rotating first if
// the segment is full), and applies the fsync policy.
func (l *Log) Append(rec []byte) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	frame := int64(frameHeader + len(rec))
	if l.size > 0 && l.size+frame > l.cfg.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(rec)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(rec, castagnoli))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	l.size += frame
	l.count++
	l.dirty = true
	l.cfg.Obs.Add("store/bytes_written", frame)
	l.cfg.Obs.Inc("store/records_appended")

	switch l.cfg.Fsync {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.cfg.FsyncEvery {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
	}
	l.cfg.Obs.Observe("store/append_latency", time.Since(start))
	return nil
}

// rotateLocked seals the active segment (sync + close) and starts a new
// one whose first record is the next index.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	seg := segment{path: filepath.Join(l.dir, segmentName(l.count+1)), first: l.count + 1}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.segs = append(l.segs, seg)
	l.f = f
	l.size = 0
	l.cfg.Obs.Inc("store/segments_rotated")
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		l.lastSync = time.Now()
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.cfg.Obs.Inc("store/fsyncs")
	l.cfg.Obs.Observe("store/fsync_latency", time.Since(start))
	return nil
}

// ReplayFrom streams records with 1-based index >= from, in order, to fn.
// Whole segments before the one containing from are skipped. It reads
// from disk, so it sees exactly what recovery would.
func (l *Log) ReplayFrom(from uint64, fn func(idx uint64, rec []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == 0 {
		from = 1
	}
	for i, seg := range l.segs {
		// Skip segments that end before from.
		if i+1 < len(l.segs) && l.segs[i+1].first <= from {
			continue
		}
		idx := seg.first
		_, _, err := scanSegment(seg.path, func(payload []byte) error {
			defer func() { idx++ }()
			if idx < from || idx > l.count {
				return nil
			}
			return fn(idx, append([]byte(nil), payload...))
		})
		if err != nil && err != errTornTail {
			return err
		}
	}
	return nil
}

// Close syncs and closes the active segment. Further use returns
// os.ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.closed = true
	return l.f.Close()
}

// kill abandons the log without syncing — the crash-simulation exit.
// Closing the fd does not flush the page cache, so anything not yet
// synced by policy is exactly the tail a real crash could lose.
func (l *Log) kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.f.Close()
}
