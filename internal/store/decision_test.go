package store

import (
	"bytes"
	"testing"

	"permchain/internal/types"
)

func TestDecisionRoundTrip(t *testing.T) {
	recs := []*DecisionRecord{
		{TxID: "xs-1", Phase: PhaseBegin, Shard: -1, Participants: []types.ShardID{0, 2}},
		{TxID: "xs-1", Phase: PhasePrepare, Shard: 2, Participants: []types.ShardID{0, 2},
			Ops: []types.Op{{Code: types.OpAdd, Key: "s2/key9", Delta: -3}}},
		{TxID: "xs-1", Phase: PhaseDecide, Shard: -1, Participants: []types.ShardID{0, 2}, Commit: true},
		{TxID: "xs-1", Phase: PhaseCommit, Shard: 0, Participants: []types.ShardID{0, 2}, Commit: true},
		{TxID: "xs-2", Phase: PhaseAbort, Shard: 1, Participants: []types.ShardID{0, 1}},
	}
	for _, want := range recs {
		got, err := DecodeDecision(EncodeDecision(want))
		if err != nil {
			t.Fatalf("%s/%v: %v", want.TxID, want.Phase, err)
		}
		if !bytes.Equal(EncodeDecision(got), EncodeDecision(want)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecisionRejectsCorruption(t *testing.T) {
	rec := EncodeDecision(&DecisionRecord{TxID: "xs-1", Phase: PhasePrepare, Shard: 1})
	if _, err := DecodeDecision(rec[:len(rec)-2]); err == nil {
		t.Fatal("truncated record decoded")
	}
	bad := append([]byte(nil), rec...)
	bad[0] = 99 // version byte
	if _, err := DecodeDecision(bad); err == nil {
		t.Fatal("wrong version decoded")
	}
	if _, err := DecodeDecision(append(rec, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestDecisionMarkerSurvivesBlockCodec pins the property the recovery
// path depends on: a marker op embedded in a transaction survives the
// block WAL codec byte-for-byte, and DecisionFromTx finds it again.
func TestDecisionMarkerSurvivesBlockCodec(t *testing.T) {
	rec := &DecisionRecord{
		TxID: "xs-7", Phase: PhasePrepare, Shard: 1,
		Participants: []types.ShardID{0, 1},
		Ops:          []types.Op{{Code: types.OpAdd, Key: "s1/key3", Delta: 5}},
	}
	tx := &types.Transaction{ID: "2pc/prepare/xs-7/s1", Ops: []types.Op{DecisionMarkerOp(rec)}}
	blk := types.NewBlock(1, types.ZeroHash, 0, []*types.Transaction{tx})
	got, err := DecodeBlock(EncodeBlock(blk))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecisionFromTx(got.Txs[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil {
		t.Fatal("marker op lost through the block codec")
	}
	if !bytes.Equal(EncodeDecision(dec), EncodeDecision(rec)) {
		t.Fatalf("decision mismatch:\n got %+v\nwant %+v", dec, rec)
	}
	// Plain transactions carry no decision.
	plain := &types.Transaction{ID: "t", Ops: []types.Op{{Code: types.OpAdd, Key: "k", Delta: 1}}}
	if d, err := DecisionFromTx(plain); err != nil || d != nil {
		t.Fatalf("plain tx produced decision %v, err %v", d, err)
	}
}
