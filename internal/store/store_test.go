package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"permchain/internal/ledger"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// quickCfg returns a config with a small segment size so rotation is
// exercised, and fsync off so tests stay fast; individual tests override.
func quickCfg(dir string) Config {
	return Config{Dir: dir, SegmentBytes: 2048, Fsync: FsyncOff}
}

func mustOpenLog(t *testing.T, dir string, cfg Config) *Log {
	t.Helper()
	l, err := OpenLog(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%50)))); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, l *Log) []string {
	t.Helper()
	var out []string
	if err := l.ReplayFrom(1, func(idx uint64, rec []byte) error {
		if idx != uint64(len(out)+1) {
			return fmt.Errorf("idx %d, want %d", idx, len(out)+1)
		}
		out = append(out, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLogAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpenLog(t, dir, quickCfg(dir))
	appendN(t, l, 0, 40)
	want := replayAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpenLog(t, dir, quickCfg(dir))
	defer re.Close()
	if re.Count() != 40 {
		t.Fatalf("Count = %d", re.Count())
	}
	got := replayAll(t, re)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// The log stays appendable after recovery.
	appendN(t, re, 40, 45)
	if re.Count() != 45 {
		t.Fatalf("Count after append = %d", re.Count())
	}
}

func TestLogRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.SegmentBytes = 512
	o := obs.New()
	cfg.Obs = o
	l := mustOpenLog(t, dir, cfg)
	appendN(t, l, 0, 60)
	if l.Segments() < 3 {
		t.Fatalf("segments = %d, want several at 512-byte cap", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := o.Reg.Snapshot().Counters["store/segments_rotated"]; got < 2 {
		t.Fatalf("segments_rotated = %d", got)
	}

	re := mustOpenLog(t, dir, cfg)
	defer re.Close()
	if re.Count() != 60 {
		t.Fatalf("Count = %d", re.Count())
	}
	if got := replayAll(t, re); len(got) != 60 {
		t.Fatalf("replayed %d", len(got))
	}
}

func TestLogReplayFromSkipsPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.SegmentBytes = 512
	l := mustOpenLog(t, dir, cfg)
	appendN(t, l, 0, 60)
	defer l.Close()

	var idxs []uint64
	if err := l.ReplayFrom(37, func(idx uint64, rec []byte) error {
		idxs = append(idxs, idx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 24 || idxs[0] != 37 || idxs[len(idxs)-1] != 60 {
		t.Fatalf("ReplayFrom(37) = %d records [%d..%d]", len(idxs), idxs[0], idxs[len(idxs)-1])
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := mustOpenLog(t, dir, quickCfg(dir))
	appendN(t, l, 0, 10)
	l.Close()

	// Chop bytes off the final record, simulating a write cut short by a
	// crash (kill -9 mid-append).
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	cfg := quickCfg(dir)
	cfg.Obs = o
	re := mustOpenLog(t, dir, cfg)
	defer re.Close()
	if re.Count() != 9 {
		t.Fatalf("Count after torn tail = %d, want 9", re.Count())
	}
	if got := o.Reg.Snapshot().Counters["store/torn_truncations"]; got != 1 {
		t.Fatalf("torn_truncations = %d", got)
	}
	// Appending over the truncation point works and survives reopen.
	appendN(t, re, 100, 102)
	re.Close()
	re2 := mustOpenLog(t, dir, quickCfg(dir))
	defer re2.Close()
	if re2.Count() != 11 {
		t.Fatalf("Count = %d, want 11", re2.Count())
	}
}

func TestLogCorruptMidSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpenLog(t, dir, quickCfg(dir))
	appendN(t, l, 0, 10)
	l.Close()

	// Flip one payload byte of an early record: valid records follow, so
	// this is corruption, not a torn tail — recovery must refuse.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+3] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenLog(dir, quickCfg(dir))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "offset 0") || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("error does not locate the damage: %v", err)
	}
}

func TestLogCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.SegmentBytes = 512
	l := mustOpenLog(t, dir, cfg)
	appendN(t, l, 0, 60)
	if l.Segments() < 2 {
		t.Fatal("need multiple segments")
	}
	l.Close()

	// Truncate the FIRST (sealed) segment: even a tail-shaped wound there
	// is corruption, because a rotation sealed it long ago.
	entries, _ := os.ReadDir(dir)
	var first string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			first = filepath.Join(dir, e.Name())
			break
		}
	}
	info, _ := os.Stat(first)
	if err := os.Truncate(first, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLog(dir, cfg)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("error = %v", err)
	}
}

func TestFsyncPolicyCounters(t *testing.T) {
	run := func(p FsyncPolicy, every time.Duration) int64 {
		dir := t.TempDir()
		o := obs.New()
		cfg := Config{Dir: dir, Fsync: p, FsyncEvery: every, Obs: o, SegmentBytes: 1 << 20}
		l := mustOpenLog(t, dir, cfg)
		appendN(t, l, 0, 50)
		n := o.Reg.Snapshot().Counters["store/fsyncs"]
		l.Close()
		return n
	}
	always := run(FsyncAlways, 0)
	off := run(FsyncOff, 0)
	grouped := run(FsyncInterval, time.Hour)
	if always != 50 {
		t.Fatalf("always: fsyncs = %d, want 50", always)
	}
	if off != 0 {
		t.Fatalf("off: fsyncs = %d before close, want 0", off)
	}
	if grouped != 0 {
		t.Fatalf("interval(1h): fsyncs = %d before close, want 0", grouped)
	}
}

// --- block store ---

// buildBlocks makes n deterministic single-height blocks chained from
// genesis, with payloads that exercise every codec field.
func buildBlocks(n int) []*types.Block {
	chain := ledger.NewChain()
	var out []*types.Block
	for i := 0; i < n; i++ {
		tx := &types.Transaction{
			ID:         fmt.Sprintf("tx-%d", i),
			Client:     types.NodeID(i % 4),
			Enterprise: types.EnterpriseID(i % 3),
			Kind:       types.TxCross,
			Shards:     []types.ShardID{types.ShardID(i % 2), 7},
			Ops: []types.Op{
				{Code: types.OpPut, Key: fmt.Sprintf("k%d", i%11), Value: []byte(fmt.Sprintf("v%d", i))},
				{Code: types.OpAdd, Key: "sum", Delta: int64(i)},
			},
			Reads:   types.ReadSet{"sum": {Block: uint64(i), Tx: 0}},
			Writes:  types.WriteSet{fmt.Sprintf("k%d", i%11): []byte(fmt.Sprintf("v%d", i))},
			Private: i%5 == 0,
		}
		head := chain.Head()
		b := types.NewBlock(head.Header.Height+1, head.Hash(), types.NodeID(i%4), []*types.Transaction{tx})
		if err := chain.Append(b); err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// applyBlocks executes each block's ops against st, OX-style.
func applyBlocks(st *statedb.Store, blocks []*types.Block) {
	for _, b := range blocks {
		for i, tx := range b.Txs {
			st.Execute(types.Version{Block: b.Header.Height, Tx: i}, tx.Ops)
		}
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	for _, b := range buildBlocks(8) {
		rec := EncodeBlock(b)
		got, err := DecodeBlock(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != b.Hash() {
			t.Fatal("header hash changed through codec")
		}
		for i, tx := range got.Txs {
			orig := b.Txs[i]
			if tx.Hash() != orig.Hash() {
				t.Fatalf("tx %d hash changed", i)
			}
			if len(tx.Reads) != len(orig.Reads) || len(tx.Writes) != len(orig.Writes) {
				t.Fatalf("tx %d read/write sets lost", i)
			}
			for k, v := range orig.Reads {
				if tx.Reads[k] != v {
					t.Fatalf("tx %d read version for %q lost", i, k)
				}
			}
		}
		// Deterministic bytes: same block, same encoding.
		if string(EncodeBlock(got)) != string(rec) {
			t.Fatal("codec is not deterministic")
		}
	}
}

func TestBlockCodecRejectsDamage(t *testing.T) {
	b := buildBlocks(1)[0]
	rec := EncodeBlock(b)
	for _, mut := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"truncated", func(r []byte) []byte { return r[:len(r)-3] }},
		{"trailing garbage", func(r []byte) []byte { return append(append([]byte{}, r...), 0xde, 0xad) }},
		{"bad version", func(r []byte) []byte { c := append([]byte{}, r...); c[0] = 99; return c }},
	} {
		cp := mut.f(append([]byte{}, rec...))
		if _, err := DecodeBlock(cp); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", mut.name, err)
		}
	}
	// Payload bit-flip that keeps the structure parseable must trip the
	// Merkle-root cross-check.
	cp := append([]byte{}, rec...)
	cp[len(cp)-10] ^= 0x01
	if _, err := DecodeBlock(cp); err == nil {
		t.Fatal("bit-flipped body decoded cleanly")
	}
}

// TestKill9Recovery is the headline crash test: append N blocks, drop the
// process state without any Close/Sync (the kill -9 equivalent — the OS
// keeps what was written), reopen from disk, and require a Verify-clean
// identical ledger and an equal StateHash.
func TestKill9Recovery(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(30)
	cfg := Config{Dir: dir, SegmentBytes: 1024, Fsync: FsyncOff}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no Sync: the *Store is simply dropped.
	s = nil

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Height() != 30 {
		t.Fatalf("recovered height = %d", re.Height())
	}
	var recovered []*types.Block
	if err := re.ReplayBlocks(1, func(b *types.Block) error {
		recovered = append(recovered, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	chain, err := ledger.NewChainFromBlocks(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(); err != nil {
		t.Fatal(err)
	}
	want, err := ledger.NewChainFromBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !chain.EqualTo(want) {
		t.Fatal("recovered chain differs")
	}

	ref, got := statedb.New(), statedb.New()
	applyBlocks(ref, blocks)
	applyBlocks(got, recovered)
	if ref.StateHash() != got.StateHash() {
		t.Fatal("recovered state hash differs")
	}
}

func TestKill9TornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(12)
	cfg := Config{Dir: dir, SegmentBytes: 1 << 20, Fsync: FsyncOff}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	s = nil // kill -9

	// Tear the final record mid-write.
	seg := lastSegment(t, filepath.Join(dir, "wal"))
	info, _ := os.Stat(seg)
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Height() != 11 {
		t.Fatalf("height after torn tail = %d, want 11", re.Height())
	}
	var recovered []*types.Block
	if err := re.ReplayBlocks(1, func(b *types.Block) error {
		recovered = append(recovered, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	chain, err := ledger.NewChainFromBlocks(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(); err != nil {
		t.Fatal(err)
	}
	// Re-appending block 12 lands back at the full height.
	if err := re.AppendBlock(blocks[11]); err != nil {
		t.Fatal(err)
	}
	if re.Height() != 12 {
		t.Fatalf("height = %d", re.Height())
	}
}

func TestCorruptMidSegmentRecordIsError(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(12)
	cfg := Config{Dir: dir, SegmentBytes: 1 << 20, Fsync: FsyncAlways}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a payload byte well inside the segment.
	seg := lastSegment(t, filepath.Join(dir, "wal"))
	data, _ := os.ReadFile(seg)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(cfg)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt (not silent loss)", err)
	}
}

func TestManifestDurableFloorGuard(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(10)
	cfg := Config{Dir: dir, SegmentBytes: 1 << 20, Fsync: FsyncAlways}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil { // manifest now records height 10 durable
		t.Fatal(err)
	}
	if s.DurableHeight() != 10 {
		t.Fatalf("durable = %d", s.DurableHeight())
	}
	s.Close()

	// Losing blocks below the durable floor must fail the open, even when
	// the wound itself looks like a clean torn tail.
	seg := lastSegment(t, filepath.Join(dir, "wal"))
	info, _ := os.Stat(seg)
	if err := os.Truncate(seg, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	_, err = Open(cfg)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "durable") {
		t.Fatalf("error = %v", err)
	}
}

func TestSnapshotRoundTripAndReplaySuffix(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(20)
	cfg := Config{Dir: dir, SegmentBytes: 4096, Fsync: FsyncOff}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
		if b.Header.Height == 12 {
			if err := s.WriteSnapshot(12, st.Snapshot(), st.StateHash()); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ref, snap, ok, err := re.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	if ref.Height != 12 {
		t.Fatalf("snapshot height = %d", ref.Height)
	}
	restored := statedb.New()
	restored.Restore(snap)
	if restored.StateHash().Hex() != ref.StateHash {
		t.Fatal("restored state hash does not match manifest")
	}
	// Replay only the suffix.
	var replayed int
	if err := re.ReplayBlocks(ref.Height+1, func(b *types.Block) error {
		replayed++
		applyBlocks(restored, []*types.Block{b})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 8 {
		t.Fatalf("replayed %d blocks, want 8", replayed)
	}
	want := statedb.New()
	applyBlocks(want, blocks)
	if restored.StateHash() != want.StateHash() {
		t.Fatal("snapshot+suffix state differs from full replay")
	}
}

func TestSnapshotLineagePruning(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(10)
	cfg := Config{Dir: dir, Fsync: FsyncOff}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
		if err := s.WriteSnapshot(b.Header.Height, st.Snapshot(), st.StateHash()); err != nil {
			t.Fatal(err)
		}
	}
	refs := s.SnapshotRefs()
	if len(refs) != keepSnapshots {
		t.Fatalf("lineage holds %d refs, want %d", len(refs), keepSnapshots)
	}
	if refs[len(refs)-1].Height != 10 || refs[0].Height != 8 {
		t.Fatalf("lineage = %+v", refs)
	}
	// Files that fell off the lineage are gone; retained ones exist.
	entries, _ := os.ReadDir(dir)
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			snaps++
		}
	}
	if snaps != keepSnapshots {
		t.Fatalf("%d snapshot files on disk, want %d", snaps, keepSnapshots)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(10)
	cfg := Config{Dir: dir, Fsync: FsyncOff}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := statedb.New()
	for i, b := range blocks {
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
		applyBlocks(st, blocks[i:i+1])
		if b.Header.Height == 5 || b.Header.Height == 9 {
			if err := s.WriteSnapshot(b.Header.Height, st.Snapshot(), st.StateHash()); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()

	// Destroy the newest checkpoint file.
	refs := func() []SnapshotRef {
		re, _ := Open(cfg)
		defer re.Close()
		return re.SnapshotRefs()
	}()
	if err := os.WriteFile(filepath.Join(dir, refs[len(refs)-1].File), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ref, snap, ok, err := re.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if ref.Height != 5 || snap == nil {
		t.Fatalf("fell back to height %d, want 5", ref.Height)
	}
}

func TestAppendBlockRejectsWrongHeight(t *testing.T) {
	dir := t.TempDir()
	blocks := buildBlocks(3)
	s, err := Open(Config{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBlock(blocks[1]); err == nil {
		t.Fatal("height gap accepted")
	}
	if err := s.AppendBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBlock(blocks[0]); err == nil {
		t.Fatal("duplicate height accepted")
	}
}
