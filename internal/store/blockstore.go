package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"permchain/internal/statedb"
	"permchain/internal/types"
)

// manifestName is the block store's metadata file, replaced atomically.
const manifestName = "MANIFEST.json"

// keepSnapshots is how many snapshot generations the lineage retains;
// older checkpoint files are deleted when a new one lands.
const keepSnapshots = 3

// SnapshotRef is one entry in the manifest's snapshot lineage.
type SnapshotRef struct {
	// Height is the block height the checkpoint captures: the state after
	// applying blocks 1..Height.
	Height uint64 `json:"height"`
	// File is the checkpoint's file name within the store directory.
	File string `json:"file"`
	// StateHash is the hex statedb.StateHash of the checkpointed state;
	// recovery re-derives it after restore and refuses a mismatch.
	StateHash string `json:"state_hash"`
}

// manifest is the store's durable metadata. It is small, rewritten whole,
// and installed by atomic rename, so a crash leaves either the old or the
// new version — never a torn one.
type manifest struct {
	Version int `json:"version"`
	// LastDurableHeight is the highest block height known fsynced. The
	// block log may legitimately hold more (un-synced tail under
	// FsyncOff/Interval, truncatable on crash) but never less: recovering
	// fewer blocks than this is data loss and fails the open.
	LastDurableHeight uint64 `json:"last_durable_height"`
	// Segments lists the log's segment files, oldest first.
	Segments []string `json:"segments"`
	// Snapshots is the checkpoint lineage, oldest first.
	Snapshots []SnapshotRef `json:"snapshots"`
}

// Store is the durable block store: a Log whose record i is the block at
// height i, plus a manifest and state-snapshot lineage. One Store holds
// one node's chain; it is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	cfg    Config
	log    *Log
	man    manifest
	height uint64
	closed bool
	// async is the background snapshot writer, started lazily by the
	// first WriteSnapshotAsync (nil until then).
	async *asyncSnap
}

// Open opens (creating if needed) the store rooted at cfg.Dir, running
// crash recovery on the block log: segments are CRC-scanned, a torn tail
// is truncated, and the recovered height is checked against the
// manifest's durable floor.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.defaulted()
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: cfg.Dir, cfg: cfg}

	fresh := true
	raw, err := os.ReadFile(filepath.Join(cfg.Dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &s.man); err != nil {
			return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
		}
		fresh = false
	case os.IsNotExist(err):
		s.man = manifest{Version: 1}
	default:
		return nil, err
	}

	for _, name := range s.man.Segments {
		if _, err := os.Stat(filepath.Join(cfg.Dir, "wal", name)); err != nil {
			return nil, fmt.Errorf("%w: manifest lists segment %s which is missing", ErrCorrupt, name)
		}
	}

	l, err := OpenLog(filepath.Join(cfg.Dir, "wal"), cfg)
	if err != nil {
		return nil, err
	}
	s.log = l
	s.height = l.Count()
	if s.height < s.man.LastDurableHeight {
		l.Close()
		return nil, fmt.Errorf("%w: block log recovered to height %d but manifest says %d is durable",
			ErrCorrupt, s.height, s.man.LastDurableHeight)
	}
	if fresh {
		if err := s.writeManifestLocked(); err != nil {
			l.Close()
			return nil, err
		}
	}
	return s, nil
}

// Height returns the height of the last appended block (0 = only genesis,
// which is implicit and never stored).
func (s *Store) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.height
}

// DurableHeight returns the manifest's durable floor.
func (s *Store) DurableHeight() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.LastDurableHeight
}

// Segments returns the number of log segment files.
func (s *Store) Segments() int { return s.log.Segments() }

// AppendBlock encodes and appends the block, which must extend the stored
// chain by exactly one height.
func (s *Store) AppendBlock(b *types.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	if b.Header.Height != s.height+1 {
		return fmt.Errorf("store: append height %d, want %d", b.Header.Height, s.height+1)
	}
	if err := s.log.Append(EncodeBlock(b)); err != nil {
		return err
	}
	s.height++
	return nil
}

// Sync forces the block log to stable storage and advances the manifest's
// durable floor to the current height.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.log.Sync(); err != nil {
		return err
	}
	if s.man.LastDurableHeight != s.height {
		return s.writeManifestLocked()
	}
	return nil
}

// ReplayBlocks streams stored blocks with height >= from, decoded and
// body-verified, to fn. Segments wholly below from are skipped.
func (s *Store) ReplayBlocks(from uint64, fn func(*types.Block) error) error {
	return s.log.ReplayFrom(from, func(idx uint64, rec []byte) error {
		b, err := DecodeBlock(rec)
		if err != nil {
			return fmt.Errorf("block %d: %w", idx, err)
		}
		if b.Header.Height != idx {
			return fmt.Errorf("%w: record %d decodes to height %d", ErrCorrupt, idx, b.Header.Height)
		}
		return fn(b)
	})
}

// WriteSnapshot checkpoints the world state as of the given height: the
// block log is synced first (a checkpoint must never be ahead of the
// durable blocks it summarizes), the encoded snapshot is written to a
// temporary file, fsynced, atomically renamed into place, and the
// manifest lineage is updated — trimming to the newest keepSnapshots and
// deleting the files that fell off.
func (s *Store) WriteSnapshot(height uint64, snap *statedb.Snapshot, stateHash types.Hash) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	if height > s.height {
		return fmt.Errorf("store: snapshot height %d beyond stored height %d", height, s.height)
	}
	if n := len(s.man.Snapshots); n > 0 && height < s.man.Snapshots[n-1].Height {
		return fmt.Errorf("store: snapshot height %d below newest checkpoint %d", height, s.man.Snapshots[n-1].Height)
	}
	if err := s.log.Sync(); err != nil {
		return err
	}

	payload := EncodeStateSnapshot(snap)
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	name := fmt.Sprintf("snap-%016x.bin", height)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	syncDir(s.dir)

	s.man.Snapshots = append(s.man.Snapshots, SnapshotRef{
		Height: height, File: name, StateHash: stateHash.Hex(),
	})
	for len(s.man.Snapshots) > keepSnapshots {
		old := s.man.Snapshots[0]
		s.man.Snapshots = s.man.Snapshots[1:]
		os.Remove(filepath.Join(s.dir, old.File))
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	s.cfg.Obs.Inc("store/snapshots_written")
	s.cfg.Obs.Add("store/snapshot_bytes_written", int64(len(payload)+frameHeader))
	s.cfg.Obs.Observe("store/snapshot_latency", time.Since(start))
	return nil
}

// LatestSnapshot loads the newest usable checkpoint, walking the lineage
// backwards past any that fail their CRC (each skip is counted as
// store/snapshot_skipped). ok is false when no usable checkpoint exists.
func (s *Store) LatestSnapshot() (ref SnapshotRef, snap *statedb.Snapshot, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.man.Snapshots) - 1; i >= 0; i-- {
		ref = s.man.Snapshots[i]
		if ref.Height > s.height {
			// A checkpoint ahead of the recovered log (lost tail): useless.
			s.cfg.Obs.Inc("store/snapshot_skipped")
			continue
		}
		snap, err = readSnapshotFile(filepath.Join(s.dir, ref.File))
		if err != nil {
			s.cfg.Obs.Inc("store/snapshot_skipped")
			continue
		}
		return ref, snap, true, nil
	}
	return SnapshotRef{}, nil, false, nil
}

// SnapshotRefs returns a copy of the checkpoint lineage, oldest first.
func (s *Store) SnapshotRefs() []SnapshotRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SnapshotRef, len(s.man.Snapshots))
	copy(out, s.man.Snapshots)
	return out
}

func readSnapshotFile(path string) (*statedb.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeader {
		return nil, fmt.Errorf("%w: snapshot %s truncated", ErrCorrupt, filepath.Base(path))
	}
	length := binary.BigEndian.Uint32(data[0:])
	crc := binary.BigEndian.Uint32(data[4:])
	if int(length) != len(data)-frameHeader {
		return nil, fmt.Errorf("%w: snapshot %s length %d, have %d bytes", ErrCorrupt, filepath.Base(path), length, len(data)-frameHeader)
	}
	payload := data[frameHeader:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: snapshot %s fails CRC", ErrCorrupt, filepath.Base(path))
	}
	return DecodeStateSnapshot(payload)
}

// writeManifestLocked rewrites MANIFEST.json via temp-file + fsync +
// atomic rename, then fsyncs the directory.
func (s *Store) writeManifestLocked() error {
	s.man.Version = 1
	s.man.LastDurableHeight = s.height
	s.man.Segments = s.man.Segments[:0]
	s.log.mu.Lock()
	for _, seg := range s.log.segs {
		s.man.Segments = append(s.man.Segments, filepath.Base(seg.path))
	}
	s.log.mu.Unlock()

	raw, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	syncDir(s.dir)
	s.cfg.Obs.Inc("store/manifest_writes")
	return nil
}

// syncDir fsyncs a directory so renames within it are durable. Errors are
// ignored: some filesystems refuse directory fsync, and the rename itself
// already ordered correctly on the ones we target.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close drains any queued async checkpoint, syncs the log, records the
// final durable height in the manifest, and closes the store. Idempotent.
func (s *Store) Close() error {
	// Drain outside s.mu: the worker takes s.mu inside WriteSnapshot.
	err := s.stopSnapWorker(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if serr := s.syncLocked(); err == nil {
		err = serr
	}
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}
