package store

import (
	"fmt"
	"strings"

	"permchain/internal/types"
	"permchain/internal/wire"
)

// Cross-shard 2PC decision records. Each phase transition of a
// cross-shard transaction is made durable by ordering a marker
// transaction through the participant shard's own consensus; the marker
// carries one of these records, encoded with the store codec, in an
// OpGet operation's Value (a read op, so the record rides in the block
// WAL without touching world state). Recovery rebuilds the 2PC state
// machine for every in-doubt transaction by scanning recovered blocks
// for these frames.

// DecisionPhase is a 2PC state-machine transition.
type DecisionPhase uint8

// The record kinds, in protocol order.
const (
	// PhaseBegin is the coordinator's admission record: it fixes the
	// transaction's global cross-shard order (coordinator-based protocols
	// only; flattened protocols have no coordinator rounds).
	PhaseBegin DecisionPhase = iota + 1
	// PhasePrepare is a participant's durable vote: its locks are held and
	// its slice of the transaction (carried in Ops) can be applied.
	PhasePrepare
	// PhaseDecide is the coordinator's durable global verdict.
	PhaseDecide
	// PhaseCommit is a participant's durable outcome: the same marker
	// transaction also carries the shard's data operations, so the
	// outcome and its effects are one atomic WAL record.
	PhaseCommit
	// PhaseAbort is a participant's durable negative outcome.
	PhaseAbort
)

// String names the phase.
func (p DecisionPhase) String() string {
	switch p {
	case PhaseBegin:
		return "begin"
	case PhasePrepare:
		return "prepare"
	case PhaseDecide:
		return "decide"
	case PhaseCommit:
		return "commit"
	case PhaseAbort:
		return "abort"
	default:
		return fmt.Sprintf("DecisionPhase(%d)", uint8(p))
	}
}

// DecisionMarkerPrefix prefixes the key of every marker operation, so
// scans can recognize 2PC frames without decoding every op. The reserved
// "!" leader keeps the namespace disjoint from client keys.
const DecisionMarkerPrefix = "!2pc/"

// DecisionRecord is one durable 2PC frame.
type DecisionRecord struct {
	// TxID is the client transaction this record belongs to.
	TxID string
	// Phase is the state-machine transition being made durable.
	Phase DecisionPhase
	// Shard is the recording shard; the coordinator/reference chain
	// records with Shard = -1.
	Shard types.ShardID
	// Participants is the full participant set, so any single shard's
	// record is enough to audit the all-or-nothing invariant.
	Participants []types.ShardID
	// Commit is the verdict on PhaseDecide records.
	Commit bool
	// Ops is this shard's slice of the transaction's operations. Carried
	// on PhasePrepare so recovery can still apply a commit decision whose
	// outcome marker never landed.
	Ops []types.Op
}

// decisionVersion versions the frame layout independently of the block
// codec.
const decisionVersion = 1

// DecisionCodec (wire tag 176) lets decision records travel as typed
// network frames; the durable in-op encoding below keeps its own
// version byte and layout.
var DecisionCodec = wire.Register[*DecisionRecord](176, putDecision, getDecision)

func putDecision(e *wire.Encoder, rp **DecisionRecord) {
	r := *rp
	e.Str(r.TxID)
	e.U8(byte(r.Phase))
	e.I64(int64(r.Shard))
	e.U32(uint32(len(r.Participants)))
	for _, s := range r.Participants {
		e.I64(int64(s))
	}
	e.Bool(r.Commit)
	e.U32(uint32(len(r.Ops)))
	for i := range r.Ops {
		wire.PutOp(e, &r.Ops[i])
	}
}

func getDecision(d *wire.Decoder, rp **DecisionRecord) {
	r := *rp
	if r == nil {
		r = &DecisionRecord{}
		*rp = r
	}
	r.TxID = d.Str()
	r.Phase = DecisionPhase(d.U8())
	r.Shard = types.ShardID(d.I64())
	n := d.Count(8)
	r.Participants = r.Participants[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		r.Participants = append(r.Participants, types.ShardID(d.I64()))
	}
	if len(r.Participants) == 0 {
		r.Participants = nil
	}
	r.Commit = d.Bool()
	n = d.Count(8)
	r.Ops = r.Ops[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var op types.Op
		wire.GetOp(d, &op)
		r.Ops = append(r.Ops, op)
	}
	if len(r.Ops) == 0 {
		r.Ops = nil
	}
}

// EncodeDecision serializes a decision record deterministically.
func EncodeDecision(r *DecisionRecord) []byte {
	e := &wire.Encoder{}
	e.U8(decisionVersion)
	putDecision(e, &r)
	return e.Frame()
}

// DecodeDecision parses an EncodeDecision frame.
func DecodeDecision(rec []byte) (*DecisionRecord, error) {
	d := wire.NewDecoder(rec)
	if v := d.U8(); d.Err() == nil && v != decisionVersion {
		return nil, fmt.Errorf("%w: decision frame version %d, want %d", ErrCorrupt, v, decisionVersion)
	}
	var r *DecisionRecord
	getDecision(d, &r)
	if err := d.Done(); err != nil {
		return nil, corrupt(err)
	}
	return r, nil
}

// DecisionFromTx extracts the 2PC record carried by a marker operation in
// tx, if any. Marker operations are OpGet reads on a DecisionMarkerPrefix
// key whose Value holds the encoded frame.
func DecisionFromTx(tx *types.Transaction) (*DecisionRecord, error) {
	for _, op := range tx.Ops {
		if op.Code == types.OpGet && strings.HasPrefix(op.Key, DecisionMarkerPrefix) && len(op.Value) > 0 {
			return DecodeDecision(op.Value)
		}
	}
	return nil, nil
}

// DecisionMarkerOp builds the marker operation embedding rec. As an OpGet
// it is a state no-op when the block executes, but the frame is part of
// the block's durable record and Merkle root.
func DecisionMarkerOp(rec *DecisionRecord) types.Op {
	return types.Op{
		Code:  types.OpGet,
		Key:   DecisionMarkerPrefix + rec.TxID,
		Value: EncodeDecision(rec),
	}
}
