package store

import (
	"sync"

	"permchain/internal/statedb"
	"permchain/internal/types"
)

// snapshotReq is one queued checkpoint request: the copy-on-write state
// capture the executor took at height, to be made durable off the commit
// path.
type snapshotReq struct {
	height uint64
	snap   *statedb.Snapshot
	hash   types.Hash
}

// asyncSnap is the store's background snapshot writer: a single worker
// goroutine with a one-slot pending queue. The commit pipeline hands it a
// state capture and keeps applying blocks; the worker runs the expensive
// part (serialize, fsync, rename, manifest update) concurrently. A new
// request arriving while one is already pending supersedes it — the
// lineage only ever needs the newest checkpoint, so writing a stale
// intermediate one would be wasted fsyncs.
//
// Durability is unchanged from the synchronous path: the worker calls
// WriteSnapshot, which syncs the block log first and advances the
// MANIFEST only after the checkpoint file is durable. A crash mid-write
// leaves a .tmp file the manifest never references.
type asyncSnap struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending *snapshotReq
	busy    bool
	stopped bool
	err     error // last write failure, surfaced by Drain/Close
	done    chan struct{}
}

func (s *Store) ensureSnapWorkerLocked() {
	if s.async != nil {
		return
	}
	a := &asyncSnap{done: make(chan struct{})}
	a.cond = sync.NewCond(&a.mu)
	s.async = a
	go s.snapWorker(a)
}

// WriteSnapshotAsync queues a checkpoint for the background writer and
// returns immediately. The caller must not mutate snap afterwards. If a
// previous request is still waiting its turn it is superseded (counted as
// store/snapshots_superseded); an in-progress write always completes.
func (s *Store) WriteSnapshotAsync(height uint64, snap *statedb.Snapshot, stateHash types.Hash) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.ensureSnapWorkerLocked()
	a := s.async
	s.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return
	}
	if a.pending != nil {
		s.cfg.Obs.Inc("store/snapshots_superseded")
	}
	a.pending = &snapshotReq{height: height, snap: snap, hash: stateHash}
	s.cfg.Obs.SetGauge("store/snapshot_inflight", 1)
	a.cond.Broadcast()
}

func (s *Store) snapWorker(a *asyncSnap) {
	defer close(a.done)
	for {
		a.mu.Lock()
		for a.pending == nil && !a.stopped {
			a.cond.Wait()
		}
		if a.pending == nil && a.stopped {
			a.mu.Unlock()
			return
		}
		req := a.pending
		a.pending = nil
		a.busy = true
		a.mu.Unlock()

		err := s.WriteSnapshot(req.height, req.snap, req.hash)

		a.mu.Lock()
		a.busy = false
		if err != nil {
			a.err = err
			s.cfg.Obs.Inc("store/snapshot_errors")
			s.cfg.Obs.NoteStoreError(err)
			s.cfg.Obs.Logger("store").Error("async snapshot write failed",
				"height", req.height, "err", err)
		} else {
			s.cfg.Obs.Inc("store/snapshots_async")
		}
		if a.pending == nil {
			s.cfg.Obs.SetGauge("store/snapshot_inflight", 0)
		}
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

// SnapshotInFlight reports whether an async checkpoint is queued or being
// written. The commit pipeline uses it to count blocks applied while a
// snapshot is in flight — the deterministic witness that checkpointing
// left the critical path.
func (s *Store) SnapshotInFlight() bool {
	s.mu.Lock()
	a := s.async
	s.mu.Unlock()
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pending != nil || a.busy
}

// DrainSnapshots blocks until every queued checkpoint has been written
// and returns the last write error, if any. Close calls it, so a cleanly
// closed store never loses a queued checkpoint.
func (s *Store) DrainSnapshots() error {
	s.mu.Lock()
	a := s.async
	s.mu.Unlock()
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.pending != nil || a.busy {
		a.cond.Wait()
	}
	return a.err
}

// stopSnapWorker stops the worker goroutine. With drain, queued work is
// written first; without, any pending request is abandoned (an
// in-progress write still completes — WriteSnapshot is not interruptible,
// by design: it must never leave a half-installed manifest).
func (s *Store) stopSnapWorker(drain bool) error {
	s.mu.Lock()
	a := s.async
	s.mu.Unlock()
	if a == nil {
		return nil
	}
	var err error
	if drain {
		err = s.DrainSnapshots()
	}
	a.mu.Lock()
	if !drain {
		a.pending = nil
	}
	a.stopped = true
	a.cond.Broadcast()
	a.mu.Unlock()
	<-a.done
	return err
}

// Kill abandons the store without syncing anything — the in-process
// stand-in for kill -9 used by crash tests and the chaos harness. The
// async snapshot worker is stopped (dropping any queued checkpoint), the
// store is marked closed so later appends fail, and the log's file
// handles are abandoned un-synced: whatever the OS has not flushed is the
// torn tail recovery must cope with. Unlike Close, the manifest's durable
// floor is NOT advanced.
func (s *Store) Kill() {
	s.stopSnapWorker(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.log.kill()
}
