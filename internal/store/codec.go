package store

import (
	"errors"
	"fmt"
	"sort"

	"permchain/internal/statedb"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// The on-disk codec, built on the shared wire primitives
// (internal/wire) so a block on disk and a transaction in flight spell
// their fields identically: deterministic (maps serialize in sorted key
// order), big-endian integers, length-prefixed variable fields.
// Identical logical content always produces identical bytes — and
// identical CRCs.

// codecVersion is the first byte of every encoded block and snapshot.
const codecVersion = 1

// corrupt maps wire decode failures onto the store's ErrCorrupt so
// callers keep one error to test for regardless of which layer caught
// the damage.
func corrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// EncodeBlock serializes a block, including each transaction's declared
// read/write sets — the XOV architecture re-validates them on replay, so
// they are part of the durable record.
func EncodeBlock(b *types.Block) []byte {
	e := &wire.Encoder{}
	e.U8(codecVersion)
	e.U64(b.Header.Height)
	e.Hash(b.Header.PrevHash)
	e.Hash(b.Header.TxRoot)
	e.I64(int64(b.Header.Proposer))
	e.U32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		tx := tx
		wire.PutTx(e, &tx)
	}
	return e.Frame()
}

// DecodeBlock parses an EncodeBlock record and re-verifies that the
// header's Merkle root matches the decoded body — a record whose CRC
// passes but whose content was forged upstream still fails here.
func DecodeBlock(rec []byte) (*types.Block, error) {
	d := wire.NewDecoder(rec)
	if v := d.U8(); d.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: block codec version %d, want %d", ErrCorrupt, v, codecVersion)
	}
	b := &types.Block{}
	b.Header.Height = d.U64()
	b.Header.PrevHash = d.Hash()
	b.Header.TxRoot = d.Hash()
	b.Header.Proposer = types.NodeID(d.I64())
	n := d.Count(8)
	for i := 0; i < n && d.Err() == nil; i++ {
		var tx *types.Transaction
		wire.GetTx(d, &tx)
		b.Txs = append(b.Txs, tx)
	}
	if err := d.Done(); err != nil {
		return nil, corrupt(err)
	}
	if b.Header.TxRoot != types.TxMerkleRoot(b.Txs) {
		return nil, fmt.Errorf("%w: block %d merkle root does not match decoded body", ErrCorrupt, b.Header.Height)
	}
	return b, nil
}

// EncodeStateSnapshot serializes a statedb snapshot deterministically
// (entries are already sorted; history keys are sorted here).
func EncodeStateSnapshot(s *statedb.Snapshot) []byte {
	e := &wire.Encoder{}
	e.U8(codecVersion)
	e.U32(uint32(s.HistLimit))
	e.U32(uint32(len(s.Entries)))
	for _, ent := range s.Entries {
		e.Str(ent.Key)
		e.Bytes(ent.Value)
		e.U64(ent.Version.Block)
		e.I64(int64(ent.Version.Tx))
	}
	keys := make([]string, 0, len(s.Hist))
	for k := range s.Hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		h := s.Hist[k]
		e.U32(uint32(len(h)))
		for _, he := range h {
			e.U64(he.Version.Block)
			e.I64(int64(he.Version.Tx))
			e.Bytes(he.Value)
		}
	}
	return e.Frame()
}

// DecodeStateSnapshot parses an EncodeStateSnapshot record.
func DecodeStateSnapshot(rec []byte) (*statedb.Snapshot, error) {
	d := wire.NewDecoder(rec)
	if v := d.U8(); d.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: snapshot codec version %d, want %d", ErrCorrupt, v, codecVersion)
	}
	s := &statedb.Snapshot{HistLimit: int(d.U32())}
	n := d.Count(8)
	for i := 0; i < n && d.Err() == nil; i++ {
		var ent statedb.Entry
		ent.Key = d.Str()
		ent.Value = d.Bytes()
		ent.Version = types.Version{Block: d.U64(), Tx: int(d.I64())}
		s.Entries = append(s.Entries, ent)
	}
	n = d.Count(8)
	if n > 0 && d.Err() == nil {
		s.Hist = make(map[string][]statedb.HistEntry, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		m := d.Count(8)
		var hs []statedb.HistEntry
		for j := 0; j < m && d.Err() == nil; j++ {
			var he statedb.HistEntry
			he.Version = types.Version{Block: d.U64(), Tx: int(d.I64())}
			he.Value = d.Bytes()
			hs = append(hs, he)
		}
		s.Hist[k] = hs
	}
	if err := d.Done(); err != nil {
		return nil, corrupt(err)
	}
	return s, nil
}
