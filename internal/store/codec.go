package store

import (
	"encoding/binary"
	"fmt"
	"sort"

	"permchain/internal/statedb"
	"permchain/internal/types"
)

// The on-disk codec: a hand-rolled, deterministic binary encoding for
// blocks and state snapshots. Deterministic (maps are serialized in
// sorted key order) so that identical logical content always produces
// identical bytes — and identical CRCs. Integers are big-endian;
// variable-length fields are length-prefixed.

// codecVersion is the first byte of every encoded block and snapshot.
const codecVersion = 1

var errShort = fmt.Errorf("%w: record truncated", ErrCorrupt)

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte)         { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)      { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)      { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)       { e.u64(uint64(v)) }
func (e *encoder) hash(h types.Hash) { e.buf = append(e.buf, h[:]...) }
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) { e.bytes([]byte(s)) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() { d.err = errShort }
func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *decoder) i64() int64 { return int64(d.u64()) }
func (d *decoder) hash() types.Hash {
	var h types.Hash
	if d.err != nil || d.off+len(h) > len(d.buf) {
		d.fail()
		return h
	}
	copy(h[:], d.buf[d.off:])
	d.off += len(h)
	return h
}
func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:])
	d.off += int(n)
	return v
}
func (d *decoder) str() string { return string(d.bytes()) }

// count reads a u32 element count and sanity-bounds it against the bytes
// remaining, so a damaged count cannot drive a giant allocation.
func (d *decoder) count(minElemBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || n > (len(d.buf)-d.off)/minElemBytes+1 {
		d.fail()
		return 0
	}
	return n
}

// EncodeBlock serializes a block, including each transaction's declared
// read/write sets — the XOV architecture re-validates them on replay, so
// they are part of the durable record.
func EncodeBlock(b *types.Block) []byte {
	e := &encoder{buf: make([]byte, 0, 256)}
	e.u8(codecVersion)
	e.u64(b.Header.Height)
	e.hash(b.Header.PrevHash)
	e.hash(b.Header.TxRoot)
	e.i64(int64(b.Header.Proposer))
	e.u32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		encodeTx(e, tx)
	}
	return e.buf
}

func encodeTx(e *encoder, tx *types.Transaction) {
	e.str(tx.ID)
	e.i64(int64(tx.Client))
	e.i64(int64(tx.Enterprise))
	e.u8(byte(tx.Kind))
	e.u32(uint32(len(tx.Shards)))
	for _, s := range tx.Shards {
		e.i64(int64(s))
	}
	e.u32(uint32(len(tx.Ops)))
	for _, op := range tx.Ops {
		e.u8(byte(op.Code))
		e.str(op.Key)
		e.str(op.Key2)
		e.bytes(op.Value)
		e.i64(op.Delta)
	}
	e.u32(uint32(len(tx.Reads)))
	for _, k := range tx.Reads.Keys() {
		v := tx.Reads[k]
		e.str(k)
		e.u64(v.Block)
		e.i64(int64(v.Tx))
	}
	e.u32(uint32(len(tx.Writes)))
	for _, k := range tx.Writes.Keys() {
		e.str(k)
		e.bytes(tx.Writes[k])
	}
	if tx.Private {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// DecodeBlock parses an EncodeBlock record and re-verifies that the
// header's Merkle root matches the decoded body — a record whose CRC
// passes but whose content was forged upstream still fails here.
func DecodeBlock(rec []byte) (*types.Block, error) {
	d := &decoder{buf: rec}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: block codec version %d, want %d", ErrCorrupt, v, codecVersion)
	}
	b := &types.Block{}
	b.Header.Height = d.u64()
	b.Header.PrevHash = d.hash()
	b.Header.TxRoot = d.hash()
	b.Header.Proposer = types.NodeID(d.i64())
	n := d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		b.Txs = append(b.Txs, decodeTx(d))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(rec) {
		return nil, fmt.Errorf("%w: %d trailing bytes after block", ErrCorrupt, len(rec)-d.off)
	}
	if b.Header.TxRoot != types.TxMerkleRoot(b.Txs) {
		return nil, fmt.Errorf("%w: block %d merkle root does not match decoded body", ErrCorrupt, b.Header.Height)
	}
	return b, nil
}

func decodeTx(d *decoder) *types.Transaction {
	tx := &types.Transaction{}
	tx.ID = d.str()
	tx.Client = types.NodeID(d.i64())
	tx.Enterprise = types.EnterpriseID(d.i64())
	tx.Kind = types.TxKind(d.u8())
	n := d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		tx.Shards = append(tx.Shards, types.ShardID(d.i64()))
	}
	n = d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		var op types.Op
		op.Code = types.OpCode(d.u8())
		op.Key = d.str()
		op.Key2 = d.str()
		op.Value = d.bytes()
		op.Delta = d.i64()
		tx.Ops = append(tx.Ops, op)
	}
	n = d.count(8)
	if n > 0 && d.err == nil {
		tx.Reads = make(types.ReadSet, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		tx.Reads[k] = types.Version{Block: d.u64(), Tx: int(d.i64())}
	}
	n = d.count(8)
	if n > 0 && d.err == nil {
		tx.Writes = make(types.WriteSet, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		tx.Writes[k] = d.bytes()
	}
	tx.Private = d.u8() == 1
	return tx
}

// EncodeStateSnapshot serializes a statedb snapshot deterministically
// (entries are already sorted; history keys are sorted here).
func EncodeStateSnapshot(s *statedb.Snapshot) []byte {
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.u8(codecVersion)
	e.u32(uint32(s.HistLimit))
	e.u32(uint32(len(s.Entries)))
	for _, ent := range s.Entries {
		e.str(ent.Key)
		e.bytes(ent.Value)
		e.u64(ent.Version.Block)
		e.i64(int64(ent.Version.Tx))
	}
	keys := make([]string, 0, len(s.Hist))
	for k := range s.Hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.str(k)
		h := s.Hist[k]
		e.u32(uint32(len(h)))
		for _, he := range h {
			e.u64(he.Version.Block)
			e.i64(int64(he.Version.Tx))
			e.bytes(he.Value)
		}
	}
	return e.buf
}

// DecodeStateSnapshot parses an EncodeStateSnapshot record.
func DecodeStateSnapshot(rec []byte) (*statedb.Snapshot, error) {
	d := &decoder{buf: rec}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: snapshot codec version %d, want %d", ErrCorrupt, v, codecVersion)
	}
	s := &statedb.Snapshot{HistLimit: int(d.u32())}
	n := d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		var ent statedb.Entry
		ent.Key = d.str()
		ent.Value = d.bytes()
		ent.Version = types.Version{Block: d.u64(), Tx: int(d.i64())}
		s.Entries = append(s.Entries, ent)
	}
	n = d.count(8)
	if n > 0 && d.err == nil {
		s.Hist = make(map[string][]statedb.HistEntry, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		m := d.count(8)
		var hs []statedb.HistEntry
		for j := 0; j < m && d.err == nil; j++ {
			var he statedb.HistEntry
			he.Version = types.Version{Block: d.u64(), Tx: int(d.i64())}
			he.Value = d.bytes()
			hs = append(hs, he)
		}
		s.Hist[k] = hs
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(rec) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(rec)-d.off)
	}
	return s, nil
}
