package chaos

// Chain-level chaos: the schedules in this package exercise consensus
// replicas against their decision logs; these tests drive the full
// core.Chain commit pipeline through the same shapes — a full-cluster
// restart and an un-drained crash — and check the client-visible
// contract: every receipt settles exactly once, and the Figure 1
// replication invariant survives recovery.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"permchain/internal/arch"
	"permchain/internal/core"
	"permchain/internal/obs"
	"permchain/internal/store"
	"permchain/internal/types"
)

func pipelineTx(id string, delta int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: "ctr", Delta: delta}}}
}

// settleAll waits out every receipt and asserts each settled exactly once
// (a second settlement would re-close Done and panic; here we also check
// none is still open).
func settleAll(t *testing.T, receipts []*core.Receipt, timeout time.Duration) (committed, stopped int) {
	t.Helper()
	for i, r := range receipts {
		if err := r.Wait(timeout); err != nil && !errors.Is(err, core.ErrStopped) {
			t.Fatalf("receipt %d: %v", i, err)
		}
		switch {
		case r.Err() == nil && r.Status() == arch.TxCommitted:
			committed++
		case errors.Is(r.Err(), core.ErrStopped):
			stopped++
		default:
			t.Fatalf("receipt %d: status %v err %v", i, r.Status(), r.Err())
		}
	}
	return committed, stopped
}

func TestCoreReceiptsExactlyOnceAcrossFullRestart(t *testing.T) {
	// The FullClusterRestartSchedule shape at chain level: warm workload,
	// quiesce, take the whole cluster down, recover from disk, post
	// workload. Every receipt — warm and post — must fire exactly once.
	const warm, post = 16, 8
	o := obs.New()
	cfg := core.Config{Nodes: 4, Protocol: core.PBFT, Arch: core.OX, BlockSize: 4,
		Timeout: 400 * time.Millisecond, Obs: o,
		Store: &store.Config{Dir: t.TempDir(), Fsync: store.FsyncAlways, SnapshotEvery: 3}}

	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	warmReceipts := make([]*core.Receipt, 0, warm)
	for i := 0; i < warm; i++ {
		r, err := c.SubmitAsync(pipelineTx(fmt.Sprintf("warm%d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		warmReceipts = append(warmReceipts, r)
	}
	c.Flush()
	if !c.Await(core.AwaitSpec{Txs: warm, Timeout: 20 * time.Second}) {
		t.Fatalf("warm phase processed %d/%d", c.Node(0).ProcessedTxs(), warm)
	}
	if err := c.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	if committed, _ := settleAll(t, warmReceipts, 0); committed != warm {
		t.Fatalf("warm receipts committed %d/%d", committed, warm)
	}

	re, err := core.OpenChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	defer re.Stop()
	postReceipts := make([]*core.Receipt, 0, post)
	for i := 0; i < post; i++ {
		r, err := re.SubmitAsync(pipelineTx(fmt.Sprintf("post%d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		postReceipts = append(postReceipts, r)
	}
	re.Flush()
	if !re.Await(core.AwaitSpec{Txs: post, Timeout: 20 * time.Second}) {
		t.Fatalf("post phase processed %d/%d", re.Node(0).ProcessedTxs(), post)
	}
	if committed, _ := settleAll(t, postReceipts, 20*time.Second); committed != post {
		t.Fatalf("post receipts committed %d/%d", committed, post)
	}
	if err := re.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if got := re.Node(0).Store().GetInt("ctr"); got != warm+post {
		t.Fatalf("ctr = %d, want %d", got, warm+post)
	}
	// Exactly once, by the books: every issued receipt resolved or was
	// orphaned, and nothing resolved twice (the counters share the
	// registry across both incarnations).
	m := o.Reg.Snapshot()
	issued := m.Counters["core/receipts_issued"]
	settled := m.Counters["core/receipts_resolved"] + m.Counters["core/receipts_orphaned"]
	if issued != warm+post || settled != issued {
		t.Fatalf("issued %d settled %d, want %d each", issued, settled, warm+post)
	}
}

func TestCoreCrashMidPipelineRecovers(t *testing.T) {
	// Crash (no drain, no final sync) while the pipeline is busy, then
	// recover. FsyncAlways means every block the persister appended is on
	// disk, so the recovered cluster must reach at least the highest
	// durable watermark any node reported — and replication must hold.
	o := obs.New()
	cfg := core.Config{Nodes: 4, Protocol: core.PBFT, Arch: core.OX, BlockSize: 2,
		Timeout: 400 * time.Millisecond, Obs: o,
		Store: &store.Config{Dir: t.TempDir(), Fsync: store.FsyncAlways, SnapshotEvery: 4}}

	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	const k = 40
	receipts := make([]*core.Receipt, 0, k)
	for i := 0; i < k; i++ {
		r, err := c.SubmitAsync(pipelineTx(fmt.Sprintf("t%d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	c.Flush()
	// Let part of the workload commit, then pull the plug mid-stream.
	if !c.Await(core.AwaitSpec{Nodes: []int{0}, Txs: k / 4, Timeout: 20 * time.Second}) {
		t.Fatalf("no progress before crash: %d txs", c.Node(0).ProcessedTxs())
	}
	c.Crash()
	var durable uint64
	for _, n := range c.Nodes() {
		if h := n.DurableHeight(); h > durable {
			durable = h
		}
	}
	committed, stoppedCount := settleAll(t, receipts, 0)
	if committed+stoppedCount != k {
		t.Fatalf("receipts settled %d/%d", committed+stoppedCount, k)
	}

	re, err := core.OpenChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	re.Start()
	defer re.Stop()
	for _, n := range re.Nodes() {
		if got := n.Chain().Height(); got < durable {
			t.Fatalf("node %v recovered to height %d, below durable watermark %d", n.ID, got, durable)
		}
	}
	if err := re.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	// The recovered cluster keeps committing.
	const post = 8
	for i := 0; i < post; i++ {
		if err := re.Submit(pipelineTx(fmt.Sprintf("p%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	re.Flush()
	if !re.Await(core.AwaitSpec{Txs: post, Timeout: 20 * time.Second}) {
		t.Fatalf("post-crash processed %d/%d", re.Node(0).ProcessedTxs(), post)
	}
	if err := re.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
}
