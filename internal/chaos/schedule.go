package chaos

import (
	"fmt"
	"time"

	"permchain/internal/types"
)

// EventKind enumerates the fault and workload steps a schedule can script.
type EventKind int

const (
	// EvSubmit injects Count workload values via the current submitter.
	EvSubmit EventKind = iota
	// EvAwait blocks until every reachable live replica has decided all
	// submitted values — the schedule's quiesce barrier.
	EvAwait
	// EvCrash crash-stops Node: the network mutes it and its replica
	// goroutine is stopped.
	EvCrash
	// EvRestart re-creates Node from empty state on the same network; the
	// protocol's recovery path must replay the full decision log.
	EvRestart
	// EvKillLeader crash-stops the current leader (replicas exposing
	// IsLeader; lowest-id live replica otherwise, matching the view-0 /
	// round-robin proposer convention).
	EvKillLeader
	// EvPartition splits the network into Groups; traffic across group
	// boundaries is dropped.
	EvPartition
	// EvHeal removes all partitions.
	EvHeal
	// EvDropBurst sets the network-wide random loss rate to Rate
	// (Rate 0 ends the burst).
	EvDropBurst
	// EvLatencySpike sets uniform link latency to Dur (Dur 0 ends it).
	EvLatencySpike
	// EvEquivocate makes Node Byzantine via a network filter: its outbound
	// traffic reaches only even-id replicas (split silence). BFT-only.
	EvEquivocate
	// EvClearFilter restores Node to correct behavior.
	EvClearFilter
	// EvSleep waits Dur of wall time — for letting timer-driven recovery
	// (elections, view changes) run; avoid it in determinism-sensitive
	// schedules.
	EvSleep
	// EvFullRestart crash-stops every live replica at once and recovers
	// the whole cluster from its durable decision logs (requires
	// Config.Dir). Recovery is disk-only: no peer survives to serve
	// state-transfer fetches.
	EvFullRestart
)

// Event is one schedule step. Use the constructor helpers.
type Event struct {
	Kind   EventKind
	Node   types.NodeID
	Count  int
	Groups [][]types.NodeID
	Rate   float64
	Dur    time.Duration
}

// Submit injects n workload values.
func Submit(n int) Event { return Event{Kind: EvSubmit, Count: n} }

// Await blocks until all reachable live replicas are fully caught up.
func Await() Event { return Event{Kind: EvAwait} }

// Crash crash-stops a replica.
func Crash(id types.NodeID) Event { return Event{Kind: EvCrash, Node: id} }

// Restart re-creates a crashed replica from empty state.
func Restart(id types.NodeID) Event { return Event{Kind: EvRestart, Node: id} }

// KillLeader crash-stops the current leader.
func KillLeader() Event { return Event{Kind: EvKillLeader} }

// Partition splits the network into the given groups.
func Partition(groups ...[]types.NodeID) Event {
	return Event{Kind: EvPartition, Groups: groups}
}

// Heal removes all partitions.
func Heal() Event { return Event{Kind: EvHeal} }

// DropBurst sets the random message-loss rate (0 ends the burst).
func DropBurst(rate float64) Event { return Event{Kind: EvDropBurst, Rate: rate} }

// LatencySpike sets uniform link latency (0 ends the spike).
func LatencySpike(d time.Duration) Event { return Event{Kind: EvLatencySpike, Dur: d} }

// Equivocate makes a replica Byzantine by split silence.
func Equivocate(id types.NodeID) Event { return Event{Kind: EvEquivocate, Node: id} }

// ClearFilter restores an equivocating replica to correct behavior.
func ClearFilter(id types.NodeID) Event { return Event{Kind: EvClearFilter, Node: id} }

// Sleep waits wall time for timer-driven recovery.
func Sleep(d time.Duration) Event { return Event{Kind: EvSleep, Dur: d} }

// FullRestart takes the whole cluster down and recovers it from disk.
func FullRestart() Event { return Event{Kind: EvFullRestart} }

// isFault reports whether the event injects a fault (vs workload/heal).
func (e Event) isFault() bool {
	switch e.Kind {
	case EvCrash, EvKillLeader, EvPartition, EvEquivocate, EvFullRestart:
		return true
	case EvDropBurst:
		return e.Rate > 0
	case EvLatencySpike:
		return e.Dur > 0
	}
	return false
}

// String renders the event for fault logs.
func (e Event) String() string {
	switch e.Kind {
	case EvSubmit:
		return fmt.Sprintf("submit %d", e.Count)
	case EvAwait:
		return "await"
	case EvCrash:
		return fmt.Sprintf("crash node %d", e.Node)
	case EvRestart:
		return fmt.Sprintf("restart node %d", e.Node)
	case EvKillLeader:
		return "kill leader"
	case EvPartition:
		return fmt.Sprintf("partition %v", e.Groups)
	case EvHeal:
		return "heal"
	case EvDropBurst:
		return fmt.Sprintf("drop burst %.2f", e.Rate)
	case EvLatencySpike:
		return fmt.Sprintf("latency spike %v", e.Dur)
	case EvEquivocate:
		return fmt.Sprintf("equivocate node %d", e.Node)
	case EvClearFilter:
		return fmt.Sprintf("clear filter node %d", e.Node)
	case EvSleep:
		return fmt.Sprintf("sleep %v", e.Dur)
	case EvFullRestart:
		return "full cluster restart"
	}
	return "unknown"
}

// CrashRecoverySchedule scripts the canonical crash-recovery run: warm the
// cluster, crash one replica, commit a workload it never sees, restart it,
// and require everyone — including the fresh incarnation — to converge.
func CrashRecoverySchedule(victim types.NodeID, warm, dark, post int) []Event {
	return []Event{
		Submit(warm), Await(),
		Crash(victim),
		Submit(dark), Await(),
		Restart(victim),
		Submit(post), Await(),
	}
}

// FullClusterRestartSchedule scripts the durability run: warm the
// cluster, quiesce so every durable frontier agrees, take every node down
// at once, recover all of them from their on-disk decision logs, and
// commit a fresh workload through the recovered cluster. Requires
// Config.Dir.
func FullClusterRestartSchedule(warm, post int) []Event {
	return []Event{
		Submit(warm), Await(),
		FullRestart(),
		Submit(post), Await(),
	}
}

// PartitionHealSchedule scripts the canonical partition run: isolate a
// minority, commit through the majority, heal, and require the minority to
// catch up.
func PartitionHealSchedule(minority, majority []types.NodeID, warm, dark, post int) []Event {
	return []Event{
		Submit(warm), Await(),
		Partition(minority, majority),
		Submit(dark), Await(),
		Heal(),
		Submit(post), Await(),
	}
}

// LeaderKillSchedule scripts a leader assassination mid-stream: the
// remaining quorum must elect/rotate and keep committing.
func LeaderKillSchedule(warm, dark int, regroup time.Duration) []Event {
	return []Event{
		Submit(warm), Await(),
		KillLeader(),
		Submit(dark), Sleep(regroup), Await(),
	}
}

// EquivocationSchedule scripts a Byzantine replica that split-silences
// (reaches only even-id peers) through a workload window. BFT-only.
func EquivocationSchedule(byz types.NodeID, warm, dark, post int) []Event {
	return []Event{
		Submit(warm), Await(),
		Equivocate(byz),
		Submit(dark), Await(),
		ClearFilter(byz),
		Submit(post), Await(),
	}
}

// DropBurstSchedule scripts a lossy window: random loss at rate while a
// workload commits, then the burst ends.
func DropBurstSchedule(rate float64, warm, dark, post int, settle time.Duration) []Event {
	return []Event{
		Submit(warm), Await(),
		DropBurst(rate),
		Submit(dark), Sleep(settle),
		DropBurst(0),
		Await(),
		Submit(post), Await(),
	}
}

// LatencySpikeSchedule scripts a slow-network window.
func LatencySpikeSchedule(d time.Duration, warm, dark, post int) []Event {
	return []Event{
		Submit(warm), Await(),
		LatencySpike(d),
		Submit(dark), Await(),
		LatencySpike(0),
		Submit(post), Await(),
	}
}
