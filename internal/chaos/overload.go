package chaos

// Overload chaos: instead of crashing replicas or cutting links, these
// schedules attack the front door — offered load far beyond capacity,
// a client that refuses to share, a process kill in the middle of a
// burst — and assert the graceful-degradation contract the admission
// layer (internal/mempool) makes:
//
//   - sheds are typed and hinted, never silent queueing: overload
//     surfaces as *mempool.RejectError with a retry-after, and lands in
//     the transport's per-cause drop accounting (DropAdmission);
//   - queues stay bounded: the pool's occupancy high-water mark never
//     passes Capacity and the apply queue's observed depth never passes
//     its configured bound, no matter the offered load;
//   - zero receipt loss: every admitted transaction's receipt settles —
//     committed or typed ErrStopped — including across a crash and
//     disk recovery mid-burst; sheds never issue a receipt at all.

import (
	"errors"
	"fmt"
	"time"

	"permchain/internal/core"
	"permchain/internal/mempool"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// OverloadArm names one overload schedule.
type OverloadArm string

const (
	// ArmBurst slams 3× capacity into the pool in a tight loop: the
	// admission layer must shed the overhang with typed errors while
	// every admitted transaction commits.
	ArmBurst OverloadArm = "burst"
	// ArmSustained offers an open-loop, CO-safe stream at a rate above
	// capacity for the whole run: sheds are sustained, committed-tx p99
	// stays bounded (shedding, not queueing, absorbs the excess).
	ArmSustained OverloadArm = "sustained"
	// ArmHotClient splits offered load 90/10 between two clients: the
	// hot one must be capped at its fair share while the cold one is
	// never shed.
	ArmHotClient OverloadArm = "hot-client"
	// ArmCrashRecovery kills the cluster mid-burst on a durable store,
	// then recovers from disk: receipts settle exactly once across the
	// crash, and the recovered cluster replicates and keeps committing.
	ArmCrashRecovery OverloadArm = "crash-recovery"
)

// OverloadConfig parameterizes one overload run.
type OverloadConfig struct {
	Arm OverloadArm
	// Nodes, BlockSize, Timeout shape the chain (defaults 4, 8, 400ms).
	Nodes     int
	BlockSize int
	Timeout   time.Duration
	// Capacity is the mempool's hard cap (default 64); the burst arms
	// offer 3× this, so smaller capacities make harsher runs.
	Capacity int
	// Rate is the sustained arm's offered load in tx/s. E14 sets it to
	// 2× the saturation point its ramp measured; the default 50000 is
	// simply far beyond what the in-process cluster commits, so the
	// driver is permanently ahead of schedule and sheds are guaranteed.
	Rate float64
	// Txs bounds the sustained arm's stream length (default 16 × Capacity).
	Txs int
	// P99Bound is the sustained arm's committed-latency ceiling, CO-safe
	// (default 30s — the run fails if overload queues rather than sheds).
	P99Bound time.Duration
	// Dir is the durable store directory; required by ArmCrashRecovery.
	Dir string
	// Obs receives the run's metrics; a fresh registry is created when
	// nil (the report snapshots it either way).
	Obs *obs.Obs
}

func (c OverloadConfig) defaulted() OverloadConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.BlockSize == 0 {
		c.BlockSize = 8
	}
	if c.Timeout == 0 {
		c.Timeout = 400 * time.Millisecond
	}
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.Rate == 0 {
		c.Rate = 50000
	}
	if c.Txs == 0 {
		c.Txs = 16 * c.Capacity
	}
	if c.P99Bound == 0 {
		c.P99Bound = 30 * time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// OverloadReport is one overload run's outcome.
type OverloadReport struct {
	Arm      OverloadArm
	Capacity int
	// Offered = Admitted + Shed (+ HardErrors, which fail the run).
	Offered  int
	Admitted int
	Shed     int
	// Committed and Orphaned partition the admitted transactions'
	// receipts; Committed+Orphaned == Admitted is the zero-loss witness.
	Committed int
	Orphaned  int
	// MaxOccupancy is the pool's high-water mark (must stay <= Capacity);
	// ApplyQueueMax is the deepest observed apply-queue length.
	MaxOccupancy  int
	ApplyQueueMax int64
	// P99 is the sustained arm's CO-safe settle latency (zero elsewhere).
	P99 time.Duration
	// AdmissionDrops is the transport's DropAdmission counter — sheds
	// must be visible in the same per-cause accounting chaos drops use.
	AdmissionDrops int64
	// Failures lists every violated assertion; empty means the arm held.
	Failures []string
	// Metrics is the run's full observability snapshot.
	Metrics obs.Snapshot
}

// Ok reports whether every overload assertion held.
func (r *OverloadReport) Ok() bool { return len(r.Failures) == 0 }

// String renders a compact summary.
func (r *OverloadReport) String() string {
	status := "OK"
	if !r.Ok() {
		status = "FAIL"
	}
	s := fmt.Sprintf("overload %s cap=%d: %s\n  offered=%d admitted=%d shed=%d committed=%d orphaned=%d",
		r.Arm, r.Capacity, status, r.Offered, r.Admitted, r.Shed, r.Committed, r.Orphaned)
	s += fmt.Sprintf("\n  max occupancy=%d/%d apply-queue max=%d admission drops=%d",
		r.MaxOccupancy, r.Capacity, r.ApplyQueueMax, r.AdmissionDrops)
	if r.P99 > 0 {
		s += fmt.Sprintf("\n  co-safe p99=%v", r.P99)
	}
	for _, f := range r.Failures {
		s += "\n  FAILURE: " + f
	}
	return s
}

func (r *OverloadReport) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// RunOverload executes one overload arm and checks its assertions.
func RunOverload(cfg OverloadConfig) *OverloadReport {
	cfg = cfg.defaulted()
	rep := &OverloadReport{Arm: cfg.Arm, Capacity: cfg.Capacity}

	ccfg := core.Config{
		Nodes: cfg.Nodes, Protocol: core.PBFT, Arch: core.OX,
		BlockSize: cfg.BlockSize, Timeout: cfg.Timeout, Obs: cfg.Obs,
		Mempool: &mempool.Config{Capacity: cfg.Capacity},
	}
	if cfg.Arm == ArmCrashRecovery {
		if cfg.Dir == "" {
			rep.failf("crash-recovery arm requires Dir")
			return rep
		}
		ccfg.Store = &store.Config{Dir: cfg.Dir, Fsync: store.FsyncAlways}
	}
	c, err := core.New(ccfg)
	if err != nil {
		rep.failf("build chain: %v", err)
		return rep
	}
	c.Start()

	switch cfg.Arm {
	case ArmBurst:
		runBurstArm(cfg, c, rep)
	case ArmSustained:
		runSustainedArm(cfg, c, rep)
	case ArmHotClient:
		runHotClientArm(cfg, c, rep)
	case ArmCrashRecovery:
		runCrashArm(cfg, ccfg, c, rep)
	default:
		rep.failf("unknown arm %q", cfg.Arm)
		c.Stop()
		return rep
	}
	rep.finish(cfg, c)
	return rep
}

// finish collects the cross-arm witnesses after the arm's chain(s) have
// stopped: bounded occupancy, bounded apply-queue depth, admission
// drops visible in transport accounting, and the receipt ledger
// balancing (issued == resolved + orphaned — nothing hangs, nothing
// settles twice).
func (r *OverloadReport) finish(cfg OverloadConfig, c *core.Chain) {
	st := c.Mempool().Stats()
	r.MaxOccupancy = st.MaxOccupancy
	if st.MaxOccupancy > cfg.Capacity {
		r.failf("occupancy high-water %d exceeded capacity %d", st.MaxOccupancy, cfg.Capacity)
	}
	r.AdmissionDrops = c.Network().StatsSnapshot().ByCause[network.DropAdmission]
	if r.Shed > 0 && r.AdmissionDrops == 0 {
		r.failf("%d sheds invisible in transport drop accounting", r.Shed)
	}
	r.Metrics = cfg.Obs.Reg.Snapshot()
	if hs, ok := r.Metrics.Histograms["core/apply_queue_len"]; ok {
		r.ApplyQueueMax = hs.Max
	}
	issued := r.Metrics.Counters["core/receipts_issued"]
	settled := r.Metrics.Counters["core/receipts_resolved"] + r.Metrics.Counters["core/receipts_orphaned"]
	if issued != settled {
		r.failf("receipt ledger unbalanced: issued %d, settled %d", issued, settled)
	}
	if r.Committed+r.Orphaned != r.Admitted {
		r.failf("receipt loss: admitted %d but committed %d + orphaned %d",
			r.Admitted, r.Committed, r.Orphaned)
	}
}

// submitBurst fires txs in a tight loop, far faster than consensus can
// drain, recording admissions and typed sheds. Hard errors fail the run.
func submitBurst(c *core.Chain, txs []*types.Transaction, rep *OverloadReport) []*core.Receipt {
	receipts := make([]*core.Receipt, 0, len(txs))
	for _, tx := range txs {
		rep.Offered++
		r, err := c.SubmitAsync(tx)
		if err != nil {
			if mempool.IsReject(err) {
				rep.Shed++
				var rej *mempool.RejectError
				if !errors.As(err, &rej) || rej.RetryAfter <= 0 {
					rep.failf("shed without retry-after hint: %v", err)
				}
				continue
			}
			rep.failf("hard submit error: %v", err)
			continue
		}
		rep.Admitted++
		receipts = append(receipts, r)
	}
	return receipts
}

// settleReceipts waits every receipt out and tallies committed vs
// orphaned; anything else — including a hang past timeout — is a failure.
func settleReceipts(receipts []*core.Receipt, timeout time.Duration, rep *OverloadReport) {
	for i, r := range receipts {
		err := r.Wait(timeout)
		switch {
		case err == nil:
			rep.Committed++
		case errors.Is(err, core.ErrStopped):
			rep.Orphaned++
		default:
			rep.failf("receipt %d: %v", i, err)
		}
	}
}

func burstTxs(prefix string, n int, client types.NodeID) []*types.Transaction {
	g := workload.New(1)
	txs := g.KV(workload.KVConfig{Txs: n, Keys: 64})
	for i, tx := range txs {
		tx.ID = fmt.Sprintf("%s-%d", prefix, i)
		tx.Client = client
	}
	return txs
}

func runBurstArm(cfg OverloadConfig, c *core.Chain, rep *OverloadReport) {
	receipts := submitBurst(c, burstTxs("burst", 3*cfg.Capacity, 0), rep)
	if rep.Shed == 0 {
		rep.failf("3x-capacity burst shed nothing (capacity %d)", cfg.Capacity)
	}
	c.Flush()
	settleReceipts(receipts, 30*time.Second, rep)
	c.Stop()
	if rep.Orphaned != 0 {
		rep.failf("clean burst orphaned %d receipts", rep.Orphaned)
	}
}

func runSustainedArm(cfg OverloadConfig, c *core.Chain, rep *OverloadReport) {
	res := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate: cfg.Rate,
		Txs:  burstTxs("sustained", cfg.Txs, 0),
		Submit: func(tx *types.Transaction) (<-chan struct{}, error) {
			r, err := c.SubmitAsync(tx)
			if err != nil {
				return nil, err
			}
			return r.Done(), nil
		},
		IsShed:        mempool.IsReject,
		SettleTimeout: 60 * time.Second,
	})
	c.Flush()
	c.Stop()
	rep.Offered, rep.Admitted, rep.Shed = res.Offered, res.Admitted, res.Shed
	rep.Committed, rep.Orphaned = res.Settled, 0
	rep.P99 = res.P99
	if res.HardErrors > 0 {
		rep.failf("%d hard submit errors", res.HardErrors)
	}
	if res.Unsettled > 0 {
		// An admitted tx that never settled is a lost receipt, the exact
		// failure mode the bounded front door exists to rule out.
		rep.failf("%d admitted transactions never settled", res.Unsettled)
	}
	if res.Shed == 0 {
		rep.failf("sustained overload at %.0f tx/s shed nothing", cfg.Rate)
	}
	if res.P99 > cfg.P99Bound {
		rep.failf("co-safe p99 %v exceeded bound %v: overload queued instead of shedding",
			res.P99, cfg.P99Bound)
	}
}

func runHotClientArm(cfg OverloadConfig, c *core.Chain, rep *OverloadReport) {
	const hot, cold types.NodeID = 1, 2
	// The cold client touches the pool first so the fair-share divisor
	// counts it from the hot client's very first admission.
	coldTxs := burstTxs("cold", cfg.Capacity/10+1, cold)
	hotTxs := burstTxs("hot", 3*cfg.Capacity, hot)
	receipts := submitBurst(c, coldTxs[:1], rep)
	receipts = append(receipts, submitBurst(c, hotTxs, rep)...)
	hotShed := rep.Shed
	receipts = append(receipts, submitBurst(c, coldTxs[1:], rep)...)
	if coldShed := rep.Shed - hotShed; coldShed != 0 {
		rep.failf("cold client shed %d times behind a hot client", coldShed)
	}
	if hotShed == 0 {
		rep.failf("hot client at 3x capacity was never shed")
	}
	// The sheds must be the fairness kind: the hot client hits its
	// fair-share quota while the pool still has room for the cold one.
	// (The exact Capacity/2 cap is asserted in the mempool unit tests,
	// where no concurrent drain can release slots mid-burst.)
	if st := c.Mempool().Stats(); st.RejectedQuota == 0 {
		rep.failf("hot client was never quota-shed (rejections: full=%d quota=%d)",
			st.RejectedFull, st.RejectedQuota)
	}
	c.Flush()
	settleReceipts(receipts, 30*time.Second, rep)
	c.Stop()
}

func runCrashArm(cfg OverloadConfig, ccfg core.Config, c *core.Chain, rep *OverloadReport) {
	receipts := submitBurst(c, burstTxs("crash", 3*cfg.Capacity, 0), rep)
	if rep.Shed == 0 {
		rep.failf("pre-crash burst shed nothing (capacity %d)", cfg.Capacity)
	}
	c.Flush()
	// Let part of the admitted burst commit, then kill mid-stream.
	c.Await(core.AwaitSpec{Nodes: []int{0}, Txs: cfg.Capacity / 4, Timeout: 20 * time.Second})
	c.Crash()
	var durable uint64
	for _, n := range c.Nodes() {
		if h := n.DurableHeight(); h > durable {
			durable = h
		}
	}
	// Zero loss across the crash: every admitted receipt settles —
	// committed before the kill, or typed ErrStopped — never a hang.
	settleReceipts(receipts, 30*time.Second, rep)
	if rep.Committed == 0 {
		rep.failf("nothing committed before the crash")
	}

	re, err := core.OpenChain(ccfg)
	if err != nil {
		rep.failf("recover: %v", err)
		return
	}
	re.Start()
	defer re.Stop()
	for _, n := range re.Nodes() {
		if got := n.Chain().Height(); got < durable {
			rep.failf("node %v recovered to height %d, below durable watermark %d", n.ID, got, durable)
		}
	}
	if err := re.VerifyReplication(); err != nil {
		rep.failf("post-recovery replication: %v", err)
	}
	// The recovered front door still admits, sheds, and commits.
	post := submitBurst(re, burstTxs("post", 3*cfg.Capacity, 0), rep)
	re.Flush()
	settleReceipts(post, 30*time.Second, rep)
	if !re.Await(core.AwaitSpec{Txs: len(post), Timeout: 30 * time.Second}) {
		rep.failf("recovered cluster stalled on post-crash workload")
	}
}
