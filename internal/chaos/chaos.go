// Package chaos is a deterministic, seeded fault-injection harness for the
// six consensus protocols (and anything else speaking consensus.Replica).
// A run executes a scripted schedule of fault events — crash-stop,
// crash-recovery, leader kill, partition/heal, latency spikes, drop-rate
// bursts, Byzantine equivocation — against a cluster on one simulated
// network, while checkers assert the two properties the paper's protocol
// claims rest on (§2.2, §2.3.3):
//
//   - safety: no two replicas ever commit different digests at the same
//     sequence number, checked across every incarnation's full decision log;
//   - liveness: commits resume within a bounded number of timeouts after
//     the last fault heals, verified by an end-of-run probe.
//
// Runs with the same seed and schedule are reproducible: the network's
// random loss is seeded, and schedules quiesce with Await barriers rather
// than wall-clock sleeps wherever determinism matters.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/ibft"
	"permchain/internal/consensus/paxos"
	"permchain/internal/consensus/pbft"
	"permchain/internal/consensus/raft"
	"permchain/internal/consensus/tendermint"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/store"
)

// Protocol describes one consensus protocol the harness can run.
type Protocol struct {
	Name string
	// ByzFault marks BFT protocols; Byzantine events (Equivocate) are
	// rejected for CFT protocols, whose fault model they violate.
	ByzFault bool
	// MinN is the smallest cluster that stays live with one faulty node.
	// HotStuff needs n >= 5: with round-robin rotation a silent replica
	// occupies every fourth leader slot of an n = 4 cluster, and a commit
	// needs four consecutive correct slots.
	MinN int
	New  func(cfg consensus.Config) consensus.Replica
}

// Protocols returns the registry of all six protocols.
func Protocols() []Protocol {
	return []Protocol{
		{Name: "pbft", ByzFault: true, MinN: 4,
			New: func(cfg consensus.Config) consensus.Replica { return pbft.New(cfg) }},
		{Name: "raft", ByzFault: false, MinN: 3,
			New: func(cfg consensus.Config) consensus.Replica { return raft.New(cfg) }},
		{Name: "paxos", ByzFault: false, MinN: 3,
			New: func(cfg consensus.Config) consensus.Replica { return paxos.New(cfg) }},
		{Name: "tendermint", ByzFault: true, MinN: 4,
			New: func(cfg consensus.Config) consensus.Replica { return tendermint.New(tendermint.Config{Config: cfg}) }},
		{Name: "hotstuff", ByzFault: true, MinN: 5,
			New: func(cfg consensus.Config) consensus.Replica { return hotstuff.New(cfg) }},
		{Name: "ibft", ByzFault: true, MinN: 4,
			New: func(cfg consensus.Config) consensus.Replica { return ibft.New(cfg) }},
	}
}

// ProtocolByName looks a protocol up in the registry.
func ProtocolByName(name string) (Protocol, bool) {
	for _, p := range Protocols() {
		if p.Name == name {
			return p, true
		}
	}
	return Protocol{}, false
}

// Config parameterizes one chaos run.
type Config struct {
	Protocol Protocol
	// N is the cluster size; zero selects Protocol.MinN.
	N int
	// Seed drives the network's random loss; same seed + same schedule =
	// same run (see the determinism test).
	Seed int64
	// Timeout is the consensus failure-detection timeout; zero selects the
	// protocol default (200ms).
	Timeout    time.Duration
	DisableSig bool
	// Schedule is the fault script, executed in order.
	Schedule []Event
	// SubmitVia is the preferred replica for submissions. If it is
	// crashed or stranded in a minority partition, the lowest-id live
	// replica of the largest partition group is used instead.
	SubmitVia int
	// AwaitTimeout bounds each Await barrier; zero selects 30s.
	AwaitTimeout time.Duration
	// LivenessTimeouts bounds the end-of-run probe: commits must resume
	// within this many consensus timeouts after the last fault heals.
	// Zero selects 100.
	LivenessTimeouts int
	// SkipProbe disables the end-of-run liveness probe (LivenessOK is then
	// reported true vacuously). Schedules that deliberately leave the
	// cluster without quorum use it.
	SkipProbe bool
	// Dir, when non-empty, attaches the durable storage engine: every node
	// appends its decisions to a segmented write-ahead log under
	// Dir/node-<i>, and FullRestart events recover the whole cluster from
	// those logs instead of from peers.
	Dir string
	// Fsync is the decision logs' durability policy. The default,
	// FsyncAlways, is deliberate: a harness that loses acknowledged
	// decisions to a buffered tail would report phantom safety violations.
	Fsync store.FsyncPolicy
}

func (c Config) defaulted() Config {
	if c.N == 0 {
		c.N = c.Protocol.MinN
	}
	if c.Timeout == 0 {
		c.Timeout = 200 * time.Millisecond
	}
	if c.AwaitTimeout == 0 {
		c.AwaitTimeout = 30 * time.Second
	}
	if c.LivenessTimeouts == 0 {
		c.LivenessTimeouts = 100
	}
	return c
}

// Report is the per-run outcome.
type Report struct {
	Protocol string
	N        int
	Seed     int64
	// Faults lists every injected event, in order, as human-readable lines.
	Faults []string
	// Submitted counts workload values handed to the cluster, including
	// the liveness probe.
	Submitted int
	// DecisionsBefore/During/After split the highest decided sequence
	// number at the first fault, at the end of the schedule, and after the
	// liveness probe.
	DecisionsBefore int
	DecisionsDuring int
	DecisionsAfter  int
	// RecoveryLatency is how long the post-heal liveness probe took to be
	// decided by every live replica.
	RecoveryLatency time.Duration
	// DiskReplayed counts decisions recovered from durable logs by
	// FullRestart events — the disk-replay recovery source, as opposed to
	// the peer state-transfer fetches RecoveryFetches sums.
	DiskReplayed int
	// SafetyViolations lists every (seq, digest) divergence found across
	// all incarnation logs; empty means safety held.
	SafetyViolations []string
	// Failures lists Await barriers or schedule steps that did not
	// complete; empty means the schedule ran to the end.
	Failures []string
	// LivenessOK reports whether the probe committed within the bound.
	LivenessOK bool
	// Stats is the network's final counter snapshot, drops by cause.
	Stats network.Stats
	// Metrics is the run's full observability snapshot: the protocol's
	// commit-latency histogram and counters, the network's per-cause drop
	// counters and delivery-latency histogram, and the runner's
	// chaos/commit_latency/{before,during,after} split, which shows how
	// commit latency degrades under faults and recovers after the heal.
	Metrics obs.Snapshot

	logs [][][]consensus.Decision
}

// RecoveryFetches sums every state-transfer fetch counter in the metrics
// snapshot (pbft/fetches, paxos/sync_fetches, ...): how many times lagging
// or recovering replicas had to pull decided values from their peers.
func (r *Report) RecoveryFetches() int64 {
	var total int64
	for name, v := range r.Metrics.Counters {
		if strings.HasSuffix(name, "fetches") {
			total += v
		}
	}
	return total
}

// Logs returns every incarnation's decision log, indexed
// [node][incarnation][slot]. The determinism test diffs two of these.
func (r *Report) Logs() [][][]consensus.Decision { return r.logs }

// Ok reports whether the run passed every checker.
func (r *Report) Ok() bool {
	return len(r.SafetyViolations) == 0 && len(r.Failures) == 0 && r.LivenessOK
}

// String renders the report as a compact multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos %s n=%d seed=%d: ", r.Protocol, r.N, r.Seed)
	if r.Ok() {
		b.WriteString("OK")
	} else {
		b.WriteString("FAIL")
	}
	fmt.Fprintf(&b, "\n  faults: %s", strings.Join(r.Faults, "; "))
	fmt.Fprintf(&b, "\n  decisions: %d before, %d during, %d after faults (submitted %d)",
		r.DecisionsBefore, r.DecisionsDuring, r.DecisionsAfter, r.Submitted)
	fmt.Fprintf(&b, "\n  recovery latency: %v, liveness ok: %v", r.RecoveryLatency, r.LivenessOK)
	fmt.Fprintf(&b, "\n  drops: rate=%d partition=%d crash=%d overflow=%d unknown=%d admission=%d",
		r.Stats.ByCause[network.DropRate], r.Stats.ByCause[network.DropPartition],
		r.Stats.ByCause[network.DropCrash], r.Stats.ByCause[network.DropOverflow],
		r.Stats.ByCause[network.DropUnknown], r.Stats.ByCause[network.DropAdmission])
	for _, phase := range []string{"before", "during", "after"} {
		if hs, ok := r.Metrics.Histograms["chaos/commit_latency/"+phase]; ok {
			fmt.Fprintf(&b, "\n  commit latency %s faults: %s", phase, hs.DurString())
		}
	}
	if f := r.RecoveryFetches(); f > 0 || r.DiskReplayed > 0 {
		fmt.Fprintf(&b, "\n  recovery source: disk-replayed=%d, state-transfer fetches=%d", r.DiskReplayed, f)
	}
	for _, v := range r.SafetyViolations {
		fmt.Fprintf(&b, "\n  SAFETY: %s", v)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  FAILURE: %s", f)
	}
	return b.String()
}
