package chaos

import (
	"testing"
	"time"
)

func TestOverloadBurstArm(t *testing.T) {
	rep := RunOverload(OverloadConfig{Arm: ArmBurst, Capacity: 32})
	if !rep.Ok() {
		t.Fatalf("burst arm failed:\n%s", rep)
	}
	if rep.Shed == 0 || rep.Admitted == 0 {
		t.Fatalf("burst arm degenerate: %s", rep)
	}
	if rep.MaxOccupancy > rep.Capacity {
		t.Fatalf("occupancy %d > capacity %d", rep.MaxOccupancy, rep.Capacity)
	}
	if rep.Committed != rep.Admitted {
		t.Fatalf("clean burst: committed %d != admitted %d", rep.Committed, rep.Admitted)
	}
}

func TestOverloadSustainedArm(t *testing.T) {
	rep := RunOverload(OverloadConfig{Arm: ArmSustained, Capacity: 32, Txs: 512})
	if !rep.Ok() {
		t.Fatalf("sustained arm failed:\n%s", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("sustained overload shed nothing: %s", rep)
	}
	if rep.P99 <= 0 || rep.P99 > 30*time.Second {
		t.Fatalf("co-safe p99 %v out of range", rep.P99)
	}
	// Graceful degradation means the admitted stream still commits while
	// the excess is shed — not a collapse to zero throughput.
	if rep.Committed == 0 {
		t.Fatalf("sustained arm committed nothing: %s", rep)
	}
}

func TestOverloadHotClientArm(t *testing.T) {
	rep := RunOverload(OverloadConfig{Arm: ArmHotClient, Capacity: 40})
	if !rep.Ok() {
		t.Fatalf("hot-client arm failed:\n%s", rep)
	}
}

func TestOverloadCrashRecoveryArm(t *testing.T) {
	rep := RunOverload(OverloadConfig{Arm: ArmCrashRecovery, Capacity: 32, Dir: t.TempDir()})
	if !rep.Ok() {
		t.Fatalf("crash-recovery arm failed:\n%s", rep)
	}
	if rep.Orphaned == 0 {
		// A crash mid-burst must have caught some admitted transactions
		// pre-commit; if everything committed the kill came too late to
		// exercise the zero-loss-across-crash property.
		t.Logf("note: crash orphaned nothing (all %d admitted committed first)", rep.Admitted)
	}
	if rep.Committed+rep.Orphaned != rep.Admitted {
		t.Fatalf("receipt loss across crash: %s", rep)
	}
}
