package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/types"
)

func proto(t *testing.T, name string) Protocol {
	t.Helper()
	p, ok := ProtocolByName(name)
	if !ok {
		t.Fatalf("unknown protocol %q", name)
	}
	return p
}

func TestCrashRecoveryRun(t *testing.T) {
	p := proto(t, "pbft")
	rep := Run(Config{
		Protocol: p,
		Seed:     1,
		Timeout:  150 * time.Millisecond,
		Schedule: CrashRecoverySchedule(3, 3, 3, 2),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
	if rep.DecisionsBefore != 3 || rep.DecisionsDuring != 8 || rep.DecisionsAfter != 9 {
		t.Fatalf("decision frontier = %d/%d/%d, want 3/8/9\n%s",
			rep.DecisionsBefore, rep.DecisionsDuring, rep.DecisionsAfter, rep)
	}
	// The restarted incarnation replayed the full log.
	logs := rep.Logs()
	if len(logs[3]) != 2 {
		t.Fatalf("node 3 has %d incarnations, want 2", len(logs[3]))
	}
	if got := len(logs[3][1]); got != rep.Submitted {
		t.Fatalf("restarted incarnation decided %d/%d", got, rep.Submitted)
	}
}

func TestPartitionHealRun(t *testing.T) {
	p := proto(t, "raft")
	rep := Run(Config{
		Protocol: p,
		Seed:     2,
		Timeout:  100 * time.Millisecond,
		Schedule: PartitionHealSchedule(
			[]types.NodeID{2}, []types.NodeID{0, 1}, 3, 3, 2),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
	// The partition must have actually cost messages.
	if rep.Stats.ByCause[network.DropPartition] == 0 && rep.Stats.Dropped == 0 {
		t.Fatalf("partition run dropped nothing:\n%s", rep)
	}
}

func TestLeaderKillRun(t *testing.T) {
	p := proto(t, "paxos")
	rep := Run(Config{
		Protocol: p,
		Seed:     3,
		Timeout:  100 * time.Millisecond,
		Schedule: LeaderKillSchedule(3, 3, 300*time.Millisecond),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
	if len(rep.Faults) == 0 {
		t.Fatalf("no fault recorded for leader kill")
	}
}

func TestEquivocationRun(t *testing.T) {
	p := proto(t, "pbft")
	// Node 0 (the view-0 primary) turns Byzantine; workload is submitted
	// via a correct replica so its pending-request timer can drive the
	// view change that routes around the equivocator.
	rep := Run(Config{
		Protocol:  p,
		Seed:      4,
		Timeout:   150 * time.Millisecond,
		SubmitVia: 1,
		Schedule:  EquivocationSchedule(0, 2, 3, 2),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
}

func TestEquivocateRejectedForCFT(t *testing.T) {
	p := proto(t, "raft")
	rep := Run(Config{
		Protocol:  p,
		Seed:      5,
		Schedule:  []Event{Equivocate(0)},
		SkipProbe: true,
	})
	if rep.Ok() {
		t.Fatalf("equivocation against a CFT protocol must be rejected:\n%s", rep)
	}
	if len(rep.Failures) == 0 {
		t.Fatalf("no failure recorded")
	}
}

func TestDropBurstRun(t *testing.T) {
	p := proto(t, "ibft")
	rep := Run(Config{
		Protocol: p,
		Seed:     6,
		Timeout:  150 * time.Millisecond,
		Schedule: DropBurstSchedule(0.05, 2, 3, 2, 200*time.Millisecond),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
}

// deterministicSchedule submits one value per barrier so message counts do
// not depend on goroutine interleaving (batching would otherwise vary).
func deterministicSchedule() []Event {
	var sched []Event
	for i := 0; i < 4; i++ {
		sched = append(sched, Submit(1), Await())
	}
	sched = append(sched, Crash(3))
	for i := 0; i < 3; i++ {
		sched = append(sched, Submit(1), Await())
	}
	return sched
}

// TestDeterminism is the reproducibility contract: same seed + same
// schedule must yield identical decision logs (every node, every
// incarnation) and identical network drop counters across runs. The
// timeout is large enough that no protocol timer fires, so the only
// nondeterminism left would be in the harness or network — which this
// test pins down.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Protocol:  proto(t, "pbft"),
		Seed:      42,
		Timeout:   2 * time.Second,
		Schedule:  deterministicSchedule(),
		SkipProbe: true,
	}
	a := Run(cfg)
	b := Run(cfg)
	if !a.Ok() || !b.Ok() {
		t.Fatalf("runs failed:\n%s\n%s", a, b)
	}
	if !reflect.DeepEqual(a.Logs(), b.Logs()) {
		t.Fatalf("decision logs differ across identical runs:\n%s\n%s", a, b)
	}
	if a.Stats.Sent != b.Stats.Sent || a.Stats.Delivered != b.Stats.Delivered ||
		a.Stats.Dropped != b.Stats.Dropped || a.Stats.ByCause != b.Stats.ByCause {
		t.Fatalf("network stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestFullClusterRestartRecoversFromDisk(t *testing.T) {
	for _, name := range []string{"pbft", "raft"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p := proto(t, name)
			rep := Run(Config{
				Protocol: p,
				Seed:     7,
				Timeout:  150 * time.Millisecond,
				Dir:      t.TempDir(),
				Schedule: FullClusterRestartSchedule(5, 3),
			})
			if !rep.Ok() {
				t.Fatalf("run failed:\n%s", rep)
			}
			// Every node replayed the 5 warm decisions from its own disk...
			if want := 5 * rep.N; rep.DiskReplayed != want {
				t.Fatalf("disk-replayed %d decisions, want %d\n%s", rep.DiskReplayed, want, rep)
			}
			// ...and nobody needed a peer: recovery was disk-only.
			if f := rep.RecoveryFetches(); f != 0 {
				t.Fatalf("full restart used %d state-transfer fetches, want 0\n%s", f, rep)
			}
			// The cross-incarnation frontier continued past the recovered
			// prefix (5 warm + 3 post + 1 probe).
			if rep.DecisionsAfter != 9 {
				t.Fatalf("frontier = %d, want 9\n%s", rep.DecisionsAfter, rep)
			}
			// The second incarnation's log is the recovered prefix plus the
			// post-restart workload, gapless — the safety checker verified
			// digests across both incarnations.
			logs := rep.Logs()
			for node := range logs {
				if len(logs[node]) != 2 {
					t.Fatalf("node %d has %d incarnations, want 2", node, len(logs[node]))
				}
				if got := len(logs[node][1]); got != 9 {
					t.Fatalf("node %d recovered incarnation holds %d decisions, want 9", node, got)
				}
			}
			if rep.Metrics.Counters["store/replayed_records"] != int64(5*rep.N) {
				t.Fatalf("store/replayed_records = %d", rep.Metrics.Counters["store/replayed_records"])
			}
		})
	}
}

func TestFullRestartWithoutDirFails(t *testing.T) {
	p := proto(t, "raft")
	rep := Run(Config{
		Protocol: p,
		Seed:     3,
		Timeout:  100 * time.Millisecond,
		Schedule: []Event{Submit(2), Await(), FullRestart()},
	})
	if rep.Ok() {
		t.Fatal("full restart without Config.Dir passed")
	}
	found := false
	for _, f := range rep.Failures {
		if strings.Contains(f, "requires Config.Dir") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failures = %v", rep.Failures)
	}
}

func TestSingleRestartStillUsesPeerFetch(t *testing.T) {
	// With durable logs attached, a single-node restart still recovers via
	// peer state transfer (its own disk is fine, but the harness restarts
	// it from empty state) — the report distinguishes the two sources.
	p := proto(t, "pbft")
	rep := Run(Config{
		Protocol: p,
		Seed:     1,
		Timeout:  150 * time.Millisecond,
		Dir:      t.TempDir(),
		Schedule: CrashRecoverySchedule(3, 3, 3, 2),
	})
	if !rep.Ok() {
		t.Fatalf("run failed:\n%s", rep)
	}
	if rep.DiskReplayed != 0 {
		t.Fatalf("single-node restart disk-replayed %d", rep.DiskReplayed)
	}
	if rep.RecoveryFetches() == 0 {
		t.Fatalf("restarted node fetched nothing from peers:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "recovery source") {
		t.Fatal("report does not render the recovery source line")
	}
}
