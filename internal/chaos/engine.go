package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/store"
	"permchain/internal/types"
)

// collector drains one replica incarnation's decision stream into a
// mutex-guarded log the checkers can read while the run is still going.
type collector struct {
	mu   sync.Mutex
	log  []consensus.Decision
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// base shifts every collected decision's sequence number: after a full
// cluster restart the fresh consensus incarnation counts from 1 again,
// while the harness's logical log continues past the recovered prefix.
func collect(ch <-chan consensus.Decision, base uint64, onDecision func(consensus.Decision)) *collector {
	c := &collector{quit: make(chan struct{}), done: make(chan struct{})}
	take := func(d consensus.Decision) {
		d.Seq += base
		c.mu.Lock()
		c.log = append(c.log, d)
		c.mu.Unlock()
		if onDecision != nil {
			onDecision(d)
		}
	}
	go func() {
		defer close(c.done)
		for {
			select {
			case d := <-ch:
				take(d)
			case <-c.quit:
				// Drain what the replica emitted before it stopped.
				for {
					select {
					case d := <-ch:
						take(d)
					default:
						return
					}
				}
			}
		}
	}()
	return c
}

func (c *collector) stop() {
	c.once.Do(func() { close(c.quit) })
	<-c.done
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

func (c *collector) snapshot() []consensus.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]consensus.Decision, len(c.log))
	copy(out, c.log)
	return out
}

// runner is the mutable state of one chaos run.
type runner struct {
	cfg   Config
	net   *network.Network
	keys  *crypto.Keyring
	nodes []types.NodeID
	reps  []consensus.Replica
	// cols holds the live incarnation's collector per node (nil while
	// crashed); allLogs keeps every incarnation ever started, because
	// safety must hold across incarnations, not just survivors.
	cols    []*collector
	allLogs [][]*collector
	crashed []bool
	groups  [][]types.NodeID // nil when unpartitioned
	subs    int
	rep     *Report
	// dlogs are the per-node durable decision logs (nil without cfg.Dir);
	// durable[i] is node i's durable logical frontier (the highest seq its
	// log holds). Each index is written only by that node's collector
	// goroutine, or by the schedule goroutine after the collector stopped.
	dlogs   []*store.Log
	durable []uint64
	// failMu guards rep.Failures: persist reports append errors from
	// collector goroutines while the schedule goroutine records its own.
	failMu sync.Mutex
	// o is the run-wide observability layer: one registry and tracer
	// shared by every incarnation and the network, so protocol counters
	// survive crashes and restarts.
	o *obs.Obs
	// faultPhase is "before" until the first fault, "during" until the
	// schedule ends, then "after"; collector goroutines read it when
	// splitting the commit-latency histogram.
	faultPhase atomic.Value
}

// recordDecision buckets one decision's submit→commit latency into the
// histogram for the current fault phase. Called from collector goroutines.
func (r *runner) recordDecision(d consensus.Decision) {
	sp, ok := r.o.Tracer.Span(d.Digest)
	if !ok {
		return
	}
	if lat, ok := sp.Between(obs.PhaseSubmit, obs.PhaseCommit); ok {
		r.o.Reg.Histogram("chaos/commit_latency/" + r.faultPhase.Load().(string)).Observe(lat)
	}
}

// Run executes one scripted chaos run and returns its report.
func Run(cfg Config) *Report {
	cfg = cfg.defaulted()
	o := obs.New()
	r := &runner{
		cfg:     cfg,
		net:     network.New(network.WithSeed(cfg.Seed), network.WithRegistry(o.Reg)),
		keys:    crypto.NewKeyring(cfg.N),
		o:       o,
		nodes:   make([]types.NodeID, cfg.N),
		reps:    make([]consensus.Replica, cfg.N),
		cols:    make([]*collector, cfg.N),
		allLogs: make([][]*collector, cfg.N),
		crashed: make([]bool, cfg.N),
		rep:     &Report{Protocol: cfg.Protocol.Name, N: cfg.N, Seed: cfg.Seed},
	}
	r.faultPhase.Store("before")
	for i := range r.nodes {
		r.nodes[i] = types.NodeID(i)
	}
	if cfg.Dir != "" {
		r.dlogs = make([]*store.Log, cfg.N)
		r.durable = make([]uint64, cfg.N)
		for i := range r.dlogs {
			lg, err := r.openDecisionLog(types.NodeID(i))
			if err != nil {
				r.fail(fmt.Sprintf("node %d decision log: %v", i, err))
				r.rep.LivenessOK = false
				return r.rep
			}
			r.dlogs[i] = lg
			r.durable[i] = lg.Count()
		}
	}
	for i := range r.reps {
		r.startIncarnation(types.NodeID(i))
	}

	seenFault := false
	for _, ev := range cfg.Schedule {
		if ev.isFault() && !seenFault {
			seenFault = true
			r.rep.DecisionsBefore = r.maxSeq()
			r.faultPhase.Store("during")
		}
		r.exec(ev)
	}
	r.rep.DecisionsDuring = r.maxSeq()
	r.faultPhase.Store("after")

	if cfg.SkipProbe {
		r.rep.LivenessOK = true
	} else {
		r.probeLiveness()
	}
	r.rep.DecisionsAfter = r.maxSeq()
	r.rep.Submitted = r.subs

	for i, rep := range r.reps {
		if !r.crashed[i] {
			rep.Stop()
		}
	}
	for _, c := range r.cols {
		if c != nil {
			c.stop()
		}
	}
	for _, lg := range r.dlogs {
		if lg != nil {
			lg.Close()
		}
	}
	r.checkSafety()
	r.rep.logs = make([][][]consensus.Decision, cfg.N)
	for node, incs := range r.allLogs {
		for _, c := range incs {
			r.rep.logs[node] = append(r.rep.logs[node], c.snapshot())
		}
	}
	r.rep.Stats = r.net.StatsSnapshot()
	r.rep.Metrics = r.o.Reg.Snapshot()
	return r.rep
}

// startIncarnation (re)creates node id from empty state, starts it, and
// attaches a fresh collector. Used both at boot and on Restart.
func (r *runner) startIncarnation(id types.NodeID) {
	r.startIncarnationFrom(id, 0, nil)
}

// startIncarnationFrom starts an incarnation whose logical log continues a
// disk-recovered prefix: seed pre-populates the collector with the
// replayed decisions and base rebases the live ones after them.
func (r *runner) startIncarnationFrom(id types.NodeID, base uint64, seed []consensus.Decision) {
	rep := r.cfg.Protocol.New(consensus.Config{
		Self: id, Nodes: r.nodes, Net: r.net, Keys: r.keys,
		Timeout: r.cfg.Timeout, DisableSig: r.cfg.DisableSig,
		Obs: r.o,
	})
	r.reps[id] = rep
	rep.Start()
	c := collect(rep.Decisions(), base, func(d consensus.Decision) {
		r.persist(id, d)
		r.recordDecision(d)
	})
	if len(seed) > 0 {
		c.mu.Lock()
		c.log = append(c.log, seed...)
		c.mu.Unlock()
	}
	r.cols[id] = c
	r.allLogs[id] = append(r.allLogs[id], c)
	r.crashed[id] = false
}

func (r *runner) exec(ev Event) {
	switch ev.Kind {
	case EvSubmit:
		for i := 0; i < ev.Count; i++ {
			r.submit()
		}
	case EvAwait:
		r.await()
	case EvCrash:
		r.crashNode(ev.Node, ev.String())
	case EvRestart:
		r.logFault(ev.String())
		if !r.crashed[ev.Node] {
			r.fail(fmt.Sprintf("restart of node %d which is not crashed", ev.Node))
			return
		}
		r.net.Rejoin(ev.Node)
		r.net.Restore(ev.Node)
		r.startIncarnation(ev.Node)
	case EvFullRestart:
		r.logFault(ev.String())
		r.fullRestart()
	case EvKillLeader:
		id := r.leader()
		r.crashNode(id, fmt.Sprintf("kill leader (node %d)", id))
	case EvPartition:
		r.logFault(ev.String())
		r.groups = ev.Groups
		r.net.Partition(ev.Groups...)
	case EvHeal:
		r.logFault(ev.String())
		r.groups = nil
		r.net.Heal()
	case EvDropBurst:
		r.logFault(ev.String())
		r.net.SetDropRate(ev.Rate)
	case EvLatencySpike:
		r.logFault(ev.String())
		if ev.Dur > 0 {
			d := ev.Dur
			r.net.SetLatency(func(from, to types.NodeID) time.Duration { return d })
		} else {
			r.net.SetLatency(nil)
		}
	case EvEquivocate:
		r.logFault(ev.String())
		if !r.cfg.Protocol.ByzFault {
			r.fail(fmt.Sprintf("equivocate on CFT protocol %s violates its fault model", r.cfg.Protocol.Name))
			return
		}
		// Split silence: the Byzantine node's traffic reaches only the
		// even-id half of the cluster, so quorums see conflicting worlds.
		r.net.SetFilter(ev.Node, func(m network.Message) []network.Message {
			if m.To%2 == 0 {
				return []network.Message{m}
			}
			return nil
		})
	case EvClearFilter:
		r.logFault(ev.String())
		r.net.SetFilter(ev.Node, nil)
	case EvSleep:
		time.Sleep(ev.Dur)
	}
}

func (r *runner) logFault(s string) {
	r.rep.Faults = append(r.rep.Faults, s)
	r.o.Logger("chaos").Warn("fault injected", "event", s)
}

func (r *runner) fail(s string) {
	r.failMu.Lock()
	r.rep.Failures = append(r.rep.Failures, s)
	r.failMu.Unlock()
}

func (r *runner) crashNode(id types.NodeID, label string) {
	r.logFault(label)
	if r.crashed[id] {
		r.fail(fmt.Sprintf("crash of node %d which is already crashed", id))
		return
	}
	r.net.Crash(id)
	r.reps[id].Stop()
	r.cols[id].stop()
	r.cols[id] = nil
	r.crashed[id] = true
}

// leader returns the replica to assassinate on KillLeader: the one that
// claims leadership (raft, paxos), or the lowest live id — which is the
// view-0 primary / first round-robin proposer in the BFT protocols.
func (r *runner) leader() types.NodeID {
	for i, rep := range r.reps {
		if r.crashed[i] {
			continue
		}
		if l, ok := rep.(interface{ IsLeader() bool }); ok && l.IsLeader() {
			return types.NodeID(i)
		}
	}
	for i := range r.reps {
		if !r.crashed[i] {
			return types.NodeID(i)
		}
	}
	return 0
}

// largestGroup returns the reachable node set submissions and barriers run
// against: the whole cluster when unpartitioned, else the partition group
// with the most live members.
func (r *runner) largestGroup() []types.NodeID {
	if r.groups == nil {
		return r.nodes
	}
	best, bestLive := r.groups[0], -1
	for _, g := range r.groups {
		live := 0
		for _, id := range g {
			if !r.crashed[id] {
				live++
			}
		}
		if live > bestLive {
			best, bestLive = g, live
		}
	}
	return best
}

// submitter picks the replica to hand the next value to: the configured
// one when it is live and reachable, otherwise the lowest live id in the
// largest partition group.
func (r *runner) submitter() types.NodeID {
	want := types.NodeID(r.cfg.SubmitVia)
	group := r.largestGroup()
	fallback := types.NodeID(0)
	found := false
	for _, id := range group {
		if r.crashed[id] {
			continue
		}
		if id == want {
			return want
		}
		if !found || id < fallback {
			fallback, found = id, true
		}
	}
	return fallback
}

func (r *runner) submit() {
	v := fmt.Sprintf("%s/cmd-%d", r.cfg.Protocol.Name, r.subs)
	r.subs++
	r.reps[r.submitter()].Submit(v, types.HashBytes([]byte(v)))
}

// await blocks until every live replica in the largest group has decided
// all submitted values, or the barrier times out (recorded as a failure).
func (r *runner) await() bool {
	deadline := time.Now().Add(r.cfg.AwaitTimeout)
	for {
		if r.caughtUp() {
			return true
		}
		if time.Now().After(deadline) {
			r.fail(fmt.Sprintf("await barrier timed out with %d submitted", r.subs))
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// maxSeq returns the highest sequence number decided by any incarnation —
// the cluster-wide committed frontier at this instant.
func (r *runner) maxSeq() int {
	max := uint64(0)
	for _, incs := range r.allLogs {
		for _, c := range incs {
			for _, d := range c.snapshot() {
				if d.Seq > max {
					max = d.Seq
				}
			}
		}
	}
	return int(max)
}

func (r *runner) caughtUp() bool {
	for _, id := range r.largestGroup() {
		if r.crashed[id] {
			continue
		}
		if r.cols[id].count() < r.subs {
			return false
		}
	}
	return true
}

// probeLiveness submits one more value after the schedule ends and
// requires every live reachable replica to decide it within
// LivenessTimeouts consensus timeouts — the bounded-recovery claim.
func (r *runner) probeLiveness() {
	start := time.Now()
	r.submit()
	bound := time.Duration(r.cfg.LivenessTimeouts) * r.cfg.Timeout
	deadline := start.Add(bound)
	for {
		if r.caughtUp() {
			r.rep.LivenessOK = true
			r.rep.RecoveryLatency = time.Since(start)
			return
		}
		if time.Now().After(deadline) {
			r.rep.LivenessOK = false
			r.rep.RecoveryLatency = time.Since(start)
			r.fail(fmt.Sprintf("liveness probe undecided after %v (%d timeouts)", bound, r.cfg.LivenessTimeouts))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkSafety asserts agreement across every incarnation's full log: no
// two logs may bind the same sequence number to different digests, and
// each log must be the gapless in-order prefix 1..k.
func (r *runner) checkSafety() {
	type binding struct {
		digest types.Hash
		by     string
	}
	bySeq := map[uint64]binding{}
	for node, incs := range r.allLogs {
		for gen, c := range incs {
			who := fmt.Sprintf("node %d incarnation %d", node, gen)
			for j, d := range c.snapshot() {
				if d.Seq != uint64(j+1) {
					r.rep.SafetyViolations = append(r.rep.SafetyViolations,
						fmt.Sprintf("%s: decision %d has seq %d, want %d (gap or reorder)", who, j, d.Seq, j+1))
				}
				if prev, ok := bySeq[d.Seq]; ok {
					if prev.digest != d.Digest {
						r.rep.SafetyViolations = append(r.rep.SafetyViolations,
							fmt.Sprintf("seq %d: %s decided %x, %s decided %x", d.Seq, prev.by, prev.digest[:4], who, d.Digest[:4]))
					}
				} else {
					bySeq[d.Seq] = binding{d.Digest, who}
				}
			}
		}
	}
}
