package chaos

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"permchain/internal/consensus"
	"permchain/internal/store"
	"permchain/internal/types"
)

// The durable side of the harness: when Config.Dir is set, every node
// appends each decision it commits to a segmented store.Log under
// Dir/node-<i>, and a FullRestart event recovers the entire cluster from
// those logs — the disk-replay counterpart to the peer state-transfer
// path a single-node Restart exercises.

// encodeDecision frames one decision for the durable log:
// [seq u64 BE][digest 32B][value bytes], value in its string form.
func encodeDecision(d consensus.Decision) []byte {
	v := fmt.Sprint(d.Value)
	buf := make([]byte, 8+len(d.Digest)+len(v))
	binary.BigEndian.PutUint64(buf, d.Seq)
	copy(buf[8:], d.Digest[:])
	copy(buf[8+len(d.Digest):], v)
	return buf
}

func decodeDecision(rec []byte) (consensus.Decision, error) {
	var d consensus.Decision
	var h types.Hash
	if len(rec) < 8+len(h) {
		return d, fmt.Errorf("%w: decision record of %d bytes", store.ErrCorrupt, len(rec))
	}
	d.Seq = binary.BigEndian.Uint64(rec)
	copy(h[:], rec[8:])
	d.Digest = h
	d.Value = string(rec[8+len(h):])
	return d, nil
}

// openDecisionLog opens node id's durable decision log under cfg.Dir.
func (r *runner) openDecisionLog(id types.NodeID) (*store.Log, error) {
	dir := filepath.Join(r.cfg.Dir, fmt.Sprintf("node-%d", id))
	return store.OpenLog(dir, store.Config{Fsync: r.cfg.Fsync, Obs: r.o})
}

// persist appends a decision to node id's durable log. Decisions at or
// below the durable frontier are skipped: peer-fetch recovery after a
// single-node Restart re-emits a prefix the node already logged in its
// previous incarnation. Called from node id's collector goroutine only.
func (r *runner) persist(id types.NodeID, d consensus.Decision) {
	if r.dlogs == nil || r.dlogs[id] == nil {
		return
	}
	if d.Seq != r.durable[id]+1 {
		return
	}
	if err := r.dlogs[id].Append(encodeDecision(d)); err != nil {
		r.fail(fmt.Sprintf("node %d durable append seq %d: %v", id, d.Seq, err))
		return
	}
	r.durable[id]++
}

// replayDecisions reads node id's decision log back from disk, verifying
// that record i carries sequence number i.
func (r *runner) replayDecisions(id types.NodeID) ([]consensus.Decision, error) {
	var out []consensus.Decision
	err := r.dlogs[id].ReplayFrom(1, func(idx uint64, rec []byte) error {
		d, err := decodeDecision(rec)
		if err != nil {
			return err
		}
		if d.Seq != idx {
			return fmt.Errorf("%w: node %d decision record %d carries seq %d", store.ErrCorrupt, id, idx, d.Seq)
		}
		out = append(out, d)
		return nil
	})
	return out, err
}

// fullRestart crash-stops every live replica at once, then recovers the
// whole cluster from its durable decision logs: each node's fresh
// incarnation is seeded with the decisions replayed from its own disk and
// its live decisions are rebased past that frontier. No peer knows
// anything the disk does not, so state-transfer fetch counters stay flat —
// the recovery is disk-only by construction.
func (r *runner) fullRestart() {
	if r.dlogs == nil {
		r.fail("full cluster restart requires Config.Dir")
		return
	}
	for i := range r.reps {
		if r.crashed[i] {
			continue
		}
		id := types.NodeID(i)
		r.net.Crash(id)
		r.reps[i].Stop()
		r.cols[i].stop()
		r.cols[i] = nil
		r.crashed[i] = true
	}
	// The schedule must quiesce (Await) before a full restart: rebased
	// logical sequence numbers only line up across nodes if every node
	// went down at the same durable frontier.
	for i := 1; i < len(r.durable); i++ {
		if r.durable[i] != r.durable[0] {
			r.fail(fmt.Sprintf("full restart with unequal durable frontiers (node 0 at %d, node %d at %d); quiesce with Await first",
				r.durable[0], i, r.durable[i]))
		}
	}
	for i := range r.reps {
		id := types.NodeID(i)
		// Close and reopen the log so recovery reads exactly what a brand
		// new process would find on disk.
		if err := r.dlogs[i].Close(); err != nil {
			r.fail(fmt.Sprintf("node %d log close: %v", i, err))
		}
		lg, err := r.openDecisionLog(id)
		if err != nil {
			r.fail(fmt.Sprintf("node %d log reopen: %v", i, err))
			continue
		}
		r.dlogs[i] = lg
		r.durable[i] = lg.Count()
		replayed, err := r.replayDecisions(id)
		if err != nil {
			r.fail(fmt.Sprintf("node %d disk replay: %v", i, err))
			continue
		}
		r.net.Rejoin(id)
		r.net.Restore(id)
		r.startIncarnationFrom(id, uint64(len(replayed)), replayed)
		r.rep.DiskReplayed += len(replayed)
		r.o.Add("store/replayed_records", int64(len(replayed)))
	}
}
