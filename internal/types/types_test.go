package types

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashBytesDeterministic(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	if a != b {
		t.Fatalf("same input hashed differently: %v vs %v", a, b)
	}
	if a == HashBytes([]byte("world")) {
		t.Fatal("different inputs collided")
	}
	if a.IsZero() {
		t.Fatal("non-empty hash reported zero")
	}
	if !ZeroHash.IsZero() {
		t.Fatal("ZeroHash not zero")
	}
}

func TestHashConcatLengthPrefixed(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide: the length prefix makes
	// the encoding unambiguous.
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("ambiguous concatenation: (ab,c) == (a,bc)")
	}
}

func TestHashStringForms(t *testing.T) {
	h := HashBytes([]byte("x"))
	if len(h.Hex()) != 64 {
		t.Fatalf("Hex length = %d, want 64", len(h.Hex()))
	}
	if len(h.String()) != 8 {
		t.Fatalf("String length = %d, want 8", len(h.String()))
	}
	if h.Hex()[:8] != h.String() {
		t.Fatal("String is not a prefix of Hex")
	}
}

func TestVersionLess(t *testing.T) {
	cases := []struct {
		a, b Version
		want bool
	}{
		{Version{1, 0}, Version{2, 0}, true},
		{Version{2, 0}, Version{1, 5}, false},
		{Version{1, 1}, Version{1, 2}, true},
		{Version{1, 2}, Version{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOpKeys(t *testing.T) {
	tr := Op{Code: OpTransfer, Key: "a", Key2: "b"}
	if got := tr.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("transfer keys = %v", got)
	}
	g := Op{Code: OpGet, Key: "a"}
	if got := g.Keys(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("get keys = %v", got)
	}
}

func tx(id string, ops ...Op) *Transaction {
	return &Transaction{ID: id, Ops: ops}
}

func TestTransactionHashSensitivity(t *testing.T) {
	base := tx("t1", Op{Code: OpPut, Key: "k", Value: []byte("v")})
	same := tx("t1", Op{Code: OpPut, Key: "k", Value: []byte("v")})
	if base.Hash() != same.Hash() {
		t.Fatal("identical transactions hashed differently")
	}
	mutants := []*Transaction{
		tx("t2", Op{Code: OpPut, Key: "k", Value: []byte("v")}),
		tx("t1", Op{Code: OpPut, Key: "k2", Value: []byte("v")}),
		tx("t1", Op{Code: OpPut, Key: "k", Value: []byte("w")}),
		tx("t1", Op{Code: OpGet, Key: "k", Value: []byte("v")}),
		{ID: "t1", Ops: base.Ops, Private: true},
		{ID: "t1", Ops: base.Ops, Kind: TxCross},
		{ID: "t1", Ops: base.Ops, Shards: []ShardID{1}},
	}
	for i, m := range mutants {
		if m.Hash() == base.Hash() {
			t.Errorf("mutant %d hashed equal to base", i)
		}
	}
}

func TestTransactionHashIgnoresRWSets(t *testing.T) {
	a := tx("t", Op{Code: OpGet, Key: "k"})
	b := tx("t", Op{Code: OpGet, Key: "k"})
	b.Reads = ReadSet{"k": {Block: 3, Tx: 1}}
	b.Writes = WriteSet{"k": []byte("x")}
	if a.Hash() != b.Hash() {
		t.Fatal("hash should not depend on endorsement-filled rw-sets")
	}
}

func TestTouchedKeys(t *testing.T) {
	tr := tx("t",
		Op{Code: OpTransfer, Key: "b", Key2: "a"},
		Op{Code: OpGet, Key: "c"},
		Op{Code: OpGet, Key: "a"},
	)
	got := tr.TouchedKeys()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("TouchedKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TouchedKeys = %v, want %v", got, want)
		}
	}
}

func TestConflictsWith(t *testing.T) {
	v := Version{}
	mk := func(reads, writes []string) *Transaction {
		tr := &Transaction{Reads: ReadSet{}, Writes: WriteSet{}}
		for _, k := range reads {
			tr.Reads[k] = v
		}
		for _, k := range writes {
			tr.Writes[k] = nil
		}
		return tr
	}
	cases := []struct {
		name string
		a, b *Transaction
		want bool
	}{
		{"read-read no conflict", mk([]string{"k"}, nil), mk([]string{"k"}, nil), false},
		{"write-write conflict", mk(nil, []string{"k"}), mk(nil, []string{"k"}), true},
		{"my write their read", mk(nil, []string{"k"}), mk([]string{"k"}, nil), true},
		{"my read their write", mk([]string{"k"}, nil), mk(nil, []string{"k"}), true},
		{"disjoint", mk([]string{"a"}, []string{"b"}), mk([]string{"c"}, []string{"d"}), false},
	}
	for _, c := range cases {
		if got := c.a.ConflictsWith(c.b); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
		// Conflict is symmetric.
		if got := c.b.ConflictsWith(c.a); got != c.want {
			t.Errorf("%s (reversed): got %v want %v", c.name, got, c.want)
		}
	}
}

func TestConflictSymmetryProperty(t *testing.T) {
	f := func(ra, wa, rb, wb []string) bool {
		v := Version{}
		a := &Transaction{Reads: ReadSet{}, Writes: WriteSet{}}
		b := &Transaction{Reads: ReadSet{}, Writes: WriteSet{}}
		for _, k := range ra {
			a.Reads[k] = v
		}
		for _, k := range wa {
			a.Writes[k] = nil
		}
		for _, k := range rb {
			b.Reads[k] = v
		}
		for _, k := range wb {
			b.Writes[k] = nil
		}
		return a.ConflictsWith(b) == b.ConflictsWith(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBlockRootMatchesBody(t *testing.T) {
	txs := []*Transaction{tx("a"), tx("b"), tx("c")}
	b := NewBlock(1, ZeroHash, 0, txs)
	if b.Header.TxRoot != TxMerkleRoot(txs) {
		t.Fatal("header root does not match body")
	}
	if b.Header.Height != 1 {
		t.Fatalf("height = %d", b.Header.Height)
	}
}

func TestTxMerkleRootProperties(t *testing.T) {
	if TxMerkleRoot(nil) != ZeroHash {
		t.Fatal("empty block root should be zero")
	}
	one := []*Transaction{tx("a")}
	if TxMerkleRoot(one).IsZero() {
		t.Fatal("single-tx root should not be zero")
	}
	// Order matters.
	ab := TxMerkleRoot([]*Transaction{tx("a"), tx("b")})
	ba := TxMerkleRoot([]*Transaction{tx("b"), tx("a")})
	if ab == ba {
		t.Fatal("root should depend on transaction order")
	}
	// Content matters.
	ab2 := TxMerkleRoot([]*Transaction{tx("a"), tx("b2")})
	if ab == ab2 {
		t.Fatal("root should depend on transaction content")
	}
	// Odd counts work.
	for n := 1; n <= 9; n++ {
		txs := make([]*Transaction, n)
		for i := range txs {
			txs[i] = tx(fmt.Sprintf("t%d", i))
		}
		if TxMerkleRoot(txs).IsZero() {
			t.Fatalf("n=%d root zero", n)
		}
	}
}

func TestBlockHashChangesWithHeader(t *testing.T) {
	txs := []*Transaction{tx("a")}
	b1 := NewBlock(1, ZeroHash, 0, txs)
	b2 := NewBlock(2, ZeroHash, 0, txs)
	b3 := NewBlock(1, b1.Hash(), 0, txs)
	b4 := NewBlock(1, ZeroHash, 1, txs)
	if b1.Hash() == b2.Hash() || b1.Hash() == b3.Hash() || b1.Hash() == b4.Hash() {
		t.Fatal("header fields not reflected in block hash")
	}
}

func TestStringers(t *testing.T) {
	if NodeID(3).String() != "n3" {
		t.Fatal("NodeID stringer")
	}
	if EnterpriseID(2).String() != "e2" {
		t.Fatal("EnterpriseID stringer")
	}
	if ShardID(1).String() != "s1" {
		t.Fatal("ShardID stringer")
	}
	if TxInternal.String() != "internal" || TxCross.String() != "cross" {
		t.Fatal("TxKind stringer")
	}
	if (Version{3, 2}).String() != "3.2" {
		t.Fatal("Version stringer")
	}
	for op, want := range map[OpCode]string{OpGet: "get", OpPut: "put", OpAdd: "add", OpTransfer: "transfer", OpAssertGE: "assert>="} {
		if op.String() != want {
			t.Fatalf("OpCode %d stringer = %q", op, op.String())
		}
	}
}
