// Package types defines the data model shared by every layer of permchain:
// transactions and their read/write sets, blocks, and the identity types
// for nodes, enterprises, channels, and shards.
//
// The model follows §2.2 of the SIGMOD'21 tutorial: a transaction carries a
// deterministic sequence of key-value operations; a block batches
// transactions and chains to its predecessor by cryptographic hash.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Hash is a SHA-256 digest. The zero value means "no hash".
type Hash [32]byte

// ZeroHash is the absent hash (e.g. the parent of a genesis block).
var ZeroHash Hash

// String returns the first 8 hex characters, enough for logs.
func (h Hash) String() string { return hex.EncodeToString(h[:4]) }

// Hex returns the full 64-character hex encoding.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the absent hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// HashBytes digests b with SHA-256.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashConcat digests the concatenation of the given byte slices, each
// prefixed with its length so the encoding is unambiguous.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// NodeID identifies a consensus replica or peer.
type NodeID int

// String renders the id as "n<k>". It is on hot logging and metric-name
// paths, so it concatenates via strconv instead of fmt (one allocation
// for the result instead of fmt's boxing plus formatting state).
func (n NodeID) String() string { return "n" + strconv.Itoa(int(n)) }

// EnterpriseID identifies an enterprise (organization) in a collaborative
// application (§2.3.1). Enterprise 0 is reserved for "no enterprise".
type EnterpriseID int

// String renders the id as "e<k>".
func (e EnterpriseID) String() string { return "e" + strconv.Itoa(int(e)) }

// ChannelID identifies a Fabric-style channel (§2.3.1).
type ChannelID string

// ShardID identifies a data shard / cluster (§2.3.4).
type ShardID int

// String renders the id as "s<k>".
func (s ShardID) String() string { return "s" + strconv.Itoa(int(s)) }

// TxKind distinguishes where a transaction must be ordered and who may see
// it (§2.3.1): internal transactions stay inside one enterprise or shard,
// cross transactions span several.
type TxKind int

const (
	// TxInternal is ordered and executed by a single enterprise or shard.
	TxInternal TxKind = iota
	// TxCross spans enterprises or shards and needs global agreement.
	TxCross
)

// String names the kind.
func (k TxKind) String() string {
	switch k {
	case TxInternal:
		return "internal"
	case TxCross:
		return "cross"
	default:
		return fmt.Sprintf("TxKind(%d)", int(k))
	}
}

// OpCode enumerates the deterministic operations a transaction may perform
// against the key-value world state. This small language replaces the
// chaincode/EVM of the surveyed systems (see DESIGN.md, Substitutions);
// every technique the tutorial compares acts on the read/write sets these
// operations induce, not on richer language semantics.
type OpCode int

const (
	// OpGet reads Key into the transaction's read set.
	OpGet OpCode = iota
	// OpPut writes Value to Key.
	OpPut
	// OpAdd reads Key as an integer and adds Delta (read-modify-write).
	OpAdd
	// OpTransfer moves Delta from Key to Key2, failing the transaction if
	// the balance at Key would go negative.
	OpTransfer
	// OpAssertGE reads Key as an integer and fails the transaction unless
	// the value is >= Delta. Used for constraint checks (e.g. SLAs).
	OpAssertGE
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpAdd:
		return "add"
	case OpTransfer:
		return "transfer"
	case OpAssertGE:
		return "assert>="
	default:
		return fmt.Sprintf("OpCode(%d)", int(o))
	}
}

// Op is one operation in a transaction payload.
type Op struct {
	Code  OpCode
	Key   string
	Key2  string // second key for OpTransfer
	Value []byte // value for OpPut
	Delta int64  // amount for OpAdd/OpTransfer/OpAssertGE
}

// Keys returns every key the operation touches.
func (o Op) Keys() []string {
	if o.Code == OpTransfer {
		return []string{o.Key, o.Key2}
	}
	return []string{o.Key}
}

// Version locates a committed value: the block that wrote it and the
// transaction's index within that block. Fabric-style MVCC validation
// (§2.3.3) compares these versions.
type Version struct {
	Block uint64
	Tx    int
}

// Less orders versions by block, then transaction index.
func (v Version) Less(o Version) bool {
	if v.Block != o.Block {
		return v.Block < o.Block
	}
	return v.Tx < o.Tx
}

// String renders the version as "<block>.<tx>".
func (v Version) String() string {
	return strconv.FormatUint(v.Block, 10) + "." + strconv.Itoa(v.Tx)
}

// ReadSet maps each key read by a transaction to the version observed.
type ReadSet map[string]Version

// WriteSet maps each key written by a transaction to the new value.
type WriteSet map[string][]byte

// Keys returns the sorted keys of the read set.
func (r ReadSet) Keys() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Keys returns the sorted keys of the write set.
func (w WriteSet) Keys() []string {
	out := make([]string, 0, len(w))
	for k := range w {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Transaction is the unit of work clients submit. Ops is the deterministic
// payload. For the execute-first (XOV) architecture, endorsement fills in
// Reads and Writes before ordering; order-first architectures leave them
// empty and execute Ops after consensus.
type Transaction struct {
	ID         string
	Client     NodeID
	Enterprise EnterpriseID
	Kind       TxKind
	// Shards lists every shard the transaction touches (len>1 ⇒ cross-shard).
	Shards []ShardID
	Ops    []Op

	// Reads and Writes are the simulated read/write sets produced by
	// endorsement in XOV (§2.3.3) or declared up front for OXII dependency
	// graphs. Nil until filled.
	Reads  ReadSet
	Writes WriteSet

	// Private marks the payload as confidential: only the hash goes on the
	// shared ledger (private data collections, Quorum private txns).
	Private bool
}

// Hash digests the transaction's identity and payload (not its volatile
// read/write sets, which differ per endorsement).
func (t *Transaction) Hash() Hash {
	h := sha256.New()
	var n [8]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	put([]byte(t.ID))
	binary.BigEndian.PutUint64(n[:], uint64(t.Client))
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(t.Enterprise))
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(t.Kind))
	h.Write(n[:])
	for _, s := range t.Shards {
		binary.BigEndian.PutUint64(n[:], uint64(s))
		h.Write(n[:])
	}
	for _, op := range t.Ops {
		binary.BigEndian.PutUint64(n[:], uint64(op.Code))
		h.Write(n[:])
		put([]byte(op.Key))
		put([]byte(op.Key2))
		put(op.Value)
		binary.BigEndian.PutUint64(n[:], uint64(op.Delta))
		h.Write(n[:])
	}
	if t.Private {
		h.Write([]byte{1})
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// TouchedKeys returns the sorted set of keys named by the payload.
func (t *Transaction) TouchedKeys() []string {
	seen := map[string]struct{}{}
	for _, op := range t.Ops {
		for _, k := range op.Keys() {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ConflictsWith reports whether two transactions have a read-write or
// write-write conflict on their declared read/write sets. Both OXII
// dependency graphs and Fabric++ reordering are built on this predicate.
func (t *Transaction) ConflictsWith(o *Transaction) bool {
	for k := range t.Writes {
		if _, ok := o.Writes[k]; ok {
			return true
		}
		if _, ok := o.Reads[k]; ok {
			return true
		}
	}
	for k := range t.Reads {
		if _, ok := o.Writes[k]; ok {
			return true
		}
	}
	return false
}

// String renders a short description for logs.
func (t *Transaction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx(%s %s", t.ID, t.Kind)
	if len(t.Shards) > 0 {
		fmt.Fprintf(&b, " shards=%v", t.Shards)
	}
	fmt.Fprintf(&b, " ops=%d)", len(t.Ops))
	return b.String()
}

// BlockHeader chains a block to its predecessor and commits to its body
// via a Merkle root over transaction hashes.
type BlockHeader struct {
	Height   uint64
	PrevHash Hash
	TxRoot   Hash
	Proposer NodeID
}

// Hash digests the header.
func (h *BlockHeader) Hash() Hash {
	var buf [8 + 32 + 32 + 8]byte
	binary.BigEndian.PutUint64(buf[0:], h.Height)
	copy(buf[8:], h.PrevHash[:])
	copy(buf[40:], h.TxRoot[:])
	binary.BigEndian.PutUint64(buf[72:], uint64(h.Proposer))
	return HashBytes(buf[:])
}

// Block batches transactions. Blocks are immutable once built; use
// NewBlock so the Merkle root matches the body.
type Block struct {
	Header BlockHeader
	Txs    []*Transaction
}

// NewBlock assembles a block at the given height on top of prev, computing
// the transaction Merkle root.
func NewBlock(height uint64, prev Hash, proposer NodeID, txs []*Transaction) *Block {
	return &Block{
		Header: BlockHeader{
			Height:   height,
			PrevHash: prev,
			TxRoot:   TxMerkleRoot(txs),
			Proposer: proposer,
		},
		Txs: txs,
	}
}

// Hash returns the header hash, which identifies the block.
func (b *Block) Hash() Hash { return b.Header.Hash() }

// TxMerkleRoot computes the Merkle root over the transactions' hashes.
// An empty block has root ZeroHash.
func TxMerkleRoot(txs []*Transaction) Hash {
	if len(txs) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.Hash()
	}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, HashConcat(level[i][:], level[i+1][:]))
			} else {
				// Odd node is promoted by hashing with itself, the usual
				// duplication rule.
				next = append(next, HashConcat(level[i][:], level[i][:]))
			}
		}
		level = next
	}
	return level[0]
}
