package types

import (
	"slices"
	"strings"
)

// ReadList and WriteList are the slice representations of a transaction's
// read and write sets, used on the executor hot path. The map types
// (ReadSet, WriteSet) remain the public facade carried inside Transaction;
// the lists exist so per-transaction execution can reuse scratch buffers
// instead of allocating two maps per transaction (see statedb.ExecScratch).
//
// A list is canonical when sorted by key with unique keys; the executors
// guarantee that before handing a list to validation or commit.

// ReadItem is one entry of a ReadList: a key and the version observed.
type ReadItem struct {
	Key string
	Ver Version
}

// ReadList is a slice-based read set, sorted by key when canonical.
type ReadList []ReadItem

// Sort orders the list by key.
func (r ReadList) Sort() {
	slices.SortFunc(r, func(a, b ReadItem) int { return strings.Compare(a.Key, b.Key) })
}

// Get returns the version recorded for key. The list must be sorted.
func (r ReadList) Get(key string) (Version, bool) {
	i, ok := slices.BinarySearchFunc(r, key, func(it ReadItem, k string) int {
		return strings.Compare(it.Key, k)
	})
	if !ok {
		return Version{}, false
	}
	return r[i].Ver, true
}

// ToSet copies the list into a fresh ReadSet (the public facade form).
func (r ReadList) ToSet() ReadSet {
	if r == nil {
		return nil
	}
	out := make(ReadSet, len(r))
	for i := range r {
		out[r[i].Key] = r[i].Ver
	}
	return out
}

// ReadListFromSet builds a sorted ReadList from a map read set.
func ReadListFromSet(s ReadSet) ReadList {
	if s == nil {
		return nil
	}
	out := make(ReadList, 0, len(s))
	for k, v := range s {
		out = append(out, ReadItem{Key: k, Ver: v})
	}
	out.Sort()
	return out
}

// WriteItem is one entry of a WriteList: a key and its new value.
type WriteItem struct {
	Key   string
	Value []byte
}

// WriteList is a slice-based write set, sorted by key when canonical.
type WriteList []WriteItem

// Sort orders the list by key.
func (w WriteList) Sort() {
	slices.SortFunc(w, func(a, b WriteItem) int { return strings.Compare(a.Key, b.Key) })
}

// Get returns the value recorded for key. The list must be sorted.
func (w WriteList) Get(key string) ([]byte, bool) {
	i, ok := slices.BinarySearchFunc(w, key, func(it WriteItem, k string) int {
		return strings.Compare(it.Key, k)
	})
	if !ok {
		return nil, false
	}
	return w[i].Value, true
}

// ToSet copies the list into a fresh WriteSet (the public facade form).
func (w WriteList) ToSet() WriteSet {
	if w == nil {
		return nil
	}
	out := make(WriteSet, len(w))
	for i := range w {
		out[w[i].Key] = w[i].Value
	}
	return out
}

// WriteListFromSet builds a sorted WriteList from a map write set.
func WriteListFromSet(s WriteSet) WriteList {
	if s == nil {
		return nil
	}
	out := make(WriteList, 0, len(s))
	for k, v := range s {
		out = append(out, WriteItem{Key: k, Value: v})
	}
	out.Sort()
	return out
}
