package types

import (
	"fmt"
	"testing"
)

// TestStringFormats pins the exact renderings (logs and metric names
// depend on them) after the fmt → strconv rewrite.
func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{NodeID(0).String(), "n0"},
		{NodeID(7).String(), "n7"},
		{NodeID(-1).String(), "n-1"},
		{EnterpriseID(3).String(), "e3"},
		{ShardID(12).String(), "s12"},
		{Version{}.String(), "0.0"},
		{Version{Block: 42, Tx: 7}.String(), "42.7"},
		{fmt.Sprintf("%v", NodeID(5)), "n5"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

// TestIDStringAllocs caps the id renderers. Realistic ids are small
// (clusters run tens of nodes), where strconv serves the digits from
// its cached smalls table and only the concatenation allocates; large
// ids add one more for the digit string. The old fmt.Sprintf paths
// cost 2-3 regardless.
func TestIDStringAllocs(t *testing.T) {
	var sink string
	if n := testing.AllocsPerRun(200, func() { sink = NodeID(7).String() }); n > 1 {
		t.Errorf("NodeID.String (small id) allocates %.1f/op, want ≤1", n)
	}
	if n := testing.AllocsPerRun(200, func() { sink = NodeID(123456).String() }); n > 2 {
		t.Errorf("NodeID.String (large id) allocates %.1f/op, want ≤2", n)
	}
	if n := testing.AllocsPerRun(200, func() { sink = Version{Block: 12, Tx: 34}.String() }); n > 2 {
		t.Errorf("Version.String allocates %.1f/op, want ≤2", n)
	}
	_ = sink
}

func BenchmarkIDString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NodeID(i).String()
	}
}

func BenchmarkVersionString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Version{Block: uint64(i), Tx: i & 7}.String()
	}
}
