package types

import (
	"reflect"
	"testing"
)

func TestReadListRoundTrip(t *testing.T) {
	set := ReadSet{"b": {Block: 2, Tx: 1}, "a": {Block: 1}, "c": {}}
	list := ReadListFromSet(set)
	for i := 1; i < len(list); i++ {
		if list[i-1].Key >= list[i].Key {
			t.Fatalf("list not sorted: %v", list)
		}
	}
	if ver, ok := list.Get("b"); !ok || ver != (Version{Block: 2, Tx: 1}) {
		t.Fatalf("Get(b) = %v %v", ver, ok)
	}
	if _, ok := list.Get("zz"); ok {
		t.Fatal("Get(zz) found a ghost")
	}
	if back := list.ToSet(); !reflect.DeepEqual(back, set) {
		t.Fatalf("round trip: %v != %v", back, set)
	}
	if ReadListFromSet(nil) != nil || ReadList(nil).ToSet() != nil {
		t.Fatal("nil must round-trip to nil")
	}
}

func TestWriteListRoundTrip(t *testing.T) {
	set := WriteSet{"y": []byte("2"), "x": []byte("1"), "z": nil}
	list := WriteListFromSet(set)
	for i := 1; i < len(list); i++ {
		if list[i-1].Key >= list[i].Key {
			t.Fatalf("list not sorted: %v", list)
		}
	}
	if v, ok := list.Get("x"); !ok || string(v) != "1" {
		t.Fatalf("Get(x) = %q %v", v, ok)
	}
	if _, ok := list.Get("w"); ok {
		t.Fatal("Get(w) found a ghost")
	}
	if back := list.ToSet(); !reflect.DeepEqual(back, set) {
		t.Fatalf("round trip: %v != %v", back, set)
	}
	if WriteListFromSet(nil) != nil || WriteList(nil).ToSet() != nil {
		t.Fatal("nil must round-trip to nil")
	}
}

func TestListSortIsAllocFree(t *testing.T) {
	r := ReadList{{Key: "c"}, {Key: "a"}, {Key: "b"}}
	w := WriteList{{Key: "c"}, {Key: "a"}, {Key: "b"}}
	if n := testing.AllocsPerRun(100, func() { r.Sort(); w.Sort() }); n != 0 {
		t.Fatalf("Sort allocates %.1f/op, want 0", n)
	}
}
