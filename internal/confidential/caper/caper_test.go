package caper

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"permchain/internal/types"
)

func internalTx(id string, e types.EnterpriseID, key string, delta int64) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxInternal, Enterprise: e,
		Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("e%d/%s", e, key), Delta: delta}},
	}
}

func crossTx(id string, key string, delta int64) *types.Transaction {
	return &types.Transaction{
		ID: id, Kind: types.TxCross,
		Ops: []types.Op{{Code: types.OpAdd, Key: "shared/" + key, Delta: delta}},
	}
}

func newNet(t *testing.T, ents int, mode Mode) *Network {
	t.Helper()
	n, err := NewNetwork(Config{Enterprises: ents, Mode: mode, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestInternalStaysPrivate(t *testing.T) {
	n := newNet(t, 3, OrderingService)
	if err := n.SubmitInternal(1, internalTx("a", 1, "recipe", 5)); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitInternal(2, internalTx("b", 2, "process", 7)); err != nil {
		t.Fatal(err)
	}
	// Enterprise 1 sees its own transaction...
	if n.Enterprise(1).View().Len() != 1 {
		t.Fatal("e1 view missing own internal tx")
	}
	// ...but never enterprise 2's, and vice versa.
	for _, v := range n.Enterprise(1).View().Topo() {
		if v.Tx.Enterprise == 2 {
			t.Fatal("e2 internal tx leaked into e1's view")
		}
	}
	// The state is private too: e1's store has no e2 keys.
	for _, k := range n.Enterprise(1).Store().Keys() {
		if strings.HasPrefix(k, "e2/") {
			t.Fatalf("e2 key %q leaked into e1's store", k)
		}
	}
	if n.Enterprise(1).Store().GetInt("e1/recipe") != 5 {
		t.Fatal("internal execution missing")
	}
}

func TestCrossVisibleToAll(t *testing.T) {
	n := newNet(t, 3, OrderingService)
	if err := n.SubmitCross(crossTx("x1", "total", 10)); err != nil {
		t.Fatal(err)
	}
	if !n.AwaitCrossCount(1, 10*time.Second) {
		t.Fatal("cross tx never applied")
	}
	for _, id := range n.EnterpriseIDs() {
		e := n.Enterprise(id)
		if e.Store().GetInt("shared/total") != 10 {
			t.Fatalf("%v shared state = %d", id, e.Store().GetInt("shared/total"))
		}
		if e.View().Len() != 1 {
			t.Fatalf("%v view has %d vertices", id, e.View().Len())
		}
	}
}

func TestCrossSubsequenceConsistent(t *testing.T) {
	n := newNet(t, 4, Flattened)
	const k = 8
	for i := 0; i < k; i++ {
		if err := n.SubmitCross(crossTx(fmt.Sprintf("x%d", i), "ctr", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !n.AwaitCrossCount(k, 15*time.Second) {
		t.Fatal("cross txs never all applied")
	}
	ref := n.CrossSubsequence(1)
	if len(ref) != k {
		t.Fatalf("e1 sees %d cross txs", len(ref))
	}
	for _, id := range n.EnterpriseIDs() {
		got := n.CrossSubsequence(id)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("%v cross subsequence %v != %v", id, got, ref)
		}
		if n.Enterprise(id).Store().GetInt("shared/ctr") != k {
			t.Fatalf("%v shared ctr = %d", id, n.Enterprise(id).Store().GetInt("shared/ctr"))
		}
	}
}

func TestDAGStructure(t *testing.T) {
	n := newNet(t, 2, OrderingService)
	if err := n.SubmitInternal(1, internalTx("i1", 1, "k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitCross(crossTx("c1", "s", 1)); err != nil {
		t.Fatal(err)
	}
	if !n.AwaitCrossCount(1, 10*time.Second) {
		t.Fatal("cross not applied")
	}
	if err := n.SubmitInternal(1, internalTx("i2", 1, "k", 1)); err != nil {
		t.Fatal(err)
	}
	dag := n.Enterprise(1).View()
	if dag.Len() != 3 {
		t.Fatalf("view size %d", dag.Len())
	}
	if err := dag.Verify(); err != nil {
		t.Fatal(err)
	}
	// i2 must causally follow both i1 and c1 in e1's view.
	topo := dag.Topo()
	last := topo[len(topo)-1]
	if last.Tx.ID != "i2" {
		t.Fatalf("last vertex %s", last.Tx.ID)
	}
	if len(last.Parents) == 0 {
		t.Fatal("i2 has no parents")
	}
}

func TestRejectsMisroutedTransactions(t *testing.T) {
	n := newNet(t, 2, OrderingService)
	// Internal tx touching shared keys must be rejected.
	bad := &types.Transaction{ID: "bad", Kind: types.TxInternal,
		Ops: []types.Op{{Code: types.OpAdd, Key: "shared/x", Delta: 1}}}
	if err := n.SubmitInternal(1, bad); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v", err)
	}
	// Internal tx touching another enterprise's keys must be rejected.
	bad2 := &types.Transaction{ID: "bad2", Kind: types.TxInternal,
		Ops: []types.Op{{Code: types.OpAdd, Key: "e2/secret", Delta: 1}}}
	if err := n.SubmitInternal(1, bad2); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v", err)
	}
	// Cross tx touching private keys must be rejected.
	bad3 := &types.Transaction{ID: "bad3", Kind: types.TxCross,
		Ops: []types.Op{{Code: types.OpAdd, Key: "e1/secret", Delta: 1}}}
	if err := n.SubmitCross(bad3); !errors.Is(err, ErrPrivateKey) {
		t.Fatalf("err = %v", err)
	}
	// Kind mismatches.
	if err := n.SubmitInternal(1, crossTx("c", "s", 1)); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("err = %v", err)
	}
	if err := n.SubmitCross(internalTx("i", 1, "k", 1)); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("err = %v", err)
	}
	if err := n.SubmitInternal(9, internalTx("i", 9, "k", 1)); !errors.Is(err, ErrUnknownEnterprise) {
		t.Fatalf("err = %v", err)
	}
}

func TestViewSizeExcludesOthersInternal(t *testing.T) {
	n := newNet(t, 2, OrderingService)
	for i := 0; i < 10; i++ {
		if err := n.SubmitInternal(2, internalTx(fmt.Sprintf("b%d", i), 2, "k", 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Enterprise 1 stores nothing from e2's busy internal life.
	if got := n.ViewSize(1); got != 0 {
		t.Fatalf("e1 view size %d, want 0", got)
	}
	if got := n.ViewSize(2); got == 0 {
		t.Fatal("e2 view size 0")
	}
}

func TestBothModesWork(t *testing.T) {
	for _, mode := range []Mode{OrderingService, Flattened, Hierarchical} {
		n := newNet(t, 4, mode)
		if err := n.SubmitCross(crossTx("x", "k", 3)); err != nil {
			t.Fatal(err)
		}
		if !n.AwaitCrossCount(1, 10*time.Second) {
			t.Fatalf("mode %v: cross tx not applied", mode)
		}
		n.Close()
	}
}

func TestHierarchicalMode(t *testing.T) {
	n := newNet(t, 3, Hierarchical)
	if n.Mode() != Hierarchical {
		t.Fatal("mode accessor")
	}
	// Internal txns still work.
	if err := n.SubmitInternal(2, internalTx("i1", 2, "k", 5)); err != nil {
		t.Fatal(err)
	}
	// Cross tx pre-orders at the initiator's cluster, then globally.
	tx := crossTx("hx1", "total", 7)
	tx.Enterprise = 2
	before := n.Enterprise(2).Cluster().OrderedCount()
	if err := n.SubmitCross(tx); err != nil {
		t.Fatal(err)
	}
	if !n.AwaitCrossCount(1, 20*time.Second) {
		t.Fatal("cross tx never applied")
	}
	// The initiator's own cluster ordered the pre-round.
	if n.Enterprise(2).Cluster().OrderedCount() <= before {
		t.Fatal("hierarchical pre-order round missing")
	}
	for _, id := range n.EnterpriseIDs() {
		if n.Enterprise(id).Store().GetInt("shared/total") != 7 {
			t.Fatalf("%v shared state wrong", id)
		}
	}
}

func TestInternalTxUsesOwnCluster(t *testing.T) {
	n := newNet(t, 2, OrderingService)
	before1 := n.Enterprise(1).Cluster().OrderedCount()
	before2 := n.Enterprise(2).Cluster().OrderedCount()
	if err := n.SubmitInternal(1, internalTx("i1", 1, "k", 1)); err != nil {
		t.Fatal(err)
	}
	if n.Enterprise(1).Cluster().OrderedCount() != before1+1 {
		t.Fatal("e1's cluster did not order its internal tx")
	}
	// e2's cluster never participates in e1's internal consensus.
	if n.Enterprise(2).Cluster().OrderedCount() != before2 {
		t.Fatal("e2's cluster ordered e1's internal tx")
	}
}
