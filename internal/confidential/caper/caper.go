// Package caper implements the view-based confidentiality technique of
// CAPER (Amiri et al., VLDB'19) as presented in §2.3.1 of the tutorial:
// the blockchain ledger is a DAG of transactions that *no node stores in
// full* — each enterprise maintains only its own view, holding its
// internal transactions and every cross-enterprise transaction.
//
// Each enterprise runs its own fault-tolerant cluster that orders its
// internal transactions locally; cross-enterprise transactions are
// globally ordered in one of the three modes of the CAPER paper:
//
//   - OrderingService: a separate orderer cluster, trusted for ordering
//     only (it never sees application state);
//   - Flattened: one consensus group formed by the enterprises themselves
//     (one participant per enterprise, no extra nodes);
//   - Hierarchical: the initiating enterprise's cluster pre-orders the
//     transaction locally, then a top-level cluster fixes the global
//     order — two rounds, but local traffic stays local.
package caper

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/ledger"
	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Mode selects how cross-enterprise transactions are ordered (§2.3.1).
type Mode int

const (
	// OrderingService uses a dedicated orderer cluster; enterprises trust
	// it for ordering only.
	OrderingService Mode = iota
	// Flattened runs consensus among the enterprises themselves — one
	// participant per enterprise, no extra nodes.
	Flattened
	// Hierarchical pre-orders at the initiating enterprise's own cluster,
	// then globally at a top-level cluster (CAPER's two-level protocol).
	Hierarchical
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case OrderingService:
		return "ordering-service"
	case Flattened:
		return "flattened"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Enterprise is one collaborating organization: its own consensus
// cluster, its private view of the DAG ledger, and its application state.
// Public (cross-enterprise) state lives under "shared/" keys and is
// replicated in every enterprise's store; everything else is private.
type Enterprise struct {
	ID      types.EnterpriseID
	cluster *cluster.Cluster
	dag     *ledger.DAG
	store   *statedb.Store

	lastLocal types.Hash // head of this enterprise's internal chain
	lastCross types.Hash // last cross-enterprise vertex in this view
	localSeq  uint64
	crossSeq  uint64
}

// View returns the enterprise's DAG view of the ledger.
func (e *Enterprise) View() *ledger.DAG { return e.dag }

// Store returns the enterprise's application state.
func (e *Enterprise) Store() *statedb.Store { return e.store }

// Cluster returns the enterprise's internal consensus cluster.
func (e *Enterprise) Cluster() *cluster.Cluster { return e.cluster }

// Network is a Caper deployment: enterprise clusters plus the global
// consensus for cross-enterprise transactions.
type Network struct {
	mode Mode
	mu   sync.Mutex
	ents map[types.EnterpriseID]*Enterprise

	net     *network.Network
	global  *cluster.Cluster
	timeout time.Duration

	crossApplied int
	stopCh       chan struct{}
	closeOnce    sync.Once
	drainDone    chan struct{}
}

// Config shapes a Caper network.
type Config struct {
	Enterprises int
	Mode        Mode
	// ClusterSize is each enterprise cluster's replica count (default 4).
	ClusterSize int
	// Orderers is the ordering-service / hierarchical-root cluster size
	// (default 4); in Flattened mode the global group has one participant
	// per enterprise instead.
	Orderers int
	// Timeout bounds consensus rounds.
	Timeout time.Duration
	// Net optionally supplies the transport (for latency/loss injection);
	// nil creates a fresh one.
	Net *network.Network
	// DisableSig turns off consensus message signatures (benchmarks).
	DisableSig bool
}

// NewNetwork creates and starts a Caper deployment.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Enterprises < 1 {
		return nil, errors.New("caper: need at least one enterprise")
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 4
	}
	if cfg.Orderers <= 0 {
		cfg.Orderers = 4
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Net == nil {
		cfg.Net = network.New()
	}
	alloc := cluster.NewAllocator(cfg.Net)
	n := &Network{
		mode:      cfg.Mode,
		ents:      map[types.EnterpriseID]*Enterprise{},
		net:       cfg.Net,
		timeout:   cfg.Timeout,
		stopCh:    make(chan struct{}),
		drainDone: make(chan struct{}),
	}
	for i := 1; i <= cfg.Enterprises; i++ {
		id := types.EnterpriseID(i)
		n.ents[id] = &Enterprise{
			ID:      id,
			cluster: alloc.NewCluster(types.ShardID(i), cluster.Options{Size: cfg.ClusterSize, Consensus: consensus.Config{Timeout: cfg.Timeout / 4, DisableSig: cfg.DisableSig}}),
			dag:     ledger.NewDAG(),
			store:   statedb.New(),
		}
	}

	// The global ordering group: dedicated orderers for OrderingService
	// and Hierarchical; the enterprises themselves (one participant each,
	// no extra nodes) for Flattened.
	globalSize := cfg.Orderers
	if cfg.Mode == Flattened {
		globalSize = cfg.Enterprises
	}
	n.global = alloc.NewCluster(types.ShardID(0), cluster.Options{Size: globalSize, Consensus: consensus.Config{Timeout: cfg.Timeout / 4, DisableSig: cfg.DisableSig}})
	go n.drainCross()
	return n, nil
}

// Close stops every cluster. Idempotent.
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		close(n.stopCh)
		n.global.Stop()
		n.mu.Lock()
		ents := make([]*Enterprise, 0, len(n.ents))
		for _, e := range n.ents {
			ents = append(ents, e)
		}
		n.mu.Unlock()
		for _, e := range ents {
			e.cluster.Stop()
		}
	})
	<-n.drainDone
}

// Mode returns the deployment's cross-enterprise ordering mode.
func (n *Network) Mode() Mode { return n.mode }

// Enterprise returns the enterprise with the given id.
func (n *Network) Enterprise(id types.EnterpriseID) *Enterprise {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ents[id]
}

// EnterpriseIDs lists all enterprise ids.
func (n *Network) EnterpriseIDs() []types.EnterpriseID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]types.EnterpriseID, 0, len(n.ents))
	for id := range n.ents {
		out = append(out, id)
	}
	return out
}

// Transport exposes the underlying simulated network (for stats).
func (n *Network) Transport() *network.Network { return n.net }

// Caper errors.
var (
	ErrUnknownEnterprise = errors.New("caper: unknown enterprise")
	ErrWrongKind         = errors.New("caper: transaction kind does not match submission path")
	ErrPrivateKey        = errors.New("caper: cross-enterprise transaction touches private keys")
	ErrForeignKey        = errors.New("caper: internal transaction touches foreign or shared keys")
)

// SubmitInternal orders an internal transaction on its enterprise's own
// cluster, executes it on the enterprise's private state, and appends it
// only to that enterprise's view. Other enterprises never see it —
// confidentiality by construction.
func (n *Network) SubmitInternal(id types.EnterpriseID, tx *types.Transaction) error {
	if tx.Kind != types.TxInternal {
		return ErrWrongKind
	}
	// Internal transactions may only touch the enterprise's own keyspace.
	prefix := fmt.Sprintf("e%d/", id)
	for _, k := range tx.TouchedKeys() {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return fmt.Errorf("%w: %q", ErrForeignKey, k)
		}
	}
	n.mu.Lock()
	e, ok := n.ents[id]
	n.mu.Unlock()
	if !ok {
		return ErrUnknownEnterprise
	}
	tx.Enterprise = id
	// Local consensus: the enterprise's own cluster orders the
	// transaction; no other enterprise participates or learns of it.
	if _, err := e.cluster.OrderSync(tx, tx.Hash(), n.timeout); err != nil {
		return err
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	e.localSeq++
	res := e.store.Execute(types.Version{Block: e.localSeq, Tx: 0}, tx.Ops)
	if res.Err != nil {
		return res.Err
	}
	tx.Reads, tx.Writes = res.Reads, res.Writes

	var parents []types.Hash
	if !e.lastLocal.IsZero() {
		parents = append(parents, e.lastLocal)
	}
	if !e.lastCross.IsZero() && e.lastCross != e.lastLocal {
		parents = append(parents, e.lastCross)
	}
	v, err := e.dag.Append(tx, parents...)
	if err != nil {
		return err
	}
	e.lastLocal = v
	return nil
}

// SubmitCross submits a cross-enterprise transaction for global ordering.
// In Hierarchical mode the initiating enterprise (tx.Enterprise, default
// the first) pre-orders it locally before the top-level round. Once the
// global order fixes it, every enterprise executes it on the shared state
// and appends it to its own view. Asynchronous; use AwaitCrossCount.
func (n *Network) SubmitCross(tx *types.Transaction) error {
	if tx.Kind != types.TxCross {
		return ErrWrongKind
	}
	// Cross-enterprise transactions may only touch the shared keyspace —
	// internal data never appears in a globally-ordered transaction.
	for _, k := range tx.TouchedKeys() {
		if len(k) < 7 || k[:7] != "shared/" {
			return fmt.Errorf("%w: %q", ErrPrivateKey, k)
		}
	}
	if n.mode == Hierarchical {
		initiator := tx.Enterprise
		if initiator == 0 {
			initiator = 1
		}
		n.mu.Lock()
		e, ok := n.ents[initiator]
		n.mu.Unlock()
		if !ok {
			return ErrUnknownEnterprise
		}
		// Level 1: the initiator's cluster pre-orders the transaction,
		// fixing its position relative to the enterprise's internal flow.
		h := tx.Hash()
		if _, err := e.cluster.OrderSync(tx, types.HashConcat([]byte("caper/pre"), h[:]), n.timeout); err != nil {
			return err
		}
	}
	// Level 2 (all modes): the global group fixes the cross order.
	n.global.SubmitAsync(tx, tx.Hash())
	return nil
}

// drainCross applies globally ordered cross-enterprise transactions to
// every view, in decision order.
func (n *Network) drainCross() {
	defer close(n.drainDone)
	decs := n.global.Subscribe()
	for {
		select {
		case <-n.stopCh:
			return
		case d := <-decs:
			tx, ok := d.Value.(*types.Transaction)
			if !ok {
				continue
			}
			n.applyCross(tx)
		}
	}
}

func (n *Network) applyCross(tx *types.Transaction) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range n.ents {
		e.crossSeq++
		// Cross transactions execute deterministically on identical shared
		// state, so every enterprise gets the same result; a payload
		// failure is recorded by appending the vertex without effects.
		e.store.Execute(types.Version{Block: 1 << 32, Tx: int(e.crossSeq)}, tx.Ops)
		var parents []types.Hash
		if !e.lastCross.IsZero() {
			parents = append(parents, e.lastCross)
		}
		if !e.lastLocal.IsZero() && e.lastLocal != e.lastCross {
			parents = append(parents, e.lastLocal)
		}
		v, err := e.dag.Append(tx, parents...)
		if err != nil {
			continue
		}
		e.lastCross = v
	}
	n.crossApplied++
}

// AwaitCrossCount blocks until k cross-enterprise transactions have been
// applied to every view, or the timeout elapses.
func (n *Network) AwaitCrossCount(k int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		n.mu.Lock()
		done := n.crossApplied >= k
		n.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// CrossSubsequence returns the ids of cross-enterprise transactions in an
// enterprise's view, in view order — identical across enterprises when
// the system is consistent.
func (n *Network) CrossSubsequence(id types.EnterpriseID) []string {
	n.mu.Lock()
	e := n.ents[id]
	n.mu.Unlock()
	if e == nil {
		return nil
	}
	var out []string
	for _, v := range e.dag.Filter(func(tx *types.Transaction) bool { return tx.Kind == types.TxCross }) {
		out = append(out, v.Tx.ID)
	}
	return out
}

// ViewSize approximates the bytes enterprise id stores: its view's
// transactions. The confidentiality experiment compares this to
// replicate-everything designs.
func (n *Network) ViewSize(id types.EnterpriseID) int {
	n.mu.Lock()
	e := n.ents[id]
	n.mu.Unlock()
	if e == nil {
		return 0
	}
	total := 0
	for _, v := range e.dag.Topo() {
		total += ledger.TxSize(v.Tx)
	}
	return total
}
