package channels

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"permchain/internal/types"
)

func newService(t *testing.T) *Service {
	t.Helper()
	s := NewService(Config{Timeout: 150 * time.Millisecond})
	t.Cleanup(s.Close)
	return s
}

func putTx(id, key string, val string) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpPut, Key: key, Value: []byte(val)}}}
}

func addTx(id, key string, d int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: key, Delta: d}}}
}

func TestChannelIsolation(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("supply", []types.EnterpriseID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("finance", []types.EnterpriseID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("supply", 1, putTx("t1", "order", "100 widgets")); err != nil {
		t.Fatal(err)
	}
	if !s.AwaitApplied("supply", 1, 10*time.Second) {
		t.Fatal("tx never applied")
	}
	// Members of "supply" see the data.
	for _, m := range []types.EnterpriseID{1, 2} {
		st, err := s.MemberState("supply", m)
		if err != nil {
			t.Fatal(err)
		}
		if v, _, ok := st.Get("order"); !ok || string(v) != "100 widgets" {
			t.Fatalf("member %v missing channel data", m)
		}
	}
	// Enterprise 3 is not on "supply": no state, no ledger.
	if _, err := s.MemberState("supply", 3); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	// And the finance channel never saw the tx.
	st, _ := s.MemberState("finance", 3)
	if _, _, ok := st.Get("order"); ok {
		t.Fatal("data leaked across channels")
	}
	fc, _ := s.MemberChain("finance", 3)
	if fc.TxCount() != 0 {
		t.Fatal("ledger entries leaked across channels")
	}
}

func TestMembersShareIdenticalLedger(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("ch", []types.EnterpriseID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Distinct keys: transactions endorsed against the same snapshot
	// conflict on a shared key and would (correctly) MVCC-abort.
	const k = 10
	for i := 0; i < k; i++ {
		if err := s.Submit("ch", types.EnterpriseID(1+i%3), addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("ctr%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.AwaitApplied("ch", k, 10*time.Second) {
		t.Fatal("transactions never applied")
	}
	c1, _ := s.MemberChain("ch", 1)
	c2, _ := s.MemberChain("ch", 2)
	c3, _ := s.MemberChain("ch", 3)
	if !c1.EqualTo(c2) || !c2.EqualTo(c3) {
		t.Fatal("member ledgers diverged")
	}
	if err := c1.Verify(); err != nil {
		t.Fatal(err)
	}
	st1, _ := s.MemberState("ch", 1)
	st2, _ := s.MemberState("ch", 2)
	if st1.StateHash() != st2.StateHash() {
		t.Fatal("member states diverged")
	}
	total := int64(0)
	for i := 0; i < k; i++ {
		total += st1.GetInt(fmt.Sprintf("ctr%d", i))
	}
	if total != k {
		t.Fatalf("sum = %d, want %d", total, k)
	}
}

func TestSharedOrderingAcrossChannels(t *testing.T) {
	// Different channels share the orderers but stay isolated.
	s := newService(t)
	if _, err := s.CreateChannel("a", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("b", []types.EnterpriseID{2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Submit("a", 1, addTx(fmt.Sprintf("a%d", i), fmt.Sprintf("x%d", i), 1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit("b", 2, addTx(fmt.Sprintf("b%d", i), fmt.Sprintf("x%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.AwaitApplied("a", 5, 10*time.Second) || !s.AwaitApplied("b", 5, 10*time.Second) {
		t.Fatal("not all applied")
	}
	sa, _ := s.MemberState("a", 1)
	sb, _ := s.MemberState("b", 2)
	var sumA, sumB int64
	for i := 0; i < 5; i++ {
		sumA += sa.GetInt(fmt.Sprintf("x%d", i))
		sumB += sb.GetInt(fmt.Sprintf("x%d", i))
	}
	if sumA != 5 || sumB != 10 {
		t.Fatalf("a sum=%d b sum=%d", sumA, sumB)
	}
}

func TestCrossChannelAtomicPair(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("a", []types.EnterpriseID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("b", []types.EnterpriseID{2, 3}); err != nil {
		t.Fatal(err)
	}
	// Seed channel a with funds.
	if err := s.Submit("a", 1, addTx("fund", "escrow", 100)); err != nil {
		t.Fatal(err)
	}
	if !s.AwaitApplied("a", 1, 10*time.Second) {
		t.Fatal("seed not applied")
	}
	// Move 40 out of a's escrow and into b's received.
	txA := &types.Transaction{ID: "xa", Ops: []types.Op{
		{Code: types.OpAssertGE, Key: "escrow", Delta: 40},
		{Code: types.OpAdd, Key: "escrow", Delta: -40},
	}}
	txB := addTx("xb", "received", 40)
	if err := s.SubmitCrossChannel("a", 1, txA, "b", 2, txB); err != nil {
		t.Fatal(err)
	}
	if !s.AwaitApplied("a", 2, 10*time.Second) || !s.AwaitApplied("b", 1, 10*time.Second) {
		t.Fatal("cross-channel txs not applied")
	}
	sa, _ := s.MemberState("a", 1)
	sb, _ := s.MemberState("b", 3)
	if sa.GetInt("escrow") != 60 || sb.GetInt("received") != 40 {
		t.Fatalf("escrow=%d received=%d", sa.GetInt("escrow"), sb.GetInt("received"))
	}
}

func TestCrossChannelPrepareFailureAbortsBoth(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("a", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("b", []types.EnterpriseID{2}); err != nil {
		t.Fatal(err)
	}
	// txA asserts funds that do not exist → prepare must fail and B must
	// see nothing.
	txA := &types.Transaction{ID: "xa", Ops: []types.Op{{Code: types.OpAssertGE, Key: "escrow", Delta: 40}}}
	txB := addTx("xb", "received", 40)
	err := s.SubmitCrossChannel("a", 1, txA, "b", 2, txB)
	if !errors.Is(err, ErrCrossFailed) {
		t.Fatalf("err = %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	sb, _ := s.MemberState("b", 2)
	if sb.GetInt("received") != 0 {
		t.Fatal("aborted cross-channel tx leaked into channel b")
	}
}

func TestErrors(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("a", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("a", nil); !errors.Is(err, ErrDupChannel) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Submit("ghost", 1, addTx("t", "k", 1)); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Submit("a", 9, addTx("t", "k", 1)); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Channel("ghost"); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
	ch, err := s.Channel("a")
	if err != nil || len(ch.Members()) != 1 {
		t.Fatalf("Channel: %v %v", ch, err)
	}
	if _, err := s.MemberChain("ghost", 1); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v", err)
	}
}

func TestStorageFootprintPerMembership(t *testing.T) {
	s := newService(t)
	if _, err := s.CreateChannel("busy", []types.EnterpriseID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateChannel("quiet", []types.EnterpriseID{3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Submit("busy", 1, addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.AwaitApplied("busy", 10, 10*time.Second) {
		t.Fatal("not applied")
	}
	// Members of the busy channel pay its storage; enterprise 3 does not.
	if s.StorageFootprint(1) <= s.StorageFootprint(3) {
		t.Fatalf("footprints: member %d vs outsider %d", s.StorageFootprint(1), s.StorageFootprint(3))
	}
	// Both members pay the same.
	if s.StorageFootprint(1) != s.StorageFootprint(2) {
		t.Fatal("members of the same channel store different amounts")
	}
}
