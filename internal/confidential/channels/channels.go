// Package channels implements multi-channel Hyperledger Fabric (§2.3.1):
// each channel is an isolated ledger + world state replicated on every
// member enterprise, while a single ordering service (a Raft cluster, as
// in production Fabric) orders the transactions of all channels. Members
// of one channel see everything on it; non-members see nothing — the
// channel is both the confidentiality boundary and, read through the
// §2.3.4 lens, a shard.
//
// Cross-channel transactions are processed in the centralized fashion the
// tutorial describes: a trusted coordinator (the service) runs a
// two-phase protocol across the involved channels.
package channels

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"permchain/internal/arch/xov"
	"permchain/internal/consensus"
	"permchain/internal/consensus/raft"
	"permchain/internal/crypto"
	"permchain/internal/ledger"
	"permchain/internal/network"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// memberReplica is one enterprise's copy of a channel: its own chain,
// state, and validation engine.
type memberReplica struct {
	chain  *ledger.Chain
	engine *xov.Engine
}

// Channel is one Fabric channel.
type Channel struct {
	ID      types.ChannelID
	members map[types.EnterpriseID]*memberReplica
	height  uint64
	applied int
}

// Members lists the channel's member enterprises.
func (c *Channel) Members() []types.EnterpriseID {
	out := make([]types.EnterpriseID, 0, len(c.members))
	for id := range c.members {
		out = append(out, id)
	}
	return out
}

// envelope is what the ordering service orders: a transaction tagged with
// its channel.
type envelope struct {
	Channel types.ChannelID
	Tx      *types.Transaction
}

// Service is the deployment: the shared ordering service plus the channel
// registry.
type Service struct {
	mu       sync.Mutex
	channels map[types.ChannelID]*Channel
	net      *network.Network
	orderers []*raft.Replica
	applied  int
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Config shapes a multi-channel deployment.
type Config struct {
	// Orderers is the shared ordering cluster size (default 3).
	Orderers int
	// Timeout is the orderers' election timeout.
	Timeout time.Duration
	// Net optionally supplies the transport.
	Net *network.Network
}

// NewService starts the ordering service with no channels.
func NewService(cfg Config) *Service {
	if cfg.Orderers <= 0 {
		cfg.Orderers = 3
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	if cfg.Net == nil {
		cfg.Net = network.New()
	}
	s := &Service{
		channels: map[types.ChannelID]*Channel{},
		net:      cfg.Net,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	keys := crypto.NewKeyring(cfg.Orderers)
	nodes := make([]types.NodeID, cfg.Orderers)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	for i := range nodes {
		r := raft.New(consensus.Config{
			Self: nodes[i], Nodes: nodes, Net: cfg.Net, Keys: keys,
			Timeout: cfg.Timeout,
		})
		r.Start()
		s.orderers = append(s.orderers, r)
	}
	go s.drain()
	return s
}

// Close stops the ordering service. Idempotent.
func (s *Service) Close() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		for _, r := range s.orderers {
			r.Stop()
		}
	})
	<-s.done
}

// Service errors.
var (
	ErrNoChannel   = errors.New("channels: unknown channel")
	ErrDupChannel  = errors.New("channels: channel already exists")
	ErrNotMember   = errors.New("channels: enterprise is not a channel member")
	ErrCrossFailed = errors.New("channels: cross-channel prepare failed")
)

// CreateChannel configures a new channel with the given members.
func (s *Service) CreateChannel(id types.ChannelID, members []types.EnterpriseID) (*Channel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.channels[id]; ok {
		return nil, ErrDupChannel
	}
	ch := &Channel{ID: id, members: map[types.EnterpriseID]*memberReplica{}}
	for _, m := range members {
		ch.members[m] = &memberReplica{
			chain:  ledger.NewChain(),
			engine: xov.New(statedb.New(), xov.Options{}, 0, 0),
		}
	}
	s.channels[id] = ch
	return ch, nil
}

// Channel returns a channel by id.
func (s *Service) Channel(id types.ChannelID) (*Channel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.channels[id]
	if !ok {
		return nil, ErrNoChannel
	}
	return ch, nil
}

// Submit endorses tx as the given member and hands it to the ordering
// service. Asynchronous: use AwaitApplied.
func (s *Service) Submit(chID types.ChannelID, member types.EnterpriseID, tx *types.Transaction) error {
	s.mu.Lock()
	ch, ok := s.channels[chID]
	if !ok {
		s.mu.Unlock()
		return ErrNoChannel
	}
	rep, ok := ch.members[member]
	if !ok {
		s.mu.Unlock()
		return ErrNotMember
	}
	// Endorsement runs on the member's endorser peers: the enterprise's
	// chaincode logic stays private to it (§2.3.1).
	err := rep.engine.Endorse(tx)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	env := envelope{Channel: chID, Tx: tx}
	s.orderers[0].Submit(env, tx.Hash())
	return nil
}

// drain applies ordered envelopes to their channels.
func (s *Service) drain() {
	defer close(s.done)
	decs := s.orderers[0].Decisions()
	for {
		select {
		case <-s.stopCh:
			return
		case d := <-decs:
			env, ok := d.Value.(envelope)
			if !ok {
				continue
			}
			s.apply(env)
		}
	}
}

func (s *Service) apply(env envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.channels[env.Channel]
	if !ok {
		return
	}
	ch.height++
	// Every member validates and commits independently; since states are
	// identical, so are the outcomes.
	for _, rep := range ch.members {
		blk := types.NewBlock(ch.height, rep.chain.Head().Hash(), 0, []*types.Transaction{env.Tx})
		rep.engine.CommitBlock(blk)
		if err := rep.chain.Append(blk); err != nil {
			// A divergent replica is a bug, not a runtime condition.
			panic(fmt.Sprintf("channels: member append failed: %v", err))
		}
	}
	ch.applied++
	s.applied++
}

// AwaitApplied blocks until the channel has applied k transactions.
func (s *Service) AwaitApplied(chID types.ChannelID, k int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		ch := s.channels[chID]
		n := 0
		if ch != nil {
			n = ch.applied
		}
		s.mu.Unlock()
		if n >= k {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// MemberState returns a member's world state on a channel.
func (s *Service) MemberState(chID types.ChannelID, member types.EnterpriseID) (*statedb.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.channels[chID]
	if !ok {
		return nil, ErrNoChannel
	}
	rep, ok := ch.members[member]
	if !ok {
		return nil, ErrNotMember
	}
	return rep.engine.Store(), nil
}

// MemberChain returns a member's copy of a channel's ledger.
func (s *Service) MemberChain(chID types.ChannelID, member types.EnterpriseID) (*ledger.Chain, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch, ok := s.channels[chID]
	if !ok {
		return nil, ErrNoChannel
	}
	rep, ok := ch.members[member]
	if !ok {
		return nil, ErrNotMember
	}
	return rep.chain, nil
}

// StorageFootprint returns the total ledger bytes enterprise id stores
// across all channels it belongs to — the E4 confidentiality metric.
func (s *Service) StorageFootprint(id types.EnterpriseID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, ch := range s.channels {
		if rep, ok := ch.members[id]; ok {
			total += rep.chain.Size()
		}
	}
	return total
}

// SubmitCrossChannel atomically executes txA on channel a and txB on
// channel b, coordinated centrally (the "trusted channel / atomic commit
// protocol" of §2.3.4): phase 1 endorses both against current state and
// fails if either cannot execute; phase 2 orders and applies both. The
// service lock serializes cross-channel transactions, standing in for the
// coordinator's locks.
func (s *Service) SubmitCrossChannel(a types.ChannelID, memberA types.EnterpriseID, txA *types.Transaction,
	b types.ChannelID, memberB types.EnterpriseID, txB *types.Transaction) error {
	s.mu.Lock()
	chA, okA := s.channels[a]
	chB, okB := s.channels[b]
	if !okA || !okB {
		s.mu.Unlock()
		return ErrNoChannel
	}
	repA, okA := chA.members[memberA]
	repB, okB := chB.members[memberB]
	if !okA || !okB {
		s.mu.Unlock()
		return ErrNotMember
	}
	// Phase 1: prepare (endorse both; any failure aborts the pair).
	if err := repA.engine.Endorse(txA); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrCrossFailed, err)
	}
	if err := repB.engine.Endorse(txB); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrCrossFailed, err)
	}
	s.mu.Unlock()
	// Phase 2: commit — order both halves.
	s.orderers[0].Submit(envelope{Channel: a, Tx: txA}, txA.Hash())
	s.orderers[0].Submit(envelope{Channel: b, Tx: txB}, txB.Hash())
	return nil
}
