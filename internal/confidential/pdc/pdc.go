// Package pdc implements Hyperledger Fabric's private data collections
// (§2.3.1), the cryptographic confidentiality technique the tutorial
// contrasts with view-based ones: a subset of a channel's enterprises
// keeps confidential data in a private database replicated only on their
// own peers, while a salted hash of the private write set goes on the
// channel ledger of *every* member — evidence of the transaction that
// supports validation without disclosure.
package pdc

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"

	"permchain/internal/ledger"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Collection is one private data collection: a policy (who is
// authorized) plus the authorized members' private databases.
type Collection struct {
	Name       string
	authorized map[types.EnterpriseID]bool
	private    map[types.EnterpriseID]*statedb.Store
	salts      map[string][]byte // txID → salt (held by authorized peers)
}

// Authorized reports whether member may read the collection.
func (c *Collection) Authorized(member types.EnterpriseID) bool {
	return c.authorized[member]
}

// Channel is a single Fabric channel with private data collections. The
// shared chain is replicated on every member; private stores only on
// authorized subsets.
type Channel struct {
	mu          sync.Mutex
	members     map[types.EnterpriseID]bool
	chain       *ledger.Chain
	public      map[types.EnterpriseID]*statedb.Store
	collections map[string]*Collection
	height      uint64
}

// PDC errors.
var (
	ErrNotMember     = errors.New("pdc: not a channel member")
	ErrNoCollection  = errors.New("pdc: unknown collection")
	ErrDupCollection = errors.New("pdc: collection already exists")
	ErrNotAuthorized = errors.New("pdc: enterprise not authorized for collection")
	ErrBadPolicy     = errors.New("pdc: collection members must belong to the channel")
)

// NewChannel creates a channel with the given members.
func NewChannel(members []types.EnterpriseID) *Channel {
	ch := &Channel{
		members:     map[types.EnterpriseID]bool{},
		chain:       ledger.NewChain(),
		public:      map[types.EnterpriseID]*statedb.Store{},
		collections: map[string]*Collection{},
	}
	for _, m := range members {
		ch.members[m] = true
		ch.public[m] = statedb.New()
	}
	return ch
}

// DefineCollection creates a private data collection over a subset of the
// channel's members.
func (ch *Channel) DefineCollection(name string, authorized []types.EnterpriseID) (*Collection, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if _, ok := ch.collections[name]; ok {
		return nil, ErrDupCollection
	}
	col := &Collection{
		Name:       name,
		authorized: map[types.EnterpriseID]bool{},
		private:    map[types.EnterpriseID]*statedb.Store{},
		salts:      map[string][]byte{},
	}
	for _, m := range authorized {
		if !ch.members[m] {
			return nil, fmt.Errorf("%w: %v", ErrBadPolicy, m)
		}
		col.authorized[m] = true
		col.private[m] = statedb.New()
	}
	ch.collections[name] = col
	return col, nil
}

// SubmitPublic executes a regular transaction on every member's public
// state and appends it to the shared ledger.
func (ch *Channel) SubmitPublic(tx *types.Transaction) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.height++
	for _, st := range ch.public {
		st.Execute(types.Version{Block: ch.height}, tx.Ops)
	}
	return ch.appendLocked(tx)
}

// hashKey is where a private transaction's evidence lands on the ledger.
func hashKey(collection, txID string) string {
	return fmt.Sprintf("pdc/%s/%s", collection, txID)
}

// PrivateDataHash computes the salted hash of a private write set:
// H(salt ‖ sorted key/value pairs). The salt blocks dictionary attacks on
// low-entropy values, as in Fabric.
func PrivateDataHash(salt []byte, writes types.WriteSet) types.Hash {
	keys := make([]string, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := [][]byte{salt}
	for _, k := range keys {
		parts = append(parts, []byte(k), writes[k])
	}
	return types.HashConcat(parts...)
}

// SubmitPrivate executes tx against the collection's private state on
// the authorized peers (submitting as `member`) and appends only the
// salted hash of the write set to the shared ledger. Unauthorized members
// receive the hash and nothing else.
func (ch *Channel) SubmitPrivate(collection string, member types.EnterpriseID, tx *types.Transaction) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	col, ok := ch.collections[collection]
	if !ok {
		return ErrNoCollection
	}
	if !ch.members[member] {
		return ErrNotMember
	}
	if !col.authorized[member] {
		return ErrNotAuthorized
	}
	// Simulate on the submitting member's private store.
	res := statedb.Simulate(col.private[member], tx.Ops)
	if res.Err != nil {
		return res.Err
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return err
	}
	h := PrivateDataHash(salt, res.Writes)

	ch.height++
	// Authorized peers store the actual private data (and the salt, for
	// later audits); everyone else gets only the hash via the ledger tx.
	for m := range col.authorized {
		col.private[m].Apply(types.Version{Block: ch.height}, res.Writes)
	}
	col.salts[tx.ID] = salt

	evidence := &types.Transaction{
		ID:      tx.ID,
		Kind:    tx.Kind,
		Private: true,
		Ops: []types.Op{{
			Code: types.OpPut, Key: hashKey(collection, tx.ID), Value: h[:],
		}},
	}
	for _, st := range ch.public {
		st.Execute(types.Version{Block: ch.height}, evidence.Ops)
	}
	return ch.appendLocked(evidence)
}

func (ch *Channel) appendLocked(tx *types.Transaction) error {
	blk := types.NewBlock(ch.chain.Height()+1, ch.chain.Head().Hash(), 0, []*types.Transaction{tx})
	return ch.chain.Append(blk)
}

// PrivateState returns member's replica of the collection's private
// database. Unauthorized members have none.
func (ch *Channel) PrivateState(collection string, member types.EnterpriseID) (*statedb.Store, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	col, ok := ch.collections[collection]
	if !ok {
		return nil, ErrNoCollection
	}
	st, ok := col.private[member]
	if !ok {
		return nil, ErrNotAuthorized
	}
	return st, nil
}

// PublicState returns member's public world state.
func (ch *Channel) PublicState(member types.EnterpriseID) (*statedb.Store, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	st, ok := ch.public[member]
	if !ok {
		return nil, ErrNotMember
	}
	return st, nil
}

// Chain returns the shared ledger (identical on every member).
func (ch *Channel) Chain() *ledger.Chain { return ch.chain }

// VerifyEvidence lets any member check that an authorized member's
// claimed private write set matches the on-ledger hash — the state
// validation the tutorial describes. The authorized member supplies the
// salt and writes; the verifier needs only the ledger.
func (ch *Channel) VerifyEvidence(collection, txID string, salt []byte, writes types.WriteSet) bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	// Any member's public state holds the hash; take the first.
	for _, st := range ch.public {
		v, _, ok := st.Get(hashKey(collection, txID))
		if !ok {
			return false
		}
		h := PrivateDataHash(salt, writes)
		return string(v) == string(h[:])
	}
	return false
}

// Salt exposes the stored salt for txID to authorized members.
func (ch *Channel) Salt(collection, txID string, member types.EnterpriseID) ([]byte, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	col, ok := ch.collections[collection]
	if !ok {
		return nil, ErrNoCollection
	}
	if !col.authorized[member] {
		return nil, ErrNotAuthorized
	}
	return col.salts[txID], nil
}
