package pdc

import (
	"errors"
	"strings"
	"testing"

	"permchain/internal/types"
)

func putTx(id, key, val string) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpPut, Key: key, Value: []byte(val)}}}
}

func TestPublicVisibleToAllMembers(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2, 3})
	if err := ch.SubmitPublic(putTx("t1", "k", "v")); err != nil {
		t.Fatal(err)
	}
	for _, m := range []types.EnterpriseID{1, 2, 3} {
		st, err := ch.PublicState(m)
		if err != nil {
			t.Fatal(err)
		}
		if v, _, ok := st.Get("k"); !ok || string(v) != "v" {
			t.Fatalf("member %v missing public data", m)
		}
	}
	if ch.Chain().TxCount() != 1 {
		t.Fatal("ledger entry missing")
	}
}

func TestPrivateDataOnlyOnAuthorizedPeers(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2, 3})
	if _, err := ch.DefineCollection("deal", []types.EnterpriseID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("deal", 1, putTx("p1", "price", "9.99")); err != nil {
		t.Fatal(err)
	}
	// Authorized members hold the plaintext.
	for _, m := range []types.EnterpriseID{1, 2} {
		st, err := ch.PrivateState("deal", m)
		if err != nil {
			t.Fatal(err)
		}
		if v, _, ok := st.Get("price"); !ok || string(v) != "9.99" {
			t.Fatalf("authorized member %v missing private data", m)
		}
	}
	// Enterprise 3 has no private store at all.
	if _, err := ch.PrivateState("deal", 3); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
	// But its ledger carries the hash evidence — and only the hash.
	st3, _ := ch.PublicState(3)
	if _, _, ok := st3.Get("pdc/deal/p1"); !ok {
		t.Fatal("hash evidence missing from unauthorized member")
	}
	// The plaintext must appear nowhere in member 3's world.
	for _, k := range st3.Keys() {
		v, _, _ := st3.Get(k)
		if strings.Contains(string(v), "9.99") {
			t.Fatal("private value leaked to unauthorized member")
		}
	}
	// Ledger transactions are hash-only too.
	blk, err := ch.Chain().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range blk.Txs {
		if !tx.Private {
			t.Fatal("evidence tx not marked private")
		}
		for _, op := range tx.Ops {
			if strings.Contains(string(op.Value), "9.99") {
				t.Fatal("plaintext in ledger")
			}
		}
	}
}

func TestEvidenceVerification(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2})
	if _, err := ch.DefineCollection("c", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("c", 1, putTx("p1", "secret", "42")); err != nil {
		t.Fatal(err)
	}
	salt, err := ch.Salt("c", "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	writes := types.WriteSet{"secret": []byte("42")}
	if !ch.VerifyEvidence("c", "p1", salt, writes) {
		t.Fatal("honest evidence rejected")
	}
	// A lying discloser is caught.
	if ch.VerifyEvidence("c", "p1", salt, types.WriteSet{"secret": []byte("43")}) {
		t.Fatal("false disclosure accepted")
	}
	if ch.VerifyEvidence("c", "p1", []byte("wrong salt"), writes) {
		t.Fatal("wrong salt accepted")
	}
	if ch.VerifyEvidence("c", "ghost", salt, writes) {
		t.Fatal("missing tx verified")
	}
	// Salt is only available to authorized members.
	if _, err := ch.Salt("c", "p1", 2); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
}

func TestSaltedHashesDiffer(t *testing.T) {
	// Same write set twice → different hashes on the ledger, or a
	// dictionary attack on low-entropy values would succeed.
	ch := NewChannel([]types.EnterpriseID{1})
	if _, err := ch.DefineCollection("c", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("c", 1, putTx("p1", "vote", "yes")); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("c", 1, putTx("p2", "vote", "yes")); err != nil {
		t.Fatal(err)
	}
	st, _ := ch.PublicState(1)
	h1, _, _ := st.Get("pdc/c/p1")
	h2, _, _ := st.Get("pdc/c/p2")
	if string(h1) == string(h2) {
		t.Fatal("identical hashes for identical plaintexts: salting broken")
	}
}

func TestMultipleCollectionsIndependent(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2, 3})
	if _, err := ch.DefineCollection("ab", []types.EnterpriseID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.DefineCollection("bc", []types.EnterpriseID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("ab", 1, putTx("x", "k", "ab-data")); err != nil {
		t.Fatal(err)
	}
	if err := ch.SubmitPrivate("bc", 3, putTx("y", "k", "bc-data")); err != nil {
		t.Fatal(err)
	}
	// Enterprise 2 is in both and sees both; 1 and 3 see only theirs.
	st2ab, _ := ch.PrivateState("ab", 2)
	st2bc, _ := ch.PrivateState("bc", 2)
	if v, _, _ := st2ab.Get("k"); string(v) != "ab-data" {
		t.Fatal("e2 missing ab data")
	}
	if v, _, _ := st2bc.Get("k"); string(v) != "bc-data" {
		t.Fatal("e2 missing bc data")
	}
	if _, err := ch.PrivateState("bc", 1); !errors.Is(err, ErrNotAuthorized) {
		t.Fatal("e1 authorized for bc")
	}
}

func TestPolicyAndErrorPaths(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2})
	if _, err := ch.DefineCollection("c", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.DefineCollection("c", nil); !errors.Is(err, ErrDupCollection) {
		t.Fatalf("err = %v", err)
	}
	// Non-channel member in the policy.
	if _, err := ch.DefineCollection("bad", []types.EnterpriseID{9}); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.SubmitPrivate("ghost", 1, putTx("t", "k", "v")); !errors.Is(err, ErrNoCollection) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.SubmitPrivate("c", 2, putTx("t", "k", "v")); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.SubmitPrivate("c", 9, putTx("t", "k", "v")); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ch.PublicState(9); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ch.Salt("ghost", "t", 1); !errors.Is(err, ErrNoCollection) {
		t.Fatalf("err = %v", err)
	}
	col, _ := ch.DefineCollection("c2", []types.EnterpriseID{1})
	if !col.Authorized(1) || col.Authorized(2) {
		t.Fatal("Authorized wrong")
	}
}

func TestLedgerIntegrityWithMixedTraffic(t *testing.T) {
	ch := NewChannel([]types.EnterpriseID{1, 2})
	if _, err := ch.DefineCollection("c", []types.EnterpriseID{1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ch.SubmitPublic(putTx("pub", "k", "v")); err != nil {
			t.Fatal(err)
		}
		if err := ch.SubmitPrivate("c", 1, putTx("priv", "s", "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
	if ch.Chain().TxCount() != 10 {
		t.Fatalf("tx count %d", ch.Chain().TxCount())
	}
}
