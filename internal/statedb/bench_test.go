package statedb

import (
	"fmt"
	"sync/atomic"
	"testing"

	"permchain/internal/types"
)

// The microbenchmarks exist so shard-count tuning is measurable:
//
//	go test -bench . -benchtime 1s ./internal/statedb
//
// Each hot-path operation runs serially and under RunParallel, across a
// sweep of shard counts; shards=1 reproduces the seed's single global
// lock, so the sweep is the before/after picture of the lock striping.

var shardSweep = []int{1, 4, 64}

// populate fills s with n keys under a deterministic workload.
func populate(s *Store, n int) {
	for i := 0; i < n; i++ {
		s.Apply(types.Version{Block: uint64(i/8 + 1), Tx: i % 8}, types.WriteSet{
			benchKey(i): EncodeInt(int64(i)),
		})
	}
}

func benchKey(i int) string { return fmt.Sprintf("acct/%08d", i) }

func BenchmarkGet(b *testing.B) {
	for _, shards := range shardSweep {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			populate(s, 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Get(benchKey(i % 10000))
			}
		})
		b.Run(fmt.Sprintf("shards=%d/parallel", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			populate(s, 10000)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s.Get(benchKey(i % 10000))
					i++
				}
			})
		})
	}
}

func BenchmarkApply(b *testing.B) {
	for _, shards := range shardSweep {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply(types.Version{Block: uint64(i) + 1}, types.WriteSet{
					benchKey(i % 4096): EncodeInt(int64(i)),
				})
			}
		})
		b.Run(fmt.Sprintf("shards=%d/parallel", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					s.Apply(types.Version{Block: uint64(i)}, types.WriteSet{
						benchKey(int(i) % 4096): EncodeInt(i),
					})
				}
			})
		})
	}
}

func BenchmarkValidate(b *testing.B) {
	for _, shards := range shardSweep {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			populate(s, 10000)
			_, ver, _ := s.Get(benchKey(7))
			reads := types.ReadSet{benchKey(7): ver}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !s.Validate(reads) {
					b.Fatal("validation failed")
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/parallel", shards), func(b *testing.B) {
			s := New(WithShards(shards))
			populate(s, 10000)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := benchKey(i % 10000)
					_, ver, _ := s.Get(k)
					if !s.Validate(types.ReadSet{k: ver}) {
						b.Fatal("validation failed")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStateHash measures the incremental bucket-tree hash with a
// small dirty set per iteration — the steady-state shape of the snapshot
// path, where only the keys written since the last checkpoint are dirty.
func BenchmarkStateHash(b *testing.B) {
	for _, keys := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d/dirty=64", keys), func(b *testing.B) {
			s := New()
			populate(s, keys)
			s.StateHash() // warm the caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for d := 0; d < 64; d++ {
					s.Apply(types.Version{Block: uint64(i) + 2}, types.WriteSet{
						benchKey((i*64 + d) % keys): EncodeInt(int64(i)),
					})
				}
				b.StartTimer()
				s.StateHash()
			}
		})
	}
}

// BenchmarkStateHashFullRescan is the seed baseline: sort and digest the
// entire state on every call. The ratio to BenchmarkStateHash at the same
// key count is the E13(a) speedup.
func BenchmarkStateHashFullRescan(b *testing.B) {
	for _, keys := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			s := New()
			populate(s, keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.FullRescanHash()
			}
		})
	}
}

// BenchmarkSnapshotCapture measures the freeze half of the copy-on-write
// snapshot — the only part that stays on the executor's path.
func BenchmarkSnapshotCapture(b *testing.B) {
	s := New()
	populate(s, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Capture()
	}
}

func BenchmarkSnapshotMaterialize(b *testing.B) {
	s := New()
	populate(s, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Capture().Materialize()
	}
}
