package statedb

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"permchain/internal/types"
)

// This file is the allocation-free twin of the map-based executor in
// statedb.go. SimulateList implements exactly the same semantics as
// Simulate — read-your-writes, first-read-wins version recording,
// failed payloads retain reads but no writes — but records the read and
// write sets into reusable slices owned by an ExecScratch instead of
// allocating two maps per transaction. The map path stays as the public
// facade (Transaction carries ReadSet/WriteSet); the list path is what
// the OX and OXII engines run per committed transaction, where the two
// maps per transaction dominated the executor's allocation profile.

// ExecScratch holds the reusable buffers of one executor lane. It is not
// safe for concurrent use: OX keeps one per engine (execution is
// sequential by design), OXII keeps one per worker. The lists returned
// by SimulateList/ExecuteList alias the scratch and are valid only until
// its next use.
type ExecScratch struct {
	reads  types.ReadList
	writes types.WriteList
}

// Reset clears the scratch, dropping references to previously recorded
// keys and values so pooled scratches don't retain committed data.
func (sc *ExecScratch) Reset() {
	clear(sc.reads)
	sc.reads = sc.reads[:0]
	clear(sc.writes)
	sc.writes = sc.writes[:0]
}

// scratchPool recycles ExecScratch buffers for callers without a natural
// place to keep one (benchmarks, ad-hoc execution).
var scratchPool = sync.Pool{New: func() any { return new(ExecScratch) }}

// GetScratch takes a scratch from the pool.
func GetScratch() *ExecScratch { return scratchPool.Get().(*ExecScratch) }

// PutScratch resets the scratch and returns it to the pool. The lists
// last returned from it become invalid.
func PutScratch(sc *ExecScratch) {
	sc.Reset()
	scratchPool.Put(sc)
}

// findWrite returns the index of key in the (unsorted, unique-keyed)
// write buffer, or -1. Payloads touch a handful of keys, so a linear
// scan beats any structure that would need per-transaction allocation.
func (sc *ExecScratch) findWrite(key string) int {
	for i := range sc.writes {
		if sc.writes[i].Key == key {
			return i
		}
	}
	return -1
}

func (sc *ExecScratch) hasRead(key string) bool {
	for i := range sc.reads {
		if sc.reads[i].Key == key {
			return true
		}
	}
	return false
}

// atoi64 parses a decimal integer from b with the exact semantics the
// map path gets from DecodeInt + "errors read as 0": empty input is 0,
// an optional single +/- sign, digits only, overflow fails. It exists
// because strconv.ParseInt(string(b), ...) copies b into a string the
// compiler cannot prove non-escaping, which was one allocation per
// read-modify-write op.
func atoi64(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, true
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var un uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if un > (math.MaxUint64-uint64(c-'0'))/10 {
			return 0, false
		}
		un = un*10 + uint64(c-'0')
	}
	if neg {
		if un > uint64(math.MaxInt64)+1 {
			return 0, false
		}
		return -int64(un), true
	}
	if un > uint64(math.MaxInt64) {
		return 0, false
	}
	return int64(un), true
}

// listSim is the per-call state of SimulateList. It is a plain struct
// (not closures) so the whole simulation runs without heap allocation
// beyond the values it writes.
type listSim struct {
	r  Reader
	sc *ExecScratch
}

func (s *listSim) read(key string) []byte {
	if i := s.sc.findWrite(key); i >= 0 {
		return s.sc.writes[i].Value
	}
	v, ver, ok := s.r.Get(key)
	if !s.sc.hasRead(key) {
		if !ok {
			ver = types.Version{}
		}
		s.sc.reads = append(s.sc.reads, types.ReadItem{Key: key, Ver: ver})
	}
	if !ok {
		return nil
	}
	return v
}

func (s *listSim) readInt(key string) int64 {
	n, ok := atoi64(s.read(key))
	if !ok {
		return 0
	}
	return n
}

func (s *listSim) write(key string, val []byte) {
	if i := s.sc.findWrite(key); i >= 0 {
		s.sc.writes[i].Value = val
		return
	}
	s.sc.writes = append(s.sc.writes, types.WriteItem{Key: key, Value: val})
}

func cmpReadItem(a, b types.ReadItem) int   { return strings.Compare(a.Key, b.Key) }
func cmpWriteItem(a, b types.WriteItem) int { return strings.Compare(a.Key, b.Key) }

// SimulateList runs ops against the reader without committing, exactly
// like Simulate, recording read and write sets into sc. The returned
// lists are sorted by key, alias sc, and are valid until sc's next use.
// On payload failure the reads recorded so far are returned and the
// write list is empty, mirroring the map path.
func SimulateList(r Reader, ops []types.Op, sc *ExecScratch) (types.ReadList, types.WriteList, error) {
	sc.Reset()
	s := listSim{r: r, sc: sc}
	var err error
	for _, op := range ops {
		switch op.Code {
		case types.OpGet:
			s.read(op.Key)
		case types.OpPut:
			s.write(op.Key, op.Value)
		case types.OpAdd:
			s.write(op.Key, EncodeInt(s.readInt(op.Key)+op.Delta))
		case types.OpTransfer:
			from := s.readInt(op.Key)
			if from < op.Delta {
				err = fmt.Errorf("%w: %s has %d, need %d", ErrInsufficient, op.Key, from, op.Delta)
			} else {
				s.write(op.Key, EncodeInt(from-op.Delta))
				s.write(op.Key2, EncodeInt(s.readInt(op.Key2)+op.Delta))
			}
		case types.OpAssertGE:
			if v := s.readInt(op.Key); v < op.Delta {
				err = fmt.Errorf("%w: %s = %d < %d", ErrAssertFailed, op.Key, v, op.Delta)
			}
		default:
			err = fmt.Errorf("statedb: unknown opcode %v", op.Code)
		}
		if err != nil {
			clear(sc.writes)
			sc.writes = sc.writes[:0]
			break
		}
	}
	slices.SortFunc(sc.reads, cmpReadItem)
	slices.SortFunc(sc.writes, cmpWriteItem)
	return sc.reads, sc.writes, err
}

// ApplyList commits a write list at the given version — ApplyList is to
// Apply what WriteList is to WriteSet, with identical per-key atomicity.
func (s *Store) ApplyList(ver types.Version, writes types.WriteList) {
	for i := range writes {
		b := bucketOf(writes[i].Key)
		sh := s.shardFor(b)
		s.lock(sh)
		sh.put(writes[i].Key, writes[i].Value, ver, b-sh.base, s.histLimit)
		sh.mu.Unlock()
	}
}

// ValidateList performs the MVCC check over a read list: every key must
// still be at the version observed. Semantically identical to Validate.
func (s *Store) ValidateList(reads types.ReadList) bool {
	for i := range reads {
		k, ver := reads[i].Key, reads[i].Ver
		b := bucketOf(k)
		sh := s.shardFor(b)
		s.rlock(sh)
		cur, ok := sh.buckets[b-sh.base][k]
		sh.mu.RUnlock()
		if !ok {
			if ver != (types.Version{}) {
				return false
			}
			continue
		}
		if cur.ver != ver {
			return false
		}
	}
	return true
}

// ExecuteList simulates ops via sc and, on success, commits the writes
// at the given version — the list twin of Execute. The returned lists
// alias sc.
func (s *Store) ExecuteList(ver types.Version, ops []types.Op, sc *ExecScratch) (types.ReadList, types.WriteList, error) {
	reads, writes, err := SimulateList(s, ops, sc)
	if err == nil {
		s.ApplyList(ver, writes)
	}
	return reads, writes, err
}
