// Package statedb implements the blockchain world state (§2.2): a
// versioned key-value store with the multi-version concurrency checks the
// execute-order-validate architecture depends on (§2.3.3), plus the
// deterministic executor for transaction payloads that every architecture
// shares.
//
// The store is lock-striped: keys hash to one of a fixed set of hash
// buckets, contiguous bucket ranges are owned by shards, and each shard
// has its own lock. Readers and writers touching different shards never
// contend, which is what lets the parallel executors of OXII and the
// parallel validators of FastFabric scale with workers instead of
// serializing on a store-wide mutex (the serialization §2.3.3's
// performance discussion is about).
//
// State hashing is incremental: each bucket keeps a cached digest that a
// write invalidates, and StateHash recombines only dirty buckets through
// a fixed two-level bucket tree (buckets → groups → root). The tree shape
// is a constant of the package — independent of the shard count — so
// replicas configured with different shard counts still agree on every
// state hash.
//
// Versioning convention: the version of a key is the (block height,
// transaction index) that last wrote it. Blocks carrying transactions
// start at height 1; the zero Version means "never written", which is why
// a key that has never existed reads as version 0.0.
package statedb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"permchain/internal/types"
)

// The bucket tree is a fixed-shape two-level hash tree: hashGroups groups
// of bucketsPerGroup buckets each. Every key maps to one bucket by key
// hash; the root digests the group hashes, each group digests its bucket
// hashes. The shape never depends on the shard count, so the state hash
// is a pure function of the state contents.
const (
	hashGroups      = 64
	bucketsPerGroup = 64
	numBuckets      = hashGroups * bucketsPerGroup

	// DefaultShards is the default lock-stripe count. Shard counts are
	// powers of two between 1 and hashGroups so each shard owns whole
	// hash groups.
	DefaultShards = 64
)

// bucketOf maps a key to its global hash bucket (FNV-1a 64).
func bucketOf(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h & (numBuckets - 1))
}

// Reader is a read view of committed state.
type Reader interface {
	// Get returns the value and version at key, and whether it exists.
	Get(key string) ([]byte, types.Version, bool)
}

// HistEntry is one historical value of a key, for provenance queries.
type HistEntry struct {
	Version types.Version
	Value   []byte
}

type entry struct {
	val []byte
	ver types.Version
}

// shard is one lock stripe: a contiguous range of hash buckets with
// their own lock, per-bucket maps, per-key history, and hash caches.
type shard struct {
	mu   sync.RWMutex
	base int // first global bucket owned by this shard

	// buckets[i] holds the entries of global bucket base+i; nil until
	// first write. shared[i] marks a map referenced by an outstanding
	// Capture: the next write clones it instead of mutating in place.
	buckets []map[string]entry
	shared  []bool
	live    int // live keys across all buckets

	hist       map[string][]HistEntry
	histShared bool

	// Hash caches for the bucket tree. A write marks its bucket (and the
	// bucket's group) dirty; StateHash recomputes only dirty entries.
	bucketDirty []bool
	bucketHash  []types.Hash
	groupDirty  []bool
	groupHash   []types.Hash
}

// Store is the in-memory world state. It is safe for concurrent use;
// operations on keys in different shards proceed in parallel. Writes are
// atomic per key: a multi-key write set becomes visible key by key, and
// the MVCC validation step is what rejects transactions that observed a
// torn combination (exactly Fabric's endorsement model).
type Store struct {
	shards     []*shard
	shardShift uint // globalBucket >> shardShift == shard index
	histLimit  int
	lockWaits  atomic.Int64
}

// Option configures a Store.
type Option func(*storeConfig)

type storeConfig struct {
	histLimit int
	shards    int
}

// WithHistory keeps up to limit historical versions per key.
func WithHistory(limit int) Option {
	return func(c *storeConfig) { c.histLimit = limit }
}

// WithShards sets the lock-stripe count. Values are clamped to powers of
// two in [1, 64]; the state hash does not depend on the choice. Shard
// count 1 reproduces the single-global-lock behavior (useful as a
// contention baseline in benchmarks).
func WithShards(n int) Option {
	return func(c *storeConfig) { c.shards = n }
}

// New creates an empty store.
func New(opts ...Option) *Store {
	cfg := storeConfig{shards: DefaultShards}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.shards
	if n < 1 {
		n = 1
	}
	if n > hashGroups {
		n = hashGroups
	}
	// Round down to a power of two so shards divide the bucket space.
	for n&(n-1) != 0 {
		n &= n - 1
	}
	perShard := numBuckets / n
	shift := uint(0)
	for 1<<shift < perShard {
		shift++
	}
	s := &Store{
		shards:     make([]*shard, n),
		shardShift: shift,
		histLimit:  cfg.histLimit,
	}
	for i := range s.shards {
		sh := &shard{
			base:        i * perShard,
			buckets:     make([]map[string]entry, perShard),
			shared:      make([]bool, perShard),
			hist:        make(map[string][]HistEntry),
			bucketDirty: make([]bool, perShard),
			bucketHash:  make([]types.Hash, perShard),
			groupDirty:  make([]bool, perShard/bucketsPerGroup),
			groupHash:   make([]types.Hash, perShard/bucketsPerGroup),
		}
		for b := range sh.bucketDirty {
			sh.bucketDirty[b] = true
		}
		for g := range sh.groupDirty {
			sh.groupDirty[g] = true
		}
		s.shards[i] = sh
	}
	return s
}

// ShardCount returns the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// LockWaits returns how many lock acquisitions had to wait because
// another goroutine held the shard. It is a contention witness for
// benchmarks, not a correctness signal.
func (s *Store) LockWaits() int64 { return s.lockWaits.Load() }

func (s *Store) shardFor(bucket int) *shard {
	return s.shards[bucket>>s.shardShift]
}

func (s *Store) lock(sh *shard) {
	if !sh.mu.TryLock() {
		s.lockWaits.Add(1)
		sh.mu.Lock()
	}
}

func (s *Store) rlock(sh *shard) {
	if !sh.mu.TryRLock() {
		s.lockWaits.Add(1)
		sh.mu.RLock()
	}
}

// Get implements Reader.
func (s *Store) Get(key string) ([]byte, types.Version, bool) {
	b := bucketOf(key)
	sh := s.shardFor(b)
	s.rlock(sh)
	e, ok := sh.buckets[b-sh.base][key]
	sh.mu.RUnlock()
	if !ok {
		return nil, types.Version{}, false
	}
	return e.val, e.ver, true
}

// GetInt reads key as an integer; a missing key reads as 0.
func (s *Store) GetInt(key string) int64 {
	v, _, ok := s.Get(key)
	if !ok {
		return 0
	}
	n, err := DecodeInt(v)
	if err != nil {
		return 0
	}
	return n
}

// Apply commits a write set at the given version. Each key is written
// atomically under its shard's lock; keys in different shards commit
// independently (see the Store doc for why per-key atomicity suffices).
func (s *Store) Apply(ver types.Version, writes types.WriteSet) {
	for k, v := range writes {
		b := bucketOf(k)
		sh := s.shardFor(b)
		s.lock(sh)
		sh.put(k, v, ver, b-sh.base, s.histLimit)
		sh.mu.Unlock()
	}
}

// put writes one key into the shard. Caller holds the shard lock.
func (sh *shard) put(k string, v []byte, ver types.Version, lb, histLimit int) {
	m := sh.buckets[lb]
	switch {
	case m == nil:
		m = make(map[string]entry)
		sh.buckets[lb] = m
	case sh.shared[lb]:
		// Copy-on-write: an outstanding Capture references this map, so
		// clone before the first mutation and let the capture keep the
		// frozen original.
		nm := make(map[string]entry, len(m)+1)
		for kk, vv := range m {
			nm[kk] = vv
		}
		sh.buckets[lb] = nm
		sh.shared[lb] = false
		m = nm
	}
	if histLimit > 0 {
		if sh.histShared {
			nh := make(map[string][]HistEntry, len(sh.hist))
			for kk, hh := range sh.hist {
				nh[kk] = hh
			}
			sh.hist = nh
			sh.histShared = false
		}
		h := append(sh.hist[k], HistEntry{Version: ver, Value: v})
		if len(h) > histLimit {
			h = h[len(h)-histLimit:]
		}
		sh.hist[k] = h
	}
	if _, ok := m[k]; !ok {
		sh.live++
	}
	m[k] = entry{val: v, ver: ver}
	sh.bucketDirty[lb] = true
	sh.groupDirty[lb/bucketsPerGroup] = true
}

// Validate performs the Fabric-style MVCC check: every key in the read
// set must still be at the version the endorsement observed.
func (s *Store) Validate(reads types.ReadSet) bool {
	for k, ver := range reads {
		b := bucketOf(k)
		sh := s.shardFor(b)
		s.rlock(sh)
		cur, ok := sh.buckets[b-sh.base][k]
		sh.mu.RUnlock()
		if !ok {
			if ver != (types.Version{}) {
				return false
			}
			continue
		}
		if cur.ver != ver {
			return false
		}
	}
	return true
}

// History returns the retained historical values of key, oldest first.
func (s *Store) History(key string) []HistEntry {
	sh := s.shardFor(bucketOf(key))
	s.rlock(sh)
	defer sh.mu.RUnlock()
	h := sh.hist[key]
	out := make([]HistEntry, len(h))
	copy(out, h)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		s.rlock(sh)
		n += sh.live
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns all live keys, sorted.
func (s *Store) Keys() []string {
	var out []string
	for _, sh := range s.shards {
		s.rlock(sh)
		for _, m := range sh.buckets {
			for k := range m {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key     string
	Value   []byte
	Version types.Version
}

// Scan returns all live entries whose key starts with prefix, sorted by
// key — the range-query primitive ledger databases expose (e.g. listing
// an enterprise's namespace or a shard's keyspace).
func (s *Store) Scan(prefix string) []Entry {
	var out []Entry
	for _, sh := range s.shards {
		s.rlock(sh)
		for _, m := range sh.buckets {
			for k, e := range m {
				if strings.HasPrefix(k, prefix) {
					out = append(out, Entry{Key: k, Value: e.val, Version: e.ver})
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// hashBucket digests one bucket: its keys sorted, each key/value pair
// length-framed by HashConcat. Empty buckets digest to the zero hash
// without hashing.
func hashBucket(m map[string]entry) types.Hash {
	if len(m) == 0 {
		return types.Hash{}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		parts = append(parts, []byte(k), m[k].val)
	}
	return types.HashConcat(parts...)
}

// refreshHashes recomputes the dirty bucket and group digests of the
// shard. Caller holds the shard's write lock.
func (sh *shard) refreshHashes() {
	for lg := range sh.groupDirty {
		if !sh.groupDirty[lg] {
			continue
		}
		lo, hi := lg*bucketsPerGroup, (lg+1)*bucketsPerGroup
		for lb := lo; lb < hi; lb++ {
			if sh.bucketDirty[lb] {
				sh.bucketHash[lb] = hashBucket(sh.buckets[lb])
				sh.bucketDirty[lb] = false
			}
		}
		parts := make([][]byte, bucketsPerGroup)
		for i := 0; i < bucketsPerGroup; i++ {
			parts[i] = sh.bucketHash[lo+i][:]
		}
		sh.groupHash[lg] = types.HashConcat(parts...)
		sh.groupDirty[lg] = false
	}
}

// StateHash digests the full state deterministically; two replicas with
// identical state produce identical hashes, regardless of shard count.
// The digest is the root of the fixed bucket tree: only buckets written
// since the last call are re-hashed, so the cost is O(dirty buckets),
// not O(total state). Used on the snapshot path, by replica-agreement
// checks, and by the scalability experiments.
func (s *Store) StateHash() types.Hash {
	parts := make([][]byte, 0, hashGroups)
	groups := make([]types.Hash, 0, hashGroups)
	for _, sh := range s.shards {
		s.lock(sh)
		sh.refreshHashes()
		groups = append(groups, sh.groupHash...)
		sh.mu.Unlock()
	}
	for i := range groups {
		parts = append(parts, groups[i][:])
	}
	return types.HashConcat(parts...)
}

// FullRescanHash is the pre-bucket-tree reference implementation of state
// hashing: collect every key, sort, digest everything. It produces a
// different (legacy) digest than StateHash and exists as the O(n log n)
// baseline the E13 experiment and the statedb benchmarks compare the
// incremental bucket tree against.
func (s *Store) FullRescanHash() types.Hash {
	type kv struct {
		k string
		v []byte
	}
	var all []kv
	for _, sh := range s.shards {
		s.rlock(sh)
		for _, m := range sh.buckets {
			for k, e := range m {
				all = append(all, kv{k, e.val})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	parts := make([][]byte, 0, 2*len(all))
	for _, e := range all {
		parts = append(parts, []byte(e.k), e.v)
	}
	return types.HashConcat(parts...)
}

// Snapshot is a full, self-contained copy of a Store's contents: every
// live entry, the retained per-key history, and the history limit it was
// taken under. It is the unit the durable storage engine checkpoints to
// disk (internal/store) and the input to Restore.
type Snapshot struct {
	Entries   []Entry
	Hist      map[string][]HistEntry
	HistLimit int
}

// Capture is a lightweight point-in-time freeze of a Store, the cheap
// half of a copy-on-write snapshot. Taking one briefly locks each shard
// to mark its buckets shared; the next write to a shared bucket clones it
// (copy-on-first-write) so the capture stays frozen while the executor
// keeps mutating live state. Materialize turns the capture into a full
// sorted Snapshot without holding any store locks — the expensive O(n)
// copy runs off the commit path.
type Capture struct {
	buckets   []map[string]entry       // global bucket order; nil for empty buckets
	hists     []map[string][]HistEntry // one per shard; nil when empty
	histLimit int
}

// Capture freezes the store's current contents. See Capture's type doc.
func (s *Store) Capture() *Capture {
	c := &Capture{
		buckets:   make([]map[string]entry, 0, numBuckets),
		hists:     make([]map[string][]HistEntry, 0, len(s.shards)),
		histLimit: s.histLimit,
	}
	for _, sh := range s.shards {
		s.lock(sh)
		for lb, m := range sh.buckets {
			if len(m) == 0 {
				// Nothing to freeze; the live (possibly nil) map may grow
				// in place without affecting the capture.
				c.buckets = append(c.buckets, nil)
				continue
			}
			sh.shared[lb] = true
			c.buckets = append(c.buckets, m)
		}
		if len(sh.hist) > 0 {
			sh.histShared = true
			c.hists = append(c.hists, sh.hist)
		} else {
			c.hists = append(c.hists, nil)
		}
		sh.mu.Unlock()
	}
	return c
}

// Materialize builds the full sorted Snapshot from the capture. It takes
// no store locks and may run concurrently with writes to the live store;
// the result reflects exactly the state at Capture time.
func (c *Capture) Materialize() *Snapshot {
	snap := &Snapshot{HistLimit: c.histLimit}
	total := 0
	for _, m := range c.buckets {
		total += len(m)
	}
	snap.Entries = make([]Entry, 0, total)
	for _, m := range c.buckets {
		for k, e := range m {
			snap.Entries = append(snap.Entries, Entry{Key: k, Value: e.val, Version: e.ver})
		}
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Key < snap.Entries[j].Key })
	nhist := 0
	for _, h := range c.hists {
		nhist += len(h)
	}
	if nhist > 0 {
		snap.Hist = make(map[string][]HistEntry, nhist)
		for _, h := range c.hists {
			for k, hh := range h {
				cp := make([]HistEntry, len(hh))
				copy(cp, hh)
				snap.Hist[k] = cp
			}
		}
	}
	return snap
}

// Snapshot copies the full state. Entries come back sorted by key so the
// snapshot (and anything serialized from it) is deterministic. It is
// Capture followed by Materialize; callers that want the copy off their
// own critical path should use the two halves directly.
func (s *Store) Snapshot() *Snapshot {
	return s.Capture().Materialize()
}

// Restore replaces the store's contents with the snapshot's. The store
// keeps its own configured history limit: restored history is trimmed to
// it (keeping the newest entries), and a store configured without history
// drops the snapshot's history entirely. Replaying the block suffix after
// Restore therefore reproduces exactly the state — and, when the limits
// match, the history — of a store that never went through a snapshot.
// Outstanding Captures keep their frozen pre-Restore view.
func (s *Store) Restore(snap *Snapshot) {
	// Route everything into fresh maps first, without holding locks.
	bmaps := make([]map[string]entry, numBuckets)
	for _, e := range snap.Entries {
		b := bucketOf(e.Key)
		m := bmaps[b]
		if m == nil {
			m = make(map[string]entry)
			bmaps[b] = m
		}
		m[e.Key] = entry{val: e.Value, ver: e.Version}
	}
	hmaps := make([]map[string][]HistEntry, len(s.shards))
	for i := range hmaps {
		hmaps[i] = make(map[string][]HistEntry)
	}
	if s.histLimit > 0 {
		for k, h := range snap.Hist {
			if len(h) == 0 {
				continue
			}
			if len(h) > s.histLimit {
				h = h[len(h)-s.histLimit:]
			}
			cp := make([]HistEntry, len(h))
			copy(cp, h)
			si := bucketOf(k) >> s.shardShift
			hmaps[si][k] = cp
		}
	}
	for si, sh := range s.shards {
		s.lock(sh)
		sh.live = 0
		for lb := range sh.buckets {
			m := bmaps[sh.base+lb]
			sh.buckets[lb] = m
			sh.shared[lb] = false
			sh.bucketDirty[lb] = true
			sh.live += len(m)
		}
		for lg := range sh.groupDirty {
			sh.groupDirty[lg] = true
		}
		sh.hist = hmaps[si]
		sh.histShared = false
		sh.mu.Unlock()
	}
}

// EncodeInt renders an integer as its decimal byte string, the canonical
// integer encoding of the store.
func EncodeInt(n int64) []byte { return strconv.AppendInt(nil, n, 10) }

// DecodeInt parses a value written by EncodeInt.
func DecodeInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// Execution errors. A transaction that fails retains no effects.
var (
	// ErrInsufficient is returned when a transfer would drive a balance
	// negative.
	ErrInsufficient = errors.New("statedb: insufficient balance")
	// ErrAssertFailed is returned when an OpAssertGE predicate fails.
	ErrAssertFailed = errors.New("statedb: assertion failed")
)

// SimResult is the outcome of simulating (or executing) a payload.
type SimResult struct {
	Reads  types.ReadSet
	Writes types.WriteSet
	Err    error // nil when the payload succeeded
}

// Simulate runs ops against the reader without committing, recording the
// read set (with observed versions) and the write set. It provides
// read-your-writes semantics within the transaction. This is both the
// XOV endorsement step and, applied to live state, the OX/OXII executor.
func Simulate(r Reader, ops []types.Op) SimResult {
	res := SimResult{Reads: types.ReadSet{}, Writes: types.WriteSet{}}
	buf := map[string][]byte{}

	read := func(key string) []byte {
		if v, ok := buf[key]; ok {
			return v
		}
		v, ver, ok := r.Get(key)
		if _, seen := res.Reads[key]; !seen {
			if ok {
				res.Reads[key] = ver
			} else {
				res.Reads[key] = types.Version{}
			}
		}
		if !ok {
			return nil
		}
		return v
	}
	readInt := func(key string) int64 {
		b := read(key)
		n, err := DecodeInt(b)
		if err != nil {
			return 0
		}
		return n
	}
	write := func(key string, val []byte) {
		buf[key] = val
		res.Writes[key] = val
	}

	for _, op := range ops {
		switch op.Code {
		case types.OpGet:
			read(op.Key)
		case types.OpPut:
			write(op.Key, op.Value)
		case types.OpAdd:
			write(op.Key, EncodeInt(readInt(op.Key)+op.Delta))
		case types.OpTransfer:
			from := readInt(op.Key)
			if from < op.Delta {
				res.Err = fmt.Errorf("%w: %s has %d, need %d", ErrInsufficient, op.Key, from, op.Delta)
				res.Writes = types.WriteSet{}
				return res
			}
			write(op.Key, EncodeInt(from-op.Delta))
			write(op.Key2, EncodeInt(readInt(op.Key2)+op.Delta))
		case types.OpAssertGE:
			if v := readInt(op.Key); v < op.Delta {
				res.Err = fmt.Errorf("%w: %s = %d < %d", ErrAssertFailed, op.Key, v, op.Delta)
				res.Writes = types.WriteSet{}
				return res
			}
		default:
			res.Err = fmt.Errorf("statedb: unknown opcode %v", op.Code)
			res.Writes = types.WriteSet{}
			return res
		}
	}
	return res
}

// Execute simulates ops against the store and, on success, commits the
// writes at the given version. It returns the result; failed transactions
// leave the state untouched.
func (s *Store) Execute(ver types.Version, ops []types.Op) SimResult {
	res := Simulate(s, ops)
	if res.Err == nil {
		s.Apply(ver, res.Writes)
	}
	return res
}
