// Package statedb implements the blockchain world state (§2.2): a
// versioned key-value store with the multi-version concurrency checks the
// execute-order-validate architecture depends on (§2.3.3), plus the
// deterministic executor for transaction payloads that every architecture
// shares.
//
// Versioning convention: the version of a key is the (block height,
// transaction index) that last wrote it. Blocks carrying transactions
// start at height 1; the zero Version means "never written", which is why
// a key that has never existed reads as version 0.0.
package statedb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"permchain/internal/types"
)

// Reader is a read view of committed state.
type Reader interface {
	// Get returns the value and version at key, and whether it exists.
	Get(key string) ([]byte, types.Version, bool)
}

// HistEntry is one historical value of a key, for provenance queries.
type HistEntry struct {
	Version types.Version
	Value   []byte
}

// Store is the in-memory world state. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[string]entry
	hist map[string][]HistEntry
	// histLimit bounds per-key history (0 disables history).
	histLimit int
}

type entry struct {
	val []byte
	ver types.Version
}

// Option configures a Store.
type Option func(*Store)

// WithHistory keeps up to limit historical versions per key.
func WithHistory(limit int) Option {
	return func(s *Store) { s.histLimit = limit }
}

// New creates an empty store.
func New(opts ...Option) *Store {
	s := &Store{
		data: make(map[string]entry),
		hist: make(map[string][]HistEntry),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Get implements Reader.
func (s *Store) Get(key string) ([]byte, types.Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok {
		return nil, types.Version{}, false
	}
	return e.val, e.ver, true
}

// GetInt reads key as an integer; a missing key reads as 0.
func (s *Store) GetInt(key string) int64 {
	v, _, ok := s.Get(key)
	if !ok {
		return 0
	}
	n, err := DecodeInt(v)
	if err != nil {
		return 0
	}
	return n
}

// Apply commits a write set at the given version. Writes within one
// transaction are atomic under the store lock.
func (s *Store) Apply(ver types.Version, writes types.WriteSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range writes {
		if s.histLimit > 0 {
			h := append(s.hist[k], HistEntry{Version: ver, Value: v})
			if len(h) > s.histLimit {
				h = h[len(h)-s.histLimit:]
			}
			s.hist[k] = h
		}
		s.data[k] = entry{val: v, ver: ver}
	}
}

// Validate performs the Fabric-style MVCC check: every key in the read
// set must still be at the version the endorsement observed.
func (s *Store) Validate(reads types.ReadSet) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, ver := range reads {
		cur, ok := s.data[k]
		if !ok {
			if ver != (types.Version{}) {
				return false
			}
			continue
		}
		if cur.ver != ver {
			return false
		}
	}
	return true
}

// History returns the retained historical values of key, oldest first.
func (s *Store) History(key string) []HistEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.hist[key]
	out := make([]HistEntry, len(h))
	copy(out, h)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns all live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key     string
	Value   []byte
	Version types.Version
}

// Scan returns all live entries whose key starts with prefix, sorted by
// key — the range-query primitive ledger databases expose (e.g. listing
// an enterprise's namespace or a shard's keyspace).
func (s *Store) Scan(prefix string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, Entry{Key: k, Value: e.val, Version: e.ver})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// StateHash digests the full state deterministically; two replicas with
// identical state produce identical hashes. Used by tests and by the
// single-ledger scalability experiments to check replica agreement.
func (s *Store) StateHash() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		parts = append(parts, []byte(k), s.data[k].val)
	}
	return types.HashConcat(parts...)
}

// Snapshot is a full, self-contained copy of a Store's contents: every
// live entry, the retained per-key history, and the history limit it was
// taken under. It is the unit the durable storage engine checkpoints to
// disk (internal/store) and the input to Restore.
type Snapshot struct {
	Entries   []Entry
	Hist      map[string][]HistEntry
	HistLimit int
}

// Snapshot copies the full state. Entries come back sorted by key so the
// snapshot (and anything serialized from it) is deterministic.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := &Snapshot{HistLimit: s.histLimit}
	snap.Entries = make([]Entry, 0, len(s.data))
	for k, e := range s.data {
		snap.Entries = append(snap.Entries, Entry{Key: k, Value: e.val, Version: e.ver})
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Key < snap.Entries[j].Key })
	if len(s.hist) > 0 {
		snap.Hist = make(map[string][]HistEntry, len(s.hist))
		for k, h := range s.hist {
			cp := make([]HistEntry, len(h))
			copy(cp, h)
			snap.Hist[k] = cp
		}
	}
	return snap
}

// Restore replaces the store's contents with the snapshot's. The store
// keeps its own configured history limit: restored history is trimmed to
// it (keeping the newest entries), and a store configured without history
// drops the snapshot's history entirely. Replaying the block suffix after
// Restore therefore reproduces exactly the state — and, when the limits
// match, the history — of a store that never went through a snapshot.
func (s *Store) Restore(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]entry, len(snap.Entries))
	for _, e := range snap.Entries {
		s.data[e.Key] = entry{val: e.Value, ver: e.Version}
	}
	s.hist = make(map[string][]HistEntry)
	if s.histLimit > 0 {
		for k, h := range snap.Hist {
			if len(h) == 0 {
				continue
			}
			if len(h) > s.histLimit {
				h = h[len(h)-s.histLimit:]
			}
			cp := make([]HistEntry, len(h))
			copy(cp, h)
			s.hist[k] = cp
		}
	}
}

// EncodeInt renders an integer as its decimal byte string, the canonical
// integer encoding of the store.
func EncodeInt(n int64) []byte { return strconv.AppendInt(nil, n, 10) }

// DecodeInt parses a value written by EncodeInt.
func DecodeInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// Execution errors. A transaction that fails retains no effects.
var (
	// ErrInsufficient is returned when a transfer would drive a balance
	// negative.
	ErrInsufficient = errors.New("statedb: insufficient balance")
	// ErrAssertFailed is returned when an OpAssertGE predicate fails.
	ErrAssertFailed = errors.New("statedb: assertion failed")
)

// SimResult is the outcome of simulating (or executing) a payload.
type SimResult struct {
	Reads  types.ReadSet
	Writes types.WriteSet
	Err    error // nil when the payload succeeded
}

// Simulate runs ops against the reader without committing, recording the
// read set (with observed versions) and the write set. It provides
// read-your-writes semantics within the transaction. This is both the
// XOV endorsement step and, applied to live state, the OX/OXII executor.
func Simulate(r Reader, ops []types.Op) SimResult {
	res := SimResult{Reads: types.ReadSet{}, Writes: types.WriteSet{}}
	buf := map[string][]byte{}

	read := func(key string) []byte {
		if v, ok := buf[key]; ok {
			return v
		}
		v, ver, ok := r.Get(key)
		if _, seen := res.Reads[key]; !seen {
			if ok {
				res.Reads[key] = ver
			} else {
				res.Reads[key] = types.Version{}
			}
		}
		if !ok {
			return nil
		}
		return v
	}
	readInt := func(key string) int64 {
		b := read(key)
		n, err := DecodeInt(b)
		if err != nil {
			return 0
		}
		return n
	}
	write := func(key string, val []byte) {
		buf[key] = val
		res.Writes[key] = val
	}

	for _, op := range ops {
		switch op.Code {
		case types.OpGet:
			read(op.Key)
		case types.OpPut:
			write(op.Key, op.Value)
		case types.OpAdd:
			write(op.Key, EncodeInt(readInt(op.Key)+op.Delta))
		case types.OpTransfer:
			from := readInt(op.Key)
			if from < op.Delta {
				res.Err = fmt.Errorf("%w: %s has %d, need %d", ErrInsufficient, op.Key, from, op.Delta)
				res.Writes = types.WriteSet{}
				return res
			}
			write(op.Key, EncodeInt(from-op.Delta))
			write(op.Key2, EncodeInt(readInt(op.Key2)+op.Delta))
		case types.OpAssertGE:
			if v := readInt(op.Key); v < op.Delta {
				res.Err = fmt.Errorf("%w: %s = %d < %d", ErrAssertFailed, op.Key, v, op.Delta)
				res.Writes = types.WriteSet{}
				return res
			}
		default:
			res.Err = fmt.Errorf("statedb: unknown opcode %v", op.Code)
			res.Writes = types.WriteSet{}
			return res
		}
	}
	return res
}

// Execute simulates ops against the store and, on success, commits the
// writes at the given version. It returns the result; failed transactions
// leave the state untouched.
func (s *Store) Execute(ver types.Version, ops []types.Op) SimResult {
	res := Simulate(s, ops)
	if res.Err == nil {
		s.Apply(ver, res.Writes)
	}
	return res
}
