package statedb

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"permchain/internal/types"
)

// TestAtoi64MatchesDecodeInt pins the hand-rolled parser to the exact
// "DecodeInt, errors read as 0" semantics of the map path.
func TestAtoi64MatchesDecodeInt(t *testing.T) {
	cases := []string{
		"", "0", "1", "-1", "+1", "42", "-42", "007",
		"9223372036854775807", "9223372036854775808",
		"-9223372036854775808", "-9223372036854775809",
		"18446744073709551616123", "abc", "1a", "a1", "+", "-", "1.5",
		" 1", "1 ", "--1", "+-1", "1_000",
	}
	for _, c := range cases {
		want := int64(0)
		if n, err := DecodeInt([]byte(c)); err == nil {
			want = n
		}
		got, ok := atoi64([]byte(c))
		if !ok {
			got = 0
		}
		if got != want {
			t.Errorf("atoi64(%q) = %d, DecodeInt semantics give %d", c, got, want)
		}
	}
}

// randOps builds a random payload over a small key pool, occasionally
// including failing transfers, assertions, and unknown opcodes.
func randOps(rng *rand.Rand) []types.Op {
	keys := []string{"a", "b", "c", "d", "e"}
	n := 1 + rng.Intn(6)
	ops := make([]types.Op, n)
	for i := range ops {
		k := keys[rng.Intn(len(keys))]
		k2 := keys[rng.Intn(len(keys))]
		switch rng.Intn(12) {
		case 0, 1:
			ops[i] = types.Op{Code: types.OpGet, Key: k}
		case 2, 3:
			ops[i] = types.Op{Code: types.OpPut, Key: k, Value: []byte(strconv.Itoa(rng.Intn(100)))}
		case 4:
			// Junk value: the int ops must read it as 0 on both paths.
			ops[i] = types.Op{Code: types.OpPut, Key: k, Value: []byte("junk")}
		case 5, 6, 7:
			ops[i] = types.Op{Code: types.OpAdd, Key: k, Delta: int64(rng.Intn(21) - 10)}
		case 8, 9:
			ops[i] = types.Op{Code: types.OpTransfer, Key: k, Key2: k2, Delta: int64(rng.Intn(30))}
		case 10:
			ops[i] = types.Op{Code: types.OpAssertGE, Key: k, Delta: int64(rng.Intn(30) - 5)}
		default:
			if rng.Intn(8) == 0 {
				ops[i] = types.Op{Code: types.OpCode(99), Key: k}
			} else {
				ops[i] = types.Op{Code: types.OpAdd, Key: k, Delta: math.MaxInt64}
			}
		}
	}
	return ops
}

// TestSimulateListEquivalence is the property test pinning SimulateList
// to Simulate: for random states and random payloads, the recorded read
// set, write set, and error must be identical.
func TestSimulateListEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sc := GetScratch()
	defer PutScratch(sc)
	for iter := 0; iter < 500; iter++ {
		s := New(WithShards(1 << rng.Intn(4)))
		for i, k := range []string{"a", "b", "c"} {
			if rng.Intn(2) == 0 {
				s.Apply(types.Version{Block: 1, Tx: i}, types.WriteSet{k: EncodeInt(int64(rng.Intn(50)))})
			}
		}
		ops := randOps(rng)
		want := Simulate(s, ops)
		reads, writes, err := SimulateList(s, ops, sc)

		if (err == nil) != (want.Err == nil) {
			t.Fatalf("iter %d: err mismatch: list=%v map=%v ops=%v", iter, err, want.Err, ops)
		}
		if err != nil && err.Error() != want.Err.Error() {
			t.Fatalf("iter %d: err text mismatch: list=%q map=%q", iter, err, want.Err)
		}
		if got := reads.ToSet(); !reflect.DeepEqual(map[string]types.Version(got), map[string]types.Version(want.Reads)) {
			t.Fatalf("iter %d: reads mismatch: list=%v map=%v ops=%v", iter, got, want.Reads, ops)
		}
		gotW := map[string]string{}
		for i := range writes {
			gotW[writes[i].Key] = string(writes[i].Value)
		}
		wantW := map[string]string{}
		for k, v := range want.Writes {
			wantW[k] = string(v)
		}
		if !reflect.DeepEqual(gotW, wantW) {
			t.Fatalf("iter %d: writes mismatch: list=%v map=%v ops=%v", iter, gotW, wantW, ops)
		}
	}
}

// TestExecuteListEquivalence commits random payloads through both paths
// on twin stores and requires identical state hashes throughout.
func TestExecuteListEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a, b := New(), New()
	sc := GetScratch()
	defer PutScratch(sc)
	for i := 0; i < 200; i++ {
		ops := randOps(rng)
		ver := types.Version{Block: uint64(i + 1)}
		resA := a.Execute(ver, ops)
		_, _, errB := b.ExecuteList(ver, ops, sc)
		if (resA.Err == nil) != (errB == nil) {
			t.Fatalf("iter %d: outcome mismatch: map=%v list=%v", i, resA.Err, errB)
		}
		if a.StateHash() != b.StateHash() {
			t.Fatalf("iter %d: state diverged after ops %v", i, ops)
		}
	}
}

// TestSimulateListReadYourWrites mirrors the map-path test: a buffered
// write is read back without touching the store or the read set.
func TestSimulateListReadYourWrites(t *testing.T) {
	s := New()
	sc := GetScratch()
	defer PutScratch(sc)
	reads, writes, err := SimulateList(s, []types.Op{
		{Code: types.OpPut, Key: "k", Value: EncodeInt(5)},
		{Code: types.OpAdd, Key: "k", Delta: 2},
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := writes.Get("k"); !ok || string(v) != "7" {
		t.Fatalf("writes = %v, want k=7", writes)
	}
	// The read of k was satisfied from the write buffer: not a read.
	if len(reads) != 0 {
		t.Fatalf("reads = %v, want empty", reads)
	}
}

// TestSimulateListRecordsMissingAsZero checks first-read-wins recording
// of Version{} for keys that do not exist.
func TestSimulateListRecordsMissingAsZero(t *testing.T) {
	s := New()
	sc := GetScratch()
	defer PutScratch(sc)
	reads, _, err := SimulateList(s, []types.Op{
		{Code: types.OpGet, Key: "ghost"},
		{Code: types.OpGet, Key: "ghost"},
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 {
		t.Fatalf("reads = %v, want one entry", reads)
	}
	if ver, ok := reads.Get("ghost"); !ok || ver != (types.Version{}) {
		t.Fatalf("ghost recorded as %v, want zero version", ver)
	}
	if !s.ValidateList(reads) {
		t.Fatal("zero-version read of a missing key must validate")
	}
}

// TestSimulateListFailureClearsWrites checks that a failing payload
// keeps its reads and drops its writes, like the map path.
func TestSimulateListFailureClearsWrites(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"alice": EncodeInt(10)})
	sc := GetScratch()
	defer PutScratch(sc)
	reads, writes, err := SimulateList(s, []types.Op{
		{Code: types.OpPut, Key: "x", Value: []byte("v")},
		{Code: types.OpTransfer, Key: "alice", Key2: "bob", Delta: 30},
	}, sc)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if len(writes) != 0 {
		t.Fatalf("writes = %v, want empty after failure", writes)
	}
	if _, ok := reads.Get("alice"); !ok {
		t.Fatalf("reads = %v, want alice recorded", reads)
	}
}

// TestValidateListMatchesValidate pins ValidateList to Validate on
// fresh, stale, and ghost reads.
func TestValidateListMatchesValidate(t *testing.T) {
	s := New()
	v1 := types.Version{Block: 1, Tx: 0}
	s.Apply(v1, types.WriteSet{"a": []byte("x")})
	cases := []types.ReadSet{
		{"a": v1},
		{"a": {Block: 9}},
		{"ghost": {}},
		{"ghost": v1},
		{"a": v1, "ghost": {}},
	}
	for _, rs := range cases {
		if got, want := s.ValidateList(types.ReadListFromSet(rs)), s.Validate(rs); got != want {
			t.Errorf("ValidateList(%v) = %v, Validate = %v", rs, got, want)
		}
	}
}

// TestListPathAllocsDrop is the acceptance gate for the executor
// refactor: steady-state SimulateList with a reused scratch must
// allocate at most half of what map-based Simulate does on the same
// payload.
func TestListPathAllocsDrop(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"a": EncodeInt(10), "b": EncodeInt(20)})
	ops := []types.Op{
		{Code: types.OpGet, Key: "a"},
		{Code: types.OpGet, Key: "b"},
		{Code: types.OpAdd, Key: "a", Delta: 1},
		{Code: types.OpAdd, Key: "b", Delta: 2},
		{Code: types.OpGet, Key: "c"},
	}
	mapAllocs := testing.AllocsPerRun(200, func() {
		res := Simulate(s, ops)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	})
	sc := GetScratch()
	defer PutScratch(sc)
	listAllocs := testing.AllocsPerRun(200, func() {
		_, _, err := SimulateList(s, ops, sc)
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: map=%.1f list=%.1f", mapAllocs, listAllocs)
	if listAllocs*2 > mapAllocs {
		t.Fatalf("list path allocates %.1f/op vs map %.1f/op; want ≥2× drop", listAllocs, mapAllocs)
	}
}

func BenchmarkSimulateMap(b *testing.B) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"a": EncodeInt(10), "b": EncodeInt(20)})
	ops := []types.Op{
		{Code: types.OpGet, Key: "a"},
		{Code: types.OpAdd, Key: "a", Delta: 1},
		{Code: types.OpAdd, Key: "b", Delta: 2},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(s, ops)
	}
}

func BenchmarkSimulateList(b *testing.B) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"a": EncodeInt(10), "b": EncodeInt(20)})
	ops := []types.Op{
		{Code: types.OpGet, Key: "a"},
		{Code: types.OpAdd, Key: "a", Delta: 1},
		{Code: types.OpAdd, Key: "b", Delta: 2},
	}
	sc := GetScratch()
	defer PutScratch(sc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateList(s, ops, sc)
	}
}
