package statedb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"permchain/internal/types"
)

func TestGetMissing(t *testing.T) {
	s := New()
	if _, _, ok := s.Get("nope"); ok {
		t.Fatal("missing key reported present")
	}
	if s.GetInt("nope") != 0 {
		t.Fatal("missing int key not 0")
	}
}

func TestApplyGetRoundTrip(t *testing.T) {
	s := New()
	ver := types.Version{Block: 1, Tx: 0}
	s.Apply(ver, types.WriteSet{"a": []byte("x")})
	v, gotVer, ok := s.Get("a")
	if !ok || string(v) != "x" || gotVer != ver {
		t.Fatalf("got %q %v %v", v, gotVer, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestValidateMVCC(t *testing.T) {
	s := New()
	v1 := types.Version{Block: 1, Tx: 0}
	s.Apply(v1, types.WriteSet{"a": []byte("x")})

	// Reading the current version validates.
	if !s.Validate(types.ReadSet{"a": v1}) {
		t.Fatal("current version rejected")
	}
	// A read of a missing key at the zero version validates.
	if !s.Validate(types.ReadSet{"ghost": {}}) {
		t.Fatal("absent key at zero version rejected")
	}
	// A stale version fails after an overwrite.
	s.Apply(types.Version{Block: 2, Tx: 3}, types.WriteSet{"a": []byte("y")})
	if s.Validate(types.ReadSet{"a": v1}) {
		t.Fatal("stale version validated")
	}
	// A read that expected a value for a key that never existed fails.
	if s.Validate(types.ReadSet{"ghost": v1}) {
		t.Fatal("phantom read validated")
	}
	// A read of zero version for a key that now exists fails.
	if s.Validate(types.ReadSet{"a": {}}) {
		t.Fatal("zero-version read of existing key validated")
	}
}

func TestHistory(t *testing.T) {
	s := New(WithHistory(2))
	for i := 1; i <= 3; i++ {
		s.Apply(types.Version{Block: uint64(i)}, types.WriteSet{"k": EncodeInt(int64(i))})
	}
	h := s.History("k")
	if len(h) != 2 {
		t.Fatalf("history len = %d, want 2 (bounded)", len(h))
	}
	if h[0].Version.Block != 2 || h[1].Version.Block != 3 {
		t.Fatalf("history order wrong: %v", h)
	}
	// History disabled by default.
	s2 := New()
	s2.Apply(types.Version{Block: 1}, types.WriteSet{"k": []byte("v")})
	if len(s2.History("k")) != 0 {
		t.Fatal("history retained when disabled")
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"b": nil, "a": nil, "c": nil})
	ks := s.Keys()
	if len(ks) != 3 || ks[0] != "a" || ks[1] != "b" || ks[2] != "c" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestStateHashAgreement(t *testing.T) {
	a, b := New(), New()
	// Same writes in different order must agree.
	a.Apply(types.Version{Block: 1}, types.WriteSet{"x": []byte("1")})
	a.Apply(types.Version{Block: 2}, types.WriteSet{"y": []byte("2")})
	b.Apply(types.Version{Block: 2}, types.WriteSet{"y": []byte("2")})
	b.Apply(types.Version{Block: 1}, types.WriteSet{"x": []byte("1")})
	if a.StateHash() != b.StateHash() {
		t.Fatal("identical states hash differently")
	}
	b.Apply(types.Version{Block: 3}, types.WriteSet{"y": []byte("3")})
	if a.StateHash() == b.StateHash() {
		t.Fatal("different states hash equal")
	}
}

func TestIntCodec(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, -9999999, 1 << 60} {
		got, err := DecodeInt(EncodeInt(n))
		if err != nil || got != n {
			t.Fatalf("round trip %d → %d, err %v", n, got, err)
		}
	}
	if n, err := DecodeInt(nil); err != nil || n != 0 {
		t.Fatal("empty value should decode to 0")
	}
	if _, err := DecodeInt([]byte("xyz")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestSimulateReadYourWrites(t *testing.T) {
	s := New()
	res := Simulate(s, []types.Op{
		{Code: types.OpPut, Key: "k", Value: EncodeInt(5)},
		{Code: types.OpAdd, Key: "k", Delta: 3},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if string(res.Writes["k"]) != "8" {
		t.Fatalf("write = %q, want 8", res.Writes["k"])
	}
	// The read of k after our own write must not appear as a store read
	// at a phantom version... it appears with zero version since the store
	// never had it; but only the first external read records.
	if len(res.Reads) != 0 {
		// OpAdd read k from the buffer, not the store.
		t.Fatalf("reads = %v, want none (buffered)", res.Reads)
	}
}

func TestSimulateRecordsVersions(t *testing.T) {
	s := New()
	ver := types.Version{Block: 4, Tx: 2}
	s.Apply(ver, types.WriteSet{"k": EncodeInt(10)})
	res := Simulate(s, []types.Op{{Code: types.OpAdd, Key: "k", Delta: 1}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reads["k"] != ver {
		t.Fatalf("read version = %v, want %v", res.Reads["k"], ver)
	}
	if string(res.Writes["k"]) != "11" {
		t.Fatalf("write = %q", res.Writes["k"])
	}
}

func TestSimulateTransfer(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"alice": EncodeInt(100)})
	res := Simulate(s, []types.Op{{Code: types.OpTransfer, Key: "alice", Key2: "bob", Delta: 30}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if string(res.Writes["alice"]) != "70" || string(res.Writes["bob"]) != "30" {
		t.Fatalf("writes = %v", res.Writes)
	}
}

func TestSimulateInsufficient(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"alice": EncodeInt(10)})
	res := Simulate(s, []types.Op{{Code: types.OpTransfer, Key: "alice", Key2: "bob", Delta: 30}})
	if !errors.Is(res.Err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", res.Err)
	}
	if len(res.Writes) != 0 {
		t.Fatal("failed transaction produced writes")
	}
}

func TestSimulateAssert(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"hours": EncodeInt(38)})
	ok := Simulate(s, []types.Op{{Code: types.OpAssertGE, Key: "hours", Delta: 30}})
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	bad := Simulate(s, []types.Op{{Code: types.OpAssertGE, Key: "hours", Delta: 40}})
	if !errors.Is(bad.Err, ErrAssertFailed) {
		t.Fatalf("err = %v, want ErrAssertFailed", bad.Err)
	}
}

func TestSimulateUnknownOpcode(t *testing.T) {
	res := Simulate(New(), []types.Op{{Code: types.OpCode(99)}})
	if res.Err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestExecuteCommitsOnSuccessOnly(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{"a": EncodeInt(5)})
	res := s.Execute(types.Version{Block: 2}, []types.Op{{Code: types.OpTransfer, Key: "a", Key2: "b", Delta: 100}})
	if res.Err == nil {
		t.Fatal("expected failure")
	}
	if s.GetInt("a") != 5 || s.GetInt("b") != 0 {
		t.Fatal("failed execute mutated state")
	}
	res = s.Execute(types.Version{Block: 2}, []types.Op{{Code: types.OpTransfer, Key: "a", Key2: "b", Delta: 3}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if s.GetInt("a") != 2 || s.GetInt("b") != 3 {
		t.Fatalf("a=%d b=%d", s.GetInt("a"), s.GetInt("b"))
	}
}

func TestTransferConservationProperty(t *testing.T) {
	// Property: any sequence of transfers between 4 accounts conserves
	// total balance and never produces a negative balance.
	f := func(moves []struct {
		From, To uint8
		Amt      int16
	}) bool {
		s := New()
		accts := []string{"a", "b", "c", "d"}
		for i, a := range accts {
			s.Apply(types.Version{Block: 1, Tx: i}, types.WriteSet{a: EncodeInt(1000)})
		}
		for i, m := range moves {
			amt := int64(m.Amt)
			if amt < 0 {
				amt = -amt
			}
			s.Execute(types.Version{Block: 2, Tx: i}, []types.Op{{
				Code:  types.OpTransfer,
				Key:   accts[int(m.From)%4],
				Key2:  accts[int(m.To)%4],
				Delta: amt,
			}})
		}
		total := int64(0)
		for _, a := range accts {
			n := s.GetInt(a)
			if n < 0 {
				return false
			}
			total += n
		}
		return total == 4000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", w)
				s.Apply(types.Version{Block: uint64(i)}, types.WriteSet{key: EncodeInt(int64(i))})
				s.Get(key)
				s.Validate(types.ReadSet{key: {Block: uint64(i)}})
				s.StateHash()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestScan(t *testing.T) {
	s := New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{
		"acct/alice": EncodeInt(10),
		"acct/bob":   EncodeInt(20),
		"cfg/limit":  EncodeInt(99),
	})
	got := s.Scan("acct/")
	if len(got) != 2 || got[0].Key != "acct/alice" || got[1].Key != "acct/bob" {
		t.Fatalf("Scan = %v", got)
	}
	if string(got[1].Value) != "20" || got[1].Version.Block != 1 {
		t.Fatalf("entry = %+v", got[1])
	}
	if len(s.Scan("zzz")) != 0 {
		t.Fatal("phantom prefix matched")
	}
	if len(s.Scan("")) != 3 {
		t.Fatal("empty prefix should match all")
	}
}

func TestStateHashShardCountIndependence(t *testing.T) {
	// The bucket tree is a fixed shape: replicas striped differently must
	// still agree on every state hash.
	counts := []int{1, 2, 8, 64}
	stores := make([]*Store, len(counts))
	for i, n := range counts {
		stores[i] = New(WithShards(n))
		if got := stores[i].ShardCount(); got != n {
			t.Fatalf("ShardCount(%d) = %d", n, got)
		}
		applySeq(stores[i], 1, 50)
	}
	ref := stores[0].StateHash()
	for i := 1; i < len(stores); i++ {
		if stores[i].StateHash() != ref {
			t.Fatalf("shards=%d hashes differently than shards=1", counts[i])
		}
	}
}

func TestWithShardsClamping(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {3, 2}, {48, 32}, {64, 64}, {100, 64},
	} {
		if got := New(WithShards(c.in)).ShardCount(); got != c.want {
			t.Fatalf("WithShards(%d) → %d shards, want %d", c.in, got, c.want)
		}
	}
}

func TestIncrementalHashMatchesRebuild(t *testing.T) {
	// Interleaving writes with StateHash calls (exercising the dirty-bucket
	// cache) must land on the same digest as a store that was built in one
	// go and hashed once.
	inc := New()
	for h := uint64(1); h < 200; h++ {
		inc.Apply(types.Version{Block: h}, types.WriteSet{
			fmt.Sprintf("key-%d", h%31): EncodeInt(int64(h)),
		})
		if h%7 == 0 {
			inc.StateHash() // populate caches mid-stream
		}
	}
	fresh := New(WithShards(4))
	for h := uint64(1); h < 200; h++ {
		fresh.Apply(types.Version{Block: h}, types.WriteSet{
			fmt.Sprintf("key-%d", h%31): EncodeInt(int64(h)),
		})
	}
	if inc.StateHash() != fresh.StateHash() {
		t.Fatal("incrementally-cached hash differs from fresh rebuild")
	}
	// Overwriting a key back to a prior value must restore the prior hash.
	before := inc.StateHash()
	inc.Apply(types.Version{Block: 300}, types.WriteSet{"key-1": []byte("other")})
	if inc.StateHash() == before {
		t.Fatal("overwrite did not change hash")
	}
	inc.Apply(types.Version{Block: 301}, types.WriteSet{"key-1": EncodeInt(187)})
	if inc.StateHash() != before {
		t.Fatal("content-identical state hashes differently (version leaked into hash)")
	}
}

func TestCaptureIsPointInTime(t *testing.T) {
	s := New(WithHistory(2))
	applySeq(s, 1, 10)
	want := s.Snapshot()

	cap := s.Capture()
	// Mutate every key after the capture; add brand-new keys too.
	applySeq(s, 10, 30)
	s.Apply(types.Version{Block: 40}, types.WriteSet{"post-capture": []byte("x")})

	got := cap.Materialize()
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("capture has %d entries, want %d", len(got.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g.Key != w.Key || string(g.Value) != string(w.Value) || g.Version != w.Version {
			t.Fatalf("entry %d: %+v, want %+v", i, g, w)
		}
	}
	if len(got.Hist) != len(want.Hist) {
		t.Fatalf("capture hist %d keys, want %d", len(got.Hist), len(want.Hist))
	}
	for k, wh := range want.Hist {
		gh := got.Hist[k]
		if len(gh) != len(wh) {
			t.Fatalf("hist[%q] len %d, want %d", k, len(gh), len(wh))
		}
		for i := range wh {
			if gh[i].Version != wh[i].Version || string(gh[i].Value) != string(wh[i].Value) {
				t.Fatalf("hist[%q][%d] = %+v, want %+v", k, i, gh[i], wh[i])
			}
		}
	}
	// Restore from the materialized capture lands on the captured state.
	r := New(WithHistory(2))
	r.Restore(got)
	mid := New(WithHistory(2))
	applySeq(mid, 1, 10)
	if r.StateHash() != mid.StateHash() {
		t.Fatal("restored capture differs from state at capture time")
	}
}

func TestCaptureConcurrentWithWrites(t *testing.T) {
	// Captures taken while writers run must each materialize to a
	// self-consistent snapshot (restorable, internally sorted), and the
	// race detector must stay quiet.
	s := New(WithShards(8))
	applySeq(s, 1, 20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Apply(types.Version{Block: uint64(100 + i), Tx: w}, types.WriteSet{
					fmt.Sprintf("w%d-k%d", w, i%50): EncodeInt(int64(i)),
				})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := s.Capture().Materialize()
		for j := 1; j < len(snap.Entries); j++ {
			if snap.Entries[j].Key <= snap.Entries[j-1].Key {
				t.Errorf("capture %d entries unsorted at %d", i, j)
			}
		}
		r := New()
		r.Restore(snap)
		if r.Len() != len(snap.Entries) {
			t.Errorf("capture %d: restore Len %d, want %d", i, r.Len(), len(snap.Entries))
		}
	}
	close(stop)
	wg.Wait()
	if s.StateHash() != s.StateHash() {
		t.Fatal("quiescent hash unstable")
	}
}

func TestRestoreInvalidatesHashCaches(t *testing.T) {
	s := New()
	applySeq(s, 1, 30)
	s.StateHash() // warm caches
	mid := New()
	applySeq(mid, 1, 5)
	s.Restore(mid.Snapshot())
	if s.StateHash() != mid.StateHash() {
		t.Fatal("post-Restore hash still reflects pre-Restore caches")
	}
}

func TestLockWaitsCounter(t *testing.T) {
	// Not a determinism check — just that the witness is wired and starts
	// at zero.
	s := New()
	if s.LockWaits() != 0 {
		t.Fatal("fresh store reports lock waits")
	}
}

// applySeq writes a deterministic workload of versioned writes to s,
// starting at block height from (inclusive) up to to (exclusive).
func applySeq(s *Store, from, to uint64) {
	for h := from; h < to; h++ {
		s.Apply(types.Version{Block: h, Tx: 0}, types.WriteSet{
			fmt.Sprintf("k%d", h%7): EncodeInt(int64(h)),
			"hot":                   EncodeInt(int64(h * 3)),
		})
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ref := New()
	applySeq(ref, 1, 20)

	// Snapshot at height 10, restore into a fresh store, replay the rest:
	// the restored store must land on the identical state hash.
	mid := New()
	applySeq(mid, 1, 10)
	snap := mid.Snapshot()

	restored := New()
	applySeq(restored, 1, 3) // pre-existing junk Restore must wipe
	restored.Restore(snap)
	applySeq(restored, 10, 20)

	if restored.StateHash() != ref.StateHash() {
		t.Fatal("snapshot→restore→replay state hash differs from straight-through execution")
	}
	if restored.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), ref.Len())
	}
	// Versions must round-trip too, not just values.
	_, ver, ok := restored.Get("hot")
	if !ok || ver != (types.Version{Block: 19, Tx: 0}) {
		t.Fatalf("hot version = %v ok=%v", ver, ok)
	}
}

func TestSnapshotIsDeterministicAndSorted(t *testing.T) {
	s := New()
	applySeq(s, 1, 9)
	a, b := s.Snapshot(), s.Snapshot()
	if len(a.Entries) != len(b.Entries) || len(a.Entries) == 0 {
		t.Fatalf("entries %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].Key != b.Entries[i].Key {
			t.Fatal("snapshot entry order is not deterministic")
		}
		if i > 0 && a.Entries[i].Key <= a.Entries[i-1].Key {
			t.Fatalf("entries not strictly sorted at %d: %q <= %q", i, a.Entries[i].Key, a.Entries[i-1].Key)
		}
	}
}

func TestSnapshotRestoreHistory(t *testing.T) {
	// Matching limits: history survives restore+replay identically.
	ref := New(WithHistory(3))
	applySeq(ref, 1, 15)

	mid := New(WithHistory(3))
	applySeq(mid, 1, 8)
	snap := mid.Snapshot()
	if snap.HistLimit != 3 {
		t.Fatalf("HistLimit = %d", snap.HistLimit)
	}

	restored := New(WithHistory(3))
	restored.Restore(snap)
	applySeq(restored, 8, 15)

	if restored.StateHash() != ref.StateHash() {
		t.Fatal("state hash differs")
	}
	want, got := ref.History("hot"), restored.History("hot")
	if len(got) != len(want) {
		t.Fatalf("history len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Version != want[i].Version || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("history[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRestoreTrimsHistoryToSmallerLimit(t *testing.T) {
	src := New(WithHistory(5))
	applySeq(src, 1, 10)
	snap := src.Snapshot()
	if got := len(snap.Hist["hot"]); got != 5 {
		t.Fatalf("snapshot history = %d, want 5", got)
	}

	small := New(WithHistory(2))
	small.Restore(snap)
	h := small.History("hot")
	if len(h) != 2 {
		t.Fatalf("restored history = %d, want trim to 2", len(h))
	}
	// The newest entries must be the ones kept.
	if h[1].Version != (types.Version{Block: 9, Tx: 0}) {
		t.Fatalf("newest retained = %v", h[1].Version)
	}

	// A store configured without history drops it entirely.
	none := New()
	none.Restore(snap)
	if len(none.History("hot")) != 0 {
		t.Fatal("history kept by a store with history disabled")
	}
	if none.StateHash() != small.StateHash() {
		t.Fatal("history handling changed live state")
	}
}
