// Package ledger implements the two ledger data structures of the
// tutorial: the classic append-only hash-chained block ledger every
// participant replicates (§2.2, Figure 1), and the directed acyclic graph
// ledger of Caper (§2.3.1), of which each enterprise maintains only its
// own view.
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"permchain/internal/crypto"
	"permchain/internal/types"
)

// Chain is an append-only hash-chained block ledger. The genesis block is
// created at height 0 with no transactions; application blocks start at
// height 1. Chain is safe for concurrent use.
type Chain struct {
	mu     sync.RWMutex
	blocks []*types.Block
	byHash map[types.Hash]uint64
}

// Chain append errors.
var (
	ErrBadHeight   = errors.New("ledger: block height is not head+1")
	ErrBadPrevHash = errors.New("ledger: block does not chain to head")
	ErrBadTxRoot   = errors.New("ledger: tx merkle root does not match body")
)

// NewChain creates a ledger holding only the genesis block.
func NewChain() *Chain {
	genesis := types.NewBlock(0, types.ZeroHash, -1, nil)
	c := &Chain{byHash: map[types.Hash]uint64{}}
	c.blocks = append(c.blocks, genesis)
	c.byHash[genesis.Hash()] = 0
	return c
}

// NewChainFromBlocks rebuilds a chain from application blocks (heights
// 1..n, genesis excluded), validating every link as it goes. This is the
// disk loader's entry point: blocks decoded from the block log must pass
// exactly the checks a live Append would have run, so a corrupted or
// reordered log is rejected with a positional error instead of producing
// a ledger Verify would later fail.
func NewChainFromBlocks(blocks []*types.Block) (*Chain, error) {
	c := NewChain()
	for i, b := range blocks {
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("ledger: loading block %d (height %d): %w", i, b.Header.Height, err)
		}
	}
	return c, nil
}

// Blocks returns a copy of the chain's block slice, genesis included.
// Blocks themselves are immutable and shared.
func (c *Chain) Blocks() []*types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*types.Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// Append validates that b extends the head and appends it.
func (c *Chain) Append(b *types.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.blocks[len(c.blocks)-1]
	if b.Header.Height != head.Header.Height+1 {
		return fmt.Errorf("%w: got %d, head %d", ErrBadHeight, b.Header.Height, head.Header.Height)
	}
	if b.Header.PrevHash != head.Hash() {
		return ErrBadPrevHash
	}
	if b.Header.TxRoot != types.TxMerkleRoot(b.Txs) {
		return ErrBadTxRoot
	}
	c.blocks = append(c.blocks, b)
	c.byHash[b.Hash()] = b.Header.Height
	return nil
}

// Head returns the newest block.
func (c *Chain) Head() *types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1]
}

// Height returns the head's height.
func (c *Chain) Height() uint64 { return c.Head().Header.Height }

// Get returns the block at the given height.
func (c *Chain) Get(height uint64) (*types.Block, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("ledger: height %d beyond head %d", height, len(c.blocks)-1)
	}
	return c.blocks[height], nil
}

// GetByHash returns the block with the given header hash.
func (c *Chain) GetByHash(h types.Hash) (*types.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	height, ok := c.byHash[h]
	if !ok {
		return nil, false
	}
	return c.blocks[height], true
}

// Len returns the number of blocks including genesis.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// TxCount returns the total number of transactions on the chain.
func (c *Chain) TxCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, b := range c.blocks {
		n += len(b.Txs)
	}
	return n
}

// Verify walks the whole chain, re-checking hashes, heights, and Merkle
// roots. It returns the first inconsistency found.
func (c *Chain) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, b := range c.blocks {
		if b.Header.Height != uint64(i) {
			return fmt.Errorf("ledger: block %d has height %d", i, b.Header.Height)
		}
		if i == 0 {
			if !b.Header.PrevHash.IsZero() {
				return errors.New("ledger: genesis has a parent")
			}
		} else if b.Header.PrevHash != c.blocks[i-1].Hash() {
			return fmt.Errorf("ledger: block %d does not chain to block %d", i, i-1)
		}
		if b.Header.TxRoot != types.TxMerkleRoot(b.Txs) {
			return fmt.Errorf("ledger: block %d merkle root mismatch", i)
		}
	}
	return nil
}

// TxProof produces a Merkle inclusion proof for the transaction at the
// given height and index: a light client holding only the block header
// can verify a transaction is on the chain without the block body — the
// provenance/authenticity property §1 attributes to blockchains.
func (c *Chain) TxProof(height uint64, txIndex int) (*TxInclusionProof, error) {
	b, err := c.Get(height)
	if err != nil {
		return nil, err
	}
	if txIndex < 0 || txIndex >= len(b.Txs) {
		return nil, fmt.Errorf("ledger: tx index %d out of range (block has %d)", txIndex, len(b.Txs))
	}
	leaves := make([]types.Hash, len(b.Txs))
	for i, tx := range b.Txs {
		leaves[i] = tx.Hash()
	}
	tree, err := crypto.NewMerkleTreeFromHashes(leaves)
	if err != nil {
		return nil, err
	}
	steps, err := tree.Proof(txIndex)
	if err != nil {
		return nil, err
	}
	return &TxInclusionProof{
		Height: height,
		TxHash: b.Txs[txIndex].Hash(),
		Steps:  steps,
		Header: b.Header,
	}, nil
}

// TxInclusionProof proves one transaction is included in one block.
type TxInclusionProof struct {
	Height uint64
	TxHash types.Hash
	Steps  []crypto.ProofStep
	Header types.BlockHeader
}

// Verify checks the proof against a trusted block header (e.g. obtained
// from any 2f+1 replicas). It confirms (1) the header is the one proved
// against and (2) the transaction hash chains up to the header's Merkle
// root.
func (p *TxInclusionProof) Verify(trusted types.BlockHeader) bool {
	if trusted.Hash() != p.Header.Hash() || trusted.Height != p.Height {
		return false
	}
	return crypto.VerifyMerkleProofHash(trusted.TxRoot, p.TxHash, p.Steps)
}

// EqualTo reports whether two chains hold the same blocks — the Figure 1
// property: every node's copy of the ledger is identical.
func (c *Chain) EqualTo(o *Chain) bool {
	if c.Len() != o.Len() {
		return false
	}
	return c.Head().Hash() == o.Head().Hash()
}

// Size returns an approximate byte size of the ledger: header bytes plus
// payload bytes of every transaction. The confidentiality experiment (E4)
// uses this to measure how much data lands on irrelevant enterprises.
func (c *Chain) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, b := range c.blocks {
		total += 80 // header: height + two hashes + proposer
		for _, tx := range b.Txs {
			total += TxSize(tx)
		}
	}
	return total
}

// TxSize approximates a transaction's wire size in bytes.
func TxSize(tx *types.Transaction) int {
	n := len(tx.ID) + 16
	for _, op := range tx.Ops {
		n += 8 + len(op.Key) + len(op.Key2) + len(op.Value) + 8
	}
	for k, v := range tx.Writes {
		n += len(k) + len(v)
	}
	for k := range tx.Reads {
		n += len(k) + 16
	}
	return n
}
