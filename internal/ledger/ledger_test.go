package ledger

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"permchain/internal/types"
)

func mkTx(id string) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpPut, Key: id, Value: []byte("v")}}}
}

func mkBlock(c *Chain, txs ...*types.Transaction) *types.Block {
	head := c.Head()
	return types.NewBlock(head.Header.Height+1, head.Hash(), 0, txs)
}

func TestChainGenesis(t *testing.T) {
	c := NewChain()
	if c.Len() != 1 || c.Height() != 0 {
		t.Fatalf("len=%d height=%d", c.Len(), c.Height())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.TxCount() != 0 {
		t.Fatal("genesis has txs")
	}
}

func TestChainAppendAndVerify(t *testing.T) {
	c := NewChain()
	for i := 0; i < 10; i++ {
		b := mkBlock(c, mkTx(fmt.Sprintf("t%d", i)))
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if c.Height() != 10 || c.TxCount() != 10 {
		t.Fatalf("height=%d txs=%d", c.Height(), c.TxCount())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	b5, err := c.Get(5)
	if err != nil || b5.Header.Height != 5 {
		t.Fatalf("Get(5): %v %v", b5, err)
	}
	if _, err := c.Get(99); err == nil {
		t.Fatal("Get past head succeeded")
	}
	got, ok := c.GetByHash(b5.Hash())
	if !ok || got != b5 {
		t.Fatal("GetByHash failed")
	}
	if _, ok := c.GetByHash(types.HashBytes([]byte("x"))); ok {
		t.Fatal("GetByHash found phantom")
	}
}

func TestChainAppendRejectsBadBlocks(t *testing.T) {
	c := NewChain()
	good := mkBlock(c, mkTx("a"))
	if err := c.Append(good); err != nil {
		t.Fatal(err)
	}

	// Wrong height.
	wrongH := types.NewBlock(5, c.Head().Hash(), 0, nil)
	if err := c.Append(wrongH); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("err = %v, want ErrBadHeight", err)
	}
	// Wrong parent.
	wrongP := types.NewBlock(2, types.HashBytes([]byte("bogus")), 0, nil)
	if err := c.Append(wrongP); !errors.Is(err, ErrBadPrevHash) {
		t.Fatalf("err = %v, want ErrBadPrevHash", err)
	}
	// Tampered body: build valid block then swap a transaction.
	tampered := mkBlock(c, mkTx("x"))
	tampered.Txs = []*types.Transaction{mkTx("y")}
	if err := c.Append(tampered); !errors.Is(err, ErrBadTxRoot) {
		t.Fatalf("err = %v, want ErrBadTxRoot", err)
	}
	// Chain unchanged by rejected appends.
	if c.Height() != 1 {
		t.Fatalf("height = %d after rejections", c.Height())
	}
}

func TestChainEqualTo(t *testing.T) {
	a, b := NewChain(), NewChain()
	if !a.EqualTo(b) {
		t.Fatal("fresh chains differ")
	}
	blk := mkBlock(a, mkTx("t"))
	if err := a.Append(blk); err != nil {
		t.Fatal(err)
	}
	if a.EqualTo(b) {
		t.Fatal("different-length chains equal")
	}
	if err := b.Append(blk); err != nil {
		t.Fatal(err)
	}
	if !a.EqualTo(b) {
		t.Fatal("identical chains differ")
	}
}

func TestChainSizeGrows(t *testing.T) {
	c := NewChain()
	s0 := c.Size()
	if err := c.Append(mkBlock(c, mkTx("a"), mkTx("b"))); err != nil {
		t.Fatal(err)
	}
	if c.Size() <= s0 {
		t.Fatal("size did not grow")
	}
	if TxSize(mkTx("a")) <= 0 {
		t.Fatal("TxSize nonpositive")
	}
}

func TestChainConcurrent(t *testing.T) {
	c := NewChain()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Head()
				c.Len()
				c.Verify()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := c.Append(mkBlock(c, mkTx(fmt.Sprintf("t%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Height() != 50 {
		t.Fatalf("height = %d", c.Height())
	}
}

func TestDAGAppendAndTopo(t *testing.T) {
	d := NewDAG()
	a, err := d.Append(mkTx("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Append(mkTx("b"), a)
	if err != nil {
		t.Fatal(err)
	}
	cx := mkTx("c")
	cx.Kind = types.TxCross
	c, err := d.Append(cx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	topo := d.Topo()
	pos := map[types.Hash]int{}
	for i, v := range topo {
		pos[v.ID()] = i
	}
	if !(pos[a] < pos[b] && pos[b] < pos[c]) {
		t.Fatal("topological order violated")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDAGRejectsUnknownParentAndDup(t *testing.T) {
	d := NewDAG()
	if _, err := d.Append(mkTx("x"), types.HashBytes([]byte("ghost"))); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Append(mkTx("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(mkTx("a")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestDAGSameTxDifferentParentsIsNewVertex(t *testing.T) {
	d := NewDAG()
	a, _ := d.Append(mkTx("a"))
	tx := mkTx("t")
	v1, err := d.Append(tx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.Append(tx, a)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Fatal("vertex id ignores parents")
	}
}

func TestDAGHasPath(t *testing.T) {
	d := NewDAG()
	a, _ := d.Append(mkTx("a"))
	b, _ := d.Append(mkTx("b"), a)
	c, _ := d.Append(mkTx("c"), b)
	x, _ := d.Append(mkTx("x")) // disconnected
	if !d.HasPath(c, a) {
		t.Fatal("c should reach a")
	}
	if d.HasPath(a, c) {
		t.Fatal("a should not reach c (wrong direction)")
	}
	if d.HasPath(x, a) {
		t.Fatal("disconnected vertices connected")
	}
	if !d.HasPath(a, a) {
		t.Fatal("self path false")
	}
}

func TestDAGFilter(t *testing.T) {
	d := NewDAG()
	prev := types.ZeroHash
	for i := 0; i < 6; i++ {
		tx := mkTx(fmt.Sprintf("t%d", i))
		if i%2 == 0 {
			tx.Kind = types.TxCross
		}
		var err error
		if prev.IsZero() {
			prev, err = d.Append(tx)
		} else {
			prev, err = d.Append(tx, prev)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	cross := d.Filter(func(tx *types.Transaction) bool { return tx.Kind == types.TxCross })
	if len(cross) != 3 {
		t.Fatalf("cross count = %d", len(cross))
	}
	for i, v := range cross {
		if v.Tx.ID != fmt.Sprintf("t%d", i*2) {
			t.Fatalf("filter order wrong: %v", v.Tx.ID)
		}
	}
}

func TestDAGGet(t *testing.T) {
	d := NewDAG()
	id, _ := d.Append(mkTx("a"))
	v, ok := d.Get(id)
	if !ok || v.Tx.ID != "a" {
		t.Fatal("Get failed")
	}
	if _, ok := d.Get(types.HashBytes([]byte("nope"))); ok {
		t.Fatal("Get found phantom")
	}
}

func TestTxInclusionProof(t *testing.T) {
	c := NewChain()
	var txs []*types.Transaction
	for i := 0; i < 7; i++ {
		txs = append(txs, mkTx(fmt.Sprintf("t%d", i)))
	}
	if err := c.Append(mkBlock(c, txs...)); err != nil {
		t.Fatal(err)
	}
	trusted := c.Head().Header
	for i := range txs {
		proof, err := c.TxProof(1, i)
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !proof.Verify(trusted) {
			t.Fatalf("tx %d: valid proof rejected", i)
		}
		// Wrong transaction hash must fail.
		forged := *proof
		forged.TxHash = types.HashBytes([]byte("bogus"))
		if forged.Verify(trusted) {
			t.Fatalf("tx %d: forged tx hash accepted", i)
		}
	}
	// Proof against a different block's header must fail.
	if err := c.Append(mkBlock(c, mkTx("other"))); err != nil {
		t.Fatal(err)
	}
	proof, _ := c.TxProof(1, 0)
	if proof.Verify(c.Head().Header) {
		t.Fatal("proof verified against wrong header")
	}
	// Out-of-range requests.
	if _, err := c.TxProof(1, 9); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := c.TxProof(99, 0); err == nil {
		t.Fatal("out-of-range height accepted")
	}
	if _, err := c.TxProof(0, 0); err == nil {
		t.Fatal("genesis (empty) proof accepted")
	}
}

// grow appends n single-tx blocks and returns the chain.
func grow(t *testing.T, n int) *Chain {
	t.Helper()
	c := NewChain()
	for i := 0; i < n; i++ {
		if err := c.Append(mkBlock(c, mkTx(fmt.Sprintf("t%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// The corruption tests below are the contract the disk loader relies on:
// any in-memory mutation a corrupted block log could smuggle past Append
// must be caught by Verify, with an error that names the position.

func TestVerifyDetectsFlippedHeaderHash(t *testing.T) {
	c := grow(t, 6)
	// Flip a bit in block 3's recorded parent hash; 3 no longer chains to 2.
	c.blocks[3].Header.PrevHash[0] ^= 0x80
	err := c.Verify()
	if err == nil {
		t.Fatal("flipped header hash not detected")
	}
	if !strings.Contains(err.Error(), "block 3") {
		t.Fatalf("error does not name position: %v", err)
	}
}

func TestVerifyDetectsSplicedBlock(t *testing.T) {
	c := grow(t, 6)
	// Splice in a substitute block at height 4: same height, same parent,
	// different body. It is internally consistent, but block 5 still names
	// the original as parent.
	forged := types.NewBlock(4, c.blocks[3].Hash(), 0, []*types.Transaction{mkTx("forged")})
	c.blocks[4] = forged
	err := c.Verify()
	if err == nil {
		t.Fatal("spliced block not detected")
	}
	if !strings.Contains(err.Error(), "block 5") {
		t.Fatalf("error does not name the broken link: %v", err)
	}
}

func TestVerifyDetectsTruncatedChain(t *testing.T) {
	c := grow(t, 6)
	// Cut block 3 out of the middle; heights above shift down by one slot.
	c.blocks = append(c.blocks[:3], c.blocks[4:]...)
	err := c.Verify()
	if err == nil {
		t.Fatal("mid-chain truncation not detected")
	}
	if !strings.Contains(err.Error(), "block 3") {
		t.Fatalf("error does not name position: %v", err)
	}
}

func TestVerifyDetectsTamperedBody(t *testing.T) {
	c := grow(t, 4)
	// Swap block 2's body for a different transaction list; the header's
	// Merkle root no longer matches.
	c.blocks[2].Txs = []*types.Transaction{mkTx("tampered")}
	err := c.Verify()
	if err == nil {
		t.Fatal("tampered body not detected")
	}
	if !strings.Contains(err.Error(), "block 2") || !strings.Contains(err.Error(), "merkle") {
		t.Fatalf("error = %v", err)
	}
}

func TestNewChainFromBlocks(t *testing.T) {
	src := grow(t, 5)
	blocks := src.Blocks()
	if len(blocks) != 6 || blocks[0].Header.Height != 0 {
		t.Fatalf("Blocks() = %d entries", len(blocks))
	}
	re, err := NewChainFromBlocks(blocks[1:]) // genesis excluded
	if err != nil {
		t.Fatal(err)
	}
	if !re.EqualTo(src) {
		t.Fatal("rebuilt chain differs")
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewChainFromBlocksRejectsGap(t *testing.T) {
	src := grow(t, 5)
	blocks := src.Blocks()[1:]
	// Drop block at height 3 (index 2): the loader must refuse with the
	// position of the break.
	gappy := append(append([]*types.Block{}, blocks[:2]...), blocks[3:]...)
	_, err := NewChainFromBlocks(gappy)
	if !errors.Is(err, ErrBadHeight) {
		t.Fatalf("err = %v, want ErrBadHeight", err)
	}
	if !strings.Contains(err.Error(), "height 4") {
		t.Fatalf("error does not name the offending height: %v", err)
	}
}
