package ledger

import (
	"errors"
	"fmt"
	"sync"

	"permchain/internal/types"
)

// DAG is the Caper-style ledger (§2.3.1): an append-only directed acyclic
// graph of transactions where a vertex may have several parents. No node
// stores the full DAG; each enterprise keeps a DAG holding only its own
// view — its internal transactions plus every cross-enterprise
// transaction — so confidentiality holds by construction.
type DAG struct {
	mu       sync.RWMutex
	vertices map[types.Hash]*Vertex
	order    []types.Hash // append order, a valid topological order
}

// Vertex is one transaction in the DAG with edges to its parents.
type Vertex struct {
	Tx      *types.Transaction
	Parents []types.Hash
	id      types.Hash
}

// ID returns the vertex identity: the transaction hash combined with the
// parent hashes, so the same transaction appended under different parents
// is a different vertex.
func (v *Vertex) ID() types.Hash { return v.id }

func vertexID(tx *types.Transaction, parents []types.Hash) types.Hash {
	th := tx.Hash()
	parts := make([][]byte, 0, 1+len(parents))
	parts = append(parts, th[:])
	for _, p := range parents {
		p := p
		parts = append(parts, p[:])
	}
	return types.HashConcat(parts...)
}

// DAG errors.
var (
	ErrUnknownParent = errors.New("ledger: unknown parent vertex")
	ErrDuplicate     = errors.New("ledger: duplicate vertex")
)

// NewDAG creates an empty DAG ledger.
func NewDAG() *DAG {
	return &DAG{vertices: map[types.Hash]*Vertex{}}
}

// Append adds tx with the given parents and returns the new vertex id.
// Every parent must already be present, which keeps the graph acyclic.
func (d *DAG) Append(tx *types.Transaction, parents ...types.Hash) (types.Hash, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := vertexID(tx, parents)
	if _, ok := d.vertices[id]; ok {
		return types.ZeroHash, fmt.Errorf("%w: %v", ErrDuplicate, id)
	}
	for _, p := range parents {
		if _, ok := d.vertices[p]; !ok {
			return types.ZeroHash, fmt.Errorf("%w: %v", ErrUnknownParent, p)
		}
	}
	d.vertices[id] = &Vertex{Tx: tx, Parents: parents, id: id}
	d.order = append(d.order, id)
	return id, nil
}

// Get returns the vertex with the given id.
func (d *DAG) Get(id types.Hash) (*Vertex, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.vertices[id]
	return v, ok
}

// Len returns the number of vertices.
func (d *DAG) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vertices)
}

// Topo returns the vertices in a topological order (parents before
// children) — the append order, which is valid because parents must exist
// at append time.
func (d *DAG) Topo() []*Vertex {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Vertex, len(d.order))
	for i, id := range d.order {
		out[i] = d.vertices[id]
	}
	return out
}

// HasPath reports whether anc is reachable from desc by following parent
// edges — i.e. anc happened-before desc in the partial order.
func (d *DAG) HasPath(desc, anc types.Hash) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if desc == anc {
		return true
	}
	seen := map[types.Hash]bool{}
	stack := []types.Hash{desc}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		v, ok := d.vertices[cur]
		if !ok {
			continue
		}
		for _, p := range v.Parents {
			if p == anc {
				return true
			}
			stack = append(stack, p)
		}
	}
	return false
}

// Filter returns the vertices whose transaction satisfies keep, in
// topological order. Caper uses this to project the cross-enterprise
// subsequence out of a view.
func (d *DAG) Filter(keep func(*types.Transaction) bool) []*Vertex {
	var out []*Vertex
	for _, v := range d.Topo() {
		if keep(v.Tx) {
			out = append(out, v)
		}
	}
	return out
}

// Verify checks structural integrity: every parent edge resolves and each
// vertex id matches its content.
func (d *DAG) Verify() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen := map[types.Hash]bool{}
	for _, id := range d.order {
		v, ok := d.vertices[id]
		if !ok {
			return fmt.Errorf("ledger: order references missing vertex %v", id)
		}
		if vertexID(v.Tx, v.Parents) != id {
			return fmt.Errorf("ledger: vertex %v id mismatch", id)
		}
		for _, p := range v.Parents {
			if !seen[p] {
				return fmt.Errorf("ledger: vertex %v has forward or missing parent %v", id, p)
			}
		}
		seen[id] = true
	}
	return nil
}
