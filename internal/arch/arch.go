// Package arch holds what the three transaction-processing architectures
// of §2.3.3 share: static read/write-set analysis of payloads, transaction
// conflict graphs, the within-block reordering algorithms of Fabric++ and
// FabricSharp, and the execution-cost knob that models smart-contract
// work.
//
// The architectures themselves live in subpackages:
//
//   - ox:   order-execute (Tendermint/Quorum style) — sequential execution
//   - oxii: order-parallel-execute (ParBlockchain) — dependency graphs
//   - xov:  execute-order-validate (Fabric) — optimistic with MVCC aborts,
//     plus the FastFabric / Fabric++ / FabricSharp / XOX variants
package arch

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"permchain/internal/types"
)

// TxStatus is the per-transaction outcome of processing one block: the
// receipt-level answer to "what happened to my transaction". Engines that
// report statuses return one per transaction, indexed by the transaction's
// position in the block, regardless of any internal reordering.
type TxStatus uint8

const (
	// TxCommitted: the transaction's writes reached the state (including
	// XOX salvage re-execution).
	TxCommitted TxStatus = iota
	// TxAborted: dropped for a read-write conflict (MVCC validation,
	// early abort, or reorder cycle elimination).
	TxAborted
	// TxFailed: the payload logic itself failed (e.g. insufficient
	// balance); not a concurrency conflict.
	TxFailed
)

// String names the status.
func (s TxStatus) String() string {
	switch s {
	case TxCommitted:
		return "committed"
	case TxAborted:
		return "aborted"
	case TxFailed:
		return "failed"
	default:
		return fmt.Sprintf("TxStatus(%d)", int(s))
	}
}

// Stats summarizes the outcome of processing one block.
type Stats struct {
	// Committed counts transactions whose writes reached the state.
	Committed int
	// Aborted counts transactions dropped for read-write conflicts.
	Aborted int
	// Failed counts transactions whose payload logic failed (e.g.
	// insufficient balance); they are not conflicts.
	Failed int
	// Reexecuted counts transactions salvaged by XOX post-order execution.
	Reexecuted int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Committed += other.Committed
	s.Aborted += other.Aborted
	s.Failed += other.Failed
	s.Reexecuted += other.Reexecuted
}

// Total returns the number of transactions accounted for.
func (s Stats) Total() int { return s.Committed + s.Aborted + s.Failed }

// DeclaredRW statically derives the read and write key sets of a payload,
// the a-priori declaration ParBlockchain's orderers use to build
// dependency graphs (§2.3.3) without executing anything.
func DeclaredRW(tx *types.Transaction) (reads, writes []string) {
	rs := map[string]bool{}
	ws := map[string]bool{}
	for _, op := range tx.Ops {
		switch op.Code {
		case types.OpGet:
			rs[op.Key] = true
		case types.OpPut:
			ws[op.Key] = true
		case types.OpAdd:
			rs[op.Key] = true
			ws[op.Key] = true
		case types.OpTransfer:
			rs[op.Key] = true
			ws[op.Key] = true
			rs[op.Key2] = true
			ws[op.Key2] = true
		case types.OpAssertGE:
			rs[op.Key] = true
		}
	}
	for k := range rs {
		reads = append(reads, k)
	}
	for k := range ws {
		writes = append(writes, k)
	}
	sort.Strings(reads)
	sort.Strings(writes)
	return reads, writes
}

// Conflicts reports whether two transactions conflict on their declared
// key sets: any read-write or write-write overlap.
func Conflicts(r1, w1, r2, w2 []string) bool {
	return overlap(w1, w2) || overlap(w1, r2) || overlap(r1, w2)
}

func overlap(a, b []string) bool {
	// Both inputs are sorted.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// DependencyGraph is the partial order ParBlockchain's orderers attach to
// a block: an edge i→j means transaction i must execute before j.
type DependencyGraph struct {
	N     int
	Succ  [][]int // adjacency: Succ[i] lists j with edge i→j
	InDeg []int
}

// BuildDependencyGraph derives the block's dependency graph from declared
// read/write sets. Earlier transactions win conflicts: for i<j that
// conflict, the edge is i→j, preserving the agreed total order on
// conflicting pairs while freeing non-conflicting pairs to run in
// parallel.
func BuildDependencyGraph(txs []*types.Transaction) *DependencyGraph {
	n := len(txs)
	g := &DependencyGraph{N: n, Succ: make([][]int, n), InDeg: make([]int, n)}
	reads := make([][]string, n)
	writes := make([][]string, n)
	for i, tx := range txs {
		reads[i], writes[i] = DeclaredRW(tx)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Conflicts(reads[i], writes[i], reads[j], writes[j]) {
				g.Succ[i] = append(g.Succ[i], j)
				g.InDeg[j]++
			}
		}
	}
	return g
}

// conflictEdges builds the directed conflict graph used by reordering:
// an edge i→j means i must precede j because i reads a key j writes
// (placing i first keeps i's read valid). Self-edges are excluded:
// read-your-writes within one transaction is fine.
func conflictEdges(txs []*types.Transaction) [][]int {
	n := len(txs)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			// i reads a key j writes → i before j.
			conflict := false
			for k := range txs[i].Reads {
				if _, ok := txs[j].Writes[k]; ok {
					conflict = true
					break
				}
			}
			if conflict {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// ReorderPolicy selects the within-block conflict-resolution algorithm.
type ReorderPolicy int

const (
	// ReorderNone keeps the agreed order and lets MVCC validation abort
	// conflicting transactions (vanilla Fabric).
	ReorderNone ReorderPolicy = iota
	// ReorderFabricPP applies Fabric++'s cycle elimination: build the
	// conflict graph, abort transactions in cycles (greedy max-degree
	// victim selection), and emit the rest in a serializable order.
	ReorderFabricPP
	// ReorderSharp applies FabricSharp's abort-minimizing variant: exact
	// minimum feedback vertex set for small strongly connected components,
	// greedy fallback for large ones — strictly fewer aborts than
	// Fabric++'s heuristic.
	ReorderSharp
)

// Reorder reorders the block's transactions so that every kept
// transaction's reads stay valid, returning the new order (indices into
// txs) and the set of aborted indices. The rw-sets must be populated
// (post-simulation).
func Reorder(txs []*types.Transaction, policy ReorderPolicy) (order []int, aborted map[int]bool) {
	n := len(txs)
	aborted = map[int]bool{}
	if policy == ReorderNone {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, aborted
	}
	adj := conflictEdges(txs)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for {
		scc := stronglyConnected(adj, alive)
		broke := false
		for _, comp := range scc {
			if len(comp) < 2 {
				continue
			}
			broke = true
			victims := pickVictims(adj, comp, policy)
			for _, v := range victims {
				alive[v] = false
				aborted[v] = true
			}
		}
		if !broke {
			break
		}
	}
	order = topoOrder(adj, alive)
	return order, aborted
}

// pickVictims chooses which members of a cyclic component to abort.
func pickVictims(adj [][]int, comp []int, policy ReorderPolicy) []int {
	if policy == ReorderSharp && len(comp) <= 9 {
		if v := minFeedbackVertexSet(adj, comp); v != nil {
			return v
		}
	}
	// Greedy: abort the vertex with the highest degree inside the
	// component; recomputed on the next outer iteration if cycles remain.
	inComp := map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	best, bestDeg := comp[0], -1
	for _, v := range comp {
		deg := 0
		for _, w := range adj[v] {
			if inComp[w] {
				deg++
			}
		}
		for _, u := range comp {
			for _, w := range adj[u] {
				if w == v {
					deg++
				}
			}
		}
		if deg > bestDeg {
			best, bestDeg = v, deg
		}
	}
	return []int{best}
}

// minFeedbackVertexSet finds the smallest subset of comp whose removal
// makes the component acyclic, by subset enumeration in increasing size.
// Exponential, so callers cap the component size.
func minFeedbackVertexSet(adj [][]int, comp []int) []int {
	for size := 1; size < len(comp); size++ {
		if v := searchFVS(adj, comp, size, 0, nil); v != nil {
			return v
		}
	}
	return nil
}

func searchFVS(adj [][]int, comp []int, size, start int, chosen []int) []int {
	if len(chosen) == size {
		removed := map[int]bool{}
		for _, v := range chosen {
			removed[v] = true
		}
		if acyclicWithout(adj, comp, removed) {
			out := make([]int, len(chosen))
			copy(out, chosen)
			return out
		}
		return nil
	}
	for i := start; i < len(comp); i++ {
		if v := searchFVS(adj, comp, size, i+1, append(chosen, comp[i])); v != nil {
			return v
		}
	}
	return nil
}

func acyclicWithout(adj [][]int, comp []int, removed map[int]bool) bool {
	in := map[int]bool{}
	for _, v := range comp {
		if !removed[v] {
			in[v] = true
		}
	}
	// Kahn's algorithm restricted to the surviving component members.
	indeg := map[int]int{}
	for v := range in {
		indeg[v] = 0
	}
	for v := range in {
		for _, w := range adj[v] {
			if in[w] {
				indeg[w]++
			}
		}
	}
	queue := []int{}
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range adj[v] {
			if in[w] {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	return seen == len(in)
}

// stronglyConnected returns the SCCs among alive vertices (iterative
// Tarjan).
func stronglyConnected(adj [][]int, alive []bool) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	next := 0

	type frame struct {
		v, childIdx int
	}
	for root := 0; root < n; root++ {
		if !alive[root] || index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.childIdx < len(adj[v]) {
				w := adj[v][f.childIdx]
				f.childIdx++
				if !alive[w] {
					continue
				}
				if index[w] == -1 {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Done with v.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				out = append(out, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}

// topoOrder returns a topological order of the alive vertices; among
// independent vertices the original index order is kept (stable).
func topoOrder(adj [][]int, alive []bool) []int {
	n := len(adj)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		for _, w := range adj[v] {
			if alive[w] {
				indeg[w]++
			}
		}
	}
	// Min-index-first selection keeps the order deterministic.
	var order []int
	ready := make([]bool, n)
	remaining := 0
	for v := 0; v < n; v++ {
		if alive[v] {
			remaining++
			if indeg[v] == 0 {
				ready[v] = true
			}
		}
	}
	for len(order) < remaining {
		picked := -1
		for v := 0; v < n; v++ {
			if alive[v] && ready[v] {
				picked = v
				break
			}
		}
		if picked == -1 {
			break // graph still cyclic; caller broke cycles beforehand
		}
		ready[picked] = false
		alive[picked] = false
		order = append(order, picked)
		for _, w := range adj[picked] {
			if alive[w] {
				indeg[w]--
				if indeg[w] == 0 {
					ready[w] = true
				}
			}
		}
	}
	return order
}

// CriticalPathOps returns the weight (total operation count) of the
// longest dependency chain in a block — the execution time lower bound
// for OXII on unlimited cores. totalOps / CriticalPathOps is the block's
// ideal parallel speedup, a host-independent measure of how much
// parallelism the dependency graph exposes.
func CriticalPathOps(txs []*types.Transaction) int {
	g := BuildDependencyGraph(txs)
	longest := make([]int, g.N)
	best := 0
	// Vertices are in a valid topological order by construction (edges
	// only go from lower to higher index).
	for i := 0; i < g.N; i++ {
		// longest[i] currently holds the best predecessor chain weight.
		longest[i] += len(txs[i].Ops)
		if longest[i] > best {
			best = longest[i]
		}
		for _, j := range g.Succ[i] {
			if longest[i] > longest[j] {
				longest[j] = longest[i]
			}
		}
	}
	return best
}

// TotalOps sums the operation counts of a batch.
func TotalOps(txs []*types.Transaction) int {
	n := 0
	for _, tx := range txs {
		n += len(tx.Ops)
	}
	return n
}

// SimulateWork burns CPU proportional to factor, modeling the cost of
// smart-contract execution per operation. factor 0 is free; each unit is
// one SHA-256 compression.
func SimulateWork(factor int) {
	var buf [32]byte
	for i := 0; i < factor; i++ {
		buf = sha256.Sum256(buf[:])
	}
}
