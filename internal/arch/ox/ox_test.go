package ox

import (
	"fmt"
	"testing"

	"permchain/internal/statedb"
	"permchain/internal/types"
)

func TestSequentialExecution(t *testing.T) {
	store := statedb.New()
	e := New(store, 0)
	var txs []*types.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, &types.Transaction{
			ID:  fmt.Sprintf("t%d", i),
			Ops: []types.Op{{Code: types.OpAdd, Key: "ctr", Delta: 1}},
		})
	}
	st := e.ExecuteBlock(types.NewBlock(1, types.ZeroHash, 0, txs))
	if st.Committed != 10 || st.Aborted != 0 {
		t.Fatalf("stats %+v", st)
	}
	// OX never loses an update: all 10 increments land.
	if store.GetInt("ctr") != 10 {
		t.Fatalf("ctr = %d", store.GetInt("ctr"))
	}
}

func TestPayloadFailureCounted(t *testing.T) {
	store := statedb.New()
	e := New(store, 0)
	txs := []*types.Transaction{
		{ID: "bad", Ops: []types.Op{{Code: types.OpTransfer, Key: "a", Key2: "b", Delta: 5}}},
		{ID: "ok", Ops: []types.Op{{Code: types.OpPut, Key: "k", Value: []byte("v")}}},
	}
	st := e.ExecuteBlock(types.NewBlock(1, types.ZeroHash, 0, txs))
	if st.Failed != 1 || st.Committed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeterministicAcrossReplicas(t *testing.T) {
	mk := func() *statedb.Store {
		store := statedb.New()
		e := New(store, 0)
		var txs []*types.Transaction
		for i := 0; i < 20; i++ {
			txs = append(txs, &types.Transaction{
				ID: fmt.Sprintf("t%d", i),
				Ops: []types.Op{
					{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i%3), Delta: int64(i)},
				},
			})
		}
		e.ExecuteBlock(types.NewBlock(1, types.ZeroHash, 0, txs))
		return store
	}
	if mk().StateHash() != mk().StateHash() {
		t.Fatal("OX execution is not deterministic")
	}
}

func TestExecutionDoesNotMutateTx(t *testing.T) {
	// Order-execute replicas share transaction values across nodes, so the
	// executor must not write back into them (that is XOV endorsement's
	// job, which happens before ordering on a single writer).
	store := statedb.New()
	e := New(store, 0)
	tx := &types.Transaction{ID: "t", Ops: []types.Op{{Code: types.OpAdd, Key: "x", Delta: 1}}}
	e.ExecuteBlock(types.NewBlock(1, types.ZeroHash, 0, []*types.Transaction{tx}))
	if tx.Reads != nil || tx.Writes != nil {
		t.Fatal("executor mutated the shared transaction")
	}
	if e.Store() != store {
		t.Fatal("Store accessor wrong")
	}
}
