// Package ox implements the order-execute architecture (§2.3.3): after
// consensus fixes the block order, every node executes the block's
// transactions strictly sequentially in that order. This is the
// Tendermint / Quorum / Corda / Multichain model — simple and always
// serializable, but unable to use more than one core per block, which is
// the "low performance due to sequential execution" the tutorial's
// Discussion attributes to OX.
package ox

import (
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Engine executes ordered blocks sequentially. ExecuteBlock is not safe
// for concurrent use — OX is sequential by definition, and the engine
// keeps one reusable execution scratch instead of allocating read/write
// maps per transaction.
type Engine struct {
	store *statedb.Store
	// workFactor models per-operation smart-contract cost (SHA-256
	// compressions per op).
	workFactor int
	obs        *obs.Obs
	scratch    statedb.ExecScratch
}

// SetObs attaches per-stage timing instrumentation (nil detaches).
func (e *Engine) SetObs(o *obs.Obs) { e.obs = o }

// New creates an OX engine over the given state.
func New(store *statedb.Store, workFactor int) *Engine {
	return &Engine{store: store, workFactor: workFactor}
}

// Store returns the engine's world state.
func (e *Engine) Store() *statedb.Store { return e.store }

// ExecuteBlock runs every transaction in order. Transactions never abort
// for concurrency reasons in OX — only payload failures count.
func (e *Engine) ExecuteBlock(b *types.Block) arch.Stats {
	st, _ := e.ExecuteBlockStatus(b)
	return st
}

// ExecuteBlockStatus is ExecuteBlock plus a per-transaction outcome,
// indexed by block position — the input to commit receipts.
func (e *Engine) ExecuteBlockStatus(b *types.Block) (arch.Stats, []arch.TxStatus) {
	start := time.Now()
	defer func() { e.obs.Observe("arch/ox/execute", time.Since(start)) }()
	var st arch.Stats
	statuses := make([]arch.TxStatus, len(b.Txs))
	for i, tx := range b.Txs {
		for range tx.Ops {
			arch.SimulateWork(e.workFactor)
		}
		_, _, err := e.store.ExecuteList(types.Version{Block: b.Header.Height, Tx: i}, tx.Ops, &e.scratch)
		if err != nil {
			st.Failed++
			statuses[i] = arch.TxFailed
			continue
		}
		st.Committed++
		statuses[i] = arch.TxCommitted
	}
	return st, statuses
}
