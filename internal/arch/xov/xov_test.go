package xov

import (
	"fmt"
	"testing"

	"permchain/internal/arch"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

func addTx(id, key string, delta int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: key, Delta: delta}}}
}

func seed(store *statedb.Store, kv map[string]int64) {
	i := 0
	for k, v := range kv {
		store.Apply(types.Version{Block: 1, Tx: i}, types.WriteSet{k: statedb.EncodeInt(v)})
		i++
	}
}

func TestEndorseFillsRWSets(t *testing.T) {
	store := statedb.New()
	seed(store, map[string]int64{"x": 7})
	e := New(store, Options{}, 0, 0)
	tx := addTx("t", "x", 3)
	if err := e.Endorse(tx); err != nil {
		t.Fatal(err)
	}
	if len(tx.Reads) != 1 || len(tx.Writes) != 1 {
		t.Fatalf("rw sets %v %v", tx.Reads, tx.Writes)
	}
	if string(tx.Writes["x"]) != "10" {
		t.Fatalf("write = %q", tx.Writes["x"])
	}
	// Endorsement must not change state.
	if store.GetInt("x") != 7 {
		t.Fatal("endorsement mutated state")
	}
}

func TestEndorseFailureFiltered(t *testing.T) {
	store := statedb.New()
	e := New(store, Options{}, 0, 0)
	bad := &types.Transaction{ID: "bad", Ops: []types.Op{{Code: types.OpTransfer, Key: "empty", Key2: "b", Delta: 10}}}
	good := addTx("good", "x", 1)
	out := e.EndorseAll([]*types.Transaction{bad, good})
	if len(out) != 1 || out[0].ID != "good" {
		t.Fatalf("EndorseAll kept %v", out)
	}
}

func TestConflictingTxAbortsVanilla(t *testing.T) {
	// Two increments endorsed against the same snapshot: the second's
	// read is invalidated by the first's commit — vanilla Fabric loses it.
	store := statedb.New()
	seed(store, map[string]int64{"x": 0})
	e := New(store, Options{}, 0, 0)
	t1, t2 := addTx("t1", "x", 1), addTx("t2", "x", 1)
	if err := e.Endorse(t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Endorse(t2); err != nil {
		t.Fatal(err)
	}
	st := e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, []*types.Transaction{t1, t2}))
	if st.Committed != 1 || st.Aborted != 1 {
		t.Fatalf("stats %+v", st)
	}
	if store.GetInt("x") != 1 {
		t.Fatalf("x = %d, want 1 (lost update must not happen)", store.GetInt("x"))
	}
}

func TestReorderSavesReadOnlyConflict(t *testing.T) {
	// writer then reader in agreed order: vanilla aborts the reader,
	// Fabric++ reordering commits both (reader first).
	run := func(opts Options) arch.Stats {
		store := statedb.New()
		seed(store, map[string]int64{"x": 5})
		e := New(store, opts, 0, 0)
		writer := addTx("w", "x", 1)
		reader := &types.Transaction{ID: "r", Ops: []types.Op{
			{Code: types.OpGet, Key: "x"},
			{Code: types.OpPut, Key: "out", Value: []byte("seen")},
		}}
		for _, tx := range []*types.Transaction{writer, reader} {
			if err := e.Endorse(tx); err != nil {
				t.Fatal(err)
			}
		}
		return e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, []*types.Transaction{writer, reader}))
	}
	vanilla := run(Options{})
	if vanilla.Aborted != 1 {
		t.Fatalf("vanilla stats %+v, want 1 abort", vanilla)
	}
	pp := run(Options{Reorder: arch.ReorderFabricPP})
	if pp.Aborted != 0 || pp.Committed != 2 {
		t.Fatalf("fabric++ stats %+v, want 2 commits", pp)
	}
}

func TestEarlyAbortDropsStaleEndorsements(t *testing.T) {
	store := statedb.New()
	seed(store, map[string]int64{"x": 0})
	e := New(store, Options{EarlyAbort: true}, 0, 0)
	tx := addTx("t", "x", 1)
	if err := e.Endorse(tx); err != nil {
		t.Fatal(err)
	}
	// State moves on before the block commits (pipelined endorsement).
	store.Apply(types.Version{Block: 5, Tx: 0}, types.WriteSet{"x": statedb.EncodeInt(99)})
	st := e.CommitBlock(types.NewBlock(6, types.ZeroHash, 0, []*types.Transaction{tx}))
	if st.Aborted != 1 || st.Committed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestXOXReexecutesAborts(t *testing.T) {
	store := statedb.New()
	seed(store, map[string]int64{"x": 0})
	e := New(store, Options{PostOrderExecution: true}, 0, 0)
	t1, t2 := addTx("t1", "x", 1), addTx("t2", "x", 1)
	if err := e.Endorse(t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Endorse(t2); err != nil {
		t.Fatal(err)
	}
	st := e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, []*types.Transaction{t1, t2}))
	if st.Committed != 2 || st.Aborted != 0 || st.Reexecuted != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Both increments must land: no lost update, no double-apply.
	if store.GetInt("x") != 2 {
		t.Fatalf("x = %d, want 2", store.GetInt("x"))
	}
}

func TestParallelValidationMatchesSerial(t *testing.T) {
	mkBlock := func(e *Engine) *types.Block {
		var txs []*types.Transaction
		for i := 0; i < 40; i++ {
			// Half contended on "hot", half independent.
			key := fmt.Sprintf("cold%d", i)
			if i%2 == 0 {
				key = "hot"
			}
			tx := addTx(fmt.Sprintf("t%d", i), key, 1)
			if err := e.Endorse(tx); err != nil {
				t.Fatal(err)
			}
			txs = append(txs, tx)
		}
		return types.NewBlock(2, types.ZeroHash, 0, txs)
	}
	serialStore := statedb.New()
	serial := New(serialStore, Options{}, 0, 0)
	sStats := serial.CommitBlock(mkBlock(serial))

	parStore := statedb.New()
	par := New(parStore, Options{ParallelValidation: true}, 0, 8)
	pStats := par.CommitBlock(mkBlock(par))

	if sStats.Committed != pStats.Committed || sStats.Aborted != pStats.Aborted {
		t.Fatalf("serial %+v != parallel %+v", sStats, pStats)
	}
	if serialStore.StateHash() != parStore.StateHash() {
		t.Fatal("FastFabric validation diverged from serial validation")
	}
}

func TestConflictFreeWorkloadAllCommits(t *testing.T) {
	store := statedb.New()
	e := New(store, Options{ParallelValidation: true}, 0, 8)
	var txs []*types.Transaction
	for i := 0; i < 100; i++ {
		tx := addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i), 1)
		if err := e.Endorse(tx); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	st := e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, txs))
	if st.Committed != 100 || st.Aborted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCommitEmptyBlock(t *testing.T) {
	e := New(statedb.New(), Options{}, 0, 0)
	st := e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, nil))
	if st.Total() != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAllOptionsCombined(t *testing.T) {
	// FastFabric + FabricSharp reordering + early abort + XOX together:
	// the options must compose without losing or double-applying work.
	store := statedb.New()
	e := New(store, Options{
		ParallelValidation: true,
		Reorder:            arch.ReorderSharp,
		EarlyAbort:         true,
		PostOrderExecution: true,
	}, 0, 8)
	var txs []*types.Transaction
	for i := 0; i < 60; i++ {
		key := "hot"
		if i%3 == 0 {
			key = fmt.Sprintf("cold%d", i)
		}
		tx := addTx(fmt.Sprintf("t%d", i), key, 1)
		if err := e.Endorse(tx); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	st := e.CommitBlock(types.NewBlock(2, types.ZeroHash, 0, txs))
	if st.Committed+st.Failed != 60 {
		t.Fatalf("accounted %d/60: %+v", st.Committed+st.Failed, st)
	}
	// With XOX, nothing stays aborted; total increments must be exact.
	if st.Aborted != 0 {
		t.Fatalf("stats %+v: XOX left aborts", st)
	}
	total := store.GetInt("hot")
	for i := 0; i < 60; i += 3 {
		total += store.GetInt(fmt.Sprintf("cold%d", i))
	}
	if total != 60 {
		t.Fatalf("total increments = %d, want 60 (no lost or doubled updates)", total)
	}
}
