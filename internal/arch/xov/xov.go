// Package xov implements the execute-order-validate architecture of
// Hyperledger Fabric (§2.3.3) and the four published optimizations the
// tutorial surveys on top of it:
//
//   - vanilla Fabric: endorse (simulate) in parallel, order, validate
//     serially with MVCC checks — conflicting transactions abort;
//   - FastFabric [28]: the validation pipeline itself runs in parallel for
//     non-conflicting transactions;
//   - Fabric++ [54]: early abort of stale transactions plus within-block
//     reordering by conflict-graph cycle elimination;
//   - FabricSharp [52]: abort-minimizing reordering (exact minimum
//     feedback vertex set for small components) plus filtering of
//     transactions no reordering can save;
//   - XOX Fabric [27]: a post-order execution step re-executes
//     transactions invalidated by conflicts instead of dropping them.
package xov

import (
	"runtime"
	"sync"
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Options selects which Fabric optimizations are active.
type Options struct {
	// ParallelValidation validates non-conflicting transactions
	// concurrently (FastFabric).
	ParallelValidation bool
	// Reorder selects the within-block reordering policy (Fabric++ /
	// FabricSharp).
	Reorder arch.ReorderPolicy
	// EarlyAbort drops transactions whose read set is already stale
	// against committed state before validation work is spent on them
	// (Fabric++ / FabricSharp).
	EarlyAbort bool
	// PostOrderExecution re-executes MVCC-aborted transactions against
	// fresh state after validation (XOX).
	PostOrderExecution bool
}

// Engine is an XOV processing node: it endorses (simulates) transactions
// against current state and validates/commits ordered blocks.
type Engine struct {
	store      *statedb.Store
	opts       Options
	workFactor int
	workers    int
	obs        *obs.Obs
}

// SetObs attaches per-stage timing instrumentation (nil detaches).
func (e *Engine) SetObs(o *obs.Obs) { e.obs = o }

// New creates an XOV engine. workers <= 0 selects GOMAXPROCS.
func New(store *statedb.Store, opts Options, workFactor, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{store: store, opts: opts, workFactor: workFactor, workers: workers}
}

// Store returns the engine's world state.
func (e *Engine) Store() *statedb.Store { return e.store }

// Endorse simulates the transaction against current committed state,
// filling its read/write sets. This is Fabric's execution phase: it runs
// before ordering and in parallel across clients/endorsers.
func (e *Engine) Endorse(tx *types.Transaction) error {
	for range tx.Ops {
		arch.SimulateWork(e.workFactor)
	}
	res := statedb.Simulate(e.store, tx.Ops)
	if res.Err != nil {
		return res.Err
	}
	tx.Reads, tx.Writes = res.Reads, res.Writes
	return nil
}

// EndorseAll endorses a batch concurrently, returning the transactions
// that simulated successfully.
func (e *Engine) EndorseAll(txs []*types.Transaction) []*types.Transaction {
	start := time.Now()
	defer func() { e.obs.Observe("arch/xov/endorse", time.Since(start)) }()
	ok := make([]bool, len(txs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i, tx := range txs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, tx *types.Transaction) {
			defer wg.Done()
			defer func() { <-sem }()
			ok[i] = e.Endorse(tx) == nil
		}(i, tx)
	}
	wg.Wait()
	var out []*types.Transaction
	for i, tx := range txs {
		if ok[i] {
			out = append(out, tx)
		}
	}
	return out
}

// CommitBlock validates an ordered block against the current state and
// commits the surviving transactions, applying whichever optimizations
// are enabled. Transactions must be endorsed (rw-sets filled).
func (e *Engine) CommitBlock(b *types.Block) arch.Stats {
	st, _ := e.CommitBlockStatus(b)
	return st
}

// CommitBlockStatus is CommitBlock plus a per-transaction outcome,
// indexed by the transaction's original block position (not the
// reordered one) — the input to commit receipts. MVCC validation losers
// report TxAborted; transactions salvaged by XOX re-execution report
// TxCommitted; payload failures report TxFailed.
func (e *Engine) CommitBlockStatus(b *types.Block) (arch.Stats, []arch.TxStatus) {
	statuses := make([]arch.TxStatus, len(b.Txs))
	pos := make(map[*types.Transaction]int, len(b.Txs))
	for i, tx := range b.Txs {
		statuses[i] = arch.TxCommitted // refined below as phases drop txs
		pos[tx] = i
	}
	setStatus := func(tx *types.Transaction, s arch.TxStatus) {
		if i, ok := pos[tx]; ok {
			statuses[i] = s
		}
	}

	var st arch.Stats
	txs := b.Txs

	// Early abort (Fabric++ / FabricSharp): a transaction whose reads are
	// already stale against committed state can never validate, in any
	// order — drop it before spending reorder/validation work.
	if e.opts.EarlyAbort {
		eaStart := time.Now()
		kept := txs[:0:0]
		for _, tx := range txs {
			if e.store.Validate(tx.Reads) {
				kept = append(kept, tx)
			} else {
				st.Aborted++
				setStatus(tx, arch.TxAborted)
			}
		}
		txs = kept
		e.obs.Observe("arch/xov/early_abort", time.Since(eaStart))
	}

	// Within-block reordering (Fabric++ / FabricSharp). Victims of cycle
	// elimination count as aborts — unless post-order execution is on, in
	// which case they join the re-execution queue like validation aborts.
	var postponed []*types.Transaction
	order := make([]int, len(txs))
	for i := range order {
		order[i] = i
	}
	if e.opts.Reorder != arch.ReorderNone {
		roStart := time.Now()
		var abortedIdx map[int]bool
		order, abortedIdx = arch.Reorder(txs, e.opts.Reorder)
		for idx := range abortedIdx {
			if e.opts.PostOrderExecution {
				postponed = append(postponed, txs[idx])
			} else {
				st.Aborted++
				setStatus(txs[idx], arch.TxAborted)
			}
		}
		e.obs.Observe("arch/xov/reorder", time.Since(roStart))
	}

	// Validation + commit.
	valStart := time.Now()
	var aborted []*types.Transaction
	if e.opts.ParallelValidation {
		s, ab := e.validateParallel(b.Header.Height, txs, order)
		st.Add(s)
		aborted = ab
	} else {
		s, ab := e.validateSerial(b.Header.Height, txs, order)
		st.Add(s)
		aborted = ab
	}
	e.obs.Observe("arch/xov/validate", time.Since(valStart))
	for _, tx := range aborted {
		setStatus(tx, arch.TxAborted) // refined again if XOX salvages it
	}

	// Post-order execution (XOX): re-execute invalidated transactions
	// against fresh state so their work is salvaged rather than lost.
	if e.opts.PostOrderExecution {
		poStart := time.Now()
		defer func() { e.obs.Observe("arch/xov/postorder", time.Since(poStart)) }()
		st.Aborted += len(postponed) // balanced out per-tx below
		aborted = append(aborted, postponed...)
		for _, tx := range aborted {
			for range tx.Ops {
				arch.SimulateWork(e.workFactor)
			}
			res := e.store.Execute(types.Version{Block: b.Header.Height, Tx: len(txs) + st.Reexecuted}, tx.Ops)
			st.Aborted--
			if res.Err != nil {
				st.Failed++
				setStatus(tx, arch.TxFailed)
				continue
			}
			tx.Reads, tx.Writes = res.Reads, res.Writes
			st.Committed++
			st.Reexecuted++
			setStatus(tx, arch.TxCommitted)
		}
	}
	return st, statuses
}

// validateSerial is Fabric's standard validator: walk the block in order,
// MVCC-check each transaction against the state as updated by earlier
// transactions in the same block, commit or abort.
func (e *Engine) validateSerial(height uint64, txs []*types.Transaction, order []int) (arch.Stats, []*types.Transaction) {
	var st arch.Stats
	var aborted []*types.Transaction
	for pos, idx := range order {
		tx := txs[idx]
		if !e.store.Validate(tx.Reads) {
			st.Aborted++
			aborted = append(aborted, tx)
			continue
		}
		e.store.Apply(types.Version{Block: height, Tx: pos}, tx.Writes)
		st.Committed++
	}
	return st, aborted
}

// validateParallel is FastFabric's pipeline: partition the ordered block
// into waves of mutually non-conflicting transactions and validate/commit
// each wave concurrently. Order across conflicting transactions is
// preserved by wave boundaries.
func (e *Engine) validateParallel(height uint64, txs []*types.Transaction, order []int) (arch.Stats, []*types.Transaction) {
	var st arch.Stats
	var aborted []*types.Transaction
	var mu sync.Mutex

	pos := 0
	for pos < len(order) {
		// Grow a wave: stop when the next transaction conflicts with any
		// transaction already in the wave.
		wave := []int{order[pos]}
		pos++
		for pos < len(order) {
			cand := txs[order[pos]]
			conflict := false
			for _, w := range wave {
				if cand.ConflictsWith(txs[w]) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
			wave = append(wave, order[pos])
			pos++
		}
		var wg sync.WaitGroup
		for wi, idx := range wave {
			wg.Add(1)
			go func(wi, idx int) {
				defer wg.Done()
				tx := txs[idx]
				if !e.store.Validate(tx.Reads) {
					mu.Lock()
					st.Aborted++
					aborted = append(aborted, tx)
					mu.Unlock()
					return
				}
				e.store.Apply(types.Version{Block: height, Tx: pos + wi}, tx.Writes)
				mu.Lock()
				st.Committed++
				mu.Unlock()
			}(wi, idx)
		}
		wg.Wait()
	}
	return st, aborted
}
