package arch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"permchain/internal/types"
)

func rwTx(id string, reads, writes []string) *types.Transaction {
	tx := &types.Transaction{ID: id, Reads: types.ReadSet{}, Writes: types.WriteSet{}}
	for _, k := range reads {
		tx.Reads[k] = types.Version{}
	}
	for _, k := range writes {
		tx.Writes[k] = []byte("v")
	}
	return tx
}

func TestDeclaredRW(t *testing.T) {
	tx := &types.Transaction{Ops: []types.Op{
		{Code: types.OpGet, Key: "a"},
		{Code: types.OpPut, Key: "b"},
		{Code: types.OpAdd, Key: "c"},
		{Code: types.OpTransfer, Key: "d", Key2: "e"},
		{Code: types.OpAssertGE, Key: "f"},
	}}
	reads, writes := DeclaredRW(tx)
	wantR := []string{"a", "c", "d", "e", "f"}
	wantW := []string{"b", "c", "d", "e"}
	if fmt.Sprint(reads) != fmt.Sprint(wantR) {
		t.Fatalf("reads = %v, want %v", reads, wantR)
	}
	if fmt.Sprint(writes) != fmt.Sprint(wantW) {
		t.Fatalf("writes = %v, want %v", writes, wantW)
	}
}

func TestConflicts(t *testing.T) {
	cases := []struct {
		name           string
		r1, w1, r2, w2 []string
		want           bool
	}{
		{"read-read ok", []string{"k"}, nil, []string{"k"}, nil, false},
		{"write-write", nil, []string{"k"}, nil, []string{"k"}, true},
		{"read-write", []string{"k"}, nil, nil, []string{"k"}, true},
		{"write-read", nil, []string{"k"}, []string{"k"}, nil, true},
		{"disjoint", []string{"a"}, []string{"b"}, []string{"c"}, []string{"d"}, false},
	}
	for _, c := range cases {
		if got := Conflicts(c.r1, c.w1, c.r2, c.w2); got != c.want {
			t.Errorf("%s: got %v", c.name, got)
		}
	}
}

func opTx(id string, ops ...types.Op) *types.Transaction {
	return &types.Transaction{ID: id, Ops: ops}
}

func TestBuildDependencyGraph(t *testing.T) {
	txs := []*types.Transaction{
		opTx("0", types.Op{Code: types.OpAdd, Key: "x"}),
		opTx("1", types.Op{Code: types.OpAdd, Key: "x"}), // conflicts with 0
		opTx("2", types.Op{Code: types.OpAdd, Key: "y"}), // independent
	}
	g := BuildDependencyGraph(txs)
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if len(g.Succ[0]) != 1 || g.Succ[0][0] != 1 {
		t.Fatalf("edge 0→1 missing: %v", g.Succ[0])
	}
	if g.InDeg[1] != 1 || g.InDeg[0] != 0 || g.InDeg[2] != 0 {
		t.Fatalf("indegrees = %v", g.InDeg)
	}
}

func TestReorderNoneKeepsOrder(t *testing.T) {
	txs := []*types.Transaction{rwTx("a", nil, []string{"x"}), rwTx("b", []string{"x"}, nil)}
	order, aborted := Reorder(txs, ReorderNone)
	if len(aborted) != 0 || fmt.Sprint(order) != "[0 1]" {
		t.Fatalf("order=%v aborted=%v", order, aborted)
	}
}

func TestReorderSavesReader(t *testing.T) {
	// Agreed order: writer first, then reader → reader would abort under
	// MVCC. Reordering puts the reader first, saving both.
	txs := []*types.Transaction{
		rwTx("writer", nil, []string{"x"}),
		rwTx("reader", []string{"x"}, []string{"y"}),
	}
	order, aborted := Reorder(txs, ReorderFabricPP)
	if len(aborted) != 0 {
		t.Fatalf("aborted %v, want none", aborted)
	}
	// reader (index 1) must come before writer (index 0).
	if !(order[0] == 1 && order[1] == 0) {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

func TestReorderBreaksCycle(t *testing.T) {
	// tx0 reads a / writes b; tx1 reads b / writes a: a 2-cycle — someone
	// must abort, but only one of them.
	txs := []*types.Transaction{
		rwTx("0", []string{"a"}, []string{"b"}),
		rwTx("1", []string{"b"}, []string{"a"}),
	}
	for _, pol := range []ReorderPolicy{ReorderFabricPP, ReorderSharp} {
		order, aborted := Reorder(txs, pol)
		if len(aborted) != 1 {
			t.Fatalf("policy %v: aborted %d, want 1", pol, len(aborted))
		}
		if len(order) != 1 {
			t.Fatalf("policy %v: survivors %d", pol, len(order))
		}
	}
}

func TestSharpAbortsFewerThanPP(t *testing.T) {
	// A "star" of cycles through one hub: hub reads k1..k4 and writes h;
	// each spoke reads h and writes one ki. Every spoke forms a 2-cycle
	// with the hub. Minimum feedback vertex set = {hub} (1 abort); the
	// greedy max-degree heuristic also finds the hub here, so build a
	// harder case: two disjoint triangles plus one shared vertex chain
	// where greedy picks suboptimally is hard to force — instead verify
	// Sharp is never worse across a family of random-ish cyclic graphs.
	mk := func() []*types.Transaction {
		return []*types.Transaction{
			rwTx("hub", []string{"k1", "k2", "k3", "k4"}, []string{"h"}),
			rwTx("s1", []string{"h"}, []string{"k1"}),
			rwTx("s2", []string{"h"}, []string{"k2"}),
			rwTx("s3", []string{"h"}, []string{"k3"}),
			rwTx("s4", []string{"h"}, []string{"k4"}),
		}
	}
	_, abPP := Reorder(mk(), ReorderFabricPP)
	_, abSharp := Reorder(mk(), ReorderSharp)
	if len(abSharp) > len(abPP) {
		t.Fatalf("Sharp aborted %d > Fabric++ %d", len(abSharp), len(abPP))
	}
	if len(abSharp) != 1 {
		t.Fatalf("Sharp aborted %d, want 1 (the hub)", len(abSharp))
	}
}

func TestReorderedOrderIsSerializable(t *testing.T) {
	// Property: after reordering, walking the kept transactions in the
	// returned order, no transaction reads a key that an earlier kept
	// transaction wrote (i.e. all MVCC checks against the pre-block
	// snapshot succeed).
	cases := [][]*types.Transaction{
		{
			rwTx("0", nil, []string{"x"}),
			rwTx("1", []string{"x"}, []string{"y"}),
			rwTx("2", []string{"y"}, []string{"z"}),
		},
		{
			rwTx("0", []string{"a"}, []string{"b"}),
			rwTx("1", []string{"b"}, []string{"c"}),
			rwTx("2", []string{"c"}, []string{"a"}),
			rwTx("3", []string{"q"}, []string{"r"}),
		},
		{
			rwTx("0", []string{"k"}, []string{"k2"}),
			rwTx("1", []string{"k"}, []string{"k3"}),
			rwTx("2", []string{"k"}, []string{"k4"}),
		},
	}
	for ci, txs := range cases {
		for _, pol := range []ReorderPolicy{ReorderFabricPP, ReorderSharp} {
			order, aborted := Reorder(txs, pol)
			written := map[string]bool{}
			for _, idx := range order {
				if aborted[idx] {
					t.Fatalf("case %d: aborted tx in order", ci)
				}
				tx := txs[idx]
				for k := range tx.Reads {
					if written[k] {
						t.Fatalf("case %d policy %v: tx %s reads dirty key %s", ci, pol, tx.ID, k)
					}
				}
				for k := range tx.Writes {
					written[k] = true
				}
			}
			if len(order)+len(aborted) != len(txs) {
				t.Fatalf("case %d: %d ordered + %d aborted != %d", ci, len(order), len(aborted), len(txs))
			}
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Committed: 1, Aborted: 2, Failed: 3, Reexecuted: 4}
	b := Stats{Committed: 10, Aborted: 20, Failed: 30, Reexecuted: 40}
	a.Add(b)
	if a.Committed != 11 || a.Aborted != 22 || a.Failed != 33 || a.Reexecuted != 44 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Total() != 66 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestSimulateWorkZeroIsFree(t *testing.T) {
	SimulateWork(0) // must not panic or hang
	SimulateWork(3)
}

func TestReorderSerializabilityProperty(t *testing.T) {
	// Property: for any random block of transactions with random rw-sets,
	// both reorder policies emit an order in which no kept transaction
	// reads a key written by an earlier kept transaction, and they never
	// abort a transaction with no read conflicts at all.
	f := func(seed int64, nTx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTx%24) + 2
		keys := []string{"a", "b", "c", "d", "e", "f"}
		txs := make([]*types.Transaction, n)
		for i := range txs {
			tx := &types.Transaction{ID: fmt.Sprintf("t%d", i), Reads: types.ReadSet{}, Writes: types.WriteSet{}}
			for _, k := range keys {
				switch rng.Intn(4) {
				case 0:
					tx.Reads[k] = types.Version{}
				case 1:
					tx.Writes[k] = []byte("v")
				}
			}
			txs[i] = tx
		}
		for _, pol := range []ReorderPolicy{ReorderFabricPP, ReorderSharp} {
			order, aborted := Reorder(txs, pol)
			if len(order)+len(aborted) != n {
				return false
			}
			written := map[string]bool{}
			for _, idx := range order {
				if aborted[idx] {
					return false
				}
				for k := range txs[idx].Reads {
					if written[k] {
						return false
					}
				}
				for k := range txs[idx].Writes {
					written[k] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPath(t *testing.T) {
	// Independent txs: critical path = max single tx.
	free := []*types.Transaction{
		opTx("0", types.Op{Code: types.OpAdd, Key: "a"}),
		opTx("1", types.Op{Code: types.OpAdd, Key: "b"}),
		opTx("2", types.Op{Code: types.OpAdd, Key: "c"}, types.Op{Code: types.OpAdd, Key: "c2"}),
	}
	if got := CriticalPathOps(free); got != 2 {
		t.Fatalf("free critical path = %d, want 2", got)
	}
	if got := TotalOps(free); got != 4 {
		t.Fatalf("total ops = %d", got)
	}
	// A chain of conflicts: critical path = total.
	chain := []*types.Transaction{
		opTx("0", types.Op{Code: types.OpAdd, Key: "x"}),
		opTx("1", types.Op{Code: types.OpAdd, Key: "x"}),
		opTx("2", types.Op{Code: types.OpAdd, Key: "x"}),
	}
	if got := CriticalPathOps(chain); got != 3 {
		t.Fatalf("chained critical path = %d, want 3", got)
	}
	if CriticalPathOps(nil) != 0 {
		t.Fatal("empty critical path not 0")
	}
}
