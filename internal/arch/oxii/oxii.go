// Package oxii implements ParBlockchain's order-parallel-execute
// architecture (§2.3.3): orderers attach a dependency graph to each block
// — a partial order derived from the transactions' declared read/write
// sets — and executors run non-conflicting transactions in parallel while
// conflicting pairs respect the agreed order.
//
// Unlike XOV, conflicts are detected during ordering, so no transaction
// aborts for concurrency reasons: contended workloads lose parallelism,
// not work, which is the trade-off the tutorial's Discussion highlights.
package oxii

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/arch"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// Engine executes ordered blocks along their dependency graphs.
type Engine struct {
	store      *statedb.Store
	workFactor int
	workers    int
	obs        *obs.Obs
}

// SetObs attaches per-stage timing instrumentation (nil detaches).
func (e *Engine) SetObs(o *obs.Obs) { e.obs = o }

// New creates an OXII engine. workers <= 0 selects GOMAXPROCS.
func New(store *statedb.Store, workFactor, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{store: store, workFactor: workFactor, workers: workers}
}

// Store returns the engine's world state.
func (e *Engine) Store() *statedb.Store { return e.store }

// ExecuteBlock builds the dependency graph (the orderer's job in
// ParBlockchain) and executes the block with maximal parallelism.
func (e *Engine) ExecuteBlock(b *types.Block) arch.Stats {
	st, _ := e.ExecuteBlockStatus(b)
	return st
}

// ExecuteBlockStatus is ExecuteBlock plus a per-transaction outcome,
// indexed by block position — the input to commit receipts.
func (e *Engine) ExecuteBlockStatus(b *types.Block) (arch.Stats, []arch.TxStatus) {
	start := time.Now()
	g := arch.BuildDependencyGraph(b.Txs)
	e.obs.Observe("arch/oxii/graph_build", time.Since(start))
	return e.ExecuteWithGraphStatus(b, g)
}

// ExecuteWithGraph executes a block whose dependency graph was already
// computed (e.g. shipped with the block by the orderers).
func (e *Engine) ExecuteWithGraph(b *types.Block, g *arch.DependencyGraph) arch.Stats {
	st, _ := e.ExecuteWithGraphStatus(b, g)
	return st
}

// ExecuteWithGraphStatus is ExecuteWithGraph plus per-transaction
// outcomes. OXII never aborts for concurrency, so every status is either
// committed or failed.
//
// The scheduler is lock-free: in-degrees decrement atomically (the worker
// that drops a successor to zero enqueues it), completion is an atomic
// counter (the worker landing the final transaction closes done), and
// each worker accumulates its own Stats, merged once after wg.Wait —
// so transaction completion never serializes on a scheduler mutex.
func (e *Engine) ExecuteWithGraphStatus(b *types.Block, g *arch.DependencyGraph) (arch.Stats, []arch.TxStatus) {
	start := time.Now()
	defer func() { e.obs.Observe("arch/oxii/execute", time.Since(start)) }()
	n := len(b.Txs)
	if n == 0 {
		return arch.Stats{}, nil
	}
	// statuses[i] is written by exactly one worker (the one that executed
	// tx i) and read only after wg.Wait, so it needs no synchronization.
	statuses := make([]arch.TxStatus, n)

	indeg := make([]int32, n)
	for i, d := range g.InDeg {
		indeg[i] = int32(d)
	}

	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}

	var (
		completed atomic.Int64
		wg        sync.WaitGroup
	)
	done := make(chan struct{})

	workers := e.workers
	if workers > n {
		workers = n
	}
	perWorker := make([]arch.Stats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			sc := statedb.GetScratch()
			defer statedb.PutScratch(sc)
			for {
				select {
				case i := <-ready:
					tx := b.Txs[i]
					for range tx.Ops {
						arch.SimulateWork(e.workFactor)
					}
					_, _, err := e.store.ExecuteList(types.Version{Block: b.Header.Height, Tx: i}, tx.Ops, sc)
					if err != nil {
						st.Failed++
						statuses[i] = arch.TxFailed
					} else {
						st.Committed++
						statuses[i] = arch.TxCommitted
					}
					for _, j := range g.Succ[i] {
						if atomic.AddInt32(&indeg[j], -1) == 0 {
							ready <- j
						}
					}
					if completed.Add(1) == int64(n) {
						close(done)
					}
				case <-done:
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var st arch.Stats
	for w := range perWorker {
		st.Add(perWorker[w])
	}
	return st, statuses
}
