package oxii

import (
	"fmt"
	"math/rand"
	"testing"

	"permchain/internal/arch/ox"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

func addTx(id, key string, delta int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpAdd, Key: key, Delta: delta}}}
}

func transferTx(id, from, to string, amt int64) *types.Transaction {
	return &types.Transaction{ID: id, Ops: []types.Op{{Code: types.OpTransfer, Key: from, Key2: to, Delta: amt}}}
}

func TestParallelExecutionMatchesSerial(t *testing.T) {
	// The core OXII correctness property: executing a block along its
	// dependency graph produces exactly the state sequential execution
	// produces, for any mix of conflicting and independent transactions.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var txs []*types.Transaction
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(8)) // heavy contention
			txs = append(txs, addTx(fmt.Sprintf("t%d", i), key, int64(rng.Intn(10))))
		}
		block := types.NewBlock(1, types.ZeroHash, 0, txs)

		serialStore := statedb.New()
		serial := ox.New(serialStore, 0)
		sStats := serial.ExecuteBlock(block)

		parStore := statedb.New()
		par := New(parStore, 0, 8)
		pStats := par.ExecuteBlock(block)

		if sStats.Committed != pStats.Committed || sStats.Failed != pStats.Failed {
			t.Fatalf("trial %d: stats differ serial=%+v parallel=%+v", trial, sStats, pStats)
		}
		if serialStore.StateHash() != parStore.StateHash() {
			t.Fatalf("trial %d: state diverged between serial and parallel execution", trial)
		}
	}
}

func TestTransfersConserveUnderParallelism(t *testing.T) {
	store := statedb.New()
	for i := 0; i < 8; i++ {
		store.Apply(types.Version{Block: 1, Tx: i}, types.WriteSet{
			fmt.Sprintf("acct%d", i): statedb.EncodeInt(1000),
		})
	}
	rng := rand.New(rand.NewSource(5))
	var txs []*types.Transaction
	for i := 0; i < 200; i++ {
		a := rng.Intn(8)
		b := (a + 1 + rng.Intn(7)) % 8
		txs = append(txs, transferTx(fmt.Sprintf("t%d", i),
			fmt.Sprintf("acct%d", a), fmt.Sprintf("acct%d", b), int64(rng.Intn(50))))
	}
	block := types.NewBlock(2, types.ZeroHash, 0, txs)
	e := New(store, 0, 8)
	st := e.ExecuteBlock(block)
	if st.Committed+st.Failed != 200 {
		t.Fatalf("accounted %d/200", st.Committed+st.Failed)
	}
	total := int64(0)
	for i := 0; i < 8; i++ {
		n := store.GetInt(fmt.Sprintf("acct%d", i))
		if n < 0 {
			t.Fatalf("negative balance acct%d = %d", i, n)
		}
		total += n
	}
	if total != 8000 {
		t.Fatalf("total = %d, want 8000 (conservation)", total)
	}
}

func TestNoConflictsFullyParallel(t *testing.T) {
	store := statedb.New()
	var txs []*types.Transaction
	for i := 0; i < 50; i++ {
		txs = append(txs, addTx(fmt.Sprintf("t%d", i), fmt.Sprintf("k%d", i), 1))
	}
	block := types.NewBlock(1, types.ZeroHash, 0, txs)
	st := New(store, 0, 8).ExecuteBlock(block)
	if st.Committed != 50 {
		t.Fatalf("committed %d/50", st.Committed)
	}
	for i := 0; i < 50; i++ {
		if store.GetInt(fmt.Sprintf("k%d", i)) != 1 {
			t.Fatalf("k%d not written", i)
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	st := New(statedb.New(), 0, 4).ExecuteBlock(types.NewBlock(1, types.ZeroHash, 0, nil))
	if st.Total() != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFailedTxReleasesDependents(t *testing.T) {
	store := statedb.New()
	// tx0 fails (insufficient funds); tx1 depends on the same key and
	// must still execute.
	txs := []*types.Transaction{
		transferTx("t0", "poor", "rich", 100),
		addTx("t1", "poor", 5),
	}
	block := types.NewBlock(1, types.ZeroHash, 0, txs)
	st := New(store, 0, 2).ExecuteBlock(block)
	if st.Failed != 1 || st.Committed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if store.GetInt("poor") != 5 {
		t.Fatalf("poor = %d", store.GetInt("poor"))
	}
}
