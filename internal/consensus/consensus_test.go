package consensus

import (
	"testing"
	"time"

	"permchain/internal/crypto"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

func TestQuorumMath(t *testing.T) {
	cases := []struct {
		n, f, byzQ, maj int
	}{
		{4, 1, 3, 3},
		{7, 2, 5, 4},
		{10, 3, 7, 6},
		{3, 0, 1, 2},
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		cfg := Config{Nodes: make([]types.NodeID, c.n)}
		if cfg.N() != c.n {
			t.Errorf("n=%d: N=%d", c.n, cfg.N())
		}
		if got := cfg.MaxByzFaults(); got != c.f {
			t.Errorf("n=%d: f=%d, want %d", c.n, got, c.f)
		}
		if got := cfg.ByzQuorum(); got != c.byzQ {
			t.Errorf("n=%d: byzQ=%d, want %d", c.n, got, c.byzQ)
		}
		if got := cfg.Majority(); got != c.maj {
			t.Errorf("n=%d: maj=%d, want %d", c.n, got, c.maj)
		}
	}
}

func TestDefaulted(t *testing.T) {
	cfg := Config{}.Defaulted()
	if cfg.Timeout == 0 {
		t.Fatal("timeout not defaulted")
	}
	cfg2 := Config{Timeout: time.Second}.Defaulted()
	if cfg2.Timeout != time.Second {
		t.Fatal("explicit timeout overridden")
	}
}

func TestSignVerifyPart(t *testing.T) {
	keys := crypto.NewKeyring(2)
	cfg := Config{Self: 0, Nodes: []types.NodeID{0, 1}, Keys: keys}
	sig := cfg.SignPart([]byte("msg"), U64(7))
	if !cfg.VerifyPart(0, sig, []byte("msg"), U64(7)) {
		t.Fatal("valid signature rejected")
	}
	if cfg.VerifyPart(1, sig, []byte("msg"), U64(7)) {
		t.Fatal("wrong signer accepted")
	}
	if cfg.VerifyPart(0, sig, []byte("msg"), U64(8)) {
		t.Fatal("wrong content accepted")
	}
	// Disabled signatures: nil sig, always verifies.
	off := Config{Self: 0, Nodes: cfg.Nodes, Keys: keys, DisableSig: true}
	if off.SignPart([]byte("x")) != nil {
		t.Fatal("DisableSig still signed")
	}
	if !off.VerifyPart(1, nil, []byte("anything")) {
		t.Fatal("DisableSig verify failed")
	}
}

func TestU64(t *testing.T) {
	a := U64(1)
	b := U64(256)
	if len(a) != 8 || len(b) != 8 {
		t.Fatal("wrong length")
	}
	if string(a) == string(b) {
		t.Fatal("distinct values encode equal")
	}
}

func TestQuorumTracker(t *testing.T) {
	d := types.HashBytes([]byte("a"))
	q := NewQuorumTracker()
	if q.Add("k", 1, d) != 1 {
		t.Fatal("first vote != 1")
	}
	if q.Add("k", 1, d) != 1 {
		t.Fatal("duplicate voter counted twice")
	}
	if q.Add("k", 2, d) != 2 {
		t.Fatal("second voter != 2")
	}
	if q.Count("k", d) != 2 || q.Count("other", d) != 0 {
		t.Fatal("Count wrong")
	}
	q.Forget("k")
	if q.Count("k", d) != 0 {
		t.Fatal("Forget did not clear")
	}
}

// TestQuorumTrackerEquivocation is the regression test for the equivocation
// hole: a voter's second vote at the same key with a different digest used
// to count toward a second quorum. The first vote must win and the
// conflicting digest's count must not advance.
func TestQuorumTrackerEquivocation(t *testing.T) {
	da := types.HashBytes([]byte("a"))
	db := types.HashBytes([]byte("b"))
	q := NewQuorumTracker()
	if q.Add("7:1", 1, da) != 1 {
		t.Fatal("first vote != 1")
	}
	// Equivocating vote: same voter, same key, different digest.
	if got := q.Add("7:1", 1, db); got != 0 {
		t.Fatalf("equivocating vote counted: count for b = %d, want 0", got)
	}
	if q.Count("7:1", da) != 1 || q.Count("7:1", db) != 0 {
		t.Fatalf("counts after equivocation: a=%d b=%d, want 1/0",
			q.Count("7:1", da), q.Count("7:1", db))
	}
	// Honest voters for b still accumulate independently.
	if q.Add("7:1", 2, db) != 1 || q.Add("7:1", 3, db) != 2 {
		t.Fatal("honest votes for the second digest mis-counted")
	}
	// The equivocator still can't join b's quorum later.
	if got := q.Add("7:1", 1, db); got != 2 {
		t.Fatalf("late equivocation advanced the count: %d", got)
	}
	// A different key is a fresh slate.
	if q.Add("8:1", 1, db) != 1 {
		t.Fatal("same voter at a new key rejected")
	}
}

func TestVoteKeySet(t *testing.T) {
	cfg := Config{Nodes: []types.NodeID{0, 1, 2, 3}, AggregateVotes: true}
	k := cfg.VoteKeySet()
	if k == nil {
		t.Fatal("VoteKeySet returned nil in signed mode")
	}
	// Shared key set is passed through.
	shared := quorumcert.NewKeys()
	cfg.VoteKeys = shared
	if cfg.VoteKeySet() != shared {
		t.Fatal("shared VoteKeys not used")
	}
	// DisableSig degrades to unsigned certificates.
	cfg.DisableSig = true
	if cfg.VoteKeySet() != nil {
		t.Fatal("VoteKeySet not nil under DisableSig")
	}
}

// TestByzQuorumOverrideAggregationThreshold pins the satellite requirement:
// the quorum override must flow into the certificate's required-signer
// count. A cert with 2f+1 signers passes the default threshold but fails
// once the override demands more.
func TestByzQuorumOverrideAggregationThreshold(t *testing.T) {
	nodes := []types.NodeID{0, 1, 2, 3}
	keys := quorumcert.NewKeys()
	st := quorumcert.Statement{Domain: "test/prep", View: 1, Seq: 1, Digest: types.HashBytes([]byte("v"))}

	base := Config{Nodes: nodes, AggregateVotes: true, VoteKeys: keys}
	agg := quorumcert.NewAggregator(keys, nodes, base.ByzQuorum(), st)
	for _, id := range nodes[:base.ByzQuorum()] {
		if _, err := agg.Add(keys.Sign(id, st)); err != nil {
			t.Fatal(err)
		}
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(keys, nodes, base.ByzQuorum()); err != nil {
		t.Fatalf("cert rejected at default quorum: %v", err)
	}

	// Override raises the bar to all four signers: the 3-signer cert must
	// no longer satisfy the cluster's threshold.
	strict := Config{Nodes: nodes, AggregateVotes: true, VoteKeys: keys, ByzQuorumOverride: 4}
	if strict.ByzQuorum() != 4 {
		t.Fatalf("override quorum = %d", strict.ByzQuorum())
	}
	if err := cert.Verify(keys, nodes, strict.ByzQuorum()); err == nil {
		t.Fatal("3-signer cert accepted at overridden threshold 4")
	}
	// An aggregator built from the overridden config withholds the cert
	// until the raised threshold is met.
	agg2 := quorumcert.NewAggregator(keys, nodes, strict.ByzQuorum(), st)
	for _, id := range nodes[:3] {
		if _, err := agg2.Add(keys.Sign(id, st)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := agg2.Cert(); err == nil {
		t.Fatal("aggregator emitted a cert below the overridden threshold")
	}
	if _, err := agg2.Add(keys.Sign(nodes[3], st)); err != nil {
		t.Fatal(err)
	}
	if _, err := agg2.Cert(); err != nil {
		t.Fatalf("cert withheld at overridden threshold: %v", err)
	}
}

func TestLoopTimer(t *testing.T) {
	lt := NewLoopTimer()
	lt.Reset(20 * time.Millisecond)
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	// Stop prevents firing.
	lt.Reset(30 * time.Millisecond)
	lt.Stop()
	select {
	case <-lt.C():
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	// Reset supersedes an earlier arm.
	lt.Reset(5 * time.Millisecond)
	lt.Reset(80 * time.Millisecond)
	start := time.Now()
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("superseded arm fired early")
	}
}

func TestWaitDecisions(t *testing.T) {
	ch := make(chan Decision, 4)
	ch <- Decision{Seq: 1}
	ch <- Decision{Seq: 2}
	got := WaitDecisions(ch, 2, time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	// Timeout path returns partial results.
	got = WaitDecisions(ch, 3, 50*time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("partial = %d", len(got))
	}
}
