package consensus

import (
	"testing"
	"time"

	"permchain/internal/crypto"
	"permchain/internal/types"
)

func TestQuorumMath(t *testing.T) {
	cases := []struct {
		n, f, byzQ, maj int
	}{
		{4, 1, 3, 3},
		{7, 2, 5, 4},
		{10, 3, 7, 6},
		{3, 0, 1, 2},
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		cfg := Config{Nodes: make([]types.NodeID, c.n)}
		if cfg.N() != c.n {
			t.Errorf("n=%d: N=%d", c.n, cfg.N())
		}
		if got := cfg.MaxByzFaults(); got != c.f {
			t.Errorf("n=%d: f=%d, want %d", c.n, got, c.f)
		}
		if got := cfg.ByzQuorum(); got != c.byzQ {
			t.Errorf("n=%d: byzQ=%d, want %d", c.n, got, c.byzQ)
		}
		if got := cfg.Majority(); got != c.maj {
			t.Errorf("n=%d: maj=%d, want %d", c.n, got, c.maj)
		}
	}
}

func TestDefaulted(t *testing.T) {
	cfg := Config{}.Defaulted()
	if cfg.Timeout == 0 {
		t.Fatal("timeout not defaulted")
	}
	cfg2 := Config{Timeout: time.Second}.Defaulted()
	if cfg2.Timeout != time.Second {
		t.Fatal("explicit timeout overridden")
	}
}

func TestSignVerifyPart(t *testing.T) {
	keys := crypto.NewKeyring(2)
	cfg := Config{Self: 0, Nodes: []types.NodeID{0, 1}, Keys: keys}
	sig := cfg.SignPart([]byte("msg"), U64(7))
	if !cfg.VerifyPart(0, sig, []byte("msg"), U64(7)) {
		t.Fatal("valid signature rejected")
	}
	if cfg.VerifyPart(1, sig, []byte("msg"), U64(7)) {
		t.Fatal("wrong signer accepted")
	}
	if cfg.VerifyPart(0, sig, []byte("msg"), U64(8)) {
		t.Fatal("wrong content accepted")
	}
	// Disabled signatures: nil sig, always verifies.
	off := Config{Self: 0, Nodes: cfg.Nodes, Keys: keys, DisableSig: true}
	if off.SignPart([]byte("x")) != nil {
		t.Fatal("DisableSig still signed")
	}
	if !off.VerifyPart(1, nil, []byte("anything")) {
		t.Fatal("DisableSig verify failed")
	}
}

func TestU64(t *testing.T) {
	a := U64(1)
	b := U64(256)
	if len(a) != 8 || len(b) != 8 {
		t.Fatal("wrong length")
	}
	if string(a) == string(b) {
		t.Fatal("distinct values encode equal")
	}
}

func TestQuorumTracker(t *testing.T) {
	q := NewQuorumTracker()
	if q.Add("k", 1) != 1 {
		t.Fatal("first vote != 1")
	}
	if q.Add("k", 1) != 1 {
		t.Fatal("duplicate voter counted twice")
	}
	if q.Add("k", 2) != 2 {
		t.Fatal("second voter != 2")
	}
	if q.Count("k") != 2 || q.Count("other") != 0 {
		t.Fatal("Count wrong")
	}
	q.Forget("k")
	if q.Count("k") != 0 {
		t.Fatal("Forget did not clear")
	}
}

func TestLoopTimer(t *testing.T) {
	lt := NewLoopTimer()
	lt.Reset(20 * time.Millisecond)
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	// Stop prevents firing.
	lt.Reset(30 * time.Millisecond)
	lt.Stop()
	select {
	case <-lt.C():
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	// Reset supersedes an earlier arm.
	lt.Reset(5 * time.Millisecond)
	lt.Reset(80 * time.Millisecond)
	start := time.Now()
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("superseded arm fired early")
	}
}

func TestWaitDecisions(t *testing.T) {
	ch := make(chan Decision, 4)
	ch <- Decision{Seq: 1}
	ch <- Decision{Seq: 2}
	got := WaitDecisions(ch, 2, time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	// Timeout path returns partial results.
	got = WaitDecisions(ch, 3, 50*time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("partial = %d", len(got))
	}
}
