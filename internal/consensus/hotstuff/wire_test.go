package hotstuff

import (
	"math/big"
	"reflect"
	"testing"

	"permchain/internal/quorumcert"
	"permchain/internal/types"
	"permchain/internal/wire"
)

func sampleQC() qc {
	return qc{
		View:    2,
		Block:   types.HashBytes([]byte("b")),
		Signers: []types.NodeID{0, 1, 2},
		Sigs:    [][]byte{[]byte("s0"), []byte("s1"), []byte("s2")},
	}
}

// TestWireRoundTrip pushes one populated instance of every hotstuff
// message through the generic frame dispatch.
func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("req"))
	blk := block{
		View:    3,
		Parent:  types.HashBytes([]byte("parent")),
		Justify: sampleQC(),
		Reqs:    []request{{Digest: dig, Value: "payload"}},
	}
	aggQC := sampleQC()
	aggQC.Signers, aggQC.Sigs = nil, nil
	aggQC.Agg = &quorumcert.QuorumCert{
		Statement: quorumcert.Statement{Domain: msgVote, View: 2, Seq: 0, Digest: aggQC.Block},
		Bitmap:    []uint64{0b111}, R: big.NewInt(3), S: big.NewInt(4),
	}
	msgs := []any{
		request{Digest: dig, Value: "payload"},
		proposalMsg{Block: blk, Sig: []byte("p")},
		voteMsg{View: 3, Block: blk.Parent, Sig: []byte("v"),
			Part: quorumcert.Partial{Signer: 1, R: big.NewInt(9), S: big.NewInt(10)}},
		newViewMsg{View: 4, HighQC: aggQC},
		fetchMsg{Block: blk.Parent},
		fetchReply{Block: blk},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}

// TestVoteWireAllocsFree is an acceptance gate: steady-state encode and
// decode (into a recycled value) of a hotstuff vote — including its
// aggregate-mode signature share — must not allocate.
func TestVoteWireAllocsFree(t *testing.T) {
	v := voteMsg{
		View:  9,
		Block: types.HashBytes([]byte("blk")),
		Sig:   []byte("sig"),
		Part:  quorumcert.Partial{Signer: 2, R: big.NewInt(1 << 40), S: big.NewInt(1 << 41)},
	}
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	voteCodec.EncodeFrame(e, &v) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		voteCodec.EncodeFrame(e, &v)
	})
	if allocs != 0 {
		t.Fatalf("steady-state vote encode allocates %.1f/op, want 0", allocs)
	}
	frame := append([]byte(nil), e.Frame()...)
	var scratch voteMsg
	if err := voteCodec.DecodeFrameInto(frame, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := voteCodec.DecodeFrameInto(frame, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state vote decode allocates %.1f/op, want 0", allocs)
	}
	if !reflect.DeepEqual(scratch, v) {
		t.Fatalf("decoded vote diverged: %#v", scratch)
	}
}
