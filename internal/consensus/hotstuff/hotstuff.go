// Package hotstuff implements chained HotStuff (Yin et al., PODC'19), the
// linear-communication BFT protocol the tutorial lists among the modern
// ordering options (§2.3.3). Replicas vote to the *next* leader instead
// of all-to-all, so each view costs O(n) messages; a block commits when it
// heads a three-chain of quorum certificates over consecutive views.
//
// Liveness caveat, inherent to chained HotStuff with round-robin
// rotation: committing requires four consecutive leader slots to be
// correct (the proposer and the three leaders that collect the chain's
// QCs). A permanently silent replica in an n=4 cluster occupies every
// fourth slot, so nothing commits; n >= 5 restores liveness. Production
// systems use leader reputation to exclude such replicas instead.
package hotstuff

import (
	"sync"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

const (
	msgProposal   = "hs/proposal"
	msgVote       = "hs/vote"
	msgNewView    = "hs/newview"
	msgRequest    = "hs/request"
	msgFetch      = "hs/fetch"
	msgFetchReply = "hs/fetchreply"
)

type request struct {
	Digest types.Hash
	Value  any
}

// qc is a quorum certificate: 2f+1 replica votes on one block at one view.
// In counted mode it carries one signature per signer; in aggregate mode
// (consensus.Config.AggregateVotes) Agg holds a constant-size Schnorr
// certificate instead and Signers/Sigs stay empty.
type qc struct {
	View    uint64
	Block   types.Hash
	Signers []types.NodeID
	Sigs    [][]byte
	Agg     *quorumcert.QuorumCert
}

// block is one node in the HotStuff block tree.
type block struct {
	View    uint64
	Parent  types.Hash
	Justify qc
	Reqs    []request
}

func (b *block) hash() types.Hash {
	parts := [][]byte{consensus.U64(b.View), b.Parent[:], b.Justify.Block[:], consensus.U64(b.Justify.View)}
	for _, r := range b.Reqs {
		r := r
		parts = append(parts, r.Digest[:])
	}
	return types.HashConcat(parts...)
}

type proposalMsg struct {
	Block block
	Sig   []byte
}

type voteMsg struct {
	View  uint64
	Block types.Hash
	Sig   []byte
	// Part replaces Sig in aggregate mode: the Schnorr signature share the
	// next leader folds into a QuorumCert.
	Part quorumcert.Partial
}

type newViewMsg struct {
	View   uint64
	HighQC qc
}

// fetchMsg asks peers for a block by hash: a restarted or long-partitioned
// replica rebuilds the ancestor path of the current branch this way so it
// can re-execute from genesis.
type fetchMsg struct {
	Block types.Hash
}

// fetchReply carries the requested block. Blocks are content-addressed, so
// a reply is self-certifying: it is stored under the hash of what was
// actually received, and a forged body simply lands under a hash nobody
// references.
type fetchReply struct {
	Block block
}

// Replica is one HotStuff node.
type Replica struct {
	cfg consensus.Config
	ep  *network.Endpoint

	decCh    chan consensus.Decision
	submitCh chan request
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Event-loop state.
	curView    uint64
	votedView  uint64
	blocks     map[types.Hash]*block
	genesis    types.Hash
	highQC     qc
	lockedQC   qc
	lastExec   types.Hash
	execSeq    uint64
	votes      map[types.Hash]map[types.NodeID][]byte // block → votes (as next leader)
	newViews   map[uint64]map[types.NodeID]qc
	pending    []request
	pendSet    map[types.Hash]bool
	committed  map[types.Hash]bool // request digests already executed
	proposedIn map[types.Hash]bool // request digests in the active branch
	fetching   map[types.Hash]bool // ancestor fetches in flight
	tip        types.Hash          // most recently accepted proposal, for re-running chain rules
	timer      *consensus.LoopTimer

	// Aggregate-vote mode (cfg.AggregateVotes): voteKeys is the cluster's
	// Schnorr key set (nil under DisableSig — certs carry bitmaps only),
	// aggs holds this replica's in-progress aggregations as next leader,
	// and batcher (cfg.BatchVotes) coalesces outbound votes per peer.
	aggMode  bool
	voteKeys *quorumcert.Keys
	aggs     map[types.Hash]*quorumcert.Aggregator
	batcher  *network.VoteBatcher
}

// New creates a HotStuff replica. Call Start to launch it.
func New(cfg consensus.Config) *Replica {
	cfg = cfg.Defaulted()
	g := &block{View: 0}
	r := &Replica{
		cfg:        cfg,
		ep:         cfg.Net.Join(cfg.Self),
		decCh:      make(chan consensus.Decision, 65536),
		submitCh:   make(chan request, 65536),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
		curView:    1,
		blocks:     map[types.Hash]*block{},
		votes:      map[types.Hash]map[types.NodeID][]byte{},
		newViews:   map[uint64]map[types.NodeID]qc{},
		pendSet:    map[types.Hash]bool{},
		committed:  map[types.Hash]bool{},
		proposedIn: map[types.Hash]bool{},
		fetching:   map[types.Hash]bool{},
		timer:      consensus.NewLoopTimer(),
	}
	gh := g.hash()
	r.genesis = gh
	r.blocks[gh] = g
	r.highQC = qc{View: 0, Block: gh}
	r.lockedQC = r.highQC
	r.lastExec = gh
	if cfg.AggregateVotes {
		r.aggMode = true
		r.voteKeys = cfg.VoteKeySet()
		r.aggs = map[types.Hash]*quorumcert.Aggregator{}
	}
	if cfg.BatchVotes {
		r.batcher = network.NewVoteBatcher(r.ep, network.VoteBatcherConfig{Obs: cfg.Obs})
	}
	return r
}

// voteStatement is what an aggregate-mode vote signs: the vote phase plus
// the (view, block-hash) coordinates. HotStuff has no per-slot sequence
// dimension, so Seq stays zero.
func (r *Replica) voteStatement(view uint64, bh types.Hash) quorumcert.Statement {
	return quorumcert.Statement{Domain: msgVote, View: view, Digest: bh}
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- request{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

func (r *Replica) leader(view uint64) types.NodeID {
	return r.cfg.Nodes[int(view%uint64(len(r.cfg.Nodes)))]
}

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	if r.batcher != nil {
		defer r.batcher.Stop()
	}
	for {
		select {
		case <-r.stopCh:
			return
		case req := <-r.submitCh:
			r.onSubmit(req)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		}
	}
}

func (r *Replica) onSubmit(req request) {
	r.ep.Multicast(r.cfg.Nodes, msgRequest, req)
	r.onRequest(req)
}

func (r *Replica) onRequest(req request) {
	if r.committed[req.Digest] || r.pendSet[req.Digest] {
		return
	}
	r.pendSet[req.Digest] = true
	r.pending = append(r.pending, req)
	r.timer.Reset(r.cfg.Timeout)
	if r.leader(r.curView) == r.cfg.Self {
		r.propose()
	}
}

// hasWork reports whether the chain must keep advancing: pending requests
// exist, or committed requests are still buried in an unfinished 3-chain.
func (r *Replica) hasWork() bool {
	if len(r.pending) > 0 {
		return true
	}
	// Walk the active branch from highQC down to lastExec looking for any
	// request not yet executed.
	cur := r.highQC.Block
	for cur != r.lastExec {
		b, ok := r.blocks[cur]
		if !ok {
			break
		}
		if len(b.Reqs) > 0 {
			return true
		}
		cur = b.Parent
	}
	return false
}

// propose creates a block extending highQC and broadcasts it. Called on
// the current leader when it has a fresh QC or a new-view quorum.
func (r *Replica) propose() {
	var reqs []request
	var rest []request
	for _, req := range r.pending {
		if r.committed[req.Digest] || r.proposedIn[req.Digest] {
			if !r.proposedIn[req.Digest] {
				delete(r.pendSet, req.Digest)
				continue
			}
			rest = append(rest, req)
			continue
		}
		reqs = append(reqs, req)
	}
	r.pending = rest
	for _, req := range reqs {
		delete(r.pendSet, req.Digest)
	}
	if len(reqs) == 0 && !r.hasWork() {
		return // nothing to drive; stay quiet
	}
	b := block{View: r.curView, Parent: r.highQC.Block, Justify: r.highQC, Reqs: reqs}
	bh := b.hash()
	p := proposalMsg{
		Block: b,
		Sig:   r.cfg.SignPart([]byte(msgProposal), consensus.U64(b.View), bh[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgProposal, p)
	r.onProposal(r.cfg.Self, p)
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case network.MsgVoteBatch:
		for _, inner := range network.Unbatch(m) {
			r.onMessage(inner)
		}
	case msgRequest:
		req, ok := m.Payload.(request)
		if !ok {
			return
		}
		r.onRequest(req)
	case msgProposal:
		p, ok := m.Payload.(proposalMsg)
		if !ok {
			return
		}
		bh := p.Block.hash()
		if !r.cfg.VerifyPart(m.From, p.Sig, []byte(msgProposal), consensus.U64(p.Block.View), bh[:]) {
			return
		}
		r.onProposal(m.From, p)
	case msgVote:
		v, ok := m.Payload.(voteMsg)
		if !ok {
			return
		}
		// In aggregate mode the Schnorr partial authenticates the vote
		// (checked by the aggregator); counted mode checks the ed25519
		// message signature here.
		if !r.aggMode && !r.cfg.VerifyPart(m.From, v.Sig, []byte(msgVote), consensus.U64(v.View), v.Block[:]) {
			return
		}
		r.onVote(m.From, v)
	case msgNewView:
		nv, ok := m.Payload.(newViewMsg)
		if !ok {
			return
		}
		r.onNewView(m.From, nv)
	case msgFetch:
		f, ok := m.Payload.(fetchMsg)
		if !ok {
			return
		}
		if b, ok := r.blocks[f.Block]; ok {
			r.ep.Send(m.From, msgFetchReply, fetchReply{Block: *b})
		}
	case msgFetchReply:
		fr, ok := m.Payload.(fetchReply)
		if !ok {
			return
		}
		r.onFetchReply(fr)
	}
}

// ensureAncestors walks b's parent chain toward genesis and requests the
// first missing link. Replies re-enter here, so the whole path is restored
// link by link.
func (r *Replica) ensureAncestors(b *block) {
	cur := b.Parent
	for i := 0; i < len(r.blocks)+2; i++ {
		if cur == r.genesis {
			return
		}
		nb, ok := r.blocks[cur]
		if !ok {
			if !r.fetching[cur] {
				r.fetching[cur] = true
				r.cfg.Obs.Inc("hotstuff/fetches")
				r.ep.Multicast(r.cfg.Nodes, msgFetch, fetchMsg{Block: cur})
			}
			return
		}
		cur = nb.Parent
	}
}

func (r *Replica) onFetchReply(fr fetchReply) {
	b := fr.Block
	bh := b.hash()
	// Only accept blocks we asked for: the hash check makes the body
	// authentic (content addressing), the fetching check bounds memory.
	if !r.fetching[bh] {
		return
	}
	delete(r.fetching, bh)
	if _, ok := r.blocks[bh]; !ok {
		cp := b
		r.blocks[bh] = &cp
	}
	r.ensureAncestors(&b)
	// Each recovered link may complete the path below an already-seen
	// three-chain: re-run the commit rules from the latest proposal.
	if tip, ok := r.blocks[r.tip]; ok {
		r.applyChainRules(tip)
	}
}

// verifyQC checks a certificate's signatures and quorum size. The genesis
// QC (view 0) is axiomatic. An aggregate certificate verifies in one group
// equation against the bitmap's combined public key; the counted path below
// stays as the fallback (a cluster not running in aggregate mode rejects
// aggregate QCs outright — its quorum evidence is per-signer signatures).
func (r *Replica) verifyQC(c qc) bool {
	if c.View == 0 {
		return c.Block == r.genesis
	}
	if c.Agg != nil {
		if !r.aggMode || c.Agg.Statement != r.voteStatement(c.View, c.Block) {
			return false
		}
		if err := c.Agg.Verify(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum()); err != nil {
			r.cfg.Obs.Inc("quorumcert/cert_verify_failures")
			return false
		}
		r.cfg.Obs.Inc("quorumcert/certs_verified")
		return true
	}
	if len(c.Signers) < r.cfg.ByzQuorum() || len(c.Signers) != len(c.Sigs) {
		return false
	}
	seen := map[types.NodeID]bool{}
	for i, id := range c.Signers {
		if seen[id] {
			return false
		}
		seen[id] = true
		if !r.cfg.VerifyPart(id, c.Sigs[i], []byte(msgVote), consensus.U64(c.View), c.Block[:]) {
			return false
		}
	}
	return true
}

func (r *Replica) updateHighQC(c qc) {
	if c.View > r.highQC.View && r.verifyQC(c) {
		r.highQC = c
	}
}

func (r *Replica) onProposal(from types.NodeID, p proposalMsg) {
	b := p.Block
	if from != r.leader(b.View) {
		return
	}
	if !r.verifyQC(b.Justify) {
		return
	}
	bh := b.hash()
	if _, ok := r.blocks[bh]; !ok {
		cp := b
		r.blocks[bh] = &cp
	}
	for _, req := range b.Reqs {
		r.proposedIn[req.Digest] = true
		r.cfg.Obs.Mark(req.Digest, 0, obs.PhasePropose)
	}
	r.tip = bh
	r.updateHighQC(b.Justify)
	r.ensureAncestors(&b)
	r.applyChainRules(&b)

	// Safety rule: vote once per view, for blocks extending the locked
	// block or justified above the lock.
	if b.View <= r.votedView {
		return
	}
	safe := r.extends(bh, r.lockedQC.Block) || b.Justify.View > r.lockedQC.View
	if !safe {
		return
	}
	r.votedView = b.View
	if b.View >= r.curView {
		r.curView = b.View + 1
		r.timer.Reset(r.cfg.Timeout)
	}
	v := voteMsg{View: b.View, Block: bh}
	if r.aggMode {
		v.Part = r.voteKeys.Sign(r.cfg.Self, r.voteStatement(b.View, bh))
	} else {
		v.Sig = r.cfg.SignPart([]byte(msgVote), consensus.U64(b.View), bh[:])
	}
	next := r.leader(b.View + 1)
	switch {
	case next == r.cfg.Self:
		r.onVote(r.cfg.Self, v)
	case r.batcher != nil:
		r.batcher.Enqueue(next, msgVote, v)
	default:
		r.ep.Send(next, msgVote, v)
	}
}

// extends reports whether anc is on desc's ancestor path.
func (r *Replica) extends(desc, anc types.Hash) bool {
	cur := desc
	for i := 0; i < len(r.blocks)+1; i++ {
		if cur == anc {
			return true
		}
		b, ok := r.blocks[cur]
		if !ok || cur == r.genesis {
			return false
		}
		cur = b.Parent
	}
	return false
}

// applyChainRules walks the justify links of a new block: a one-chain
// updates highQC (done by caller), a two-chain locks, a three-chain over
// consecutive views commits.
func (r *Replica) applyChainRules(b *block) {
	b1, ok := r.blocks[b.Justify.Block]
	if !ok {
		return
	}
	b2, ok := r.blocks[b1.Justify.Block]
	if !ok {
		return
	}
	// Two-chain: lock b2.
	if b1.Justify.View > r.lockedQC.View {
		r.lockedQC = b1.Justify
		for _, req := range b2.Reqs {
			r.cfg.Obs.Mark(req.Digest, 0, obs.PhasePreCommit)
		}
	}
	b3, ok := r.blocks[b2.Justify.Block]
	if !ok {
		return
	}
	// Three-chain over consecutive views commits b3.
	if b1.View == b2.View+1 && b2.View == b3.View+1 {
		r.execute(b2.Justify.Block)
	}
}

// execute commits every block from lastExec (exclusive) up to target.
func (r *Replica) execute(target types.Hash) {
	if target == r.lastExec || !r.extends(target, r.lastExec) {
		return
	}
	// Collect path target → lastExec, then execute in reverse.
	var path []*block
	cur := target
	for cur != r.lastExec {
		b, ok := r.blocks[cur]
		if !ok {
			return
		}
		path = append(path, b)
		cur = b.Parent
	}
	for i := len(path) - 1; i >= 0; i-- {
		for _, req := range path[i].Reqs {
			if r.committed[req.Digest] {
				continue
			}
			r.committed[req.Digest] = true
			delete(r.proposedIn, req.Digest)
			r.execSeq++
			r.cfg.Obs.MarkLatency("hotstuff/commit_latency", req.Digest, r.execSeq, obs.PhasePropose, obs.PhaseCommit)
			r.cfg.Obs.Mark(req.Digest, r.execSeq, obs.PhaseApply)
			r.cfg.Obs.Inc("hotstuff/decisions")
			r.decCh <- consensus.Decision{Seq: r.execSeq, Digest: req.Digest, Value: req.Value, Node: r.cfg.Self}
		}
	}
	r.lastExec = target
	if !r.hasWork() {
		r.timer.Stop()
	}
}

func (r *Replica) onVote(from types.NodeID, v voteMsg) {
	// Collected by the leader of view v.View+1.
	if r.leader(v.View+1) != r.cfg.Self {
		return
	}
	if r.aggMode {
		r.onVoteAggregate(from, v)
		return
	}
	m, ok := r.votes[v.Block]
	if !ok {
		m = map[types.NodeID][]byte{}
		r.votes[v.Block] = m
	}
	if _, dup := m[from]; dup {
		return
	}
	m[from] = v.Sig
	if len(m) != r.cfg.ByzQuorum() {
		return
	}
	// Fresh QC: adopt and propose the next block in the chain.
	c := qc{View: v.View, Block: v.Block}
	for id, sig := range m {
		c.Signers = append(c.Signers, id)
		c.Sigs = append(c.Sigs, sig)
	}
	r.updateHighQC(c)
	if r.curView < v.View+1 {
		r.curView = v.View + 1
	}
	r.propose()
}

// onVoteAggregate folds one vote's signature share into the per-block
// aggregator and, at exactly the quorum threshold, broadcasts the next
// proposal justified by the resulting constant-size certificate.
func (r *Replica) onVoteAggregate(from types.NodeID, v voteMsg) {
	if v.Part.Signer != from {
		return // a replica may only contribute its own share
	}
	agg := r.aggs[v.Block]
	if agg == nil || agg.Statement().View != v.View {
		agg = quorumcert.NewAggregator(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum(),
			r.voteStatement(v.View, v.Block))
		r.aggs[v.Block] = agg
	}
	n, err := agg.Add(v.Part)
	if err != nil {
		r.cfg.Obs.Inc("quorumcert/partials_rejected")
		return
	}
	r.cfg.Obs.Inc("quorumcert/partials")
	if n != r.cfg.ByzQuorum() {
		return
	}
	cert, err := agg.Cert()
	if err != nil {
		return
	}
	r.cfg.Obs.Inc("quorumcert/certs_built")
	r.updateHighQC(qc{View: v.View, Block: v.Block, Agg: cert})
	if r.curView < v.View+1 {
		r.curView = v.View + 1
	}
	r.propose()
}

func (r *Replica) onNewView(from types.NodeID, nv newViewMsg) {
	r.updateHighQC(nv.HighQC)
	if r.leader(nv.View) != r.cfg.Self {
		return
	}
	m, ok := r.newViews[nv.View]
	if !ok {
		m = map[types.NodeID]qc{}
		r.newViews[nv.View] = m
	}
	m[from] = nv.HighQC
	if len(m) != r.cfg.ByzQuorum() {
		return
	}
	if r.curView < nv.View {
		r.curView = nv.View
	}
	r.propose()
}

func (r *Replica) onTimeout() {
	// A timeout means in-flight blocks may be lost: forget which requests
	// were "already proposed" so they can be proposed again. Re-proposal
	// is safe — execution deduplicates by digest. Ancestor fetches whose
	// replies were lost are likewise forgotten so they can be re-asked.
	r.proposedIn = map[types.Hash]bool{}
	r.fetching = map[types.Hash]bool{}
	if !r.hasWork() && len(r.pendSet) == 0 {
		return
	}
	r.curView++
	r.cfg.Obs.Inc("hotstuff/new_views")
	r.cfg.Obs.SetGauge("hotstuff/view", int64(r.curView))
	r.cfg.Obs.NoteViewChange()
	r.cfg.Obs.Logger("hotstuff").Warn("new view",
		"node", int(r.cfg.Self), "view", r.curView)
	r.timer.Reset(r.cfg.Timeout)
	nv := newViewMsg{View: r.curView, HighQC: r.highQC}
	if r.leader(r.curView) == r.cfg.Self {
		r.onNewView(r.cfg.Self, nv)
	} else {
		r.ep.Send(r.leader(r.curView), msgNewView, nv)
	}
}
