package hotstuff

import (
	"permchain/internal/quorumcert"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// Frame codecs for every hotstuff message (wire tags 80–95). qc and
// block never travel alone — they nest inside proposals, new-views and
// fetch replies via the put/get helpers below.
var (
	requestCodec    = wire.Register[request](80, putRequest, getRequest)
	proposalCodec   = wire.Register[proposalMsg](81, putProposal, getProposal)
	voteCodec       = wire.Register[voteMsg](82, putVote, getVote)
	newViewCodec    = wire.Register[newViewMsg](83, putNewView, getNewView)
	fetchCodec      = wire.Register[fetchMsg](84, putFetch, getFetch)
	fetchReplyCodec = wire.Register[fetchReply](85, putFetchReply, getFetchReply)
)

func init() {
	wire.Intern(msgProposal, msgVote, msgNewView, msgRequest, msgFetch, msgFetchReply)
}

func putRequest(e *wire.Encoder, m *request) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getRequest(d *wire.Decoder, m *request) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putQC(e *wire.Encoder, q *qc) {
	e.U64(q.View)
	e.Hash(q.Block)
	e.U32(uint32(len(q.Signers)))
	for _, s := range q.Signers {
		e.I64(int64(s))
	}
	e.U32(uint32(len(q.Sigs)))
	for _, s := range q.Sigs {
		e.Bytes(s)
	}
	if q.Agg == nil {
		e.U8(0)
	} else {
		e.U8(1)
		quorumcert.PutCert(e, q.Agg)
	}
}

func getQC(d *wire.Decoder, q *qc) {
	q.View = d.U64()
	q.Block = d.Hash()
	n := d.Count(8)
	q.Signers = q.Signers[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		q.Signers = append(q.Signers, types.NodeID(d.I64()))
	}
	if len(q.Signers) == 0 {
		q.Signers = nil
	}
	n = d.Count(4)
	q.Sigs = q.Sigs[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		q.Sigs = append(q.Sigs, d.Bytes())
	}
	if len(q.Sigs) == 0 {
		q.Sigs = nil
	}
	if d.U8() == 0 {
		q.Agg = nil
	} else {
		if q.Agg == nil {
			q.Agg = &quorumcert.QuorumCert{}
		}
		quorumcert.GetCert(d, q.Agg)
	}
}

func putBlock(e *wire.Encoder, b *block) {
	e.U64(b.View)
	e.Hash(b.Parent)
	putQC(e, &b.Justify)
	e.U32(uint32(len(b.Reqs)))
	for i := range b.Reqs {
		putRequest(e, &b.Reqs[i])
	}
}

func getBlock(d *wire.Decoder, b *block) {
	b.View = d.U64()
	b.Parent = d.Hash()
	getQC(d, &b.Justify)
	n := d.Count(32)
	b.Reqs = b.Reqs[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var r request
		getRequest(d, &r)
		b.Reqs = append(b.Reqs, r)
	}
	if len(b.Reqs) == 0 {
		b.Reqs = nil
	}
}

func putProposal(e *wire.Encoder, m *proposalMsg) {
	putBlock(e, &m.Block)
	e.Bytes(m.Sig)
}

func getProposal(d *wire.Decoder, m *proposalMsg) {
	getBlock(d, &m.Block)
	m.Sig = d.AppendBytes(m.Sig)
}

func putVote(e *wire.Encoder, m *voteMsg) {
	e.U64(m.View)
	e.Hash(m.Block)
	e.Bytes(m.Sig)
	quorumcert.PutPartial(e, &m.Part)
}

func getVote(d *wire.Decoder, m *voteMsg) {
	m.View = d.U64()
	m.Block = d.Hash()
	m.Sig = d.AppendBytes(m.Sig)
	quorumcert.GetPartial(d, &m.Part)
}

func putNewView(e *wire.Encoder, m *newViewMsg) {
	e.U64(m.View)
	putQC(e, &m.HighQC)
}

func getNewView(d *wire.Decoder, m *newViewMsg) {
	m.View = d.U64()
	getQC(d, &m.HighQC)
}

func putFetch(e *wire.Encoder, m *fetchMsg) { e.Hash(m.Block) }

func getFetch(d *wire.Decoder, m *fetchMsg) { m.Block = d.Hash() }

func putFetchReply(e *wire.Encoder, m *fetchReply) { putBlock(e, &m.Block) }

func getFetchReply(d *wire.Decoder, m *fetchReply) { getBlock(d, &m.Block) }
