package hotstuff

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("hs-%d", i)
	return v, types.HashBytes([]byte(v))
}

func TestCommitsThreeChain(t *testing.T) {
	_, reps := cluster(t, 4)
	const k = 10
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d)
	}
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d committed %d/%d", i, len(ds), k)
		}
	}
}

func TestAgreementOnOrder(t *testing.T) {
	_, reps := cluster(t, 4)
	const k = 12
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d committed %d/%d", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("replica %d position %d digest mismatch", i, j)
			}
		}
	}
}

func TestLinearMessageComplexity(t *testing.T) {
	// HotStuff's defining property: votes go only to the next leader, so
	// per-view traffic is O(n), not O(n²) like PBFT. With n=7, committing
	// a value must not generate n² vote messages per view.
	net, reps := cluster(t, 7)
	v, d := val(0)
	net.ResetStats()
	reps[0].Submit(v, d)
	if len(consensus.WaitDecisions(reps[1].Decisions(), 1, 10*time.Second)) != 1 {
		t.Fatal("no commit")
	}
	st := net.StatsSnapshot()
	votes := st.ByType[msgVote]
	proposals := st.ByType[msgProposal]
	if proposals == 0 {
		t.Fatal("no proposals counted")
	}
	viewsUsed := proposals/6 + 1 // each proposal broadcast = n-1 messages
	// Votes per view ≤ n (one per replica, to one leader).
	if votes > viewsUsed*7 {
		t.Fatalf("votes = %d for ~%d views of 7 nodes; vote traffic is not linear", votes, viewsUsed)
	}
}

func TestSilentLeaderNewView(t *testing.T) {
	// Liveness with a permanently silent replica needs a window of four
	// consecutive correct leader slots (proposer plus three QC
	// collectors), which round-robin rotation only provides for n >= 5:
	// with n=4 a permanently silent node occupies every fourth slot and a
	// consecutive three-chain can never form. Real deployments sidestep
	// this with leader reputation; here we use n=5.
	net, reps := cluster(t, 5)
	net.SetFilter(1, func(network.Message) []network.Message { return nil })
	const k = 5
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	for _, idx := range []int{0, 2, 3, 4} {
		ds := consensus.WaitDecisions(reps[idx].Decisions(), k, 20*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d committed %d/%d with silent peer", idx, len(ds), k)
		}
	}
}

func TestNoDuplicateCommits(t *testing.T) {
	_, reps := cluster(t, 4)
	v, d := val(0)
	for i := 0; i < 3; i++ {
		reps[i].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[3].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatalf("committed %d", len(ds))
	}
	extra := consensus.WaitDecisions(reps[3].Decisions(), 1, 500*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("duplicate commit: %v", extra)
	}
}

func TestQCVerification(t *testing.T) {
	net := network.New()
	keys := crypto.NewKeyring(4)
	nodes := []types.NodeID{0, 1, 2, 3}
	r := New(consensus.Config{Self: 0, Nodes: nodes, Net: net, Keys: keys})
	defer close(r.done)

	bh := types.HashBytes([]byte("block"))
	mkSig := func(id types.NodeID, view uint64, h types.Hash) []byte {
		hh := types.HashConcat([]byte(msgVote), consensus.U64(view), h[:])
		return keys.Sign(id, hh[:])
	}
	good := qc{View: 3, Block: bh}
	for _, id := range nodes[:3] {
		good.Signers = append(good.Signers, id)
		good.Sigs = append(good.Sigs, mkSig(id, 3, bh))
	}
	if !r.verifyQC(good) {
		t.Fatal("valid QC rejected")
	}
	// Too few signers.
	small := qc{View: 3, Block: bh, Signers: good.Signers[:2], Sigs: good.Sigs[:2]}
	if r.verifyQC(small) {
		t.Fatal("sub-quorum QC accepted")
	}
	// Duplicate signer.
	dup := qc{View: 3, Block: bh,
		Signers: []types.NodeID{0, 0, 1},
		Sigs:    [][]byte{mkSig(0, 3, bh), mkSig(0, 3, bh), mkSig(1, 3, bh)}}
	if r.verifyQC(dup) {
		t.Fatal("duplicate-signer QC accepted")
	}
	// Forged signature.
	forged := good
	forged.Sigs = append([][]byte{}, good.Sigs...)
	forged.Sigs[0] = []byte("garbage")
	if r.verifyQC(forged) {
		t.Fatal("forged QC accepted")
	}
	// Wrong view binding.
	wrongView := good
	wrongView.View = 4
	if r.verifyQC(wrongView) {
		t.Fatal("view-transplanted QC accepted")
	}
	// Genesis QC axiomatic.
	if !r.verifyQC(qc{View: 0, Block: r.genesis}) {
		t.Fatal("genesis QC rejected")
	}
	if r.verifyQC(qc{View: 0, Block: bh}) {
		t.Fatal("fake genesis QC accepted")
	}
}

// TestCrashRecoveryCatchUp crash-stops a replica, runs a workload it never
// sees, then rejoins a fresh incarnation on the same network and asserts
// ancestor fetching rebuilds the block tree and replays the complete
// decision log. n = 5 keeps rotation live while one slot is empty.
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 5
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("replica %d committed %d/%d before crash", i, got, pre)
		}
	}

	const victim = n - 1
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 15*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster committed %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps proposals flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 15*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted replica caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted replica decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}

// aggCluster builds a cluster in aggregate-vote mode: real Schnorr partials
// folded into constant-size QCs, one shared key set across replicas.
func aggCluster(t *testing.T, n int, batch bool) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New()
	keys := crypto.NewKeyring(n)
	vkeys := quorumcert.NewKeys()
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout:        150 * time.Millisecond,
			AggregateVotes: true, VoteKeys: vkeys, BatchVotes: batch,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func TestAggregatedCommits(t *testing.T) {
	_, reps := aggCluster(t, 4, false)
	const k = 8
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 15*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d committed %d/%d in aggregate mode", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("replica %d position %d digest mismatch", i, j)
			}
		}
	}
}

func TestAggregatedWithBatchingCommits(t *testing.T) {
	_, reps := aggCluster(t, 5, true)
	const k = 6
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 15*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d committed %d/%d with batched votes", i, len(ds), k)
		}
	}
}

func TestAggregatedQCVerification(t *testing.T) {
	net := network.New()
	keys := crypto.NewKeyring(4)
	vkeys := quorumcert.NewKeys()
	nodes := []types.NodeID{0, 1, 2, 3}
	r := New(consensus.Config{Self: 0, Nodes: nodes, Net: net, Keys: keys,
		AggregateVotes: true, VoteKeys: vkeys})
	defer close(r.done)

	bh := types.HashBytes([]byte("block"))
	st := r.voteStatement(3, bh)
	agg := quorumcert.NewAggregator(vkeys, nodes, 3, st)
	for _, id := range nodes[:3] {
		if _, err := agg.Add(vkeys.Sign(id, st)); err != nil {
			t.Fatal(err)
		}
	}
	cert, err := agg.Cert()
	if err != nil {
		t.Fatal(err)
	}
	good := qc{View: 3, Block: bh, Agg: cert}
	if !r.verifyQC(good) {
		t.Fatal("valid aggregate QC rejected")
	}
	// View transplant: statement no longer matches the QC coordinates.
	wrongView := good
	wrongView.View = 4
	if r.verifyQC(wrongView) {
		t.Fatal("view-transplanted aggregate QC accepted")
	}
	// Block transplant.
	wrongBlock := good
	wrongBlock.Block = types.HashBytes([]byte("other"))
	if r.verifyQC(wrongBlock) {
		t.Fatal("block-transplanted aggregate QC accepted")
	}
	// Inflated bitmap breaks the aggregate equation.
	inflated := *cert
	inflated.Bitmap = append([]uint64(nil), cert.Bitmap...)
	inflated.Bitmap[0] |= 1 << 3
	if r.verifyQC(qc{View: 3, Block: bh, Agg: &inflated}) {
		t.Fatal("bitmap-inflated aggregate QC accepted")
	}
	// A counted-mode replica rejects aggregate QCs: its quorum evidence is
	// per-signer signatures.
	counted := New(consensus.Config{Self: 1, Nodes: nodes, Net: net, Keys: keys})
	defer close(counted.done)
	if counted.verifyQC(good) {
		t.Fatal("counted-mode replica accepted an aggregate QC")
	}
	// Genesis stays axiomatic in aggregate mode.
	if !r.verifyQC(qc{View: 0, Block: r.genesis}) {
		t.Fatal("genesis QC rejected in aggregate mode")
	}
}
