package ibft

import (
	"reflect"
	"testing"

	"permchain/internal/types"
	"permchain/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("value"))
	msgs := []any{
		request{Digest: dig, Value: "payload"},
		syncReq{Height: 12},
		syncRep{Height: 12, Digest: dig, Value: "payload"},
		prePrepare{Height: 3, Round: 1, Digest: dig, Value: "payload", Sig: []byte("pp")},
		vote{Height: 3, Round: 1, Digest: dig, Sig: []byte("v")},
		roundChange{Height: 3, Round: 2, PreparedRound: 1, PreparedDigest: dig,
			PreparedValue: "payload", Sig: []byte("rc")},
		roundChange{Height: 3, Round: 2, PreparedRound: -1, Sig: []byte("rc")},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}
