// Package ibft implements Istanbul BFT, the PBFT-family protocol Quorum
// offers for Byzantine settings (§2.3.2 of the tutorial, EIP-650). It
// differs from classic PBFT in being height-oriented: each block height
// runs pre-prepare → prepare → commit with the proposer rotating
// round-robin every height and every round change, instead of a stable
// primary replaced only by a global view change.
package ibft

import (
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/types"
)

const (
	msgPrePrepare  = "ibft/preprepare"
	msgPrepare     = "ibft/prepare"
	msgCommit      = "ibft/commit"
	msgRoundChange = "ibft/roundchange"
	msgRequest     = "ibft/request"
	msgSyncReq     = "ibft/syncreq"
	msgSyncRep     = "ibft/syncrep"
)

// syncBatch bounds how many decided heights one sync request replays.
const syncBatch = 64

type request struct {
	Digest types.Hash
	Value  any
}

// syncReq advertises the sender's next undecided height; peers that have
// decided it reply with the missing heights. It doubles as low-rate
// progress gossip: a receiver that is itself behind the advertised height
// learns so and issues its own request.
type syncReq struct {
	Height uint64
}

// syncRep carries one decided height. A laggard adopts a height only when
// f+1 distinct peers report the same digest for it — at least one of them
// is correct.
type syncRep struct {
	Height uint64
	Digest types.Hash
	Value  any
}

type prePrepare struct {
	Height uint64
	Round  uint64
	Digest types.Hash
	Value  any
	Sig    []byte
}

type vote struct {
	Height uint64
	Round  uint64
	Digest types.Hash
	Sig    []byte
}

type roundChange struct {
	Height uint64
	Round  uint64
	// PreparedDigest/Value carry the sender's prepared certificate, if
	// any; PreparedRound is -1 when the sender prepared nothing.
	PreparedRound  int64
	PreparedDigest types.Hash
	PreparedValue  any
	Sig            []byte
}

type roundState struct {
	proposal   *prePrepare
	prepares   map[types.NodeID]types.Hash
	commits    map[types.NodeID]types.Hash
	sentPrep   bool
	sentCommit bool
}

func newRoundState() *roundState {
	return &roundState{
		prepares: map[types.NodeID]types.Hash{},
		commits:  map[types.NodeID]types.Hash{},
	}
}

// Replica is one IBFT validator.
type Replica struct {
	cfg consensus.Config
	ep  *network.Endpoint

	decCh    chan consensus.Decision
	submitCh chan request
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Event-loop state.
	height     uint64
	round      uint64
	active     bool
	rounds     map[uint64]*roundState
	rcVotes    map[uint64]map[types.NodeID]*roundChange
	prepRound  int64 // highest round this replica prepared in (-1 none)
	prepDigest types.Hash
	prepValue  any
	values     map[types.Hash]any
	pending    []types.Hash
	pendingSet map[types.Hash]bool
	decided    map[types.Hash]bool
	future     []network.Message
	history    map[uint64]request // decided height → (digest, value), for laggard replay
	syncVotes  map[uint64]map[types.NodeID]syncRep
	lastSync   uint64 // height of the last sync request sent (dedupe)
	timer      *consensus.LoopTimer
}

// New creates an IBFT validator. Call Start to launch it.
func New(cfg consensus.Config) *Replica {
	cfg = cfg.Defaulted()
	return &Replica{
		cfg:        cfg,
		ep:         cfg.Net.Join(cfg.Self),
		decCh:      make(chan consensus.Decision, 65536),
		submitCh:   make(chan request, 65536),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
		height:     1,
		rounds:     map[uint64]*roundState{},
		rcVotes:    map[uint64]map[types.NodeID]*roundChange{},
		prepRound:  -1,
		values:     map[types.Hash]any{},
		pendingSet: map[types.Hash]bool{},
		decided:    map[types.Hash]bool{},
		history:    map[uint64]request{},
		syncVotes:  map[uint64]map[types.NodeID]syncRep{},
		timer:      consensus.NewLoopTimer(),
	}
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- request{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

// proposer rotates every height and every round (IBFT's distinguishing
// feature vs PBFT's stable primary).
func (r *Replica) proposer(height, round uint64) types.NodeID {
	return r.cfg.Nodes[int((height+round)%uint64(len(r.cfg.Nodes)))]
}

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	// Low-rate progress gossip: advertising our next undecided height lets
	// a restarted or partitioned-away validator discover it is behind even
	// when the cluster is otherwise idle.
	gossip := time.NewTicker(r.cfg.Timeout * 4)
	defer gossip.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case req := <-r.submitCh:
			r.ep.Multicast(r.cfg.Nodes, msgRequest, req)
			r.onRequest(req)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		case <-gossip.C:
			if r.height > 1 {
				r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
			}
		}
	}
}

func (r *Replica) onRequest(req request) {
	if r.decided[req.Digest] || r.pendingSet[req.Digest] {
		return
	}
	r.values[req.Digest] = req.Value
	r.pendingSet[req.Digest] = true
	r.pending = append(r.pending, req.Digest)
	r.ensureActive()
}

func (r *Replica) ensureActive() {
	if r.active || len(r.pending) == 0 {
		return
	}
	r.active = true
	r.startRound(r.round)
}

func (r *Replica) roundState(round uint64) *roundState {
	rs, ok := r.rounds[round]
	if !ok {
		rs = newRoundState()
		r.rounds[round] = rs
	}
	return rs
}

func (r *Replica) startRound(round uint64) {
	r.round = round
	r.cfg.Obs.SetGauge("ibft/round", int64(round))
	r.timer.Reset(r.cfg.Timeout)
	if r.proposer(r.height, round) != r.cfg.Self {
		return
	}
	// Prepared value wins; otherwise propose the oldest pending request.
	dig, val := r.prepDigest, r.prepValue
	if r.prepRound < 0 {
		for len(r.pending) > 0 && r.decided[r.pending[0]] {
			r.dropPendingHead()
		}
		if len(r.pending) == 0 {
			return
		}
		dig = r.pending[0]
		val = r.values[dig]
	}
	pp := prePrepare{
		Height: r.height, Round: round, Digest: dig, Value: val,
		Sig: r.cfg.SignPart([]byte(msgPrePrepare), consensus.U64(r.height), consensus.U64(round), dig[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgPrePrepare, pp)
	r.onPrePrepare(r.cfg.Self, pp)
}

func (r *Replica) dropPendingHead() {
	delete(r.pendingSet, r.pending[0])
	r.pending = r.pending[1:]
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case msgRequest:
		req, ok := m.Payload.(request)
		if !ok {
			return
		}
		r.onRequest(req)
		return
	case msgPrePrepare:
		pp, ok := m.Payload.(prePrepare)
		if !ok {
			return
		}
		if pp.Height > r.height {
			r.buffer(m)
			return
		}
		if !r.cfg.VerifyPart(m.From, pp.Sig, []byte(msgPrePrepare), consensus.U64(pp.Height), consensus.U64(pp.Round), pp.Digest[:]) {
			return
		}
		r.onPrePrepare(m.From, pp)
	case msgPrepare, msgCommit:
		v, ok := m.Payload.(vote)
		if !ok {
			return
		}
		if v.Height > r.height {
			r.buffer(m)
			return
		}
		if !r.cfg.VerifyPart(m.From, v.Sig, []byte(m.Type), consensus.U64(v.Height), consensus.U64(v.Round), v.Digest[:]) {
			return
		}
		if m.Type == msgPrepare {
			r.onPrepare(m.From, v)
		} else {
			r.onCommit(m.From, v)
		}
	case msgRoundChange:
		rc, ok := m.Payload.(roundChange)
		if !ok {
			return
		}
		if rc.Height > r.height {
			r.buffer(m)
			return
		}
		if !r.cfg.VerifyPart(m.From, rc.Sig, []byte(msgRoundChange), consensus.U64(rc.Height), consensus.U64(rc.Round)) {
			return
		}
		r.onRoundChange(m.From, &rc)
	case msgSyncReq:
		q, ok := m.Payload.(syncReq)
		if !ok {
			return
		}
		r.onSyncReq(m.From, q)
	case msgSyncRep:
		rep, ok := m.Payload.(syncRep)
		if !ok {
			return
		}
		r.onSyncRep(m.From, rep)
	}
}

func (r *Replica) onSyncReq(from types.NodeID, q syncReq) {
	if q.Height < r.height {
		// The asker is behind: replay a bounded window of decided heights.
		end := q.Height + syncBatch
		if end > r.height {
			end = r.height
		}
		for h := q.Height; h < end; h++ {
			if req, ok := r.history[h]; ok {
				r.ep.Send(from, msgSyncRep, syncRep{Height: h, Digest: req.Digest, Value: req.Value})
			}
		}
		return
	}
	if q.Height > r.height {
		// The asker is ahead: we are the laggard. Gossip repeats every few
		// timeouts, so requesting on every such beacon also retries after
		// lost replies.
		r.cfg.Obs.Inc("ibft/sync_fetches")
		r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
	}
}

func (r *Replica) onSyncRep(from types.NodeID, rep syncRep) {
	if rep.Height < r.height {
		return
	}
	m, ok := r.syncVotes[rep.Height]
	if !ok {
		m = map[types.NodeID]syncRep{}
		r.syncVotes[rep.Height] = m
	}
	m[from] = rep
	r.trySyncDecide()
}

// trySyncDecide adopts replayed heights in order once each gathers f+1
// matching replies.
func (r *Replica) trySyncDecide() {
	for {
		votes, ok := r.syncVotes[r.height]
		if !ok {
			return
		}
		counts := map[types.Hash]int{}
		var winner types.Hash
		found := false
		for _, rep := range votes {
			counts[rep.Digest]++
			if counts[rep.Digest] >= r.cfg.MaxByzFaults()+1 {
				winner = rep.Digest
				found = true
				break
			}
		}
		if !found {
			return
		}
		var val any
		for _, rep := range votes {
			if rep.Digest == winner {
				val = rep.Value
				break
			}
		}
		delete(r.syncVotes, r.height)
		r.values[winner] = val
		r.decide(winner) // advances r.height; loop to check the next one
	}
}

func (r *Replica) buffer(m network.Message) {
	const maxFuture = 100000
	if len(r.future) < maxFuture {
		r.future = append(r.future, m)
	}
	// Traffic for a future height means the cluster decided heights we
	// missed (crash, partition): request a replay. Deduped per height —
	// each adopted batch re-triggers naturally as buffered messages replay.
	if r.lastSync != r.height {
		r.lastSync = r.height
		r.cfg.Obs.Inc("ibft/sync_fetches")
		r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
	}
}

func (r *Replica) replayFuture() {
	msgs := r.future
	r.future = nil
	for _, m := range msgs {
		r.onMessage(m)
	}
}

func (r *Replica) onPrePrepare(from types.NodeID, pp prePrepare) {
	if pp.Height != r.height || from != r.proposer(pp.Height, pp.Round) {
		return
	}
	r.active = true
	rs := r.roundState(pp.Round)
	if rs.proposal != nil {
		return // first proposal per round wins
	}
	rs.proposal = &pp
	r.values[pp.Digest] = pp.Value
	r.cfg.Obs.Mark(pp.Digest, pp.Height, obs.PhasePropose)
	if pp.Round != r.round || rs.sentPrep {
		return
	}
	// A replica prepared in an earlier round only endorses that value.
	if r.prepRound >= 0 && r.prepDigest != pp.Digest {
		return
	}
	rs.sentPrep = true
	v := vote{
		Height: r.height, Round: pp.Round, Digest: pp.Digest,
		Sig: r.cfg.SignPart([]byte(msgPrepare), consensus.U64(r.height), consensus.U64(pp.Round), pp.Digest[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgPrepare, v)
	r.onPrepare(r.cfg.Self, v)
}

func (r *Replica) onPrepare(from types.NodeID, v vote) {
	if v.Height != r.height {
		return
	}
	rs := r.roundState(v.Round)
	if _, dup := rs.prepares[from]; dup {
		return
	}
	rs.prepares[from] = v.Digest
	if rs.sentCommit || rs.proposal == nil || rs.proposal.Digest != v.Digest {
		return
	}
	count := 0
	for _, d := range rs.prepares {
		if d == v.Digest {
			count++
		}
	}
	if count < r.cfg.ByzQuorum() {
		return
	}
	// Prepared: record the certificate and commit.
	if int64(v.Round) >= r.prepRound {
		r.prepRound = int64(v.Round)
		r.prepDigest = v.Digest
		r.prepValue = r.values[v.Digest]
	}
	r.cfg.Obs.Mark(v.Digest, v.Height, obs.PhasePrepare)
	rs.sentCommit = true
	c := vote{
		Height: r.height, Round: v.Round, Digest: v.Digest,
		Sig: r.cfg.SignPart([]byte(msgCommit), consensus.U64(r.height), consensus.U64(v.Round), v.Digest[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgCommit, c)
	r.onCommit(r.cfg.Self, c)
}

func (r *Replica) onCommit(from types.NodeID, v vote) {
	if v.Height != r.height {
		return
	}
	rs := r.roundState(v.Round)
	if _, dup := rs.commits[from]; dup {
		return
	}
	rs.commits[from] = v.Digest
	count := 0
	for _, d := range rs.commits {
		if d == v.Digest {
			count++
		}
	}
	if count >= r.cfg.ByzQuorum() && !v.Digest.IsZero() {
		r.decide(v.Digest)
	}
}

func (r *Replica) decide(dig types.Hash) {
	val := r.values[dig]
	r.decided[dig] = true
	r.history[r.height] = request{Digest: dig, Value: val}
	r.cfg.Obs.MarkLatency("ibft/commit_latency", dig, r.height, obs.PhasePropose, obs.PhaseCommit)
	r.cfg.Obs.Mark(dig, r.height, obs.PhaseApply)
	r.cfg.Obs.Inc("ibft/decisions")
	r.decCh <- consensus.Decision{Seq: r.height, Digest: dig, Value: val, Node: r.cfg.Self}

	r.height++
	r.round = 0
	r.rounds = map[uint64]*roundState{}
	r.rcVotes = map[uint64]map[types.NodeID]*roundChange{}
	r.prepRound = -1
	r.prepDigest = types.ZeroHash
	r.prepValue = nil
	for len(r.pending) > 0 && r.decided[r.pending[0]] {
		r.dropPendingHead()
	}
	r.active = false
	r.timer.Stop()
	r.replayFuture()
	r.ensureActive()
}

func (r *Replica) onTimeout() {
	if !r.active {
		return
	}
	r.sendRoundChange(r.round + 1)
}

func (r *Replica) sendRoundChange(round uint64) {
	r.cfg.Obs.Inc("ibft/round_changes")
	r.cfg.Obs.NoteViewChange()
	r.cfg.Obs.Logger("ibft").Warn("round change",
		"node", int(r.cfg.Self), "height", r.height, "round", round)
	rc := roundChange{
		Height: r.height, Round: round,
		PreparedRound: r.prepRound, PreparedDigest: r.prepDigest, PreparedValue: r.prepValue,
		Sig: r.cfg.SignPart([]byte(msgRoundChange), consensus.U64(r.height), consensus.U64(round)),
	}
	r.timer.Reset(r.cfg.Timeout * 2)
	r.ep.Multicast(r.cfg.Nodes, msgRoundChange, rc)
	r.onRoundChange(r.cfg.Self, &rc)
}

func (r *Replica) onRoundChange(from types.NodeID, rc *roundChange) {
	if rc.Height != r.height || rc.Round <= r.round {
		return
	}
	m, ok := r.rcVotes[rc.Round]
	if !ok {
		m = map[types.NodeID]*roundChange{}
		r.rcVotes[rc.Round] = m
	}
	m[from] = rc

	// Join a round change that f+1 peers already started.
	if len(m) >= r.cfg.MaxByzFaults()+1 {
		if _, voted := m[r.cfg.Self]; !voted {
			r.sendRoundChange(rc.Round)
			return
		}
	}
	if len(m) < r.cfg.ByzQuorum() {
		return
	}
	// Quorum: enter the round. Adopt the highest prepared certificate
	// among the round-change messages so a possibly-decided value
	// survives.
	for _, v := range m {
		if v.PreparedRound >= 0 && v.PreparedRound > r.prepRound {
			r.prepRound = v.PreparedRound
			r.prepDigest = v.PreparedDigest
			r.prepValue = v.PreparedValue
		}
	}
	r.startRound(rc.Round)
}
