package ibft

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("ib-%d", i)
	return v, types.HashBytes([]byte(v))
}

func TestDecidesAndAgrees(t *testing.T) {
	_, reps := cluster(t, 4)
	const k = 10
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("validator %d height %d digest mismatch", i, j+1)
			}
		}
	}
}

func TestProposerRotatesPerHeight(t *testing.T) {
	r := New(consensus.Config{
		Self: 0, Nodes: []types.NodeID{0, 1, 2, 3},
		Net: network.New(), Keys: crypto.NewKeyring(4),
	})
	defer close(r.done)
	if r.proposer(1, 0) == r.proposer(2, 0) {
		t.Fatal("proposer did not rotate across heights")
	}
	if r.proposer(1, 0) == r.proposer(1, 1) {
		t.Fatal("proposer did not rotate across rounds")
	}
}

func TestSilentProposerRoundChange(t *testing.T) {
	net, reps := cluster(t, 4)
	net.SetFilter(2, func(network.Message) []network.Message { return nil })
	const k = 6
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	for _, idx := range []int{0, 1, 3} {
		ds := consensus.WaitDecisions(reps[idx].Decisions(), k, 20*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d with silent proposer", idx, len(ds), k)
		}
	}
}

func TestCrashFaultMidStream(t *testing.T) {
	_, reps := cluster(t, 4)
	v0, d0 := val(0)
	reps[0].Submit(v0, d0)
	for i := range reps {
		if len(consensus.WaitDecisions(reps[i].Decisions(), 1, 5*time.Second)) != 1 {
			t.Fatalf("validator %d missed initial decision", i)
		}
	}
	reps[3].Stop()
	const k = 4
	for i := 1; i <= k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	for _, idx := range []int{0, 1, 2} {
		ds := consensus.WaitDecisions(reps[idx].Decisions(), k, 20*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d after crash", idx, len(ds), k)
		}
	}
}

func TestNoDuplicates(t *testing.T) {
	_, reps := cluster(t, 4)
	v, d := val(0)
	for i := 0; i < 4; i++ {
		reps[i].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[0].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatalf("decided %d", len(ds))
	}
	extra := consensus.WaitDecisions(reps[0].Decisions(), 1, 500*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("duplicate decision: %v", extra)
	}
}

// TestCrashRecoveryCatchUp crash-stops a validator, runs a workload it
// never sees, then rejoins a fresh incarnation on the same network and
// asserts the height-sync replay delivers the complete decision log.
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 4
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("validator %d decided %d/%d before crash", i, got, pre)
		}
	}

	const victim = n - 1
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 15*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster decided %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps traffic flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 15*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted validator caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted validator decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}
