package ibft

import (
	"permchain/internal/wire"
)

// Frame codecs for every ibft message (wire tags 96–111).
var (
	requestCodec     = wire.Register[request](96, putRequest, getRequest)
	syncReqCodec     = wire.Register[syncReq](97, putSyncReq, getSyncReq)
	syncRepCodec     = wire.Register[syncRep](98, putSyncRep, getSyncRep)
	prePrepareCodec  = wire.Register[prePrepare](99, putPrePrepare, getPrePrepare)
	voteCodec        = wire.Register[vote](100, putVote, getVote)
	roundChangeCodec = wire.Register[roundChange](101, putRoundChange, getRoundChange)
)

func init() {
	wire.Intern(msgPrePrepare, msgPrepare, msgCommit, msgRoundChange,
		msgRequest, msgSyncReq, msgSyncRep)
}

func putRequest(e *wire.Encoder, m *request) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getRequest(d *wire.Decoder, m *request) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putSyncReq(e *wire.Encoder, m *syncReq) { e.U64(m.Height) }

func getSyncReq(d *wire.Decoder, m *syncReq) { m.Height = d.U64() }

func putSyncRep(e *wire.Encoder, m *syncRep) {
	e.U64(m.Height)
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getSyncRep(d *wire.Decoder, m *syncRep) {
	m.Height = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putPrePrepare(e *wire.Encoder, m *prePrepare) {
	e.U64(m.Height)
	e.U64(m.Round)
	e.Hash(m.Digest)
	e.Any(m.Value)
	e.Bytes(m.Sig)
}

func getPrePrepare(d *wire.Decoder, m *prePrepare) {
	m.Height = d.U64()
	m.Round = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
	m.Sig = d.AppendBytes(m.Sig)
}

func putVote(e *wire.Encoder, m *vote) {
	e.U64(m.Height)
	e.U64(m.Round)
	e.Hash(m.Digest)
	e.Bytes(m.Sig)
}

func getVote(d *wire.Decoder, m *vote) {
	m.Height = d.U64()
	m.Round = d.U64()
	m.Digest = d.Hash()
	m.Sig = d.AppendBytes(m.Sig)
}

func putRoundChange(e *wire.Encoder, m *roundChange) {
	e.U64(m.Height)
	e.U64(m.Round)
	e.I64(m.PreparedRound)
	e.Hash(m.PreparedDigest)
	e.Any(m.PreparedValue)
	e.Bytes(m.Sig)
}

func getRoundChange(d *wire.Decoder, m *roundChange) {
	m.Height = d.U64()
	m.Round = d.U64()
	m.PreparedRound = d.I64()
	m.PreparedDigest = d.Hash()
	m.PreparedValue = d.Any()
	m.Sig = d.AppendBytes(m.Sig)
}
