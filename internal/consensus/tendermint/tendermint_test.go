package tendermint

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, stakes []int64, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(Config{
			Config: consensus.Config{
				Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
				Timeout: 150 * time.Millisecond,
			},
			Stakes: stakes,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("tm-%d", i)
	return v, types.HashBytes([]byte(v))
}

func TestDecidesHeights(t *testing.T) {
	_, reps := cluster(t, 4, nil)
	const k = 8
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d)
	}
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d", i, len(ds), k)
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("validator %d height %d out of order (seq %d)", i, j+1, d.Seq)
			}
		}
	}
}

func TestAgreement(t *testing.T) {
	_, reps := cluster(t, 4, nil)
	const k = 6
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("validator %d height %d digest mismatch", i, j+1)
			}
		}
	}
}

func TestProposerRotation(t *testing.T) {
	r := New(Config{Config: consensus.Config{
		Self: 0, Nodes: []types.NodeID{0, 1, 2, 3},
		Net: network.New(), Keys: crypto.NewKeyring(4),
	}})
	defer close(r.done) // never started; satisfy no goroutine leak checks
	seen := map[types.NodeID]bool{}
	for h := uint64(1); h <= 4; h++ {
		seen[r.proposer(h, 0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d/4 validators", len(seen))
	}
	// Rotation must also advance across rounds within a height.
	if r.proposer(1, 0) == r.proposer(1, 1) {
		t.Fatal("round change did not rotate proposer")
	}
}

func TestStakeWeightedRotationAndQuorum(t *testing.T) {
	// Validator 0 holds 3 of 6 stake: it proposes ~half the slots, and no
	// quorum can form without it (2/3 of 6 = 4 > 3 remaining).
	r := New(Config{
		Config: consensus.Config{
			Self: 0, Nodes: []types.NodeID{0, 1, 2, 3},
			Net: network.New(), Keys: crypto.NewKeyring(4),
		},
		Stakes: []int64{3, 1, 1, 1},
	})
	defer close(r.done)
	count := 0
	for h := uint64(1); h <= 12; h++ {
		if r.proposer(h, 0) == 0 {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("high-stake validator proposed %d/12 slots, want 6", count)
	}
	// Without validator 0's power: 1+1+1 = 3, 3*3 = 9 ≤ 2*6 = 12 → no quorum.
	if r.quorum(3) {
		t.Fatal("quorum without majority stakeholder")
	}
	if !r.quorum(5) {
		t.Fatal("5/6 power is a quorum")
	}
}

func TestDecidesWithWeightedStakes(t *testing.T) {
	_, reps := cluster(t, 4, []int64{3, 1, 1, 1})
	const k = 5
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[1].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[2].Decisions(), k, 10*time.Second)
	if len(ds) != k {
		t.Fatalf("decided %d/%d with weighted stakes", len(ds), k)
	}
}

func TestSilentProposerRoundChange(t *testing.T) {
	net, reps := cluster(t, 4, nil)
	// Silence one validator entirely; with 3/4 power (>2/3) the rest must
	// keep deciding via round changes when the silent one should propose.
	net.SetFilter(1, func(network.Message) []network.Message { return nil })
	const k = 6
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	for _, idx := range []int{0, 2, 3} {
		ds := consensus.WaitDecisions(reps[idx].Decisions(), k, 20*time.Second)
		if len(ds) != k {
			t.Fatalf("validator %d decided %d/%d with a silent peer", idx, len(ds), k)
		}
	}
}

func TestNoDuplicateDecisions(t *testing.T) {
	_, reps := cluster(t, 4, nil)
	v, d := val(0)
	reps[0].Submit(v, d)
	reps[1].Submit(v, d)
	reps[2].Submit(v, d)
	ds := consensus.WaitDecisions(reps[3].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatalf("decided %d", len(ds))
	}
	extra := consensus.WaitDecisions(reps[3].Decisions(), 1, 500*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("same value decided twice: %v", extra)
	}
}

// TestCrashRecoveryCatchUp crash-stops a validator, runs a workload it
// never sees, then rejoins a fresh incarnation on the same network and
// asserts the height-sync replay delivers the complete decision log.
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 4
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(Config{Config: consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		}})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("validator %d decided %d/%d before crash", i, got, pre)
		}
	}

	const victim = n - 1
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 15*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster decided %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps traffic flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 15*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted validator caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted validator decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}
